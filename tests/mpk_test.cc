// Tests for the protection-key runtime and trampoline.
//
// Isolation-semantics tests run under kEmulated (portable); genuine
// enforcement tests run under kMprotect (real faults via mprotect). When the
// machine supports MPK, the same suites also run under kHardware.

#include <gtest/gtest.h>

#include <csignal>
#include <sys/mman.h>

#include <thread>

#include "src/alloc/arena.h"
#include "src/mpk/pkey_runtime.h"
#include "src/mpk/trampoline.h"

namespace asmpk {
namespace {

TEST(PkruBitsTest, AllowDenyRoundTrip) {
  uint32_t pkru = PkeyRuntime::kDenyAll;
  EXPECT_FALSE(PkeyRuntime::KeyAllowed(pkru, 3, false));
  pkru = PkeyRuntime::AllowKey(pkru, 3);
  EXPECT_TRUE(PkeyRuntime::KeyAllowed(pkru, 3, false));
  EXPECT_TRUE(PkeyRuntime::KeyAllowed(pkru, 3, true));
  EXPECT_FALSE(PkeyRuntime::KeyAllowed(pkru, 4, false));
  pkru = PkeyRuntime::DenyKey(pkru, 3);
  EXPECT_FALSE(PkeyRuntime::KeyAllowed(pkru, 3, false));
}

TEST(PkruBitsTest, WriteDisableIsReadOnly) {
  uint32_t pkru = PkeyRuntime::DenyWrite(0, 5);
  EXPECT_TRUE(PkeyRuntime::KeyAllowed(pkru, 5, false));
  EXPECT_FALSE(PkeyRuntime::KeyAllowed(pkru, 5, true));
}

TEST(PkruBitsTest, KeyZeroAlwaysOpenInDenyAll) {
  EXPECT_TRUE(PkeyRuntime::KeyAllowed(PkeyRuntime::kDenyAll, 0, true));
}

class PkeyRuntimeTest : public ::testing::TestWithParam<MpkBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == MpkBackend::kHardware &&
        !PkeyRuntime::HardwareAvailable()) {
      GTEST_SKIP() << "no MPK hardware on this machine";
    }
    runtime_ = std::make_unique<PkeyRuntime>(GetParam());
  }

  void TearDown() override {
    if (runtime_ != nullptr) {
      runtime_->WritePkru(0);  // re-open everything before unmapping
    }
  }

  std::unique_ptr<PkeyRuntime> runtime_;
};

TEST_P(PkeyRuntimeTest, AllocatesDistinctKeys) {
  auto a = runtime_->AllocateKey();
  auto b = runtime_->AllocateKey();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_GE(*a, 1);
  EXPECT_LE(*a, 15);
  EXPECT_TRUE(runtime_->FreeKey(*a).ok());
  EXPECT_TRUE(runtime_->FreeKey(*b).ok());
}

TEST_P(PkeyRuntimeTest, ExhaustsAtFifteenKeys) {
  if (GetParam() == MpkBackend::kHardware) {
    GTEST_SKIP() << "kernel may reserve hardware keys";
  }
  std::vector<ProtKey> keys;
  for (int i = 0; i < 15; ++i) {
    auto key = runtime_->AllocateKey();
    ASSERT_TRUE(key.ok()) << i;
    keys.push_back(*key);
  }
  EXPECT_EQ(runtime_->AllocateKey().status().code(),
            asbase::ErrorCode::kResourceExhausted);
  for (ProtKey key : keys) {
    EXPECT_TRUE(runtime_->FreeKey(key).ok());
  }
}

TEST_P(PkeyRuntimeTest, FreeKeyRejectsBadAndBusyKeys) {
  EXPECT_FALSE(runtime_->FreeKey(0).ok());
  EXPECT_FALSE(runtime_->FreeKey(7).ok());  // never allocated

  asalloc::Arena arena(4096);
  auto key = runtime_->AllocateKey();
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(runtime_
                  ->BindRegion(arena.data(), arena.size(), *key,
                               PROT_READ | PROT_WRITE)
                  .ok());
  EXPECT_EQ(runtime_->FreeKey(*key).code(),
            asbase::ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(runtime_->UnbindRegion(arena.data(), arena.size()).ok());
  EXPECT_TRUE(runtime_->FreeKey(*key).ok());
}

TEST_P(PkeyRuntimeTest, BindRejectsUnalignedAndOverlapping) {
  asalloc::Arena arena(3 * 4096);
  auto key = runtime_->AllocateKey();
  ASSERT_TRUE(key.ok());
  char* base = static_cast<char*>(arena.data());

  EXPECT_FALSE(runtime_->BindRegion(base + 1, 4096, *key, PROT_READ).ok());
  EXPECT_FALSE(runtime_->BindRegion(base, 100, *key, PROT_READ).ok());

  ASSERT_TRUE(
      runtime_->BindRegion(base, 2 * 4096, *key, PROT_READ | PROT_WRITE).ok());
  EXPECT_EQ(runtime_->BindRegion(base + 4096, 4096, *key, PROT_READ).code(),
            asbase::ErrorCode::kAlreadyExists);
  EXPECT_TRUE(runtime_->UnbindRegion(base, 2 * 4096).ok());
}

TEST_P(PkeyRuntimeTest, CheckAccessFollowsPkru) {
  asalloc::Arena arena(4096);
  auto key = runtime_->AllocateKey();
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(runtime_
                  ->BindRegion(arena.data(), arena.size(), *key,
                               PROT_READ | PROT_WRITE)
                  .ok());

  runtime_->WritePkru(0);  // everything open
  EXPECT_TRUE(runtime_->CheckAccess(arena.data(), 16, true).ok());

  runtime_->WritePkru(PkeyRuntime::DenyKey(0, *key));
  EXPECT_EQ(runtime_->CheckAccess(arena.data(), 16, false).code(),
            asbase::ErrorCode::kPermissionDenied);

  runtime_->WritePkru(PkeyRuntime::DenyWrite(0, *key));
  EXPECT_TRUE(runtime_->CheckAccess(arena.data(), 16, false).ok());
  EXPECT_EQ(runtime_->CheckAccess(arena.data(), 16, true).code(),
            asbase::ErrorCode::kPermissionDenied);

  // Unbound memory is never denied.
  int on_stack = 0;
  EXPECT_TRUE(runtime_->CheckAccess(&on_stack, sizeof(on_stack), true).ok());

  runtime_->WritePkru(0);
  EXPECT_TRUE(runtime_->UnbindRegion(arena.data(), arena.size()).ok());
}

TEST_P(PkeyRuntimeTest, KeyOfReportsBinding) {
  asalloc::Arena arena(4096);
  auto key = runtime_->AllocateKey();
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(runtime_->KeyOf(arena.data()), 0);
  ASSERT_TRUE(
      runtime_->BindRegion(arena.data(), arena.size(), *key, PROT_READ).ok());
  EXPECT_EQ(runtime_->KeyOf(arena.data()), *key);
  EXPECT_EQ(runtime_->KeyOf(static_cast<char*>(arena.data()) + 4095), *key);
  EXPECT_TRUE(runtime_->UnbindRegion(arena.data(), arena.size()).ok());
}

TEST_P(PkeyRuntimeTest, SwitchCountCountsWrites) {
  uint64_t before = runtime_->switch_count();
  runtime_->WritePkru(0);
  runtime_->WritePkru(PkeyRuntime::kDenyAll);
  runtime_->WritePkru(0);
  EXPECT_EQ(runtime_->switch_count(), before + 3);
}

INSTANTIATE_TEST_SUITE_P(Backends, PkeyRuntimeTest,
                         ::testing::Values(MpkBackend::kEmulated,
                                           MpkBackend::kMprotect,
                                           MpkBackend::kHardware),
                         [](const auto& info) {
                           return std::string(MpkBackendName(info.param));
                         });

// Genuine enforcement: under the mprotect backend, touching a denied region
// faults for real.
TEST(MprotectEnforcementDeathTest, DeniedReadFaults) {
#ifdef GTEST_FLAG_SET
  GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#endif
  EXPECT_DEATH(
      {
        PkeyRuntime runtime(MpkBackend::kMprotect);
        asalloc::Arena arena(4096);
        auto key = runtime.AllocateKey();
        runtime
            .BindRegion(arena.data(), arena.size(), *key,
                        PROT_READ | PROT_WRITE)
            .ok();
        runtime.WritePkru(PkeyRuntime::DenyKey(0, *key));
        // This load must SIGSEGV.
        volatile char sink = *static_cast<volatile char*>(arena.data());
        (void)sink;
      },
      "");
}

TEST(MprotectEnforcementTest, ReOpenedRegionIsAccessible) {
  PkeyRuntime runtime(MpkBackend::kMprotect);
  asalloc::Arena arena(4096);
  auto key = runtime.AllocateKey();
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(runtime
                  .BindRegion(arena.data(), arena.size(), *key,
                              PROT_READ | PROT_WRITE)
                  .ok());
  runtime.WritePkru(PkeyRuntime::DenyKey(0, *key));
  runtime.WritePkru(PkeyRuntime::AllowKey(PkeyRuntime::kDenyAll, *key));
  static_cast<char*>(arena.data())[0] = 42;  // must not fault
  EXPECT_EQ(static_cast<char*>(arena.data())[0], 42);
  runtime.WritePkru(0);
}

// ---------------------------------------------------------------- Trampoline

TEST(TrampolineTest, EnterSystemRaisesAndRestores) {
  PkeyRuntime runtime(MpkBackend::kEmulated);
  const uint32_t user = PkeyRuntime::kDenyAll;
  const uint32_t system = 0;
  Trampoline trampoline(&runtime, user, system);

  runtime.WritePkru(user);
  uint32_t inside = 0xDEAD;
  trampoline.EnterSystem([&] { inside = runtime.ReadPkru(); });
  EXPECT_EQ(inside, system);
  EXPECT_EQ(runtime.ReadPkru(), user);
}

TEST(TrampolineTest, EnterUserDropsAndRestores) {
  PkeyRuntime runtime(MpkBackend::kEmulated);
  Trampoline trampoline(&runtime, PkeyRuntime::kDenyAll, 0);
  runtime.WritePkru(0);
  uint32_t inside = 0;
  trampoline.EnterUser([&] { inside = runtime.ReadPkru(); });
  EXPECT_EQ(inside, PkeyRuntime::kDenyAll);
  EXPECT_EQ(runtime.ReadPkru(), 0u);
}

TEST(TrampolineTest, RestoresOnException) {
  PkeyRuntime runtime(MpkBackend::kEmulated);
  Trampoline trampoline(&runtime, PkeyRuntime::kDenyAll, 0);
  runtime.WritePkru(PkeyRuntime::kDenyAll);
  EXPECT_THROW(
      trampoline.EnterSystem([]() -> int { throw std::runtime_error("bug"); }),
      std::runtime_error);
  EXPECT_EQ(runtime.ReadPkru(), PkeyRuntime::kDenyAll);
}

TEST(TrampolineTest, NestedEntriesUnwindCorrectly) {
  PkeyRuntime runtime(MpkBackend::kEmulated);
  Trampoline trampoline(&runtime, PkeyRuntime::kDenyAll, 0);
  runtime.WritePkru(PkeyRuntime::kDenyAll);
  trampoline.EnterSystem([&] {
    EXPECT_EQ(runtime.ReadPkru(), 0u);
    trampoline.EnterUser([&] {
      EXPECT_EQ(runtime.ReadPkru(), PkeyRuntime::kDenyAll);
      trampoline.EnterSystem(
          [&] { EXPECT_EQ(runtime.ReadPkru(), 0u); });
      EXPECT_EQ(runtime.ReadPkru(), PkeyRuntime::kDenyAll);
    });
    EXPECT_EQ(runtime.ReadPkru(), 0u);
  });
  EXPECT_EQ(runtime.ReadPkru(), PkeyRuntime::kDenyAll);
}

TEST(TrampolineTest, CountsEnters) {
  PkeyRuntime runtime(MpkBackend::kEmulated);
  Trampoline trampoline(&runtime, PkeyRuntime::kDenyAll, 0);
  for (int i = 0; i < 5; ++i) {
    trampoline.EnterSystem([] {});
  }
  EXPECT_EQ(trampoline.enter_count(), 5u);
}

TEST(TrampolineTest, PkruIsPerThreadInEmulatedBackend) {
  PkeyRuntime runtime(MpkBackend::kEmulated);
  runtime.WritePkru(PkeyRuntime::kDenyAll);
  uint32_t other_thread_pkru = 1;
  std::thread thread([&] { other_thread_pkru = runtime.ReadPkru(); });
  thread.join();
  EXPECT_EQ(other_thread_pkru, 0u);  // fresh thread starts fully open
  EXPECT_EQ(runtime.ReadPkru(), PkeyRuntime::kDenyAll);
  runtime.WritePkru(0);
}

}  // namespace
}  // namespace asmpk
