// Tests for the AsVM assembler and interpreter (both execution modes).

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/vm/assembler.h"
#include "src/vm/vm.h"

namespace asvm {
namespace {

HostTable EmptyHost() { return HostTable{}; }

int64_t MustRun(const std::string& body, VmMode mode = VmMode::kAot) {
  HostTable host = EmptyHost();
  auto result = RunSource(".func main\n" + body + "\n.end\n", host, mode);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value_or(-999);
}

// ---------------------------------------------------------------- assembler

TEST(AssemblerTest, RejectsGarbage) {
  EXPECT_FALSE(Assemble("bogus").ok());
  EXPECT_FALSE(Assemble(".func main\n frobnicate\n.end").ok());
  EXPECT_FALSE(Assemble(".func main\n push 1\n").ok());  // missing .end
  EXPECT_FALSE(Assemble(".func f\n halt\n.end").ok());   // no main
  EXPECT_FALSE(Assemble(".func main\n jmp nowhere\n.end").ok());
  EXPECT_FALSE(Assemble(".func main\n call nothing\n.end").ok());
  EXPECT_FALSE(
      Assemble(".func main\n halt\n.end\n.func main\n halt\n.end").ok());
}

TEST(AssemblerTest, DataSegments) {
  auto module = Assemble(R"(
    .pages 2
    .data 100 "hi\n"
    .data 200 de ad be ef
    .func main
      push 100
      load8
      halt
    .end
  )");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_EQ(module->initial_pages, 2u);
  ASSERT_EQ(module->data.size(), 2u);
  EXPECT_EQ(module->data[0].bytes,
            (std::vector<uint8_t>{'h', 'i', '\n'}));
  EXPECT_EQ(module->data[1].bytes,
            (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));

  HostTable host;
  Vm vm(&*module, &host);
  EXPECT_EQ(*vm.Run(), 'h');
}

TEST(AssemblerTest, ImageBytesCountsCodeAndData) {
  auto module = Assemble(
      ".data 0 01 02 03\n.func main\n push 1\n halt\n.end\n");
  ASSERT_TRUE(module.ok());
  EXPECT_GT(module->ImageBytes(), 3u);
}

// --------------------------------------------------------------- execution

TEST(VmTest, ArithmeticBasics) {
  EXPECT_EQ(MustRun("push 2\npush 3\nadd\nhalt"), 5);
  EXPECT_EQ(MustRun("push 10\npush 3\nsub\nhalt"), 7);
  EXPECT_EQ(MustRun("push 6\npush 7\nmul\nhalt"), 42);
  EXPECT_EQ(MustRun("push -7\npush 2\ndiv_s\nhalt"), -3);
  EXPECT_EQ(MustRun("push 17\npush 5\nrem_s\nhalt"), 2);
  EXPECT_EQ(MustRun("push 12\npush 10\nxor\nhalt"), 6);
  EXPECT_EQ(MustRun("push 1\npush 62\nshl\nhalt"), int64_t{1} << 62);
  EXPECT_EQ(MustRun("push -8\npush 1\nshr_s\nhalt"), -4);
}

TEST(VmTest, Comparisons) {
  EXPECT_EQ(MustRun("push 3\npush 4\nlt_s\nhalt"), 1);
  EXPECT_EQ(MustRun("push 4\npush 4\nlt_s\nhalt"), 0);
  EXPECT_EQ(MustRun("push 4\npush 4\nle_s\nhalt"), 1);
  EXPECT_EQ(MustRun("push 0\neqz\nhalt"), 1);
  EXPECT_EQ(MustRun("push 5\neqz\nhalt"), 0);
}

TEST(VmTest, LocalsAndControlFlow) {
  // Sum 1..10 with a loop.
  const std::string source = R"(
    .func main locals=2
      push 0
      local.set 0      # acc
      push 10
      local.set 1      # i
    loop:
      local.get 1
      jz done
      local.get 0
      local.get 1
      add
      local.set 0
      local.get 1
      push 1
      sub
      local.set 1
      jmp loop
    done:
      local.get 0
      halt
    .end
  )";
  HostTable host;
  EXPECT_EQ(*RunSource(source, host), 55);
}

TEST(VmTest, FunctionCallsWithParams) {
  const std::string source = R"(
    .func main
      push 9
      push 16
      call add2
      halt
    .end
    .func add2 params=2
      local.get 0
      local.get 1
      add
      ret
    .end
  )";
  HostTable host;
  EXPECT_EQ(*RunSource(source, host), 25);
}

TEST(VmTest, RecursionFibonacci) {
  const std::string source = R"(
    .func main
      push 15
      call fib
      halt
    .end
    .func fib params=1
      local.get 0
      push 2
      lt_s
      jz recurse
      local.get 0
      ret
    recurse:
      local.get 0
      push 1
      sub
      call fib
      local.get 0
      push 2
      sub
      call fib
      add
      ret
    .end
  )";
  HostTable host;
  EXPECT_EQ(*RunSource(source, host), 610);
}

TEST(VmTest, MemoryRoundTrip) {
  EXPECT_EQ(MustRun("push 512\npush 7777\nstore64\npush 512\nload64\nhalt"),
            7777);
  EXPECT_EQ(MustRun("push 64\npush 200\nstore8\npush 64\nload8\nhalt"), 200);
}

TEST(VmTest, MemGrow) {
  EXPECT_EQ(MustRun("memsize\nhalt"), 16);
  EXPECT_EQ(MustRun("push 4\nmemgrow\nhalt"), 16);
  EXPECT_EQ(MustRun("push 4\nmemgrow\ndrop\nmemsize\nhalt"), 20);
  EXPECT_EQ(MustRun("push 100000\nmemgrow\nhalt"), -1);
}

// --------------------------------------------------------------- traps

TEST(VmTrapTest, DivisionByZeroTraps) {
  HostTable host;
  auto result = RunSource(".func main\npush 1\npush 0\ndiv_s\nhalt\n.end", host);
  EXPECT_FALSE(result.ok());
}

TEST(VmTrapTest, OutOfBoundsLoadTraps) {
  HostTable host;
  auto result = RunSource(
      ".func main\npush 99999999\nload64\nhalt\n.end", host);
  EXPECT_FALSE(result.ok());
}

TEST(VmTrapTest, StackUnderflowTraps) {
  HostTable host;
  EXPECT_FALSE(RunSource(".func main\nadd\nhalt\n.end", host).ok());
  EXPECT_FALSE(RunSource(".func main\ndrop\nhalt\n.end", host).ok());
}

TEST(VmTrapTest, InfiniteRecursionTraps) {
  HostTable host;
  auto result = RunSource(R"(
    .func main
      call spin
      halt
    .end
    .func spin
      call spin
      ret
    .end
  )", host);
  EXPECT_FALSE(result.ok());
}

TEST(VmTrapTest, FuelLimitsRunawayLoops) {
  auto module = Assemble(R"(
    .func main
    forever:
      jmp forever
    .end
  )");
  ASSERT_TRUE(module.ok());
  HostTable host;
  Vm vm(&*module, &host);
  vm.set_fuel(10000);
  EXPECT_FALSE(vm.Run().ok());
  EXPECT_LE(vm.steps_executed(), 10001u);
}

TEST(VmTrapTest, UnresolvedHostcallTraps) {
  HostTable host;  // empty: nothing resolves
  auto result =
      RunSource(".func main\nhost no_such_call\nhalt\n.end", host);
  EXPECT_FALSE(result.ok());
}

// --------------------------------------------------------------- hostcalls

TEST(VmHostTest, HostcallReceivesArgsAndMemory) {
  HostTable host;
  int64_t seen_a = 0, seen_b = 0;
  std::string seen_text;
  host.Register("print", 2,
                [&](Vm& vm, std::span<const int64_t> args)
                    -> asbase::Result<int64_t> {
                  seen_a = args[0];
                  seen_b = args[1];
                  AS_ASSIGN_OR_RETURN(
                      seen_text,
                      vm.ReadGuestString(static_cast<uint64_t>(args[0]),
                                         static_cast<uint64_t>(args[1])));
                  return 1234;
                });
  const std::string source = R"(
    .data 300 "hola"
    .func main
      push 300
      push 4
      host print
      halt
    .end
  )";
  EXPECT_EQ(*RunSource(source, host), 1234);
  EXPECT_EQ(seen_a, 300);
  EXPECT_EQ(seen_b, 4);
  EXPECT_EQ(seen_text, "hola");
}

int64_t MustRunWithHost(const std::string& body, const HostTable& host) {
  auto result = RunSource(".func main\n" + body + "\n.end\n", host);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value_or(-999);
}

TEST(VmHostTest, HostcallCanWriteGuestMemory) {
  HostTable host;
  host.Register("fill", 1,
                [&](Vm& vm, std::span<const int64_t> args)
                    -> asbase::Result<int64_t> {
                  const uint8_t data[3] = {7, 8, 9};
                  AS_RETURN_IF_ERROR(vm.WriteGuestBytes(
                      static_cast<uint64_t>(args[0]), data));
                  return 0;
                });
  EXPECT_EQ(MustRunWithHost(
                "push 800\nhost fill\ndrop\npush 801\nload8\nhalt", host),
            8);
}

// --------------------------------------------------------------- modes

// Property: both execution modes compute identical results on random
// arithmetic programs; boxed mode is slower.
class VmModeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmModeTest, BoxedModeMatchesAotMode) {
  asbase::Rng rng(GetParam());
  // Random straight-line arithmetic on an accumulator seeded with pushes.
  std::string body = "push " + std::to_string(rng.Range(1, 1000)) + "\n";
  const char* ops[] = {"add", "sub", "mul", "xor", "or", "and"};
  for (int i = 0; i < 60; ++i) {
    body += "push " + std::to_string(rng.Range(1, 1 << 20)) + "\n";
    body += std::string(ops[rng.Below(6)]) + "\n";
  }
  body += "halt";
  const int64_t aot = MustRun(body, VmMode::kAot);
  const int64_t boxed = MustRun(body, VmMode::kBoxed);
  EXPECT_EQ(aot, boxed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmModeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(VmModeTest, BoxedModeIsSlower) {
  // Tight loop, identical in both modes.
  const std::string source = R"(
    .func main locals=1
      push 300000
      local.set 0
    loop:
      local.get 0
      jz done
      local.get 0
      push 1
      sub
      local.set 0
      jmp loop
    done:
      push 0
      halt
    .end
  )";
  auto module = Assemble(source);
  ASSERT_TRUE(module.ok());
  HostTable host;

  int64_t aot_nanos = 0, boxed_nanos = 0;
  {
    Vm vm(&*module, &host, VmMode::kAot);
    asbase::ScopedTimer timer(&aot_nanos);
    ASSERT_TRUE(vm.Run().ok());
  }
  {
    Vm vm(&*module, &host, VmMode::kBoxed);
    asbase::ScopedTimer timer(&boxed_nanos);
    ASSERT_TRUE(vm.Run().ok());
  }
  EXPECT_GT(boxed_nanos, aot_nanos)
      << "boxed (python-model) mode must cost more than AOT mode";
}

TEST(VmTest, StepCountTracksWork) {
  auto module = Assemble(".func main\npush 1\npush 2\nadd\nhalt\n.end");
  ASSERT_TRUE(module.ok());
  HostTable host;
  Vm vm(&*module, &host);
  ASSERT_TRUE(vm.Run().ok());
  EXPECT_EQ(vm.steps_executed(), 4u);
}

}  // namespace
}  // namespace asvm
