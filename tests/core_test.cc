// Tests for the AlloyStack core: WFD lifecycle, on-demand module loading,
// as-std syscall routing through the MPK trampoline, AsBuffer reference
// passing, orchestrator staging, visor/watchdog, and the WASI layer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/asstd/asstd.h"
#include "src/core/asstd/wasi.h"
#include "src/core/visor/visor.h"
#include "src/obs/metrics.h"

namespace alloy {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

WfdOptions SmallWfd() {
  WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;  // 8 MiB disk
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

// ------------------------------------------------------------ on-demand

TEST(WfdTest, CreateStartsWithNoModules) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  EXPECT_TRUE((*wfd)->libos().LoadedModules().empty())
      << "no as-libos module may be instantiated before first use";
  EXPECT_GT((*wfd)->creation_nanos(), 0);
  // WFD instantiation itself stays in the microsecond range (cold start).
  EXPECT_LT((*wfd)->creation_nanos(), 50'000'000);
}

TEST(WfdTest, FirstSyscallLoadsModuleSecondDoesNot) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());

  ASSERT_FALSE((*wfd)->libos().IsLoaded(ModuleKind::kFdtab));
  ASSERT_TRUE(as.WriteWholeFile("/a.txt", Bytes("x")).ok());  // slow path
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kFdtab));
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kFatfs));
  EXPECT_GT((*wfd)->libos().ModuleLoadNanos(ModuleKind::kFdtab), 0);

  const int64_t load_after_first = (*wfd)->libos().TotalLoadNanos();
  ASSERT_TRUE(as.WriteWholeFile("/b.txt", Bytes("y")).ok());  // fast path
  EXPECT_EQ((*wfd)->libos().TotalLoadNanos(), load_after_first)
      << "fast path must not re-load modules";
}

TEST(WfdTest, LoadAllBootsEverythingUpfront) {
  WfdOptions options = SmallWfd();
  options.on_demand = false;
  auto wfd = Wfd::Create(options);
  ASSERT_TRUE(wfd.ok());
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kMm));
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kFatfs));
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kFdtab));
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kTime));
  EXPECT_GT((*wfd)->libos().TotalLoadNanos(), 0);
}

TEST(WfdTest, OnDemandBeatsLoadAllOnColdStart) {
  // The headline claim of §4: with on-demand loading a workflow that needs
  // no module starts far faster than a load-all LibOS.
  WfdOptions lazy = SmallWfd();
  WfdOptions eager = SmallWfd();
  eager.on_demand = false;

  auto lazy_wfd = Wfd::Create(lazy);
  auto eager_wfd = Wfd::Create(eager);
  ASSERT_TRUE(lazy_wfd.ok());
  ASSERT_TRUE(eager_wfd.ok());
  const int64_t lazy_cold = (*lazy_wfd)->creation_nanos();
  const int64_t eager_cold =
      (*eager_wfd)->creation_nanos() + (*eager_wfd)->libos().TotalLoadNanos();
  EXPECT_LT(lazy_cold, eager_cold);
}

TEST(WfdTest, SharedModulesAcrossFunctionsInOneWfd) {
  // Figure 7(c): a later function reuses the module the first one loaded.
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  ASSERT_TRUE(as.WriteWholeFile("/shared.txt", Bytes("one")).ok());
  const int64_t loads = (*wfd)->libos().TotalLoadNanos();

  std::thread second_function([&] {
    auto data = as.ReadWholeFile("/shared.txt");
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(std::string(data->begin(), data->end()), "one");
  });
  second_function.join();
  EXPECT_EQ((*wfd)->libos().TotalLoadNanos(), loads);
}

TEST(WfdTest, RamfsVariantWorks) {
  WfdOptions options = SmallWfd();
  options.use_ramfs = true;
  auto wfd = Wfd::Create(options);
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  ASSERT_TRUE(as.WriteWholeFile("/r.txt", Bytes("ram")).ok());
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kRamfs));
  EXPECT_FALSE((*wfd)->libos().IsLoaded(ModuleKind::kFatfs));
}

// ------------------------------------------------------------ trampoline

TEST(AsStdTest, SyscallsCrossTheTrampoline) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  const uint64_t enters_before = (*wfd)->trampoline().enter_count();
  ASSERT_TRUE(as.NowMicros().ok());
  ASSERT_TRUE(as.NowMicros().ok());
  EXPECT_EQ((*wfd)->trampoline().enter_count(), enters_before + 2);
  EXPECT_EQ(as.syscall_count(), 2u);
}

TEST(AsStdTest, UserContextCannotTouchHeapWithoutItsKey) {
  // The MPK model: heap pages carry the user key; a PKRU that denies it
  // makes buffer memory unreachable (CheckAccess is what as-std consults
  // under the emulated backend).
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  auto buffer = as.AllocBuffer("guarded", 64, 1);
  ASSERT_TRUE(buffer.ok());

  auto& mpk = (*wfd)->mpk();
  mpk.WritePkru(asmpk::PkeyRuntime::kDenyAll);  // deny even the user key
  EXPECT_EQ(mpk.CheckAccess(buffer->bytes.data(), 8, true).code(),
            asbase::ErrorCode::kPermissionDenied);
  mpk.WritePkru((*wfd)->UserPkru((*wfd)->user_key()));
  EXPECT_TRUE(mpk.CheckAccess(buffer->bytes.data(), 8, true).ok());
  mpk.WritePkru(0);
}

// --------------------------------------------------------------- buffers

TEST(AsBufferTest, ReferencePassingRoundTrip) {
  // Figure 8: func_a writes, func_b reads through the same slot.
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());

  struct MyFuncData {
    char name[16];
    uint64_t year;
  };

  {  // func_a: sender
    auto data = AsBuffer<MyFuncData>::WithSlot(as, "Conference");
    ASSERT_TRUE(data.ok());
    std::strcpy((*data)->name, "Euro");
    (*data)->year = 2025;
  }
  {  // func_b: receiver
    auto data = AsBuffer<MyFuncData>::FromSlot(as, "Conference");
    ASSERT_TRUE(data.ok());
    EXPECT_STREQ((*data)->name, "Euro");
    EXPECT_EQ((*data)->year, 2025u);
    EXPECT_TRUE(data->Release().ok());
  }
}

TEST(AsBufferTest, AcquireIsSingleConsumer) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  struct Payload { uint64_t v; };
  ASSERT_TRUE(AsBuffer<Payload>::WithSlot(as, "s").ok());
  ASSERT_TRUE(AsBuffer<Payload>::FromSlot(as, "s").ok());
  EXPECT_EQ(AsBuffer<Payload>::FromSlot(as, "s").status().code(),
            asbase::ErrorCode::kNotFound);
}

TEST(AsBufferTest, TypeFingerprintMismatchRejected) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  struct A { uint64_t v; };
  struct B { uint64_t v; };
  ASSERT_TRUE(AsBuffer<A>::WithSlot(as, "typed").ok());
  EXPECT_EQ(AsBuffer<B>::FromSlot(as, "typed").status().code(),
            asbase::ErrorCode::kInvalidArgument);
}

TEST(AsBufferTest, ZeroCopySameAddressAcrossFunctions) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  auto sent = as.AllocBuffer("zc", 4096, 42);
  ASSERT_TRUE(sent.ok());
  sent->bytes[0] = 0xAB;
  auto received = as.AcquireBuffer("zc", 42);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->bytes.data(), sent->bytes.data())
      << "reference passing must not copy";
  EXPECT_EQ(received->bytes[0], 0xAB);
  ASSERT_TRUE(as.FreeBuffer(*received).ok());
}

TEST(AsBufferTest, FanOutAndFanInViaDistinctSlots) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  for (int i = 0; i < 3; ++i) {
    auto buffer = as.AllocBuffer("fan-" + std::to_string(i), 128, 1);
    ASSERT_TRUE(buffer.ok());
    buffer->bytes[0] = static_cast<uint8_t>(i + 10);
  }
  for (int i = 0; i < 3; ++i) {
    auto buffer = as.AcquireBuffer("fan-" + std::to_string(i), 1);
    ASSERT_TRUE(buffer.ok());
    EXPECT_EQ(buffer->bytes[0], static_cast<uint8_t>(i + 10));
    ASSERT_TRUE(as.FreeBuffer(*buffer).ok());
  }
}

// --------------------------------------------------------- mmap backend

TEST(MmapBackendTest, LazyFaultingReadsFileContent) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  AsStd as(wfd->get());
  std::vector<uint8_t> content(20000);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(as.WriteWholeFile("/blob.bin", content).ok());

  auto mapping = as.MapFile("/blob.bin");
  ASSERT_TRUE(mapping.ok());
  ASSERT_EQ(mapping->size(), content.size());
  ASSERT_TRUE(as.FaultIn(*mapping, 0, mapping->size()).ok());
  EXPECT_EQ(std::memcmp(mapping->data(), content.data(), content.size()), 0);
  EXPECT_TRUE((*wfd)->libos().IsLoaded(ModuleKind::kMmapFileBackend));
  ASSERT_TRUE(as.Unmap(*mapping).ok());
}

// ----------------------------------------------------------- orchestrator

TEST(OrchestratorTest, RunsStagesInOrderWithBarriers) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());

  std::atomic<int> stage_zero_done{0};
  std::atomic<bool> order_violated{false};
  FunctionRegistry::Global().Register(
      "test.stage0", [&](FunctionContext&) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        stage_zero_done.fetch_add(1);
        return asbase::OkStatus();
      });
  FunctionRegistry::Global().Register(
      "test.stage1", [&](FunctionContext& ctx) -> asbase::Status {
        if (stage_zero_done.load() != 3) {
          order_violated.store(true);
        }
        ctx.SetResult("done");
        return asbase::OkStatus();
      });

  WorkflowSpec spec;
  spec.name = "order";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.stage0", 3}}});
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.stage1", 1}}});

  Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(order_violated.load());
  EXPECT_EQ(stats->instances_run, 4u);
  EXPECT_EQ(stats->result, "done");
  EXPECT_GT(stats->total_nanos, 0);
}

TEST(OrchestratorTest, DataFlowsBetweenStagesByReference) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());

  FunctionRegistry::Global().Register(
      "test.producer", [](FunctionContext& ctx) -> asbase::Status {
        AS_ASSIGN_OR_RETURN(
            RawBuffer buffer,
            ctx.as().AllocBuffer("hand-off-" + std::to_string(ctx.instance()),
                                 256, 7));
        buffer.bytes[0] = static_cast<uint8_t>(100 + ctx.instance());
        return asbase::OkStatus();
      });
  FunctionRegistry::Global().Register(
      "test.consumer", [](FunctionContext& ctx) -> asbase::Status {
        int sum = 0;
        for (int i = 0; i < ctx.params()["producers"].as_int(); ++i) {
          AS_ASSIGN_OR_RETURN(
              RawBuffer buffer,
              ctx.as().AcquireBuffer("hand-off-" + std::to_string(i), 7));
          sum += buffer.bytes[0];
          AS_RETURN_IF_ERROR(ctx.as().FreeBuffer(buffer));
        }
        ctx.SetResult(std::to_string(sum));
        return asbase::OkStatus();
      });

  WorkflowSpec spec;
  spec.name = "flow";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.producer", 3}}});
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.consumer", 1}}});
  asbase::Json params;
  params.Set("producers", 3);

  Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, std::to_string(100 + 101 + 102));
}

TEST(OrchestratorTest, FailingFunctionAbortsRun) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  FunctionRegistry::Global().Register(
      "test.fails", [](FunctionContext&) -> asbase::Status {
        return asbase::Internal("deliberate failure");
      });
  WorkflowSpec spec;
  spec.name = "fails";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.fails", 1}}});
  Orchestrator orchestrator(wfd->get());
  EXPECT_FALSE(orchestrator.Run(spec, asbase::Json()).ok());
}

TEST(OrchestratorTest, WorkerPoolReusesThreadsAcrossInvocations) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());

  std::mutex ids_mutex;
  std::vector<std::thread::id> ids;
  FunctionRegistry::Global().Register(
      "test.tid", [&](FunctionContext&) -> asbase::Status {
        std::lock_guard<std::mutex> lock(ids_mutex);
        ids.push_back(std::this_thread::get_id());
        return asbase::OkStatus();
      });
  WorkflowSpec spec;
  spec.name = "tid";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.tid", 1}}});

  asobs::Counter& spawns = asobs::Registry::Global().GetCounter(
      "alloy_orch_thread_spawns_total");
  Orchestrator orchestrator(wfd->get());
  ASSERT_TRUE(orchestrator.Run(spec, asbase::Json()).ok());
  EXPECT_EQ((*wfd)->stage_worker_count(), 1u);
  const uint64_t spawns_after_first = spawns.value();

  // Warm reuse: reset between invocations, like the pool does.
  ASSERT_TRUE((*wfd)->Reset().ok());
  ASSERT_TRUE(orchestrator.Run(spec, asbase::Json()).ok());

  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], ids[1])
      << "a reused WFD must run stage instances on the same pool worker";
  EXPECT_EQ(spawns.value(), spawns_after_first)
      << "the second invocation on a warm WFD must spawn zero threads";
}

TEST(OrchestratorTest, SpawnPerStageFallbackStillRunsAndCountsSpawns) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  FunctionRegistry::Global().Register(
      "test.noop2", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  WorkflowSpec spec;
  spec.name = "legacy";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.noop2", 3}}});

  asobs::Counter& spawns = asobs::Registry::Global().GetCounter(
      "alloy_orch_thread_spawns_total");
  const uint64_t before = spawns.value();
  Orchestrator orchestrator(wfd->get());
  Orchestrator::RunOptions options;
  options.spawn_per_stage = true;
  auto stats = orchestrator.Run(spec, asbase::Json(), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->instances_run, 3u);
  EXPECT_EQ(spawns.value() - before, 3u)
      << "the legacy path spawns one thread per stage instance";
  EXPECT_EQ((*wfd)->stage_worker_count(), 0u)
      << "spawn_per_stage must not create the worker pool";
}

TEST(OrchestratorTest, RetryRecoversIdempotentFunction) {
  // Retry-based fault tolerance (§3.1): an idempotent function that crashes
  // once succeeds on re-execution without poisoning the WFD.
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  std::atomic<int> attempts{0};
  FunctionRegistry::Global().Register(
      "test.flaky", [&](FunctionContext&) -> asbase::Status {
        if (attempts.fetch_add(1) == 0) {
          throw std::runtime_error("simulated crash");
        }
        return asbase::OkStatus();
      });
  WorkflowSpec spec;
  spec.name = "flaky";
  FunctionSpec fn{"test.flaky", 1};
  fn.max_retries = 2;
  spec.stages.push_back(StageSpec{{fn}});
  Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(stats->retries, 1u);
}

TEST(OrchestratorTest, UnknownFunctionRejected) {
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  WorkflowSpec spec;
  spec.name = "ghost";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.no-such-fn", 1}}});
  Orchestrator orchestrator(wfd->get());
  EXPECT_EQ(orchestrator.Run(spec, asbase::Json()).status().code(),
            asbase::ErrorCode::kNotFound);
}

TEST(WorkflowSpecTest, ParsesFromJson) {
  auto config = asbase::Json::Parse(R"({
    "name": "wc",
    "stages": [
      {"functions": [{"name": "map", "instances": 3}]},
      {"functions": [{"name": "reduce"}]}
    ]
  })");
  ASSERT_TRUE(config.ok());
  auto spec = WorkflowSpec::FromJson(*config);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "wc");
  ASSERT_EQ(spec->stages.size(), 2u);
  EXPECT_EQ(spec->stages[0].functions[0].instances, 3);
  EXPECT_EQ(spec->stages[1].functions[0].instances, 1);
}

TEST(WorkflowSpecTest, RejectsMalformed) {
  auto bad = [](const char* text) {
    auto config = asbase::Json::Parse(text);
    return !config.ok() || !WorkflowSpec::FromJson(*config).ok();
  };
  EXPECT_TRUE(bad("{}"));
  EXPECT_TRUE(bad(R"({"name":"x"})"));
  EXPECT_TRUE(bad(R"({"name":"x","stages":[]})"));
  EXPECT_TRUE(bad(R"({"name":"x","stages":[{"functions":[]}]})"));
  EXPECT_TRUE(bad(R"({"name":"x","stages":[{"functions":[{"instances":2}]}]})"));
}

// ----------------------------------------------------------------- visor

TEST(VisorTest, InvokeRunsWorkflowInFreshWfd) {
  FunctionRegistry::Global().Register(
      "test.hello", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("hello " + ctx.params()["who"].as_string());
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "hello";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.hello", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  visor.RegisterWorkflow(spec, options);

  asbase::Json params;
  params.Set("who", "eurosys");
  auto result = visor.Invoke("hello", params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.result, "hello eurosys");
  EXPECT_GT(result->cold_start_nanos, 0);
  EXPECT_GE(result->end_to_end_nanos, result->run.total_nanos);

  EXPECT_FALSE(visor.Invoke("no-such-workflow", params).ok());
}

TEST(VisorTest, InvokeFromJsonConfig) {
  FunctionRegistry::Global().Register(
      "test.config-fn", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("ran");
        return asbase::OkStatus();
      });
  AsVisor visor;
  auto result = visor.InvokeFromConfig(R"({
    "name": "from-config",
    "stages": [{"functions": [{"name": "test.config-fn"}]}],
    "options": {"ramfs": true, "heap_mb": 8}
  })",
                                       asbase::Json());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.result, "ran");
}

TEST(VisorTest, WatchdogInvokesOverHttp) {
  FunctionRegistry::Global().Register(
      "test.http-fn", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("via-http:" + ctx.params()["x"].as_string());
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "httpwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.http-fn", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  visor.RegisterWorkflow(spec, options);
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/httpwf";
  request.body = R"({"x":"42"})";
  auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("via-http:42"), std::string::npos);

  // Health endpoint + unknown workflow.
  ashttp::HttpRequest health;
  health.method = "GET";
  health.target = "/health";
  EXPECT_EQ(ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), health)->body,
            "ok");
  request.target = "/invoke/missing";
  EXPECT_EQ(ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request)
                ->status,
            404);
  visor.StopWatchdog();
}

TEST(VisorTest, LatencyHistogramAccumulates) {
  FunctionRegistry::Global().Register(
      "test.quick", [](FunctionContext&) { return asbase::OkStatus(); });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "quick";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.quick", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  visor.RegisterWorkflow(spec, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(visor.Invoke("quick", asbase::Json()).ok());
  }
  auto histogram = visor.LatencyHistogram("quick");
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(histogram->count(), 5u);
}

// ------------------------------------------------------------------ WASI

TEST(WasiTest, VmFunctionTransfersDataThroughAsBuffer) {
  // Guest A registers a string buffer; guest B reads it back — the C/Python
  // path of §7.2 exercised end to end through as-libos.
  const std::string sender = R"(
    .data 100 "wfslot"
    .data 200 "payload-from-wasm"
    .func main
      push 100
      push 6
      push 200
      push 17
      host buffer_register
      halt
    .end
  )";
  const std::string receiver = R"(
    .data 100 "wfslot"
    .func main locals=1
      push 100
      push 6
      push 4096
      push 64
      host access_buffer
      local.set 0
      # report the received byte count
      push 4096
      local.get 0
      host ctx_set_result
      drop
      local.get 0
      halt
    .end
  )";
  ASSERT_TRUE(RegisterVmFunction("test.wasm-sender", sender).ok());
  ASSERT_TRUE(RegisterVmFunction("test.wasm-receiver", receiver).ok());

  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  WorkflowSpec spec;
  spec.name = "wasm-pipe";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.wasm-sender", 1}}});
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.wasm-receiver", 1}}});
  Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, "payload-from-wasm");
}

TEST(WasiTest, VmFunctionDoesFileIoThroughLibos) {
  const std::string writer = R"(
    .data 100 "/wasm.out"
    .data 200 "written-by-guest"
    .func main locals=1
      push 100
      push 9
      push 1            # write|create
      host path_open
      local.set 0
      local.get 0
      push 200
      push 16
      host fd_write
      drop
      local.get 0
      host fd_close
      halt
    .end
  )";
  ASSERT_TRUE(RegisterVmFunction("test.wasm-writer", writer).ok());

  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  WorkflowSpec spec;
  spec.name = "wasm-file";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.wasm-writer", 1}}});
  Orchestrator orchestrator(wfd->get());
  ASSERT_TRUE(orchestrator.Run(spec, asbase::Json()).ok());

  AsStd as(wfd->get());
  auto data = as.ReadWholeFile("/wasm.out");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "written-by-guest");
}

TEST(WasiTest, ContextAccessorsReachGuest) {
  const std::string source = R"(
    .data 100 "n"
    .func main
      host ctx_instances
      host ctx_instance
      add
      push 100
      push 1
      host ctx_param_int
      add
      halt
    .end
  )";
  ASSERT_TRUE(RegisterVmFunction("test.wasm-ctx", source).ok());
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  WorkflowSpec spec;
  spec.name = "wasm-ctx";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.wasm-ctx", 2}}});
  asbase::Json params;
  params.Set("n", 40);
  Orchestrator orchestrator(wfd->get());
  EXPECT_TRUE(orchestrator.Run(spec, params).ok());
}

TEST(WasiTest, PythonRuntimeLoadsStdlibImage) {
  ASSERT_TRUE(RegisterVmFunction("test.py-fn", R"(
    .func main
      push 0
      halt
    .end
  )",
                                 VmFunctionOptions{
                                     .python_runtime = true})
                  .ok());
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());

  // Pre-provision the stdlib image the way the bench harness does.
  AsStd as(wfd->get());
  ASSERT_TRUE(EnsurePythonStdlib(as).ok());

  WorkflowSpec spec;
  spec.name = "py";
  spec.stages.push_back(StageSpec{{FunctionSpec{"test.py-fn", 1}}});
  Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The stdlib read is attributed to the read-input phase.
  EXPECT_GT(stats->phases.read_input_nanos, 0);
}

// -------------------------------------------------------------- IFI mode

TEST(IfiTest, InterFunctionIsolationCostsPkruSwitches) {
  WfdOptions base = SmallWfd();
  WfdOptions ifi = SmallWfd();
  ifi.inter_function_isolation = true;

  auto run_pipe = [](const WfdOptions& options) -> uint64_t {
    auto wfd = Wfd::Create(options);
    EXPECT_TRUE(wfd.ok());
    AsStd as(wfd->get());
    auto buffer = as.AllocBuffer("p", 4096, 1);
    EXPECT_TRUE(buffer.ok());
    const uint64_t before = (*wfd)->mpk().switch_count();
    for (int i = 0; i < 10; ++i) {
      auto guard = as.BufferAccess();
      buffer->bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
    }
    return (*wfd)->mpk().switch_count() - before;
  };

  EXPECT_EQ(run_pipe(base), 0u) << "no PKRU cost without IFI";
  EXPECT_EQ(run_pipe(ifi), 20u) << "two PKRU writes per access under IFI";
}

}  // namespace
}  // namespace alloy
