// Tests for the HTTP layer over both transports (host sockets and the
// user-space netstack), plus the epoll edge reactor: keep-alive,
// pipelining, malformed-input hardening, connection cap, idle reap,
// partial writes, and thread boundedness.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "src/http/http.h"
#include "src/http/parser.h"
#include "src/obs/metrics.h"

namespace ashttp {
namespace {

// In-memory ByteStream for parser tests.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string data) : data_(std::move(data)) {}

  asbase::Result<size_t> Read(std::span<uint8_t> out) override {
    // Dribble bytes a few at a time to exercise incremental parsing.
    const size_t n = std::min({out.size(), data_.size() - pos_, size_t{7}});
    std::memcpy(out.data(), data_.data() + pos_, n);
    pos_ += n;
    return n;
  }
  asbase::Status Write(std::span<const uint8_t> data) override {
    written_.append(reinterpret_cast<const char*>(data.data()), data.size());
    return asbase::OkStatus();
  }
  const std::string& written() const { return written_; }

 private:
  std::string data_;
  size_t pos_ = 0;
  std::string written_;
};

TEST(HttpParseTest, RequestRoundTrip) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/wordcount";
  request.headers["x-workflow"] = "wc";
  request.body = "{\"input\":\"/data/in.txt\"}";

  MemoryStream stream(Serialize(request));
  auto parsed = ReadRequest(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/invoke/wordcount");
  EXPECT_EQ(parsed->headers.at("x-workflow"), "wc");
  EXPECT_EQ(parsed->body, request.body);
}

TEST(HttpParseTest, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.body = "no such workflow";
  MemoryStream stream(Serialize(response));
  auto parsed = ReadResponse(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->body, "no such workflow");
}

TEST(HttpParseTest, EmptyBodyWorks) {
  MemoryStream stream("GET /health HTTP/1.1\r\nhost: x\r\n\r\n");
  auto parsed = ReadRequest(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->target, "/health");
  EXPECT_TRUE(parsed->body.empty());
}

TEST(HttpParseTest, MalformedRequestRejected) {
  MemoryStream stream("NONSENSE\r\n\r\n");
  EXPECT_FALSE(ReadRequest(stream).ok());
}

TEST(HttpParseTest, TruncatedBodyRejected) {
  MemoryStream stream(
      "POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly a bit");
  EXPECT_EQ(ReadRequest(stream).status().code(),
            asbase::ErrorCode::kUnavailable);
}

// ------------------------------------------------------------ parser units

TEST(HttpParseTest, ContentLengthValidation) {
  EXPECT_EQ(*ParseContentLength("0", 1024), 0u);
  EXPECT_EQ(*ParseContentLength("123", 1024), 123u);
  EXPECT_EQ(*ParseContentLength("  42  ", 1024), 42u);
  EXPECT_EQ(ParseContentLength("banana", 1024).status().code(),
            asbase::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseContentLength("-1", 1024).status().code(),
            asbase::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseContentLength("1 2", 1024).status().code(),
            asbase::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseContentLength("", 1024).status().code(),
            asbase::ErrorCode::kInvalidArgument);
  // 20+ digits would overflow uint64 — rejected by length, not by wrapping.
  EXPECT_EQ(ParseContentLength("99999999999999999999", 1024).status().code(),
            asbase::ErrorCode::kInvalidArgument);
  EXPECT_EQ(ParseContentLength("2048", 1024).status().code(),
            asbase::ErrorCode::kResourceExhausted);
}

TEST(HttpParseTest, ConnectionTokenListIsCaseInsensitive) {
  EXPECT_TRUE(HasConnectionToken("close", "close"));
  EXPECT_TRUE(HasConnectionToken("Close", "close"));
  EXPECT_TRUE(HasConnectionToken("CLOSE", "close"));
  EXPECT_TRUE(HasConnectionToken("Keep-Alive, Upgrade", "keep-alive"));
  EXPECT_TRUE(HasConnectionToken(" keep-alive ,close", "close"));
  EXPECT_FALSE(HasConnectionToken("closed", "close"));
  EXPECT_FALSE(HasConnectionToken("keep-alive", "close"));

  HttpRequest request;
  request.version = "HTTP/1.1";
  EXPECT_FALSE(WantsClose(request));  // 1.1 defaults to keep-alive
  request.headers["connection"] = "Close";
  EXPECT_TRUE(WantsClose(request));  // the seed compared case-sensitively
  request.headers.clear();
  request.version = "HTTP/1.0";
  EXPECT_TRUE(WantsClose(request));  // 1.0 defaults to close
  request.headers["connection"] = "Keep-Alive";
  EXPECT_FALSE(WantsClose(request));
}

TEST(HttpParseTest, IncrementalParserHandlesPipelinedDribble) {
  const std::string wire =
      "POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc"
      "GET /b HTTP/1.1\r\nhost: x\r\n\r\n"
      "POST /c HTTP/1.1\r\ncontent-length: 2\r\n\r\nxy";
  RequestParser parser;
  std::vector<HttpRequest> requests;
  // One byte at a time: every head/body boundary is crossed mid-feed.
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1), &requests).ok());
  }
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].target, "/a");
  EXPECT_EQ(requests[0].body, "abc");
  EXPECT_EQ(requests[1].target, "/b");
  EXPECT_TRUE(requests[1].body.empty());
  EXPECT_EQ(requests[2].target, "/c");
  EXPECT_EQ(requests[2].body, "xy");
  EXPECT_TRUE(parser.idle());
}

TEST(HttpParseTest, ParserPoisonsOnMalformedContentLength) {
  RequestParser parser;
  std::vector<HttpRequest> requests;
  auto status = parser.Feed(
      "POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n", &requests);
  EXPECT_EQ(status.code(), asbase::ErrorCode::kInvalidArgument);
  EXPECT_EQ(RequestParser::StatusForParseError(status), 400);
  // Poisoned: later feeds keep failing rather than resyncing mid-stream.
  EXPECT_FALSE(parser.Feed("GET / HTTP/1.1\r\n\r\n", &requests).ok());
  EXPECT_TRUE(requests.empty());
}

TEST(HttpParseTest, ParserLimitsMapToHttpStatuses) {
  RequestParser::Limits limits;
  limits.max_header_bytes = 64;
  limits.max_body_bytes = 16;
  {
    RequestParser parser(limits);
    std::vector<HttpRequest> requests;
    auto status = parser.Feed(
        "GET / HTTP/1.1\r\nx-pad: " + std::string(200, 'p') + "\r\n\r\n",
        &requests);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(RequestParser::StatusForParseError(status), 431);
  }
  {
    RequestParser parser(limits);
    std::vector<HttpRequest> requests;
    auto status = parser.Feed(
        "POST / HTTP/1.1\r\ncontent-length: 1000\r\n\r\n", &requests);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(RequestParser::StatusForParseError(status), 413);
  }
}

// ------------------------------------------------------------ reactor edge

uint64_t EdgeCounter(const std::string& name) {
  return asobs::Registry::Global().GetCounter(name).value();
}

// Raw keep-alive client against the reactor: hand-written wire in, parsed
// responses out, visibility into half-close and reaping.
class RawClient {
 public:
  explicit RawClient(uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    timeval timeout{};
    timeout.tv_sec = 10;  // fail loudly instead of hanging the suite
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    stream_ = std::make_unique<HostStream>(fd_);  // owns + closes fd_
  }

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    ASSERT_TRUE(stream_
                    ->Write({reinterpret_cast<const uint8_t*>(data.data()),
                             data.size()})
                    .ok());
  }

  // Buffered response reader. ReadResponse() over-reads into the body and
  // drops trailing bytes, which loses pipelined responses that share a TCP
  // segment — so the raw client keeps its own carry-over buffer.
  asbase::Result<HttpResponse> ReadOne() {
    while (true) {
      const size_t end = inbuf_.find("\r\n\r\n");
      if (end != std::string::npos) {
        HttpResponse response;
        const std::string head = inbuf_.substr(0, end);
        const size_t sp1 = head.find(' ');
        response.status = std::atoi(head.c_str() + sp1 + 1);
        size_t body_len = 0;
        size_t pos = head.find("\r\n");
        while (pos != std::string::npos && pos + 2 < head.size()) {
          const size_t eol = std::min(head.find("\r\n", pos + 2), head.size());
          std::string line = head.substr(pos + 2, eol - pos - 2);
          for (char& c : line) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
          const size_t colon = line.find(':');
          if (colon != std::string::npos) {
            const std::string key = line.substr(0, colon);
            const std::string value = line.substr(line.find_first_not_of(
                " \t", colon + 1));
            response.headers[key] = value;
            if (key == "content-length") {
              body_len = std::stoul(value);
            }
          }
          pos = eol == head.size() ? std::string::npos : eol;
        }
        if (inbuf_.size() >= end + 4 + body_len) {
          response.body = inbuf_.substr(end + 4, body_len);
          inbuf_.erase(0, end + 4 + body_len);
          return response;
        }
      }
      uint8_t buffer[65536];
      auto n = stream_->Read(buffer);
      if (!n.ok()) {
        return n.status();
      }
      if (*n == 0) {
        return asbase::Unavailable("connection closed mid-response");
      }
      inbuf_.append(reinterpret_cast<char*>(buffer), *n);
    }
  }

  // True if the server closed the connection (EOF) before sending bytes.
  bool WaitClosed() {
    uint8_t byte;
    auto n = stream_->Read({&byte, 1});
    return n.ok() && *n == 0;
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::unique_ptr<HostStream> stream_;
  std::string inbuf_;  // bytes read past the last returned response
};

HttpServer EchoServer(HttpServerOptions options) {
  return HttpServer(
      [](const HttpRequest& request) {
        HttpResponse response;
        response.body = "echo:" + request.body + " @" + request.target;
        return response;
      },
      options);
}

TEST(HttpEdgeTest, MalformedContentLengthReturns400AndServerSurvives) {
  HttpServer server = EchoServer(HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());
  const uint64_t errors_before = EdgeCounter("alloy_edge_parse_errors_total");

  for (const std::string bad :
       {"banana", "99999999999999999999999999", "-4", "1e9"}) {
    RawClient client(server.port());
    ASSERT_TRUE(client.connected());
    client.Send("POST /invoke/x HTTP/1.1\r\ncontent-length: " + bad +
                "\r\n\r\n");
    auto response = client.ReadOne();
    ASSERT_TRUE(response.ok()) << bad;
    EXPECT_EQ(response->status, 400) << bad;
    EXPECT_TRUE(client.WaitClosed()) << bad;
  }
  EXPECT_GE(EdgeCounter("alloy_edge_parse_errors_total"), errors_before + 4);

  // The process (and the listener) survived the poison requests.
  HttpRequest request;
  request.method = "POST";
  request.target = "/run";
  request.body = "still alive";
  auto response = HttpCall("127.0.0.1", server.port(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "echo:still alive @/run");
  server.Stop();
}

TEST(HttpEdgeTest, OversizedHeadersAndBodiesAreBounded) {
  HttpServerOptions options;
  options.max_header_bytes = 1024;
  options.max_body_bytes = 2048;
  HttpServer server = EchoServer(options);
  ASSERT_TRUE(server.Start(0).ok());

  {
    RawClient client(server.port());
    client.Send("GET / HTTP/1.1\r\nx-pad: " + std::string(4096, 'p') +
                "\r\n\r\n");
    auto response = client.ReadOne();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 431);
    EXPECT_TRUE(client.WaitClosed());
  }
  {
    RawClient client(server.port());
    client.Send("POST / HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n");
    auto response = client.ReadOne();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 413);
    EXPECT_TRUE(client.WaitClosed());
  }
  server.Stop();
}

TEST(HttpEdgeTest, KeepAliveReusesOneConnection) {
  HttpServer server = EchoServer(HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());
  const uint64_t accepts_before = EdgeCounter("alloy_edge_accepts_total");

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    const std::string body = "ping" + std::to_string(i);
    client.Send("POST /kv HTTP/1.1\r\ncontent-length: " +
                std::to_string(body.size()) + "\r\n\r\n" + body);
    auto response = client.ReadOne();
    ASSERT_TRUE(response.ok()) << i;
    EXPECT_EQ(response->body, "echo:" + body + " @/kv");
  }
  EXPECT_EQ(EdgeCounter("alloy_edge_accepts_total"), accepts_before + 1);
  server.Stop();
}

TEST(HttpEdgeTest, PipelinedRequestsAnswerInOrder) {
  HttpServer server = EchoServer(HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());

  RawClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string wire;
  for (int i = 0; i < 8; ++i) {
    wire += "GET /seq/" + std::to_string(i) + " HTTP/1.1\r\nhost: x\r\n\r\n";
  }
  client.Send(wire);  // all eight requests in one burst
  for (int i = 0; i < 8; ++i) {
    auto response = client.ReadOne();
    ASSERT_TRUE(response.ok()) << i;
    EXPECT_EQ(response->body, "echo: @/seq/" + std::to_string(i));
  }
  server.Stop();
}

TEST(HttpEdgeTest, ConnectionCloseTokenIsCaseInsensitive) {
  HttpServer server = EchoServer(HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());

  // "Connection: Close" (capitalized) must close — the seed compared the
  // raw value with == "close" and kept a dead keep-alive loop around.
  RawClient client(server.port());
  client.Send("GET /bye HTTP/1.1\r\nconnection: Close\r\n\r\n");
  auto response = client.ReadOne();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->headers.at("connection"), "close");
  EXPECT_TRUE(client.WaitClosed());

  // HTTP/1.0 without keep-alive defaults to close...
  RawClient old_client(server.port());
  old_client.Send("GET /old HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(old_client.ReadOne().ok());
  EXPECT_TRUE(old_client.WaitClosed());

  // ...but stays open when it asks for keep-alive.
  RawClient ka_client(server.port());
  ka_client.Send("GET /a HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n");
  ASSERT_TRUE(ka_client.ReadOne().ok());
  ka_client.Send("GET /b HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n");
  auto second = ka_client.ReadOne();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->body, "echo: @/b");
  server.Stop();
}

TEST(HttpEdgeTest, ConnectionCapAnswers503) {
  HttpServerOptions options;
  options.max_connections = 2;
  HttpServer server = EchoServer(options);
  ASSERT_TRUE(server.Start(0).ok());
  const uint64_t overflows_before = EdgeCounter("alloy_edge_overflows_total");

  RawClient first(server.port());
  RawClient second(server.port());
  // A round trip each guarantees both are registered before the third
  // connection reaches the accept path.
  first.Send("GET /1 HTTP/1.1\r\nhost: x\r\n\r\n");
  ASSERT_TRUE(first.ReadOne().ok());
  second.Send("GET /2 HTTP/1.1\r\nhost: x\r\n\r\n");
  ASSERT_TRUE(second.ReadOne().ok());
  EXPECT_EQ(server.active_connections(), 2u);

  RawClient third(server.port());
  ASSERT_TRUE(third.connected());  // TCP accepts; HTTP says no
  auto response = third.ReadOne();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
  EXPECT_TRUE(third.WaitClosed());
  EXPECT_EQ(EdgeCounter("alloy_edge_overflows_total"), overflows_before + 1);

  // Slots free on close: a later connection gets in.
  first.ShutdownWrite();
  ASSERT_TRUE(first.WaitClosed());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.active_connections() >= 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RawClient fourth(server.port());
  fourth.Send("GET /4 HTTP/1.1\r\nhost: x\r\n\r\n");
  auto ok_response = fourth.ReadOne();
  ASSERT_TRUE(ok_response.ok());
  EXPECT_EQ(ok_response->status, 200);
  server.Stop();
}

TEST(HttpEdgeTest, IdleConnectionsAreReaped) {
  HttpServerOptions options;
  options.idle_timeout_ms = 50;
  HttpServer server = EchoServer(options);
  ASSERT_TRUE(server.Start(0).ok());
  const uint64_t reaped_before = EdgeCounter("alloy_edge_reaped_total");

  RawClient client(server.port());
  client.Send("GET /warm HTTP/1.1\r\nhost: x\r\n\r\n");
  ASSERT_TRUE(client.ReadOne().ok());
  // Now go quiet; the reactor's reap tick should cut the connection.
  EXPECT_TRUE(client.WaitClosed());
  EXPECT_GE(EdgeCounter("alloy_edge_reaped_total"), reaped_before + 1);
  server.Stop();
}

TEST(HttpEdgeTest, MidBodyDisconnectLeavesServerHealthy) {
  HttpServer server = EchoServer(HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());
  {
    RawClient client(server.port());
    client.Send("POST /part HTTP/1.1\r\ncontent-length: 1000\r\n\r\nonly");
    // Drop the connection with 996 body bytes owed.
  }
  HttpRequest request;
  request.target = "/after";
  auto response = HttpCall("127.0.0.1", server.port(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  server.Stop();
}

TEST(HttpEdgeTest, PartialWritesDeliverLargeResponse) {
  // A multi-megabyte response cannot fit the kernel send buffer, so the
  // reactor must park the flush on EAGAIN, arm EPOLLOUT, and resume — while
  // the client drains through a deliberately tiny receive buffer.
  const std::string big(6u << 20, 'z');
  HttpServer server(
      [&big](const HttpRequest&) {
        HttpResponse response;
        response.body = big;
        return response;
      },
      HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());

  RawClient client(server.port(), /*rcvbuf_bytes=*/4096);
  client.Send("GET /big HTTP/1.1\r\nhost: x\r\n\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it park
  auto response = client.ReadOne();
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->body.size(), big.size());
  EXPECT_EQ(response->body, big);
  server.Stop();
}

size_t CountOwnThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) {
    return 0;
  }
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') {
      ++count;
    }
  }
  ::closedir(dir);
  return count;
}

TEST(HttpEdgeTest, ResidentThreadsStayBoundedUnder1kConnections) {
  HttpServer server = EchoServer(HttpServerOptions{});
  ASSERT_TRUE(server.Start(0).ok());

  HttpRequest request;
  request.target = "/t";
  ASSERT_TRUE(HttpCall("127.0.0.1", server.port(), request).ok());
  const size_t threads_warm = CountOwnThreads();
  ASSERT_GT(threads_warm, 0u);

  // The seed kept one joinable thread per connection ever served, so 1k
  // sequential connections grew the thread table by 1k. The reactor must
  // hold the line exactly.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(HttpCall("127.0.0.1", server.port(), request).ok()) << i;
  }
  EXPECT_EQ(CountOwnThreads(), threads_warm);
  server.Stop();
}

TEST(HttpServerTest, ServesOverHostSocket) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.body = "echo:" + request.body + " @" + request.target;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);

  HttpRequest request;
  request.method = "POST";
  request.target = "/run";
  request.body = "payload";
  auto response = HttpCall("127.0.0.1", server.port(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "echo:payload @/run");
  server.Stop();
}

TEST(HttpServerTest, ManySequentialCalls) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  for (int i = 0; i < 20; ++i) {
    HttpRequest request;
    request.method = "POST";
    request.body = std::string(static_cast<size_t>(i * 100), 'x');
    auto response = HttpCall("127.0.0.1", server.port(), request);
    ASSERT_TRUE(response.ok()) << i;
    EXPECT_EQ(response->body.size(), static_cast<size_t>(i * 100));
  }
  server.Stop();
}

TEST(HttpServerTest, CallToDeadPortFails) {
  HttpRequest request;
  EXPECT_FALSE(HttpCall("127.0.0.1", 1, request).ok());
}

TEST(HttpOverNetstackTest, RequestResponseOverUserSpaceTcp) {
  asnet::VirtualSwitch fabric;
  auto server_port = fabric.Attach(asnet::MakeAddr(10, 0, 0, 1));
  auto client_port = fabric.Attach(asnet::MakeAddr(10, 0, 0, 2));
  asnet::NetStack server_stack(server_port);
  asnet::NetStack client_stack(client_port);

  auto listener = server_stack.Listen(80);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    AsnetStream stream(connection->get());
    auto request = ReadRequest(stream);
    ASSERT_TRUE(request.ok());
    HttpResponse response;
    response.body = "hello " + request->target;
    std::string wire = Serialize(response);
    ASSERT_TRUE(stream
                    .Write({reinterpret_cast<const uint8_t*>(wire.data()),
                            wire.size()})
                    .ok());
    (*connection)->Close();
  });

  auto connection = client_stack.Connect(server_stack.addr(), 80);
  ASSERT_TRUE(connection.ok());
  HttpRequest request;
  request.target = "/from-libos";
  auto response = HttpCallOver(**connection, request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "hello /from-libos");
  server_thread.join();
}

}  // namespace
}  // namespace ashttp
