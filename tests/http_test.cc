// Tests for the HTTP layer over both transports (host sockets and the
// user-space netstack).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/http/http.h"

namespace ashttp {
namespace {

// In-memory ByteStream for parser tests.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string data) : data_(std::move(data)) {}

  asbase::Result<size_t> Read(std::span<uint8_t> out) override {
    // Dribble bytes a few at a time to exercise incremental parsing.
    const size_t n = std::min({out.size(), data_.size() - pos_, size_t{7}});
    std::memcpy(out.data(), data_.data() + pos_, n);
    pos_ += n;
    return n;
  }
  asbase::Status Write(std::span<const uint8_t> data) override {
    written_.append(reinterpret_cast<const char*>(data.data()), data.size());
    return asbase::OkStatus();
  }
  const std::string& written() const { return written_; }

 private:
  std::string data_;
  size_t pos_ = 0;
  std::string written_;
};

TEST(HttpParseTest, RequestRoundTrip) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/wordcount";
  request.headers["x-workflow"] = "wc";
  request.body = "{\"input\":\"/data/in.txt\"}";

  MemoryStream stream(Serialize(request));
  auto parsed = ReadRequest(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/invoke/wordcount");
  EXPECT_EQ(parsed->headers.at("x-workflow"), "wc");
  EXPECT_EQ(parsed->body, request.body);
}

TEST(HttpParseTest, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.body = "no such workflow";
  MemoryStream stream(Serialize(response));
  auto parsed = ReadResponse(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->body, "no such workflow");
}

TEST(HttpParseTest, EmptyBodyWorks) {
  MemoryStream stream("GET /health HTTP/1.1\r\nhost: x\r\n\r\n");
  auto parsed = ReadRequest(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->target, "/health");
  EXPECT_TRUE(parsed->body.empty());
}

TEST(HttpParseTest, MalformedRequestRejected) {
  MemoryStream stream("NONSENSE\r\n\r\n");
  EXPECT_FALSE(ReadRequest(stream).ok());
}

TEST(HttpParseTest, TruncatedBodyRejected) {
  MemoryStream stream(
      "POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly a bit");
  EXPECT_EQ(ReadRequest(stream).status().code(),
            asbase::ErrorCode::kUnavailable);
}

TEST(HttpServerTest, ServesOverHostSocket) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.body = "echo:" + request.body + " @" + request.target;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);

  HttpRequest request;
  request.method = "POST";
  request.target = "/run";
  request.body = "payload";
  auto response = HttpCall("127.0.0.1", server.port(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "echo:payload @/run");
  server.Stop();
}

TEST(HttpServerTest, ManySequentialCalls) {
  HttpServer server([](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  for (int i = 0; i < 20; ++i) {
    HttpRequest request;
    request.method = "POST";
    request.body = std::string(static_cast<size_t>(i * 100), 'x');
    auto response = HttpCall("127.0.0.1", server.port(), request);
    ASSERT_TRUE(response.ok()) << i;
    EXPECT_EQ(response->body.size(), static_cast<size_t>(i * 100));
  }
  server.Stop();
}

TEST(HttpServerTest, CallToDeadPortFails) {
  HttpRequest request;
  EXPECT_FALSE(HttpCall("127.0.0.1", 1, request).ok());
}

TEST(HttpOverNetstackTest, RequestResponseOverUserSpaceTcp) {
  asnet::VirtualSwitch fabric;
  auto server_port = fabric.Attach(asnet::MakeAddr(10, 0, 0, 1));
  auto client_port = fabric.Attach(asnet::MakeAddr(10, 0, 0, 2));
  asnet::NetStack server_stack(server_port);
  asnet::NetStack client_stack(client_port);

  auto listener = server_stack.Listen(80);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    AsnetStream stream(connection->get());
    auto request = ReadRequest(stream);
    ASSERT_TRUE(request.ok());
    HttpResponse response;
    response.body = "hello " + request->target;
    std::string wire = Serialize(response);
    ASSERT_TRUE(stream
                    .Write({reinterpret_cast<const uint8_t*>(wire.data()),
                            wire.size()})
                    .ok());
    (*connection)->Close();
  });

  auto connection = client_stack.Connect(server_stack.addr(), 80);
  ASSERT_TRUE(connection.ok());
  HttpRequest request;
  request.target = "/from-libos";
  auto response = HttpCallOver(**connection, request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "hello /from-libos");
  server_thread.join();
}

}  // namespace
}  // namespace ashttp
