// Tests for the elastic shard mesh (DESIGN.md §12): live workflow migration
// with queue + warm-pool handoff, demand-weighted budget re-slicing, shard
// scale-up/down with consistent-hash redistribution, and the rebalance
// observability trail (counters + RebalanceLog in /debug/flight).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/visor/visor_rebalancer.h"
#include "src/core/visor/visor_router.h"
#include "src/obs/rebalance.h"

namespace alloy {
namespace {

WfdOptions SmallWfd() {
  WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;  // 8 MiB disk
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

ashttp::HttpRequest InvokeRequest(const std::string& workflow) {
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/" + workflow;
  return request;
}

void RegisterEcho() {
  static bool done = [] {
    FunctionRegistry::Global().Register(
        "rebalance.echo", [](FunctionContext& ctx) -> asbase::Status {
          ctx.SetResult("echoed");
          return asbase::OkStatus();
        });
    return true;
  }();
  (void)done;
}

WorkflowSpec EchoSpec(const std::string& name) {
  RegisterEcho();
  WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(StageSpec{{FunctionSpec{"rebalance.echo", 1}}});
  return spec;
}

// Gate: invocations block until `release` flips, so tests can pin demand on
// a shard deterministically.
std::atomic<int> gate_running{0};
std::atomic<bool> gate_release{false};

WorkflowSpec GateSpec(const std::string& name) {
  static bool done = [] {
    FunctionRegistry::Global().Register(
        "rebalance.gate", [](FunctionContext& ctx) -> asbase::Status {
          ++gate_running;
          while (!gate_release) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          --gate_running;
          ctx.SetResult("released");
          return asbase::OkStatus();
        });
    return true;
  }();
  (void)done;
  WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(StageSpec{{FunctionSpec{"rebalance.gate", 1}}});
  return spec;
}

// The shard that actually holds `name`, by asking every shard. Returns -1
// when unregistered, -2 when registered on more than one shard.
int OwningShard(AsVisorRouter& router, const std::string& name) {
  int owner = -1;
  for (size_t i = 0; i < router.shard_count(); ++i) {
    const auto names = router.shard(i).WorkflowNames();
    if (std::find(names.begin(), names.end(), name) != names.end()) {
      if (owner >= 0) {
        return -2;
      }
      owner = static_cast<int>(i);
    }
  }
  return owner;
}

// ------------------------------------------------------------- migration

TEST(RebalanceTest, MigrateWorkflowMovesRegistrationAndWarmPool) {
  RouterOptions router_options;
  router_options.shards = 3;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 2;
  router.RegisterWorkflow(EchoSpec("movablewf"), options);
  const size_t from = router.ShardOf("movablewf");

  // Two invocations park warm WFDs in the source pool.
  ASSERT_TRUE(router.Invoke("movablewf", asbase::Json()).ok());
  ASSERT_TRUE(router.Invoke("movablewf", asbase::Json()).ok());
  auto warm_before = router.WarmWfdCount("movablewf");
  ASSERT_TRUE(warm_before.ok());
  ASSERT_GE(*warm_before, 1u);

  const size_t to = (from + 1) % router.shard_count();
  ASSERT_TRUE(router.MigrateWorkflow("movablewf", to).ok());

  // Exactly one registration, on the target shard; the route follows.
  EXPECT_EQ(OwningShard(router, "movablewf"), static_cast<int>(to));
  EXPECT_EQ(router.ShardOf("movablewf"), to);

  // The warm WFDs survived the move: the next invocation is a warm start
  // on the new shard, not a cold-start storm.
  auto warm_after = router.WarmWfdCount("movablewf");
  ASSERT_TRUE(warm_after.ok());
  EXPECT_GE(*warm_after, 1u) << "warm pool must hand off, not evict";
  auto invoked = router.Invoke("movablewf", asbase::Json());
  ASSERT_TRUE(invoked.ok()) << invoked.status().ToString();
  EXPECT_TRUE(invoked->warm_start);

  // Migrating to the current owner is a no-op; an unknown workflow errors.
  EXPECT_TRUE(router.MigrateWorkflow("movablewf", to).ok());
  EXPECT_FALSE(router.MigrateWorkflow("nosuchwf", 0).ok());
}

TEST(RebalanceTest, QueuedAdmissionsHandOffDuringMigration) {
  gate_release = false;
  gate_running = 0;
  RouterOptions router_options;
  router_options.shards = 2;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  options.max_concurrency = 1;
  options.queue_capacity = 8;
  options.queueing_budget_ms = 60'000;
  router.RegisterWorkflow(GateSpec("handoffwf"), options);
  const size_t from = router.ShardOf("handoffwf");
  AsVisor::ServingOptions serving;
  serving.worker_threads = 8;
  serving.max_inflight = 8;
  ASSERT_TRUE(router.StartWatchdog(0, serving).ok());

  asobs::Counter& handoffs = asobs::Registry::Global().GetCounter(
      "alloy_rebalance_queue_handoffs_total", {});
  const uint64_t handoffs_before = handoffs.value();

  // One request holds the workflow's only slot...
  std::thread holder([&] {
    auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                     InvokeRequest("handoffwf"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << response->body;
  });
  while (gate_running.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...three more queue behind it on the source shard.
  constexpr int kQueued = 3;
  std::vector<std::thread> waiters;
  std::atomic<int> ok_count{0};
  std::atomic<int> fail_status{0};
  for (int i = 0; i < kQueued; ++i) {
    waiters.emplace_back([&] {
      auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                       InvokeRequest("handoffwf"));
      ASSERT_TRUE(response.ok());
      if (response->status == 200) {
        ++ok_count;
      } else {
        fail_status = response->status;
      }
    });
  }
  asobs::Gauge& queued_gauge = asobs::Registry::Global().GetGauge(
      "alloy_visor_queued", {{"workflow", "handoffwf"},
                             {"alloy_visor_shard", std::to_string(from)}});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (queued_gauge.value() < kQueued &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(queued_gauge.value(), kQueued);

  // Migrate the workflow out from under its own queue. The queued waiters
  // must hand off to the new shard and succeed — zero 503s, zero 404s.
  const size_t to = (from + 1) % 2;
  ASSERT_TRUE(router.MigrateWorkflow("handoffwf", to).ok());
  gate_release = true;
  holder.join();
  for (std::thread& waiter : waiters) {
    waiter.join();
  }
  EXPECT_EQ(ok_count.load(), kQueued)
      << "a queued request died with HTTP " << fail_status.load()
      << " instead of handing off";
  EXPECT_GE(handoffs.value(), handoffs_before + kQueued);

  // The migration left its audit trail in the merged flight report.
  ashttp::HttpRequest flight;
  flight.method = "GET";
  flight.target = "/debug/flight";
  auto report = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), flight);
  ASSERT_TRUE(report.ok());
  auto doc = asbase::Json::Parse(report->body);
  ASSERT_TRUE(doc.ok()) << report->body;
  bool saw_migration = false;
  for (const asbase::Json& event : (*doc)["rebalance_events"].array()) {
    if (event["kind"].as_string() == "migrate" &&
        event["workflow"].as_string() == "handoffwf") {
      saw_migration = true;
    }
  }
  EXPECT_TRUE(saw_migration) << report->body;
  router.StopWatchdog();
}

// ------------------------------------------------------- budget re-slicing

TEST(RebalanceTest, DemandWeightedSlicesApportionExactly) {
  // Uniform demand -> even split, exact total.
  auto even = DemandWeightedSlices(8, {1, 1, 1, 1});
  EXPECT_EQ(even, (std::vector<size_t>{2, 2, 2, 2}));
  // Skewed demand -> proportional, floor of 1, exact total.
  auto skewed = DemandWeightedSlices(8, {7, 1});
  EXPECT_EQ(skewed[0] + skewed[1], 8u);
  EXPECT_GE(skewed[0], 6u);
  EXPECT_GE(skewed[1], 1u);
  // Budget smaller than the shard count: everyone keeps the floor.
  auto floor = DemandWeightedSlices(2, {5, 5, 5});
  EXPECT_EQ(floor, (std::vector<size_t>{1, 1, 1}));
  // Zero weights fall back to the even split.
  auto zero = DemandWeightedSlices(6, {0, 0, 0});
  EXPECT_EQ(zero, (std::vector<size_t>{2, 2, 2}));
}

TEST(RebalanceTest, ResliceShiftsBudgetTowardHotShardAndBack) {
  gate_release = false;
  gate_running = 0;
  RouterOptions router_options;
  router_options.shards = 2;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  options.max_concurrency = 8;
  options.queue_capacity = 16;
  options.queueing_budget_ms = 60'000;
  options.pin_shard = 0;
  router.RegisterWorkflow(GateSpec("hotwf"), options);
  options.pin_shard = 1;
  router.RegisterWorkflow(EchoSpec("coldwf"), options);
  AsVisor::ServingOptions serving;
  serving.worker_threads = 8;
  serving.max_inflight = 8;
  ASSERT_TRUE(router.StartWatchdog(0, serving).ok());
  ASSERT_EQ(router.shard(0).max_inflight(), 4u);
  ASSERT_EQ(router.shard(1).max_inflight(), 4u);

  RebalancerOptions rebalance;
  rebalance.enabled = true;
  rebalance.cooldown_ms = 0;  // tests step the controller directly
  rebalance.reslice_deadband = 2;
  rebalance.migrate = false;
  rebalance.scale = false;
  ShardRebalancer rebalancer(&router, rebalance);

  // Saturate shard 0: 4 running (its whole slice) + 2 queued.
  std::vector<std::thread> load;
  for (int i = 0; i < 6; ++i) {
    load.emplace_back([&] {
      auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                       InvokeRequest("hotwf"));
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->status, 200) << response->body;
    });
  }
  asobs::Gauge& queued_gauge = asobs::Registry::Global().GetGauge(
      "alloy_visor_queued",
      {{"workflow", "hotwf"}, {"alloy_visor_shard", "0"}});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((gate_running.load() < 4 || queued_gauge.value() < 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(gate_running.load(), 4);
  ASSERT_GE(queued_gauge.value(), 2);

  // One control pass: the idle shard's budget flows to the hot one.
  EXPECT_TRUE(rebalancer.TickOnce());
  const size_t hot_slice = router.shard(0).max_inflight();
  const size_t cold_slice = router.shard(1).max_inflight();
  EXPECT_GT(hot_slice, 4u) << "hot shard must gain budget";
  EXPECT_LT(cold_slice, 4u) << "idle shard must cede budget";
  EXPECT_EQ(hot_slice + cold_slice, 8u) << "the total budget is conserved";
  EXPECT_GE(cold_slice, 1u) << "an idle shard keeps a trickle";

  // Load drains; the next pass restores the even split (hysteresis must
  // not wedge the skewed slices in place).
  gate_release = true;
  for (std::thread& thread : load) {
    thread.join();
  }
  EXPECT_TRUE(rebalancer.TickOnce());
  EXPECT_EQ(router.shard(0).max_inflight(), 4u);
  EXPECT_EQ(router.shard(1).max_inflight(), 4u);

  // Balanced load inside the dead band: no action, no churn.
  EXPECT_FALSE(rebalancer.TickOnce());
  router.StopWatchdog();
}

// ------------------------------------------------------------ shard scaling

TEST(RebalanceTest, ScaleDownRedistributesAFractionAndEvacuates) {
  RouterOptions router_options;
  router_options.shards = 5;
  router_options.min_shards = 1;
  router_options.max_shards = 5;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  const int kNames = 120;
  std::vector<size_t> before(kNames);
  for (int i = 0; i < kNames; ++i) {
    const std::string name = "scale-" + std::to_string(i);
    router.RegisterWorkflow(EchoSpec(name), options);
    before[i] = router.ShardOf(name);
  }

  ASSERT_TRUE(router.ScaleTo(4).ok());
  ASSERT_EQ(router.shard_count(), 4u);

  int moved = 0;
  std::set<std::string> seen;
  for (int i = 0; i < kNames; ++i) {
    const std::string name = "scale-" + std::to_string(i);
    const size_t after = router.ShardOf(name);
    ASSERT_LT(after, 4u) << name << " still routed to a removed shard";
    EXPECT_EQ(OwningShard(router, name), static_cast<int>(after))
        << name << " registration does not match its route";
    if (after != before[i]) {
      ++moved;
      // Consistent hashing: only keys the removed shard owned move.
      EXPECT_EQ(before[i], 4u)
          << name << " moved although its shard survived";
    }
  }
  // ~1/5 of the keys lived on the removed shard; allow generous slack but
  // reject the ~4/5 a modulo hash would reshuffle.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kNames / 2)
      << "scale-down reshuffled most keys; consistent hashing is broken";

  // The surviving mesh still serves everything.
  for (int i = 0; i < kNames; i += 17) {
    auto invoked =
        router.Invoke("scale-" + std::to_string(i), asbase::Json());
    ASSERT_TRUE(invoked.ok()) << invoked.status().ToString();
  }
}

TEST(RebalanceTest, RebalancerScalesUpUnderLoadAndBackDownWhenIdle) {
  gate_release = false;
  gate_running = 0;
  RouterOptions router_options;
  router_options.shards = 1;
  router_options.min_shards = 1;
  router_options.max_shards = 2;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  options.max_concurrency = 4;
  options.queue_capacity = 8;
  options.queueing_budget_ms = 60'000;
  router.RegisterWorkflow(GateSpec("elasticwf"), options);
  AsVisor::ServingOptions serving;
  serving.worker_threads = 4;
  serving.max_inflight = 2;
  ASSERT_TRUE(router.StartWatchdog(0, serving).ok());

  RebalancerOptions rebalance;
  rebalance.enabled = true;
  rebalance.cooldown_ms = 0;
  rebalance.migrate = false;
  rebalance.scale = true;
  ShardRebalancer rebalancer(&router, rebalance);

  // Saturate: 2 running fill the global budget, 2 queue. Utilization 2x.
  std::vector<std::thread> load;
  for (int i = 0; i < 4; ++i) {
    load.emplace_back([&] {
      auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                       InvokeRequest("elasticwf"));
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response->status, 200) << response->body;
    });
  }
  asobs::Gauge& queued_gauge = asobs::Registry::Global().GetGauge(
      "alloy_visor_queued",
      {{"workflow", "elasticwf"}, {"alloy_visor_shard", "0"}});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((gate_running.load() < 2 || queued_gauge.value() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(gate_running.load(), 2);

  EXPECT_TRUE(rebalancer.TickOnce());
  EXPECT_EQ(router.shard_count(), 2u) << "saturation must grow the mesh";
  // In-flight requests and the queue survive the scale-up.
  gate_release = true;
  for (std::thread& thread : load) {
    thread.join();
  }

  // Demand gone: the mesh shrinks back to the floor.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (gate_running.load() > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(rebalancer.TickOnce());
  EXPECT_EQ(router.shard_count(), 1u) << "idle mesh must scale back down";

  // The workflow still serves after the round trip.
  auto invoked = router.Invoke("elasticwf", asbase::Json());
  ASSERT_TRUE(invoked.ok()) << invoked.status().ToString();
  router.StopWatchdog();
}

}  // namespace
}  // namespace alloy
