// Tests for multi-visor sharding (DESIGN.md §10): consistent-hash routing,
// pin overrides + migration, shard-count redistribution, the shared
// watchdog server, budget splitting, and multi-shard drain on stop.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/visor/visor_router.h"

namespace alloy {
namespace {

WfdOptions SmallWfd() {
  WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;  // 8 MiB disk
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

ashttp::HttpRequest InvokeRequest(const std::string& workflow,
                                  const std::string& body = "") {
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/" + workflow;
  request.body = body;
  return request;
}

void RegisterEcho() {
  static bool done = [] {
    FunctionRegistry::Global().Register(
        "router.echo", [](FunctionContext& ctx) -> asbase::Status {
          ctx.SetResult("echoed");
          return asbase::OkStatus();
        });
    return true;
  }();
  (void)done;
}

WorkflowSpec EchoSpec(const std::string& name) {
  RegisterEcho();
  WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(StageSpec{{FunctionSpec{"router.echo", 1}}});
  return spec;
}

// The shard that actually holds `name`, by asking every shard. Returns -1
// when unregistered, -2 when registered on more than one shard.
int OwningShard(AsVisorRouter& router, const std::string& name) {
  int owner = -1;
  for (size_t i = 0; i < router.shard_count(); ++i) {
    const auto names = router.shard(i).WorkflowNames();
    if (std::find(names.begin(), names.end(), name) != names.end()) {
      if (owner >= 0) {
        return -2;
      }
      owner = static_cast<int>(i);
    }
  }
  return owner;
}

TEST(VisorRouterTest, SameShardAcrossReRegistration) {
  RouterOptions router_options;
  router_options.shards = 4;
  AsVisorRouter router(router_options);
  ASSERT_EQ(router.shard_count(), 4u);

  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  router.RegisterWorkflow(EchoSpec("stablewf"), options);
  const size_t first = router.ShardOf("stablewf");
  EXPECT_EQ(first, router.HashShard("stablewf"));
  EXPECT_EQ(OwningShard(router, "stablewf"), static_cast<int>(first));

  // Re-registration (changed options, no pin) stays on the hash shard.
  options.max_concurrency = 2;
  router.RegisterWorkflow(EchoSpec("stablewf"), options);
  EXPECT_EQ(router.ShardOf("stablewf"), first);
  EXPECT_EQ(OwningShard(router, "stablewf"), static_cast<int>(first));
}

TEST(VisorRouterTest, PinOverrideAndMigrationWithoutDoubleRegistration) {
  RouterOptions router_options;
  router_options.shards = 4;
  AsVisorRouter router(router_options);

  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  options.pin_shard = 2;
  router.RegisterWorkflow(EchoSpec("pinnedwf"), options);
  EXPECT_EQ(router.ShardOf("pinnedwf"), 2u);
  EXPECT_EQ(OwningShard(router, "pinnedwf"), 2);

  auto invoked = router.Invoke("pinnedwf", asbase::Json());
  ASSERT_TRUE(invoked.ok()) << invoked.status().ToString();
  EXPECT_EQ(invoked->run.result, "echoed");

  // Re-pin: the workflow moves and the old shard forgets it — never two
  // registrations visible at once.
  options.pin_shard = 1;
  router.RegisterWorkflow(EchoSpec("pinnedwf"), options);
  EXPECT_EQ(router.ShardOf("pinnedwf"), 1u);
  EXPECT_EQ(OwningShard(router, "pinnedwf"), 1);
  invoked = router.Invoke("pinnedwf", asbase::Json());
  ASSERT_TRUE(invoked.ok()) << invoked.status().ToString();

  // Dropping the pin sends it back to the hash placement.
  options.pin_shard = -1;
  router.RegisterWorkflow(EchoSpec("pinnedwf"), options);
  EXPECT_EQ(router.ShardOf("pinnedwf"), router.HashShard("pinnedwf"));
  EXPECT_EQ(OwningShard(router, "pinnedwf"),
            static_cast<int>(router.HashShard("pinnedwf")));

  // Pins wrap modulo shard count.
  options.pin_shard = 7;
  router.RegisterWorkflow(EchoSpec("pinnedwf"), options);
  EXPECT_EQ(router.ShardOf("pinnedwf"), 3u);
}

TEST(VisorRouterTest, ShardCountChangeRedistributesAFraction) {
  RouterOptions four_options;
  four_options.shards = 4;
  AsVisorRouter four(four_options);
  RouterOptions five_options;
  five_options.shards = 5;
  AsVisorRouter five(five_options);

  // Consistent hashing: growing 4 -> 5 shards should move roughly 1/5 of
  // the keys, far below the ~4/5 a modulo hash would reshuffle.
  int moved = 0;
  const int kNames = 200;
  for (int i = 0; i < kNames; ++i) {
    const std::string name = "wf-" + std::to_string(i);
    if (four.HashShard(name) != five.HashShard(name)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0) << "a bigger ring must claim some keys";
  EXPECT_LT(moved, kNames / 2)
      << "consistent hashing must not reshuffle most keys";

  // Registering every name on the 5-shard router lands each on exactly one
  // shard, matching its hash placement.
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  size_t total = 0;
  for (int i = 0; i < kNames; ++i) {
    five.RegisterWorkflow(EchoSpec("wf-" + std::to_string(i)), options);
  }
  std::set<std::string> seen;
  for (size_t s = 0; s < five.shard_count(); ++s) {
    for (const std::string& name : five.shard(s).WorkflowNames()) {
      EXPECT_TRUE(seen.insert(name).second)
          << name << " registered on more than one shard";
      EXPECT_EQ(five.ShardOf(name), s);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kNames));
}

TEST(VisorRouterTest, SharedServerRoutesMixedLoadWithShardLabels) {
  RouterOptions router_options;
  router_options.shards = 4;
  AsVisorRouter router(router_options);
  for (int i = 0; i < 4; ++i) {
    AsVisor::WorkflowOptions options;
    options.wfd = SmallWfd();
    options.pool_size = 1;
    options.pin_shard = i;  // spread the mixed load across all shards
    router.RegisterWorkflow(EchoSpec("mixed-" + std::to_string(i)), options);
  }
  AsVisor::ServingOptions serving;
  serving.worker_threads = 8;
  serving.max_inflight = 8;
  ASSERT_TRUE(router.StartWatchdog(0, serving).ok());
  // Each shard got an even slice of the global budget.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(router.shard(s).max_inflight(), 2u);
  }

  ashttp::HttpRequest health;
  health.method = "GET";
  health.target = "/health";
  auto health_response =
      ashttp::HttpCall("127.0.0.1", router.watchdog_port(), health);
  ASSERT_TRUE(health_response.ok());
  EXPECT_EQ(health_response->body, "ok");

  for (int i = 0; i < 4; ++i) {
    auto response =
        ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                         InvokeRequest("mixed-" + std::to_string(i)));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << response->body;
  }

  // /metrics aggregates all shards; per-shard series carry the label.
  ashttp::HttpRequest metrics;
  metrics.method = "GET";
  metrics.target = "/metrics";
  auto metrics_response =
      ashttp::HttpCall("127.0.0.1", router.watchdog_port(), metrics);
  ASSERT_TRUE(metrics_response.ok());
  for (int i = 0; i < 4; ++i) {
    const std::string label =
        "alloy_visor_shard=\"" + std::to_string(i) + "\"";
    EXPECT_NE(metrics_response->body.find(label), std::string::npos)
        << "metrics must carry " << label;
  }

  // /trace routes by the workflow query param.
  ashttp::HttpRequest trace;
  trace.method = "GET";
  trace.target = "/trace?workflow=mixed-2";
  auto trace_response =
      ashttp::HttpCall("127.0.0.1", router.watchdog_port(), trace);
  ASSERT_TRUE(trace_response.ok());
  EXPECT_EQ(trace_response->status, 200) << trace_response->body;

  router.StopWatchdog();
}

TEST(VisorRouterTest, StartStopStartCycle) {
  RouterOptions router_options;
  router_options.shards = 2;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  router.RegisterWorkflow(EchoSpec("cyclewf"), options);

  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(router.StartWatchdog(0).ok()) << "cycle " << cycle;
    auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                     InvokeRequest("cyclewf"));
    ASSERT_TRUE(response.ok()) << "cycle " << cycle;
    EXPECT_EQ(response->status, 200)
        << "cycle " << cycle << ": " << response->body;
    router.StopWatchdog();
    EXPECT_EQ(router.watchdog_port(), 0u);
  }
  // A second stop is a no-op, not a crash.
  router.StopWatchdog();
}

TEST(VisorRouterTest, StopWatchdogDrainsQueuedAdmissionsWith503) {
  static std::atomic<bool> started{false};
  static std::atomic<bool> release{false};
  started = false;
  release = false;
  FunctionRegistry::Global().Register(
      "router.gate", [](FunctionContext& ctx) -> asbase::Status {
        started = true;
        while (!release) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ctx.SetResult("released");
        return asbase::OkStatus();
      });
  RouterOptions router_options;
  router_options.shards = 2;
  AsVisorRouter router(router_options);
  WorkflowSpec spec;
  spec.name = "gatewf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"router.gate", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  options.max_concurrency = 1;
  options.queue_capacity = 4;
  options.queueing_budget_ms = 60'000;
  router.RegisterWorkflow(spec, options);
  ASSERT_TRUE(router.StartWatchdog(0).ok());

  // First request holds the workflow's only slot...
  std::thread holder([&] {
    auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                     InvokeRequest("gatewf"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << response->body;
  });
  while (!started) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...the second queues behind it.
  std::atomic<int> queued_status{0};
  std::thread queued([&] {
    auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(),
                                     InvokeRequest("gatewf"));
    ASSERT_TRUE(response.ok());
    queued_status = response->status;
  });
  const size_t owner = router.ShardOf("gatewf");
  asobs::Gauge& queued_gauge = asobs::Registry::Global().GetGauge(
      "alloy_visor_queued", {{"workflow", "gatewf"},
                             {"alloy_visor_shard", std::to_string(owner)}});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (queued_gauge.value() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(queued_gauge.value(), 1) << "second request must be queued";

  // Stop while one invocation runs and one waits: the waiter must unwind
  // with 503, the runner must be allowed to finish (release it so Stop's
  // connection join can complete).
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    release = true;
  });
  router.StopWatchdog();
  holder.join();
  queued.join();
  releaser.join();
  EXPECT_EQ(queued_status.load(), 503)
      << "queued admission must drain with 503 on stop";
}

// ---------------------- shared-server observability endpoints (§11)

TEST(VisorRouterTest, ReadyzAggregatesShardDrainState) {
  RouterOptions router_options;
  router_options.shards = 2;
  AsVisorRouter router(router_options);
  ASSERT_TRUE(router.StartWatchdog(0).ok());

  ashttp::HttpRequest request;
  request.method = "GET";
  request.target = "/healthz";
  auto healthz = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), request);
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);

  request.target = "/readyz";
  auto ready = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), request);
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);

  // One shard draining pulls the whole process out of rotation; the body
  // names the culprit.
  router.shard(1).BeginDrain();
  auto drained = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), request);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->status, 503);
  auto doc = asbase::Json::Parse(drained->body);
  ASSERT_TRUE(doc.ok()) << drained->body;
  EXPECT_FALSE((*doc)["ready"].as_bool(true));
  ASSERT_EQ((*doc)["shards"].array().size(), 2u);
  EXPECT_FALSE((*doc)["shards"].array()[0]["draining"].as_bool(true));
  EXPECT_TRUE((*doc)["shards"].array()[1]["draining"].as_bool(false));
}

TEST(VisorRouterTest, DebugFlightMergesAcrossShards) {
  RouterOptions router_options;
  router_options.shards = 4;
  AsVisorRouter router(router_options);
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  // Pin two workflows to different shards so the merged report provably
  // spans more than one flight ring.
  options.pin_shard = 0;
  router.RegisterWorkflow(EchoSpec("flight-a"), options);
  options.pin_shard = 2;
  router.RegisterWorkflow(EchoSpec("flight-b"), options);
  ASSERT_TRUE(router.StartWatchdog(0).ok());

  ASSERT_TRUE(router.Invoke("flight-a", asbase::Json()).ok());
  ASSERT_TRUE(router.Invoke("flight-b", asbase::Json()).ok());

  // No workflow param: the router merges every shard's ring.
  ashttp::HttpRequest request;
  request.method = "GET";
  request.target = "/debug/flight";
  auto response = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto doc = asbase::Json::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  EXPECT_GE((*doc)["count"].as_int(), 2);
  std::set<std::string> workflows;
  std::set<int64_t> shards;
  for (const asbase::Json& record : (*doc)["records"].array()) {
    workflows.insert(record["workflow"].as_string());
    shards.insert(record["shard"].as_int());
  }
  EXPECT_TRUE(workflows.count("flight-a")) << response->body;
  EXPECT_TRUE(workflows.count("flight-b")) << response->body;
  EXPECT_GE(shards.size(), 2u)
      << "merged report must span more than one shard's ring";

  // With a workflow param the owning shard answers alone.
  request.target = "/debug/flight?workflow=flight-b";
  auto scoped = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), request);
  ASSERT_TRUE(scoped.ok());
  auto scoped_doc = asbase::Json::Parse(scoped->body);
  ASSERT_TRUE(scoped_doc.ok());
  for (const asbase::Json& record : (*scoped_doc)["records"].array()) {
    EXPECT_EQ(record["workflow"].as_string(), "flight-b");
  }

  // Merged latency attribution renders across shards too.
  request.target = "/debug/latency";
  auto latency = ashttp::HttpCall("127.0.0.1", router.watchdog_port(), request);
  ASSERT_TRUE(latency.ok());
  ASSERT_EQ(latency->status, 200);
  auto latency_doc = asbase::Json::Parse(latency->body);
  ASSERT_TRUE(latency_doc.ok());
  EXPECT_GE((*latency_doc)["count"].as_int(), 2);
  EXPECT_FALSE((*latency_doc)["tail_owner"].as_string().empty());
}

}  // namespace
}  // namespace alloy
