// Unit + property tests for the WFD heap allocator, arena and slot registry.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/alloc/arena.h"
#include "src/alloc/buffer_pool.h"
#include "src/alloc/linked_list_allocator.h"
#include "src/alloc/slot_registry.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"

namespace asalloc {
namespace {

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : arena_(kHeapSize) {
    heap_.Init(arena_.data(), arena_.size());
  }

  static constexpr size_t kHeapSize = 1 << 20;  // 1 MiB
  Arena arena_;
  LinkedListAllocator heap_;
};

TEST_F(AllocatorTest, FreshHeapIsOneFreeBlock) {
  auto stats = heap_.stats();
  EXPECT_EQ(stats.heap_bytes, arena_.size());
  EXPECT_EQ(stats.used_bytes, 0u);
  EXPECT_EQ(stats.free_bytes, arena_.size());
  EXPECT_EQ(stats.largest_free_block,
            arena_.size() - LinkedListAllocator::kHeaderSize);
  EXPECT_TRUE(heap_.CheckInvariants());
}

TEST_F(AllocatorTest, AllocateGivesWritableAlignedMemory) {
  void* p = heap_.Allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  std::memset(p, 0xAB, 100);
  heap_.Deallocate(p);
  EXPECT_TRUE(heap_.CheckInvariants());
}

TEST_F(AllocatorTest, DistinctAllocationsDoNotOverlap) {
  char* a = static_cast<char*>(heap_.Allocate(64));
  char* b = static_cast<char*>(heap_.Allocate(64));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a + 64 <= b || b + 64 <= a);
  std::memset(a, 1, 64);
  std::memset(b, 2, 64);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 2);
}

TEST_F(AllocatorTest, HonorsLargeAlignment) {
  for (size_t align : {32u, 64u, 256u, 4096u}) {
    void* p = heap_.Allocate(24, align);
    ASSERT_NE(p, nullptr) << align;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
    EXPECT_TRUE(heap_.CheckInvariants()) << align;
  }
}

TEST_F(AllocatorTest, FreeingEverythingCoalescesToOneBlock) {
  std::vector<void*> ptrs;
  for (int i = 0; i < 64; ++i) {
    ptrs.push_back(heap_.Allocate(100 + i * 7));
  }
  // Free in an interleaved order to exercise both coalesce directions.
  for (size_t i = 0; i < ptrs.size(); i += 2) {
    heap_.Deallocate(ptrs[i]);
  }
  for (size_t i = 1; i < ptrs.size(); i += 2) {
    heap_.Deallocate(ptrs[i]);
  }
  auto stats = heap_.stats();
  EXPECT_EQ(stats.used_bytes, 0u);
  EXPECT_EQ(stats.free_bytes, arena_.size());
  EXPECT_EQ(stats.largest_free_block,
            arena_.size() - LinkedListAllocator::kHeaderSize);
  EXPECT_TRUE(heap_.CheckInvariants());
}

TEST_F(AllocatorTest, ExhaustionReturnsNull) {
  void* big = heap_.Allocate(kHeapSize);  // header doesn't fit
  EXPECT_EQ(big, nullptr);
  void* almost = heap_.Allocate(kHeapSize - 64);
  EXPECT_NE(almost, nullptr);
  EXPECT_EQ(heap_.Allocate(4096), nullptr);
  heap_.Deallocate(almost);
  EXPECT_NE(heap_.Allocate(4096), nullptr);
}

TEST_F(AllocatorTest, ResetDropsAllAllocations) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_NE(heap_.Allocate(1000), nullptr);
  }
  heap_.Reset();
  auto stats = heap_.stats();
  EXPECT_EQ(stats.used_bytes, 0u);
  EXPECT_EQ(stats.live_allocations, 0u);
  EXPECT_EQ(stats.total_allocations, 10u);  // history survives Reset
  EXPECT_TRUE(heap_.CheckInvariants());
}

TEST_F(AllocatorTest, StatsTrackLiveness) {
  void* a = heap_.Allocate(128);
  void* b = heap_.Allocate(256);
  auto stats = heap_.stats();
  EXPECT_EQ(stats.live_allocations, 2u);
  EXPECT_GE(stats.used_bytes, 128u + 256u);
  heap_.Deallocate(a);
  heap_.Deallocate(b);
  stats = heap_.stats();
  EXPECT_EQ(stats.live_allocations, 0u);
  EXPECT_EQ(stats.total_frees, 2u);
}

using AllocatorDeathTest = AllocatorTest;

TEST_F(AllocatorDeathTest, DoubleFreeAborts) {
  void* p = heap_.Allocate(64);
  heap_.Deallocate(p);
  EXPECT_DEATH(heap_.Deallocate(p), "bad free");
}

// Property test: a random interleaving of allocs and frees never corrupts the
// free list, never hands out overlapping memory, and preserves block
// contents.
class AllocatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorPropertyTest, RandomOpsPreserveInvariants) {
  Arena arena(1 << 20);
  LinkedListAllocator heap;
  heap.Init(arena.data(), arena.size());
  asbase::Rng rng(GetParam());

  struct Live {
    char* ptr;
    size_t size;
    uint8_t fill;
  };
  std::vector<Live> live;

  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.Below(100) < 55;
    if (do_alloc) {
      size_t size = 1 + rng.Below(2000);
      size_t align = size_t{16} << rng.Below(5);  // 16..256
      char* p = static_cast<char*>(heap.Allocate(size, align));
      if (p == nullptr) {
        continue;  // heap full; fine
      }
      ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
      // No overlap with any live allocation.
      for (const auto& other : live) {
        ASSERT_TRUE(p + size <= other.ptr || other.ptr + other.size <= p);
      }
      uint8_t fill = static_cast<uint8_t>(rng.Next());
      std::memset(p, fill, size);
      live.push_back({p, size, fill});
    } else {
      size_t index = rng.Below(live.size());
      Live victim = live[index];
      // Contents survived neighbours' churn.
      for (size_t i = 0; i < victim.size; ++i) {
        ASSERT_EQ(static_cast<uint8_t>(victim.ptr[i]), victim.fill);
      }
      heap.Deallocate(victim.ptr);
      live[index] = live.back();
      live.pop_back();
    }
    if (step % 256 == 0) {
      ASSERT_TRUE(heap.CheckInvariants()) << "step " << step;
    }
  }
  for (const auto& entry : live) {
    heap.Deallocate(entry.ptr);
  }
  auto stats = heap.stats();
  EXPECT_EQ(stats.used_bytes, 0u);
  EXPECT_TRUE(heap.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorPropertyTest,
                         ::testing::Values(1, 7, 42, 1337, 0xA110C));

// ---------------------------------------------------------------- Arena

TEST(ArenaTest, MapsZeroedMemory) {
  Arena arena(10000);
  ASSERT_TRUE(arena.valid());
  EXPECT_GE(arena.size(), 10000u);
  EXPECT_EQ(arena.size() % Arena::PageSize(), 0u);
  auto* bytes = static_cast<unsigned char*>(arena.data());
  for (size_t i = 0; i < arena.size(); i += 4096) {
    EXPECT_EQ(bytes[i], 0u);
  }
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a(4096);
  void* data = a.data();
  Arena b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.data(), data);
}

TEST(ArenaTest, ResidentBytesGrowsWithTouch) {
  Arena arena(64 * 4096);
  size_t before = arena.ResidentBytes();
  std::memset(arena.data(), 1, arena.size());
  size_t after = arena.ResidentBytes();
  EXPECT_GE(after, before);
  EXPECT_GE(after, arena.size() / 2);  // most pages now resident
}

// ---------------------------------------------------------------- SlotRegistry

TEST(SlotRegistryTest, RegisterThenAcquireRemoves) {
  SlotRegistry registry;
  ASSERT_TRUE(registry.Register("Conference", {0x1000, 64, 99}).ok());
  EXPECT_EQ(registry.size(), 1u);

  auto got = registry.Acquire("Conference", 99);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->addr, 0x1000u);
  EXPECT_EQ(got->size, 64u);
  // Single-consumer: a second acquire fails.
  EXPECT_EQ(registry.Acquire("Conference", 99).status().code(),
            asbase::ErrorCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(SlotRegistryTest, FingerprintMismatchRejected) {
  SlotRegistry registry;
  ASSERT_TRUE(registry.Register("s", {0x2000, 16, 42}).ok());
  auto got = registry.Acquire("s", 43);
  EXPECT_EQ(got.status().code(), asbase::ErrorCode::kInvalidArgument);
  // The buffer stays registered after a rejected acquire.
  EXPECT_TRUE(registry.Peek("s").ok());
}

TEST(SlotRegistryTest, DuplicateRegisterRejected) {
  SlotRegistry registry;
  ASSERT_TRUE(registry.Register("s", {1, 1, 1}).ok());
  EXPECT_EQ(registry.Register("s", {2, 2, 2}).code(),
            asbase::ErrorCode::kAlreadyExists);
}

TEST(SlotRegistryTest, FanOutUsesDistinctSlots) {
  SlotRegistry registry;
  ASSERT_TRUE(registry.Register("out-0", {0x100, 8, 7}).ok());
  ASSERT_TRUE(registry.Register("out-1", {0x200, 8, 7}).ok());
  EXPECT_EQ(registry.Acquire("out-0", 7)->addr, 0x100u);
  EXPECT_EQ(registry.Acquire("out-1", 7)->addr, 0x200u);
}

TEST(SlotRegistryTest, RemoveAndClear) {
  SlotRegistry registry;
  ASSERT_TRUE(registry.Register("a", {1, 1, 1}).ok());
  ASSERT_TRUE(registry.Register("b", {2, 2, 2}).ok());
  EXPECT_TRUE(registry.Remove("a").ok());
  EXPECT_EQ(registry.Remove("a").code(), asbase::ErrorCode::kNotFound);
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(SlotRegistryTest, FingerprintNameIsStableAndDiscriminating) {
  EXPECT_EQ(FingerprintName("MyFuncData"), FingerprintName("MyFuncData"));
  EXPECT_NE(FingerprintName("MyFuncData"), FingerprintName("MyFuncDatb"));
  EXPECT_NE(FingerprintName(""), FingerprintName("x"));
}

// ------------------------------------------------------------ TX pins

TEST(SlotRegistryTest, PinForTxLifecycle) {
  SlotRegistry registry;
  EXPECT_FALSE(registry.IsPinnedForTx(0x3000));
  EXPECT_TRUE(registry.CheckReleasable(0x3000)) << "unpinned is releasable";

  auto pin = registry.PinForTx(0x3000, 64);
  ASSERT_NE(pin, nullptr);
  EXPECT_TRUE(registry.IsPinnedForTx(0x3000));
  EXPECT_EQ(registry.TxPinnedBuffers(), 1u);

  // Retransmit path: the same buffer can be pinned again (refcounted).
  auto pin2 = registry.PinForTx(0x3000, 64);
  EXPECT_EQ(registry.TxPinnedBuffers(), 1u) << "same buffer, one entry";
  pin.reset();
  EXPECT_TRUE(registry.IsPinnedForTx(0x3000)) << "second pin still live";
  pin2.reset();
  EXPECT_FALSE(registry.IsPinnedForTx(0x3000));
  EXPECT_EQ(registry.TxPinnedBuffers(), 0u);
  EXPECT_TRUE(registry.CheckReleasable(0x3000));
}

TEST(SlotRegistryTest, PinnedReleaseIsLoudlyVisible) {
  SlotRegistry::set_abort_on_pinned_release(false);
  SlotRegistry registry;
  auto pin = registry.PinForTx(0x4000, 128);
  // Freeing a buffer the netstack still references: not releasable, and the
  // violation counter must tick so it shows up on dashboards.
  asobs::Counter& violations = asobs::Registry::Global().GetCounter(
      "alloy_asbuffer_pinned_release_total");
  const uint64_t before = violations.value();
  EXPECT_FALSE(registry.CheckReleasable(0x4000));
  EXPECT_EQ(violations.value(), before + 1);
  pin.reset();
  EXPECT_TRUE(registry.CheckReleasable(0x4000));
  SlotRegistry::set_abort_on_pinned_release(true);
}

TEST(SlotRegistryTest, PinsOutliveTheRegistry) {
  // Connection teardown can release pins after the WFD (and its registry)
  // is gone; the handle must stay safe to drop.
  std::shared_ptr<const void> pin;
  {
    SlotRegistry registry;
    pin = registry.PinForTx(0x5000, 32);
  }
  pin.reset();  // must not touch freed registry state
}

// ---------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, TakeGivesDistinctWritableBlocks) {
  BufferPool pool(4096, 4);
  auto a = pool.Take();
  auto b = pool.Take();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  std::memset(a.get(), 0x11, pool.block_bytes());
  std::memset(b.get(), 0x22, pool.block_bytes());
  EXPECT_EQ(a.get()[0], 0x11);
  EXPECT_EQ(b.get()[0], 0x22);
}

TEST(BufferPoolTest, ReleasedBlocksAreRecycled) {
  BufferPool pool(4096, 4);
  auto block = pool.Take();
  uint8_t* raw = block.get();
  block.reset();
  EXPECT_EQ(pool.free_blocks(), 1u);
  auto again = pool.Take();
  EXPECT_EQ(again.get(), raw) << "freed block should be reused, not malloc'd";
  EXPECT_EQ(pool.free_blocks(), 0u);
}

TEST(BufferPoolTest, FreeListIsBounded) {
  BufferPool pool(4096, 2);
  std::vector<BufferPool::BlockRef> blocks;
  for (int i = 0; i < 5; ++i) {
    blocks.push_back(pool.Take());
  }
  blocks.clear();
  EXPECT_EQ(pool.free_blocks(), 2u) << "excess blocks go back to the OS";
}

TEST(BufferPoolTest, BlockRefsOutliveThePool) {
  // RX chunks handed to a reader may outlive the stack (and pool) that
  // produced them; the deleter must degrade to a plain free.
  BufferPool::BlockRef survivor;
  {
    BufferPool pool(4096, 4);
    survivor = pool.Take();
    std::memset(survivor.get(), 0x7E, 4096);
  }
  EXPECT_EQ(survivor.get()[4095], 0x7E);
  survivor.reset();  // must not touch the destroyed freelist
}

}  // namespace
}  // namespace asalloc
