// Tests for block devices, the RAM filesystem, and the FAT32 volume.
//
// The FAT property test drives an identical random operation sequence
// against FatVolume and RamFilesystem (the reference model); every
// observable result must match.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/blockdev/block_device.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/fatfs/fat_volume.h"
#include "src/fatfs/ram_filesystem.h"

namespace asfat {
namespace {

using asblk::BlockDevice;
using asblk::MemDisk;

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

std::string AsString(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

// ---------------------------------------------------------------- blockdev

TEST(MemDiskTest, RoundTripsBlocks) {
  MemDisk disk(64);
  std::vector<uint8_t> out(512), in(512);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(disk.Write(3, in).ok());
  ASSERT_TRUE(disk.Read(3, out).ok());
  EXPECT_EQ(in, out);
}

TEST(MemDiskTest, MultiBlockIo) {
  MemDisk disk(64);
  std::vector<uint8_t> in(4 * 512, 0x5A);
  ASSERT_TRUE(disk.Write(10, in).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(12, out).ok());
  EXPECT_EQ(out[0], 0x5A);
}

TEST(MemDiskTest, RejectsBadRanges) {
  MemDisk disk(8);
  std::vector<uint8_t> buf(512);
  EXPECT_FALSE(disk.Read(8, buf).ok());                 // off the end
  EXPECT_FALSE(disk.Read(0, std::span<uint8_t>(buf.data(), 100)).ok());
  std::vector<uint8_t> two(1024);
  EXPECT_FALSE(disk.Write(7, two).ok());                // straddles the end
}

TEST(MemDiskTest, CountsStats) {
  MemDisk disk(8);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.Write(0, buf).ok());
  ASSERT_TRUE(disk.Read(0, buf).ok());
  auto stats = disk.stats();
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_read, 512u);
}

TEST(FileDiskTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/filedisk_test.img";
  {
    auto disk = asblk::FileDisk::Create(path, 16);
    ASSERT_TRUE(disk.ok());
    std::vector<uint8_t> data(512, 0xAB);
    ASSERT_TRUE((*disk)->Write(5, data).ok());
  }
  auto disk = asblk::FileDisk::Create(path, 16);
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE((*disk)->Read(5, out).ok());
  EXPECT_EQ(out[0], 0xAB);
  ::unlink(path.c_str());
}

TEST(LatencyDiskTest, ChargesTime) {
  auto disk = std::make_unique<asblk::LatencyDisk>(
      std::make_unique<MemDisk>(16), /*per_op_nanos=*/500'000,
      /*nanos_per_kib=*/0);
  std::vector<uint8_t> buf(512);
  int64_t start = asbase::MonoNanos();
  ASSERT_TRUE(disk->Read(0, buf).ok());
  EXPECT_GE(asbase::MonoNanos() - start, 500'000);
}

// ---------------------------------------------------------------- SplitPath

TEST(SplitPathTest, Splits) {
  auto parts = SplitPath("/a/bb/c.txt");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(*parts, (std::vector<std::string>{"a", "bb", "c.txt"}));
  EXPECT_TRUE(SplitPath("/")->empty());
  EXPECT_EQ(SplitPath("/dir/")->size(), 1u);
}

TEST(SplitPathTest, RejectsBadPaths) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("relative").ok());
  EXPECT_FALSE(SplitPath("/a//b").ok());
}

// --------------------------------------------------- Filesystem conformance
//
// One parameterized suite run against both implementations.

enum class FsKind { kRam, kFat };

class FilesystemTest : public ::testing::TestWithParam<FsKind> {
 protected:
  void SetUp() override {
    if (GetParam() == FsKind::kRam) {
      fs_ = std::make_unique<RamFilesystem>();
    } else {
      disk_ = std::make_unique<MemDisk>(32 * 1024);  // 16 MiB
      ASSERT_TRUE(FatVolume::Format(disk_.get()).ok());
      auto volume = FatVolume::Mount(disk_.get());
      ASSERT_TRUE(volume.ok());
      fs_ = std::move(*volume);
    }
  }

  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<Filesystem> fs_;
};

TEST_P(FilesystemTest, WriteThenReadBack) {
  ASSERT_TRUE(fs_->WriteFile("/hello.txt", "hello alloystack").ok());
  auto data = fs_->ReadFile("/hello.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(AsString(*data), "hello alloystack");
}

TEST_P(FilesystemTest, OpenMissingFileFails) {
  auto handle = fs_->Open("/nope", OpenFlags::ReadOnly());
  EXPECT_EQ(handle.status().code(), asbase::ErrorCode::kNotFound);
}

TEST_P(FilesystemTest, CreateInMissingDirectoryFails) {
  auto handle = fs_->Open("/no/such/dir/file", OpenFlags::WriteCreate());
  EXPECT_FALSE(handle.ok());
}

TEST_P(FilesystemTest, TruncateReplacesContent) {
  ASSERT_TRUE(fs_->WriteFile("/f", "a long original body").ok());
  ASSERT_TRUE(fs_->WriteFile("/f", "short").ok());
  EXPECT_EQ(AsString(*fs_->ReadFile("/f")), "short");
  EXPECT_EQ(fs_->Stat("/f")->size, 5u);
}

TEST_P(FilesystemTest, AppendExtends) {
  ASSERT_TRUE(fs_->WriteFile("/log", "one").ok());
  auto handle = fs_->Open("/log", OpenFlags::Append());
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs_->Write(*handle, Bytes(",two")).ok());
  ASSERT_TRUE(fs_->Close(*handle).ok());
  EXPECT_EQ(AsString(*fs_->ReadFile("/log")), "one,two");
}

TEST_P(FilesystemTest, SeekAndPartialReads) {
  ASSERT_TRUE(fs_->WriteFile("/f", "0123456789").ok());
  auto handle = fs_->Open("/f", OpenFlags::ReadOnly());
  ASSERT_TRUE(handle.ok());
  ASSERT_EQ(*fs_->Seek(*handle, 4, Whence::kSet), 4u);
  uint8_t buf[3];
  ASSERT_EQ(*fs_->Read(*handle, buf), 3u);
  EXPECT_EQ(std::memcmp(buf, "456", 3), 0);
  ASSERT_EQ(*fs_->Seek(*handle, -2, Whence::kEnd), 8u);
  ASSERT_EQ(*fs_->Read(*handle, buf), 2u);  // only 2 bytes remain
  EXPECT_EQ(std::memcmp(buf, "89", 2), 0);
  EXPECT_FALSE(fs_->Seek(*handle, -1, Whence::kSet).ok());
  ASSERT_TRUE(fs_->Close(*handle).ok());
}

TEST_P(FilesystemTest, SparseWritePastEofReadsZeros) {
  auto handle = fs_->Open("/sparse", OpenFlags::WriteCreate());
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(fs_->Write(*handle, Bytes("head")).ok());
  ASSERT_TRUE(fs_->Seek(*handle, 10000, Whence::kSet).ok());
  ASSERT_TRUE(fs_->Write(*handle, Bytes("tail")).ok());
  ASSERT_TRUE(fs_->Close(*handle).ok());

  auto data = fs_->ReadFile("/sparse");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 10004u);
  EXPECT_EQ(AsString(*data).substr(0, 4), "head");
  EXPECT_EQ(AsString(*data).substr(10000, 4), "tail");
  for (size_t i = 4; i < 10000; ++i) {
    ASSERT_EQ((*data)[i], 0u) << "byte " << i << " must be zero";
  }
}

TEST_P(FilesystemTest, DirectoriesNestAndList) {
  ASSERT_TRUE(fs_->Mkdir("/data").ok());
  ASSERT_TRUE(fs_->Mkdir("/data/inputs").ok());
  ASSERT_TRUE(fs_->WriteFile("/data/inputs/a.bin", "aaa").ok());
  ASSERT_TRUE(fs_->WriteFile("/data/inputs/b.bin", "bbbb").ok());

  auto listing = fs_->ReadDir("/data/inputs");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);
  std::vector<std::string> names;
  for (const auto& info : *listing) {
    names.push_back(info.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a.bin", "b.bin"}));

  auto stat = fs_->Stat("/data/inputs/b.bin");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 4u);
  EXPECT_FALSE(stat->is_directory);
  EXPECT_TRUE(fs_->Stat("/data")->is_directory);
}

TEST_P(FilesystemTest, MkdirDuplicateFails) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->Mkdir("/d").code(), asbase::ErrorCode::kAlreadyExists);
}

TEST_P(FilesystemTest, RemoveFileAndEmptyDir) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->WriteFile("/d/f", "x").ok());
  EXPECT_EQ(fs_->Remove("/d").code(), asbase::ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(fs_->Remove("/d/f").ok());
  EXPECT_FALSE(fs_->Stat("/d/f").ok());
  ASSERT_TRUE(fs_->Remove("/d").ok());
  EXPECT_FALSE(fs_->Stat("/d").ok());
}

TEST_P(FilesystemTest, RemoveOpenFileFails) {
  ASSERT_TRUE(fs_->WriteFile("/f", "x").ok());
  auto handle = fs_->Open("/f", OpenFlags::ReadOnly());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(fs_->Remove("/f").code(),
            asbase::ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(fs_->Close(*handle).ok());
  EXPECT_TRUE(fs_->Remove("/f").ok());
}

TEST_P(FilesystemTest, ReadHandleCannotWrite) {
  ASSERT_TRUE(fs_->WriteFile("/f", "x").ok());
  auto handle = fs_->Open("/f", OpenFlags::ReadOnly());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(fs_->Write(*handle, Bytes("y")).status().code(),
            asbase::ErrorCode::kPermissionDenied);
  fs_->Close(*handle);
}

TEST_P(FilesystemTest, LongNamesSurvive) {
  const std::string name = "a_quite_long_file_name_for_lfn_entries.metadata";
  ASSERT_TRUE(fs_->WriteFile("/" + name, "payload").ok());
  auto listing = fs_->ReadDir("/");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, name);
  EXPECT_EQ(AsString(*fs_->ReadFile("/" + name)), "payload");
}

TEST_P(FilesystemTest, ManyFilesInOneDirectory) {
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/file_number_" + std::to_string(i) + ".dat",
                               std::string(static_cast<size_t>(i), 'x'))
                    .ok())
        << i;
  }
  auto listing = fs_->ReadDir("/");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 120u);
  EXPECT_EQ(fs_->Stat("/file_number_77.dat")->size, 77u);
}

TEST_P(FilesystemTest, MultiClusterFileRoundTrips) {
  asbase::Rng rng(42);
  std::vector<uint8_t> data(300 * 1024);  // spans many 4K clusters
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE(fs_->WriteFile("/big.bin", data).ok());
  auto back = fs_->ReadFile("/big.bin");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Impls, FilesystemTest,
                         ::testing::Values(FsKind::kRam, FsKind::kFat),
                         [](const auto& info) {
                           return info.param == FsKind::kRam ? "ram" : "fat32";
                         });

// ---------------------------------------------------------------- FAT-only

TEST(FatVolumeTest, MountRejectsGarbage) {
  MemDisk disk(1024);
  EXPECT_FALSE(FatVolume::Mount(&disk).ok());
}

TEST(FatVolumeTest, FormatRejectsTinyDevice) {
  MemDisk disk(16);
  EXPECT_FALSE(FatVolume::Format(&disk).ok());
}

TEST(FatVolumeTest, PersistsAcrossRemount) {
  MemDisk disk(8 * 1024);
  ASSERT_TRUE(FatVolume::Format(&disk).ok());
  {
    auto volume = FatVolume::Mount(&disk);
    ASSERT_TRUE(volume.ok());
    ASSERT_TRUE((*volume)->Mkdir("/persist").ok());
    ASSERT_TRUE((*volume)->WriteFile("/persist/data", "survives").ok());
    ASSERT_TRUE((*volume)->Sync().ok());
  }
  auto volume = FatVolume::Mount(&disk);
  ASSERT_TRUE(volume.ok());
  EXPECT_EQ(AsString(*(*volume)->ReadFile("/persist/data")), "survives");
}

TEST(FatVolumeTest, FreeClustersRecycleAfterRemove) {
  MemDisk disk(8 * 1024);
  ASSERT_TRUE(FatVolume::Format(&disk).ok());
  auto volume = FatVolume::Mount(&disk);
  ASSERT_TRUE(volume.ok());
  uint32_t before = *(*volume)->CountFreeClusters();
  ASSERT_TRUE(
      (*volume)->WriteFile("/f", std::string(64 * 1024, 'z')).ok());
  uint32_t during = *(*volume)->CountFreeClusters();
  EXPECT_LT(during, before);
  ASSERT_TRUE((*volume)->Remove("/f").ok());
  EXPECT_EQ(*(*volume)->CountFreeClusters(), before);
}

TEST(FatVolumeTest, FillToCapacityFailsCleanly) {
  MemDisk disk(2 * 1024);  // 1 MiB
  ASSERT_TRUE(FatVolume::Format(&disk).ok());
  auto volume = FatVolume::Mount(&disk);
  ASSERT_TRUE(volume.ok());
  asbase::Status status = asbase::OkStatus();
  int i = 0;
  while (status.ok() && i < 10000) {
    status = (*volume)->WriteFile("/chunk" + std::to_string(i++),
                                  std::string(16 * 1024, 'f'));
  }
  EXPECT_EQ(status.code(), asbase::ErrorCode::kResourceExhausted);
  // Volume still works after ENOSPC.
  ASSERT_TRUE((*volume)->Remove("/chunk0").ok());
  EXPECT_TRUE((*volume)->WriteFile("/retry", "ok").ok());
}

TEST(FatVolumeTest, StaleDataDoesNotLeakThroughRecycledClusters) {
  MemDisk disk(4 * 1024);
  ASSERT_TRUE(FatVolume::Format(&disk).ok());
  auto volume = FatVolume::Mount(&disk);
  ASSERT_TRUE(volume.ok());
  ASSERT_TRUE((*volume)->WriteFile("/secret", std::string(8192, 'S')).ok());
  ASSERT_TRUE((*volume)->Remove("/secret").ok());
  // New file reuses those clusters; the unwritten gap must read as zeros.
  auto handle = (*volume)->Open("/fresh", OpenFlags::WriteCreate());
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE((*volume)->Seek(*handle, 100, Whence::kSet).ok());
  ASSERT_TRUE((*volume)->Write(*handle, Bytes("x")).ok());
  ASSERT_TRUE((*volume)->Close(*handle).ok());
  auto data = (*volume)->ReadFile("/fresh");
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ((*data)[i], 0u) << "stale byte leaked at " << i;
  }
}

// ------------------------------------------------------------ property test

class FatPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FatPropertyTest, MatchesReferenceModel) {
  MemDisk disk(64 * 1024);  // 32 MiB
  ASSERT_TRUE(FatVolume::Format(&disk).ok());
  auto mounted = FatVolume::Mount(&disk);
  ASSERT_TRUE(mounted.ok());
  FatVolume& fat = **mounted;
  RamFilesystem ram;

  asbase::Rng rng(GetParam());
  std::vector<std::string> known_files;
  std::vector<std::string> known_dirs = {""};  // "" == root

  auto random_dir = [&] { return known_dirs[rng.Below(known_dirs.size())]; };

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.Below(100));
    if (op < 35) {
      // Write (create or truncate) a file with random content.
      std::string path = random_dir() + "/" + rng.Word(1, 20) +
                         (rng.OneIn(2) ? "." + rng.Word(1, 4) : "");
      std::string content;
      const size_t size = rng.Below(30000);
      content.reserve(size);
      for (size_t i = 0; i < size; ++i) {
        content.push_back(static_cast<char>('a' + rng.Below(26)));
      }
      auto fat_status = fat.WriteFile(path, content);
      auto ram_status = ram.WriteFile(path, content);
      ASSERT_EQ(fat_status.ok(), ram_status.ok()) << path;
      if (fat_status.ok() &&
          std::find(known_files.begin(), known_files.end(), path) ==
              known_files.end()) {
        known_files.push_back(path);
      }
    } else if (op < 50 && !known_files.empty()) {
      // Append to an existing file.
      const std::string& path = known_files[rng.Below(known_files.size())];
      std::string chunk = rng.Word(1, 5000);
      auto fh = fat.Open(path, OpenFlags::Append());
      auto rh = ram.Open(path, OpenFlags::Append());
      ASSERT_EQ(fh.ok(), rh.ok()) << path;
      if (fh.ok()) {
        ASSERT_TRUE(fat.Write(*fh, Bytes(chunk)).ok());
        ASSERT_TRUE(ram.Write(*rh, Bytes(chunk)).ok());
        ASSERT_TRUE(fat.Close(*fh).ok());
        ASSERT_TRUE(ram.Close(*rh).ok());
      }
    } else if (op < 70 && !known_files.empty()) {
      // Read back a file and compare.
      const std::string& path = known_files[rng.Below(known_files.size())];
      auto fat_data = fat.ReadFile(path);
      auto ram_data = ram.ReadFile(path);
      ASSERT_EQ(fat_data.ok(), ram_data.ok()) << path;
      if (fat_data.ok()) {
        ASSERT_EQ(*fat_data, *ram_data) << path;
      }
    } else if (op < 80) {
      // Make a directory.
      std::string path = random_dir() + "/" + rng.Word(1, 10);
      auto fat_status = fat.Mkdir(path);
      auto ram_status = ram.Mkdir(path);
      ASSERT_EQ(fat_status.ok(), ram_status.ok()) << path;
      if (fat_status.ok()) {
        known_dirs.push_back(path);
      }
    } else if (op < 90 && !known_files.empty()) {
      // Remove a file.
      const size_t index = rng.Below(known_files.size());
      const std::string path = known_files[index];
      auto fat_status = fat.Remove(path);
      auto ram_status = ram.Remove(path);
      ASSERT_EQ(fat_status.ok(), ram_status.ok()) << path;
      known_files.erase(known_files.begin() + static_cast<long>(index));
    } else {
      // Compare a directory listing.
      const std::string dir = random_dir();
      auto fat_list = fat.ReadDir(dir.empty() ? "/" : dir);
      auto ram_list = ram.ReadDir(dir.empty() ? "/" : dir);
      ASSERT_EQ(fat_list.ok(), ram_list.ok()) << dir;
      if (fat_list.ok()) {
        auto key = [](const FileInfo& info) {
          return info.name + "|" + std::to_string(info.size) + "|" +
                 (info.is_directory ? "d" : "f");
        };
        std::vector<std::string> a, b;
        for (const auto& info : *fat_list) {
          a.push_back(key(info));
        }
        for (const auto& info : *ram_list) {
          b.push_back(key(info));
        }
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_EQ(a, b) << dir;
      }
    }
  }

  // Final sweep: every surviving file matches the model byte for byte.
  for (const auto& path : known_files) {
    auto fat_data = fat.ReadFile(path);
    auto ram_data = ram.ReadFile(path);
    ASSERT_TRUE(fat_data.ok()) << path;
    ASSERT_TRUE(ram_data.ok()) << path;
    ASSERT_EQ(*fat_data, *ram_data) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FatPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace asfat
