// Tests for the visor serving layer (DESIGN.md §8): warm-WFD pooling,
// pre-warm floor + idle-TTL eviction, concurrent watchdog dispatch,
// admission control (queue-with-budget, 429 + computed Retry-After),
// cooperative deadlines (504), and the destroy-on-failure rule.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <thread>
#include <vector>

#include "src/core/visor/visor.h"
#include "src/core/visor/wfd_pool.h"
#include "src/obs/metrics.h"

namespace alloy {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

WfdOptions SmallWfd() {
  WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;  // 8 MiB disk
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

uint64_t CounterValue(const std::string& name, const std::string& workflow) {
  return asobs::Registry::Global()
      .GetCounter(name, {{"workflow", workflow}})
      .value();
}

// ------------------------------------------------------------- WfdPool

TEST(WfdPoolTest, LeaseParkEvictLifecycle) {
  WfdPool pool("pooltest", 1);
  const uint64_t hits0 = CounterValue("alloy_visor_pool_hits_total", "pooltest");
  const uint64_t misses0 =
      CounterValue("alloy_visor_pool_misses_total", "pooltest");
  const uint64_t evictions0 =
      CounterValue("alloy_visor_pool_evictions_total", "pooltest");

  // Empty pool: a lease misses.
  EXPECT_EQ(pool.TryAcquireWarm(), nullptr);
  EXPECT_EQ(CounterValue("alloy_visor_pool_misses_total", "pooltest"),
            misses0 + 1);

  auto first = Wfd::Create(SmallWfd());
  auto second = Wfd::Create(SmallWfd());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Parking beyond capacity evicts (destroys) the extra WFD.
  pool.Park(std::move(*first));
  EXPECT_EQ(pool.warm_count(), 1u);
  pool.Park(std::move(*second));
  EXPECT_EQ(pool.warm_count(), 1u);
  EXPECT_EQ(CounterValue("alloy_visor_pool_evictions_total", "pooltest"),
            evictions0 + 1);

  // Parked WFD comes back as a hit.
  EXPECT_NE(pool.TryAcquireWarm(), nullptr);
  EXPECT_EQ(CounterValue("alloy_visor_pool_hits_total", "pooltest"), hits0 + 1);
  EXPECT_EQ(pool.warm_count(), 0u);
}

TEST(WfdPoolTest, ZeroCapacityDisablesPooling) {
  WfdPool pool("pooloff", 0);
  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  pool.Park(std::move(*wfd));
  EXPECT_EQ(pool.warm_count(), 0u);
  EXPECT_EQ(pool.TryAcquireWarm(), nullptr);
}

TEST(WfdPoolTest, IdleTtlEvictsParkedWfdsAndDropsResidentGauge) {
  WfdPoolOptions options;
  options.capacity = 2;
  options.idle_ttl_ms = 50;
  WfdPool pool("ttltest", std::move(options));
  const uint64_t evictions0 =
      CounterValue("alloy_visor_pool_evictions_total", "ttltest");

  auto wfd = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd.ok());
  // Touch heap pages so the parked WFD has a real resident footprint
  // (ResidentBytes is mincore-based: untouched reservations count zero).
  auto buffer = (*wfd)->libos().AllocBuffer("ttl", 256 * 1024, 16, 1);
  ASSERT_TRUE(buffer.ok());
  std::memset(*buffer, 0xab, 256 * 1024);
  pool.Park(std::move(*wfd));
  ASSERT_EQ(pool.warm_count(), 1u);
  EXPECT_GT(pool.resident_bytes(), 0u);
  asobs::Gauge& gauge = asobs::Registry::Global().GetGauge(
      "alloy_visor_pool_resident_bytes", {{"workflow", "ttltest"}});
  EXPECT_GT(gauge.value(), 0);

  // No traffic: after the TTL the evictor empties the pool and the
  // resident-bytes gauge drops to zero.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (pool.warm_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pool.warm_count(), 0u) << "idle pool must shrink to zero";
  EXPECT_EQ(pool.resident_bytes(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(CounterValue("alloy_visor_pool_evictions_total", "ttltest"),
            evictions0 + 1);
}

TEST(WfdPoolTest, WarmerFillsToMinWarmFloor) {
  WfdPoolOptions options;
  options.capacity = 2;
  options.min_warm = 2;
  options.factory = [] { return Wfd::Create(SmallWfd()); };
  WfdPool pool("floortest", std::move(options));

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (pool.warm_count() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pool.warm_count(), 2u);
  EXPECT_GE(CounterValue("alloy_visor_prewarms_total", "floortest"), 2u);
}

// --------------------------------------------------------- warm serving

TEST(VisorServingTest, PoolReusesWfdAcrossInvocations) {
  FunctionRegistry::Global().Register(
      "serving.stateful", [](FunctionContext& ctx) -> asbase::Status {
        if (ctx.params()["mode"].as_string() == "write") {
          AS_RETURN_IF_ERROR(
              ctx.as().WriteWholeFile("/state.txt", Bytes("kept")));
          ctx.SetResult("wrote");
          return asbase::OkStatus();
        }
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                            ctx.as().ReadWholeFile("/state.txt"));
        ctx.SetResult(std::string(data.begin(), data.end()));
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "warmwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.stateful", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  visor.RegisterWorkflow(spec, options);

  asbase::Json write_params;
  write_params.Set("mode", "write");
  auto cold = visor.Invoke("warmwf", write_params);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->warm_start);
  EXPECT_GT(cold->cold_start_nanos, 0);
  ASSERT_EQ(visor.WarmWfdCount("warmwf").value_or(0), 1u);

  // The second invocation leases the parked WFD: no wfd_create, no module
  // re-loads, and the filesystem written by invocation 1 is still there.
  asbase::Json read_params;
  read_params.Set("mode", "read");
  auto warm = visor.Invoke("warmwf", read_params);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm_start);
  EXPECT_EQ(warm->wfd_create_nanos, 0);
  EXPECT_EQ(warm->module_load_nanos, 0)
      << "warm start must not re-load modules the first run loaded";
  EXPECT_EQ(warm->run.result, "kept");
  EXPECT_EQ(visor.WarmWfdCount("warmwf").value_or(0), 1u);
}

TEST(VisorServingTest, ConcurrentWatchdogInvocationsRunInParallel) {
  FunctionRegistry::Global().Register(
      "serving.sleep100", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ctx.SetResult("slept");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "parwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.sleep100", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.max_concurrency = 4;
  visor.RegisterWorkflow(spec, options);
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      ashttp::HttpRequest request;
      request.method = "POST";
      request.target = "/invoke/parwf";
      auto response =
          ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
      if (response.ok() && response->status == 200) {
        ++ok_count;
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(ok_count.load(), 4);
  // Serial execution would take >= 400ms of sleeps alone.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            350)
      << "4 invocations at max_concurrency=4 must overlap";
}

TEST(VisorServingTest, SaturationRejectsWith429) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  FunctionRegistry::Global().Register(
      "serving.block", [&started, &release](FunctionContext& ctx)
                           -> asbase::Status {
        started = true;
        while (!release) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ctx.SetResult("released");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "satwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.block", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.max_concurrency = 1;
  visor.RegisterWorkflow(spec, options);
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  const uint64_t rejections0 =
      CounterValue("alloy_visor_rejections_total", "satwf");

  std::thread first([&] {
    ashttp::HttpRequest request;
    request.method = "POST";
    request.target = "/invoke/satwf";
    auto response =
        ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  while (!started) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The workflow is at max_concurrency=1: the next request is rejected
  // immediately, not queued.
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/satwf";
  auto rejected = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 429);
  EXPECT_EQ(rejected->headers.count("retry-after"), 1u);
  EXPECT_EQ(CounterValue("alloy_visor_rejections_total", "satwf"),
            rejections0 + 1);

  release = true;
  first.join();

  // With the slot free again the workflow is admissible.
  auto admitted = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->status, 200);
}

TEST(VisorServingTest, SlowStageTripsDeadline) {
  FunctionRegistry::Global().Register(
      "serving.slow", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        ctx.SetResult("too late");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "slowwf";
  // Two stages so the deadline check after the slow stage's barrier stops
  // the second stage from ever running.
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.slow", 1}}});
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.slow", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.timeout_ms = 50;
  visor.RegisterWorkflow(spec, options);

  const uint64_t timeouts0 = CounterValue("alloy_visor_timeouts_total", "slowwf");
  auto result = visor.Invoke("slowwf", asbase::Json());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), asbase::ErrorCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_EQ(CounterValue("alloy_visor_timeouts_total", "slowwf"), timeouts0 + 1);

  // Over HTTP the deadline maps to 504 with the status visible in the body.
  ASSERT_TRUE(visor.StartWatchdog(0).ok());
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/slowwf";
  auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  EXPECT_NE(response->body.find("DEADLINE_EXCEEDED"), std::string::npos);
}

TEST(VisorServingTest, FailedInvocationDestroysWfdInsteadOfRepooling) {
  FunctionRegistry::Global().Register(
      "serving.flaky", [](FunctionContext& ctx) -> asbase::Status {
        if (ctx.params()["fail"].as_bool(false)) {
          return asbase::Internal("induced failure");
        }
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "flakywf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.flaky", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 2;
  visor.RegisterWorkflow(spec, options);

  asbase::Json fail_params;
  fail_params.Set("fail", true);
  EXPECT_FALSE(visor.Invoke("flakywf", fail_params).ok());
  EXPECT_EQ(visor.WarmWfdCount("flakywf").value_or(99), 0u)
      << "a failed invocation's WFD must be destroyed, never re-pooled";

  // The next invocation therefore cold-starts, then parks its clean WFD.
  auto recovered = visor.Invoke("flakywf", asbase::Json());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->warm_start);
  EXPECT_EQ(visor.WarmWfdCount("flakywf").value_or(0), 1u);
}

// ------------------------------------------- queue-with-budget admission

ashttp::HttpRequest InvokeRequest(const std::string& workflow,
                                  const std::string& body = "") {
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/" + workflow;
  request.body = body;
  return request;
}

TEST(VisorServingTest, BurstQueuesThenServesWithinBudget) {
  FunctionRegistry::Global().Register(
      "serving.sleep30", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "queuewf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.sleep30", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  options.max_concurrency = 1;
  options.queue_capacity = 8;
  options.queueing_budget_ms = 10'000;
  visor.RegisterWorkflow(spec, options);
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  const uint64_t rejections0 =
      CounterValue("alloy_visor_rejections_total", "queuewf");

  // 4 concurrent requests against max_concurrency=1: pre-queue behavior
  // rejected 3 of them; with a queue and a generous budget all 4 serve.
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                       InvokeRequest("queuewf"));
      if (response.ok() && response->status == 200) {
        ++ok_count;
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(ok_count.load(), 4);
  EXPECT_EQ(CounterValue("alloy_visor_rejections_total", "queuewf"),
            rejections0);
  // At least the non-first requests waited in the queue.
  const auto queue_wait = asobs::Registry::Global()
                              .GetHistogram("alloy_visor_queue_wait_nanos",
                                            {{"workflow", "queuewf"}})
                              .Snapshot();
  EXPECT_GE(queue_wait.count(), 3u);
}

TEST(VisorServingTest, OverBudgetRejectsWithComputedRetryAfter) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  FunctionRegistry::Global().Register(
      "serving.tunable",
      [&started, &release](FunctionContext& ctx) -> asbase::Status {
        const int64_t sleep_ms = ctx.params()["sleep_ms"].as_int(0);
        if (sleep_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        } else {
          started = true;
          while (!release) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "budgetwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.tunable", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  options.max_concurrency = 1;
  options.queue_capacity = 4;
  options.queueing_budget_ms = 250;
  visor.RegisterWorkflow(spec, options);
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  // Seed the service-time EWMA with one ~1.5s run so the predictor has a
  // sample: predicted wait for the next queued arrival = 1 × 1.5s / 1.
  asbase::Json seed;
  seed.Set("sleep_ms", static_cast<int64_t>(1500));
  ASSERT_TRUE(visor.Invoke("budgetwf", seed).ok());

  // Saturate the single slot with a request we control.
  std::thread blocker([&] {
    auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                     InvokeRequest("budgetwf"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  while (!started) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Default budget 250ms < predicted 1.5s: rejected, and Retry-After is
  // computed from the prediction (ceil(1.5s) = 2s), not the static
  // fallback of 1s.
  auto rejected = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                   InvokeRequest("budgetwf"));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 429);
  ASSERT_EQ(rejected->headers.count("retry-after"), 1u);
  EXPECT_EQ(rejected->headers.at("retry-after"), "2");

  // A client with a bigger budget (x-queue-budget-ms header) queues
  // instead, and serves once the blocker releases the slot.
  std::thread patient([&] {
    asbase::Json params;
    params.Set("sleep_ms", static_cast<int64_t>(1));
    auto request = InvokeRequest("budgetwf", params.Dump());
    request.headers["x-queue-budget-ms"] = "30000";
    auto response =
        ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  // Give the patient request time to enter the queue, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release = true;
  blocker.join();
  patient.join();
}

TEST(VisorServingTest, RegisterWorkflowPrewarmsToFloorWithoutInvocation) {
  FunctionRegistry::Global().Register(
      "serving.noop", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("noop");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "prewarmwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.noop", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 2;
  options.min_warm = 2;
  visor.RegisterWorkflow(spec, options);

  // No invocation: the pool warmer alone fills the floor.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (visor.WarmWfdCount("prewarmwf").value_or(0) < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(visor.WarmWfdCount("prewarmwf").value_or(0), 2u);
  EXPECT_GE(CounterValue("alloy_visor_prewarms_total", "prewarmwf"), 2u);

  // A pre-warmed WFD serves the first invocation warm — the spike pays no
  // cold start.
  auto first = visor.Invoke("prewarmwf", asbase::Json());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->warm_start);
  EXPECT_EQ(first->wfd_create_nanos, 0);
}

TEST(VisorServingTest, PrewarmedWfdsReplayLearnedModuleSet) {
  FunctionRegistry::Global().Register(
      "serving.warmod", [](FunctionContext& ctx) -> asbase::Status {
        AS_RETURN_IF_ERROR(ctx.as().WriteWholeFile("/warm.txt", Bytes("w")));
        if (ctx.params()["fail"].as_bool(false)) {
          return asbase::Internal("deliberate failure");
        }
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "warmodwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.warmod", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  options.min_warm = 1;
  visor.RegisterWorkflow(spec, options);

  auto wait_for_warm = [&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (visor.WarmWfdCount("warmodwf").value_or(0) < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return visor.WarmWfdCount("warmodwf").value_or(0);
  };
  ASSERT_EQ(wait_for_warm(), 1u);

  // The first run lands on an unprofiled pre-warmed WFD: it pays the module
  // loads itself and teaches the warmer what this workflow touches.
  auto first = visor.Invoke("warmodwf", asbase::Json());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->warm_start);
  EXPECT_GT(first->module_load_nanos, 0);

  // A failed invocation destroys its WFD, draining the pool; the warmer
  // boots a replacement through the factory — now with the learned profile.
  asbase::Json fail_params;
  fail_params.Set("fail", true);
  EXPECT_FALSE(visor.Invoke("warmodwf", fail_params).ok());
  ASSERT_EQ(wait_for_warm(), 1u);

  // The replacement arrives hot: the same run now loads zero modules.
  auto replayed = visor.Invoke("warmodwf", asbase::Json());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->warm_start);
  EXPECT_EQ(replayed->module_load_nanos, 0)
      << "the pre-warm factory must replay the recorded module set";
}

// --------------------------------------------- cross-workflow queue fairness

TEST(VisorServingTest, AdmissionRoundRobinPreventsCrossWorkflowStarvation) {
  FunctionRegistry::Global().Register(
      "serving.sleep20", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  AsVisor visor;
  auto register_workflow = [&](const std::string& name) {
    WorkflowSpec spec;
    spec.name = name;
    spec.stages.push_back(StageSpec{{FunctionSpec{"serving.sleep20", 1}}});
    AsVisor::WorkflowOptions options;
    options.wfd = SmallWfd();
    options.pool_size = 1;
    options.max_concurrency = 1;
    options.queue_capacity = 8;
    options.queueing_budget_ms = 60'000;
    visor.RegisterWorkflow(spec, options);
  };
  register_workflow("heavywf");
  register_workflow("lightwf");
  AsVisor::ServingOptions serving;
  serving.worker_threads = 8;
  serving.max_inflight = 1;  // one global slot: the workflows must share it
  ASSERT_TRUE(visor.StartWatchdog(0, serving).ok());

  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  std::vector<std::thread> clients;
  auto fire = [&](const std::string& name) {
    clients.emplace_back([&, name] {
      auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                       InvokeRequest(name));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->status, 200) << response->body;
      std::lock_guard<std::mutex> lock(order_mutex);
      completion_order.push_back(name);
    });
  };
  // A heavy backlog first, then one light request: if the global slot went
  // to whichever waiter raced first, the light workflow could drain behind
  // the entire heavy queue. Round-robin grants interleave it.
  for (int i = 0; i < 4; ++i) {
    fire("heavywf");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  fire("lightwf");
  for (auto& client : clients) {
    client.join();
  }
  ASSERT_EQ(completion_order.size(), 5u);
  const auto light_at = std::find(completion_order.begin(),
                                  completion_order.end(), "lightwf");
  ASSERT_NE(light_at, completion_order.end());
  EXPECT_LT(light_at - completion_order.begin(), 4)
      << "the light workflow must not wait out the whole heavy backlog";
}

TEST(VisorServingTest, WeightedSharesGrantSlotsProportionally) {
  static std::atomic<bool> gate_started{false};
  static std::atomic<bool> gate_release{false};
  gate_started = false;
  gate_release = false;
  FunctionRegistry::Global().Register(
      "serving.weightgate", [](FunctionContext& ctx) -> asbase::Status {
        gate_started = true;
        while (!gate_release) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ctx.SetResult("released");
        return asbase::OkStatus();
      });
  std::mutex order_mutex;
  std::vector<std::string> grant_order;
  FunctionRegistry::Global().Register(
      "serving.recordwf", [&](FunctionContext& ctx) -> asbase::Status {
        {
          std::lock_guard<std::mutex> lock(order_mutex);
          grant_order.push_back(ctx.params()["who"].as_string());
        }
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  AsVisor visor;
  auto register_workflow = [&](const std::string& name,
                               const std::string& function, double weight) {
    WorkflowSpec spec;
    spec.name = name;
    spec.stages.push_back(StageSpec{{FunctionSpec{function, 1}}});
    AsVisor::WorkflowOptions options;
    options.wfd = SmallWfd();
    options.pool_size = 1;
    options.max_concurrency = 12;
    options.queue_capacity = 16;
    options.queueing_budget_ms = 60'000;
    options.weight = weight;
    visor.RegisterWorkflow(spec, options);
  };
  register_workflow("wgate", "serving.weightgate", 1.0);
  register_workflow("a-prio", "serving.recordwf", 3.0);
  register_workflow("b-std", "serving.recordwf", 1.0);
  AsVisor::ServingOptions serving;
  serving.worker_threads = 16;
  serving.max_inflight = 1;  // one global slot, granted strictly one by one
  ASSERT_TRUE(visor.StartWatchdog(0, serving).ok());

  // Occupy the single slot, then pile up 9 weight-3 and 3 weight-1 waiters
  // so every later grant is contested.
  std::thread gate_holder([&] {
    auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                     InvokeRequest("wgate"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << response->body;
  });
  while (!gate_started) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  asobs::Gauge& a_queued = asobs::Registry::Global().GetGauge(
      "alloy_visor_queued", {{"workflow", "a-prio"}});
  asobs::Gauge& b_queued = asobs::Registry::Global().GetGauge(
      "alloy_visor_queued", {{"workflow", "b-std"}});
  std::vector<std::thread> clients;
  auto fire = [&](const std::string& name) {
    clients.emplace_back([&, name] {
      asbase::Json params;
      params.Set("who", name);
      auto response =
          ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                           InvokeRequest(name, params.Dump()));
      ASSERT_TRUE(response.ok());
      ASSERT_EQ(response->status, 200) << response->body;
    });
  };
  for (int i = 0; i < 9; ++i) {
    fire("a-prio");
  }
  for (int i = 0; i < 3; ++i) {
    fire("b-std");
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((a_queued.value() < 9 || b_queued.value() < 3) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(a_queued.value(), 9);
  ASSERT_EQ(b_queued.value(), 3);

  gate_release = true;
  gate_holder.join();
  for (auto& client : clients) {
    client.join();
  }

  // Deficit-round-robin at 3:1 weights grants in A,A,A,B cycles while both
  // queues are non-empty. Check the ratio window by window rather than the
  // exact sequence so the assertion is robust to the final uncontested tail.
  ASSERT_EQ(grant_order.size(), 12u);
  for (int window = 0; window < 3; ++window) {
    int a_grants = 0;
    for (int i = window * 4; i < (window + 1) * 4; ++i) {
      if (grant_order[i] == "a-prio") {
        ++a_grants;
      }
    }
    EXPECT_EQ(a_grants, 3) << "window " << window
                           << " must grant the weight-3 workflow 3 of 4 slots";
  }
}

// ------------------------- flight recorder / tail retention / SLO (§11)

TEST(VisorObservabilityTest, TimeoutBurstRetainsTailTracesAndFlightRecords) {
  FunctionRegistry::Global().Register(
      "serving.tunablesleep", [](FunctionContext& ctx) -> asbase::Status {
        const int64_t sleep_ms = ctx.params()["sleep_ms"].as_int(0);
        if (sleep_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "tailwf";
  // Two stages so the cooperative deadline check after the first stage's
  // barrier converts a slow run into kDeadlineExceeded.
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.tunablesleep", 1}}});
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.tunablesleep", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  options.timeout_ms = 50;
  visor.RegisterWorkflow(spec, options);

  // Tail-based retention: only failures/timeouts (or >10s runs) keep their
  // span tree. The fast successes below must NOT be retained.
  AsVisor::ServingOptions serving;
  serving.trace_threshold_ms = 10'000;
  ASSERT_TRUE(visor.StartWatchdog(0, serving).ok());
  EXPECT_EQ(visor.trace_threshold_ms(), 10'000);

  asobs::Counter& retained = asobs::Registry::Global().GetCounter(
      "alloy_visor_traces_retained_total");
  const uint64_t retained0 = retained.value();

  // Three fast successes...
  asbase::Json fast;
  fast.Set("sleep_ms", static_cast<int64_t>(0));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(visor.Invoke("tailwf", fast).ok());
  }
  // ...then a burst of three timeouts.
  asbase::Json slow;
  slow.Set("sleep_ms", static_cast<int64_t>(100));
  for (int i = 0; i < 3; ++i) {
    auto result = visor.Invoke("tailwf", slow);
    ASSERT_FALSE(result.ok());
    ASSERT_EQ(result.status().code(), asbase::ErrorCode::kDeadlineExceeded);
  }

  // Only the offenders were retained for /trace.
  EXPECT_EQ(retained.value(), retained0 + 3)
      << "fast successes under the threshold must not be retained";

  // The flight ring has everything — and the timeout records carry a phase
  // breakdown (they reached the exec phase before the deadline fired).
  ashttp::HttpRequest request;
  request.method = "GET";
  request.target = "/debug/flight?workflow=tailwf";
  auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  auto doc = asbase::Json::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  ASSERT_EQ((*doc)["count"].as_int(), 6);
  int ok_records = 0;
  int timeout_records = 0;
  for (const asbase::Json& record : (*doc)["records"].array()) {
    EXPECT_EQ(record["workflow"].as_string(), "tailwf");
    if (record["outcome"].as_string() == "ok") {
      ++ok_records;
    } else if (record["outcome"].as_string() == "timeout") {
      ++timeout_records;
      EXPECT_GT(record["phases"]["exec_nanos"].as_int(), 0)
          << "a timeout record must attribute where the time went";
      EXPECT_GE(record["total_nanos"].as_int(), 50 * 1'000'000);
    }
  }
  EXPECT_EQ(ok_records, 3);
  EXPECT_EQ(timeout_records, 3);

  // Phase attribution across the same records: exec owns this tail (the
  // timeouts burned their lives sleeping inside the orchestrator run).
  request.target = "/debug/latency?workflow=tailwf";
  auto latency = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(latency.ok());
  ASSERT_EQ(latency->status, 200);
  auto attribution = asbase::Json::Parse(latency->body);
  ASSERT_TRUE(attribution.ok()) << latency->body;
  EXPECT_EQ((*attribution)["count"].as_int(), 6);
  EXPECT_EQ((*attribution)["tail_owner"].as_string(), "exec")
      << latency->body;
}

TEST(VisorObservabilityTest, HealthzAlwaysOkReadyzReflectsDrain) {
  AsVisor visor;
  ASSERT_TRUE(visor.StartWatchdog(0).ok());
  ashttp::HttpRequest request;
  request.method = "GET";

  request.target = "/healthz";
  auto healthz = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);
  EXPECT_EQ(healthz->body, "ok");

  request.target = "/readyz";
  auto ready = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);
  EXPECT_EQ(ready->body, "ready");

  visor.BeginDrain();
  EXPECT_TRUE(visor.draining());
  auto drained = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->status, 503);
  EXPECT_EQ(drained->body, "draining");

  // Liveness is unaffected by the drain.
  request.target = "/healthz";
  auto alive = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive->status, 200);
}

TEST(VisorObservabilityTest, SloBurnTriggerWritesBlackBox) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "alloy_blackbox_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ::setenv("ALLOY_BLACKBOX_DIR", dir.c_str(), 1);

  FunctionRegistry::Global().Register(
      "serving.alwaysfail", [](FunctionContext&) -> asbase::Status {
        return asbase::Internal("induced failure");
      });
  {
    AsVisor visor;  // constructed AFTER the env var is set
    WorkflowSpec spec;
    spec.name = "slowf";
    spec.stages.push_back(StageSpec{{FunctionSpec{"serving.alwaysfail", 1}}});
    AsVisor::WorkflowOptions options;
    options.wfd = SmallWfd();
    options.pool_size = 0;
    options.slo_objective = 0.99;  // 1% budget: one failure burns hot
    visor.RegisterWorkflow(spec, options);

    EXPECT_FALSE(visor.Invoke("slowf", asbase::Json()).ok());

    // The failure pushed the fast burn over its threshold (bad fraction 1.0
    // against a 1% budget = burn 100 >= 14): gauges move, black box drops.
    asobs::Gauge& fast_burn = asobs::Registry::Global().GetGauge(
        "alloy_slo_burn_rate",
        {{"workflow", "slowf"}, {"window", "fast"}});
    EXPECT_GE(fast_burn.value(), 14'000)
        << "burn gauges are milli-scaled (burn 14.0 -> 14000)";
  }
  ::unsetenv("ALLOY_BLACKBOX_DIR");

  std::vector<fs::path> boxes;
  for (const auto& file : fs::directory_iterator(dir)) {
    boxes.push_back(file.path());
  }
  ASSERT_EQ(boxes.size(), 1u) << "exactly one black box per incident";
  std::ifstream in(boxes[0]);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto doc = asbase::Json::Parse(body);
  ASSERT_TRUE(doc.ok()) << body;
  EXPECT_EQ((*doc)["reason"].as_string(), "fast_burn");
  EXPECT_EQ((*doc)["workflow"].as_string(), "slowf");
  EXPECT_GE((*doc)["fast_burn_milli"].as_int(), 14'000);
  // The snapshot embeds the flight ring (the failure's record is in there)
  // and the per-workflow queue/pool state.
  EXPECT_GE((*doc)["flight"]["count"].as_int(), 1);
  ASSERT_TRUE((*doc)["queues"].is_array());
  EXPECT_EQ((*doc)["queues"].array()[0]["workflow"].as_string(), "slowf");
  fs::remove_all(dir);
}

TEST(VisorObservabilityTest, RejectionLeavesFlightRecord) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  FunctionRegistry::Global().Register(
      "serving.obsblock", [&started, &release](FunctionContext& ctx)
                              -> asbase::Status {
        started = true;
        while (!release) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ctx.SetResult("released");
        return asbase::OkStatus();
      });
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = "rejwf";
  spec.stages.push_back(StageSpec{{FunctionSpec{"serving.obsblock", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.max_concurrency = 1;
  visor.RegisterWorkflow(spec, options);
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  std::thread first([&] {
    auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                     InvokeRequest("rejwf"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  });
  while (!started) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto rejected = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                   InvokeRequest("rejwf"));
  ASSERT_TRUE(rejected.ok());
  ASSERT_EQ(rejected->status, 429);
  release = true;
  first.join();

  // The 429 deposited a "rejected" record — a rejection storm must be
  // reconstructable from the black box like any other incident.
  const std::vector<asobs::FlightRecord> records =
      visor.flight().Snapshot("rejwf");
  bool found = false;
  for (const asobs::FlightRecord& record : records) {
    if (record.outcome == asobs::FlightOutcome::kRejected) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "rejections must appear in the flight ring";
}

TEST(VisorObservabilityTest, ServingOptionsOverrideTraceKnobs) {
  AsVisor visor;
  // Construction defaults (no env override in the test environment).
  EXPECT_EQ(visor.trace_ring_depth(), AsVisor::kTraceRing);
  EXPECT_EQ(visor.trace_threshold_ms(), 0);
  AsVisor::ServingOptions serving;
  serving.trace_ring = 3;
  serving.trace_threshold_ms = 250;
  ASSERT_TRUE(visor.StartServing(serving).ok());
  EXPECT_EQ(visor.trace_ring_depth(), 3u);
  EXPECT_EQ(visor.trace_threshold_ms(), 250);
  visor.StopServing();
}

}  // namespace
}  // namespace alloy
