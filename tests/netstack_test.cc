// Tests for the user-space TCP/IP stack: wire formats, virtual switch
// routing, TCP handshake/transfer/teardown, loss recovery under a faulty
// link (property test), UDP, ICMP.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/netstack/channel.h"
#include "src/netstack/stack.h"
#include "src/netstack/wire.h"
#include "src/obs/metrics.h"

namespace asnet {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------- wire

TEST(WireTest, AddrRoundTrip) {
  Ipv4Addr addr = MakeAddr(10, 0, 0, 42);
  EXPECT_EQ(AddrToString(addr), "10.0.0.42");
  EXPECT_EQ(*ParseAddr("10.0.0.42"), addr);
  EXPECT_FALSE(ParseAddr("10.0.0").ok());
  EXPECT_FALSE(ParseAddr("10.0.0.300").ok());
  EXPECT_FALSE(ParseAddr("10.0.0.1x").ok());
}

TEST(WireTest, ChecksumKnownVector) {
  // RFC 1071 example-style check: sum of complement should be 0.
  const uint8_t data[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                          0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                          0xC0, 0xA8, 0x00, 0x01, 0xC0, 0xA8, 0x00, 0xC7};
  uint16_t checksum = Checksum(data);
  std::vector<uint8_t> with(std::begin(data), std::end(data));
  with[10] = static_cast<uint8_t>(checksum >> 8);
  with[11] = static_cast<uint8_t>(checksum);
  EXPECT_EQ(Checksum(with), 0);
}

TEST(WireTest, Ipv4BuildParseRoundTrip) {
  Ipv4Header header;
  header.src = MakeAddr(10, 0, 0, 1);
  header.dst = MakeAddr(10, 0, 0, 2);
  header.proto = IpProto::kUdp;
  const uint8_t payload[] = {1, 2, 3, 4, 5};
  auto packet = BuildIpv4(header, payload);

  Ipv4Header parsed;
  auto body = ParseIpv4(packet, &parsed);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(parsed.src, header.src);
  EXPECT_EQ(parsed.dst, header.dst);
  EXPECT_EQ(parsed.proto, IpProto::kUdp);
  ASSERT_EQ(body->size(), 5u);
  EXPECT_EQ((*body)[4], 5);
}

TEST(WireTest, Ipv4RejectsCorruption) {
  Ipv4Header header;
  header.src = 1;
  header.dst = 2;
  auto packet = BuildIpv4(header, {});
  packet[8] ^= 0xFF;  // clobber TTL -> checksum now wrong
  Ipv4Header parsed;
  EXPECT_EQ(ParseIpv4(packet, &parsed).status().code(),
            asbase::ErrorCode::kDataLoss);
}

TEST(WireTest, TcpBuildParseRoundTrip) {
  const Ipv4Addr src = MakeAddr(10, 0, 0, 1), dst = MakeAddr(10, 0, 0, 2);
  TcpHeader header;
  header.src_port = 40000;
  header.dst_port = 80;
  header.seq = 12345;
  header.ack = 999;
  header.flags = kTcpAck | kTcpPsh;
  header.window = 65535;
  auto segment = BuildTcp(src, dst, header, Bytes("hello"));

  TcpHeader parsed;
  auto payload = ParseTcp(src, dst, segment, &parsed);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(parsed.src_port, 40000);
  EXPECT_EQ(parsed.seq, 12345u);
  EXPECT_EQ(parsed.flags, kTcpAck | kTcpPsh);
  EXPECT_EQ(std::string(payload->begin(), payload->end()), "hello");

  // Any flipped bit must be caught by the checksum.
  auto corrupted = segment;
  corrupted[24] ^= 0x01;
  EXPECT_FALSE(ParseTcp(src, dst, corrupted, &parsed).ok());
  // Wrong pseudo-header (different src IP) is also caught.
  EXPECT_FALSE(ParseTcp(src + 1, dst, segment, &parsed).ok());
}

TEST(WireTest, UdpBuildParseRoundTrip) {
  const Ipv4Addr src = MakeAddr(10, 0, 0, 1), dst = MakeAddr(10, 0, 0, 2);
  UdpHeader header;
  header.src_port = 5353;
  header.dst_port = 53;
  auto datagram = BuildUdp(src, dst, header, Bytes("query"));
  UdpHeader parsed;
  auto payload = ParseUdp(src, dst, datagram, &parsed);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(parsed.dst_port, 53);
  EXPECT_EQ(std::string(payload->begin(), payload->end()), "query");
}

TEST(WireTest, SeqCompareWraps) {
  EXPECT_TRUE(SeqLt(0xFFFFFFF0u, 0x10u));  // across the wrap
  EXPECT_FALSE(SeqLt(0x10u, 0xFFFFFFF0u));
  EXPECT_TRUE(SeqLe(5u, 5u));
}

// ---------------------------------------------------------------- switch

TEST(VirtualSwitchTest, RoutesByDestination) {
  VirtualSwitch fabric;
  auto a = fabric.Attach(MakeAddr(10, 0, 0, 1));
  auto b = fabric.Attach(MakeAddr(10, 0, 0, 2));

  Ipv4Header header;
  header.src = a->addr();
  header.dst = b->addr();
  header.proto = IpProto::kUdp;
  a->Send(BuildIpv4(header, Bytes("x")));

  auto packet = b->Receive(std::chrono::seconds(1));
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(fabric.packets_routed(), 1u);

  // Unknown destination is dropped, not delivered.
  header.dst = MakeAddr(10, 0, 0, 99);
  a->Send(BuildIpv4(header, Bytes("y")));
  EXPECT_FALSE(a->Receive(std::chrono::milliseconds(20)).has_value());
  EXPECT_EQ(fabric.packets_dropped(), 1u);
}

TEST(VirtualSwitchTest, DropModelDropsRoughlyAtRate) {
  VirtualSwitch fabric(LinkModel{.drop_rate = 0.5, .seed = 3});
  auto a = fabric.Attach(MakeAddr(10, 0, 0, 1));
  auto b = fabric.Attach(MakeAddr(10, 0, 0, 2));
  Ipv4Header header;
  header.src = a->addr();
  header.dst = b->addr();
  header.proto = IpProto::kUdp;
  for (int i = 0; i < 200; ++i) {
    a->Send(BuildIpv4(header, {}));
  }
  size_t delivered = 0;
  while (b->Receive(std::chrono::milliseconds(10)).has_value()) {
    ++delivered;
  }
  EXPECT_GT(delivered, 50u);
  EXPECT_LT(delivered, 150u);
}

// ---------------------------------------------------------------- TCP

class TcpTest : public ::testing::Test {
 protected:
  TcpTest()
      : fabric_(),
        server_(fabric_.Attach(MakeAddr(10, 0, 0, 1))),
        client_(fabric_.Attach(MakeAddr(10, 0, 0, 2))),
        server_stack_(server_),
        client_stack_(client_) {}

  VirtualSwitch fabric_;
  std::shared_ptr<TunPort> server_;
  std::shared_ptr<TunPort> client_;
  NetStack server_stack_;
  NetStack client_stack_;
};

TEST_F(TcpTest, ConnectAcceptEcho) {
  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());

  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    uint8_t buffer[64];
    auto n = (*connection)->Recv(buffer);
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE((*connection)->Send({buffer, *n}).ok());
    (*connection)->Close();
  });

  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE((*connection)->Send(Bytes("ping!")).ok());
  uint8_t buffer[64];
  auto n = (*connection)->Recv(buffer);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buffer, buffer + *n), "ping!");
  server_thread.join();
}

TEST_F(TcpTest, ConnectToClosedPortIsRefused) {
  auto connection =
      client_stack_.Connect(server_stack_.addr(), 9999,
                            std::chrono::milliseconds(500));
  EXPECT_FALSE(connection.ok());
}

TEST_F(TcpTest, AcceptTimesOut) {
  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  auto connection = (*listener)->Accept(std::chrono::milliseconds(50));
  EXPECT_EQ(connection.status().code(), asbase::ErrorCode::kUnavailable);
}

TEST_F(TcpTest, ListenTwiceFails) {
  auto first = server_stack_.Listen(8080);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(server_stack_.Listen(8080).status().code(),
            asbase::ErrorCode::kAlreadyExists);
}

TEST_F(TcpTest, EofAfterPeerClose) {
  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    ASSERT_TRUE((*connection)->Send(Bytes("bye")).ok());
    (*connection)->Close();
  });
  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  uint8_t buffer[16];
  auto n = (*connection)->Recv(buffer);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  n = (*connection)->Recv(buffer);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u) << "second recv must report EOF";
  server_thread.join();
}

TEST_F(TcpTest, SendAfterCloseFails) {
  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::thread server_thread([&] { auto c = (*listener)->Accept(); });
  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  (*connection)->Close();
  EXPECT_EQ((*connection)->Send(Bytes("late")).status().code(),
            asbase::ErrorCode::kFailedPrecondition);
  server_thread.join();
}

TEST_F(TcpTest, BulkTransferBothDirections) {
  constexpr size_t kSize = 2 * 1024 * 1024;
  asbase::Rng rng(99);
  std::vector<uint8_t> to_server(kSize), to_client(kSize);
  for (size_t i = 0; i < kSize; ++i) {
    to_server[i] = static_cast<uint8_t>(rng.Next());
    to_client[i] = static_cast<uint8_t>(rng.Next());
  }

  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::vector<uint8_t> server_got(kSize);
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    ASSERT_EQ(*(*connection)->RecvAll(server_got), kSize);
    ASSERT_TRUE((*connection)->Send(to_client).ok());
    (*connection)->Close();
  });

  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE((*connection)->Send(to_server).ok());
  std::vector<uint8_t> client_got(kSize);
  ASSERT_EQ(*(*connection)->RecvAll(client_got), kSize);
  server_thread.join();

  EXPECT_EQ(server_got, to_server);
  EXPECT_EQ(client_got, to_client);
}

TEST_F(TcpTest, ManyConcurrentConnections) {
  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  constexpr int kConns = 8;
  std::thread server_thread([&] {
    for (int i = 0; i < kConns; ++i) {
      auto connection = (*listener)->Accept();
      ASSERT_TRUE(connection.ok());
      uint8_t buffer[32];
      auto n = (*connection)->Recv(buffer);
      ASSERT_TRUE(n.ok());
      ASSERT_TRUE((*connection)->Send({buffer, *n}).ok());
      (*connection)->Close();
      uint8_t sink[8];
      (*connection)->Recv(sink);  // drain EOF
    }
  });
  for (int i = 0; i < kConns; ++i) {
    auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
    ASSERT_TRUE(connection.ok()) << i;
    std::string message = "conn-" + std::to_string(i);
    ASSERT_TRUE((*connection)->Send(Bytes(message)).ok());
    uint8_t buffer[32];
    auto n = (*connection)->Recv(buffer);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string(buffer, buffer + *n), message);
  }
  server_thread.join();
}

TEST_F(TcpTest, PingMeasuresRtt) {
  auto rtt = client_stack_.Ping(server_stack_.addr());
  ASSERT_TRUE(rtt.ok());
  EXPECT_GT(*rtt, 0);
  EXPECT_LT(*rtt, 1'000'000'000);
}

TEST_F(TcpTest, PingUnknownHostTimesOut) {
  auto rtt = client_stack_.Ping(MakeAddr(10, 9, 9, 9),
                                std::chrono::milliseconds(50));
  EXPECT_FALSE(rtt.ok());
}

TEST_F(TcpTest, UdpDatagramRoundTrip) {
  auto server_socket = server_stack_.UdpBind(5000);
  ASSERT_TRUE(server_socket.ok());
  auto client_socket = client_stack_.UdpBind(0);
  ASSERT_TRUE(client_socket.ok());

  ASSERT_TRUE((*client_socket)
                  ->SendTo(server_stack_.addr(), 5000, Bytes("datagram"))
                  .ok());
  auto received = (*server_socket)->RecvFrom(std::chrono::seconds(1));
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(std::string(received->payload.begin(), received->payload.end()),
            "datagram");
  EXPECT_EQ(received->src, client_stack_.addr());
}

// Property test: bulk transfers survive a lossy, duplicating link, and the
// retransmission machinery is what saves them.
class LossyTcpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossyTcpTest, TransferSurvivesLossAndDuplication) {
  VirtualSwitch fabric(
      LinkModel{.drop_rate = 0.05, .duplicate_rate = 0.03,
                .latency_nanos = 10'000, .seed = GetParam()});
  auto server_port = fabric.Attach(MakeAddr(10, 0, 0, 1));
  auto client_port = fabric.Attach(MakeAddr(10, 0, 0, 2));
  NetStack server_stack(server_port);
  NetStack client_stack(client_port);

  constexpr size_t kSize = 192 * 1024;
  asbase::Rng rng(GetParam() * 7919);
  std::vector<uint8_t> data(kSize);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }

  auto listener = server_stack.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::vector<uint8_t> got(kSize);
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(30));
    ASSERT_TRUE(connection.ok());
    ASSERT_EQ(*(*connection)->RecvAll(got), kSize);
    ASSERT_TRUE((*connection)->Send(Bytes("done")).ok());
    (*connection)->Close();
  });

  auto connection = client_stack.Connect(server_stack.addr(), 8080,
                                         std::chrono::seconds(30));
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE((*connection)->Send(data).ok());
  uint8_t ack[8];
  auto n = (*connection)->Recv(ack);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(ack, ack + *n), "done");
  server_thread.join();

  EXPECT_EQ(got, data);
  const auto stats = client_stack.stats();
  EXPECT_GT(stats.retransmissions, 0u)
      << "a 5% loss link must trigger retransmissions";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyTcpTest, ::testing::Values(11, 22, 33));

// ------------------------------------------- event-driven poller + backpressure

TEST(PollerSleepTest, IdleStacksBarelyIterate) {
  asobs::Counter& iterations = asobs::Registry::Global().GetCounter(
      "alloy_net_poll_iterations_total");
  VirtualSwitch fabric;
  auto a = fabric.Attach(MakeAddr(10, 0, 0, 1));
  auto b = fabric.Attach(MakeAddr(10, 0, 0, 2));
  NetStack stack_a(a);
  NetStack stack_b(b);
  // Let startup settle, then watch a 200 ms idle window. With no packets
  // and no armed timers the pollers block; two idle stacks should wake a
  // handful of times, not once per millisecond each (the old tick was
  // ~200 iterations per stack over this window).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const uint64_t before = iterations.value();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const uint64_t growth = iterations.value() - before;
  EXPECT_LT(growth, 50u) << "idle pollers must sleep, not tick";
}

class BackpressureTest : public ::testing::Test {
 protected:
  BackpressureTest()
      : fabric_(),
        server_port_(fabric_.Attach(MakeAddr(10, 0, 0, 1))),
        client_port_(fabric_.Attach(MakeAddr(10, 0, 0, 2))),
        server_stack_(server_port_),
        client_stack_(client_port_) {}

  // Handshake against the listener's stack; the server-side TCB ACKs
  // in-order data on its own, so no Accept/Recv is needed to drain.
  std::unique_ptr<TcpConnection> ConnectOnly() {
    listener_ = std::move(*server_stack_.Listen(8080));
    auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
    EXPECT_TRUE(connection.ok());
    return std::move(*connection);
  }

  VirtualSwitch fabric_;
  std::shared_ptr<TunPort> server_port_;
  std::shared_ptr<TunPort> client_port_;
  NetStack server_stack_;
  NetStack client_stack_;
  std::unique_ptr<TcpListener> listener_;
};

TEST_F(BackpressureTest, SendBlocksAtCapAndResumesOnAckDrain) {
  auto connection = ConnectOnly();

  // Black-hole the link: no ACKs return, so the send buffer fills to
  // kSendBufferCap and the sender must block instead of buffering on.
  fabric_.set_model(LinkModel{.drop_rate = 1.0});
  std::vector<uint8_t> data(NetStack::kSendBufferCap + 64 * 1024, 0xAB);
  std::atomic<bool> send_done{false};
  std::thread sender([&] {
    ASSERT_TRUE(connection->Send(data).ok());
    send_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(send_done.load()) << "send must block at kSendBufferCap";

  // Heal the link: the RTO retransmits, ACKs drain the buffer, and the
  // blocked sender resumes. join() hangs if backpressure never releases.
  fabric_.set_model(LinkModel{});
  sender.join();
  EXPECT_TRUE(send_done.load());

  const auto backpressure = asobs::Registry::Global()
                                .GetHistogram("alloy_net_tx_backpressure_nanos")
                                .Snapshot();
  EXPECT_GT(backpressure.count(), 0u)
      << "blocked sends must record backpressure time";
}

TEST_F(BackpressureTest, SendBackpressureHonoursDeadline) {
  auto connection = ConnectOnly();

  fabric_.set_model(LinkModel{.drop_rate = 1.0});
  connection->set_deadline_nanos(asbase::MonoNanos() + 100'000'000);
  std::vector<uint8_t> data(NetStack::kSendBufferCap + 64 * 1024, 0xCD);
  auto sent = connection->Send(data);
  EXPECT_EQ(sent.status().code(), asbase::ErrorCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------- zero-copy

// Waits for every stack-held reference to `pin` to drop (covering ACK
// processed or connection torn down); only the caller's reference remains.
bool WaitForPinRelease(const std::shared_ptr<std::vector<uint8_t>>& pin,
                       std::chrono::seconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (pin.use_count() > 1) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(WireTest, GatherChecksumMatchesContiguous) {
  // Odd-length extents exercise the byte-parity carry between extents.
  asbase::Rng rng(7);
  std::vector<uint8_t> all(1003);
  for (auto& byte : all) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  std::span<const uint8_t> whole(all);
  const std::span<const uint8_t> parts[] = {
      whole.subspan(0, 1), whole.subspan(1, 0), whole.subspan(1, 501),
      whole.subspan(502)};
  EXPECT_EQ(ChecksumGather(parts), Checksum(all));
}

TEST(WireTest, GatherTcpPacketRoundTrip) {
  const Ipv4Addr src = MakeAddr(10, 0, 0, 1), dst = MakeAddr(10, 0, 0, 2);
  const std::string hello = "hello ", world = "gather world";
  for (bool offload : {false, true}) {
    TcpHeader header;
    header.src_port = 40000;
    header.dst_port = 80;
    header.seq = 7;
    header.ack = 9;
    header.flags = kTcpAck | kTcpPsh;
    std::vector<PayloadRef> refs;
    refs.push_back({Bytes(hello), nullptr});
    refs.push_back({Bytes(world), nullptr});
    Packet packet = BuildTcpPacket(src, dst, header, refs, offload);
    EXPECT_FALSE(packet.contiguous());
    EXPECT_EQ(packet.checksum_offload(), offload);
    EXPECT_EQ(packet.payload_ref_bytes(), hello.size() + world.size());

    Ipv4Header ip;
    auto l4 = ParseIpv4Packet(packet, &ip);
    ASSERT_TRUE(l4.ok()) << "offload=" << offload;
    EXPECT_EQ(ip.src, src);
    EXPECT_EQ(ip.proto, IpProto::kTcp);

    TcpHeader parsed;
    auto inline_payload = ParseTcpSegment(src, dst, *l4, packet, &parsed);
    ASSERT_TRUE(inline_payload.ok()) << "offload=" << offload;
    EXPECT_TRUE(inline_payload->empty())
        << "gather payload must stay in refs(), not the inline view";
    EXPECT_EQ(parsed.seq, 7u);
    EXPECT_EQ(parsed.flags, kTcpAck | kTcpPsh);
  }
}

TEST(WireTest, GatherChecksumCatchesPayloadCorruption) {
  const Ipv4Addr src = MakeAddr(10, 0, 0, 1), dst = MakeAddr(10, 0, 0, 2);
  std::vector<uint8_t> payload(100, 0x42);
  TcpHeader header;
  header.src_port = 1;
  header.dst_port = 2;
  std::vector<PayloadRef> refs;
  refs.push_back({payload, nullptr});
  Packet packet = BuildTcpPacket(src, dst, header, std::move(refs),
                                 /*checksum_offload=*/false);
  Ipv4Header ip;
  auto l4 = ParseIpv4Packet(packet, &ip);
  ASSERT_TRUE(l4.ok());
  TcpHeader parsed;
  ASSERT_TRUE(ParseTcpSegment(src, dst, *l4, packet, &parsed).ok());
  // The refs point at `payload` — flipping a source byte must break the
  // gather checksum (this is what retransmit-after-free would look like).
  payload[50] ^= 0xFF;
  EXPECT_EQ(ParseTcpSegment(src, dst, *l4, packet, &parsed).status().code(),
            asbase::ErrorCode::kDataLoss);
}

TEST_F(TcpTest, ZeroCopyEchoReleasesPinAfterAck) {
  constexpr size_t kSize = 64 * 1024;
  auto payload = std::make_shared<std::vector<uint8_t>>(kSize);
  asbase::Rng rng(123);
  for (auto& byte : *payload) {
    byte = static_cast<uint8_t>(rng.Next());
  }

  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::vector<uint8_t> got;
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    // Drain by reference: each chunk aliases a pool-owned block.
    while (got.size() < kSize) {
      auto chunk = (*connection)->RecvZeroCopy();
      ASSERT_TRUE(chunk.ok());
      ASSERT_FALSE(chunk->bytes.empty()) << "EOF before full payload";
      got.insert(got.end(), chunk->bytes.begin(), chunk->bytes.end());
    }
  });

  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  auto sent = (*connection)->SendZeroCopy(*payload, payload);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, kSize);
  server_thread.join();
  EXPECT_EQ(got, *payload);

  // Once the covering ACK lands, every stack-held pin reference drops.
  EXPECT_TRUE(WaitForPinRelease(payload))
      << "stack still pins the buffer after full ACK";
}

TEST_F(TcpTest, MixedCopyAndZeroCopySendsPreserveOrder) {
  // Interleave copying and pinned sends; the byte stream must arrive in
  // submission order regardless of which path carried each chunk.
  asbase::Rng rng(321);
  std::vector<uint8_t> expected;
  auto pinned_a = std::make_shared<std::vector<uint8_t>>(40 * 1024);
  auto pinned_b = std::make_shared<std::vector<uint8_t>>(70 * 1024);
  std::vector<uint8_t> copied_a(5 * 1024), copied_b(9 * 1024);
  for (auto* block : {&copied_a, pinned_a.get(), &copied_b, pinned_b.get()}) {
    for (auto& byte : *block) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    expected.insert(expected.end(), block->begin(), block->end());
  }

  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::vector<uint8_t> got(expected.size());
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    ASSERT_EQ(*(*connection)->RecvAll(got), got.size());
  });

  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE((*connection)->Send(copied_a).ok());
  ASSERT_TRUE((*connection)->SendZeroCopy(*pinned_a, pinned_a).ok());
  ASSERT_TRUE((*connection)->Send(copied_b).ok());
  ASSERT_TRUE((*connection)->SendZeroCopy(*pinned_b, pinned_b).ok());
  server_thread.join();
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(WaitForPinRelease(pinned_a));
  EXPECT_TRUE(WaitForPinRelease(pinned_b));
}

TEST(LossyZeroCopyTest, PinnedTransferSurvivesLossAndReleasesPinOnce) {
  // Retransmissions re-read the pinned slot memory in place; the received
  // stream matching the source proves the re-reads hit live, correct bytes,
  // and use_count()==1 afterwards proves the pin dropped exactly once per
  // reference (shared_ptr would assert/corrupt on double release).
  // Jumbo gather segments mean far fewer packets per byte than the copy
  // path, so the loss rate and transfer size are higher than the contiguous
  // lossy test to guarantee (deterministically, via the fixed seed) that at
  // least one data segment is dropped.
  VirtualSwitch fabric(LinkModel{.drop_rate = 0.10, .duplicate_rate = 0.03,
                                 .latency_nanos = 10'000, .seed = 42});
  auto server_port = fabric.Attach(MakeAddr(10, 0, 0, 1));
  auto client_port = fabric.Attach(MakeAddr(10, 0, 0, 2));
  NetStack server_stack(server_port);
  NetStack client_stack(client_port);

  constexpr size_t kSize = 512 * 1024;
  auto payload = std::make_shared<std::vector<uint8_t>>(kSize);
  asbase::Rng rng(777);
  for (auto& byte : *payload) {
    byte = static_cast<uint8_t>(rng.Next());
  }

  auto listener = server_stack.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::vector<uint8_t> got(kSize);
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(30));
    ASSERT_TRUE(connection.ok());
    ASSERT_EQ(*(*connection)->RecvAll(got), kSize);
  });

  auto connection = client_stack.Connect(server_stack.addr(), 8080,
                                         std::chrono::seconds(30));
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE((*connection)->SendZeroCopy(*payload, payload).ok());
  server_thread.join();

  EXPECT_EQ(got, *payload);
  EXPECT_GT(client_stack.stats().retransmissions, 0u)
      << "a 5% loss link must trigger retransmissions";
  EXPECT_TRUE(WaitForPinRelease(payload));
}

TEST_F(BackpressureTest, ZeroCopyDeadlineAbortReleasesPins) {
  auto connection = ConnectOnly();

  asobs::Counter& aborted = asobs::Registry::Global().GetCounter(
      "alloy_net_tx_pins_aborted_total");
  const uint64_t before = aborted.value();

  // Black-hole the link: queued chunks never get ACKed, so the pin cannot
  // be released by the ACK path and the send blocks until its deadline.
  fabric_.set_model(LinkModel{.drop_rate = 1.0});
  connection->set_deadline_nanos(asbase::MonoNanos() + 100'000'000);
  auto payload = std::make_shared<std::vector<uint8_t>>(
      NetStack::kSendBufferCap + 64 * 1024, 0xEE);
  auto sent = connection->SendZeroCopy(*payload, payload);
  EXPECT_EQ(sent.status().code(), asbase::ErrorCode::kDeadlineExceeded);

  // The queued prefix still pins the buffer. Early close + handle teardown
  // must release every pin (and account for the aborted chunks).
  connection->Close();
  connection.reset();
  EXPECT_TRUE(WaitForPinRelease(payload))
      << "teardown must release zero-copy pins";
  EXPECT_GT(aborted.value(), before)
      << "pins released at teardown (not by ACK) must be counted";
}

TEST_F(TcpTest, WindowFullDropsAreCountedAndRecovered) {
  asobs::Counter& dropped = asobs::Registry::Global().GetCounter(
      "alloy_net_rx_dropped_total", {{"reason", "window_full"}});
  const uint64_t before = dropped.value();

  // More than the receive buffer holds, to a reader that is not reading:
  // in-order arrivals past kRecvBufferCap must be dropped (not copied) and
  // recovered by retransmission once the reader drains.
  constexpr size_t kSize = NetStack::kRecvBufferCap + 512 * 1024;
  asbase::Rng rng(555);
  std::vector<uint8_t> data(kSize);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }

  auto listener = server_stack_.Listen(8080);
  ASSERT_TRUE(listener.ok());
  std::vector<uint8_t> got(kSize);
  std::thread server_thread([&] {
    auto connection = (*listener)->Accept();
    ASSERT_TRUE(connection.ok());
    // Hold off reading until the receive buffer has filled and overflow
    // segments were dropped, then drain everything.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (dropped.value() == before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(*(*connection)->RecvAll(got), kSize);
  });

  auto connection = client_stack_.Connect(server_stack_.addr(), 8080);
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE((*connection)->Send(data).ok());
  server_thread.join();

  EXPECT_EQ(got, data);
  EXPECT_GT(dropped.value(), before)
      << "overflow segments must be dropped under reason=window_full";
}

}  // namespace
}  // namespace asnet
