// Tests for WFD snapshot-fork clone boot (DESIGN.md §14): CoW isolation of
// heap and filesystem between the template and its clones, MPK key
// isolation across clones, the visor's capture/clone/invalidate lifecycle
// (with counter proof), and the clone-while-snapshotting race.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/alloc/arena.h"
#include "src/blockdev/block_device.h"
#include "src/core/visor/visor.h"
#include "src/core/wfd.h"
#include "src/core/wfd_snapshot.h"
#include "src/obs/metrics.h"

namespace alloy {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

WfdOptions SmallWfd() {
  WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;  // 8 MiB disk
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

uint64_t CounterValue(const std::string& name, const std::string& workflow) {
  return asobs::Registry::Global()
      .GetCounter(name, {{"workflow", workflow}})
      .value();
}

std::string ReadFile(Libos& libos, const std::string& path) {
  auto fd = libos.Open(path, asfat::OpenFlags::ReadOnly());
  if (!fd.ok()) {
    return "<open failed: " + fd.status().ToString() + ">";
  }
  std::vector<uint8_t> buffer(4096);
  auto n = libos.Read(*fd, buffer);
  (void)libos.CloseFd(*fd);
  if (!n.ok()) {
    return "<read failed>";
  }
  return std::string(buffer.begin(), buffer.begin() + *n);
}

asbase::Status WriteFile(Libos& libos, const std::string& path,
                         const std::string& content) {
  AS_ASSIGN_OR_RETURN(int fd,
                      libos.Open(path, asfat::OpenFlags::WriteCreate()));
  auto written = libos.Write(fd, Bytes(content));
  AS_RETURN_IF_ERROR(libos.CloseFd(fd));
  AS_RETURN_IF_ERROR(written.status());
  return asbase::OkStatus();
}

// ------------------------------------------------------------ arena CoW

TEST(ArenaSnapshotTest, ClonesAreIsolatedFromTemplateAndSiblings) {
  asalloc::Arena arena(1u << 20);
  ASSERT_TRUE(arena.valid());
  uint8_t* base = static_cast<uint8_t*>(arena.data());
  std::memset(base, 0x5a, 4096);

  auto snapshot = arena.CaptureSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_GT((*snapshot)->image_bytes(), 0u);

  auto clone_a = asalloc::Arena::CloneFrom(**snapshot);
  auto clone_b = asalloc::Arena::CloneFrom(**snapshot);
  ASSERT_TRUE(clone_a.ok());
  ASSERT_TRUE(clone_b.ok());
  EXPECT_TRUE(clone_a->is_cow_clone());
  uint8_t* a = static_cast<uint8_t*>(clone_a->data());
  uint8_t* b = static_cast<uint8_t*>(clone_b->data());

  // Clones see the template's bytes without any copy having happened.
  EXPECT_EQ(a[0], 0x5a);
  EXPECT_EQ(b[100], 0x5a);

  // Writes in one clone are invisible to the template and the sibling.
  std::memset(a, 0xaa, 4096);
  EXPECT_EQ(base[0], 0x5a);
  EXPECT_EQ(b[0], 0x5a);
  std::memset(b, 0xbb, 4096);
  EXPECT_EQ(a[0], 0xaa);
  EXPECT_EQ(base[0], 0x5a);

  // Template writes after capture do not leak into clones (the memfd image
  // is sealed; the template keeps its own anonymous pages).
  std::memset(base, 0xcc, 4096);
  EXPECT_EQ(a[0], 0xaa);
  EXPECT_EQ(b[0], 0xbb);

  // A clone privately owns only what it dirtied, not the shared template
  // pages: one dirtied 4 KiB run, not the 1 MiB mapping.
  EXPECT_LE(clone_a->PrivateResidentBytes(), 64u * 1024);
}

// ------------------------------------------------------- memdisk chunks

TEST(MemDiskTest, AllocatesLazilyAndClonesCopyOnWrite) {
  // Satellite 1: a fresh disk must not eagerly materialize its full size.
  asblk::MemDisk disk(128 * 1024);  // 64 MiB virtual
  EXPECT_EQ(disk.ResidentBytes(), 0u);

  std::vector<uint8_t> block(asblk::BlockDevice::kBlockSize, 0x11);
  ASSERT_TRUE(disk.Write(7, block).ok());
  EXPECT_GT(disk.ResidentBytes(), 0u);
  EXPECT_LE(disk.ResidentBytes(), asblk::MemDisk::kChunkBytes);

  auto image = disk.SnapshotImage();
  ASSERT_NE(image, nullptr);
  // The template re-based onto the frozen image: its private set is empty
  // again, and the image holds the written chunk.
  EXPECT_EQ(disk.ResidentBytes(), 0u);
  EXPECT_GT(image->bytes(), 0u);

  asblk::MemDisk clone(image);
  std::vector<uint8_t> out(asblk::BlockDevice::kBlockSize);
  ASSERT_TRUE(clone.Read(7, out).ok());
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(clone.ResidentBytes(), 0u) << "reads must not materialize chunks";

  // Clone write copies the chunk; the template still reads the image data.
  std::vector<uint8_t> other(asblk::BlockDevice::kBlockSize, 0x22);
  ASSERT_TRUE(clone.Write(7, other).ok());
  ASSERT_TRUE(disk.Read(7, out).ok());
  EXPECT_EQ(out[0], 0x11);
  ASSERT_TRUE(clone.Read(7, out).ok());
  EXPECT_EQ(out[0], 0x22);

  // Unwritten blocks read as zeros in both.
  ASSERT_TRUE(clone.Read(9999, out).ok());
  EXPECT_EQ(out[0], 0u);
}

// ------------------------------------------------------------- wfd clone

TEST(WfdSnapshotTest, CloneBootSharesStateButIsolatesWrites) {
  auto wfd_or = Wfd::Create(SmallWfd());
  ASSERT_TRUE(wfd_or.ok());
  Wfd& tmpl = **wfd_or;

  // Bake recognizable state into the template: a heap allocation with a
  // pattern and a file on the FAT volume.
  auto heap_ptr = tmpl.libos().HeapAllocate(64 * 1024);
  ASSERT_TRUE(heap_ptr.ok());
  std::memset(*heap_ptr, 0x5a, 64 * 1024);
  ASSERT_TRUE(WriteFile(tmpl.libos(), "/seed.txt", "template-state").ok());
  ASSERT_TRUE(tmpl.Reset().ok());

  uint8_t* tmpl_base = static_cast<uint8_t*>(tmpl.libos().heap_arena()->data());
  const size_t heap_offset =
      static_cast<uint8_t*>(*heap_ptr) - tmpl_base;

  auto snapshot = tmpl.CaptureSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_GT((*snapshot)->image_bytes, 0u);

  auto clone_a_or = Wfd::CloneFromSnapshot(SmallWfd(), *snapshot);
  auto clone_b_or = Wfd::CloneFromSnapshot(SmallWfd(), *snapshot);
  ASSERT_TRUE(clone_a_or.ok()) << clone_a_or.status().ToString();
  ASSERT_TRUE(clone_b_or.ok());
  Wfd& a = **clone_a_or;
  Wfd& b = **clone_b_or;
  EXPECT_TRUE(a.cloned_from_snapshot());

  // Before dirtying anything, a clone's incremental resident cost is a
  // small fraction of the template's (CoW views, not copies). The few
  // private pages it does hold come from the free-list rebase.
  EXPECT_LT(b.ResidentBytes(), tmpl.ResidentBytes() / 2);

  // Clone boot skipped module construction but the modules are loaded.
  EXPECT_TRUE(a.libos().IsLoaded(ModuleKind::kMm));
  EXPECT_TRUE(a.libos().IsLoaded(ModuleKind::kFatfs));
  EXPECT_EQ(a.libos().TotalLoadNanos(), 0)
      << "clone boot must not charge module-load time";

  // Heap contents came across at the same offset; file contents mounted
  // without device I/O.
  uint8_t* a_base = static_cast<uint8_t*>(a.libos().heap_arena()->data());
  uint8_t* b_base = static_cast<uint8_t*>(b.libos().heap_arena()->data());
  EXPECT_EQ(a_base[heap_offset], 0x5a);
  EXPECT_EQ(ReadFile(a.libos(), "/seed.txt"), "template-state");

  // Heap writes stay private per clone.
  a_base[heap_offset] = 0xaa;
  b_base[heap_offset] = 0xbb;
  EXPECT_EQ(tmpl_base[heap_offset], 0x5a);
  EXPECT_EQ(a_base[heap_offset], 0xaa);
  EXPECT_EQ(b_base[heap_offset], 0xbb);

  // Filesystem writes stay private per clone: /a.txt exists only in A.
  ASSERT_TRUE(WriteFile(a.libos(), "/a.txt", "from-a").ok());
  EXPECT_TRUE(a.libos().Stat("/a.txt").ok());
  EXPECT_FALSE(b.libos().Stat("/a.txt").ok());
  EXPECT_FALSE(tmpl.libos().Stat("/a.txt").ok());
  ASSERT_TRUE(WriteFile(b.libos(), "/b.txt", "from-b").ok());
  EXPECT_EQ(ReadFile(b.libos(), "/b.txt"), "from-b");
  EXPECT_FALSE(a.libos().Stat("/b.txt").ok());

  // The clone's allocator resumed from the template's cursor: it can keep
  // allocating, and freeing the template's allocation inside the clone is
  // legal (the free-list was rebased into the clone's address space).
  auto clone_alloc = a.libos().HeapAllocate(32 * 1024);
  ASSERT_TRUE(clone_alloc.ok());
  EXPECT_TRUE(a.libos().HeapFree(a_base + heap_offset).ok());
}

TEST(WfdSnapshotTest, MpkKeysAreReboundPerClone) {
  auto tmpl_or = Wfd::Create(SmallWfd());
  ASSERT_TRUE(tmpl_or.ok());
  ASSERT_TRUE((*tmpl_or)->libos().EnsureLoaded(ModuleKind::kMm).ok());
  ASSERT_TRUE((*tmpl_or)->Reset().ok());
  auto snapshot = (*tmpl_or)->CaptureSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  auto a_or = Wfd::CloneFromSnapshot(SmallWfd(), *snapshot);
  auto b_or = Wfd::CloneFromSnapshot(SmallWfd(), *snapshot);
  ASSERT_TRUE(a_or.ok());
  ASSERT_TRUE(b_or.ok());
  Wfd& a = **a_or;
  Wfd& b = **b_or;

  // Each clone's heap view is bound to that clone's own user key in that
  // clone's own key runtime — the MPK partition does not come from the
  // template.
  void* a_heap = a.libos().heap_arena()->data();
  void* b_heap = b.libos().heap_arena()->data();
  EXPECT_EQ(a.mpk().KeyOf(a_heap), a.user_key());
  EXPECT_EQ(b.mpk().KeyOf(b_heap), b.user_key());
  // A's runtime knows nothing about B's view and vice versa.
  EXPECT_EQ(a.mpk().KeyOf(b_heap), 0u);
  EXPECT_EQ(b.mpk().KeyOf(a_heap), 0u);
}

TEST(WfdSnapshotTest, RamfsAndGeometryMismatchesRefuse) {
  WfdOptions ramfs_options = SmallWfd();
  ramfs_options.use_ramfs = true;
  auto ramfs_wfd = Wfd::Create(ramfs_options);
  ASSERT_TRUE(ramfs_wfd.ok());
  ASSERT_TRUE((*ramfs_wfd)->libos().EnsureLoaded(ModuleKind::kRamfs).ok());
  EXPECT_FALSE((*ramfs_wfd)->CaptureSnapshot().ok())
      << "ramfs WFDs must not snapshot";

  auto tmpl = Wfd::Create(SmallWfd());
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->libos().EnsureLoaded(ModuleKind::kMm).ok());
  auto snapshot = (*tmpl)->CaptureSnapshot();
  ASSERT_TRUE(snapshot.ok());

  WfdOptions bigger = SmallWfd();
  bigger.heap_bytes = 16u << 20;
  EXPECT_FALSE(Wfd::CloneFromSnapshot(bigger, *snapshot).ok())
      << "geometry drift must refuse, not mis-clone";

  // Cap enforcement: a tiny budget refuses the capture.
  EXPECT_FALSE((*tmpl)->CaptureSnapshot(/*max_image_bytes=*/1).ok());
}

// ------------------------------------------------------ visor lifecycle

TEST(VisorSnapshotTest, CaptureCloneAndInvalidateWithCounters) {
  FunctionRegistry::Global().Register(
      "snap.rendezvous", [](FunctionContext& ctx) -> asbase::Status {
        static std::atomic<int>* arrivals = nullptr;
        if (ctx.params()["mode"].as_string() == "block") {
          auto* gate = reinterpret_cast<std::atomic<int>*>(
              static_cast<uintptr_t>(ctx.params()["gate"].as_int()));
          gate->fetch_add(1);
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(5);
          while (gate->load() < 2 &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
        }
        (void)arrivals;
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });

  const std::string wf = "snapwf";
  const uint64_t creates0 =
      CounterValue("alloy_visor_snapshot_creates_total", wf);
  const uint64_t clones0 =
      CounterValue("alloy_visor_snapshot_clones_total", wf);
  const uint64_t fallbacks0 =
      CounterValue("alloy_visor_snapshot_fallback_boots_total", wf);
  const uint64_t invalidations0 =
      CounterValue("alloy_visor_snapshot_invalidations_total", wf);

  AsVisor visor;
  WorkflowSpec spec;
  spec.name = wf;
  spec.stages.push_back(StageSpec{{FunctionSpec{"snap.rendezvous", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 2;
  options.max_concurrency = 2;
  visor.RegisterWorkflow(spec, options);

  // First invocation: full boot (counts as a fallback — no template yet),
  // then the post-reset capture freezes the template.
  asbase::Json params;
  params.Set("mode", "plain");
  auto first = visor.Invoke(wf, params);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->clone_start);
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_fallback_boots_total", wf),
            fallbacks0 + 1);
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_creates_total", wf),
            creates0 + 1);

  // Two concurrent invocations: one leases the parked WFD (warm), the
  // other misses and must clone-boot from the template. The rendezvous
  // keeps both in flight simultaneously so the miss is deterministic.
  std::atomic<int> gate{0};
  asbase::Json block_params;
  block_params.Set("mode", "block");
  block_params.Set("gate", static_cast<int64_t>(
                               reinterpret_cast<uintptr_t>(&gate)));
  asbase::Result<InvokeResult> r1 = asbase::Unavailable("unset");
  asbase::Result<InvokeResult> r2 = asbase::Unavailable("unset");
  std::thread t1([&] { r1 = visor.Invoke(wf, block_params); });
  std::thread t2([&] { r2 = visor.Invoke(wf, block_params); });
  t1.join();
  t2.join();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((r1->clone_start ? 1 : 0) + (r2->clone_start ? 1 : 0), 1)
      << "exactly one of the concurrent invocations should clone-boot";
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_clones_total", wf),
            clones0 + 1);
  const InvokeResult& cloned = r1->clone_start ? *r1 : *r2;
  EXPECT_EQ(cloned.run.result, "ok");
  EXPECT_EQ(cloned.module_load_nanos, 0)
      << "clone boot must not pay module loads";

  // Re-registration drops the template (counted) and the next miss falls
  // back to a full boot, then re-captures.
  visor.RegisterWorkflow(spec, options);
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_invalidations_total", wf),
            invalidations0 + 1);
  auto after = visor.Invoke(wf, params);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->clone_start);
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_clones_total", wf),
            clones0 + 1)
      << "an invalidated template must not serve clones";
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_fallback_boots_total", wf),
            fallbacks0 + 2);
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_creates_total", wf),
            creates0 + 2);
}

TEST(VisorSnapshotTest, EnvKnobDisablesCapture) {
  setenv("ALLOY_SNAPSHOT", "off", 1);
  FunctionRegistry::Global().Register(
      "snap.noop", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  const std::string wf = "snapoffwf";
  const uint64_t creates0 =
      CounterValue("alloy_visor_snapshot_creates_total", wf);
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = wf;
  spec.stages.push_back(StageSpec{{FunctionSpec{"snap.noop", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 1;
  visor.RegisterWorkflow(spec, options);
  auto result = visor.Invoke(wf, asbase::Json{});
  unsetenv("ALLOY_SNAPSHOT");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_creates_total", wf), creates0)
      << "ALLOY_SNAPSHOT=off must disable capture";
}

TEST(VisorSnapshotTest, PoolLessWorkflowStillCapturesAndClones) {
  // pool_size == 0 cold-starts every invocation — the configuration with
  // the most to gain from snapshot-fork. The first invoke must still
  // capture (on the destroy path, not the park path), and every later
  // invoke must clone-boot.
  FunctionRegistry::Global().Register(
      "snap.poolless", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  const std::string wf = "snapnopool";
  const uint64_t creates0 =
      CounterValue("alloy_visor_snapshot_creates_total", wf);
  const uint64_t clones0 =
      CounterValue("alloy_visor_snapshot_clones_total", wf);
  AsVisor visor;
  WorkflowSpec spec;
  spec.name = wf;
  spec.stages.push_back(StageSpec{{FunctionSpec{"snap.poolless", 1}}});
  AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.pool_size = 0;
  visor.RegisterWorkflow(spec, options);

  auto first = visor.Invoke(wf, asbase::Json{});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->clone_start);
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_creates_total", wf),
            creates0 + 1);

  for (int i = 0; i < 3; ++i) {
    auto later = visor.Invoke(wf, asbase::Json{});
    ASSERT_TRUE(later.ok()) << later.status().ToString();
    EXPECT_TRUE(later->clone_start) << "pool-less invoke " << i;
  }
  EXPECT_EQ(CounterValue("alloy_visor_snapshot_clones_total", wf),
            clones0 + 3);
}

// ----------------------------------------------------------- cell races

TEST(SnapshotCellTest, ConcurrentCloneWhileSnapshotting) {
  // Hammer the cell from readers (clone path), an invalidator
  // (re-registration / reset failure), and capture attempts — the shape of
  // the clone-while-snapshotting race, run under TSan in CI.
  SnapshotCell cell;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_seen{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        if (auto snap = cell.Get()) {
          // A published snapshot must be fully formed.
          snapshots_seen.fetch_add(snap->heap_bytes == (8u << 20) ? 1 : 0);
        }
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop.load()) {
      cell.Invalidate();
      std::this_thread::yield();
    }
  });
  std::thread capturer([&] {
    while (!stop.load()) {
      if (cell.TryBeginCapture()) {
        auto snapshot = std::make_shared<WfdSnapshot>();
        snapshot->heap_bytes = 8u << 20;
        cell.EndCapture(std::move(snapshot));
      }
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  invalidator.join();
  capturer.join();
  EXPECT_GT(snapshots_seen.load(), 0u);
}

}  // namespace
}  // namespace alloy
