// Unit + property tests for the as_common substrate.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/queue.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace asbase {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such slot 'Conference'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such slot 'Conference'");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<ErrorCode> codes = {
      InvalidArgument("").code(),    NotFound("").code(),
      AlreadyExists("").code(),      PermissionDenied("").code(),
      ResourceExhausted("").code(),  FailedPrecondition("").code(),
      OutOfRange("").code(),         Unimplemented("").code(),
      Unavailable("").code(),        DataLoss("").code(),
      Internal("").code(),
  };
  EXPECT_EQ(codes.size(), 11u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = OutOfRange("past eof");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> QuarterOf(int x) {
  AS_ASSIGN_OR_RETURN(int half, HalfOf(x));
  AS_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_EQ(QuarterOf(6).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(QuarterOf(7).status().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Json

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->as_bool(), true);
  EXPECT_EQ(Json::Parse("false")->as_bool(true), false);
  EXPECT_EQ(Json::Parse("42")->as_int(), 42);
  EXPECT_EQ(Json::Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("3.5")->as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, ParsesNested) {
  auto doc = Json::Parse(R"({
    "name": "ParallelSorting",
    "functions": [
      {"name": "split", "instances": 3},
      {"name": "merge", "instances": 1}
    ],
    "input_bytes": 1048576
  })");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["name"].as_string(), "ParallelSorting");
  EXPECT_EQ((*doc)["functions"][0]["instances"].as_int(), 3);
  EXPECT_EQ((*doc)["functions"][1]["name"].as_string(), "merge");
  EXPECT_EQ((*doc)["input_bytes"].as_int(), 1048576);
  EXPECT_TRUE((*doc)["missing"]["chain"].is_null());
  EXPECT_EQ((*doc)["missing"].as_int(9), 9);
}

TEST(JsonTest, StringEscapes) {
  auto doc = Json::Parse(R"("a\"b\\c\ndAe")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "a\"b\\c\ndAe");
}

TEST(JsonTest, UnicodeEscapeToUtf8) {
  auto doc = Json::Parse(R"("é中")");  // é, 中
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{'a':1}").ok());
  EXPECT_FALSE(Json::Parse("-").ok());
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, BuilderAndDump) {
  Json doc;
  doc.Set("workflow", "pipe");
  doc.Set("stages", Json(JsonArray{Json("a"), Json("b")}));
  doc.Set("bytes", static_cast<int64_t>(4096));
  EXPECT_EQ(doc.Dump(), R"({"bytes":4096,"stages":["a","b"],"workflow":"pipe"})");
}

// Property: Parse(Dump(doc)) == doc for randomly generated documents.
Json RandomJson(Rng& rng, int depth) {
  int pick = depth >= 4 ? static_cast<int>(rng.Below(4))
                        : static_cast<int>(rng.Below(6));
  switch (pick) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng.OneIn(2));
    case 2:
      return Json(static_cast<int64_t>(rng.Next() >> 8) *
                  (rng.OneIn(2) ? 1 : -1));
    case 3:
      return Json(rng.Word(0, 12) + (rng.OneIn(3) ? "\"\\\n\t" : ""));
    case 4: {
      JsonArray array;
      size_t n = rng.Below(5);
      for (size_t i = 0; i < n; ++i) {
        array.push_back(RandomJson(rng, depth + 1));
      }
      return Json(std::move(array));
    }
    default: {
      JsonObject object;
      size_t n = rng.Below(5);
      for (size_t i = 0; i < n; ++i) {
        object[rng.Word(1, 8)] = RandomJson(rng, depth + 1);
      }
      return Json(std::move(object));
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripTest, DumpThenParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Json doc = RandomJson(rng, 0);
    for (int indent : {0, 2}) {
      auto reparsed = Json::Parse(doc.Dump(indent));
      ASSERT_TRUE(reparsed.ok()) << doc.Dump(indent);
      EXPECT_TRUE(*reparsed == doc) << doc.Dump(indent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, PercentilesExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i * 10);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.Percentile(0.5), 500);
  EXPECT_EQ(h.Percentile(0.99), 990);
  EXPECT_EQ(h.Percentile(1.0), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 505.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Record(1);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 3);
}

TEST(HistogramTest, FormatNanosUnits) {
  EXPECT_EQ(FormatNanos(999), "999ns");
  EXPECT_EQ(FormatNanos(1'300'000), "1.30ms");
  EXPECT_EQ(FormatNanos(2'500'000'000), "2.50s");
}

TEST(HistogramTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(4096), "4KB");
  EXPECT_EQ(FormatBytes(16ull * 1024 * 1024), "16MB");
}

// ---------------------------------------------------------------- Clock

TEST(ClockTest, MonoNanosIsMonotonic) {
  int64_t a = MonoNanos();
  int64_t b = MonoNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SpinForWaitsApproximately) {
  int64_t start = MonoNanos();
  SpinFor(2'000'000);  // 2 ms
  EXPECT_GE(MonoNanos() - start, 2'000'000);
}

TEST(ClockTest, ScopedTimerAccumulates) {
  int64_t total = 0;
  {
    ScopedTimer timer(&total);
    SpinFor(1'000'000);
  }
  EXPECT_GE(total, 1'000'000);
}

// ---------------------------------------------------------------- Queue

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(5);
  q.Close();
  EXPECT_FALSE(q.Push(6));
  EXPECT_EQ(*q.Pop(), 5);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedTryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, PopWithTimeoutExpires) {
  BlockingQueue<int> q;
  auto start = MonoNanos();
  EXPECT_FALSE(q.PopWithTimeout(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(MonoNanos() - start, 15'000'000);
}

TEST(BlockingQueueTest, CrossThreadHandoff) {
  BlockingQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      q.Push(i);
    }
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 1000);
  producer.join();
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DrainIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&] { count.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, PinToCpusAppliesToCurrentAndFutureWorkers) {
  ThreadPool pool(2);
  // CPU 0 always exists; the pin may still fail in restricted sandboxes, so
  // assert the invariant instead of the syscall: either every worker pinned
  // and the cpuset is remembered for future workers, or the pool fell back
  // to no affinity. Never half-pinned.
  const size_t pinned = pool.PinToCpus({0});
  if (pinned == 2) {
    EXPECT_EQ(pool.pinned_cpus(), std::vector<int>{0});
    pool.EnsureAtLeast(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    EXPECT_EQ(pool.pinned_cpus(), std::vector<int>{0});
  } else {
    EXPECT_EQ(pinned, 0u);
    EXPECT_TRUE(pool.pinned_cpus().empty());
  }
  // The pool still works while pinned.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, PinToCpusInvalidSetFallsBackToNoAffinity) {
  ThreadPool pool(2);
  // No valid CPU in the set (out of range for any machine): the pool must
  // not half-apply — it reports zero pinned and clears the remembered set.
  EXPECT_EQ(pool.PinToCpus({1 << 20}), 0u);
  EXPECT_TRUE(pool.pinned_cpus().empty());
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(count.load(), 1);
}

// ---------------------------------------------------------------- SimCostModel

TEST(SimCostModelTest, ScalingApplies) {
  SimCostModel model;
  model.scale = 0.5;
  EXPECT_EQ(model.Scaled(1000), 500);
  model.scale = 1.0;
  EXPECT_EQ(model.Scaled(1000), 1000);
}

}  // namespace
}  // namespace asbase
