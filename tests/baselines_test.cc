// Baseline-system tests: mini-redis, boot profiles, Fig 3 transports, and —
// most importantly — result equivalence: every comparison runtime must
// compute the same workflow answers AlloyStack does.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

#include "src/baselines/faasm.h"
#include "src/common/clock.h"
#include "src/baselines/kvstore.h"
#include "src/baselines/runtimes.h"
#include "src/baselines/sim_profiles.h"
#include "src/baselines/transports.h"
#include "src/workloads/generic_apps.h"
#include "src/workloads/inputs.h"

namespace asbl {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// Scale every modeled latency down hard so the suite stays fast; restore
// afterwards.
class ScaleGuard {
 public:
  explicit ScaleGuard(double scale) {
    saved_ = asbase::SimCostModel::Global().scale;
    asbase::SimCostModel::Global().scale = scale;
  }
  ~ScaleGuard() { asbase::SimCostModel::Global().scale = saved_; }

 private:
  double saved_;
};

void WriteHostFile(const std::string& path, const std::vector<uint8_t>& data) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0) << path;
  ASSERT_EQ(::write(fd, data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ::close(fd);
}

// ------------------------------------------------------------------- kv

TEST(KvStoreTest, SetGetDelTake) {
  KvServer server;
  ASSERT_TRUE(server.Start().ok());
  auto client = KvClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE((*client)->Set("k", Bytes("value-1")).ok());
  auto got = (*client)->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "value-1");

  EXPECT_EQ((*client)->Get("missing").status().code(),
            asbase::ErrorCode::kNotFound);

  auto taken = (*client)->Take("k");
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ((*client)->Get("k").status().code(),
            asbase::ErrorCode::kNotFound);

  ASSERT_TRUE((*client)->Set("d", Bytes("x")).ok());
  EXPECT_TRUE((*client)->Del("d").ok());
  EXPECT_FALSE((*client)->Del("d").ok());
  EXPECT_EQ(server.keys(), 0u);
}

TEST(KvStoreTest, LargeValuesAndManyClients) {
  KvServer server;
  ASSERT_TRUE(server.Start().ok());
  auto payload = aswl::MakePayload(2 * 1024 * 1024, 3);
  auto writer = KvClient::Connect(server.port());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Set("big", payload).ok());

  std::vector<std::thread> readers;
  std::atomic<int> matches{0};
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      auto client = KvClient::Connect(server.port());
      if (!client.ok()) {
        return;
      }
      auto got = (*client)->Get("big");
      if (got.ok() && *got == payload) {
        matches.fetch_add(1);
      }
    });
  }
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(matches.load(), 4);
}

TEST(KvStoreTest, WaitGetBlocksUntilProducer) {
  KvServer server;
  ASSERT_TRUE(server.Start().ok());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto client = KvClient::Connect(server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Set("late", Bytes("v")).ok());
  });
  auto client = KvClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto got = (*client)->WaitGet("late", std::chrono::seconds(5));
  EXPECT_TRUE(got.ok());
  producer.join();
}

// ------------------------------------------------------------- profiles

TEST(BootProfileTest, ProfilesRunAndScale) {
  ScaleGuard guard(0.01);
  for (const auto& profile :
       {FirecrackerMicroVmProfile(), KataContainerProfile(), VirtinesProfile(),
        UnikraftProfile(), GvisorProfile(), ContainerProfile(),
        WasmerProcessProfile(100'000), WasmerThreadProfile(100'000)}) {
    const int64_t nanos = SimulateBoot(profile);
    EXPECT_GT(nanos, 0) << profile.name;
  }
}

TEST(BootProfileTest, RelativeOrderMatchesLiterature) {
  ScaleGuard guard(0.3);
  // Kata > Firecracker > Virtines and Unikraft > Virtines: the Fig 2/10
  // ordering of the modeled components. Medians of three runs keep the
  // (real) per-stage work's scheduling noise out of the comparison.
  auto median_boot = [](const BootProfile& profile) {
    std::vector<int64_t> samples;
    for (int i = 0; i < 3; ++i) {
      samples.push_back(SimulateBoot(profile));
    }
    std::sort(samples.begin(), samples.end());
    return samples[1];
  };
  const int64_t kata = median_boot(KataContainerProfile());
  const int64_t firecracker = median_boot(FirecrackerMicroVmProfile());
  const int64_t virtines = median_boot(VirtinesProfile());
  const int64_t unikraft = median_boot(UnikraftProfile());
  EXPECT_GT(kata, firecracker);
  EXPECT_GT(firecracker, virtines);
  EXPECT_GT(unikraft, virtines);
}

// ------------------------------------------------------------ transports

class TransportTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(TransportTest, TransfersCompleteAndTakeTime) {
  ScaleGuard guard(0.05);
  auto nanos = MeasureTransfer(GetParam(), 64 * 1024);
  ASSERT_TRUE(nanos.ok()) << nanos.status().ToString();
  EXPECT_GT(*nanos, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, TransportTest,
    ::testing::Values(TransportKind::kFunctionCall,
                      TransportKind::kSharedMemory,
                      TransportKind::kInterProcessTcp,
                      TransportKind::kInterVmTcp, TransportKind::kPipeIpc,
                      TransportKind::kRedis),
    [](const auto& info) {
      std::string name = TransportKindName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(TransportTest, FunctionCallIsFastestPrimitive) {
  // The §2.3 motivation: address-space sharing beats every kernel-mediated
  // primitive by a wide margin.
  ScaleGuard guard(0.05);
  const size_t bytes = 256 * 1024;
  auto function_call = MeasureTransfer(TransportKind::kFunctionCall, bytes);
  auto tcp = MeasureTransfer(TransportKind::kInterProcessTcp, bytes);
  auto redis = MeasureTransfer(TransportKind::kRedis, bytes);
  ASSERT_TRUE(function_call.ok());
  ASSERT_TRUE(tcp.ok());
  ASSERT_TRUE(redis.ok());
  EXPECT_LT(*function_call, *tcp);
  EXPECT_LT(*function_call, *redis);
}

// ------------------------------------------------- runtime result parity

class BaselineParityTest : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineParityTest, WordCountMatchesReference) {
  ScaleGuard guard(0.002);
  const std::string dir = ::testing::TempDir();
  auto corpus = aswl::MakeTextCorpus(120'000, 31);
  WriteHostFile(dir + "/wc-input.bin", corpus);

  BaselineRuntime::Options options;
  options.kind = GetParam();
  options.input_dir = dir;
  BaselineRuntime runtime(options);

  asbase::Json params;
  params.Set("input", "wc-input.bin");
  auto stats = runtime.Run(aswl::WordCountWorkflow(3), params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, aswl::ExpectedWordCountResult(corpus))
      << BaselineKindName(GetParam());
  EXPECT_GT(stats->end_to_end_nanos, 0);
}

TEST_P(BaselineParityTest, ChainMatchesReference) {
  ScaleGuard guard(0.002);
  BaselineRuntime::Options options;
  options.kind = GetParam();
  options.input_dir = ::testing::TempDir();
  BaselineRuntime runtime(options);

  asbase::Json params;
  params.Set("bytes", 40'000);
  params.Set("seed", 12);
  auto stats = runtime.Run(aswl::FunctionChainWorkflow(5), params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, aswl::ExpectedChainResult(40'000, 12, 5))
      << BaselineKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BaselineParityTest,
    ::testing::Values(BaselineKind::kFaastlane, BaselineKind::kFaastlaneRefer,
                      BaselineKind::kFaastlaneKata,
                      BaselineKind::kFaastlaneReferKata,
                      BaselineKind::kOpenFaas, BaselineKind::kOpenFaasGvisor),
    [](const auto& info) {
      std::string name = BaselineKindName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(BaselineRuntimeTest, SortingParityOnFaastlane) {
  ScaleGuard guard(0.002);
  const std::string dir = ::testing::TempDir();
  auto input = aswl::MakeIntegerInput(100'000, 37);
  WriteHostFile(dir + "/ps-input.bin", input);

  for (BaselineKind kind :
       {BaselineKind::kFaastlane, BaselineKind::kOpenFaas}) {
    BaselineRuntime::Options options;
    options.kind = kind;
    options.input_dir = dir;
    BaselineRuntime runtime(options);
    asbase::Json params;
    params.Set("input", "ps-input.bin");
    auto stats = runtime.Run(aswl::ParallelSortingWorkflow(3), params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->result, aswl::ExpectedSortingResult(input))
        << BaselineKindName(kind);
  }
}

TEST(BaselineRuntimeTest, RamInputsServeFig16Mode) {
  ScaleGuard guard(0.002);
  auto input = aswl::MakeIntegerInput(50'000, 41);
  BaselineRuntime::Options options;
  options.kind = BaselineKind::kFaastlaneReferKata;
  options.ramfs_inputs = true;
  BaselineRuntime runtime(options);
  runtime.AddRamInput("mem-input.bin", input);
  asbase::Json params;
  params.Set("input", "mem-input.bin");
  auto stats = runtime.Run(aswl::ParallelSortingWorkflow(3), params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, aswl::ExpectedSortingResult(input));
}

// --------------------------------------------------------------- Faasm

TEST(FaasmTest, VmWorkflowsMatchReference) {
  ScaleGuard guard(0.002);
  const std::string dir = ::testing::TempDir();

  FaasmRuntime::Options options;
  options.input_dir = dir;
  FaasmRuntime runtime(options);

  {  // pipe
    auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kPipe, 1);
    ASSERT_TRUE(workflow.ok()) << workflow.status().ToString();
    asbase::Json params;
    params.Set("bytes", 20'480);
    params.Set("seed", 2);
    auto stats = runtime.Run(*workflow, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->result, aswl::ExpectedVmPipeResult(20'480, 2));
  }
  {  // wordcount
    auto corpus = aswl::MakeTextCorpus(50'000, 43);
    WriteHostFile(dir + "/faasm-wc.bin", corpus);
    auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kWordCount, 3);
    ASSERT_TRUE(workflow.ok());
    asbase::Json params;
    params.Set("input", "faasm-wc.bin");
    params.Set("n", 3);
    auto stats = runtime.Run(*workflow, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->result, aswl::ExpectedVmWordCountResult(corpus));
  }
  {  // sorting
    auto input = aswl::MakeIntegerInput(40'000, 47);
    WriteHostFile(dir + "/faasm-ps.bin", input);
    auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kSorting, 3);
    ASSERT_TRUE(workflow.ok());
    asbase::Json params;
    params.Set("input", "faasm-ps.bin");
    params.Set("n", 3);
    auto stats = runtime.Run(*workflow, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->result, aswl::ExpectedVmSortingResult(input));
  }
  {  // chain
    auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kChain, 5);
    ASSERT_TRUE(workflow.ok());
    asbase::Json params;
    params.Set("bytes", 15'000);
    params.Set("seed", 5);
    params.Set("chain_length", 5);
    auto stats = runtime.Run(*workflow, params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->result, aswl::ExpectedVmChainResult(15'000, 5, 5));
  }
}

TEST(FaasmTest, PythonModeMatchesReference) {
  ScaleGuard guard(0.002);
  const std::string dir = ::testing::TempDir();
  // Provide a small stdlib stand-in for the python init path.
  WriteHostFile(dir + "/python_stdlib.img", aswl::MakePayload(64 * 1024, 1));

  FaasmRuntime::Options options;
  options.input_dir = dir;
  options.python = true;
  FaasmRuntime runtime(options);

  auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kPipe, 1);
  ASSERT_TRUE(workflow.ok());
  asbase::Json params;
  params.Set("bytes", 4'096);
  params.Set("seed", 7);
  auto stats = runtime.Run(*workflow, params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, aswl::ExpectedVmPipeResult(4'096, 7));
}

}  // namespace
}  // namespace asbl
