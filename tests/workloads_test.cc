// Workload tests: input generators, the generic applications on AlloyStack
// (reference passing and the file-based ablation), and the VM (C/Python
// path) applications on AlloyStack — each verified against independently
// computed reference results.

#include <gtest/gtest.h>

#include "src/core/asstd/wasi.h"
#include "src/core/visor/visor.h"
#include "src/workloads/alloystack_env.h"
#include "src/workloads/generic_apps.h"
#include "src/workloads/inputs.h"
#include "src/workloads/vm_apps.h"

namespace aswl {
namespace {

alloy::WfdOptions TestWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 32u << 20;
  options.disk_blocks = 32 * 1024;  // 16 MiB
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

// Runs a generic workflow on AlloyStack with the given input file content.
asbase::Result<alloy::RunStats> RunOnAlloyStack(
    const GenericWorkflow& workflow, const asbase::Json& params,
    const std::vector<uint8_t>& input, alloy::WfdOptions options = TestWfd()) {
  alloy::WorkflowSpec spec = RegisterAlloyStackWorkflow(workflow);
  AS_ASSIGN_OR_RETURN(std::unique_ptr<alloy::Wfd> wfd,
                      alloy::Wfd::Create(options));
  if (!input.empty()) {
    alloy::AsStd as(wfd.get());
    AS_RETURN_IF_ERROR(as.WriteWholeFile("/input.bin", input));
  }
  alloy::Orchestrator orchestrator(wfd.get());
  return orchestrator.Run(spec, params);
}

// ---------------------------------------------------------------- inputs

TEST(InputsTest, GeneratorsAreDeterministic) {
  EXPECT_EQ(MakeTextCorpus(1000, 7), MakeTextCorpus(1000, 7));
  EXPECT_NE(MakeTextCorpus(1000, 7), MakeTextCorpus(1000, 8));
  EXPECT_EQ(MakeIntegerInput(1000, 7), MakeIntegerInput(1000, 7));
  EXPECT_EQ(MakePayload(1000, 7), MakePayload(1000, 7));
  EXPECT_EQ(MakeTextCorpus(1000, 7).size(), 1000u);
  EXPECT_EQ(MakeIntegerInput(1001, 7).size(), 1000u);  // whole uint32s
}

TEST(InputsTest, CorpusLooksLikeText) {
  auto corpus = MakeTextCorpus(5000, 1);
  size_t separators = 0;
  for (uint8_t c : corpus) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ' || c == '\n') << (int)c;
    if (c == ' ' || c == '\n') {
      ++separators;
    }
  }
  EXPECT_GT(separators, 300u);
}

// ----------------------------------------------------- native on AlloyStack

TEST(AlloyWorkloadTest, PipeMatchesReference) {
  asbase::Json params;
  params.Set("bytes", 100'000);
  params.Set("seed", 5);
  auto stats = RunOnAlloyStack(PipeWorkflow(), params, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedPipeResult(100'000, 5));
}

class AlloyWcTest : public ::testing::TestWithParam<int> {};

TEST_P(AlloyWcTest, WordCountMatchesReference) {
  const int instances = GetParam();
  auto corpus = MakeTextCorpus(200'000, 11);
  asbase::Json params;
  params.Set("input", "/input.bin");
  auto stats = RunOnAlloyStack(WordCountWorkflow(instances), params, corpus);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedWordCountResult(corpus)) << instances;
}

INSTANTIATE_TEST_SUITE_P(Widths, AlloyWcTest, ::testing::Values(1, 2, 3, 5));

class AlloySortTest : public ::testing::TestWithParam<int> {};

TEST_P(AlloySortTest, ParallelSortingMatchesReference) {
  const int instances = GetParam();
  auto input = MakeIntegerInput(200'000, 13);
  asbase::Json params;
  params.Set("input", "/input.bin");
  auto stats =
      RunOnAlloyStack(ParallelSortingWorkflow(instances), params, input);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedSortingResult(input)) << instances;
}

INSTANTIATE_TEST_SUITE_P(Widths, AlloySortTest, ::testing::Values(1, 3, 5));

class AlloyChainTest : public ::testing::TestWithParam<int> {};

TEST_P(AlloyChainTest, FunctionChainMatchesReference) {
  const int length = GetParam();
  asbase::Json params;
  params.Set("bytes", 50'000);
  params.Set("seed", 3);
  auto stats = RunOnAlloyStack(FunctionChainWorkflow(length), params, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedChainResult(50'000, 3, length)) << length;
}

INSTANTIATE_TEST_SUITE_P(Lengths, AlloyChainTest,
                         ::testing::Values(2, 5, 10, 15));

TEST(AlloyWorkloadTest, FileTransferAblationMatchesReference) {
  // reference_passing = false routes intermediate data through fatfs files
  // (Fig 14 "base"); results must still be identical.
  alloy::WfdOptions options = TestWfd();
  options.reference_passing = false;
  auto corpus = MakeTextCorpus(100'000, 21);
  asbase::Json params;
  params.Set("input", "/input.bin");
  auto stats =
      RunOnAlloyStack(WordCountWorkflow(3), params, corpus, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedWordCountResult(corpus));
}

TEST(AlloyWorkloadTest, IfiModeMatchesReference) {
  alloy::WfdOptions options = TestWfd();
  options.inter_function_isolation = true;
  asbase::Json params;
  params.Set("bytes", 65536);
  params.Set("seed", 9);
  auto stats = RunOnAlloyStack(PipeWorkflow(), params, {}, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedPipeResult(65536, 9));
}

TEST(AlloyWorkloadTest, RamfsVariantMatchesReference) {
  alloy::WfdOptions options = TestWfd();
  options.use_ramfs = true;
  auto input = MakeIntegerInput(100'000, 17);
  asbase::Json params;
  params.Set("input", "/input.bin");
  auto stats =
      RunOnAlloyStack(ParallelSortingWorkflow(3), params, input, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedSortingResult(input));
}

// -------------------------------------------------------- VM on AlloyStack

asbase::Result<alloy::RunStats> RunVmOnAlloyStack(
    VmApp app, int width, const asbase::Json& params,
    const std::vector<uint8_t>& input, bool python = false) {
  AS_ASSIGN_OR_RETURN(VmWorkflowSpec vm_spec, BuildVmWorkflow(app, width));
  alloy::WorkflowSpec spec = RegisterAlloyVmWorkflow(vm_spec, python);
  AS_ASSIGN_OR_RETURN(std::unique_ptr<alloy::Wfd> wfd,
                      alloy::Wfd::Create(TestWfd()));
  alloy::AsStd as(wfd.get());
  if (!input.empty()) {
    AS_RETURN_IF_ERROR(as.WriteWholeFile("/input.bin", input));
  }
  if (python) {
    AS_RETURN_IF_ERROR(alloy::EnsurePythonStdlib(as));
  }
  alloy::Orchestrator orchestrator(wfd.get());
  return orchestrator.Run(spec, params);
}

TEST(VmWorkloadTest, PipeMatchesReference) {
  asbase::Json params;
  params.Set("bytes", 30'016);
  params.Set("seed", 6);
  auto stats = RunVmOnAlloyStack(VmApp::kPipe, 1, params, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedVmPipeResult(30'016, 6));
}

TEST(VmWorkloadTest, WordCountMatchesReference) {
  auto corpus = MakeTextCorpus(60'000, 23);
  asbase::Json params;
  params.Set("input", "/input.bin");
  params.Set("n", 3);
  auto stats = RunVmOnAlloyStack(VmApp::kWordCount, 3, params, corpus);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedVmWordCountResult(corpus));
}

TEST(VmWorkloadTest, SortingMatchesReference) {
  auto input = MakeIntegerInput(40'000, 29);
  asbase::Json params;
  params.Set("input", "/input.bin");
  params.Set("n", 3);
  auto stats = RunVmOnAlloyStack(VmApp::kSorting, 3, params, input);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedVmSortingResult(input));
}

TEST(VmWorkloadTest, ChainMatchesReference) {
  asbase::Json params;
  params.Set("bytes", 20'000);
  params.Set("seed", 4);
  params.Set("chain_length", 5);
  auto stats = RunVmOnAlloyStack(VmApp::kChain, 5, params, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedVmChainResult(20'000, 4, 5));
}

TEST(VmWorkloadTest, PythonModeMatchesReference) {
  asbase::Json params;
  params.Set("bytes", 4'096);
  params.Set("seed", 8);
  auto stats = RunVmOnAlloyStack(VmApp::kPipe, 1, params, {}, /*python=*/true);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result, ExpectedVmPipeResult(4'096, 8));
}

}  // namespace
}  // namespace aswl
