// Tests for asobs: metrics registry + Prometheus exposition, trace spans +
// Chrome JSON export, and the visor-level wiring (root invoke span with
// module_load children on cold start, none under load_all; /metrics and
// /trace served by the watchdog).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/asstd/asstd.h"
#include "src/core/visor/visor.h"
#include "src/core/visor/wfd_pool.h"
#include "src/http/http.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

using asobs::Labels;
using asobs::MetricType;
using asobs::Registry;
using asobs::Trace;

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, CounterReferencesAreStable) {
  Registry registry;
  asobs::Counter& a = registry.GetCounter("alloy_test_total", {{"k", "v"}});
  asobs::Counter& b = registry.GetCounter("alloy_test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b) << "same name+labels must return the same series";
  asobs::Counter& other = registry.GetCounter("alloy_test_total", {{"k", "w"}});
  EXPECT_NE(&a, &other);

  a.Add();
  b.Add(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Registry registry;
  asobs::Gauge& gauge = registry.GetGauge("alloy_test_gauge");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
}

TEST(MetricsTest, PrometheusExpositionGolden) {
  Registry registry;
  registry.GetCounter("alloy_test_requests_total", {{"method", "get"}}).Add(3);
  registry.GetCounter("alloy_test_requests_total", {{"method", "put"}}).Add(1);
  registry.GetGauge("alloy_test_live_wfds").Set(2);
  // Four identical samples make every quantile and the sum exact.
  asobs::LatencyHistogram& hist =
      registry.GetHistogram("alloy_test_latency_nanos");
  for (int i = 0; i < 4; ++i) {
    hist.Record(500);
  }

  const std::string text = registry.RenderPrometheus();
  const std::string expected_counter_block =
      "# TYPE alloy_test_requests_total counter\n"
      "alloy_test_requests_total{method=\"get\"} 3\n"
      "alloy_test_requests_total{method=\"put\"} 1\n";
  const std::string expected_gauge_block =
      "# TYPE alloy_test_live_wfds gauge\n"
      "alloy_test_live_wfds 2\n";
  const std::string expected_summary_block =
      "# TYPE alloy_test_latency_nanos summary\n"
      "alloy_test_latency_nanos_count 4\n"
      "alloy_test_latency_nanos_sum 2000\n"
      "alloy_test_latency_nanos{quantile=\"0.5\"} 500\n"
      "alloy_test_latency_nanos{quantile=\"0.99\"} 500\n"
      "alloy_test_latency_nanos{quantile=\"0.999\"} 500\n";
  EXPECT_NE(text.find(expected_counter_block), std::string::npos) << text;
  EXPECT_NE(text.find(expected_gauge_block), std::string::npos) << text;
  EXPECT_NE(text.find(expected_summary_block), std::string::npos) << text;

  // Families render sorted, and the standard schema shows even at zero.
  const size_t fs_pos = text.find("# TYPE alloy_fs_read_bytes_total counter");
  const size_t visor_pos =
      text.find("# TYPE alloy_visor_invocations_total counter");
  ASSERT_NE(fs_pos, std::string::npos) << text;
  ASSERT_NE(visor_pos, std::string::npos) << text;
  EXPECT_LT(fs_pos, visor_pos);
}

TEST(MetricsTest, LabelValuesAreEscaped) {
  EXPECT_EQ(asobs::SerializeLabels({{"path", "a\"b\\c\nd"}}),
            "{path=\"a\\\"b\\\\c\\nd\"}");
  EXPECT_EQ(asobs::SerializeLabels({}), "");
}

TEST(MetricsTest, CollectorSamplesMergeIntoExposition) {
  Registry registry;
  registry.RegisterCollector([](asobs::MetricEmitter& emitter) {
    emitter.Emit("alloy_test_collected_total", MetricType::kCounter,
                 {{"source", "collector"}}, 42);
  });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE alloy_test_collected_total counter\n"
                      "alloy_test_collected_total{source=\"collector\"} 42\n"),
            std::string::npos)
      << text;
}

TEST(MetricsTest, ResetZeroesInPlaceKeepingReferences) {
  Registry registry;
  asobs::Counter& counter = registry.GetCounter("alloy_test_total");
  counter.Add(9);
  registry.GetHistogram("alloy_test_latency_nanos").Record(100);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(registry.GetHistogram("alloy_test_latency_nanos")
                .Snapshot()
                .count(),
            0u);
  counter.Add(2);  // the cached reference must stay valid
  EXPECT_EQ(registry.GetCounter("alloy_test_total").value(), 2u);
}

TEST(MetricsTest, HistogramWindowBoundsMemory) {
  asobs::LatencyHistogram hist(/*window=*/8);
  for (int i = 0; i < 100; ++i) {
    hist.Record(i);
  }
  // Two epochs of at most `window` samples each.
  EXPECT_LE(hist.Snapshot().count(), 16u);
  EXPECT_GE(hist.Snapshot().count(), 4u);
}

// ------------------------------------------------------------------- spans

TEST(TraceTest, SpanNestingAndParenting) {
  Trace trace("wf");
  asobs::Span root = trace.StartSpan("invoke", "visor");
  asobs::Span child = trace.StartSpan("stage:0", "orchestrator", root.id());
  asobs::Span grandchild =
      trace.StartSpan("fn#0", "function", child.id());
  grandchild.End();
  child.End();
  root.End();
  root.End();  // idempotent

  const std::vector<asobs::SpanRecord> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans record in end order: innermost first.
  EXPECT_EQ(spans[0].name, "fn#0");
  EXPECT_EQ(spans[2].name, "invoke");
  EXPECT_EQ(spans[2].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  EXPECT_EQ(spans[0].parent, spans[1].id);

  std::set<uint32_t> ids;
  for (const auto& span : spans) {
    EXPECT_TRUE(ids.insert(span.id).second) << "span ids must be unique";
    EXPECT_GE(span.duration_nanos, 0);
    EXPECT_NE(span.thread_id, 0u);
  }
}

TEST(TraceTest, MovedSpanEndsOnce) {
  Trace trace("wf");
  {
    asobs::Span outer;
    {
      asobs::Span inner = trace.StartSpan("moved", "test");
      inner.SetArg("k", "v");
      outer = std::move(inner);
    }  // destroying the moved-from span must not record
  }
  const auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "moved");
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "k");
}

TEST(TraceTest, ChromeJsonParsesBack) {
  Trace trace("parse-back");
  asobs::Span root = trace.StartSpan("invoke", "visor");
  root.SetArg("workflow", "parse-back");
  asobs::Span child = trace.StartSpan("wfd_create", "visor", root.id());
  child.End();
  root.End();

  auto doc = asbase::Json::Parse(trace.ToChromeJson().Dump());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ((*doc)["displayTimeUnit"].as_string(), "ms");
  const asbase::Json& events = (*doc)["traceEvents"];
  ASSERT_TRUE(events.is_array());
  // One "M" metadata event naming the process + two "X" complete events.
  ASSERT_EQ(events.array().size(), 3u);
  EXPECT_EQ(events[size_t{0}]["ph"].as_string(), "M");
  EXPECT_EQ(events[size_t{0}]["args"]["name"].as_string(), "parse-back");

  int64_t invoke_id = -1;
  for (const asbase::Json& event : events.array()) {
    if (event["ph"].as_string() != "X") {
      continue;
    }
    EXPECT_TRUE(event["args"].contains("span_id"));
    if (event["name"].as_string() == "invoke") {
      invoke_id = event["args"]["span_id"].as_int();
      EXPECT_EQ(event["args"]["parent_id"].as_int(), 0);
      EXPECT_EQ(event["args"]["workflow"].as_string(), "parse-back");
    }
  }
  ASSERT_GT(invoke_id, 0);
  bool found_child = false;
  for (const asbase::Json& event : events.array()) {
    if (event["ph"].as_string() == "X" &&
        event["args"]["parent_id"].as_int() == invoke_id) {
      found_child = true;
    }
  }
  EXPECT_TRUE(found_child);
}

// ------------------------------------------------------------ visor wiring

alloy::WfdOptions SmallWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

// Registers a file-writing function (forces fdtab+fatfs module loads) and a
// workflow running it once. Returns the workflow name.
std::string RegisterIoWorkflow(alloy::AsVisor& visor, const std::string& name,
                               bool on_demand) {
  alloy::FunctionRegistry::Global().Register(
      "test.obs-io", [](alloy::FunctionContext& ctx) -> asbase::Status {
        const uint8_t data[] = {'o', 'b', 's'};
        AS_RETURN_IF_ERROR(ctx.as().WriteWholeFile("/obs.txt", data));
        // Touch the mm module too so a cold run crosses two independent
        // slow-path loads (fdtab pulls the filesystem as a dependency).
        AS_ASSIGN_OR_RETURN(alloy::RawBuffer buffer,
                            ctx.as().AllocBuffer("obs-buf", 64, 1));
        buffer.bytes[0] = 1;
        AS_ASSIGN_OR_RETURN(alloy::RawBuffer acquired,
                            ctx.as().AcquireBuffer("obs-buf", 1));
        AS_RETURN_IF_ERROR(ctx.as().FreeBuffer(acquired));
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  alloy::WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(
      alloy::StageSpec{{alloy::FunctionSpec{"test.obs-io", 1}}});
  alloy::AsVisor::WorkflowOptions options;
  options.wfd = SmallWfd();
  options.wfd.on_demand = on_demand;
  visor.RegisterWorkflow(spec, options);
  return name;
}

size_t CountModuleLoadSpans(const asobs::Trace& trace, uint32_t* parent_seen) {
  size_t count = 0;
  for (const asobs::SpanRecord& span : trace.Spans()) {
    if (span.name.rfind("module_load:", 0) == 0) {
      ++count;
      if (parent_seen != nullptr) {
        *parent_seen = span.parent;
      }
    }
  }
  return count;
}

TEST(VisorObsTest, ColdInvokeHasRootSpanWithModuleLoadChild) {
  alloy::AsVisor visor;
  RegisterIoWorkflow(visor, "obs-cold", /*on_demand=*/true);

  auto result = visor.Invoke("obs-cold", asbase::Json());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);

  uint32_t root_id = 0;
  for (const asobs::SpanRecord& span : result->trace->Spans()) {
    if (span.name == "invoke") {
      EXPECT_EQ(span.parent, 0u);
      root_id = span.id;
    }
  }
  ASSERT_GT(root_id, 0u) << "every invocation records a root invoke span";

  uint32_t module_parent = 0;
  EXPECT_GE(CountModuleLoadSpans(*result->trace, &module_parent), 2u)
      << "file IO on a cold WFD loads fdtab + fatfs";
  EXPECT_EQ(module_parent, root_id)
      << "module_load spans parent under the invoke root";

  // The span summary mirrors the trace.
  EXPECT_EQ(result->span_summary["workflow"].as_string(), "obs-cold");
  EXPECT_EQ(result->span_summary["spans"].array().size(),
            result->trace->Spans().size());
}

TEST(VisorObsTest, LoadAllInvokeHasNoModuleLoadSpans) {
  alloy::AsVisor visor;
  RegisterIoWorkflow(visor, "obs-eager", /*on_demand=*/false);

  auto result = visor.Invoke("obs-eager", asbase::Json());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(CountModuleLoadSpans(*result->trace, nullptr), 0u)
      << "load_all boots modules before the run; none load inside spans";
}

TEST(VisorObsTest, InvokeBumpsGlobalCounters) {
  alloy::AsVisor visor;
  RegisterIoWorkflow(visor, "obs-counted", /*on_demand=*/true);

  asobs::Counter& invocations = asobs::Registry::Global().GetCounter(
      "alloy_visor_invocations_total", {{"workflow", "obs-counted"}});
  const uint64_t before = invocations.value();
  ASSERT_TRUE(visor.Invoke("obs-counted", asbase::Json()).ok());
  EXPECT_EQ(invocations.value(), before + 1);

  asobs::Counter& failures = asobs::Registry::Global().GetCounter(
      "alloy_visor_invocation_failures_total", {{"workflow", "obs-missing"}});
  const uint64_t failures_before = failures.value();
  EXPECT_FALSE(visor.Invoke("obs-missing", asbase::Json()).ok());
  // Unknown workflow fails before the counting path; per-workflow failures
  // only count once the workflow exists.
  EXPECT_EQ(failures.value(), failures_before);
}

TEST(VisorObsTest, WatchdogServesMetricsAndTrace) {
  alloy::AsVisor visor;
  RegisterIoWorkflow(visor, "obs-http", /*on_demand=*/true);
  ASSERT_TRUE(visor.Invoke("obs-http", asbase::Json()).ok());
  ASSERT_TRUE(visor.StartWatchdog(0).ok());

  ashttp::HttpRequest request;
  request.method = "GET";
  request.target = "/metrics";
  auto metrics = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  for (const char* name :
       {"alloy_visor_invocations_total", "alloy_libos_module_loads_total",
        "alloy_mpk_domain_switches_total", "alloy_asbuffer_bytes_total"}) {
    EXPECT_NE(metrics->body.find(name), std::string::npos)
        << name << " missing from /metrics after an invocation";
  }
  EXPECT_NE(
      metrics->body.find("alloy_visor_invocations_total{workflow=\"obs-http\"}"),
      std::string::npos)
      << metrics->body;

  request.target = "/trace?workflow=obs-http";
  auto trace_response =
      ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
  ASSERT_TRUE(trace_response.ok());
  EXPECT_EQ(trace_response->status, 200);
  auto doc = asbase::Json::Parse(trace_response->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const asbase::Json& events = (*doc)["traceEvents"];
  ASSERT_TRUE(events.is_array());

  int64_t invoke_id = -1;
  size_t children_of_invoke = 0;
  for (const asbase::Json& event : events.array()) {
    if (event["ph"].as_string() == "X" &&
        event["name"].as_string() == "invoke") {
      invoke_id = event["args"]["span_id"].as_int();
    }
  }
  ASSERT_GT(invoke_id, 0) << trace_response->body;
  for (const asbase::Json& event : events.array()) {
    if (event["ph"].as_string() == "X" &&
        event["args"]["parent_id"].as_int() == invoke_id) {
      ++children_of_invoke;
    }
  }
  EXPECT_GE(children_of_invoke, 1u)
      << "root invoke span must have at least one child";

  // Missing / unknown workflow parameters.
  request.target = "/trace";
  EXPECT_EQ(
      ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request)->status,
      400);
  request.target = "/trace?workflow=no-such";
  EXPECT_EQ(
      ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request)->status,
      404);
  visor.StopWatchdog();
}

// During re-registration (and during router-driven migration between
// shards) an old and a new WfdPool for the same workflow briefly update
// the same alloy_visor_pool_resident_bytes series. The gauge must move
// by deltas: a Set()-based implementation let whichever pool wrote last
// clobber the other's contribution, so Clear() on the dying pool erased
// the live pool's resident bytes from the scrape.
TEST(MetricsTest, ResidentGaugeComposesAcrossOverlappingPools) {
  auto make_touched_wfd = [] {
    alloy::WfdOptions options;
    options.heap_bytes = 8u << 20;
    options.disk_blocks = 16 * 1024;
    options.mpk_backend = asmpk::MpkBackend::kEmulated;
    auto wfd = alloy::Wfd::Create(options);
    EXPECT_TRUE(wfd.ok());
    // Touch heap pages so ResidentBytes (mincore-based) is non-zero.
    auto buffer = (*wfd)->libos().AllocBuffer("overlap", 128 * 1024, 16, 1);
    EXPECT_TRUE(buffer.ok());
    std::memset(*buffer, 0xcd, 128 * 1024);
    return std::move(*wfd);
  };

  asobs::Gauge& gauge = Registry::Global().GetGauge(
      "alloy_visor_pool_resident_bytes", {{"workflow", "overlapwf"}});
  const int64_t base = gauge.value();

  alloy::WfdPool old_pool("overlapwf", 1);
  alloy::WfdPool new_pool("overlapwf", 1);
  old_pool.Park(make_touched_wfd());
  new_pool.Park(make_touched_wfd());
  const int64_t old_bytes = static_cast<int64_t>(old_pool.resident_bytes());
  const int64_t new_bytes = static_cast<int64_t>(new_pool.resident_bytes());
  ASSERT_GT(old_bytes, 0);
  ASSERT_GT(new_bytes, 0);
  EXPECT_EQ(gauge.value(), base + old_bytes + new_bytes);

  // Scrape concurrently with pool churn: the render must observe a
  // consistent value per series (no torn reads) and never crash.
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string page = Registry::Global().RenderPrometheus();
      EXPECT_NE(page.find("alloy_visor_pool_resident_bytes"),
                std::string::npos);
    }
  });

  // The dying pool clears; the live pool's contribution must survive.
  old_pool.Clear();
  EXPECT_EQ(gauge.value(), base + new_bytes);
  new_pool.Clear();
  EXPECT_EQ(gauge.value(), base);

  stop.store(true, std::memory_order_relaxed);
  scraper.join();
}

}  // namespace
