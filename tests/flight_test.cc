// Tests for the observability flight recorder (seqlock ring), the latency
// attribution report, and the SLO burn-rate tracker (DESIGN.md §11).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/flight.h"
#include "src/obs/slo.h"

namespace asobs {
namespace {

// Every field encodes `stamp`, so a snapshot record whose fields disagree
// was torn — the exact failure the seqlock must make impossible.
FlightRecord StampedRecord(int64_t stamp) {
  FlightRecord record;
  record.shard = 0;
  record.outcome = FlightOutcome::kOk;
  record.start_nanos = stamp;
  record.end_nanos = stamp;
  record.total_nanos = stamp;
  record.queue_wait_nanos = stamp;
  record.lease_nanos = stamp;
  record.module_load_nanos = stamp;
  record.exec_nanos = stamp;
  record.net_nanos = stamp;
  record.reset_nanos = stamp;
  record.stages = 2;
  record.stage_nanos[0] = stamp;
  record.stage_nanos[1] = stamp;
  return record;
}

bool AllFieldsAgree(const FlightRecord& record) {
  const int64_t stamp = record.total_nanos;
  return record.start_nanos == stamp && record.end_nanos == stamp &&
         record.queue_wait_nanos == stamp && record.lease_nanos == stamp &&
         record.module_load_nanos == stamp && record.exec_nanos == stamp &&
         record.net_nanos == stamp && record.reset_nanos == stamp &&
         record.stages == 2 && record.stage_nanos[0] == stamp &&
         record.stage_nanos[1] == stamp;
}

TEST(FlightRecorderTest, RecordSnapshotRoundTrip) {
  FlightRecorder recorder(8);
  EXPECT_TRUE(recorder.enabled());
  const uint32_t id = recorder.InternWorkflow("wfa");
  EXPECT_EQ(recorder.InternWorkflow("wfa"), id) << "interning is idempotent";

  FlightRecord record = StampedRecord(42);
  record.outcome = FlightOutcome::kTimeout;
  record.warm_start = true;
  ASSERT_TRUE(recorder.Record(id, record));

  const std::vector<FlightRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].workflow, "wfa");
  EXPECT_EQ(snapshot[0].outcome, FlightOutcome::kTimeout);
  EXPECT_TRUE(snapshot[0].warm_start);
  EXPECT_TRUE(AllFieldsAgree(snapshot[0]));
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorderTest, WraparoundKeepsTheNewestRecords) {
  FlightRecorder recorder(4);
  const uint32_t id = recorder.InternWorkflow("wrap");
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(recorder.Record(id, StampedRecord(i)));
  }
  const std::vector<FlightRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u) << "the ring holds exactly `capacity`";
  // Snapshot is sorted by end_nanos: the four newest, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snapshot[i].end_nanos, static_cast<int64_t>(7 + i));
    EXPECT_TRUE(AllFieldsAgree(snapshot[i]));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
}

TEST(FlightRecorderTest, WorkflowAndSinceFiltersSelectRecords) {
  FlightRecorder recorder(16);
  const uint32_t a = recorder.InternWorkflow("alpha");
  const uint32_t b = recorder.InternWorkflow("beta");
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(recorder.Record(i % 2 == 0 ? a : b, StampedRecord(i * 100)));
  }
  EXPECT_EQ(recorder.Snapshot("alpha").size(), 2u);
  EXPECT_EQ(recorder.Snapshot("beta").size(), 2u);
  EXPECT_EQ(recorder.Snapshot("gamma").size(), 0u);
  // since = cursor semantics: strictly newer records only.
  EXPECT_EQ(recorder.Snapshot("", 200).size(), 2u);
  EXPECT_EQ(recorder.Snapshot("alpha", 200).size(), 1u);
  EXPECT_EQ(recorder.Snapshot("", 400).size(), 0u);
}

TEST(FlightRecorderTest, ZeroCapacityDisablesRecording) {
  FlightRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  EXPECT_FALSE(recorder.Record(1, StampedRecord(7)));
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.recorded(), 0u);
}

// The acceptance race: concurrent writers wrapping a small ring while a
// reader scrapes. Every record a snapshot returns must be internally
// consistent (no torn reads), and every write must be accounted as either
// recorded or dropped. Run under TSan by scripts/ci.sh (label obs).
TEST(FlightRecorderTest, ConcurrentWritersAndScrapingReaderNeverTear) {
  constexpr size_t kCapacity = 32;
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 4000;
  FlightRecorder recorder(kCapacity);
  const uint32_t id = recorder.InternWorkflow("storm");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> scraped{0};
  const auto scrape = [&] {
    for (const FlightRecord& record : recorder.Snapshot()) {
      scraped.fetch_add(1, std::memory_order_relaxed);
      if (!AllFieldsAgree(record)) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      scrape();
    }
    // One quiescent scrape: while the writers hammer a 32-slot ring every
    // in-flight read attempt may legitimately fail the seqlock check, but a
    // settled ring must yield the full capacity.
    scrape();
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 1; i <= kRecordsPerWriter; ++i) {
        recorder.Record(id, StampedRecord(w * kRecordsPerWriter + i));
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop = true;
  reader.join();

  EXPECT_EQ(torn.load(), 0u) << "snapshot returned a torn record";
  EXPECT_GT(scraped.load(), 0u) << "the reader must have observed records";
  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            static_cast<uint64_t>(kWriters) * kRecordsPerWriter)
      << "every write is either recorded or counted as dropped";

  // The dust has settled: a final snapshot sees one full, consistent ring.
  const std::vector<FlightRecord> final_snapshot = recorder.Snapshot();
  EXPECT_EQ(final_snapshot.size(), kCapacity);
  for (const FlightRecord& record : final_snapshot) {
    EXPECT_TRUE(AllFieldsAgree(record));
  }
}

// ------------------------------------------------------ latency attribution

TEST(FlightReportTest, LatencyAttributionNamesTheTailOwner) {
  std::vector<FlightRecord> records;
  // 40 fast, exec-dominated invocations...
  for (int i = 0; i < 40; ++i) {
    FlightRecord record;
    record.total_nanos = 1'000;
    record.exec_nanos = 900;
    record.end_nanos = i;
    records.push_back(record);
  }
  // ...and two outliers that spent their lives in the admission queue.
  for (int i = 0; i < 2; ++i) {
    FlightRecord record;
    record.total_nanos = 100'000;
    record.queue_wait_nanos = 90'000;
    record.exec_nanos = 5'000;
    record.end_nanos = 100 + i;
    records.push_back(record);
  }

  const asbase::Json doc = LatencyAttributionJson(records);
  EXPECT_EQ(doc["count"].as_int(), 42);
  EXPECT_EQ(doc["tail_owner"].as_string(), "queue_wait")
      << doc.Dump(2);
  EXPECT_GT(doc["total"]["p99_nanos"].as_int(),
            doc["total"]["p50_nanos"].as_int());
  EXPECT_GT(doc["phases"]["queue_wait"]["tail_share"].as_double(), 0.5);
}

TEST(FlightReportTest, ReportJsonCarriesPhasesAndStages) {
  FlightRecord record = StampedRecord(5);
  record.workflow = "r";
  const asbase::Json doc = FlightReportJson({record});
  EXPECT_EQ(doc["count"].as_int(), 1);
  const asbase::Json& first = doc["records"].array()[0];
  EXPECT_EQ(first["workflow"].as_string(), "r");
  EXPECT_EQ(first["phases"]["exec_nanos"].as_int(), 5);
  EXPECT_EQ(first["stage_nanos"].array().size(), 2u);
}

// ----------------------------------------------------------- SLO tracker

constexpr int64_t kMs = 1'000'000;

TEST(SloTrackerTest, FastBurnTriggersOnceAndCoolsDown) {
  SloOptions options;
  options.objective = 0.99;  // budget 1%
  options.fast_window_ms = 1'000;
  options.slow_window_ms = 10'000;
  options.fast_burn_threshold = 14.0;
  options.slow_burn_threshold = 1e9;  // isolate the fast-burn trigger
  options.timeout_burst = 0;
  options.trigger_cooldown_ms = 5'000;
  SloTracker tracker(options);

  int64_t now = 1'000'000'000;
  // Healthy traffic: no trigger, burn 0.
  for (int i = 0; i < 10; ++i) {
    const auto verdict = tracker.Record(true, false, now += kMs);
    EXPECT_FALSE(verdict.trigger);
    EXPECT_EQ(verdict.fast_burn, 0.0);
  }
  // Half the window goes bad: burn = 0.5 / 0.01 = 50 >= 14 — one trigger,
  // then the cooldown suppresses the rest of the incident.
  int triggers = 0;
  for (int i = 0; i < 10; ++i) {
    const auto verdict = tracker.Record(false, false, now += kMs);
    if (verdict.trigger) {
      ++triggers;
      EXPECT_STREQ(verdict.reason, "fast_burn");
      EXPECT_GE(verdict.fast_burn, 14.0);
    }
  }
  EXPECT_EQ(triggers, 1) << "cooldown must cap one black box per incident";

  // Past the cooldown a fresh burst triggers again.
  now += 6'000 * kMs;
  const auto again = tracker.Record(false, false, now);
  EXPECT_TRUE(again.trigger);
}

TEST(SloTrackerTest, TimeoutBurstTriggersRegardlessOfBurn) {
  SloOptions options;
  options.objective = 0.5;  // huge budget: fractional burn stays low
  options.fast_window_ms = 1'000;
  options.fast_burn_threshold = 1e9;
  options.slow_burn_threshold = 1e9;
  options.timeout_burst = 3;
  SloTracker tracker(options);

  int64_t now = 1'000'000'000;
  // A sea of good traffic, then three timeouts inside the fast window.
  for (int i = 0; i < 100; ++i) {
    tracker.Record(true, false, now += kMs);
  }
  EXPECT_FALSE(tracker.Record(false, true, now += kMs).trigger);
  EXPECT_FALSE(tracker.Record(false, true, now += kMs).trigger);
  const auto verdict = tracker.Record(false, true, now += kMs);
  EXPECT_TRUE(verdict.trigger);
  EXPECT_STREQ(verdict.reason, "timeout_burst");
}

TEST(SloTrackerTest, ZeroBudgetTreatsAnyFailureAsInfiniteBurn) {
  SloOptions options;
  options.objective = 1.0;  // no budget at all
  SloTracker tracker(options);
  int64_t now = 1'000'000'000;
  EXPECT_EQ(tracker.Record(true, false, now += kMs).fast_burn, 0.0);
  EXPECT_GE(tracker.Record(false, false, now += kMs).fast_burn, 1e9);
}

TEST(SloTrackerTest, BurnRateWindowsSeeDifferentHistory) {
  SloOptions options;
  options.objective = 0.9;  // budget 10%
  options.fast_window_ms = 1'000;
  options.slow_window_ms = 60'000;
  SloTracker tracker(options);
  int64_t now = 1'000'000'000;
  // Ten bad events, then 5 seconds of silence: outside the fast window,
  // still inside the slow one.
  for (int i = 0; i < 10; ++i) {
    tracker.Record(false, false, now += kMs);
  }
  now += 5'000 * kMs;
  EXPECT_EQ(tracker.BurnRate(1'000, now), 0.0);
  EXPECT_GT(tracker.BurnRate(60'000, now), 0.0);
}

}  // namespace
}  // namespace asobs
