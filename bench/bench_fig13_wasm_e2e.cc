// Figure 13: end-to-end latency of C and Python path workflows —
// AlloyStack-C/-Py (AsVM through the WASI layer) vs Faasm-C/-Py (AsVM
// through Faasm's two-tier state architecture).
//
// Inputs are scaled below the Fig 12 sizes because both paths interpret the
// guests; the Python rows shrink further (boxed interpreter).

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/faasm.h"

namespace {

using namespace asbench;

int64_t RunAlloyVm(const aswl::VmWorkflowSpec& workflow, bool python,
                   const asbase::Json& params,
                   const std::vector<uint8_t>& input) {
  alloy::WorkflowSpec spec = aswl::RegisterAlloyVmWorkflow(workflow, python);
  return MedianNanos([&] {
    AlloyRunConfig config;
    config.wfd.heap_bytes = 64u << 20;
    config.wfd.disk_blocks = 32 * 1024;
    config.params = params;
    config.input = input;
    config.python_stdlib = python;
    return RunAlloyOnce(spec, config).end_to_end;
  });
}

int64_t RunFaasm(const aswl::VmWorkflowSpec& workflow, bool python,
                 const asbase::Json& params, const std::string& input_dir) {
  asbl::FaasmRuntime::Options options;
  options.input_dir = input_dir;
  options.python = python;
  asbl::FaasmRuntime runtime(options);
  return MedianNanos([&]() -> int64_t {
    auto stats = runtime.Run(workflow, params);
    return stats.ok() ? stats->end_to_end_nanos : 0;
  });
}

void Panel(const std::string& title, aswl::VmApp app, int width,
           asbase::Json params, const std::vector<uint8_t>& input,
           const std::string& input_name, bool python) {
  auto workflow = aswl::BuildVmWorkflow(app, width);
  if (!workflow.ok()) {
    std::fprintf(stderr, "assemble failed: %s\n",
                 workflow.status().ToString().c_str());
    return;
  }
  std::string dir = "/tmp";
  if (!input.empty()) {
    dir = StageHostInput(input_name, input);
  }
  if (python) {
    // Provide the worker-local stdlib for Faasm-Py.
    StageHostInput("python_stdlib.img", aswl::MakePayload(512 * 1024, 1));
  }
  asbase::Json alloy_params = params;
  asbase::Json faasm_params = params;
  if (!input.empty()) {
    alloy_params.Set("input", "/input.bin");
    faasm_params.Set("input", input_name);
  }
  const char* suffix = python ? "-Py" : "-C";
  std::printf("\n--- %s%s ---\n", title.c_str(), suffix);
  std::printf("  %-18s %14s\n", (std::string("AlloyStack") + suffix).c_str(),
              Ms(RunAlloyVm(*workflow, python, alloy_params, input)).c_str());
  std::fflush(stdout);
  std::printf("  %-18s %14s\n", (std::string("Faasm") + suffix).c_str(),
              Ms(RunFaasm(*workflow, python, faasm_params, dir)).c_str());
  std::fflush(stdout);
}

void Grid(bool python) {
  const double shrink = python ? 0.25 : 1.0;
  auto scaled = [&](size_t bytes) {
    return static_cast<size_t>(static_cast<double>(bytes) * shrink);
  };

  const std::pair<size_t, int> wc_grid[] = {
      {scaled(512u << 10), 1}, {scaled(1u << 20), 3}, {scaled(2u << 20), 5}};
  for (auto [bytes, instances] : wc_grid) {
    auto corpus = aswl::MakeTextCorpus(bytes, 81);
    asbase::Json params;
    params.Set("n", instances);
    Panel("WordCount " + std::string(asbase::FormatBytes(bytes)) + " x" +
              std::to_string(instances),
          aswl::VmApp::kWordCount, instances, params, corpus, "fig13-wc.bin",
          python);
  }

  const std::pair<size_t, int> ps_grid[] = {
      {scaled(128u << 10), 1}, {scaled(256u << 10), 3}, {scaled(512u << 10), 5}};
  for (auto [bytes, instances] : ps_grid) {
    auto input = aswl::MakeIntegerInput(bytes, 83);
    asbase::Json params;
    params.Set("n", instances);
    Panel("ParallelSorting " + std::string(asbase::FormatBytes(bytes)) + " x" +
              std::to_string(instances),
          aswl::VmApp::kSorting, instances, params, input, "fig13-ps.bin",
          python);
  }

  const std::pair<size_t, int> chain_grid[] = {
      {scaled(32u << 10), 5}, {scaled(64u << 10), 10}, {scaled(128u << 10), 15}};
  for (auto [bytes, length] : chain_grid) {
    asbase::Json params;
    params.Set("bytes", static_cast<int64_t>(bytes));
    params.Set("seed", 89);
    params.Set("chain_length", length);
    Panel("FunctionChain " + std::string(asbase::FormatBytes(bytes)) + " x" +
              std::to_string(length),
          aswl::VmApp::kChain, length, params, {}, "", python);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 13", "C and Python path end-to-end latency");
  std::printf("\n===== C path =====\n");
  Grid(/*python=*/false);
  std::printf("\n===== Python path =====\n");
  Grid(/*python=*/true);

  std::printf(
      "\npaper shape: AS-C beats Faasm-C on WordCount (1.0-2.8x) and\n"
      "FunctionChain (3-12x, control plane amortizes with size); Faasm-C\n"
      "slightly ahead on compute-bound ParallelSorting (WAVM vs Cranelift);\n"
      "AS-Py up to ~78x ahead on chains, shrinking as data grows.\n");
  return 0;
}
