// Figure 15: end-to-end latency breakdown — read-input / compute /
// transfer / fan-in wait per platform, for the three applications.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/runtimes.h"

namespace {

using namespace asbench;

void PrintPhases(const std::string& name, int64_t read, int64_t compute,
                 int64_t transfer, int64_t wait) {
  std::printf("  %-22s read=%-10s compute=%-10s transfer=%-10s wait=%-10s\n",
              name.c_str(), Ms(read).c_str(), Ms(compute).c_str(),
              Ms(transfer).c_str(), Ms(wait).c_str());
  std::fflush(stdout);
}

void AlloyRow(const aswl::GenericWorkflow& workflow,
              const asbase::Json& params, const std::vector<uint8_t>& input) {
  alloy::WorkflowSpec spec = aswl::RegisterAlloyStackWorkflow(workflow);
  AlloyRunConfig config;
  config.wfd.heap_bytes = 96u << 20;
  config.wfd.disk_blocks = 64 * 1024;
  config.params = params;
  config.input = input;
  auto outcome = RunAlloyOnce(spec, config);
  PrintPhases("AlloyStack", outcome.phases.read_input_nanos,
              outcome.phases.compute_nanos, outcome.phases.transfer_nanos,
              outcome.phases.wait_nanos);
}

void BaselineRow(const std::string& name, asbl::BaselineKind kind,
                 const aswl::GenericWorkflow& workflow,
                 const asbase::Json& params, const std::string& input_dir) {
  asbl::BaselineRuntime::Options options;
  options.kind = kind;
  options.input_dir = input_dir;
  asbl::BaselineRuntime runtime(options);
  auto stats = runtime.Run(workflow, params);
  if (!stats.ok()) {
    std::printf("  %-22s FAILED: %s\n", name.c_str(),
                stats.status().ToString().c_str());
    return;
  }
  PrintPhases(name, stats->phases.read_input, stats->phases.compute,
              stats->phases.transfer, stats->phases.wait);
}

void Panel(const std::string& title, const aswl::GenericWorkflow& workflow,
           asbase::Json params, const std::vector<uint8_t>& input,
           const std::string& input_name) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::string dir = "/tmp";
  asbase::Json alloy_params = params;
  if (!input.empty()) {
    dir = StageHostInput(input_name, input);
    params.Set("input", input_name);
    alloy_params.Set("input", "/input.bin");
  }
  AlloyRow(workflow, alloy_params, input);
  BaselineRow("Faastlane-refer", asbl::BaselineKind::kFaastlaneRefer, workflow,
              params, dir);
  BaselineRow("Faastlane", asbl::BaselineKind::kFaastlane, workflow, params,
              dir);
}

}  // namespace

int main() {
  PrintHeader("Figure 15",
              "per-phase latency breakdown (read / compute / transfer / wait)");

  {
    auto corpus = aswl::MakeTextCorpus(4u << 20, 101);
    Panel("WordCount 4MB x3", aswl::WordCountWorkflow(3), asbase::Json(),
          corpus, "fig15-wc.bin");
  }
  {
    auto input = aswl::MakeIntegerInput(1u << 20, 103);
    Panel("ParallelSorting 1MB x3", aswl::ParallelSortingWorkflow(3),
          asbase::Json(), input, "fig15-ps.bin");
  }
  {
    asbase::Json params;
    params.Set("bytes", 2 << 20);
    params.Set("seed", 107);
    Panel("FunctionChain 2MB x10", aswl::FunctionChainWorkflow(10), params, {},
          "");
  }

  std::printf(
      "\npaper shape: AlloyStack's read-input is its slow phase (user-space\n"
      "FAT), its transfer phase near zero; Faastlane's file reads are fast\n"
      "(host kernel fs); fan-in wait grows with parallelism skew.\n");
  return 0;
}
