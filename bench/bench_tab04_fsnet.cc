// Table 4: performance of the as-libos file system and network stack.
//
//   File system MB/s: rust-fatfs-equivalent (our FAT32 over a MemDisk)
//                     vs the host kernel filesystem (ext4-class).
//   TCP Gbit/s:       smoltcp-equivalent user-space stack vs kernel loopback.
//
// Extra ablation rows (DESIGN.md §5): fatfs-on-ramfs (no FAT layout cost)
// and the trampoline crossing cost per syscall.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/fatfs/fat_volume.h"

namespace {

using namespace asbench;

constexpr size_t kFileBytes = 24u << 20;  // 24 MiB working set
constexpr size_t kChunk = 64 * 1024;

double MbPerSec(size_t bytes, int64_t nanos) {
  if (nanos <= 0) {
    return 0;
  }
  return static_cast<double>(bytes) / 1e6 /
         (static_cast<double>(nanos) / 1e9);
}

double GbitPerSec(size_t bytes, int64_t nanos) {
  if (nanos <= 0) {
    return 0;
  }
  return static_cast<double>(bytes) * 8 / 1e9 /
         (static_cast<double>(nanos) / 1e9);
}

// Sequential write then sequential read through a Filesystem interface.
std::pair<double, double> FsThroughput(asfat::Filesystem& fs) {
  std::vector<uint8_t> chunk(kChunk, 0x5A);
  int64_t write_nanos = 0;
  {
    auto handle = fs.Open("/bench.bin", asfat::OpenFlags::WriteCreate());
    if (!handle.ok()) {
      return {0, 0};
    }
    asbase::ScopedTimer timer(&write_nanos);
    for (size_t done = 0; done < kFileBytes; done += kChunk) {
      if (!fs.Write(*handle, chunk).ok()) {
        return {0, 0};
      }
    }
    fs.Close(*handle);
  }
  int64_t read_nanos = 0;
  {
    auto handle = fs.Open("/bench.bin", asfat::OpenFlags::ReadOnly());
    if (!handle.ok()) {
      return {0, 0};
    }
    asbase::ScopedTimer timer(&read_nanos);
    size_t total = 0;
    while (total < kFileBytes) {
      auto n = fs.Read(*handle, chunk);
      if (!n.ok() || *n == 0) {
        break;
      }
      total += *n;
    }
    fs.Close(*handle);
  }
  return {MbPerSec(kFileBytes, read_nanos), MbPerSec(kFileBytes, write_nanos)};
}

std::pair<double, double> HostFsThroughput() {
  const char* path = "/tmp/alloystack-tab04.bin";
  std::vector<uint8_t> chunk(kChunk, 0x5A);
  int64_t write_nanos = 0;
  {
    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    asbase::ScopedTimer timer(&write_nanos);
    for (size_t done = 0; done < kFileBytes; done += kChunk) {
      if (::write(fd, chunk.data(), chunk.size()) < 0) {
        break;
      }
    }
    ::close(fd);
  }
  int64_t read_nanos = 0;
  {
    int fd = ::open(path, O_RDONLY);
    asbase::ScopedTimer timer(&read_nanos);
    while (::read(fd, chunk.data(), chunk.size()) > 0) {
    }
    ::close(fd);
  }
  ::unlink(path);
  return {MbPerSec(kFileBytes, read_nanos), MbPerSec(kFileBytes, write_nanos)};
}

// Bulk one-way TCP throughput over the user-space stack.
std::pair<double, double> AsnetThroughput() {
  constexpr size_t kBytes = 24u << 20;
  asnet::VirtualSwitch fabric;
  auto a = fabric.Attach(asnet::MakeAddr(10, 4, 0, 1));
  auto b = fabric.Attach(asnet::MakeAddr(10, 4, 0, 2));
  asnet::NetStack server(a), client(b);

  auto listener = server.Listen(7000);
  if (!listener.ok()) {
    return {0, 0};
  }
  int64_t rx_nanos = 0;
  std::thread sink([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(60));
    if (!connection.ok()) {
      return;
    }
    std::vector<uint8_t> buffer(256 * 1024);
    size_t total = 0;
    asbase::ScopedTimer timer(&rx_nanos);
    while (total < kBytes) {
      auto n = (*connection)->Recv(buffer);
      if (!n.ok() || *n == 0) {
        break;
      }
      total += *n;
    }
  });

  int64_t tx_nanos = 0;
  {
    auto connection = client.Connect(server.addr(), 7000,
                                     std::chrono::seconds(30));
    if (!connection.ok()) {
      sink.join();
      return {0, 0};
    }
    std::vector<uint8_t> chunk(256 * 1024, 0xA5);
    asbase::ScopedTimer timer(&tx_nanos);
    for (size_t done = 0; done < kBytes; done += chunk.size()) {
      if (!(*connection)->Send(chunk).ok()) {
        break;
      }
    }
    (*connection)->Close();
  }
  sink.join();
  return {GbitPerSec(kBytes, rx_nanos), GbitPerSec(kBytes, tx_nanos)};
}

// Same transfer over the zero-copy calls: SendZeroCopy pins the source
// buffer (segments gather-write straight from it, checksum offloaded) and
// RecvZeroCopy drains pool-owned extents by reference.
std::pair<double, double> AsnetZeroCopyThroughput() {
  constexpr size_t kBytes = 24u << 20;
  asnet::VirtualSwitch fabric;
  auto a = fabric.Attach(asnet::MakeAddr(10, 4, 1, 1));
  auto b = fabric.Attach(asnet::MakeAddr(10, 4, 1, 2));
  asnet::NetStack server(a), client(b);

  auto listener = server.Listen(7001);
  if (!listener.ok()) {
    return {0, 0};
  }
  int64_t rx_nanos = 0;
  std::thread sink([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(60));
    if (!connection.ok()) {
      return;
    }
    size_t total = 0;
    asbase::ScopedTimer timer(&rx_nanos);
    while (total < kBytes) {
      auto chunk = (*connection)->RecvZeroCopy();
      if (!chunk.ok() || chunk->bytes.empty()) {
        break;
      }
      total += chunk->bytes.size();
    }
  });

  int64_t tx_nanos = 0;
  {
    auto connection = client.Connect(server.addr(), 7001,
                                     std::chrono::seconds(30));
    if (!connection.ok()) {
      sink.join();
      return {0, 0};
    }
    auto chunk = std::make_shared<std::vector<uint8_t>>(256 * 1024, 0xA5);
    asbase::ScopedTimer timer(&tx_nanos);
    for (size_t done = 0; done < kBytes; done += chunk->size()) {
      if (!(*connection)->SendZeroCopy(*chunk, chunk).ok()) {
        break;
      }
    }
    (*connection)->Close();
  }
  sink.join();
  return {GbitPerSec(kBytes, rx_nanos), GbitPerSec(kBytes, tx_nanos)};
}

std::pair<double, double> LoopbackThroughput() {
  constexpr size_t kBytes = 64u << 20;
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int enable = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::listen(listen_fd, 1);

  int64_t rx_nanos = 0;
  std::thread sink([&] {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    std::vector<uint8_t> buffer(256 * 1024);
    size_t total = 0;
    asbase::ScopedTimer timer(&rx_nanos);
    while (total < kBytes) {
      ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
      if (n <= 0) {
        break;
      }
      total += static_cast<size_t>(n);
    }
    ::close(fd);
  });

  int64_t tx_nanos = 0;
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    std::vector<uint8_t> chunk(256 * 1024, 0xA5);
    asbase::ScopedTimer timer(&tx_nanos);
    for (size_t done = 0; done < kBytes; done += chunk.size()) {
      size_t sent = 0;
      while (sent < chunk.size()) {
        ssize_t n = ::send(fd, chunk.data() + sent, chunk.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) {
          break;
        }
        sent += static_cast<size_t>(n);
      }
    }
    ::close(fd);
  }
  sink.join();
  ::close(listen_fd);
  return {GbitPerSec(kBytes, rx_nanos), GbitPerSec(kBytes, tx_nanos)};
}

}  // namespace

int main() {
  PrintHeader("Table 4", "as-libos file system and network stack throughput");

  {
    asblk::MemDisk disk(96 * 1024);  // 48 MiB
    asfat::FatVolume::Format(&disk);
    auto volume = asfat::FatVolume::Mount(&disk);
    auto [fat_read, fat_write] = FsThroughput(**volume);
    auto [host_read, host_write] = HostFsThroughput();
    asfat::RamFilesystem ram;
    auto [ram_read, ram_write] = FsThroughput(ram);

    std::printf("%-28s %12s %12s\n", "file system (MB/s)", "read", "write");
    std::printf("------------------------------------------------------\n");
    std::printf("%-28s %12.0f %12.0f\n", "as-fatfs (FAT32, MemDisk)", fat_read,
                fat_write);
    std::printf("%-28s %12.0f %12.0f\n", "host kernel fs (ext4-class)",
                host_read, host_write);
    std::printf("%-28s %12.0f %12.0f\n", "as-ramfs (ablation)", ram_read,
                ram_write);
  }

  {
    auto [user_rx, user_tx] = AsnetThroughput();
    auto [zc_rx, zc_tx] = AsnetZeroCopyThroughput();
    auto [host_rx, host_tx] = LoopbackThroughput();
    std::printf("\n%-28s %12s %12s\n", "TCP (Gbit/s)", "RX", "TX");
    std::printf("------------------------------------------------------\n");
    std::printf("%-28s %12.3f %12.3f\n", "as-netstack (user space)", user_rx,
                user_tx);
    std::printf("%-28s %12.3f %12.3f\n", "as-netstack zero-copy", zc_rx,
                zc_tx);
    std::printf("%-28s %12.3f %12.3f\n", "host kernel loopback", host_rx,
                host_tx);
  }

  std::printf(
      "\npaper shape: the user-space FS and TCP stack trail the kernel\n"
      "implementations by small integer factors (rust-fatfs 4.4x slower on\n"
      "read; smoltcp ~5-15x slower than kernel loopback).\n");
  return 0;
}
