// Figure 14: contribution of on-demand loading and reference passing.
//
// base      = load-all + file-mediated intermediate data (AWS-style)
// +ondemand = on-demand loading, file-mediated data
// +refpass  = load-all, reference passing
// +both     = the full AlloyStack configuration
//
// Plus design-choice ablations beyond the paper (DESIGN.md §3): the MPK
// trampoline's per-syscall cost and the emulated WRPKRU price.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/mpk/trampoline.h"

namespace {

using namespace asbench;

int64_t RunConfig(const aswl::GenericWorkflow& workflow,
                  const asbase::Json& params,
                  const std::vector<uint8_t>& input, bool on_demand,
                  bool reference_passing) {
  alloy::WorkflowSpec spec = aswl::RegisterAlloyStackWorkflow(workflow);
  return MedianNanos([&] {
    AlloyRunConfig config;
    config.wfd.heap_bytes = 128u << 20;
    config.wfd.disk_blocks = 128 * 1024;
    config.wfd.on_demand = on_demand;
    config.wfd.reference_passing = reference_passing;
    config.params = params;
    config.input = input;
    return RunAlloyOnce(spec, config).end_to_end;
  });
}

void Panel(const std::string& title, const aswl::GenericWorkflow& workflow,
           const asbase::Json& params, const std::vector<uint8_t>& input) {
  std::printf("\n--- %s ---\n", title.c_str());
  const int64_t base = RunConfig(workflow, params, input, false, false);
  const int64_t od = RunConfig(workflow, params, input, true, false);
  const int64_t rp = RunConfig(workflow, params, input, false, true);
  const int64_t both = RunConfig(workflow, params, input, true, true);
  auto pct = [&](int64_t v) {
    return base > 0 ? 100.0 * static_cast<double>(base - v) /
                          static_cast<double>(base)
                    : 0.0;
  };
  std::printf("  %-12s %14s\n", "base", Ms(base).c_str());
  std::printf("  %-12s %14s  (-%.1f%%)\n", "+ondemand", Ms(od).c_str(),
              pct(od));
  std::printf("  %-12s %14s  (-%.1f%%)\n", "+refpass", Ms(rp).c_str(),
              pct(rp));
  std::printf("  %-12s %14s  (-%.1f%%)\n", "+both", Ms(both).c_str(),
              pct(both));
  std::fflush(stdout);
}

void TrampolineAblation() {
  std::printf("\n--- design ablation: MPK trampoline / WRPKRU cost ---\n");
  asmpk::PkeyRuntime runtime(asmpk::MpkBackend::kEmulated);
  asmpk::Trampoline trampoline(&runtime, asmpk::PkeyRuntime::kDenyAll, 0);
  constexpr int kCalls = 20000;

  volatile int64_t sink = 0;
  int64_t direct_nanos = 0;
  {
    asbase::ScopedTimer timer(&direct_nanos);
    for (int i = 0; i < kCalls; ++i) {
      sink = sink + i;
    }
  }
  int64_t trampoline_nanos = 0;
  {
    asbase::ScopedTimer timer(&trampoline_nanos);
    for (int i = 0; i < kCalls; ++i) {
      trampoline.EnterSystem([&] { sink = sink + i; });
    }
  }
  std::printf("  %-28s %10.1f ns/call\n", "direct call",
              static_cast<double>(direct_nanos) / kCalls);
  std::printf("  %-28s %10.1f ns/call (2 PKRU writes)\n",
              "through trampoline",
              static_cast<double>(trampoline_nanos) / kCalls);
}

}  // namespace

int main() {
  PrintHeader("Figure 14", "technique contributions (ablation)");

  {
    auto corpus = aswl::MakeTextCorpus(6u << 20, 91);
    asbase::Json params;
    params.Set("input", "/input.bin");
    Panel("WordCount 6MB x5", aswl::WordCountWorkflow(5), params, corpus);
  }
  {
    auto input = aswl::MakeIntegerInput(4u << 20, 93);
    asbase::Json params;
    params.Set("input", "/input.bin");
    Panel("ParallelSorting 4MB x5", aswl::ParallelSortingWorkflow(5), params,
          input);
  }
  {
    asbase::Json params;
    params.Set("bytes", 4 << 20);
    params.Set("seed", 97);
    Panel("FunctionChain 4MB x15", aswl::FunctionChainWorkflow(15), params,
          {});
  }

  TrampolineAblation();

  std::printf(
      "\npaper shape: on-demand loading cuts 40-48%%; reference passing cuts\n"
      "35-51%%; the combination compounds.\n");
  return 0;
}
