// Figure 16: end-to-end latency when both systems use an in-memory
// filesystem — AlloyStack on as-libos ramfs vs Faastlane-refer-kata with a
// guest ram-backed fs. Removes the fatfs-vs-ext4 gap so what remains is the
// runtime difference (hardware virtualization overhead on the kata side).

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/runtimes.h"

namespace {

using namespace asbench;

int64_t AlloyRamfs(int instances, const std::vector<uint8_t>& input) {
  alloy::WorkflowSpec spec = aswl::RegisterAlloyStackWorkflow(
      aswl::ParallelSortingWorkflow(instances));
  return MedianNanos([&] {
    AlloyRunConfig config;
    config.wfd.heap_bytes = 96u << 20;
    config.wfd.use_ramfs = true;
    asbase::Json params;
    params.Set("input", "/input.bin");
    config.params = params;
    config.input = input;
    return RunAlloyOnce(spec, config).end_to_end;
  });
}

int64_t FaastlaneKataRam(int instances, const std::vector<uint8_t>& input) {
  asbl::BaselineRuntime::Options options;
  options.kind = asbl::BaselineKind::kFaastlaneReferKata;
  options.ramfs_inputs = true;
  asbl::BaselineRuntime runtime(options);
  runtime.AddRamInput("input.bin", input);
  asbase::Json params;
  params.Set("input", "input.bin");
  return MedianNanos([&]() -> int64_t {
    auto stats =
        runtime.Run(aswl::ParallelSortingWorkflow(instances), params);
    return stats.ok() ? stats->end_to_end_nanos : 0;
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 16", "ParallelSorting on in-memory filesystems");
  auto input = aswl::MakeIntegerInput(1u << 20, 111);

  std::printf("%-10s %20s %24s\n", "instances", "AlloyStack(ramfs)",
              "Faastlane-refer-kata(ram)");
  std::printf("----------------------------------------------------------\n");
  for (int instances : {1, 3, 5}) {
    const int64_t alloy_nanos = AlloyRamfs(instances, input);
    const int64_t kata_nanos = FaastlaneKataRam(instances, input);
    std::printf("%-10d %20s %24s\n", instances, Ms(alloy_nanos).c_str(),
                Ms(kata_nanos).c_str());
    std::fflush(stdout);
  }

  std::printf(
      "\npaper shape: with the filesystem gap removed AlloyStack still wins\n"
      "slightly — the kata side pays MicroVM boot + nested-paging "
      "overhead.\n");
  return 0;
}
