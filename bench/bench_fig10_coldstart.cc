// Figure 10: cold start latency of the no-ops function across platforms.
//
// Real measurements: AlloyStack (AS), AS-load-all, AS-C, AS-Py (VM runtime
// init through the LibOS), Faastlane-T (thread spawn), Wasmer-T-equivalent
// module instantiation. Modeled sandboxes (this machine cannot boot them):
// Wasmer process, Virtines, Unikraft, gVisor, Kata, Faasm-Py worker.

#include <sys/stat.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/baselines/sim_profiles.h"

namespace {

using namespace asbench;

// AlloyStack no-ops cold start: WFD instantiation + the time until the user
// no-op begins to run (no modules needed under on-demand loading).
int64_t AlloyColdStart(bool on_demand) {
  alloy::FunctionRegistry::Global().Register(
      "fig10.noop", [](alloy::FunctionContext&) { return asbase::OkStatus(); });
  return MedianNanos([&]() -> int64_t {
    alloy::WfdOptions options;
    options.on_demand = on_demand;
    options.heap_bytes = 16u << 20;
    options.disk_blocks = 16 * 1024;
    auto wfd = alloy::Wfd::Create(options);
    if (!wfd.ok()) {
      return 0;
    }
    alloy::WorkflowSpec spec;
    spec.name = "noop";
    spec.stages.push_back(
        alloy::StageSpec{{alloy::FunctionSpec{"fig10.noop", 1}}});
    alloy::Orchestrator orchestrator(wfd->get());
    const int64_t start = asbase::MonoNanos();
    auto stats = orchestrator.Run(spec, asbase::Json());
    if (!stats.ok()) {
      return 0;
    }
    return (*wfd)->creation_nanos() + (*wfd)->libos().TotalLoadNanos() +
           (asbase::MonoNanos() - start) - stats->total_nanos +
           stats->total_nanos;  // = boot + dispatch-to-noop-return
  });
}

// AS-C / AS-Py: the WASM path adds VM construction (+ stdlib load for Py).
int64_t AlloyVmColdStart(bool python) {
  auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kPipe, 1);
  if (!workflow.ok()) {
    return 0;
  }
  // A no-op guest: the pipe sender with 0 bytes.
  aswl::VmWorkflowSpec noop;
  noop.name = "fig10-noop";
  noop.stages.push_back(workflow->stages[0]);
  alloy::WorkflowSpec spec = aswl::RegisterAlloyVmWorkflow(noop, python);
  return MedianNanos([&]() -> int64_t {
    AlloyRunConfig config;
    config.wfd.heap_bytes = 16u << 20;
    config.wfd.disk_blocks = 16 * 1024;
    config.params.Set("bytes", 0);
    config.params.Set("seed", 1);
    config.python_stdlib = python;
    auto outcome = RunAlloyOnce(spec, config);
    return outcome.end_to_end;
  });
}

int64_t ThreadSpawn() {
  // Faastlane-T: function-as-thread in a warm process.
  return MedianNanos([] {
    const int64_t start = asbase::MonoNanos();
    std::thread noop([] {});
    noop.join();
    return asbase::MonoNanos() - start;
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 10", "no-ops cold start latency per platform");
  std::printf("%-26s %14s  %s\n", "platform", "cold start", "source");
  std::printf("----------------------------------------------------------\n");
  auto row = [](const std::string& name, int64_t nanos, const char* source) {
    std::printf("%-26s %14s  %s\n", name.c_str(), Ms(nanos).c_str(), source);
  };

  row("Faastlane-T", ThreadSpawn(), "real");
  row("AlloyStack (AS)", AlloyColdStart(/*on_demand=*/true), "real");
  const size_t noop_image = 4096;
  row("Wasmer-T", MedianNanos([&] {
        return asbl::SimulateBoot(asbl::WasmerThreadProfile(noop_image));
      }),
      "model+work");
  row("AS-load-all", AlloyColdStart(/*on_demand=*/false), "real");
  row("AS-C", AlloyVmColdStart(/*python=*/false), "real");
  row("Virtines", MedianNanos([] {
        return asbl::SimulateBoot(asbl::VirtinesProfile());
      }),
      "model+work");
  row("Unikraft", MedianNanos([] {
        return asbl::SimulateBoot(asbl::UnikraftProfile());
      }),
      "model+work");
  row("Wasmer", MedianNanos([&] {
        return asbl::SimulateBoot(asbl::WasmerProcessProfile(noop_image));
      }),
      "model+work");
  row("Faastlane (process)", MedianNanos([] {
        asbase::SpinFor(asbase::SimCostModel::Global().Scaled(
            asbase::SimCostModel::Global().process_spawn_nanos));
        return asbase::SimCostModel::Global().Scaled(
            asbase::SimCostModel::Global().process_spawn_nanos);
      }),
      "model");
  row("OpenFaaS container", MedianNanos([] {
        return asbl::SimulateBoot(asbl::ContainerProfile());
      }),
      "model+work");
  row("gVisor", MedianNanos([] {
        return asbl::SimulateBoot(asbl::GvisorProfile());
      }),
      "model+work");
  row("Kata/Firecracker", MedianNanos([] {
        return asbl::SimulateBoot(asbl::KataContainerProfile());
      }),
      "model+work");
  row("AS-Py", AlloyVmColdStart(/*python=*/true), "real");

  std::printf(
      "\npaper shape: Faastlane-T < AS (~1.3ms) < Wasmer-T < Virtines <\n"
      "AS-load-all (~89ms) < Unikraft/gVisor/Kata/Wasmer; Python runtimes "
      "slowest.\n");
  return 0;
}
