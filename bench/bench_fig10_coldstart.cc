// Figure 10: cold start latency of the no-ops function across platforms.
//
// Real measurements: AlloyStack (AS), AS-load-all, AS-C, AS-Py (VM runtime
// init through the LibOS), Faastlane-T (thread spawn), Wasmer-T-equivalent
// module instantiation. Modeled sandboxes (this machine cannot boot them):
// Wasmer process, Virtines, Unikraft, gVisor, Kata, Faasm-Py worker.
//
// A second section (DESIGN.md §14, `--quick` runs only this part) measures
// snapshot-fork clone boot against a full boot and a replay-warmed boot for
// an IO+heap workflow, proves the visor actually clones via the
// alloy_visor_snapshot_* counter deltas, and sweeps per-idle-clone resident
// bytes at increasing density. Emits BENCH_snapshot.json.

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "src/baselines/sim_profiles.h"

namespace {

using namespace asbench;

// AlloyStack no-ops cold start: WFD instantiation + the time until the user
// no-op begins to run (no modules needed under on-demand loading).
int64_t AlloyColdStart(bool on_demand) {
  alloy::FunctionRegistry::Global().Register(
      "fig10.noop", [](alloy::FunctionContext&) { return asbase::OkStatus(); });
  return MedianNanos([&]() -> int64_t {
    alloy::WfdOptions options;
    options.on_demand = on_demand;
    options.heap_bytes = 16u << 20;
    options.disk_blocks = 16 * 1024;
    auto wfd = alloy::Wfd::Create(options);
    if (!wfd.ok()) {
      return 0;
    }
    alloy::WorkflowSpec spec;
    spec.name = "noop";
    spec.stages.push_back(
        alloy::StageSpec{{alloy::FunctionSpec{"fig10.noop", 1}}});
    alloy::Orchestrator orchestrator(wfd->get());
    const int64_t start = asbase::MonoNanos();
    auto stats = orchestrator.Run(spec, asbase::Json());
    if (!stats.ok()) {
      return 0;
    }
    return (*wfd)->creation_nanos() + (*wfd)->libos().TotalLoadNanos() +
           (asbase::MonoNanos() - start) - stats->total_nanos +
           stats->total_nanos;  // = boot + dispatch-to-noop-return
  });
}

// AS-C / AS-Py: the WASM path adds VM construction (+ stdlib load for Py).
int64_t AlloyVmColdStart(bool python) {
  auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kPipe, 1);
  if (!workflow.ok()) {
    return 0;
  }
  // A no-op guest: the pipe sender with 0 bytes.
  aswl::VmWorkflowSpec noop;
  noop.name = "fig10-noop";
  noop.stages.push_back(workflow->stages[0]);
  alloy::WorkflowSpec spec = aswl::RegisterAlloyVmWorkflow(noop, python);
  return MedianNanos([&]() -> int64_t {
    AlloyRunConfig config;
    config.wfd.heap_bytes = 16u << 20;
    config.wfd.disk_blocks = 16 * 1024;
    config.params.Set("bytes", 0);
    config.params.Set("seed", 1);
    config.python_stdlib = python;
    auto outcome = RunAlloyOnce(spec, config);
    return outcome.end_to_end;
  });
}

int64_t ThreadSpawn() {
  // Faastlane-T: function-as-thread in a warm process.
  return MedianNanos([] {
    const int64_t start = asbase::MonoNanos();
    std::thread noop([] {});
    noop.join();
    return asbase::MonoNanos() - start;
  });
}

// ------------------------------------------------ snapshot-fork clone boot

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

alloy::WfdOptions SnapWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

uint64_t SnapCounter(const std::string& name, const std::string& workflow) {
  return asobs::Registry::Global()
      .GetCounter(name, {{"workflow", workflow}})
      .value();
}

void RegisterSnapshotFunctions() {
  // IO + heap workflow: a full boot pays the mm, fdtab, and fatfs module
  // loads (the dlmopen-dominated part of cold start); a clone pays none.
  alloy::FunctionRegistry::Global().Register(
      "fig10.touch", [](alloy::FunctionContext& ctx) -> asbase::Status {
        AS_ASSIGN_OR_RETURN(alloy::RawBuffer buffer,
                            ctx.as().AllocBuffer("snap", 4096, 1));
        std::memset(buffer.bytes.data(), 0x42, buffer.bytes.size());
        AS_ASSIGN_OR_RETURN(alloy::RawBuffer taken,
                            ctx.as().AcquireBuffer("snap", 1));
        AS_RETURN_IF_ERROR(ctx.as().FreeBuffer(taken));
        AS_RETURN_IF_ERROR(ctx.as().WriteWholeFile(
            "/snap.bin", Bytes(std::string(4096, 'x'))));
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                            ctx.as().ReadWholeFile("/snap.bin"));
        ctx.SetResult(std::to_string(data.size()));
        return asbase::OkStatus();
      });
  // Same workflow, but the instances rendezvous so two invocations are
  // provably in flight at once (forces a deterministic pool miss → clone).
  alloy::FunctionRegistry::Global().Register(
      "fig10.touch-block", [](alloy::FunctionContext& ctx) -> asbase::Status {
        auto* gate = reinterpret_cast<std::atomic<int>*>(
            static_cast<uintptr_t>(ctx.params()["gate"].as_int()));
        gate->fetch_add(1);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (gate->load() < 2 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
}

alloy::WorkflowSpec SnapSpec(const std::string& name, const std::string& fn) {
  alloy::WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(alloy::StageSpec{{alloy::FunctionSpec{fn, 1}}});
  return spec;
}

// Boots a WFD and runs the touch workflow once (loading its modules).
// Returns null on failure.
std::unique_ptr<alloy::Wfd> BootAndTouch(int64_t* boot_nanos) {
  auto wfd = alloy::Wfd::Create(SnapWfd());
  if (!wfd.ok()) {
    return nullptr;
  }
  alloy::Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(SnapSpec("snap-touch", "fig10.touch"),
                                asbase::Json());
  if (!stats.ok()) {
    return nullptr;
  }
  if (boot_nanos != nullptr) {
    *boot_nanos = (*wfd)->creation_nanos() + (*wfd)->libos().TotalLoadNanos();
  }
  return std::move(*wfd);
}

void SnapshotSection(bool quick) {
  PrintHeader("snapshot clone boot",
              "full boot vs replay-warmed vs CoW clone (DESIGN.md §14)");
  RegisterSnapshotFunctions();
  const int iterations = quick ? 5 : 40;

  asbase::Json doc;
  doc.Set("bench", "snapshot");
  doc.Set("scale", asbase::SimCostModel::Global().scale);
  doc.Set("quick", quick);
  asbase::Json series{asbase::JsonObject{}};

  // Template: first boot + invoke + reset, then freeze.
  int64_t template_boot = 0;
  std::unique_ptr<alloy::Wfd> tmpl = BootAndTouch(&template_boot);
  if (tmpl == nullptr || !tmpl->Reset().ok()) {
    std::fprintf(stderr, "template boot failed\n");
    return;
  }
  auto snapshot = tmpl->CaptureSnapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot capture failed: %s\n",
                 snapshot.status().ToString().c_str());
    return;
  }
  const std::vector<alloy::ModuleKind> modules = tmpl->libos().LoadedModules();

  // (a) Full boot: WFD create + on-demand module loads during the run.
  asbase::Histogram full_boot;
  for (int i = 0; i < iterations; ++i) {
    int64_t nanos = 0;
    if (BootAndTouch(&nanos) != nullptr) {
      full_boot.Record(nanos);
    }
  }

  // (b) Replay-warmed boot: what the pool warmer's fallback path pays —
  // WFD create + EnsureLoaded replay of the learned module set.
  asbase::Histogram replay_boot;
  for (int i = 0; i < iterations; ++i) {
    auto wfd = alloy::Wfd::Create(SnapWfd());
    if (!wfd.ok()) {
      continue;
    }
    for (alloy::ModuleKind kind : modules) {
      (void)(*wfd)->libos().EnsureLoaded(kind);
    }
    replay_boot.Record((*wfd)->creation_nanos() +
                       (*wfd)->libos().TotalLoadNanos());
  }

  // (c) Clone boot from the frozen template.
  asbase::Histogram clone_boot;
  for (int i = 0; i < iterations; ++i) {
    auto clone = alloy::Wfd::CloneFromSnapshot(SnapWfd(), *snapshot);
    if (clone.ok()) {
      clone_boot.Record((*clone)->creation_nanos());
    }
  }
  // Prove a clone actually serves the workflow.
  {
    auto clone = alloy::Wfd::CloneFromSnapshot(SnapWfd(), *snapshot);
    if (clone.ok()) {
      alloy::Orchestrator orchestrator(clone->get());
      auto stats = orchestrator.Run(SnapSpec("snap-touch", "fig10.touch"),
                                    asbase::Json());
      if (!stats.ok()) {
        std::fprintf(stderr, "clone run failed: %s\n",
                     stats.status().ToString().c_str());
      }
    }
  }

  std::printf("%-22s %12s %12s %12s\n", "boot path", "p50", "p99", "min");
  auto boot_row = [](const char* name, const asbase::Histogram& hist) {
    std::printf("%-22s %12s %12s %12s\n", name,
                Ms(hist.Percentile(0.5)).c_str(),
                Ms(hist.Percentile(0.99)).c_str(), Ms(hist.min()).c_str());
  };
  boot_row("full boot", full_boot);
  boot_row("replay-warmed boot", replay_boot);
  boot_row("snapshot clone boot", clone_boot);
  const double speedup =
      static_cast<double>(full_boot.Percentile(0.5)) /
      static_cast<double>(std::max<int64_t>(clone_boot.Percentile(0.5), 1));
  std::printf("full/clone p50 speedup: %.0fx\n", speedup);
  series.Set("full_boot", full_boot.ToJson());
  series.Set("replay_boot", replay_boot.ToJson());
  series.Set("clone_boot", clone_boot.ToJson());
  doc.Set("full_clone_p50_speedup", speedup);

  // Counter-delta proof through the visor: first invoke captures, a
  // rendezvoused concurrent pair forces a pool miss that must clone.
  {
    const std::string wf = "fig10-snap";
    const uint64_t creates0 =
        SnapCounter("alloy_visor_snapshot_creates_total", wf);
    const uint64_t clones0 =
        SnapCounter("alloy_visor_snapshot_clones_total", wf);
    const uint64_t fallbacks0 =
        SnapCounter("alloy_visor_snapshot_fallback_boots_total", wf);
    alloy::AsVisor visor;
    alloy::AsVisor::WorkflowOptions options;
    options.wfd = SnapWfd();
    options.pool_size = 2;
    options.max_concurrency = 2;
    visor.RegisterWorkflow(SnapSpec(wf, "fig10.touch-block"), options);
    std::atomic<int> gate{2};  // first invoke runs alone: pre-opened gate
    asbase::Json params;
    params.Set("gate",
               static_cast<int64_t>(reinterpret_cast<uintptr_t>(&gate)));
    (void)visor.Invoke(wf, params);
    asbase::Histogram visor_clone_invoke;
    const int pairs = quick ? 1 : 5;
    for (int i = 0; i < pairs; ++i) {
      gate.store(0);
      asbase::Result<alloy::InvokeResult> r1 = asbase::Unavailable("unset");
      asbase::Result<alloy::InvokeResult> r2 = asbase::Unavailable("unset");
      std::thread t1([&] { r1 = visor.Invoke(wf, params); });
      std::thread t2([&] { r2 = visor.Invoke(wf, params); });
      t1.join();
      t2.join();
      for (const auto& r : {&r1, &r2}) {
        if (r->ok() && (**r).clone_start) {
          visor_clone_invoke.Record((**r).wfd_create_nanos);
        }
      }
    }
    const uint64_t creates =
        SnapCounter("alloy_visor_snapshot_creates_total", wf) - creates0;
    const uint64_t clones =
        SnapCounter("alloy_visor_snapshot_clones_total", wf) - clones0;
    const uint64_t fallbacks =
        SnapCounter("alloy_visor_snapshot_fallback_boots_total", wf) -
        fallbacks0;
    std::printf(
        "\nvisor lifecycle: creates +%llu, clones +%llu, fallback boots "
        "+%llu (clone-path wfd create p50 %s)\n",
        static_cast<unsigned long long>(creates),
        static_cast<unsigned long long>(clones),
        static_cast<unsigned long long>(fallbacks),
        Ms(visor_clone_invoke.Percentile(0.5)).c_str());
    asbase::Json counters;
    counters.Set("snapshot_creates_delta", static_cast<int64_t>(creates));
    counters.Set("snapshot_clones_delta", static_cast<int64_t>(clones));
    counters.Set("snapshot_fallback_boots_delta",
                 static_cast<int64_t>(fallbacks));
    doc.Set("counters", std::move(counters));
    series.Set("visor_clone_invoke", visor_clone_invoke.ToJson());
  }

  // Resident-bytes-per-idle-workflow sweep: N idle clones of one template
  // vs what N full boots would each hold privately.
  {
    int64_t reference_boot = 0;
    std::unique_ptr<alloy::Wfd> reference = BootAndTouch(&reference_boot);
    size_t full_resident = 0;
    if (reference != nullptr && reference->Reset().ok()) {
      full_resident = reference->ResidentBytes();
    }
    std::printf("\nidle density (full-boot WFD resident: %zu KiB)\n",
                full_resident / 1024);
    std::printf("%-12s %18s %10s\n", "clones", "per-clone resident",
                "vs full");
    asbase::Json sweep{asbase::JsonArray{}};
    const std::vector<int> counts =
        quick ? std::vector<int>{1, 8} : std::vector<int>{1, 64, 512};
    for (int count : counts) {
      std::vector<std::unique_ptr<alloy::Wfd>> clones;
      clones.reserve(static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) {
        auto clone = alloy::Wfd::CloneFromSnapshot(SnapWfd(), *snapshot);
        if (clone.ok()) {
          clones.push_back(std::move(*clone));
        }
      }
      size_t total = 0;
      for (const auto& clone : clones) {
        total += clone->ResidentBytes();
      }
      const size_t per_clone =
          clones.empty() ? 0 : total / clones.size();
      const double ratio =
          full_resident == 0 ? 0.0
                             : static_cast<double>(per_clone) /
                                   static_cast<double>(full_resident);
      std::printf("%-12d %15zu B %9.1f%%\n", count, per_clone,
                  100.0 * ratio);
      asbase::Json row;
      row.Set("clones", static_cast<int64_t>(count));
      row.Set("per_clone_resident_bytes", static_cast<int64_t>(per_clone));
      row.Set("full_boot_resident_bytes",
              static_cast<int64_t>(full_resident));
      row.Set("ratio", ratio);
      sweep.Append(std::move(row));
    }
    doc.Set("resident_sweep", std::move(sweep));
  }

  doc.Set("series", std::move(series));
  const std::string path = "BENCH_snapshot.json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string text = doc.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("results written to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  if (quick) {
    // Smoke mode (ctest/ci.sh): only the snapshot clone-boot section — the
    // platform table's modeled boots take seconds each.
    SnapshotSection(quick);
    return 0;
  }
  PrintHeader("Figure 10", "no-ops cold start latency per platform");
  std::printf("%-26s %14s  %s\n", "platform", "cold start", "source");
  std::printf("----------------------------------------------------------\n");
  auto row = [](const std::string& name, int64_t nanos, const char* source) {
    std::printf("%-26s %14s  %s\n", name.c_str(), Ms(nanos).c_str(), source);
  };

  row("Faastlane-T", ThreadSpawn(), "real");
  row("AlloyStack (AS)", AlloyColdStart(/*on_demand=*/true), "real");
  const size_t noop_image = 4096;
  row("Wasmer-T", MedianNanos([&] {
        return asbl::SimulateBoot(asbl::WasmerThreadProfile(noop_image));
      }),
      "model+work");
  row("AS-load-all", AlloyColdStart(/*on_demand=*/false), "real");
  row("AS-C", AlloyVmColdStart(/*python=*/false), "real");
  row("Virtines", MedianNanos([] {
        return asbl::SimulateBoot(asbl::VirtinesProfile());
      }),
      "model+work");
  row("Unikraft", MedianNanos([] {
        return asbl::SimulateBoot(asbl::UnikraftProfile());
      }),
      "model+work");
  row("Wasmer", MedianNanos([&] {
        return asbl::SimulateBoot(asbl::WasmerProcessProfile(noop_image));
      }),
      "model+work");
  row("Faastlane (process)", MedianNanos([] {
        asbase::SpinFor(asbase::SimCostModel::Global().Scaled(
            asbase::SimCostModel::Global().process_spawn_nanos));
        return asbase::SimCostModel::Global().Scaled(
            asbase::SimCostModel::Global().process_spawn_nanos);
      }),
      "model");
  row("OpenFaaS container", MedianNanos([] {
        return asbl::SimulateBoot(asbl::ContainerProfile());
      }),
      "model+work");
  row("gVisor", MedianNanos([] {
        return asbl::SimulateBoot(asbl::GvisorProfile());
      }),
      "model+work");
  row("Kata/Firecracker", MedianNanos([] {
        return asbl::SimulateBoot(asbl::KataContainerProfile());
      }),
      "model+work");
  row("AS-Py", AlloyVmColdStart(/*python=*/true), "real");

  std::printf(
      "\npaper shape: Faastlane-T < AS (~1.3ms) < Wasmer-T < Virtines <\n"
      "AS-load-all (~89ms) < Unikraft/gVisor/Kata/Wasmer; Python runtimes "
      "slowest.\n");

  SnapshotSection(quick);
  return 0;
}
