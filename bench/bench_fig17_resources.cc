// Figure 17(b): CPU and memory usage vs number of concurrent workflow
// instances — AlloyStack vs Faastlane-refer-kata.
//
// CPU: process CPU time (rusage) consumed per completed workflow.
// Memory: resident heap attributable to the workflow instances (AlloyStack:
// WFD arenas via mincore; kata model: guest memory footprint per MicroVM).

#include <sys/resource.h>
#include <sys/stat.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/baselines/runtimes.h"

namespace {

using namespace asbench;

int64_t ProcessCpuMicros() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return (usage.ru_utime.tv_sec + usage.ru_stime.tv_sec) * 1'000'000LL +
         usage.ru_utime.tv_usec + usage.ru_stime.tv_usec;
}

}  // namespace

int main() {
  PrintHeader("Figure 17b", "CPU and memory usage vs concurrent workflows");

  auto input = aswl::MakeIntegerInput(512u << 10, 127);
  alloy::WorkflowSpec spec =
      aswl::RegisterAlloyStackWorkflow(aswl::ParallelSortingWorkflow(3));
  const std::string dir = StageHostInput("fig17b-ps.bin", input);
  // Guest memory a Kata MicroVM pins per workflow (VM memory + kernel +
  // agent), per the Firecracker/Kata literature, scaled.
  const size_t kata_guest_bytes = static_cast<size_t>(
      asbase::SimCostModel::Global().Scaled(128u << 20));

  std::printf("%-10s | %14s %14s | %14s %14s\n", "workflows", "AS cpu",
              "AS mem", "kata cpu", "kata mem");
  std::printf(
      "--------------------------------------------------------------------"
      "--\n");
  for (int concurrent : {1, 2, 4, 8}) {
    // --- AlloyStack: run `concurrent` WFDs at once, sample their heaps ---
    int64_t alloy_cpu = 0;
    size_t alloy_mem = 0;
    {
      const int64_t cpu_before = ProcessCpuMicros();
      std::vector<std::unique_ptr<alloy::Wfd>> wfds;
      std::vector<std::thread> runners;
      std::mutex mem_mutex;
      for (int i = 0; i < concurrent; ++i) {
        alloy::WfdOptions options;
        options.heap_bytes = 48u << 20;
        options.disk_blocks = 32 * 1024;
        auto wfd = alloy::Wfd::Create(options);
        if (!wfd.ok()) {
          continue;
        }
        wfds.push_back(std::move(*wfd));
      }
      for (auto& wfd : wfds) {
        runners.emplace_back([&wfd, &input, &spec, &mem_mutex, &alloy_mem] {
          alloy::AsStd as(wfd.get());
          as.WriteWholeFile("/input.bin", input);
          asbase::Json params;
          params.Set("input", "/input.bin");
          alloy::Orchestrator orchestrator(wfd.get());
          orchestrator.Run(spec, params);
          std::lock_guard<std::mutex> lock(mem_mutex);
          alloy_mem += wfd->ResidentBytes();
        });
      }
      for (auto& runner : runners) {
        runner.join();
      }
      alloy_cpu = (ProcessCpuMicros() - cpu_before) / std::max(concurrent, 1);
      alloy_mem /= static_cast<size_t>(std::max(concurrent, 1));
    }

    // --- Faastlane-refer-kata: same workload inside MicroVM models ---
    int64_t kata_cpu = 0;
    {
      const int64_t cpu_before = ProcessCpuMicros();
      std::vector<std::thread> runners;
      for (int i = 0; i < concurrent; ++i) {
        runners.emplace_back([&] {
          asbl::BaselineRuntime::Options options;
          options.kind = asbl::BaselineKind::kFaastlaneReferKata;
          options.input_dir = dir;
          asbl::BaselineRuntime runtime(options);
          asbase::Json params;
          params.Set("input", "fig17b-ps.bin");
          runtime.Run(aswl::ParallelSortingWorkflow(3), params);
        });
      }
      for (auto& runner : runners) {
        runner.join();
      }
      kata_cpu = (ProcessCpuMicros() - cpu_before) / std::max(concurrent, 1);
    }

    std::printf("%-10d | %11lld us %11s | %11lld us %11s\n", concurrent,
                static_cast<long long>(alloy_cpu),
                asbase::FormatBytes(alloy_mem).c_str(),
                static_cast<long long>(kata_cpu),
                asbase::FormatBytes(kata_guest_bytes).c_str());
    std::fflush(stdout);
  }

  std::printf(
      "\npaper shape: AlloyStack uses ~2.4x less CPU (no guest kernel, no\n"
      "vmexits) and ~3.2x less memory (on-demand modules, no pinned guest\n"
      "RAM) per workflow instance.\n");
  return 0;
}
