// Multi-visor sharding benchmark (DESIGN.md §10):
//
//   1. shard scaling — closed-loop throughput + p99 of a mixed 4-workflow
//      load against AsVisorRouter at 1/2/4/8 shards. Clients call
//      router.Dispatch() directly (no HTTP socket), so the measured path is
//      exactly what sharding changes: the admission herd (one cv per shard
//      vs one global cv) plus the per-shard serving pool. The workload is
//      sleep-bound (~2ms) so admission-path CPU, not the work itself, is
//      the bottleneck — the regime the paper's multi-tenant visor lives in.
//   2. warm p50 parity — one shard must behave like the pre-sharding
//      AsVisor: the bench_serving §1 warm config (pool_size=2, IO workflow)
//      re-run through a 1-shard router, p50 emitted for comparison against
//      BENCH_serving.json.
//
//   3. zipf skew (`--zipf`, DESIGN.md §12) — 8 workflows pinned two-per-shard
//      on a 4-shard mesh, each request drawing its workflow from a Zipf(1.1)
//      distribution, so one shard carries ~47% of the demand while holding
//      25% of the even in-flight budget. Three runs: uniform draw (the fair
//      baseline), zipf with the rebalancer off (the hotspot queues), and
//      zipf with the rebalancer's demand-weighted re-slicing on. The
//      rebalancer should pull the hot shard's p99 back toward the uniform
//      baseline.
//
// `--quick` shrinks to a smoke test (ctest label `serving`). Emits
// BENCH_sharding.json with rps_by_shards / p99_by_shards / speedup_4_vs_1 /
// one_shard_warm_p50_nanos (+ zipf_* with --zipf).

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/visor/visor_router.h"

namespace asbench {
namespace {

using alloy::AsVisor;
using alloy::AsVisorRouter;
using alloy::FunctionContext;
using alloy::FunctionRegistry;
using alloy::FunctionSpec;
using alloy::RouterOptions;
using alloy::StageSpec;
using alloy::WorkflowSpec;

constexpr int kWorkflows = 4;

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

alloy::WfdOptions BenchWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

void RegisterFunctions() {
  // Sleep-bound stage: admitted invocations overlap freely, so throughput
  // is limited by how fast admission can grant slots — the broadcast-herd
  // cost sharding exists to divide.
  FunctionRegistry::Global().Register(
      "bench.shard-sleep", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  // Longer stage for the zipf section: at ~20ms the shard's in-flight slice
  // (capacity = slice / service time), not admission-path CPU, bounds each
  // shard's throughput — the regime demand-weighted re-slicing targets.
  FunctionRegistry::Global().Register(
      "bench.skew-sleep", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  // Same IO body as bench_serving's "bench.serve-io": the parity section
  // must measure the identical workload.
  FunctionRegistry::Global().Register(
      "bench.shard-io", [](FunctionContext& ctx) -> asbase::Status {
        AS_RETURN_IF_ERROR(ctx.as().WriteWholeFile(
            "/serve.bin", Bytes(std::string(4096, 'x'))));
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                            ctx.as().ReadWholeFile("/serve.bin"));
        ctx.SetResult(std::to_string(data.size()));
        return asbase::OkStatus();
      });
}

WorkflowSpec OneStage(const std::string& name, const std::string& fn) {
  WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(StageSpec{{FunctionSpec{fn, 1}}});
  return spec;
}

ashttp::HttpRequest InvokeRequest(const std::string& workflow) {
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/" + workflow;
  return request;
}

struct ShardRun {
  double rps = 0;
  int64_t p99_nanos = 0;
  int64_t completed = 0;
  int64_t errors = 0;
};

// One closed-loop run of the mixed load against an N-shard router.
ShardRun RunMixedLoad(size_t shards, int clients, int requests_per_client) {
  ShardRun run;
  RouterOptions router_options;
  router_options.shards = shards;
  AsVisorRouter router(router_options);
  for (int i = 0; i < kWorkflows; ++i) {
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 8;
    options.max_concurrency = 8;
    options.queue_capacity = 256;       // deep queue: block, don't reject
    options.queueing_budget_ms = 60'000;
    options.pin_shard = i;  // spread the four workflows round-robin
    router.RegisterWorkflow(
        OneStage("mix-" + std::to_string(i), "bench.shard-sleep"), options);
  }
  AsVisor::ServingOptions serving;
  serving.worker_threads = 64;  // divided across shards by the router
  serving.max_inflight = 32;
  if (!router.StartWatchdog(0, serving).ok()) {
    std::fprintf(stderr, "watchdog start failed at %zu shards\n", shards);
    return run;
  }

  // Warm every pool outside the measured window (direct Invoke is not
  // admission-gated) so the closed loop measures steady state.
  for (int i = 0; i < kWorkflows; ++i) {
    for (int j = 0; j < 2; ++j) {
      (void)router.Invoke("mix-" + std::to_string(i), asbase::Json());
    }
  }

  asbase::Histogram latency;
  std::mutex latency_mutex;
  std::atomic<int64_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const int64_t start = asbase::MonoNanos();
  for (int c = 0; c < clients; ++c) {
    const std::string workflow = "mix-" + std::to_string(c % kWorkflows);
    threads.emplace_back([&, workflow] {
      const ashttp::HttpRequest request = InvokeRequest(workflow);
      for (int i = 0; i < requests_per_client; ++i) {
        const int64_t t0 = asbase::MonoNanos();
        const ashttp::HttpResponse response = router.Dispatch(request);
        if (response.status == 200) {
          std::lock_guard<std::mutex> lock(latency_mutex);
          latency.Record(asbase::MonoNanos() - t0);
        } else {
          ++errors;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double seconds = static_cast<double>(asbase::MonoNanos() - start) / 1e9;
  router.StopWatchdog();

  run.completed = latency.count();
  run.errors = errors.load();
  run.rps = seconds > 0 ? static_cast<double>(run.completed) / seconds : 0;
  run.p99_nanos = latency.Percentile(0.99);
  return run;
}

// Zipf(s) over `n` workflows as a cumulative distribution; a client draws
// one uniform double per request and walks the table.
std::vector<double> ZipfCdf(int n, double s) {
  std::vector<double> cdf(static_cast<size_t>(n), 0);
  double sum = 0;
  for (int k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[static_cast<size_t>(k)] = sum;
  }
  for (double& value : cdf) {
    value /= sum;
  }
  return cdf;
}

// One closed-loop run of the skewed load against a 4-shard mesh. `zipf`
// false = uniform workflow draw (fair baseline); `rebalance_on` wires the
// ShardRebalancer into the watchdog so demand-weighted re-slicing chases the
// hotspot. The first `warmup_per_client` requests per client are driven but
// not recorded, giving the control loop (cooldown 50ms) time to converge
// before the measured window opens — the same grace both baseline runs get.
ShardRun RunSkewedLoad(bool zipf, bool rebalance_on, int clients,
                       int warmup_per_client, int measured_per_client,
                       std::vector<size_t>* final_slices) {
  constexpr int kSkewWorkflows = 8;
  constexpr size_t kSkewShards = 4;
  ShardRun run;
  RouterOptions router_options;
  router_options.shards = kSkewShards;
  if (rebalance_on) {
    router_options.rebalancer.enabled = true;
    router_options.rebalancer.interval_ms = 10;
    router_options.rebalancer.cooldown_ms = 50;
    router_options.rebalancer.reslice_deadband = 2;
    router_options.rebalancer.migrate = false;  // every workflow is pinned
    router_options.rebalancer.scale = false;
  }
  AsVisorRouter router(router_options);
  for (int i = 0; i < kSkewWorkflows; ++i) {
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 8;
    // Per-workflow concurrency far above any shard slice, so the SHARD
    // budget — the thing re-slicing moves — is the binding constraint.
    options.max_concurrency = 32;
    options.queue_capacity = 512;
    options.queueing_budget_ms = 60'000;
    options.pin_shard = i % static_cast<int>(kSkewShards);
    router.RegisterWorkflow(
        OneStage("skew-" + std::to_string(i), "bench.skew-sleep"), options);
  }
  AsVisor::ServingOptions serving;
  serving.worker_threads = 64;
  serving.max_inflight = 32;
  if (!router.StartWatchdog(0, serving).ok()) {
    std::fprintf(stderr, "watchdog start failed for skew run\n");
    return run;
  }
  for (int i = 0; i < kSkewWorkflows; ++i) {
    for (int j = 0; j < 2; ++j) {
      (void)router.Invoke("skew-" + std::to_string(i), asbase::Json());
    }
  }

  const std::vector<double> cdf = ZipfCdf(kSkewWorkflows, 1.1);
  asbase::Histogram latency;
  std::mutex latency_mutex;
  std::atomic<int64_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const int64_t start = asbase::MonoNanos();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      asbase::Rng rng(0x5eedULL + static_cast<uint64_t>(c));
      for (int i = 0; i < warmup_per_client + measured_per_client; ++i) {
        size_t workflow = 0;
        if (zipf) {
          const double u = rng.NextDouble();
          while (workflow + 1 < cdf.size() && u >= cdf[workflow]) {
            ++workflow;
          }
        } else {
          workflow = rng.Below(kSkewWorkflows);
        }
        const int64_t t0 = asbase::MonoNanos();
        const ashttp::HttpResponse response = router.Dispatch(
            InvokeRequest("skew-" + std::to_string(workflow)));
        if (response.status != 200) {
          ++errors;
        } else if (i >= warmup_per_client) {
          std::lock_guard<std::mutex> lock(latency_mutex);
          latency.Record(asbase::MonoNanos() - t0);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double seconds = static_cast<double>(asbase::MonoNanos() - start) / 1e9;
  if (final_slices != nullptr) {
    final_slices->clear();
    for (size_t i = 0; i < router.shard_count(); ++i) {
      final_slices->push_back(router.shard(i).max_inflight());
    }
  }
  router.StopWatchdog();

  run.completed = latency.count();
  run.errors = errors.load();
  run.rps = seconds > 0 ? static_cast<double>(run.completed) / seconds : 0;
  run.p99_nanos = latency.Percentile(0.99);
  return run;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  bool zipf = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
    if (std::strcmp(argv[i], "--zipf") == 0) {
      zipf = true;
    }
  }
  const std::vector<size_t> shard_counts =
      quick ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  const int clients = quick ? 16 : 256;
  const int requests_per_client = quick ? 5 : 25;
  const int parity_n = quick ? 20 : 200;

  PrintHeader("sharding", "per-core visor shards behind a consistent-hash "
                          "router");
  RegisterFunctions();

  asbase::Json doc;
  doc.Set("bench", "sharding");
  doc.Set("scale", asbase::SimCostModel::Global().scale);
  doc.Set("quick", quick);

  // ------------------------------------------------------- 1. shard scaling
  std::printf("\nmixed load: %d workflows, %d closed-loop clients x %d "
              "requests (sleep ~2ms)\n",
              kWorkflows, clients, requests_per_client);
  std::printf("  %-8s %10s %10s %10s %8s\n", "shards", "RPS", "p99", "done",
              "errors");
  asbase::Json rps_json{asbase::JsonObject{}};
  asbase::Json p99_json{asbase::JsonObject{}};
  double rps_1 = 0;
  double rps_4 = 0;
  for (size_t shards : shard_counts) {
    const ShardRun run = RunMixedLoad(shards, clients, requests_per_client);
    std::printf("  %-8zu %10.0f %10s %10lld %8lld\n", shards, run.rps,
                Ms(run.p99_nanos).c_str(),
                static_cast<long long>(run.completed),
                static_cast<long long>(run.errors));
    rps_json.Set(std::to_string(shards), run.rps);
    p99_json.Set(std::to_string(shards), run.p99_nanos);
    if (shards == 1) {
      rps_1 = run.rps;
    }
    if (shards == 4) {
      rps_4 = run.rps;
    }
  }
  doc.Set("rps_by_shards", std::move(rps_json));
  doc.Set("p99_by_shards", std::move(p99_json));
  if (rps_1 > 0 && rps_4 > 0) {
    std::printf("  4-shard vs 1-shard speedup: %.2fx\n", rps_4 / rps_1);
    doc.Set("speedup_4_vs_1", rps_4 / rps_1);
  }

  // --------------------------------------------------- 2. warm p50 parity
  // bench_serving §1 warm config through a 1-shard router: sharding must
  // not tax the single-tenant warm path.
  {
    RouterOptions router_options;
    router_options.shards = 1;
    AsVisorRouter router(router_options);
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 2;
    router.RegisterWorkflow(OneStage("shard-warm", "bench.shard-io"), options);
    asbase::Histogram warm_hist;
    for (int i = 0; i < parity_n; ++i) {
      auto invoked = router.Invoke("shard-warm", asbase::Json());
      if (invoked.ok()) {
        warm_hist.Record(invoked->end_to_end_nanos);
      }
    }
    std::printf("\n1-shard warm closed loop (%d invocations, IO workflow): "
                "p50 %s  p99 %s\n",
                parity_n, Ms(warm_hist.Percentile(0.5)).c_str(),
                Ms(warm_hist.Percentile(0.99)).c_str());
    doc.Set("one_shard_warm_p50_nanos", warm_hist.Percentile(0.5));
    doc.Set("one_shard_warm", warm_hist.ToJson());
  }

  // ------------------------------------------- 3. zipf skew + rebalancer
  if (zipf) {
    const int skew_clients = quick ? 32 : 192;
    const int skew_warmup = quick ? 3 : 10;
    const int skew_measured = quick ? 8 : 50;
    std::printf("\nzipf skew: 8 workflows pinned 2-per-shard on 4 shards, "
                "%d clients x %d requests (Zipf s=1.1)\n",
                skew_clients, skew_measured);
    std::printf("  %-24s %10s %10s %10s %8s\n", "run", "RPS", "p99", "done",
                "errors");
    auto print_run = [](const char* name, const ShardRun& run) {
      std::printf("  %-24s %10.0f %10s %10lld %8lld\n", name, run.rps,
                  Ms(run.p99_nanos).c_str(),
                  static_cast<long long>(run.completed),
                  static_cast<long long>(run.errors));
    };
    const ShardRun uniform = RunSkewedLoad(
        false, false, skew_clients, skew_warmup, skew_measured, nullptr);
    print_run("uniform", uniform);
    const ShardRun skew_off = RunSkewedLoad(
        true, false, skew_clients, skew_warmup, skew_measured, nullptr);
    print_run("zipf, rebalancer off", skew_off);
    std::vector<size_t> slices;
    const ShardRun skew_on = RunSkewedLoad(
        true, true, skew_clients, skew_warmup, skew_measured, &slices);
    print_run("zipf, rebalancer on", skew_on);
    std::string slices_text;
    asbase::Json slices_json{asbase::JsonArray{}};
    for (size_t slice : slices) {
      if (!slices_text.empty()) {
        slices_text += "/";
      }
      slices_text += std::to_string(slice);
      slices_json.Append(static_cast<int64_t>(slice));
    }
    std::printf("  final slices with rebalancer: %s (even would be 8/8/8/8)\n",
                slices_text.c_str());
    doc.Set("zipf_uniform_p99_nanos", uniform.p99_nanos);
    doc.Set("zipf_off_p99_nanos", skew_off.p99_nanos);
    doc.Set("zipf_on_p99_nanos", skew_on.p99_nanos);
    doc.Set("zipf_final_slices", std::move(slices_json));
    if (skew_on.p99_nanos > 0) {
      const double vs_off = static_cast<double>(skew_off.p99_nanos) /
                            static_cast<double>(skew_on.p99_nanos);
      const double vs_uniform = static_cast<double>(skew_on.p99_nanos) /
                                static_cast<double>(uniform.p99_nanos);
      std::printf("  rebalancer-on p99 is %.2fx better than off, %.2fx the "
                  "uniform baseline\n",
                  vs_off, vs_uniform);
      doc.Set("zipf_on_vs_off_p99", vs_off);
      doc.Set("zipf_on_vs_uniform_p99", vs_uniform);
    }
  }

  const std::string text = doc.Dump(2);
  if (FILE* f = std::fopen("BENCH_sharding.json", "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nresults written to BENCH_sharding.json\n");
  }
  return 0;
}

}  // namespace asbench

int main(int argc, char** argv) { return asbench::Main(argc, argv); }
