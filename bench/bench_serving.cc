// Serving-layer benchmark (DESIGN.md §8, EXPERIMENTS.md "serving"):
//
//   1. warm vs cold closed loop  — end-to-end p50/p99 with the WFD pool on
//      (pool_size=2) vs off (pool_size=0), plus the steady-state pool hit
//      rate, for an IO workflow whose cold start pays fdtab+fatfs loads.
//   2. RPS scaling              — closed-loop throughput over the watchdog
//      HTTP path while sweeping per-workflow max_concurrency.
//   3. saturation               — a burst past max_concurrency, counting
//      429 rejections vs 200 completions.
//   4. open loop                — fixed-rate arrivals, end-to-end latency
//      distribution under the admission caps.
//   5. spike                    — the same concurrent burst against three
//      admission configs: pure-reject (429 + client retry), queue-with-
//      budget, and queue + pre-warmed floor. Compares time-to-success p99
//      and cold-start counts.
//
// `--quick` shrinks every section to a smoke test (compile-and-run checked
// by ctest, label `serving`). Emits BENCH_serving.json.
//
// `--obs-overhead` runs only the flight-recorder overhead comparison: the
// warm closed loop with the recorder at its default ring size vs disabled
// (ALLOY_FLIGHT_RING=0), emitting BENCH_obs.json with the warm p50 for both
// and the relative overhead. The acceptance bar is <= 3%.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace asbench {
namespace {

using alloy::AsVisor;
using alloy::FunctionContext;
using alloy::FunctionRegistry;
using alloy::FunctionSpec;
using alloy::StageSpec;
using alloy::WorkflowSpec;

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

alloy::WfdOptions BenchWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

void RegisterFunctions() {
  // IO workflow: write + read a small file. A cold WFD pays the fdtab and
  // fatfs module loads here; a warm one only pays the file operations.
  FunctionRegistry::Global().Register(
      "bench.serve-io", [](FunctionContext& ctx) -> asbase::Status {
        AS_RETURN_IF_ERROR(
            ctx.as().WriteWholeFile("/serve.bin", Bytes(std::string(4096, 'x'))));
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                            ctx.as().ReadWholeFile("/serve.bin"));
        ctx.SetResult(std::to_string(data.size()));
        return asbase::OkStatus();
      });
  // CPU workflow: ~2ms of wall time, so throughput scales with concurrency
  // until the admission caps (not the work) become the limit.
  FunctionRegistry::Global().Register(
      "bench.serve-cpu", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
  // IO workflow that rendezvouses with a sibling invocation, so a pair of
  // concurrent invokes deterministically overlaps: the second one misses
  // the (depth-1) pool and must clone-boot from the snapshot template.
  FunctionRegistry::Global().Register(
      "bench.serve-io-block", [](FunctionContext& ctx) -> asbase::Status {
        auto* gate = reinterpret_cast<std::atomic<int>*>(
            static_cast<uintptr_t>(ctx.params()["gate"].as_int()));
        if (gate != nullptr) {
          gate->fetch_add(1);
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(5);
          while (gate->load() < 2 &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
        }
        AS_RETURN_IF_ERROR(
            ctx.as().WriteWholeFile("/serve.bin", Bytes(std::string(4096, 'x'))));
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                            ctx.as().ReadWholeFile("/serve.bin"));
        ctx.SetResult(std::to_string(data.size()));
        return asbase::OkStatus();
      });
}

WorkflowSpec OneStage(const std::string& name, const std::string& fn) {
  WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(StageSpec{{FunctionSpec{fn, 1}}});
  return spec;
}

uint64_t PoolCounter(const std::string& name, const std::string& workflow) {
  return asobs::Registry::Global()
      .GetCounter(name, {{"workflow", workflow}})
      .value();
}

ashttp::HttpRequest InvokeRequest(const std::string& workflow) {
  ashttp::HttpRequest request;
  request.method = "POST";
  request.target = "/invoke/" + workflow;
  return request;
}

// Build a warm-pool visor for the flight-recorder overhead comparison. The
// ring size env var is read in the AsVisor constructor, so each mode gets
// its own visor.
std::unique_ptr<AsVisor> ObsOverheadVisor(const char* flight_ring,
                                          const std::string& workflow) {
  if (flight_ring != nullptr) {
    setenv("ALLOY_FLIGHT_RING", flight_ring, 1);
  } else {
    unsetenv("ALLOY_FLIGHT_RING");
  }
  auto visor = std::make_unique<AsVisor>();
  unsetenv("ALLOY_FLIGHT_RING");
  AsVisor::WorkflowOptions options;
  options.wfd = BenchWfd();
  options.pool_size = 2;
  visor->RegisterWorkflow(OneStage(workflow, "bench.serve-io"), options);
  return visor;
}

int ObsOverheadMain(bool quick) {
  PrintHeader("serving --obs-overhead",
              "flight recorder on vs off, warm closed loop");
  RegisterFunctions();
  const int rounds = quick ? 4 : 20;
  const int batch = quick ? 10 : 20;
  const int iterations = rounds * batch;

  std::unique_ptr<AsVisor> visor_off = ObsOverheadVisor("0", "obs-off");
  std::unique_ptr<AsVisor> visor_on = ObsOverheadVisor(nullptr, "obs-on");

  // Warm both pools so the comparison measures the steady warm path.
  for (int i = 0; i < std::max(4, batch); ++i) {
    (void)visor_off->Invoke("obs-off", asbase::Json());
    (void)visor_on->Invoke("obs-on", asbase::Json());
  }

  // Interleave A/B batches: machine-wide drift (page cache, frequency
  // scaling, a noisy neighbour) lands on both modes instead of biasing one.
  asbase::Histogram off;
  asbase::Histogram on;
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < batch; ++i) {
      auto r = visor_off->Invoke("obs-off", asbase::Json());
      if (r.ok()) {
        off.Record(r->end_to_end_nanos);
      }
    }
    for (int i = 0; i < batch; ++i) {
      auto r = visor_on->Invoke("obs-on", asbase::Json());
      if (r.ok()) {
        on.Record(r->end_to_end_nanos);
      }
    }
  }

  const int64_t p50_off = std::max<int64_t>(off.Percentile(0.5), 1);
  const int64_t p50_on = on.Percentile(0.5);
  const double overhead_pct =
      100.0 * (static_cast<double>(p50_on) - static_cast<double>(p50_off)) /
      static_cast<double>(p50_off);

  std::printf("\nwarm closed loop, %d invocations each (IO workflow)\n",
              iterations);
  std::printf("  %-22s %10s %10s\n", "", "p50", "p99");
  std::printf("  %-22s %10s %10s\n", "recorder off (ring=0)",
              Ms(off.Percentile(0.5)).c_str(),
              Ms(off.Percentile(0.99)).c_str());
  std::printf("  %-22s %10s %10s\n", "recorder on (default)",
              Ms(on.Percentile(0.5)).c_str(), Ms(on.Percentile(0.99)).c_str());
  std::printf("  flight-recorder overhead at warm p50: %+.2f%%\n",
              overhead_pct);

  asbase::Json doc;
  doc.Set("bench", "obs-overhead");
  doc.Set("quick", quick);
  doc.Set("iterations", static_cast<int64_t>(iterations));
  doc.Set("p50_recorder_on_nanos", p50_on);
  doc.Set("p50_recorder_off_nanos", static_cast<int64_t>(p50_off));
  doc.Set("p99_recorder_on_nanos", on.Percentile(0.99));
  doc.Set("p99_recorder_off_nanos", off.Percentile(0.99));
  doc.Set("overhead_pct", std::round(overhead_pct * 100.0) / 100.0);
  doc.Set("within_3pct_budget", overhead_pct <= 3.0);
  asbase::Json series{asbase::JsonObject{}};
  series.Set("recorder_on", on.ToJson());
  series.Set("recorder_off", off.ToJson());
  doc.Set("series", std::move(series));
  const std::string text = doc.Dump(2);
  if (FILE* f = std::fopen("BENCH_obs.json", "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nresults written to BENCH_obs.json\n");
  }
  return 0;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  bool obs_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--obs-overhead") == 0) {
      obs_overhead = true;
    }
  }
  if (obs_overhead) {
    return ObsOverheadMain(quick);
  }
  const int closed_loop_n = quick ? 20 : 200;
  const int rps_requests_per_client = quick ? 10 : 100;
  const int open_loop_n = quick ? 20 : 200;

  PrintHeader("serving", "warm pool + concurrent invocation pipeline");
  RegisterFunctions();

  asbase::Json doc;
  doc.Set("bench", "serving");
  doc.Set("scale", asbase::SimCostModel::Global().scale);
  doc.Set("quick", quick);
  asbase::Json series{asbase::JsonObject{}};

  // ------------------------------------------------- 1. warm vs cold p50/p99
  asbase::Histogram cold_hist;
  asbase::Histogram warm_hist;
  {
    AsVisor visor;
    AsVisor::WorkflowOptions cold_options;
    cold_options.wfd = BenchWfd();
    cold_options.pool_size = 0;  // cold-start every invocation
    visor.RegisterWorkflow(OneStage("serve-cold", "bench.serve-io"),
                           cold_options);
    AsVisor::WorkflowOptions warm_options;
    warm_options.wfd = BenchWfd();
    warm_options.pool_size = 2;
    visor.RegisterWorkflow(OneStage("serve-warm", "bench.serve-io"),
                           warm_options);

    for (int i = 0; i < closed_loop_n; ++i) {
      auto r = visor.Invoke("serve-cold", asbase::Json());
      if (r.ok()) {
        cold_hist.Record(r->end_to_end_nanos);
      }
    }
    for (int i = 0; i < closed_loop_n; ++i) {
      auto r = visor.Invoke("serve-warm", asbase::Json());
      if (r.ok()) {
        warm_hist.Record(r->end_to_end_nanos);
      }
    }
    const uint64_t hits = PoolCounter("alloy_visor_pool_hits_total",
                                      "serve-warm");
    const uint64_t misses = PoolCounter("alloy_visor_pool_misses_total",
                                        "serve-warm");
    const double hit_rate =
        hits + misses == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(hits + misses);
    std::printf("\nclosed loop, %d invocations each (IO workflow)\n",
                closed_loop_n);
    std::printf("  %-18s %10s %10s\n", "", "p50", "p99");
    std::printf("  %-18s %10s %10s\n", "cold (pool off)",
                Ms(cold_hist.Percentile(0.5)).c_str(),
                Ms(cold_hist.Percentile(0.99)).c_str());
    std::printf("  %-18s %10s %10s\n", "warm (pool=2)",
                Ms(warm_hist.Percentile(0.5)).c_str(),
                Ms(warm_hist.Percentile(0.99)).c_str());
    std::printf("  warm/cold p50 speedup: %.1fx   pool hit rate: %.1f%%\n",
                static_cast<double>(cold_hist.Percentile(0.5)) /
                    static_cast<double>(std::max<int64_t>(
                        warm_hist.Percentile(0.5), 1)),
                100.0 * hit_rate);
    series.Set("cold", cold_hist.ToJson());
    series.Set("warm", warm_hist.ToJson());
    doc.Set("pool_hit_rate", hit_rate);
    doc.Set("warm_cold_p50_speedup",
            static_cast<double>(cold_hist.Percentile(0.5)) /
                static_cast<double>(
                    std::max<int64_t>(warm_hist.Percentile(0.5), 1)));
  }

  // ------------------------------------- 1b. snapshot clone boot on a miss
  // Pool misses after the first invocation clone-boot from the snapshot
  // template (DESIGN.md §14) instead of paying a full cold start. Pairs of
  // rendezvoused invocations force one warm lease + one miss per round; the
  // miss's end-to-end latency is the clone row.
  {
    asbase::Histogram clone_hist;
    AsVisor visor;
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 1;
    options.max_concurrency = 2;
    visor.RegisterWorkflow(OneStage("serve-snap", "bench.serve-io-block"),
                           options);
    const uint64_t clones0 =
        PoolCounter("alloy_visor_snapshot_clones_total", "serve-snap");
    // First invocation boots, invokes, resets, and captures the template.
    (void)visor.Invoke("serve-snap", asbase::Json());
    const int pairs = std::max(closed_loop_n / 4, 2);
    std::atomic<int> gate{0};
    asbase::Json params;
    params.Set("gate",
               static_cast<int64_t>(reinterpret_cast<uintptr_t>(&gate)));
    for (int i = 0; i < pairs; ++i) {
      gate.store(0);
      asbase::Result<alloy::InvokeResult> r1 = asbase::Unavailable("unset");
      asbase::Result<alloy::InvokeResult> r2 = asbase::Unavailable("unset");
      std::thread t1([&] { r1 = visor.Invoke("serve-snap", params); });
      std::thread t2([&] { r2 = visor.Invoke("serve-snap", params); });
      t1.join();
      t2.join();
      for (const auto* r : {&r1, &r2}) {
        if (r->ok() && (**r).clone_start) {
          clone_hist.Record((**r).end_to_end_nanos);
        }
      }
    }
    const uint64_t clones =
        PoolCounter("alloy_visor_snapshot_clones_total", "serve-snap") -
        clones0;
    std::printf("  %-18s %10s %10s  (%llu clone boots, counter-proved)\n",
                "miss (clone boot)", Ms(clone_hist.Percentile(0.5)).c_str(),
                Ms(clone_hist.Percentile(0.99)).c_str(),
                static_cast<unsigned long long>(clones));
    series.Set("clone", clone_hist.ToJson());
    doc.Set("snapshot_clones_delta", static_cast<int64_t>(clones));
  }

  // ------------------------------------------------------- 2. RPS scaling
  {
    std::printf("\nclosed-loop RPS over the watchdog (CPU workflow, ~2ms)\n");
    std::printf("  %-16s %10s %10s\n", "max_concurrency", "RPS", "p99");
    asbase::Json rps_json{asbase::JsonObject{}};
    for (int concurrency : {1, 2, 4, 8}) {
      AsVisor visor;
      AsVisor::WorkflowOptions options;
      options.wfd = BenchWfd();
      options.pool_size = static_cast<size_t>(concurrency);
      options.max_concurrency = concurrency;
      visor.RegisterWorkflow(OneStage("serve-cpu", "bench.serve-cpu"),
                             options);
      AsVisor::ServingOptions serving;
      serving.worker_threads = 16;
      serving.max_inflight = 64;
      if (!visor.StartWatchdog(0, serving).ok()) {
        std::fprintf(stderr, "watchdog start failed\n");
        continue;
      }
      // One closed-loop client per admitted slot: no rejections, the
      // workflow's concurrency cap is the only throttle.
      asbase::Histogram latency;
      std::mutex latency_mutex;
      const int64_t start = asbase::MonoNanos();
      std::vector<std::thread> clients;
      for (int c = 0; c < concurrency; ++c) {
        clients.emplace_back([&] {
          for (int i = 0; i < rps_requests_per_client; ++i) {
            const int64_t t0 = asbase::MonoNanos();
            auto response = ashttp::HttpCall("127.0.0.1",
                                             visor.watchdog_port(),
                                             InvokeRequest("serve-cpu"));
            if (response.ok() && response->status == 200) {
              std::lock_guard<std::mutex> lock(latency_mutex);
              latency.Record(asbase::MonoNanos() - t0);
            }
          }
        });
      }
      for (auto& client : clients) {
        client.join();
      }
      const double seconds =
          static_cast<double>(asbase::MonoNanos() - start) / 1e9;
      const double rps = static_cast<double>(latency.count()) / seconds;
      std::printf("  %-16d %10.0f %10s\n", concurrency, rps,
                  Ms(latency.Percentile(0.99)).c_str());
      rps_json.Set(std::to_string(concurrency), rps);
      series.Set("http_c" + std::to_string(concurrency), latency.ToJson());
      visor.StopWatchdog();
    }
    doc.Set("rps_by_concurrency", std::move(rps_json));
  }

  // --------------------------------------------------------- 3. saturation
  {
    AsVisor visor;
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 2;
    options.max_concurrency = 2;
    visor.RegisterWorkflow(OneStage("serve-sat", "bench.serve-cpu"), options);
    AsVisor::ServingOptions serving;
    serving.worker_threads = 16;
    serving.max_inflight = 64;
    if (visor.StartWatchdog(0, serving).ok()) {
      const int burst = quick ? 8 : 16;
      std::atomic<int> completed{0};
      std::atomic<int> rejected{0};
      std::vector<std::thread> clients;
      for (int i = 0; i < burst; ++i) {
        clients.emplace_back([&] {
          auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                           InvokeRequest("serve-sat"));
          if (!response.ok()) {
            return;
          }
          if (response->status == 200) {
            ++completed;
          } else if (response->status == 429) {
            ++rejected;
          }
        });
      }
      for (auto& client : clients) {
        client.join();
      }
      std::printf("\nburst of %d at max_concurrency=2: %d completed, "
                  "%d rejected (429)\n",
                  burst, completed.load(), rejected.load());
      doc.Set("saturation_burst", static_cast<int64_t>(burst));
      doc.Set("saturation_completed", static_cast<int64_t>(completed.load()));
      doc.Set("saturation_rejected", static_cast<int64_t>(rejected.load()));
      visor.StopWatchdog();
    }
  }

  // ----------------------------------------------------------- 4. open loop
  {
    AsVisor visor;
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 4;
    options.max_concurrency = 8;
    visor.RegisterWorkflow(OneStage("serve-open", "bench.serve-cpu"), options);
    AsVisor::ServingOptions serving;
    serving.worker_threads = 16;
    serving.max_inflight = 64;
    if (visor.StartWatchdog(0, serving).ok()) {
      // Fixed-rate arrivals at 200 req/s (5ms spacing), each request on its
      // own thread so a slow response never delays the next arrival.
      asbase::Histogram open_latency;
      std::mutex open_mutex;
      std::atomic<int> open_rejected{0};
      std::vector<std::thread> arrivals;
      const int64_t interval_nanos = 5'000'000;
      const int64_t t0 = asbase::MonoNanos();
      for (int i = 0; i < open_loop_n; ++i) {
        const int64_t due = t0 + i * interval_nanos;
        while (asbase::MonoNanos() < due) {
          std::this_thread::yield();
        }
        arrivals.emplace_back([&] {
          const int64_t sent = asbase::MonoNanos();
          auto response = ashttp::HttpCall("127.0.0.1", visor.watchdog_port(),
                                           InvokeRequest("serve-open"));
          if (response.ok() && response->status == 200) {
            std::lock_guard<std::mutex> lock(open_mutex);
            open_latency.Record(asbase::MonoNanos() - sent);
          } else if (response.ok() && response->status == 429) {
            ++open_rejected;
          }
        });
      }
      for (auto& arrival : arrivals) {
        arrival.join();
      }
      std::printf("\nopen loop, 200 req/s for %d arrivals: %s (rejected: %d)\n",
                  open_loop_n, open_latency.Summary().c_str(),
                  open_rejected.load());
      series.Set("open_loop", open_latency.ToJson());
      doc.Set("open_loop_rejected", static_cast<int64_t>(open_rejected.load()));
      visor.StopWatchdog();
    }
  }

  // --------------------------------------------------------------- 5. spike
  {
    // The same burst hits three admission configs. Every client loops until
    // it gets a 200 (pure-reject clients retry 429s with a fixed 5ms
    // backoff), so the histograms measure time-to-success at identical
    // offered load — the metric a caller with a retry loop actually sees.
    struct SpikeResult {
      asbase::Histogram latency;
      int cold_starts = 0;
      int retries = 0;
      int failures = 0;
    };
    const int spike_burst = quick ? 12 : 32;
    auto run_spike = [&](const std::string& name, size_t queue_capacity,
                         size_t min_warm, bool retry_on_429) {
      SpikeResult result;
      AsVisor visor;
      AsVisor::WorkflowOptions options;
      options.wfd = BenchWfd();
      options.pool_size = 4;
      options.max_concurrency = 4;
      options.min_warm = min_warm;
      options.queue_capacity = queue_capacity;
      options.queueing_budget_ms = 10'000;
      visor.RegisterWorkflow(OneStage(name, "bench.serve-io"), options);
      if (min_warm > 0) {
        // Let the warmer reach the floor so the spike lands on a warm pool.
        const int64_t give_up = asbase::MonoNanos() + 10'000'000'000;
        while (asbase::MonoNanos() < give_up) {
          auto warm = visor.WarmWfdCount(name);
          if (warm.ok() && *warm >= min_warm) {
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      AsVisor::ServingOptions serving;
      serving.worker_threads = 16;
      serving.max_inflight = 64;
      if (!visor.StartWatchdog(0, serving).ok()) {
        std::fprintf(stderr, "watchdog start failed\n");
        return result;
      }
      std::mutex mutex;
      std::vector<std::thread> clients;
      for (int i = 0; i < spike_burst; ++i) {
        clients.emplace_back([&] {
          const int64_t sent = asbase::MonoNanos();
          for (int attempt = 0; attempt < 200; ++attempt) {
            auto response = ashttp::HttpCall(
                "127.0.0.1", visor.watchdog_port(), InvokeRequest(name));
            if (response.ok() && response->status == 200) {
              bool cold = false;
              if (auto body = asbase::Json::Parse(response->body); body.ok()) {
                cold = !(*body)["warm_start"].as_bool(true);
              }
              std::lock_guard<std::mutex> lock(mutex);
              result.latency.Record(asbase::MonoNanos() - sent);
              if (cold) {
                ++result.cold_starts;
              }
              return;
            }
            if (response.ok() && response->status == 429 && retry_on_429) {
              {
                std::lock_guard<std::mutex> lock(mutex);
                ++result.retries;
              }
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
              continue;
            }
            break;
          }
          std::lock_guard<std::mutex> lock(mutex);
          ++result.failures;
        });
      }
      for (auto& client : clients) {
        client.join();
      }
      visor.StopWatchdog();
      return result;
    };

    SpikeResult reject = run_spike("spike-reject", 0, 0, true);
    SpikeResult queued = run_spike("spike-queue",
                                   static_cast<size_t>(spike_burst), 0, false);
    SpikeResult prewarm = run_spike(
        "spike-prewarm", static_cast<size_t>(spike_burst), 4, false);

    std::printf("\nspike of %d concurrent (IO workflow, max_concurrency=4)\n",
                spike_burst);
    std::printf("  %-22s %10s %10s %8s %8s\n", "", "p50", "p99", "cold",
                "retries");
    auto print_row = [](const char* label, const SpikeResult& r) {
      std::printf("  %-22s %10s %10s %8d %8d\n", label,
                  Ms(r.latency.Percentile(0.5)).c_str(),
                  Ms(r.latency.Percentile(0.99)).c_str(), r.cold_starts,
                  r.retries);
    };
    print_row("pure-reject + retry", reject);
    print_row("queue-with-budget", queued);
    print_row("queue + prewarm", prewarm);
    if (reject.failures + queued.failures + prewarm.failures > 0) {
      std::printf("  failures: reject=%d queue=%d prewarm=%d\n",
                  reject.failures, queued.failures, prewarm.failures);
    }
    std::printf("  queue+prewarm vs pure-reject p99: %.1fx\n",
                static_cast<double>(reject.latency.Percentile(0.99)) /
                    static_cast<double>(std::max<int64_t>(
                        prewarm.latency.Percentile(0.99), 1)));

    series.Set("spike_reject", reject.latency.ToJson());
    series.Set("spike_queue", queued.latency.ToJson());
    series.Set("spike_prewarm", prewarm.latency.ToJson());
    doc.Set("spike_burst", static_cast<int64_t>(spike_burst));
    doc.Set("spike_reject_p99_nanos", reject.latency.Percentile(0.99));
    doc.Set("spike_queue_p99_nanos", queued.latency.Percentile(0.99));
    doc.Set("spike_prewarm_p99_nanos", prewarm.latency.Percentile(0.99));
    doc.Set("spike_reject_retries", static_cast<int64_t>(reject.retries));
    doc.Set("spike_reject_cold_starts",
            static_cast<int64_t>(reject.cold_starts));
    doc.Set("spike_queue_cold_starts",
            static_cast<int64_t>(queued.cold_starts));
    doc.Set("spike_prewarm_cold_starts",
            static_cast<int64_t>(prewarm.cold_starts));
    doc.Set("spike_prewarm_beats_reject_p99",
            prewarm.latency.Percentile(0.99) <
                reject.latency.Percentile(0.99));
  }

  doc.Set("series", std::move(series));
  const std::string text = doc.Dump(2);
  if (FILE* f = std::fopen("BENCH_serving.json", "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nresults written to BENCH_serving.json\n");
  }
  return 0;
}

}  // namespace asbench

int main(int argc, char** argv) { return asbench::Main(argc, argv); }
