// Table 1: as-libos modules required by different serverless functions.
//
// The paper derives this table by analyzing ServerlessBench functions. Here
// the table is *measured*: each representative function runs in a fresh WFD
// and the on-demand loader records exactly which modules it pulled in.

#include <sys/stat.h>

#include <cstring>

#include "bench/bench_util.h"

namespace {

using namespace asbench;

// Representative single-purpose functions in the spirit of Table 1.
void RegisterTableFunctions() {
  auto& registry = alloy::FunctionRegistry::Global();

  registry.Register("tab1.alu", [](alloy::FunctionContext& ctx) {
    // Pure compute over a heap scratch buffer: mm only.
    auto buffer = ctx.as().AllocBuffer("scratch", 4096, 1);
    if (buffer.ok()) {
      for (size_t i = 0; i < buffer->bytes.size(); ++i) {
        buffer->bytes[i] = static_cast<uint8_t>(i * 31);
      }
      auto taken = ctx.as().AcquireBuffer("scratch", 1);
      if (taken.ok()) {
        ctx.as().FreeBuffer(*taken);
      }
    }
    return asbase::OkStatus();
  });

  registry.Register("tab1.long-chain", [](alloy::FunctionContext& ctx) {
    auto buffer = ctx.as().AllocBuffer("hop", 1024, 3);
    if (buffer.ok()) {
      auto taken = ctx.as().AcquireBuffer("hop", 3);
      if (taken.ok()) {
        ctx.as().FreeBuffer(*taken);
      }
    }
    return asbase::OkStatus();
  });

  registry.Register("tab1.transform-metadata",
                    [](alloy::FunctionContext& ctx) -> asbase::Status {
                      AS_ASSIGN_OR_RETURN(int64_t now, ctx.as().NowMicros());
                      auto buffer = ctx.as().AllocBuffer("meta", 256, 2);
                      if (buffer.ok()) {
                        std::memcpy(buffer->bytes.data(), &now, sizeof(now));
                        auto taken = ctx.as().AcquireBuffer("meta", 2);
                        if (taken.ok()) {
                          ctx.as().FreeBuffer(*taken);
                        }
                      }
                      return asbase::OkStatus();
                    });

  registry.Register("tab1.thumbnail",
                    [](alloy::FunctionContext& ctx) -> asbase::Status {
                      // Writes then shrinks an "image" on the virtual disk.
                      AS_ASSIGN_OR_RETURN(int64_t now, ctx.as().NowMicros());
                      (void)now;
                      AS_RETURN_IF_ERROR(ctx.as().WriteWholeFile(
                          "/image.bin", aswl::MakePayload(64 * 1024, 1)));
                      AS_ASSIGN_OR_RETURN(auto image,
                                          ctx.as().ReadWholeFile("/image.bin"));
                      std::vector<uint8_t> thumb(image.size() / 4);
                      for (size_t i = 0; i < thumb.size(); ++i) {
                        thumb[i] = image[i * 4];
                      }
                      return ctx.as().WriteWholeFile("/thumb.bin", thumb);
                    });

  registry.Register(
      "tab1.store-image-metadata",
      [](alloy::FunctionContext& ctx) -> asbase::Status {
        // time + mm + net: timestamp a record and push it to a "database"
        // over the LibOS TCP stack.
        AS_ASSIGN_OR_RETURN(int64_t now, ctx.as().NowMicros());
        AS_ASSIGN_OR_RETURN(
            auto connection,
            ctx.as().Connect(asnet::MakeAddr(10, 8, 0, 1), 5432));
        char record[64];
        std::snprintf(record, sizeof(record), "INSERT ts=%lld",
                      static_cast<long long>(now));
        AS_RETURN_IF_ERROR(asnet::SendAll(
            *connection,
            std::span<const uint8_t>(reinterpret_cast<uint8_t*>(record),
                                     std::strlen(record))));
        uint8_t ack[4];
        AS_RETURN_IF_ERROR(connection->Recv(ack).status());
        connection->Close();
        return asbase::OkStatus();
      });
}

}  // namespace

int main() {
  PrintHeader("Table 1", "as-libos modules loaded per function (measured)");

  // A "database" on the virtual network for the metadata function.
  asnet::VirtualSwitch fabric;
  auto db_port = fabric.Attach(asnet::MakeAddr(10, 8, 0, 1));
  asnet::NetStack db_stack(db_port);
  auto db_listener = db_stack.Listen(5432);
  std::atomic<bool> db_running{true};
  std::thread db_thread([&] {
    while (db_running.load()) {
      auto connection =
          (*db_listener)->Accept(std::chrono::milliseconds(500));
      if (!connection.ok()) {
        continue;
      }
      uint8_t query[128];
      auto n = (*connection)->Recv(query);
      if (n.ok()) {
        (*connection)->Send(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>("ok"), 2));
      }
      (*connection)->Close();
    }
  });

  RegisterTableFunctions();

  const char* functions[] = {"tab1.alu", "tab1.long-chain",
                             "tab1.transform-metadata", "tab1.thumbnail",
                             "tab1.store-image-metadata"};

  std::printf("%-28s %s\n", "function", "modules loaded on demand");
  std::printf("----------------------------------------------------------\n");
  int next_ip = 100;
  for (const char* name : functions) {
    alloy::WfdOptions options;
    options.heap_bytes = 16u << 20;
    options.disk_blocks = 16 * 1024;
    options.fabric = &fabric;
    options.addr = asnet::MakeAddr(10, 8, 0, static_cast<uint8_t>(next_ip++));
    auto wfd = alloy::Wfd::Create(options);
    if (!wfd.ok()) {
      continue;
    }

    alloy::WorkflowSpec spec;
    spec.name = name;
    spec.stages.push_back(alloy::StageSpec{{alloy::FunctionSpec{name, 1}}});
    alloy::Orchestrator orchestrator(wfd->get());
    asbase::Json params;
    auto stats = orchestrator.Run(spec, params);

    std::string modules;
    for (auto kind : (*wfd)->libos().LoadedModules()) {
      if (!modules.empty()) {
        modules += ", ";
      }
      modules += alloy::ModuleKindName(kind);
    }
    std::printf("%-28s %s%s\n", name, stats.ok() ? "" : "(FAILED) ",
                modules.c_str());
  }

  db_running.store(false);
  db_thread.join();
  std::printf(
      "\npaper shape: most functions need 3-5 modules; none need the full "
      "kernel.\n");
  return 0;
}
