// Figure 11: intermediate data transfer latency (pipe benchmark).
//
// From "Function A writes the data" to "Function B has read all of it",
// across sizes, for: AS (reference passing), AS-IFI (per-function keys),
// AS-C (WASM string transfer), Faastlane (reference passing), Faastlane-IPC
// (kernel pipes), Faasm (two-tier state), OpenFaaS (mini-redis).
//
// The transfer window is isolated via the per-phase timers: the reported
// number is the transfer phase of both functions (write + hand-off + read),
// excluding payload generation and checksum compute.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/faasm.h"
#include "src/baselines/transports.h"
#include "src/baselines/runtimes.h"

namespace {

using namespace asbench;

int64_t AlloyPipeTransfer(size_t bytes, bool ifi) {
  static alloy::WorkflowSpec spec =
      aswl::RegisterAlloyStackWorkflow(aswl::PipeWorkflow());
  return MedianNanos([&]() -> int64_t {
    AlloyRunConfig config;
    config.wfd.heap_bytes = std::max<size_t>(bytes * 2 + (8u << 20), 32u << 20);
    config.wfd.inter_function_isolation = ifi;
    config.prewarm_mm = true;
    config.params.Set("bytes", static_cast<int64_t>(bytes));
    config.params.Set("seed", 1);
    auto outcome = RunAlloyOnce(spec, config);
    return outcome.phases.transfer_nanos;
  });
}

int64_t AlloyVmPipeTransfer(size_t bytes, bool python) {
  auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kPipe, 1);
  if (!workflow.ok()) {
    return 0;
  }
  alloy::WorkflowSpec spec = aswl::RegisterAlloyVmWorkflow(*workflow, python);
  return MedianNanos([&]() -> int64_t {
    AlloyRunConfig config;
    config.wfd.heap_bytes = std::max<size_t>(bytes * 2 + (8u << 20), 32u << 20);
    config.prewarm_mm = true;
    config.params.Set("bytes", static_cast<int64_t>(bytes));
    config.params.Set("seed", 1);
    config.python_stdlib = python;
    auto outcome = RunAlloyOnce(spec, config);
    return outcome.phases.transfer_nanos;
  });
}

int64_t BaselinePipeTransfer(asbl::BaselineKind kind, size_t bytes) {
  asbl::BaselineRuntime::Options options;
  options.kind = kind;
  options.input_dir = "/tmp";
  asbl::BaselineRuntime runtime(options);
  asbase::Json params;
  params.Set("bytes", static_cast<int64_t>(bytes));
  params.Set("seed", 1);
  return MedianNanos([&]() -> int64_t {
    auto stats = runtime.Run(aswl::PipeWorkflow(), params);
    return stats.ok() ? stats->phases.transfer : 0;
  });
}

int64_t FaasmPipeTransfer(size_t bytes) {
  asbl::FaasmRuntime::Options options;
  options.input_dir = "/tmp";
  asbl::FaasmRuntime runtime(options);
  auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kPipe, 1);
  if (!workflow.ok()) {
    return 0;
  }
  asbase::Json params;
  params.Set("bytes", static_cast<int64_t>(bytes));
  params.Set("seed", 1);
  // Faasm has no phase split here: measure end-to-end minus a 0-byte run
  // (isolating the transfer-dependent part).
  const int64_t empty = MedianNanos([&]() -> int64_t {
    asbase::Json zero;
    zero.Set("bytes", 0);
    zero.Set("seed", 1);
    auto stats = runtime.Run(*workflow, zero);
    return stats.ok() ? stats->end_to_end_nanos : 0;
  });
  return MedianNanos([&]() -> int64_t {
    auto stats = runtime.Run(*workflow, params);
    if (!stats.ok()) {
      return 0;
    }
    const int64_t delta = stats->end_to_end_nanos - empty;
    return delta > 0 ? delta : stats->end_to_end_nanos;
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 11", "intermediate data transfer latency (pipe)");

  const size_t sizes[] = {4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024};
  std::printf("%-18s", "system");
  for (size_t size : sizes) {
    std::printf(" %12s", asbase::FormatBytes(size).c_str());
  }
  std::printf("\n---------------------------------------------------------------------------\n");

  auto print_row = [&](const std::string& name, auto&& measure) {
    std::printf("%-18s", name.c_str());
    for (size_t size : sizes) {
      std::printf(" %12s", Ms(measure(size)).c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  };

  print_row("AS", [](size_t s) { return AlloyPipeTransfer(s, false); });
  print_row("AS-IFI", [](size_t s) { return AlloyPipeTransfer(s, true); });
  print_row("AS-C", [](size_t s) { return AlloyVmPipeTransfer(s, false); });
  print_row("Faastlane", [](size_t s) {
    return BaselinePipeTransfer(asbl::BaselineKind::kFaastlaneRefer, s);
  });
  print_row("Faastlane-IPC", [](size_t s) {
    // IPC mode transfers through kernel pipes; force it by using the
    // parallel-policy runtime on a single-instance stage is not possible,
    // so measure the pipe copy path directly through the kFaastlane kind
    // with a widened stage (the policy trigger).
    aswl::GenericWorkflow wide = aswl::PipeWorkflow();
    wide.stages[0].functions[0].instances = 1;
    // Instead, measure the raw PipeIpc primitive around the same payload.
    auto nanos = asbl::MeasureTransfer(asbl::TransportKind::kPipeIpc, s);
    return nanos.ok() ? *nanos : 0;
  });
  print_row("Faasm", [](size_t s) { return FaasmPipeTransfer(s); });
  print_row("OpenFaaS(redis)", [](size_t s) {
    auto nanos = asbl::MeasureTransfer(asbl::TransportKind::kRedis, s);
    return nanos.ok() ? *nanos : 0;
  });
  print_row("AS-Py", [](size_t s) {
    // Python transfers pay boxed-interpreter hostcall marshalling.
    return AlloyVmPipeTransfer(std::min<size_t>(s, 16 * 1024 * 1024), true);
  });

  std::printf(
      "\npaper shape: AS ~2.6x faster than Faastlane-IPC-class transfers at\n"
      "16MB; AS-IFI adds 0.8-33.7%%; OpenFaaS(redis) slowest; AS-Py pays the\n"
      "interpreter toll but still beats redis-based passing.\n");
  return 0;
}
