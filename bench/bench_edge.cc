// HTTP edge reactor benchmark (EXPERIMENTS.md "edge"):
//
//   1. connection scaling  — open 10k concurrent keep-alive connections
//      against the epoll reactor, recording connect() latency (the accept
//      bar: p99 < 1ms) and first-request round-trip latency, then prove
//      every held connection still answers a second request. The seed's
//      thread-per-connection server would need 10k resident threads here;
//      the reactor holds them on one epoll set.
//   2. keep-alive /invoke RPS — a warm workflow driven closed-loop over one
//      keep-alive watchdog connection vs direct AsVisor::Invoke dispatch.
//      The acceptance bar is HTTP within 5% of direct dispatch.
//   3. pipelining          — one connection, bursts of pipelined requests
//      vs the same count of sequential round trips.
//
// `--quick` shrinks the connection count and loop lengths to a smoke test
// (compile-and-run checked by ctest, label `http`). Emits BENCH_edge.json.

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace asbench {
namespace {

using alloy::AsVisor;
using alloy::FunctionContext;
using alloy::FunctionRegistry;
using alloy::FunctionSpec;
using alloy::StageSpec;
using alloy::WorkflowSpec;

// A keep-alive client socket with a carry-over read buffer, so pipelined
// responses that share a TCP segment are split correctly.
class EdgeClient {
 public:
  explicit EdgeClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connect_nanos_ = asbase::MonoNanos();
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    connect_nanos_ = asbase::MonoNanos() - connect_nanos_;
    int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  }
  ~EdgeClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  EdgeClient(const EdgeClient&) = delete;
  EdgeClient& operator=(const EdgeClient&) = delete;

  bool connected() const { return connected_; }
  int64_t connect_nanos() const { return connect_nanos_; }

  bool Send(const std::string& wire) {
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads one full response; returns its status code, or -1 on error.
  int ReadOne() {
    while (true) {
      const size_t end = inbuf_.find("\r\n\r\n");
      if (end != std::string::npos) {
        size_t body_len = 0;
        // All reactor responses carry an exact content-length.
        const size_t cl = inbuf_.find("content-length:");
        if (cl != std::string::npos && cl < end) {
          body_len = std::strtoul(inbuf_.c_str() + cl + 15, nullptr, 10);
        }
        if (inbuf_.size() >= end + 4 + body_len) {
          const int status = std::atoi(inbuf_.c_str() + inbuf_.find(' ') + 1);
          inbuf_.erase(0, end + 4 + body_len);
          return status;
        }
      }
      char buffer[65536];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        return -1;
      }
      inbuf_.append(buffer, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  int64_t connect_nanos_ = 0;
  std::string inbuf_;
};

// 10k held connections plus the server's side of each needs ~2x the default
// descriptor budget; the bench runs as a normal process, so raise it.
void RaiseFdLimit(rlim_t want) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0 || limit.rlim_cur >= want) {
    return;
  }
  if (limit.rlim_max != RLIM_INFINITY && limit.rlim_max < want) {
    // Raising the hard limit needs CAP_SYS_RESOURCE; harmless to try.
    rlimit raised = limit;
    raised.rlim_max = want;
    raised.rlim_cur = want;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
      return;
    }
  }
  limit.rlim_cur = std::min<rlim_t>(
      want, limit.rlim_max == RLIM_INFINITY ? want : limit.rlim_max);
  if (::setrlimit(RLIMIT_NOFILE, &limit) != 0) {
    rlimit now{};
    ::getrlimit(RLIMIT_NOFILE, &now);
    std::fprintf(stderr,
                 "warning: could not raise RLIMIT_NOFILE to %llu "
                 "(cur %llu) — scaling the connection count down\n",
                 static_cast<unsigned long long>(want),
                 static_cast<unsigned long long>(now.rlim_cur));
  }
}

size_t FdBudgetConnections(size_t requested) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) {
    return requested;
  }
  // One descriptor per held connection (the client ends live in the helper
  // process), plus slack for the build's own files, epoll/eventfds, and the
  // listener.
  const size_t budget = static_cast<size_t>(limit.rlim_cur);
  const size_t usable = budget > 512 ? budget - 512 : 64;
  return std::min(requested, usable);
}

std::string SmallRequestWire(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nhost: bench\r\n\r\n";
}

// The client side of the connection-scaling section. Containers commonly
// cap RLIMIT_NOFILE at ~20k that even root cannot raise, and 10k held
// connections cost 10k descriptors on EACH side — so the clients run in
// their own re-exec'd process with its own descriptor budget, streaming
// latency samples back over a pipe:
//   lines "c <nanos>" (connect), "f <nanos>" (first round trip),
//   "s <nanos>" (round trip at full load), then
//   "done <held> <failures> <second_failures>". After "done" the helper
//   keeps every connection open until the parent writes a release byte.
int ClientHelperMain(uint16_t port, size_t count, int result_fd,
                     int release_fd) {
  RaiseFdLimit(count + 512);
  count = FdBudgetConnections(count);
  FILE* out = ::fdopen(result_fd, "w");
  if (out == nullptr) {
    return 1;
  }
  std::vector<std::unique_ptr<EdgeClient>> held;
  held.reserve(count);
  size_t failures = 0;
  for (size_t i = 0; i < count; ++i) {
    auto client = std::make_unique<EdgeClient>(port);
    if (!client->connected()) {
      ++failures;
      continue;
    }
    std::fprintf(out, "c %lld\n",
                 static_cast<long long>(client->connect_nanos()));
    const int64_t t0 = asbase::MonoNanos();
    if (!client->Send(SmallRequestWire("/c/" + std::to_string(i))) ||
        client->ReadOne() != 200) {
      ++failures;
      continue;
    }
    std::fprintf(out, "f %lld\n",
                 static_cast<long long>(asbase::MonoNanos() - t0));
    held.push_back(std::move(client));
  }
  size_t second_failures = 0;
  for (size_t i = 0; i < held.size(); ++i) {
    const int64_t t0 = asbase::MonoNanos();
    if (!held[i]->Send(SmallRequestWire("/again/" + std::to_string(i))) ||
        held[i]->ReadOne() != 200) {
      ++second_failures;
      continue;
    }
    std::fprintf(out, "s %lld\n",
                 static_cast<long long>(asbase::MonoNanos() - t0));
  }
  std::fprintf(out, "done %zu %zu %zu\n", held.size(), failures,
               second_failures);
  std::fflush(out);
  char byte = 0;
  while (::read(release_fd, &byte, 1) < 0 && errno == EINTR) {
  }
  return 0;
}

alloy::WfdOptions BenchWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

void RegisterEdgeFunction() {
  // ~2ms of handler wall time: enough that dispatch overhead is a small
  // fraction, short enough that closed-loop runs finish on one core.
  FunctionRegistry::Global().Register(
      "bench.edge-cpu", [](FunctionContext& ctx) -> asbase::Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ctx.SetResult("done");
        return asbase::OkStatus();
      });
}

WorkflowSpec OneStage(const std::string& name, const std::string& fn) {
  WorkflowSpec spec;
  spec.name = name;
  spec.stages.push_back(StageSpec{{FunctionSpec{fn, 1}}});
  return spec;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--client-helper") == 0 &&
               i + 4 < argc) {
      return ClientHelperMain(
          static_cast<uint16_t>(std::atoi(argv[i + 1])),
          static_cast<size_t>(std::atoll(argv[i + 2])),
          std::atoi(argv[i + 3]), std::atoi(argv[i + 4]));
    }
  }
  const size_t target_connections = quick ? 200 : 10000;
  const int rps_seconds_worth = quick ? 50 : 500;  // requests per mode
  const int pipeline_burst = quick ? 32 : 256;

  PrintHeader("edge", "epoll keep-alive reactor: scaling + dispatch overhead");

  asbase::Json doc;
  doc.Set("bench", "edge");
  doc.Set("scale", asbase::SimCostModel::Global().scale);
  doc.Set("quick", quick);
  asbase::Json series{asbase::JsonObject{}};

  // ------------------------------------------- 1. 10k held keep-alive conns
  {
    RaiseFdLimit(target_connections + 4096);
    const size_t n_connections = FdBudgetConnections(target_connections);

    ashttp::HttpServerOptions options;
    options.max_connections = n_connections + 64;
    options.idle_timeout_ms = 120000;  // never reap under the bench
    ashttp::HttpServer server(
        [](const ashttp::HttpRequest& request) {
          ashttp::HttpResponse response;
          response.body = "ok:" + request.target;
          return response;
        },
        options);
    if (!server.Start(0).ok()) {
      std::fprintf(stderr, "edge server start failed\n");
      return 1;
    }

    // Clients run in a re-exec'd helper (see ClientHelperMain): this process
    // budgets its descriptors for the server side only.
    int result_pipe[2];
    int release_pipe[2];
    if (::pipe(result_pipe) != 0 || ::pipe(release_pipe) != 0) {
      std::fprintf(stderr, "pipe failed\n");
      return 1;
    }
    const pid_t child = ::fork();
    if (child == 0) {
      ::close(result_pipe[0]);
      ::close(release_pipe[1]);
      char self[256];
      const ssize_t len =
          ::readlink("/proc/self/exe", self, sizeof(self) - 1);
      if (len > 0) {
        self[len] = '\0';
        std::string port_arg = std::to_string(server.port());
        std::string count_arg = std::to_string(n_connections);
        std::string result_arg = std::to_string(result_pipe[1]);
        std::string release_arg = std::to_string(release_pipe[0]);
        ::execl(self, self, "--client-helper", port_arg.c_str(),
                count_arg.c_str(), result_arg.c_str(), release_arg.c_str(),
                static_cast<char*>(nullptr));
      }
      ::_exit(127);
    }
    ::close(result_pipe[1]);
    ::close(release_pipe[0]);

    asbase::Histogram connect_hist;
    asbase::Histogram first_rt_hist;
    asbase::Histogram second_rt_hist;
    size_t held_count = 0;
    size_t failures = 0;
    size_t second_failures = 0;
    FILE* in = ::fdopen(result_pipe[0], "r");
    {
      char tag[8];
      long long a = 0;
      long long b = 0;
      long long c = 0;
      while (in != nullptr &&
             std::fscanf(in, "%7s %lld", tag, &a) == 2) {
        if (std::strcmp(tag, "c") == 0) {
          connect_hist.Record(a);
        } else if (std::strcmp(tag, "f") == 0) {
          first_rt_hist.Record(a);
        } else if (std::strcmp(tag, "s") == 0) {
          second_rt_hist.Record(a);
        } else if (std::strcmp(tag, "done") == 0 &&
                   std::fscanf(in, "%lld %lld", &b, &c) == 2) {
          held_count = static_cast<size_t>(a);
          failures = static_cast<size_t>(b);
          second_failures = static_cast<size_t>(c);
          break;
        }
      }
    }
    // The helper holds every connection until it gets the release byte, so
    // the peak gauge is read with all of them still open.
    const size_t active = server.active_connections();
    const char release = 'x';
    (void)!::write(release_pipe[1], &release, 1);
    if (in != nullptr) {
      std::fclose(in);
    }
    ::close(release_pipe[1]);
    int wait_status = 0;
    ::waitpid(child, &wait_status, 0);

    std::printf("\nheld keep-alive connections: %zu of %zu requested "
                "(%zu connect/req failures, %zu second-sweep failures)\n",
                held_count, target_connections, failures, second_failures);
    std::printf("  server active_connections at peak: %zu\n", active);
    std::printf("  %-24s %10s %10s %10s\n", "", "p50", "p99", "max");
    std::printf("  %-24s %10s %10s %10s\n", "connect()",
                Ms(connect_hist.Percentile(0.5)).c_str(),
                Ms(connect_hist.Percentile(0.99)).c_str(),
                Ms(connect_hist.Percentile(1.0)).c_str());
    std::printf("  %-24s %10s %10s %10s\n", "first round trip",
                Ms(first_rt_hist.Percentile(0.5)).c_str(),
                Ms(first_rt_hist.Percentile(0.99)).c_str(),
                Ms(first_rt_hist.Percentile(1.0)).c_str());
    std::printf("  %-24s %10s %10s %10s\n", "round trip at full load",
                Ms(second_rt_hist.Percentile(0.5)).c_str(),
                Ms(second_rt_hist.Percentile(0.99)).c_str(),
                Ms(second_rt_hist.Percentile(1.0)).c_str());
    const bool accept_bar =
        connect_hist.Percentile(0.99) < 1'000'000 && failures == 0;
    std::printf("  accept bar (p99 connect < 1ms, zero failures): %s\n",
                accept_bar ? "PASS" : "FAIL");

    series.Set("connect", connect_hist.ToJson());
    series.Set("first_round_trip", first_rt_hist.ToJson());
    series.Set("round_trip_at_full_load", second_rt_hist.ToJson());
    doc.Set("connections_requested",
            static_cast<int64_t>(target_connections));
    doc.Set("connections_held", static_cast<int64_t>(held_count));
    doc.Set("connect_failures", static_cast<int64_t>(failures));
    doc.Set("second_sweep_failures", static_cast<int64_t>(second_failures));
    doc.Set("connect_p99_nanos", connect_hist.Percentile(0.99));
    doc.Set("accept_bar_pass", accept_bar);

    server.Stop();
  }

  // ------------------------------ 2. warm /invoke: keep-alive HTTP vs direct
  {
    RegisterEdgeFunction();
    AsVisor visor;
    AsVisor::WorkflowOptions options;
    options.wfd = BenchWfd();
    options.pool_size = 2;
    options.max_concurrency = 2;
    visor.RegisterWorkflow(OneStage("edge-cpu", "bench.edge-cpu"), options);

    // Warm the pool outside the measured window.
    for (int i = 0; i < 4; ++i) {
      (void)visor.Invoke("edge-cpu", asbase::Json());
    }

    // Direct dispatch: the in-process ceiling — no sockets, no HTTP.
    asbase::Histogram direct_hist;
    const int64_t direct_start = asbase::MonoNanos();
    for (int i = 0; i < rps_seconds_worth; ++i) {
      const int64_t t0 = asbase::MonoNanos();
      auto result = visor.Invoke("edge-cpu", asbase::Json());
      if (result.ok()) {
        direct_hist.Record(asbase::MonoNanos() - t0);
      }
    }
    const double direct_seconds =
        static_cast<double>(asbase::MonoNanos() - direct_start) / 1e9;
    const double direct_rps =
        static_cast<double>(direct_hist.count()) / direct_seconds;

    // The same closed loop over one keep-alive watchdog connection.
    asbase::Histogram http_hist;
    double http_rps = 0.0;
    if (visor.StartWatchdog(0).ok()) {
      EdgeClient client(visor.watchdog_port());
      const std::string wire =
          "POST /invoke/edge-cpu HTTP/1.1\r\nhost: bench\r\n\r\n";
      // Unmeasured warmup: the first round trips pay the watchdog's own
      // start transient, not steady-state edge overhead.
      for (int i = 0; i < 8; ++i) {
        if (!client.Send(wire) || client.ReadOne() != 200) {
          break;
        }
      }
      const int64_t http_start = asbase::MonoNanos();
      for (int i = 0; i < rps_seconds_worth; ++i) {
        const int64_t t0 = asbase::MonoNanos();
        if (client.Send(wire) && client.ReadOne() == 200) {
          http_hist.Record(asbase::MonoNanos() - t0);
        }
      }
      const double http_seconds =
          static_cast<double>(asbase::MonoNanos() - http_start) / 1e9;
      http_rps = static_cast<double>(http_hist.count()) / http_seconds;
      visor.StopWatchdog();
    } else {
      std::fprintf(stderr, "watchdog start failed\n");
    }

    const double overhead_pct =
        direct_rps > 0.0 ? 100.0 * (direct_rps - http_rps) / direct_rps : 0.0;
    std::printf("\nwarm closed loop, %d invocations (~2ms CPU workflow)\n",
                rps_seconds_worth);
    std::printf("  %-26s %10s %10s %8s\n", "", "RPS", "p50", "p99");
    std::printf("  %-26s %10.0f %10s %8s\n", "direct dispatch", direct_rps,
                Ms(direct_hist.Percentile(0.5)).c_str(),
                Ms(direct_hist.Percentile(0.99)).c_str());
    std::printf("  %-26s %10.0f %10s %8s\n", "keep-alive /invoke", http_rps,
                Ms(http_hist.Percentile(0.5)).c_str(),
                Ms(http_hist.Percentile(0.99)).c_str());
    std::printf("  HTTP edge overhead: %.2f%% (bar: within 5%%)\n",
                overhead_pct);

    series.Set("direct_dispatch", direct_hist.ToJson());
    series.Set("keepalive_invoke", http_hist.ToJson());
    doc.Set("direct_rps", std::round(direct_rps * 10.0) / 10.0);
    doc.Set("http_rps", std::round(http_rps * 10.0) / 10.0);
    doc.Set("http_overhead_pct", std::round(overhead_pct * 100.0) / 100.0);
    doc.Set("http_within_5pct", overhead_pct <= 5.0);
  }

  // --------------------------------- 3. pipelined burst vs sequential calls
  {
    ashttp::HttpServer server(
        [](const ashttp::HttpRequest&) {
          ashttp::HttpResponse response;
          response.body = "pong";
          return response;
        },
        ashttp::HttpServerOptions{});
    if (server.Start(0).ok()) {
      EdgeClient sequential(server.port());
      const std::string wire = SmallRequestWire("/p");
      int64_t sequential_nanos = asbase::MonoNanos();
      for (int i = 0; i < pipeline_burst; ++i) {
        if (!sequential.Send(wire) || sequential.ReadOne() != 200) {
          std::fprintf(stderr, "sequential round trip failed\n");
          break;
        }
      }
      sequential_nanos = asbase::MonoNanos() - sequential_nanos;

      EdgeClient pipelined(server.port());
      std::string burst;
      for (int i = 0; i < pipeline_burst; ++i) {
        burst += wire;
      }
      int64_t pipelined_nanos = asbase::MonoNanos();
      int answered = 0;
      if (pipelined.Send(burst)) {
        while (answered < pipeline_burst && pipelined.ReadOne() == 200) {
          ++answered;
        }
      }
      pipelined_nanos = asbase::MonoNanos() - pipelined_nanos;

      std::printf("\n%d requests on one connection\n", pipeline_burst);
      std::printf("  sequential round trips: %s   pipelined burst: %s "
                  "(%d answered, %.1fx)\n",
                  Ms(sequential_nanos).c_str(), Ms(pipelined_nanos).c_str(),
                  answered,
                  static_cast<double>(sequential_nanos) /
                      static_cast<double>(std::max<int64_t>(pipelined_nanos,
                                                            1)));
      doc.Set("pipeline_burst", static_cast<int64_t>(pipeline_burst));
      doc.Set("pipeline_answered", static_cast<int64_t>(answered));
      doc.Set("sequential_nanos", sequential_nanos);
      doc.Set("pipelined_nanos", pipelined_nanos);
      server.Stop();
    }
  }

  doc.Set("series", std::move(series));
  const std::string text = doc.Dump(2);
  if (FILE* f = std::fopen("BENCH_edge.json", "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nresults written to BENCH_edge.json\n");
  }
  return 0;
}

}  // namespace asbench

int main(int argc, char** argv) { return asbench::Main(argc, argv); }
