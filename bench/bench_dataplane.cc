// Data-plane benchmark (DESIGN.md "Event-driven data plane", EXPERIMENTS.md
// "dataplane"):
//
//   1. stage dispatch           — warm multi-stage invocation latency and
//      closed-loop RPS with the legacy spawn-per-stage path vs the per-WFD
//      worker pool, plus the thread-spawn count over the measured window
//      (zero on the reused-WFD pool path is the whole point).
//   2. idle poller CPU          — poll-loop iterations of idle netstacks
//      over a fixed window, against the ~1 iteration/ms/stack the old
//      tick-based poller burned.
//
// `--quick` shrinks both sections to a smoke test (compile-and-run checked
// by ctest, label `dataplane`). Emits BENCH_dataplane.json.

#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/netstack/channel.h"
#include "src/netstack/stack.h"
#include "src/obs/metrics.h"

namespace asbench {
namespace {

using alloy::FunctionContext;
using alloy::FunctionRegistry;
using alloy::FunctionSpec;
using alloy::StageSpec;
using alloy::WorkflowSpec;

alloy::WfdOptions BenchWfd() {
  alloy::WfdOptions options;
  options.heap_bytes = 8u << 20;
  options.disk_blocks = 16 * 1024;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  return options;
}

int64_t RunOnce(alloy::Orchestrator& orchestrator, const WorkflowSpec& spec,
                bool spawn_per_stage) {
  alloy::Orchestrator::RunOptions options;
  options.spawn_per_stage = spawn_per_stage;
  const int64_t start = asbase::MonoNanos();
  auto stats = orchestrator.Run(spec, asbase::Json(), options);
  if (!stats.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 stats.status().ToString().c_str());
    return 0;
  }
  return asbase::MonoNanos() - start;
}

// One-way TCP transfer over a fresh stack pair; returns Gbit/s as seen by
// the receiver. `zerocopy` selects SendZeroCopy/RecvZeroCopy (pinned gather
// TX, pool-owned reference RX) vs the copying Send/Recv path.
double OneWayGbps(bool zerocopy, size_t payload_bytes, size_t total_bytes) {
  asnet::VirtualSwitch fabric;
  auto server_port = fabric.Attach(asnet::MakeAddr(10, 7, 0, 1));
  auto client_port = fabric.Attach(asnet::MakeAddr(10, 7, 0, 2));
  asnet::NetStack server(server_port), client(client_port);

  auto listener = server.Listen(7100);
  if (!listener.ok()) {
    return 0;
  }
  int64_t rx_nanos = 0;
  std::thread sink([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(60));
    if (!connection.ok()) {
      return;
    }
    std::vector<uint8_t> buffer(256 * 1024);
    size_t total = 0;
    asbase::ScopedTimer timer(&rx_nanos);
    while (total < total_bytes) {
      if (zerocopy) {
        auto chunk = (*connection)->RecvZeroCopy();
        if (!chunk.ok() || chunk->bytes.empty()) {
          break;
        }
        total += chunk->bytes.size();
      } else {
        auto n = (*connection)->Recv(buffer);
        if (!n.ok() || *n == 0) {
          break;
        }
        total += *n;
      }
    }
  });

  {
    auto connection =
        client.Connect(server.addr(), 7100, std::chrono::seconds(30));
    if (!connection.ok()) {
      sink.join();
      return 0;
    }
    auto chunk = std::make_shared<std::vector<uint8_t>>(payload_bytes, 0xA5);
    for (size_t done = 0; done < total_bytes; done += payload_bytes) {
      auto sent = zerocopy ? (*connection)->SendZeroCopy(*chunk, chunk)
                           : (*connection)->Send(*chunk);
      if (!sent.ok()) {
        break;
      }
    }
    (*connection)->Close();
  }
  sink.join();
  if (rx_nanos <= 0) {
    return 0;
  }
  return static_cast<double>(total_bytes) * 8 / 1e9 /
         (static_cast<double>(rx_nanos) / 1e9);
}

int Main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int warm_iters = quick ? 5 : 50;
  const int64_t idle_window_ms = quick ? 150 : 500;

  PrintHeader("dataplane",
              "event-driven data plane: worker-pool dispatch + sleeping poller");

  FunctionRegistry::Global().Register(
      "bench.dp-noop", [](FunctionContext& ctx) -> asbase::Status {
        ctx.SetResult("ok");
        return asbase::OkStatus();
      });
  // 4 stages × 4 instances of a no-op function: with no user work, stage
  // dispatch (thread spawn vs pool submit) dominates the run.
  WorkflowSpec spec;
  spec.name = "dp";
  for (int stage = 0; stage < 4; ++stage) {
    spec.stages.push_back(StageSpec{{FunctionSpec{"bench.dp-noop", 4}}});
  }

  asbase::Json doc;
  doc.Set("bench", "dataplane");
  doc.Set("scale", asbase::SimCostModel::Global().scale);
  asbase::Json series{asbase::JsonObject{}};

  // ---------------- section 1: spawn-per-stage vs per-WFD worker pool
  asobs::Counter& spawns = asobs::Registry::Global().GetCounter(
      "alloy_orch_thread_spawns_total");
  auto measure = [&](bool spawn_per_stage, uint64_t* warm_spawns) {
    asbase::Histogram hist;
    auto wfd = alloy::Wfd::Create(BenchWfd());
    if (!wfd.ok()) {
      std::fprintf(stderr, "WFD create failed: %s\n",
                   wfd.status().ToString().c_str());
      *warm_spawns = 0;
      return hist;
    }
    alloy::Orchestrator orchestrator(wfd->get());
    // Warm-up run: on the pool path this spawns the workers once; every
    // measured iteration below reuses them.
    RunOnce(orchestrator, spec, spawn_per_stage);
    const uint64_t spawns_before = spawns.value();
    for (int i = 0; i < warm_iters; ++i) {
      hist.Record(RunOnce(orchestrator, spec, spawn_per_stage));
    }
    *warm_spawns = spawns.value() - spawns_before;
    return hist;
  };

  uint64_t pool_spawns = 0;
  uint64_t legacy_spawns = 0;
  asbase::Histogram pool_hist = measure(/*spawn_per_stage=*/false,
                                        &pool_spawns);
  asbase::Histogram legacy_hist = measure(/*spawn_per_stage=*/true,
                                          &legacy_spawns);

  auto rps = [](const asbase::Histogram& hist) {
    return hist.mean() > 0 ? 1e9 / hist.mean() : 0.0;
  };
  const int64_t pool_p50 = pool_hist.Percentile(0.5);
  const int64_t legacy_p50 = legacy_hist.Percentile(0.5);
  const double improvement_pct =
      legacy_p50 > 0
          ? 100.0 * static_cast<double>(legacy_p50 - pool_p50) /
                static_cast<double>(legacy_p50)
          : 0.0;

  std::printf("\nwarm 4-stage x4-instance invocation (%d iterations)\n",
              warm_iters);
  std::printf("  %-18s %10s %10s %10s %8s\n", "", "p50", "p99", "RPS",
              "spawns");
  std::printf("  %-18s %10s %10s %10.0f %8llu\n", "spawn-per-stage",
              Ms(legacy_p50).c_str(),
              Ms(legacy_hist.Percentile(0.99)).c_str(), rps(legacy_hist),
              static_cast<unsigned long long>(legacy_spawns));
  std::printf("  %-18s %10s %10s %10.0f %8llu\n", "worker pool",
              Ms(pool_p50).c_str(), Ms(pool_hist.Percentile(0.99)).c_str(),
              rps(pool_hist), static_cast<unsigned long long>(pool_spawns));
  std::printf("  pool p50 improvement: %.1f%%  (reused-WFD spawns: %llu)\n",
              improvement_pct, static_cast<unsigned long long>(pool_spawns));

  series.Set("dispatch_pool", pool_hist.ToJson());
  series.Set("dispatch_spawn_per_stage", legacy_hist.ToJson());
  doc.Set("pool_p50_nanos", pool_p50);
  doc.Set("spawn_per_stage_p50_nanos", legacy_p50);
  doc.Set("pool_p50_improvement_pct", improvement_pct);
  doc.Set("pool_rps", rps(pool_hist));
  doc.Set("spawn_per_stage_rps", rps(legacy_hist));
  doc.Set("pool_warm_spawns", static_cast<int64_t>(pool_spawns));
  doc.Set("spawn_per_stage_warm_spawns",
          static_cast<int64_t>(legacy_spawns));

  // ---------------- section 2: idle poller CPU
  {
    asobs::Counter& iterations = asobs::Registry::Global().GetCounter(
        "alloy_net_poll_iterations_total");
    asnet::VirtualSwitch fabric;
    std::vector<std::unique_ptr<asnet::NetStack>> stacks;
    constexpr int kStacks = 4;
    for (int i = 0; i < kStacks; ++i) {
      stacks.push_back(std::make_unique<asnet::NetStack>(
          fabric.Attach(asnet::MakeAddr(10, 0, 0, static_cast<uint8_t>(i + 1)))));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const uint64_t before = iterations.value();
    std::this_thread::sleep_for(std::chrono::milliseconds(idle_window_ms));
    const uint64_t idle_iterations = iterations.value() - before;
    // The old poller ticked every 1 ms regardless of traffic.
    const uint64_t tick_model_iterations =
        static_cast<uint64_t>(kStacks) * static_cast<uint64_t>(idle_window_ms);

    std::printf("\nidle poller: %d stacks over %lld ms\n", kStacks,
                static_cast<long long>(idle_window_ms));
    std::printf("  1ms-tick model:   %8llu iterations\n",
                static_cast<unsigned long long>(tick_model_iterations));
    std::printf("  event-driven:     %8llu iterations\n",
                static_cast<unsigned long long>(idle_iterations));

    doc.Set("idle_stacks", static_cast<int64_t>(kStacks));
    doc.Set("idle_window_ms", idle_window_ms);
    doc.Set("idle_poll_iterations", static_cast<int64_t>(idle_iterations));
    doc.Set("idle_tick_model_iterations",
            static_cast<int64_t>(tick_model_iterations));
  }

  // ---------------- section 3: zero-copy payload-size sweep
  {
    // Copying Send/Recv vs pinned SendZeroCopy / pool-owned RecvZeroCopy,
    // one fresh stack pair per point. The path= byte counters prove which
    // path carried the traffic: the zerocopy run must move its bytes under
    // path="zerocopy" with zero growth under path="copy" (no payload memcpy
    // on the TX hot path).
    asobs::Counter& tx_zerocopy_bytes = asobs::Registry::Global().GetCounter(
        "alloy_net_tx_bytes_total", {{"path", "zerocopy"}});
    asobs::Counter& tx_copy_bytes = asobs::Registry::Global().GetCounter(
        "alloy_net_tx_bytes_total", {{"path", "copy"}});

    const std::vector<size_t> sizes =
        quick ? std::vector<size_t>{4 * 1024, 64 * 1024, 256 * 1024}
              : std::vector<size_t>{4 * 1024, 16 * 1024, 64 * 1024,
                                    256 * 1024, 1024 * 1024, 4 * 1024 * 1024};

    std::printf("\nzero-copy payload sweep (one-way TCP, Gbit/s)\n");
    std::printf("  %-12s %10s %10s %8s\n", "payload", "copy", "zerocopy",
                "speedup");

    asbase::Json sweep{asbase::JsonArray{}};
    double speedup_256k = 0;
    uint64_t zc_path_delta = 0, copy_path_delta = 0;
    for (size_t payload : sizes) {
      const size_t total =
          std::max<size_t>(payload * (quick ? 4 : 8),
                           quick ? (2u << 20) : (16u << 20));
      const double copy_gbps = OneWayGbps(false, payload, total);
      const uint64_t zc_before = tx_zerocopy_bytes.value();
      const uint64_t copy_before = tx_copy_bytes.value();
      const double zerocopy_gbps = OneWayGbps(true, payload, total);
      const double speedup =
          copy_gbps > 0 ? zerocopy_gbps / copy_gbps : 0.0;
      if (payload == 256 * 1024) {
        speedup_256k = speedup;
        zc_path_delta = tx_zerocopy_bytes.value() - zc_before;
        copy_path_delta = tx_copy_bytes.value() - copy_before;
      }

      std::printf("  %-12s %10.3f %10.3f %7.2fx\n",
                  (payload >= 1024 * 1024
                       ? std::to_string(payload / (1024 * 1024)) + " MiB"
                       : std::to_string(payload / 1024) + " KiB")
                      .c_str(),
                  copy_gbps, zerocopy_gbps, speedup);

      asbase::Json row{asbase::JsonObject{}};
      row.Set("payload_bytes", static_cast<int64_t>(payload));
      row.Set("total_bytes", static_cast<int64_t>(total));
      row.Set("copy_gbps", copy_gbps);
      row.Set("zerocopy_gbps", zerocopy_gbps);
      row.Set("zerocopy_speedup", speedup);
      sweep.Append(std::move(row));
    }
    std::printf("  256 KiB zerocopy path counters: zerocopy+=%llu copy+=%llu\n",
                static_cast<unsigned long long>(zc_path_delta),
                static_cast<unsigned long long>(copy_path_delta));

    doc.Set("zerocopy_sweep", std::move(sweep));
    doc.Set("zerocopy_speedup_256k", speedup_256k);
    doc.Set("zerocopy_256k_tx_zerocopy_bytes_delta",
            static_cast<int64_t>(zc_path_delta));
    doc.Set("zerocopy_256k_tx_copy_bytes_delta",
            static_cast<int64_t>(copy_path_delta));
  }

  doc.Set("series", std::move(series));
  const std::string text = doc.Dump(2);
  if (FILE* f = std::fopen("BENCH_dataplane.json", "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nresults written to BENCH_dataplane.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace asbench

int main(int argc, char** argv) { return asbench::Main(argc, argv); }
