// Figure 3: performance of communication primitives (§2.3).
//
// Inter-VM TCP vs inter-process TCP vs shared memory vs direct function
// call, across payload sizes. Method (4) should win by 1-2 orders of
// magnitude — the motivation for single-address-space workflows.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/transports.h"

int main() {
  using namespace asbench;
  PrintHeader("Figure 3", "communication primitives, transfer latency");

  const size_t sizes[] = {4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024};
  const asbl::TransportKind kinds[] = {
      asbl::TransportKind::kInterVmTcp,
      asbl::TransportKind::kInterProcessTcp,
      asbl::TransportKind::kSharedMemory,
      asbl::TransportKind::kFunctionCall,
  };

  std::printf("%-20s", "primitive");
  for (size_t size : sizes) {
    std::printf(" %12s", asbase::FormatBytes(size).c_str());
  }
  std::printf("\n-----------------------------------------------------------------------------\n");

  for (auto kind : kinds) {
    std::printf("%-20s", asbl::TransportKindName(kind));
    for (size_t size : sizes) {
      const int64_t nanos = MedianNanos([&]() -> int64_t {
        auto measured = asbl::MeasureTransfer(kind, size);
        return measured.ok() ? *measured : 0;
      });
      std::printf(" %12s", Ms(nanos).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper shape: function-call beats the kernel-mediated primitives by\n"
      "1-2 orders of magnitude at every size.\n");
  return 0;
}
