// Figure 3: performance of communication primitives (§2.3).
//
// Inter-VM TCP vs inter-process TCP vs shared memory vs direct function
// call, across payload sizes. Method (4) should win by 1-2 orders of
// magnitude — the motivation for single-address-space workflows.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/transports.h"
#include "src/mpk/pkey_runtime.h"

namespace {

// One MPK domain switch (the §3.3 trampoline cost AS pays per LibOS entry).
// Emulated backend: the calibrated WRPKRU price, same as every AS-IFI run.
int64_t MeasureDomainSwitchNanos() {
  asmpk::PkeyRuntime runtime(asmpk::MpkBackend::kEmulated);
  constexpr int kSwitches = 20000;
  const int64_t start = asbase::MonoNanos();
  for (int i = 0; i < kSwitches / 2; ++i) {
    runtime.WritePkru(asmpk::PkeyRuntime::kDenyAll);
    runtime.WritePkru(0);
  }
  return (asbase::MonoNanos() - start) / kSwitches;
}

}  // namespace

int main() {
  using namespace asbench;
  PrintHeader("Figure 3", "communication primitives, transfer latency");

  const size_t sizes[] = {4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024};
  const asbl::TransportKind kinds[] = {
      asbl::TransportKind::kInterVmTcp,
      asbl::TransportKind::kInterProcessTcp,
      asbl::TransportKind::kSharedMemory,
      asbl::TransportKind::kFunctionCall,
  };

  std::printf("%-20s", "primitive");
  for (size_t size : sizes) {
    std::printf(" %12s", asbase::FormatBytes(size).c_str());
  }
  std::printf("\n-----------------------------------------------------------------------------\n");

  std::map<std::string, asbase::Histogram> series;
  for (auto kind : kinds) {
    std::printf("%-20s", asbl::TransportKindName(kind));
    for (size_t size : sizes) {
      asbase::Histogram hist = SampleNanos([&]() -> int64_t {
        auto measured = asbl::MeasureTransfer(kind, size);
        return measured.ok() ? *measured : 0;
      });
      std::printf(" %12s", Ms(hist.Percentile(0.5)).c_str());
      series[std::string(asbl::TransportKindName(kind)) + "/" +
             asbase::FormatBytes(size)] = std::move(hist);
    }
    std::printf("\n");
  }

  // Domain-switch primitive: payload-independent, printed once. The obs
  // instrumentation budget (<3% on this row) is tracked in CHANGES.md.
  asbase::Histogram switch_hist;
  for (int i = 0; i < kIterations; ++i) {
    switch_hist.Record(MeasureDomainSwitchNanos());
  }
  std::printf("%-20s %12s  (per switch, emulated backend)\n", "domain-switch",
              Ms(switch_hist.Percentile(0.5)).c_str());
  series["domain-switch"] = switch_hist;

  WriteBenchJson("fig03", series);

  std::printf(
      "\npaper shape: function-call beats the kernel-mediated primitives by\n"
      "1-2 orders of magnitude at every size.\n");
  return 0;
}
