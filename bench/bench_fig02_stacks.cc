// Figure 2: startup latency of serverless software stacks.
//
// Paper points of reference: traditional VM ~1817ms, MicroVM ~1186ms
// (Firecracker trims the device model), Unikernel ~137ms, and AlloyStack's
// WFD at the bottom of the range. Sandboxes this machine cannot boot are
// modeled boot-stage pipelines (DESIGN.md §1); the AlloyStack rows are real
// measurements of this repository's WFD.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/sim_profiles.h"

namespace {

using namespace asbench;

asbl::BootProfile TraditionalVmProfile() {
  // Full QEMU-style VM: BIOS + PCI enumeration + legacy devices + full
  // kernel boot (the features Firecracker removes, §2.2).
  asbl::BootProfile profile = asbl::FirecrackerMicroVmProfile();
  profile.name = "traditional-vm";
  profile.stages.insert(
      profile.stages.begin(),
      {"bios+pci+legacy-devices", 600'000'000, [] {}});
  profile.stages.push_back({"full-distro-init", 100'000'000, [] {}});
  return profile;
}

int64_t MeasureWfdBoot(bool on_demand) {
  return MedianNanos([&] {
    alloy::WfdOptions options;
    options.on_demand = on_demand;
    options.heap_bytes = 16u << 20;
    options.disk_blocks = 16 * 1024;
    auto wfd = alloy::Wfd::Create(options);
    if (!wfd.ok()) {
      return int64_t{0};
    }
    return (*wfd)->creation_nanos() + (*wfd)->libos().TotalLoadNanos();
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 2", "startup latency across software stacks");
  std::printf("%-28s %14s  %s\n", "stack", "startup", "guest kernel");
  std::printf("----------------------------------------------------------\n");

  auto row = [](const std::string& name, int64_t nanos, bool guest_kernel) {
    std::printf("%-28s %14s  %s\n", name.c_str(), Ms(nanos).c_str(),
                guest_kernel ? "yes" : "no/libos");
  };

  row("traditional VM (model)",
      MedianNanos([] { return asbl::SimulateBoot(TraditionalVmProfile()); }),
      true);
  row("MicroVM/Firecracker (model)",
      MedianNanos(
          [] { return asbl::SimulateBoot(asbl::FirecrackerMicroVmProfile()); }),
      true);
  row("Unikernel/Unikraft (model)",
      MedianNanos([] { return asbl::SimulateBoot(asbl::UnikraftProfile()); }),
      true);
  row("Virtines (model)",
      MedianNanos([] { return asbl::SimulateBoot(asbl::VirtinesProfile()); }),
      false);
  row("AlloyStack WFD load-all", MeasureWfdBoot(/*on_demand=*/false),
      true);
  row("AlloyStack WFD on-demand (real)", MeasureWfdBoot(/*on_demand=*/true),
      true);

  std::printf(
      "\npaper shape: VM >> MicroVM >> Unikernel >> AlloyStack; on-demand\n"
      "loading removes the remaining LibOS initialization from the start "
      "path.\n");
  return 0;
}
