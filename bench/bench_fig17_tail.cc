// Figure 17(a): P99 end-to-end latency under rising load (QPS sweep),
// ParallelSorting, AlloyStack vs Faastlane-refer-kata.
//
// Open-loop load: invocations are launched at the target rate regardless of
// completions; each invocation is a full cold start. On this 1-core machine
// saturation arrives at low absolute QPS — the *shape* (flat, then a knee,
// kata knees first) is the reproduced claim.

#include <sys/stat.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/baselines/runtimes.h"

namespace {

using namespace asbench;

constexpr int kRequests = 8;

// Launches kRequests at `qps`, returns the P99 (here: max, n<100) latency.
template <typename Invoke>
int64_t OpenLoopP99(double qps, Invoke&& invoke) {
  asbase::Histogram latencies;
  std::vector<std::thread> inflight;
  const int64_t gap_nanos = static_cast<int64_t>(1e9 / qps);
  std::mutex mutex;
  for (int i = 0; i < kRequests; ++i) {
    const int64_t next_launch = asbase::MonoNanos();
    inflight.emplace_back([&, i] {
      const int64_t start = asbase::MonoNanos();
      invoke();
      const int64_t elapsed = asbase::MonoNanos() - start;
      std::lock_guard<std::mutex> lock(mutex);
      latencies.Record(elapsed);
    });
    const int64_t sleep_until = next_launch + gap_nanos;
    while (asbase::MonoNanos() < sleep_until) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (auto& thread : inflight) {
    thread.join();
  }
  return latencies.Percentile(0.99);
}

}  // namespace

int main() {
  PrintHeader("Figure 17a", "P99 latency vs offered load (ParallelSorting)");

  auto input = aswl::MakeIntegerInput(512u << 10, 113);
  alloy::WorkflowSpec spec =
      aswl::RegisterAlloyStackWorkflow(aswl::ParallelSortingWorkflow(3));
  const std::string dir = StageHostInput("fig17-ps.bin", input);

  std::printf("%-8s %18s %24s\n", "QPS", "AlloyStack P99",
              "Faastlane-refer-kata P99");
  std::printf("----------------------------------------------------------\n");
  for (double qps : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const int64_t alloy_p99 = OpenLoopP99(qps, [&] {
      AlloyRunConfig config;
      config.wfd.heap_bytes = 64u << 20;
      config.wfd.disk_blocks = 32 * 1024;
      asbase::Json params;
      params.Set("input", "/input.bin");
      config.params = params;
      config.input = input;
      RunAlloyOnce(spec, config);
    });
    asbl::BaselineRuntime::Options options;
    options.kind = asbl::BaselineKind::kFaastlaneReferKata;
    options.input_dir = dir;
    asbl::BaselineRuntime runtime(options);
    asbase::Json params;
    params.Set("input", "fig17-ps.bin");
    const int64_t kata_p99 = OpenLoopP99(qps, [&] {
      runtime.Run(aswl::ParallelSortingWorkflow(3), params);
    });
    std::printf("%-8.0f %18s %24s\n", qps, Ms(alloy_p99).c_str(),
                Ms(kata_p99).c_str());
    std::fflush(stdout);
  }

  std::printf(
      "\npaper shape: kata's P99 rises steeply with QPS (rootfs/cgroup\n"
      "bottlenecks + MicroVM boots); AlloyStack stays flat until CPU\n"
      "saturation, then knees (~160 QPS on the paper's 64 cores; earlier\n"
      "here on 1 core).\n");
  return 0;
}
