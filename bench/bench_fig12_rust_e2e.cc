// Figure 12: end-to-end latency of Rust(native)-path workflows across
// platforms — WordCount, ParallelSorting, FunctionChain, each in a 3x3
// parameter grid, on AlloyStack vs Faastlane(-refer,-refer-kata) vs
// OpenFaaS(-gVisor).
//
// Input sizes are scaled from the paper's (10..300MB) to single-core-budget
// sizes; EXPERIMENTS.md records the mapping. Every run is a cold start, as
// in the paper.

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "src/baselines/runtimes.h"

namespace {

using namespace asbench;

struct SystemRow {
  std::string name;
  std::function<int64_t(const aswl::GenericWorkflow&, const asbase::Json&,
                        const std::vector<uint8_t>&, const std::string&)>
      run;
};

int64_t RunAlloy(const aswl::GenericWorkflow& workflow,
                 const asbase::Json& params,
                 const std::vector<uint8_t>& input) {
  alloy::WorkflowSpec spec = aswl::RegisterAlloyStackWorkflow(workflow);
  return MedianNanos([&] {
    AlloyRunConfig config;
    config.wfd.heap_bytes = 96u << 20;
    config.wfd.disk_blocks = 64 * 1024;
    config.params = params;
    config.input = input;
    return RunAlloyOnce(spec, config).end_to_end;
  });
}

int64_t RunBaseline(asbl::BaselineKind kind,
                    const aswl::GenericWorkflow& workflow,
                    const asbase::Json& params, const std::string& input_dir) {
  asbl::BaselineRuntime::Options options;
  options.kind = kind;
  options.input_dir = input_dir;
  asbl::BaselineRuntime runtime(options);
  return MedianNanos([&]() -> int64_t {
    auto stats = runtime.Run(workflow, params);
    return stats.ok() ? stats->end_to_end_nanos : 0;
  });
}

void Panel(const std::string& title, const aswl::GenericWorkflow& workflow,
           const asbase::Json& params, const std::vector<uint8_t>& input,
           const std::string& input_name) {
  std::printf("\n--- %s ---\n", title.c_str());
  const std::string dir =
      input.empty() ? "/tmp" : StageHostInput(input_name, input);
  asbase::Json host_params = params;
  if (!input.empty()) {
    host_params.Set("input", input_name);
  }
  asbase::Json alloy_params = params;
  if (!input.empty()) {
    alloy_params.Set("input", "/input.bin");
  }

  struct Row {
    const char* name;
    asbl::BaselineKind kind;
  };
  std::printf("  %-24s %14s\n", "AlloyStack",
              Ms(RunAlloy(workflow, alloy_params, input)).c_str());
  std::fflush(stdout);
  const Row rows[] = {
      {"Faastlane", asbl::BaselineKind::kFaastlane},
      {"Faastlane-refer", asbl::BaselineKind::kFaastlaneRefer},
      {"Faastlane-refer-kata", asbl::BaselineKind::kFaastlaneReferKata},
      {"OpenFaaS", asbl::BaselineKind::kOpenFaas},
      {"OpenFaaS-gVisor", asbl::BaselineKind::kOpenFaasGvisor},
  };
  for (const Row& row : rows) {
    std::printf("  %-24s %14s\n", row.name,
                Ms(RunBaseline(row.kind, workflow, host_params, dir)).c_str());
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 12",
              "Rust-path end-to-end latency (scaled inputs, cold starts)");

  // (a-c) WordCount: input size x instances.
  const std::pair<size_t, int> wc_grid[] = {
      {1u << 20, 1}, {4u << 20, 3}, {12u << 20, 5}};
  for (auto [bytes, instances] : wc_grid) {
    auto corpus = aswl::MakeTextCorpus(bytes, 71);
    asbase::Json params;
    Panel("WordCount " + std::string(asbase::FormatBytes(bytes)) + " x" +
              std::to_string(instances) + " instances",
          aswl::WordCountWorkflow(instances), params, corpus, "fig12-wc.bin");
  }

  // (d-f) ParallelSorting.
  const std::pair<size_t, int> ps_grid[] = {
      {256u << 10, 1}, {1u << 20, 3}, {2u << 20, 5}};
  for (auto [bytes, instances] : ps_grid) {
    auto input = aswl::MakeIntegerInput(bytes, 73);
    asbase::Json params;
    Panel("ParallelSorting " + std::string(asbase::FormatBytes(bytes)) + " x" +
              std::to_string(instances) + " instances",
          aswl::ParallelSortingWorkflow(instances), params, input,
          "fig12-ps.bin");
  }

  // (g-i) FunctionChain: payload size x chain length.
  const std::pair<size_t, int> chain_grid[] = {
      {256u << 10, 5}, {1u << 20, 10}, {4u << 20, 15}};
  for (auto [bytes, length] : chain_grid) {
    asbase::Json params;
    params.Set("bytes", static_cast<int64_t>(bytes));
    params.Set("seed", 79);
    Panel("FunctionChain " + std::string(asbase::FormatBytes(bytes)) + " x" +
              std::to_string(length) + " functions",
          aswl::FunctionChainWorkflow(length), params, {}, "");
  }

  std::printf(
      "\npaper shape: AS ~ Faastlane-refer (AS slightly ahead on chains, a\n"
      "touch behind when fatfs reads dominate); kata variants pay MicroVM\n"
      "boots; OpenFaaS(-gVisor) 4-30x slower on data-heavy workflows.\n");
  return 0;
}
