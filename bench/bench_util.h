// Shared helpers for the per-figure/per-table bench binaries.
//
// Every binary prints (a) a header identifying the experiment and the
// SimCostModel scale in effect, and (b) a paper-style table. Workflow-level
// experiments run each configuration `kIterations` times and report the
// median. Input sizes are scaled down from the paper's testbed sizes so the
// whole suite completes on one core; EXPERIMENTS.md records the mapping.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <fcntl.h>
#include <map>
#include <sys/stat.h>
#include <string>
#include <unistd.h>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/core/asstd/wasi.h"
#include "src/core/visor/visor.h"
#include "src/workloads/alloystack_env.h"
#include "src/workloads/generic_apps.h"
#include "src/workloads/inputs.h"
#include "src/workloads/vm_apps.h"

namespace asbench {

constexpr int kIterations = 3;

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("sim cost model scale: %.2f (see DESIGN.md §1)\n",
              asbase::SimCostModel::Global().scale);
  std::printf("================================================================\n");
}

inline int64_t MedianOf(std::vector<int64_t> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0 : samples[samples.size() / 2];
}

// Runs `fn` kIterations times, returns the median of its returned latencies.
template <typename Fn>
int64_t MedianNanos(Fn&& fn) {
  std::vector<int64_t> samples;
  for (int i = 0; i < kIterations; ++i) {
    samples.push_back(fn());
  }
  return MedianOf(std::move(samples));
}

// Runs `fn` kIterations times and keeps every sample (for BENCH_*.json).
template <typename Fn>
asbase::Histogram SampleNanos(Fn&& fn) {
  asbase::Histogram hist;
  for (int i = 0; i < kIterations; ++i) {
    hist.Record(fn());
  }
  return hist;
}

// Machine-readable results next to the table: BENCH_<id>.json maps series
// name -> Histogram::ToJson() (count/min/mean/p50/p99/p999/max), the same
// stats shape the /metrics summary quantiles are computed from.
inline void WriteBenchJson(
    const std::string& id,
    const std::map<std::string, asbase::Histogram>& series) {
  asbase::Json doc;
  doc.Set("bench", id);
  doc.Set("scale", asbase::SimCostModel::Global().scale);
  asbase::Json series_json{asbase::JsonObject{}};
  for (const auto& [name, hist] : series) {
    series_json.Set(name, hist.ToJson());
  }
  doc.Set("series", std::move(series_json));
  const std::string path = "BENCH_" + id + ".json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string text = doc.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("results written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
}

inline std::string Ms(int64_t nanos) { return asbase::FormatNanos(nanos); }

// ----------------------------------------------------- AlloyStack running

struct AlloyRunConfig {
  alloy::WfdOptions wfd;
  asbase::Json params;
  std::vector<uint8_t> input;  // written to /input.bin when non-empty
  bool python_stdlib = false;  // provision /lib/python_stdlib.img
  // Load the mm module before the measured window (transfer benches measure
  // steady-state data movement, not the one-time module load).
  bool prewarm_mm = false;
};

struct AlloyRunOutcome {
  int64_t end_to_end = 0;
  int64_t cold_start = 0;
  alloy::PhaseTimings phases;
  std::string result;
};

// One full cold invocation: WFD create + input staging (excluded from the
// measured window where the paper excludes it) + workflow run + destroy.
inline AlloyRunOutcome RunAlloyOnce(const alloy::WorkflowSpec& spec,
                                    const AlloyRunConfig& config) {
  AlloyRunOutcome outcome;
  auto wfd = alloy::Wfd::Create(config.wfd);
  if (!wfd.ok()) {
    std::fprintf(stderr, "WFD create failed: %s\n",
                 wfd.status().ToString().c_str());
    return outcome;
  }
  // Stage inputs (corresponds to data already being on the function's disk
  // image; not part of the measured workflow latency — reading it is).
  {
    alloy::AsStd as(wfd->get());
    if (!config.input.empty()) {
      auto status = as.WriteWholeFile("/input.bin", config.input);
      if (!status.ok()) {
        std::fprintf(stderr, "input staging failed: %s\n",
                     status.ToString().c_str());
        return outcome;
      }
    }
    if (config.python_stdlib) {
      alloy::EnsurePythonStdlib(as);
    }
    if (config.prewarm_mm) {
      auto warm = as.AllocBuffer("__warm", 16, 0);
      if (warm.ok()) {
        auto taken = as.AcquireBuffer("__warm", 0);
        if (taken.ok()) {
          as.FreeBuffer(*taken);
        }
      }
    }
  }
  const int64_t start = asbase::MonoNanos();
  alloy::Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, config.params);
  if (!stats.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 stats.status().ToString().c_str());
    return outcome;
  }
  outcome.end_to_end = asbase::MonoNanos() - start;
  outcome.cold_start =
      (*wfd)->creation_nanos() + (*wfd)->libos().TotalLoadNanos();
  outcome.end_to_end += (*wfd)->creation_nanos();  // WFD boot is part of e2e
  outcome.phases = stats->phases;
  outcome.result = stats->result;
  return outcome;
}

// Writes a host input file for baseline runtimes; returns its directory.
inline std::string StageHostInput(const std::string& name,
                                  const std::vector<uint8_t>& data) {
  const std::string dir = "/tmp/alloystack-bench";
  ::mkdir(dir.c_str(), 0755);
  const std::string path = dir + "/" + name;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ssize_t n = ::write(fd, data.data(), data.size());
    (void)n;
    ::close(fd);
  }
  return dir;
}

}  // namespace asbench

#endif  // BENCH_BENCH_UTIL_H_
