#include "src/vm/assembler.h"

#include <cctype>
#include <map>
#include <sstream>

namespace asvm {
namespace {

void EmitU16(std::vector<uint8_t>& code, uint16_t v) {
  code.push_back(static_cast<uint8_t>(v));
  code.push_back(static_cast<uint8_t>(v >> 8));
}
void EmitU32(std::vector<uint8_t>& code, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    code.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}
void EmitI64(std::vector<uint8_t>& code, int64_t v) {
  auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    code.push_back(static_cast<uint8_t>(u >> (8 * i)));
  }
}
void PatchI32(std::vector<uint8_t>& code, size_t at, int32_t v) {
  auto u = static_cast<uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    code[at + static_cast<size_t>(i)] = static_cast<uint8_t>(u >> (8 * i));
  }
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '#' || line[i] == ';') {
      break;
    }
    if (line[i] == '"') {
      // String literal with escapes; kept as one token including quotes.
      std::string token = "\"";
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          token.push_back(line[i]);
          token.push_back(line[i + 1]);
          i += 2;
        } else {
          token.push_back(line[i++]);
        }
      }
      ++i;  // closing quote
      token.push_back('"');
      tokens.push_back(std::move(token));
      continue;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != '#' && line[i] != ';') {
      ++i;
    }
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

asbase::Result<std::vector<uint8_t>> DecodeString(const std::string& quoted) {
  std::vector<uint8_t> out;
  for (size_t i = 1; i + 1 < quoted.size(); ++i) {
    char c = quoted[i];
    if (c == '\\' && i + 2 < quoted.size() + 1) {
      char e = quoted[++i];
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '0': out.push_back(0); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default:
          return asbase::InvalidArgument(std::string("bad escape \\") + e);
      }
    } else {
      out.push_back(static_cast<uint8_t>(c));
    }
  }
  return out;
}

struct OpSpec {
  Op op;
  enum class Operand { kNone, kI64, kU16Local, kU32Offset, kLabel, kFunc,
                       kHost } operand;
};

const std::map<std::string, OpSpec>& Mnemonics() {
  using Operand = OpSpec::Operand;
  static const std::map<std::string, OpSpec> kTable = {
      {"halt", {Op::kHalt, Operand::kNone}},
      {"push", {Op::kPushI64, Operand::kI64}},
      {"drop", {Op::kDrop, Operand::kNone}},
      {"dup", {Op::kDup, Operand::kNone}},
      {"local.get", {Op::kLocalGet, Operand::kU16Local}},
      {"local.set", {Op::kLocalSet, Operand::kU16Local}},
      {"local.tee", {Op::kLocalTee, Operand::kU16Local}},
      {"add", {Op::kAdd, Operand::kNone}},
      {"sub", {Op::kSub, Operand::kNone}},
      {"mul", {Op::kMul, Operand::kNone}},
      {"div_s", {Op::kDivS, Operand::kNone}},
      {"rem_s", {Op::kRemS, Operand::kNone}},
      {"and", {Op::kAnd, Operand::kNone}},
      {"or", {Op::kOr, Operand::kNone}},
      {"xor", {Op::kXor, Operand::kNone}},
      {"shl", {Op::kShl, Operand::kNone}},
      {"shr_s", {Op::kShrS, Operand::kNone}},
      {"shr_u", {Op::kShrU, Operand::kNone}},
      {"eq", {Op::kEq, Operand::kNone}},
      {"ne", {Op::kNe, Operand::kNone}},
      {"lt_s", {Op::kLtS, Operand::kNone}},
      {"le_s", {Op::kLeS, Operand::kNone}},
      {"gt_s", {Op::kGtS, Operand::kNone}},
      {"ge_s", {Op::kGeS, Operand::kNone}},
      {"eqz", {Op::kEqz, Operand::kNone}},
      {"load8", {Op::kLoad8U, Operand::kU32Offset}},
      {"load64", {Op::kLoad64, Operand::kU32Offset}},
      {"store8", {Op::kStore8, Operand::kU32Offset}},
      {"store64", {Op::kStore64, Operand::kU32Offset}},
      {"load32", {Op::kLoad32U, Operand::kU32Offset}},
      {"store32", {Op::kStore32, Operand::kU32Offset}},
      {"jmp", {Op::kJmp, Operand::kLabel}},
      {"jz", {Op::kJz, Operand::kLabel}},
      {"call", {Op::kCall, Operand::kFunc}},
      {"ret", {Op::kRet, Operand::kNone}},
      {"host", {Op::kHostcall, Operand::kHost}},
      {"memsize", {Op::kMemSize, Operand::kNone}},
      {"memgrow", {Op::kMemGrow, Operand::kNone}},
  };
  return kTable;
}

}  // namespace

asbase::Result<VmModule> Assemble(const std::string& source) {
  VmModule module;
  std::map<std::string, int> function_indices;   // name -> index
  std::map<std::string, uint16_t> host_indices;  // name -> hostcall slot

  // Per-function label state.
  bool in_function = false;
  std::map<std::string, size_t> labels;                  // label -> code pos
  std::vector<std::pair<size_t, std::string>> label_fixups;  // patch at -> label
  std::vector<std::pair<size_t, std::string>> call_fixups;   // patch at -> fn

  std::istringstream input(source);
  std::string line;
  int line_number = 0;

  auto fail = [&](const std::string& why) {
    return asbase::InvalidArgument("asm line " + std::to_string(line_number) +
                                   ": " + why);
  };

  auto finish_function = [&]() -> asbase::Status {
    for (const auto& [at, label] : label_fixups) {
      auto it = labels.find(label);
      if (it == labels.end()) {
        return asbase::InvalidArgument("undefined label '" + label + "'");
      }
      // Relative to the end of the 4-byte operand.
      PatchI32(module.code, at,
               static_cast<int32_t>(static_cast<int64_t>(it->second) -
                                    static_cast<int64_t>(at + 4)));
    }
    labels.clear();
    label_fixups.clear();
    return asbase::OkStatus();
  };

  while (std::getline(input, line)) {
    ++line_number;
    auto tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& head = tokens[0];

    if (head == ".pages") {
      if (tokens.size() != 2) {
        return fail(".pages needs one operand");
      }
      module.initial_pages = static_cast<uint32_t>(std::stoul(tokens[1]));
      continue;
    }
    if (head == ".data") {
      if (tokens.size() < 3) {
        return fail(".data needs an address and bytes");
      }
      DataSegment segment;
      segment.address = static_cast<uint32_t>(std::stoul(tokens[1]));
      if (tokens[2].front() == '"') {
        AS_ASSIGN_OR_RETURN(segment.bytes, DecodeString(tokens[2]));
      } else {
        for (size_t i = 2; i < tokens.size(); ++i) {
          segment.bytes.push_back(
              static_cast<uint8_t>(std::stoul(tokens[i], nullptr, 16)));
        }
      }
      module.data.push_back(std::move(segment));
      continue;
    }
    if (head == ".func") {
      if (in_function) {
        return fail("nested .func");
      }
      if (tokens.size() < 2) {
        return fail(".func needs a name");
      }
      VmFunction function;
      function.name = tokens[1];
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].rfind("params=", 0) == 0) {
          function.num_params =
              static_cast<uint16_t>(std::stoul(tokens[i].substr(7)));
        } else if (tokens[i].rfind("locals=", 0) == 0) {
          function.num_locals =
              static_cast<uint16_t>(std::stoul(tokens[i].substr(7)));
        } else {
          return fail("bad .func attribute " + tokens[i]);
        }
      }
      function.entry = static_cast<uint32_t>(module.code.size());
      if (function_indices.count(function.name)) {
        return fail("duplicate function " + function.name);
      }
      function_indices[function.name] =
          static_cast<int>(module.functions.size());
      module.functions.push_back(std::move(function));
      in_function = true;
      continue;
    }
    if (head == ".end") {
      if (!in_function) {
        return fail(".end outside a function");
      }
      AS_RETURN_IF_ERROR(finish_function());
      in_function = false;
      continue;
    }

    if (!in_function) {
      return fail("instruction outside .func");
    }

    // Label definition: "name:"
    if (head.back() == ':' && tokens.size() == 1) {
      const std::string label = head.substr(0, head.size() - 1);
      if (labels.count(label)) {
        return fail("duplicate label " + label);
      }
      labels[label] = module.code.size();
      continue;
    }

    auto spec_it = Mnemonics().find(head);
    if (spec_it == Mnemonics().end()) {
      return fail("unknown mnemonic '" + head + "'");
    }
    const OpSpec& spec = spec_it->second;
    using Operand = OpSpec::Operand;
    if (spec.operand == Operand::kNone) {
      if (tokens.size() != 1) {
        return fail(head + " takes no operand");
      }
      module.code.push_back(static_cast<uint8_t>(spec.op));
      continue;
    }
    // load/store allow the offset to be omitted (defaults to 0).
    if (tokens.size() != 2 &&
        !(spec.operand == Operand::kU32Offset && tokens.size() == 1)) {
      return fail(head + " needs exactly one operand");
    }
    module.code.push_back(static_cast<uint8_t>(spec.op));
    switch (spec.operand) {
      case Operand::kI64:
        EmitI64(module.code, std::stoll(tokens[1]));
        break;
      case Operand::kU16Local:
        EmitU16(module.code, static_cast<uint16_t>(std::stoul(tokens[1])));
        break;
      case Operand::kU32Offset:
        EmitU32(module.code, tokens.size() == 2
                                 ? static_cast<uint32_t>(std::stoul(tokens[1]))
                                 : 0);
        break;
      case Operand::kLabel:
        label_fixups.emplace_back(module.code.size(), tokens[1]);
        EmitU32(module.code, 0);
        break;
      case Operand::kFunc:
        call_fixups.emplace_back(module.code.size(), tokens[1]);
        EmitU16(module.code, 0);
        break;
      case Operand::kHost: {
        auto [it, inserted] = host_indices.emplace(
            tokens[1], static_cast<uint16_t>(module.hostcalls.size()));
        if (inserted) {
          module.hostcalls.push_back(tokens[1]);
        }
        EmitU16(module.code, it->second);
        break;
      }
      case Operand::kNone:
        break;
    }
  }

  if (in_function) {
    return asbase::InvalidArgument("missing .end at end of input");
  }
  for (const auto& [at, name] : call_fixups) {
    auto it = function_indices.find(name);
    if (it == function_indices.end()) {
      return asbase::InvalidArgument("call to undefined function '" + name +
                                     "'");
    }
    module.code[at] = static_cast<uint8_t>(it->second);
    module.code[at + 1] = static_cast<uint8_t>(it->second >> 8);
  }
  auto main_it = function_indices.find("main");
  if (main_it == function_indices.end()) {
    return asbase::InvalidArgument("module has no 'main' function");
  }
  module.main_index = main_it->second;
  return module;
}

}  // namespace asvm
