#include "src/vm/vm.h"

#include <array>
#include <cstring>
#include <limits>

#include "src/vm/assembler.h"

namespace asvm {
namespace {

// Internal trap signal; converted to Status at the Run() boundary.
struct TrapException {
  std::string why;
};

}  // namespace

size_t VmModule::ImageBytes() const {
  size_t total = code.size();
  for (const auto& segment : data) {
    total += segment.bytes.size();
  }
  total += functions.size() * 32;  // table metadata
  return total;
}

int VmModule::FunctionIndex(const std::string& name) const {
  for (size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kHalt: return "halt";
    case Op::kPushI64: return "push";
    case Op::kDrop: return "drop";
    case Op::kDup: return "dup";
    case Op::kLocalGet: return "local.get";
    case Op::kLocalSet: return "local.set";
    case Op::kLocalTee: return "local.tee";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDivS: return "div_s";
    case Op::kRemS: return "rem_s";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShrS: return "shr_s";
    case Op::kShrU: return "shr_u";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLtS: return "lt_s";
    case Op::kLeS: return "le_s";
    case Op::kGtS: return "gt_s";
    case Op::kGeS: return "ge_s";
    case Op::kEqz: return "eqz";
    case Op::kLoad8U: return "load8";
    case Op::kLoad64: return "load64";
    case Op::kStore8: return "store8";
    case Op::kStore64: return "store64";
    case Op::kLoad32U: return "load32";
    case Op::kStore32: return "store32";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kHostcall: return "host";
    case Op::kMemSize: return "memsize";
    case Op::kMemGrow: return "memgrow";
  }
  return "?";
}

void HostTable::Register(const std::string& name, int arity, HostFn fn) {
  entries_[name] = Entry{arity, std::move(fn)};
}

const HostTable::Entry* HostTable::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Vm::Vm(const VmModule* module, const HostTable* host, VmMode mode)
    : module_(module), host_(host), mode_(mode) {
  memory_.assign(static_cast<size_t>(module_->initial_pages) * kPageSize, 0);
  for (const auto& segment : module_->data) {
    if (segment.address + segment.bytes.size() <= memory_.size()) {
      std::memcpy(memory_.data() + segment.address, segment.bytes.data(),
                  segment.bytes.size());
    }
  }
  resolved_hostcalls_.reserve(module_->hostcalls.size());
  for (const auto& name : module_->hostcalls) {
    resolved_hostcalls_.push_back(host_->Find(name));  // may be null: traps
  }
}

asbase::Status Vm::Trap(const std::string& why) const {
  return asbase::Internal("vm trap at pc=" + std::to_string(pc_) + ": " + why);
}

asbase::Status Vm::CheckRange(uint64_t addr, uint64_t len) const {
  if (addr + len > memory_.size() || addr + len < addr) {
    return asbase::OutOfRange("guest memory access [" + std::to_string(addr) +
                              ", +" + std::to_string(len) + ") out of bounds");
  }
  return asbase::OkStatus();
}

asbase::Result<std::string> Vm::ReadGuestString(uint64_t addr, uint64_t len) {
  AS_RETURN_IF_ERROR(CheckRange(addr, len));
  return std::string(reinterpret_cast<const char*>(memory_.data() + addr),
                     len);
}

asbase::Status Vm::WriteGuestBytes(uint64_t addr,
                                   std::span<const uint8_t> data) {
  AS_RETURN_IF_ERROR(CheckRange(addr, data.size()));
  if (!data.empty()) {
    std::memcpy(memory_.data() + addr, data.data(), data.size());
  }
  return asbase::OkStatus();
}

asbase::Result<int64_t> Vm::Run() {
  try {
    return Execute();
  } catch (const TrapException& trap) {
    return Trap(trap.why);
  }
}

asbase::Result<int64_t> Vm::Execute() {
  const std::vector<uint8_t>& code = module_->code;

  // kBoxed mode: every produced value is routed through a freshly allocated
  // heap box held in a small recycling ring — CPython-style allocator
  // traffic and pointer chasing per operation.
  std::array<std::unique_ptr<int64_t>, 64> boxes;
  size_t box_cursor = 0;

  auto trap = [](const std::string& why) -> void {
    throw TrapException{why};
  };

  auto push = [&](int64_t value) {
    if (mode_ == VmMode::kBoxed) {
      auto box = std::make_unique<int64_t>(value);
      value = *box;
      boxes[box_cursor++ & 63] = std::move(box);
    }
    if (stack_.size() >= kMaxStack) {
      trap("operand stack overflow");
    }
    stack_.push_back(value);
  };
  auto pop = [&]() -> int64_t {
    const size_t floor = frames_.empty() ? 0 : frames_.back().stack_floor;
    if (stack_.size() <= floor) {
      trap("operand stack underflow");
    }
    int64_t value = stack_.back();
    stack_.pop_back();
    return value;
  };

  auto read_u16 = [&]() -> uint16_t {
    if (pc_ + 2 > code.size()) {
      trap("truncated operand");
    }
    uint16_t v = static_cast<uint16_t>(code[pc_] | (code[pc_ + 1] << 8));
    pc_ += 2;
    return v;
  };
  auto read_u32 = [&]() -> uint32_t {
    if (pc_ + 4 > code.size()) {
      trap("truncated operand");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(code[pc_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pc_ += 4;
    return v;
  };
  auto read_i64 = [&]() -> int64_t {
    if (pc_ + 8 > code.size()) {
      trap("truncated operand");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(code[pc_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pc_ += 8;
    return static_cast<int64_t>(v);
  };

  auto local_slot = [&](uint16_t index) -> int64_t& {
    const Frame& frame = frames_.back();
    const VmFunction& function =
        module_->functions[static_cast<size_t>(frame.function_index)];
    if (index >= function.num_params + function.num_locals) {
      trap("local index out of range");
    }
    return locals_[frame.locals_base + index];
  };

  auto enter_function = [&](int index) {
    if (frames_.size() >= kMaxCallDepth) {
      trap("call depth exceeded");
    }
    const VmFunction& function =
        module_->functions[static_cast<size_t>(index)];
    Frame frame;
    frame.function_index = index;
    frame.pc = pc_;
    frame.locals_base = locals_.size();
    locals_.resize(locals_.size() + function.num_params + function.num_locals,
                   0);
    // Parameters were pushed left-to-right; pop right-to-left.
    for (int i = function.num_params - 1; i >= 0; --i) {
      const size_t floor = frames_.empty() ? 0 : frames_.back().stack_floor;
      if (stack_.size() <= floor) {
        trap("missing call arguments");
      }
      locals_[frame.locals_base + static_cast<size_t>(i)] = stack_.back();
      stack_.pop_back();
    }
    frame.stack_floor = stack_.size();
    frames_.push_back(frame);
    pc_ = function.entry;
  };

  if (module_->main_index < 0) {
    return asbase::FailedPrecondition("module has no main");
  }
  pc_ = module_->functions[static_cast<size_t>(module_->main_index)].entry;
  {
    Frame frame;
    frame.function_index = module_->main_index;
    frame.pc = code.size();  // returning from main halts
    frame.stack_floor = 0;
    frame.locals_base = 0;
    const VmFunction& main_fn =
        module_->functions[static_cast<size_t>(module_->main_index)];
    locals_.resize(main_fn.num_params + main_fn.num_locals, 0);
    frames_.push_back(frame);
  }

  while (true) {
    if (pc_ >= code.size()) {
      trap("pc out of bounds");
    }
    ++steps_;
    if (fuel_ != 0 && steps_ > fuel_) {
      trap("out of fuel");
    }
    const Op op = static_cast<Op>(code[pc_++]);
    switch (op) {
      case Op::kHalt:
        return stack_.empty() ? 0 : stack_.back();
      case Op::kPushI64:
        push(read_i64());
        break;
      case Op::kDrop:
        pop();
        break;
      case Op::kDup: {
        int64_t v = pop();
        push(v);
        push(v);
        break;
      }
      case Op::kLocalGet: {
        uint16_t index = read_u16();
        push(local_slot(index));
        break;
      }
      case Op::kLocalSet: {
        uint16_t index = read_u16();
        local_slot(index) = pop();
        break;
      }
      case Op::kLocalTee: {
        uint16_t index = read_u16();
        int64_t v = pop();
        push(v);
        local_slot(index) = v;
        break;
      }
      case Op::kAdd: {
        int64_t b = pop(), a = pop();
        push(static_cast<int64_t>(static_cast<uint64_t>(a) +
                                  static_cast<uint64_t>(b)));
        break;
      }
      case Op::kSub: {
        int64_t b = pop(), a = pop();
        push(static_cast<int64_t>(static_cast<uint64_t>(a) -
                                  static_cast<uint64_t>(b)));
        break;
      }
      case Op::kMul: {
        int64_t b = pop(), a = pop();
        push(static_cast<int64_t>(static_cast<uint64_t>(a) *
                                  static_cast<uint64_t>(b)));
        break;
      }
      case Op::kDivS: {
        int64_t b = pop(), a = pop();
        if (b == 0 ||
            (a == std::numeric_limits<int64_t>::min() && b == -1)) {
          trap("integer division overflow");
        }
        push(a / b);
        break;
      }
      case Op::kRemS: {
        int64_t b = pop(), a = pop();
        if (b == 0 ||
            (a == std::numeric_limits<int64_t>::min() && b == -1)) {
          trap("integer remainder overflow");
        }
        push(a % b);
        break;
      }
      case Op::kAnd: {
        int64_t b = pop(), a = pop();
        push(a & b);
        break;
      }
      case Op::kOr: {
        int64_t b = pop(), a = pop();
        push(a | b);
        break;
      }
      case Op::kXor: {
        int64_t b = pop(), a = pop();
        push(a ^ b);
        break;
      }
      case Op::kShl: {
        int64_t b = pop(), a = pop();
        push(static_cast<int64_t>(static_cast<uint64_t>(a)
                                  << (static_cast<uint64_t>(b) & 63)));
        break;
      }
      case Op::kShrS: {
        int64_t b = pop(), a = pop();
        push(a >> (static_cast<uint64_t>(b) & 63));
        break;
      }
      case Op::kShrU: {
        int64_t b = pop(), a = pop();
        push(static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                  (static_cast<uint64_t>(b) & 63)));
        break;
      }
      case Op::kEq: {
        int64_t b = pop(), a = pop();
        push(a == b ? 1 : 0);
        break;
      }
      case Op::kNe: {
        int64_t b = pop(), a = pop();
        push(a != b ? 1 : 0);
        break;
      }
      case Op::kLtS: {
        int64_t b = pop(), a = pop();
        push(a < b ? 1 : 0);
        break;
      }
      case Op::kLeS: {
        int64_t b = pop(), a = pop();
        push(a <= b ? 1 : 0);
        break;
      }
      case Op::kGtS: {
        int64_t b = pop(), a = pop();
        push(a > b ? 1 : 0);
        break;
      }
      case Op::kGeS: {
        int64_t b = pop(), a = pop();
        push(a >= b ? 1 : 0);
        break;
      }
      case Op::kEqz:
        push(pop() == 0 ? 1 : 0);
        break;
      case Op::kLoad8U: {
        uint32_t offset = read_u32();
        uint64_t addr = static_cast<uint64_t>(pop()) + offset;
        if (addr + 1 > memory_.size()) {
          trap("load8 out of bounds");
        }
        push(memory_[addr]);
        break;
      }
      case Op::kLoad64: {
        uint32_t offset = read_u32();
        uint64_t addr = static_cast<uint64_t>(pop()) + offset;
        if (addr + 8 > memory_.size() || addr + 8 < addr) {
          trap("load64 out of bounds");
        }
        uint64_t v;
        std::memcpy(&v, memory_.data() + addr, 8);
        push(static_cast<int64_t>(v));
        break;
      }
      case Op::kStore8: {
        uint32_t offset = read_u32();
        int64_t value = pop();
        uint64_t addr = static_cast<uint64_t>(pop()) + offset;
        if (addr + 1 > memory_.size()) {
          trap("store8 out of bounds");
        }
        memory_[addr] = static_cast<uint8_t>(value);
        break;
      }
      case Op::kStore64: {
        uint32_t offset = read_u32();
        int64_t value = pop();
        uint64_t addr = static_cast<uint64_t>(pop()) + offset;
        if (addr + 8 > memory_.size() || addr + 8 < addr) {
          trap("store64 out of bounds");
        }
        uint64_t v = static_cast<uint64_t>(value);
        std::memcpy(memory_.data() + addr, &v, 8);
        break;
      }
      case Op::kLoad32U: {
        uint32_t offset = read_u32();
        uint64_t addr = static_cast<uint64_t>(pop()) + offset;
        if (addr + 4 > memory_.size() || addr + 4 < addr) {
          trap("load32 out of bounds");
        }
        uint32_t v;
        std::memcpy(&v, memory_.data() + addr, 4);
        push(static_cast<int64_t>(v));
        break;
      }
      case Op::kStore32: {
        uint32_t offset = read_u32();
        int64_t value = pop();
        uint64_t addr = static_cast<uint64_t>(pop()) + offset;
        if (addr + 4 > memory_.size() || addr + 4 < addr) {
          trap("store32 out of bounds");
        }
        uint32_t v = static_cast<uint32_t>(value);
        std::memcpy(memory_.data() + addr, &v, 4);
        break;
      }
      case Op::kJmp: {
        int32_t rel = static_cast<int32_t>(read_u32());
        pc_ = static_cast<size_t>(static_cast<int64_t>(pc_) + rel);
        break;
      }
      case Op::kJz: {
        int32_t rel = static_cast<int32_t>(read_u32());
        if (pop() == 0) {
          pc_ = static_cast<size_t>(static_cast<int64_t>(pc_) + rel);
        }
        break;
      }
      case Op::kCall: {
        uint16_t index = read_u16();
        if (index >= module_->functions.size()) {
          trap("call to bad function index");
        }
        enter_function(index);
        break;
      }
      case Op::kRet: {
        int64_t value = pop();
        Frame frame = frames_.back();
        frames_.pop_back();
        stack_.resize(frame.stack_floor);
        locals_.resize(frame.locals_base);
        pc_ = frame.pc;
        if (frames_.empty()) {
          return value;  // returned from main
        }
        push(value);
        break;
      }
      case Op::kHostcall: {
        uint16_t index = read_u16();
        if (index >= resolved_hostcalls_.size()) {
          trap("bad hostcall index");
        }
        const HostTable::Entry* entry = resolved_hostcalls_[index];
        if (entry == nullptr) {
          trap("unresolved hostcall '" + module_->hostcalls[index] + "'");
        }
        std::vector<int64_t> args(static_cast<size_t>(entry->arity));
        for (int i = entry->arity - 1; i >= 0; --i) {
          args[static_cast<size_t>(i)] = pop();
        }
        auto result = entry->fn(*this, args);
        if (!result.ok()) {
          trap("hostcall '" + module_->hostcalls[index] +
               "' failed: " + result.status().ToString());
        }
        push(*result);
        break;
      }
      case Op::kMemSize:
        push(static_cast<int64_t>(memory_.size() / kPageSize));
        break;
      case Op::kMemGrow: {
        int64_t delta = pop();
        const int64_t old_pages =
            static_cast<int64_t>(memory_.size() / kPageSize);
        if (delta < 0 || old_pages + delta >
                             static_cast<int64_t>(module_->max_pages)) {
          push(-1);
        } else {
          memory_.resize(memory_.size() +
                             static_cast<size_t>(delta) * kPageSize,
                         0);
          push(old_pages);
        }
        break;
      }
      default:
        trap("illegal opcode " + std::to_string(static_cast<int>(op)));
    }
  }
}

asbase::Result<int64_t> RunSource(const std::string& source,
                                  const HostTable& host, VmMode mode) {
  AS_ASSIGN_OR_RETURN(VmModule module, Assemble(source));
  Vm vm(&module, &host, mode);
  return vm.Run();
}

}  // namespace asvm
