// AsVM interpreter and hostcall table.
//
// Two execution modes (DESIGN.md §1):
//   kAot    direct threaded switch dispatch over raw i64s — models an
//           AOT-compiled WASM module (Wasmtime class: slower than native,
//           much faster than a dynamic language runtime).
//   kBoxed  every value lives in a reference-counted heap box and every
//           operation allocates — models the CPython-on-WASM interpreter
//           (AlloyStack-Py / Faasm-Py): same semantics, an order of
//           magnitude more work per instruction.
//
// Hostcalls are resolved by name at instantiation against a HostTable; the
// core library binds WASI-style names (fd_read, fd_write, clock_time_get,
// buffer_register, access_buffer, ...) to as-libos, per §7.2.

#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/vm/isa.h"

namespace asvm {

class Vm;

// Host function: receives the VM (for guest-memory access) and the popped
// arguments (args[0] is the first pushed); returns the value to push.
using HostFn =
    std::function<asbase::Result<int64_t>(Vm& vm, std::span<const int64_t>)>;

class HostTable {
 public:
  void Register(const std::string& name, int arity, HostFn fn);
  bool Has(const std::string& name) const { return entries_.count(name) > 0; }

  struct Entry {
    int arity;
    HostFn fn;
  };
  const Entry* Find(const std::string& name) const;

 private:
  std::map<std::string, Entry> entries_;
};

enum class VmMode { kAot, kBoxed };

class Vm {
 public:
  // The module and host table must outlive the Vm.
  Vm(const VmModule* module, const HostTable* host, VmMode mode = VmMode::kAot);

  // Executes `main` to completion. Returns the value left by `halt`/`ret`.
  asbase::Result<int64_t> Run();

  // Guest memory access for hostcalls.
  asbase::Status CheckRange(uint64_t addr, uint64_t len) const;
  std::span<uint8_t> memory() { return memory_; }
  asbase::Result<std::string> ReadGuestString(uint64_t addr, uint64_t len);
  asbase::Status WriteGuestBytes(uint64_t addr, std::span<const uint8_t> data);

  uint64_t steps_executed() const { return steps_; }
  VmMode mode() const { return mode_; }

  // A cooperative step limit (0 = unlimited); Run traps when exceeded.
  void set_fuel(uint64_t max_steps) { fuel_ = max_steps; }

 private:
  struct Frame {
    int function_index;
    size_t pc;            // return address
    size_t stack_floor;   // operand stack height at entry
    size_t locals_base;   // into locals_
  };

  asbase::Status Trap(const std::string& why) const;
  asbase::Result<int64_t> Execute();

  const VmModule* module_;
  const HostTable* host_;
  VmMode mode_;

  std::vector<uint8_t> memory_;
  std::vector<int64_t> stack_;
  std::vector<int64_t> locals_;
  std::vector<Frame> frames_;
  std::vector<const HostTable::Entry*> resolved_hostcalls_;

  uint64_t steps_ = 0;
  uint64_t fuel_ = 0;
  size_t pc_ = 0;

  static constexpr size_t kMaxCallDepth = 512;
  static constexpr size_t kMaxStack = 1 << 20;
};

// Convenience: assemble-and-run with a host table (used by tests).
asbase::Result<int64_t> RunSource(const std::string& source,
                                  const HostTable& host,
                                  VmMode mode = VmMode::kAot);

}  // namespace asvm

#endif  // SRC_VM_VM_H_
