// AsVM: the bytecode VM standing in for Wasmtime in this reproduction
// (DESIGN.md §1). C and Python benchmark functions are compiled (by the
// assembler) to this ISA and executed by the interpreter; all I/O goes
// through a WASI-style hostcall table that the as-std adaptation layer binds
// to as-libos, matching §7.2.
//
// The ISA is a classic stack machine over i64 values with a linear byte
// memory, local variables, direct calls, and hostcalls. Operands are
// little-endian immediates following the opcode byte.

#ifndef SRC_VM_ISA_H_
#define SRC_VM_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace asvm {

enum class Op : uint8_t {
  kHalt = 0x00,      // stop; top of stack (or 0) is the module's result
  kPushI64 = 0x01,   // imm i64
  kDrop = 0x02,
  kDup = 0x03,

  kLocalGet = 0x10,  // imm u16
  kLocalSet = 0x11,  // imm u16
  kLocalTee = 0x12,  // imm u16 (set without popping)

  kAdd = 0x20,
  kSub = 0x21,
  kMul = 0x22,
  kDivS = 0x23,      // traps on /0 and INT64_MIN / -1
  kRemS = 0x24,
  kAnd = 0x25,
  kOr = 0x26,
  kXor = 0x27,
  kShl = 0x28,
  kShrS = 0x29,
  kShrU = 0x2A,

  kEq = 0x30,
  kNe = 0x31,
  kLtS = 0x32,
  kLeS = 0x33,
  kGtS = 0x34,
  kGeS = 0x35,
  kEqz = 0x36,

  kLoad8U = 0x40,    // imm u32 offset; pops addr, pushes zero-extended byte
  kLoad64 = 0x41,    // imm u32 offset
  kStore8 = 0x42,    // imm u32 offset; pops value, addr
  kStore64 = 0x43,
  kLoad32U = 0x44,   // imm u32 offset; zero-extends
  kStore32 = 0x45,   // imm u32 offset; stores low 32 bits

  kJmp = 0x50,       // imm i32, relative to the next instruction
  kJz = 0x51,        // pops cond; jumps when cond == 0
  kCall = 0x52,      // imm u16 function index
  kRet = 0x53,       // pops return value

  kHostcall = 0x60,  // imm u16 host table index

  kMemSize = 0x70,   // pushes memory size in pages
  kMemGrow = 0x71,   // pops page delta, pushes old size (or -1)
};

constexpr uint32_t kPageSize = 64 * 1024;

struct VmFunction {
  std::string name;
  uint16_t num_params = 0;
  uint16_t num_locals = 0;  // additional to params
  uint32_t entry = 0;       // code offset
};

struct DataSegment {
  uint32_t address;
  std::vector<uint8_t> bytes;
};

// A loaded module: code, function table, initial memory image.
struct VmModule {
  std::vector<uint8_t> code;
  std::vector<VmFunction> functions;
  std::vector<DataSegment> data;
  std::vector<std::string> hostcalls;  // names referenced by kHostcall index
  uint32_t initial_pages = 16;
  uint32_t max_pages = 1024;  // 64 MiB
  int main_index = -1;

  // Serialized "image size" used by the cold-start model: what an AOT
  // compiler would load from disk.
  size_t ImageBytes() const;

  int FunctionIndex(const std::string& name) const;
};

const char* OpName(Op op);

}  // namespace asvm

#endif  // SRC_VM_ISA_H_
