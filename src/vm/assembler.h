// Text assembler for AsVM modules.
//
// Benchmark functions for the C/Python evaluation paths (§8.5) are written
// in this assembly dialect, assembled once at startup (modeling AOT
// compilation, §6) and executed by the interpreter.
//
// Syntax, one statement per line ('#' or ';' starts a comment):
//
//   .pages 32                  initial memory pages
//   .data 4096 "hello\n"       string bytes at address
//   .data 8192 01 02 ff        hex bytes at address
//   .func main                 begin function (params/locals optional):
//   .func helper params=2 locals=3
//     push 42
//     local.get 0
//     add
//     call helper              call by name
//     host fd_write            hostcall by name
//     jmp again                labels local to the function
//     jz done
//   again:
//     ...
//   done:
//     ret                      (or halt in main)
//   .end
//
// The module's entry point is the function named "main".

#ifndef SRC_VM_ASSEMBLER_H_
#define SRC_VM_ASSEMBLER_H_

#include <string>

#include "src/common/status.h"
#include "src/vm/isa.h"

namespace asvm {

asbase::Result<VmModule> Assemble(const std::string& source);

}  // namespace asvm

#endif  // SRC_VM_ASSEMBLER_H_
