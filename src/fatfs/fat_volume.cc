#include "src/fatfs/fat_volume.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace asfat {
namespace {

// File I/O counters, labeled fs="fat" (the ramfs keeps its own series).
struct IoCounters {
  asobs::Counter& read_ops;
  asobs::Counter& read_bytes;
  asobs::Counter& write_ops;
  asobs::Counter& write_bytes;
};

IoCounters& FatIoCounters() {
  const asobs::Labels labels = {{"fs", "fat"}};
  static auto* counters = new IoCounters{
      asobs::Registry::Global().GetCounter("alloy_fs_read_ops_total", labels),
      asobs::Registry::Global().GetCounter("alloy_fs_read_bytes_total",
                                           labels),
      asobs::Registry::Global().GetCounter("alloy_fs_write_ops_total", labels),
      asobs::Registry::Global().GetCounter("alloy_fs_write_bytes_total",
                                           labels),
  };
  return *counters;
}

constexpr size_t kSector = asblk::BlockDevice::kBlockSize;
constexpr uint32_t kEntrySize = 32;
constexpr uint8_t kAttrDirectory = 0x10;
constexpr uint8_t kAttrArchive = 0x20;
constexpr uint8_t kAttrLfn = 0x0F;
constexpr uint8_t kDeletedMarker = 0xE5;

void PutLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void PutLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
uint16_t GetLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t GetLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint8_t ShortNameChecksum(const uint8_t* name11) {
  uint8_t sum = 0;
  for (int i = 0; i < 11; ++i) {
    sum = static_cast<uint8_t>(((sum & 1) << 7) + (sum >> 1) + name11[i]);
  }
  return sum;
}

bool IsAllowedShortChar(char c) {
  if (std::isupper(static_cast<unsigned char>(c)) ||
      std::isdigit(static_cast<unsigned char>(c))) {
    return true;
  }
  return std::strchr("!#$%&'()-@^_`{}~", c) != nullptr;
}

// True when `name` fits 8.3 verbatim (so no LFN entries are required).
bool IsValidShortName(const std::string& name) {
  size_t dot = name.rfind('.');
  std::string base = dot == std::string::npos ? name : name.substr(0, dot);
  std::string ext = dot == std::string::npos ? "" : name.substr(dot + 1);
  if (base.empty() || base.size() > 8 || ext.size() > 3) {
    return false;
  }
  for (char c : base) {
    if (!IsAllowedShortChar(c)) {
      return false;
    }
  }
  for (char c : ext) {
    if (!IsAllowedShortChar(c)) {
      return false;
    }
  }
  return true;
}

// Packs base/ext into the 11-byte space-padded form.
void PackShortName(const std::string& base, const std::string& ext,
                   uint8_t* out11) {
  std::memset(out11, ' ', 11);
  std::memcpy(out11, base.data(), std::min<size_t>(base.size(), 8));
  std::memcpy(out11 + 8, ext.data(), std::min<size_t>(ext.size(), 3));
}

std::string UnpackShortName(const uint8_t* name11) {
  std::string base(reinterpret_cast<const char*>(name11), 8);
  std::string ext(reinterpret_cast<const char*>(name11) + 8, 3);
  while (!base.empty() && base.back() == ' ') {
    base.pop_back();
  }
  while (!ext.empty() && ext.back() == ' ') {
    ext.pop_back();
  }
  if (ext.empty()) {
    return base;
  }
  return base + "." + ext;
}

std::string ToUpperAscii(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

bool NamesEqual(const std::string& a, const std::string& b) {
  return ToUpperAscii(a) == ToUpperAscii(b);
}

// The 13 UCS-2 character positions inside one LFN entry.
constexpr int kLfnOffsets[13] = {1, 3, 5, 7, 9, 14, 16, 18, 20, 22, 24, 28, 30};

}  // namespace

// ----------------------------------------------------------------- Format

asbase::Status FatVolume::Format(asblk::BlockDevice* device,
                                 const FormatOptions& options) {
  const uint64_t total_sectors = device->block_count();
  const uint32_t spc = options.sectors_per_cluster;
  if (spc == 0 || (spc & (spc - 1)) != 0) {
    return asbase::InvalidArgument("sectors_per_cluster must be a power of 2");
  }
  const uint32_t reserved = 32;
  // Solve: reserved + fat_sectors + clusters*spc <= total, where
  // fat_sectors = ceil((clusters + 2) * 4 / 512).
  uint64_t clusters = (total_sectors - reserved) / spc;
  uint64_t fat_sectors = 0;
  for (int i = 0; i < 8; ++i) {
    fat_sectors = ((clusters + 2) * 4 + kSector - 1) / kSector;
    clusters = (total_sectors - reserved - fat_sectors) / spc;
  }
  if (clusters < 8) {
    return asbase::InvalidArgument("device too small to format");
  }

  // Boot sector / BPB.
  std::vector<uint8_t> boot(kSector, 0);
  boot[0] = 0xEB;
  boot[1] = 0x58;
  boot[2] = 0x90;
  std::memcpy(&boot[3], "ALLOYFAT", 8);             // OEM name
  PutLe16(&boot[11], kSector);                      // bytes per sector
  boot[13] = static_cast<uint8_t>(spc);             // sectors per cluster
  PutLe16(&boot[14], static_cast<uint16_t>(reserved));
  boot[16] = 1;                                     // one FAT
  PutLe16(&boot[17], 0);                            // root entries (FAT32: 0)
  PutLe16(&boot[19], 0);                            // total16
  boot[21] = 0xF8;                                  // media descriptor
  PutLe16(&boot[22], 0);                            // fat16 size
  PutLe32(&boot[32], static_cast<uint32_t>(total_sectors));
  PutLe32(&boot[36], static_cast<uint32_t>(fat_sectors));
  PutLe32(&boot[44], 2);                            // root cluster
  PutLe16(&boot[48], 0xFFFF);                       // no FSInfo
  boot[66] = 0x29;                                  // extended boot signature
  PutLe32(&boot[67], 0xA110A110);                   // volume id
  std::memset(&boot[71], ' ', 11);
  std::memcpy(&boot[71], options.volume_label.data(),
              std::min<size_t>(options.volume_label.size(), 11));
  std::memcpy(&boot[82], "FAT32   ", 8);
  boot[510] = 0x55;
  boot[511] = 0xAA;
  AS_RETURN_IF_ERROR(device->Write(0, boot));

  // Zero the FAT region, then seed entries 0, 1 and the root cluster.
  std::vector<uint8_t> zero(kSector, 0);
  for (uint64_t s = 0; s < fat_sectors; ++s) {
    AS_RETURN_IF_ERROR(device->Write(reserved + s, zero));
  }
  std::vector<uint8_t> fat0(kSector, 0);
  PutLe32(&fat0[0], 0x0FFFFFF8);  // media
  PutLe32(&fat0[4], 0x0FFFFFFF);  // EOC
  PutLe32(&fat0[8], 0x0FFFFFFF);  // root cluster chain terminator
  AS_RETURN_IF_ERROR(device->Write(reserved, fat0));

  // Zero the root directory cluster.
  const uint64_t data_start = reserved + fat_sectors;
  for (uint32_t s = 0; s < spc; ++s) {
    AS_RETURN_IF_ERROR(device->Write(data_start + s, zero));
  }
  return asbase::OkStatus();
}

// ----------------------------------------------------------------- Mount

asbase::Result<std::unique_ptr<FatVolume>> FatVolume::Mount(
    asblk::BlockDevice* device) {
  auto volume = std::unique_ptr<FatVolume>(new FatVolume(device));
  AS_RETURN_IF_ERROR(volume->LoadGeometry());
  AS_RETURN_IF_ERROR(volume->LoadFat());
  return volume;
}

asbase::Status FatVolume::LoadGeometry() {
  std::vector<uint8_t> boot(kSector);
  AS_RETURN_IF_ERROR(device_->Read(0, boot));
  if (boot[510] != 0x55 || boot[511] != 0xAA) {
    return asbase::DataLoss("bad boot sector signature");
  }
  if (GetLe16(&boot[11]) != kSector) {
    return asbase::DataLoss("unsupported sector size");
  }
  sectors_per_cluster_ = boot[13];
  if (sectors_per_cluster_ == 0) {
    return asbase::DataLoss("corrupt BPB: zero sectors per cluster");
  }
  bytes_per_cluster_ = sectors_per_cluster_ * kSector;
  reserved_sectors_ = GetLe16(&boot[14]);
  fat_sectors_ = GetLe32(&boot[36]);
  root_cluster_ = GetLe32(&boot[44]);
  const uint32_t total_sectors = GetLe32(&boot[32]);
  data_start_sector_ = reserved_sectors_ + fat_sectors_;
  if (data_start_sector_ >= total_sectors) {
    return asbase::DataLoss("corrupt BPB: no data region");
  }
  cluster_count_ = (total_sectors - data_start_sector_) / sectors_per_cluster_;
  return asbase::OkStatus();
}

asbase::Status FatVolume::LoadFat() {
  fat_ = std::make_shared<std::vector<uint32_t>>(cluster_count_ + 2, 0);
  std::vector<uint32_t>& fat = *fat_;
  std::vector<uint8_t> sector(kSector);
  const uint32_t entries_needed = cluster_count_ + 2;
  for (uint32_t s = 0; s * (kSector / 4) < entries_needed; ++s) {
    AS_RETURN_IF_ERROR(device_->Read(reserved_sectors_ + s, sector));
    const uint32_t base = s * (kSector / 4);
    for (uint32_t i = 0; i < kSector / 4 && base + i < entries_needed; ++i) {
      fat[base + i] = GetLe32(&sector[i * 4]) & kFatMask;
    }
  }
  return asbase::OkStatus();
}

FatVolume::MetaImage FatVolume::SnapshotMeta() {
  std::lock_guard<std::mutex> lock(mutex_);
  MetaImage meta;
  meta.sectors_per_cluster = sectors_per_cluster_;
  meta.bytes_per_cluster = bytes_per_cluster_;
  meta.reserved_sectors = reserved_sectors_;
  meta.fat_sectors = fat_sectors_;
  meta.data_start_sector = data_start_sector_;
  meta.cluster_count = cluster_count_;
  meta.root_cluster = root_cluster_;
  meta.fat = fat_;  // shared; MutableFat copies before the next update
  meta.next_free_hint = next_free_hint_;
  return meta;
}

std::unique_ptr<FatVolume> FatVolume::MountFromMeta(asblk::BlockDevice* device,
                                                    const MetaImage& meta) {
  auto volume = std::unique_ptr<FatVolume>(new FatVolume(device));
  volume->sectors_per_cluster_ = meta.sectors_per_cluster;
  volume->bytes_per_cluster_ = meta.bytes_per_cluster;
  volume->reserved_sectors_ = meta.reserved_sectors;
  volume->fat_sectors_ = meta.fat_sectors;
  volume->data_start_sector_ = meta.data_start_sector;
  volume->cluster_count_ = meta.cluster_count;
  volume->root_cluster_ = meta.root_cluster;
  volume->fat_ = meta.fat;
  volume->next_free_hint_ = meta.next_free_hint;
  return volume;
}

// ----------------------------------------------------------------- FAT ops

std::vector<uint32_t>& FatVolume::MutableFat() {
  // use_count > 1 means a MetaImage (or a sibling mounted from one) still
  // references this vector: copy before mutating. A spuriously high count
  // (the image died concurrently) only costs an extra copy, never a shared
  // mutation.
  if (fat_.use_count() > 1) {
    fat_ = std::make_shared<std::vector<uint32_t>>(*fat_);
  }
  return *fat_;
}

uint32_t FatVolume::FatEntry(uint32_t cluster) const {
  AS_CHECK(cluster < fat().size()) << "FAT index out of range";
  return fat()[cluster];
}

asbase::Status FatVolume::SetFatEntry(uint32_t cluster, uint32_t value) {
  std::vector<uint32_t>& fat = MutableFat();
  AS_CHECK(cluster < fat.size());
  fat[cluster] = value & kFatMask;
  // Write-through of the containing FAT sector.
  const uint32_t sector_index = cluster / (kSector / 4);
  std::vector<uint8_t> sector(kSector);
  const uint32_t base = sector_index * (kSector / 4);
  for (uint32_t i = 0; i < kSector / 4; ++i) {
    PutLe32(&sector[i * 4], base + i < fat.size() ? fat[base + i] : 0);
  }
  return device_->Write(reserved_sectors_ + sector_index, sector);
}

asbase::Result<uint32_t> FatVolume::AllocateCluster(uint32_t prev_cluster) {
  const uint32_t hint = next_free_hint_ < 2 ? 2 : next_free_hint_;
  for (uint32_t probe = 0; probe < cluster_count_; ++probe) {
    const uint32_t candidate = 2 + (hint - 2 + probe) % cluster_count_;
    if (fat()[candidate] == 0) {
      AS_RETURN_IF_ERROR(SetFatEntry(candidate, 0x0FFFFFFF));
      if (prev_cluster != 0) {
        AS_RETURN_IF_ERROR(SetFatEntry(prev_cluster, candidate));
      }
      next_free_hint_ = candidate + 1;
      return candidate;
    }
  }
  return asbase::ResourceExhausted("filesystem full: no free clusters");
}

asbase::Status FatVolume::FreeChain(uint32_t first_cluster) {
  uint32_t cluster = first_cluster;
  uint32_t guard = 0;
  while (cluster >= 2 && cluster < kEndOfChain) {
    if (++guard > cluster_count_ + 2) {
      return asbase::DataLoss("FAT chain cycle detected");
    }
    const uint32_t next = FatEntry(cluster);
    AS_RETURN_IF_ERROR(SetFatEntry(cluster, 0));
    cluster = next;
  }
  return asbase::OkStatus();
}

// ----------------------------------------------------------------- data I/O

uint64_t FatVolume::ClusterFirstSector(uint32_t cluster) const {
  return data_start_sector_ +
         static_cast<uint64_t>(cluster - 2) * sectors_per_cluster_;
}

asbase::Status FatVolume::ReadInCluster(uint32_t cluster, uint32_t offset,
                                        std::span<uint8_t> out) {
  AS_CHECK(offset + out.size() <= bytes_per_cluster_);
  const uint64_t first_sector = ClusterFirstSector(cluster);
  const uint32_t start_sector = offset / kSector;
  const uint32_t end_sector =
      static_cast<uint32_t>((offset + out.size() + kSector - 1) / kSector);
  std::vector<uint8_t> buffer((end_sector - start_sector) * kSector);
  AS_RETURN_IF_ERROR(device_->Read(first_sector + start_sector, buffer));
  std::memcpy(out.data(), buffer.data() + (offset - start_sector * kSector),
              out.size());
  return asbase::OkStatus();
}

asbase::Status FatVolume::WriteInCluster(uint32_t cluster, uint32_t offset,
                                         std::span<const uint8_t> data) {
  AS_CHECK(offset + data.size() <= bytes_per_cluster_);
  const uint64_t first_sector = ClusterFirstSector(cluster);
  const uint32_t start_sector = offset / kSector;
  const uint32_t end_sector =
      static_cast<uint32_t>((offset + data.size() + kSector - 1) / kSector);
  std::vector<uint8_t> buffer((end_sector - start_sector) * kSector);
  const bool aligned = offset % kSector == 0 && data.size() % kSector == 0;
  if (!aligned) {
    // Read-modify-write for the partial sectors.
    AS_RETURN_IF_ERROR(device_->Read(first_sector + start_sector, buffer));
  }
  std::memcpy(buffer.data() + (offset - start_sector * kSector), data.data(),
              data.size());
  return device_->Write(first_sector + start_sector, buffer);
}

asbase::Status FatVolume::ZeroCluster(uint32_t cluster) {
  std::vector<uint8_t> zero(bytes_per_cluster_, 0);
  return device_->Write(ClusterFirstSector(cluster), zero);
}

asbase::Result<uint32_t> FatVolume::ClusterForOffset(uint32_t first_cluster,
                                                     uint64_t offset,
                                                     bool extend) {
  AS_CHECK(first_cluster >= 2);
  uint32_t cluster = first_cluster;
  uint64_t hops = offset / bytes_per_cluster_;
  uint32_t guard = 0;
  while (hops > 0) {
    if (++guard > cluster_count_ + 2) {
      return asbase::DataLoss("FAT chain cycle detected");
    }
    uint32_t next = FatEntry(cluster);
    if (next >= kEndOfChain) {
      if (!extend) {
        return asbase::OutOfRange("offset beyond end of chain");
      }
      AS_ASSIGN_OR_RETURN(next, AllocateCluster(cluster));
    }
    cluster = next;
    --hops;
  }
  return cluster;
}

// ----------------------------------------------------------------- dir ops

asbase::Status FatVolume::ReadRawEntry(uint32_t dir_cluster, uint32_t index,
                                       std::span<uint8_t> out32) {
  const uint32_t entries_per_cluster = bytes_per_cluster_ / kEntrySize;
  auto cluster = ClusterForOffset(
      dir_cluster, static_cast<uint64_t>(index) * kEntrySize, false);
  if (!cluster.ok()) {
    return cluster.status();
  }
  return ReadInCluster(*cluster, (index % entries_per_cluster) * kEntrySize,
                       out32);
}

asbase::Status FatVolume::WriteRawEntry(uint32_t dir_cluster, uint32_t index,
                                        std::span<const uint8_t> entry32) {
  const uint32_t entries_per_cluster = bytes_per_cluster_ / kEntrySize;
  AS_ASSIGN_OR_RETURN(
      uint32_t cluster,
      ClusterForOffset(dir_cluster, static_cast<uint64_t>(index) * kEntrySize,
                       true));
  return WriteInCluster(cluster, (index % entries_per_cluster) * kEntrySize,
                        entry32);
}

asbase::Result<std::vector<FatVolume::DirEntry>> FatVolume::ParseDir(
    uint32_t dir_cluster) {
  std::vector<DirEntry> entries;
  const uint32_t entries_per_cluster = bytes_per_cluster_ / kEntrySize;
  std::vector<uint8_t> cluster_data(bytes_per_cluster_);

  // LFN accumulation state.
  std::u16string lfn_chars;
  uint32_t lfn_start = 0;
  uint8_t lfn_checksum = 0;
  bool lfn_active = false;

  uint32_t cluster = dir_cluster;
  uint32_t index = 0;
  uint32_t guard = 0;
  while (cluster >= 2 && cluster < kEndOfChain) {
    if (++guard > cluster_count_ + 2) {
      return asbase::DataLoss("directory chain cycle");
    }
    AS_RETURN_IF_ERROR(ReadInCluster(cluster, 0, cluster_data));
    for (uint32_t i = 0; i < entries_per_cluster; ++i, ++index) {
      const uint8_t* e = &cluster_data[i * kEntrySize];
      if (e[0] == 0x00) {
        return entries;  // end of directory
      }
      if (e[0] == kDeletedMarker) {
        lfn_active = false;
        continue;
      }
      if ((e[11] & 0x3F) == kAttrLfn) {
        const uint8_t ord = e[0];
        if (ord & 0x40) {  // last (highest) LFN entry comes first on disk
          lfn_chars.assign(static_cast<size_t>(ord & 0x3F) * 13, char16_t{0xFFFF});
          lfn_checksum = e[13];
          lfn_start = index;
          lfn_active = true;
        }
        if (lfn_active) {
          const uint32_t seq = (ord & 0x3F);
          if (seq == 0 || seq * 13 > lfn_chars.size() || e[13] != lfn_checksum) {
            lfn_active = false;
            continue;
          }
          for (int k = 0; k < 13; ++k) {
            lfn_chars[(seq - 1) * 13 + static_cast<size_t>(k)] =
                static_cast<char16_t>(GetLe16(&e[kLfnOffsets[k]]));
          }
        }
        continue;
      }
      if (e[11] & 0x08) {  // volume label
        lfn_active = false;
        continue;
      }
      DirEntry entry;
      entry.attr = e[11];
      entry.first_cluster = (static_cast<uint32_t>(GetLe16(&e[20])) << 16) |
                            GetLe16(&e[26]);
      entry.size = GetLe32(&e[28]);
      entry.location = EntryLocation{dir_cluster, index};
      entry.lfn_start_index = index;
      if (lfn_active && ShortNameChecksum(e) == lfn_checksum) {
        std::string name;
        for (char16_t c : lfn_chars) {
          if (c == 0 || c == char16_t{0xFFFF}) {
            break;
          }
          // UCS-2 -> UTF-8 (ASCII fast path; our names are ASCII).
          if (c < 0x80) {
            name.push_back(static_cast<char>(c));
          } else if (c < 0x800) {
            name.push_back(static_cast<char>(0xC0 | (c >> 6)));
            name.push_back(static_cast<char>(0x80 | (c & 0x3F)));
          } else {
            name.push_back(static_cast<char>(0xE0 | (c >> 12)));
            name.push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
            name.push_back(static_cast<char>(0x80 | (c & 0x3F)));
          }
        }
        entry.name = std::move(name);
        entry.lfn_start_index = lfn_start;
      } else {
        entry.name = UnpackShortName(e);
      }
      lfn_active = false;
      entries.push_back(std::move(entry));
    }
    cluster = FatEntry(cluster);
  }
  return entries;
}

asbase::Result<FatVolume::DirEntry> FatVolume::FindInDir(
    uint32_t dir_cluster, const std::string& name) {
  AS_ASSIGN_OR_RETURN(auto entries, ParseDir(dir_cluster));
  for (auto& entry : entries) {
    if (NamesEqual(entry.name, name)) {
      return std::move(entry);
    }
  }
  return asbase::NotFound("'" + name + "' not found in directory");
}

asbase::Result<FatVolume::DirEntry> FatVolume::CreateEntry(
    uint32_t dir_cluster, const std::string& name, uint8_t attr,
    uint32_t first_cluster, uint32_t size) {
  if (name.empty() || name.size() > 255 ||
      name.find('/') != std::string::npos) {
    return asbase::InvalidArgument("bad file name '" + name + "'");
  }

  // Decide on the short name and whether LFN entries are needed.
  uint8_t short_name[11];
  const std::string upper = ToUpperAscii(name);
  bool needs_lfn;
  if (IsValidShortName(upper)) {
    needs_lfn = upper != name;  // preserve the original case via LFN
    size_t dot = upper.rfind('.');
    PackShortName(dot == std::string::npos ? upper : upper.substr(0, dot),
                  dot == std::string::npos ? "" : upper.substr(dot + 1),
                  short_name);
  } else {
    needs_lfn = true;
    // Build a "BASE~N.EXT" short alias that does not collide.
    size_t dot = upper.rfind('.');
    std::string base = dot == std::string::npos ? upper : upper.substr(0, dot);
    std::string ext = dot == std::string::npos ? "" : upper.substr(dot + 1);
    std::string clean_base, clean_ext;
    for (char c : base) {
      if (IsAllowedShortChar(c)) {
        clean_base.push_back(c);
      }
    }
    for (char c : ext) {
      if (IsAllowedShortChar(c)) {
        clean_ext.push_back(c);
      }
    }
    if (clean_base.size() > 6) {
      clean_base.resize(6);
    }
    if (clean_base.empty()) {
      clean_base = "FILE";
    }
    if (clean_ext.size() > 3) {
      clean_ext.resize(3);
    }
    AS_ASSIGN_OR_RETURN(auto existing, ParseDir(dir_cluster));
    std::string alias;
    for (int n = 1; n < 1000000; ++n) {
      alias = clean_base + "~" + std::to_string(n);
      std::string full = clean_ext.empty() ? alias : alias + "." + clean_ext;
      bool taken = false;
      for (const auto& entry : existing) {
        if (NamesEqual(entry.name, full)) {
          taken = true;
          break;
        }
      }
      if (!taken) {
        break;
      }
    }
    PackShortName(alias, clean_ext, short_name);
  }

  const uint32_t lfn_count =
      needs_lfn ? static_cast<uint32_t>((name.size() + 12) / 13) : 0;
  const uint32_t slots_needed = lfn_count + 1;

  // Find a contiguous run of free slots (deleted or virgin entries).
  uint32_t run_start = 0;
  uint32_t run_len = 0;
  uint32_t index = 0;
  bool found = false;
  uint8_t raw[kEntrySize];
  while (!found) {
    asbase::Status status = ReadRawEntry(dir_cluster, index, raw);
    bool is_free;
    if (status.ok()) {
      if (raw[0] == 0x00) {
        // Virgin territory: everything from here on is free.
        if (run_len == 0) {
          run_start = index;
        }
        found = true;
        break;
      }
      is_free = raw[0] == kDeletedMarker;
    } else {
      // Past the allocated chain: treat as free, WriteRawEntry will extend.
      if (run_len == 0) {
        run_start = index;
      }
      found = true;
      break;
    }
    if (is_free) {
      if (run_len == 0) {
        run_start = index;
      }
      if (++run_len == slots_needed) {
        found = true;
        break;
      }
    } else {
      run_len = 0;
    }
    ++index;
  }

  // Write LFN entries (descending order) then the 8.3 entry.
  const uint8_t checksum = ShortNameChecksum(short_name);
  for (uint32_t i = 0; i < lfn_count; ++i) {
    const uint32_t seq = lfn_count - i;  // on-disk order: highest first
    uint8_t entry[kEntrySize];
    std::memset(entry, 0, sizeof(entry));
    entry[0] = static_cast<uint8_t>(seq | (seq == lfn_count ? 0x40 : 0));
    entry[11] = kAttrLfn;
    entry[13] = checksum;
    for (int k = 0; k < 13; ++k) {
      const size_t pos = (seq - 1) * 13 + static_cast<size_t>(k);
      uint16_t c;
      if (pos < name.size()) {
        c = static_cast<uint8_t>(name[pos]);  // ASCII -> UCS-2
      } else if (pos == name.size()) {
        c = 0x0000;
      } else {
        c = 0xFFFF;
      }
      PutLe16(&entry[kLfnOffsets[k]], c);
    }
    AS_RETURN_IF_ERROR(WriteRawEntry(dir_cluster, run_start + i, entry));
  }

  uint8_t entry[kEntrySize];
  std::memset(entry, 0, sizeof(entry));
  std::memcpy(entry, short_name, 11);
  entry[11] = attr;
  PutLe16(&entry[20], static_cast<uint16_t>(first_cluster >> 16));
  PutLe16(&entry[26], static_cast<uint16_t>(first_cluster & 0xFFFF));
  PutLe32(&entry[28], size);
  AS_RETURN_IF_ERROR(WriteRawEntry(dir_cluster, run_start + lfn_count, entry));

  DirEntry result;
  result.name = name;
  result.attr = attr;
  result.first_cluster = first_cluster;
  result.size = size;
  result.location = EntryLocation{dir_cluster, run_start + lfn_count};
  result.lfn_start_index = run_start;
  return result;
}

asbase::Status FatVolume::DeleteEntry(const DirEntry& entry) {
  uint8_t raw[kEntrySize];
  for (uint32_t index = entry.lfn_start_index; index <= entry.location.index;
       ++index) {
    AS_RETURN_IF_ERROR(ReadRawEntry(entry.location.dir_cluster, index, raw));
    raw[0] = kDeletedMarker;
    AS_RETURN_IF_ERROR(WriteRawEntry(entry.location.dir_cluster, index, raw));
  }
  return asbase::OkStatus();
}

asbase::Status FatVolume::UpdateEntry(const EntryLocation& location,
                                      uint32_t first_cluster, uint32_t size) {
  uint8_t raw[kEntrySize];
  AS_RETURN_IF_ERROR(ReadRawEntry(location.dir_cluster, location.index, raw));
  PutLe16(&raw[20], static_cast<uint16_t>(first_cluster >> 16));
  PutLe16(&raw[26], static_cast<uint16_t>(first_cluster & 0xFFFF));
  PutLe32(&raw[28], size);
  return WriteRawEntry(location.dir_cluster, location.index, raw);
}

// ------------------------------------------------------------- path lookup

asbase::Result<FatVolume::ResolvedParent> FatVolume::ResolveParent(
    const std::string& path) {
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return asbase::InvalidArgument("path must name a file or directory");
  }
  uint32_t dir_cluster = root_cluster_;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    AS_ASSIGN_OR_RETURN(DirEntry entry, FindInDir(dir_cluster, parts[i]));
    if (!entry.is_directory()) {
      return asbase::InvalidArgument("'" + parts[i] + "' is not a directory");
    }
    dir_cluster = entry.first_cluster;
  }
  return ResolvedParent{dir_cluster, parts.back()};
}

asbase::Result<FatVolume::DirEntry> FatVolume::ResolvePath(
    const std::string& path) {
  AS_ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));
  return FindInDir(parent.dir_cluster, parent.leaf);
}

// --------------------------------------------------------------- file API

asbase::Result<int> FatVolume::Open(const std::string& path, OpenFlags flags) {
  std::lock_guard<std::mutex> lock(mutex_);
  AS_ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));

  auto found = FindInDir(parent.dir_cluster, parent.leaf);
  DirEntry entry;
  if (found.ok()) {
    entry = *found;
    if (entry.is_directory()) {
      return asbase::InvalidArgument(path + " is a directory");
    }
    if (flags.truncate && entry.first_cluster != 0) {
      AS_RETURN_IF_ERROR(FreeChain(entry.first_cluster));
      entry.first_cluster = 0;
      entry.size = 0;
      AS_RETURN_IF_ERROR(UpdateEntry(entry.location, 0, 0));
    }
  } else if (found.status().code() == asbase::ErrorCode::kNotFound &&
             flags.create) {
    AS_ASSIGN_OR_RETURN(
        entry, CreateEntry(parent.dir_cluster, parent.leaf, kAttrArchive,
                           /*first_cluster=*/0, /*size=*/0));
  } else {
    return found.status();
  }

  OpenFile file;
  file.path = path;
  file.first_cluster = entry.first_cluster;
  file.size = entry.size;
  file.offset = flags.append ? entry.size : 0;
  file.location = entry.location;
  file.flags = flags;
  const int handle = next_handle_++;
  open_files_[handle] = std::move(file);
  return handle;
}

asbase::Status FatVolume::FlushFile(OpenFile& file) {
  if (file.dirty) {
    AS_RETURN_IF_ERROR(UpdateEntry(file.location, file.first_cluster,
                                   file.size));
    file.dirty = false;
  }
  return asbase::OkStatus();
}

asbase::Status FatVolume::Close(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  asbase::Status status = FlushFile(it->second);
  open_files_.erase(it);
  return status;
}

asbase::Result<size_t> FatVolume::Read(int handle, std::span<uint8_t> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  OpenFile& file = it->second;
  if (!file.flags.read) {
    return asbase::PermissionDenied("handle not open for reading");
  }
  if (file.offset >= file.size || file.first_cluster == 0) {
    return size_t{0};
  }
  size_t total = std::min<uint64_t>(out.size(), file.size - file.offset);
  size_t done = 0;
  while (done < total) {
    AS_ASSIGN_OR_RETURN(
        uint32_t cluster,
        ClusterForOffset(file.first_cluster, file.offset, false));
    const uint32_t in_cluster =
        static_cast<uint32_t>(file.offset % bytes_per_cluster_);
    const size_t chunk =
        std::min<size_t>(total - done, bytes_per_cluster_ - in_cluster);
    AS_RETURN_IF_ERROR(
        ReadInCluster(cluster, in_cluster, out.subspan(done, chunk)));
    done += chunk;
    file.offset += chunk;
  }
  FatIoCounters().read_ops.Add(1);
  FatIoCounters().read_bytes.Add(done);
  return done;
}

asbase::Result<size_t> FatVolume::Write(int handle,
                                        std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  OpenFile& file = it->second;
  if (!file.flags.write) {
    return asbase::PermissionDenied("handle not open for writing");
  }
  if (file.flags.append) {
    file.offset = file.size;
  }
  if (data.empty()) {
    return size_t{0};
  }
  if (file.first_cluster == 0) {
    AS_ASSIGN_OR_RETURN(file.first_cluster, AllocateCluster(0));
    // Clusters are recycled across files; scrub before exposing.
    AS_RETURN_IF_ERROR(ZeroCluster(file.first_cluster));
    file.dirty = true;
  }
  // Writing past EOF through a sparse seek: FAT has no holes, so extend the
  // chain with zeroed clusters up to the write position.
  if (file.offset > file.size) {
    uint64_t pos = file.size;
    while (pos / bytes_per_cluster_ < file.offset / bytes_per_cluster_) {
      pos = (pos / bytes_per_cluster_ + 1) * bytes_per_cluster_;
      AS_ASSIGN_OR_RETURN(uint32_t cluster,
                          ClusterForOffset(file.first_cluster, pos, true));
      AS_RETURN_IF_ERROR(ZeroCluster(cluster));
    }
    // Zero the gap bytes inside the last cluster before the old EOF's
    // cluster boundary (cluster contents beyond size are already zero for
    // freshly allocated clusters; for the EOF cluster, zero explicitly).
    const uint32_t eof_in_cluster =
        static_cast<uint32_t>(file.size % bytes_per_cluster_);
    if (eof_in_cluster != 0) {
      AS_ASSIGN_OR_RETURN(uint32_t cluster,
                          ClusterForOffset(file.first_cluster, file.size,
                                           false));
      std::vector<uint8_t> zeros(bytes_per_cluster_ - eof_in_cluster, 0);
      AS_RETURN_IF_ERROR(WriteInCluster(cluster, eof_in_cluster, zeros));
    }
  }

  size_t done = 0;
  while (done < data.size()) {
    auto cluster = ClusterForOffset(file.first_cluster, file.offset, true);
    if (!cluster.ok()) {
      break;  // filesystem full; report the partial write
    }
    const uint32_t in_cluster =
        static_cast<uint32_t>(file.offset % bytes_per_cluster_);
    const size_t chunk =
        std::min<size_t>(data.size() - done, bytes_per_cluster_ - in_cluster);
    AS_RETURN_IF_ERROR(
        WriteInCluster(*cluster, in_cluster, data.subspan(done, chunk)));
    done += chunk;
    file.offset += chunk;
    if (file.offset > file.size) {
      file.size = static_cast<uint32_t>(file.offset);
      file.dirty = true;
    }
  }
  if (done > 0) {
    file.dirty = true;
  }
  if (done == 0) {
    return asbase::ResourceExhausted("filesystem full");
  }
  FatIoCounters().write_ops.Add(1);
  FatIoCounters().write_bytes.Add(done);
  return done;
}

asbase::Result<uint64_t> FatVolume::Seek(int handle, int64_t offset,
                                         Whence whence) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  OpenFile& file = it->second;
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCurrent:
      base = static_cast<int64_t>(file.offset);
      break;
    case Whence::kEnd:
      base = static_cast<int64_t>(file.size);
      break;
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return asbase::OutOfRange("seek before start of file");
  }
  file.offset = static_cast<uint64_t>(target);
  return file.offset;
}

asbase::Result<FileInfo> FatVolume::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return FileInfo{"/", 0, true};
  }
  AS_ASSIGN_OR_RETURN(DirEntry entry, ResolvePath(path));
  // An open write handle may hold a newer size than the directory entry.
  uint32_t size = entry.size;
  for (const auto& [handle, file] : open_files_) {
    if (file.path == path && file.size > size) {
      size = file.size;
    }
  }
  return FileInfo{entry.name, size, entry.is_directory()};
}

asbase::Status FatVolume::Mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  AS_ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));
  if (FindInDir(parent.dir_cluster, parent.leaf).ok()) {
    return asbase::AlreadyExists(path + " exists");
  }
  AS_ASSIGN_OR_RETURN(uint32_t cluster, AllocateCluster(0));
  AS_RETURN_IF_ERROR(ZeroCluster(cluster));
  AS_RETURN_IF_ERROR(CreateEntry(parent.dir_cluster, parent.leaf,
                                 kAttrDirectory, cluster, 0)
                         .status());
  return asbase::OkStatus();
}

asbase::Status FatVolume::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  AS_ASSIGN_OR_RETURN(DirEntry entry, ResolvePath(path));
  for (const auto& [handle, file] : open_files_) {
    if (file.path == path) {
      return asbase::FailedPrecondition(path + " is open");
    }
  }
  if (entry.is_directory()) {
    AS_ASSIGN_OR_RETURN(auto children, ParseDir(entry.first_cluster));
    for (const auto& child : children) {
      if (child.name != "." && child.name != "..") {
        return asbase::FailedPrecondition(path + " is not empty");
      }
    }
  }
  if (entry.first_cluster != 0) {
    AS_RETURN_IF_ERROR(FreeChain(entry.first_cluster));
  }
  return DeleteEntry(entry);
}

asbase::Result<std::vector<FileInfo>> FatVolume::ReadDir(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  uint32_t dir_cluster = root_cluster_;
  if (!parts.empty()) {
    AS_ASSIGN_OR_RETURN(DirEntry entry, ResolvePath(path));
    if (!entry.is_directory()) {
      return asbase::InvalidArgument(path + " is not a directory");
    }
    dir_cluster = entry.first_cluster;
  }
  AS_ASSIGN_OR_RETURN(auto entries, ParseDir(dir_cluster));
  std::vector<FileInfo> out;
  for (const auto& entry : entries) {
    if (entry.name == "." || entry.name == "..") {
      continue;
    }
    out.push_back(FileInfo{entry.name, entry.size, entry.is_directory()});
  }
  return out;
}

asbase::Status FatVolume::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [handle, file] : open_files_) {
    AS_RETURN_IF_ERROR(FlushFile(file));
  }
  return asbase::OkStatus();
}

asbase::Result<uint32_t> FatVolume::CountFreeClusters() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t free = 0;
  for (uint32_t c = 2; c < cluster_count_ + 2; ++c) {
    if (fat()[c] == 0) {
      ++free;
    }
  }
  return free;
}

}  // namespace asfat
