#include "src/fatfs/filesystem.h"

namespace asfat {

asbase::Status Filesystem::WriteFile(const std::string& path,
                                     std::span<const uint8_t> data) {
  AS_ASSIGN_OR_RETURN(int handle, Open(path, OpenFlags::WriteCreate()));
  size_t written = 0;
  while (written < data.size()) {
    auto n = Write(handle, data.subspan(written));
    if (!n.ok()) {
      Close(handle);
      return n.status();
    }
    if (*n == 0) {
      Close(handle);
      return asbase::ResourceExhausted("filesystem full writing " + path);
    }
    written += *n;
  }
  return Close(handle);
}

asbase::Status Filesystem::WriteFile(const std::string& path,
                                     const std::string& text) {
  return WriteFile(path,
                   std::span<const uint8_t>(
                       reinterpret_cast<const uint8_t*>(text.data()),
                       text.size()));
}

asbase::Result<std::vector<uint8_t>> Filesystem::ReadFile(
    const std::string& path) {
  AS_ASSIGN_OR_RETURN(FileInfo info, Stat(path));
  if (info.is_directory) {
    return asbase::InvalidArgument(path + " is a directory");
  }
  AS_ASSIGN_OR_RETURN(int handle, Open(path, OpenFlags::ReadOnly()));
  std::vector<uint8_t> data(info.size);
  size_t done = 0;
  while (done < data.size()) {
    auto n = Read(handle, std::span<uint8_t>(data).subspan(done));
    if (!n.ok()) {
      Close(handle);
      return n.status();
    }
    if (*n == 0) {
      break;  // truncated concurrently; return what we saw
    }
    done += *n;
  }
  data.resize(done);
  AS_RETURN_IF_ERROR(Close(handle));
  return data;
}

asbase::Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return asbase::InvalidArgument("path must be absolute: '" + path + "'");
  }
  std::vector<std::string> parts;
  size_t pos = 1;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) {
      next = path.size();
    }
    if (next == pos) {
      if (pos == path.size()) {
        break;  // trailing slash
      }
      return asbase::InvalidArgument("empty path component in '" + path + "'");
    }
    parts.push_back(path.substr(pos, next - pos));
    pos = next + 1;
  }
  return parts;
}

}  // namespace asfat
