// Filesystem interface consumed by the as-libos `fatfs` module.
//
// Two implementations ship: `FatFilesystem` (the from-scratch FAT32 volume,
// the default WFD image format, §7.1) and `RamFilesystem` (the in-memory fs
// used for the Fig 16 "run on ramfs" comparison, and as the reference model
// in FAT property tests).
//
// Paths are absolute, '/'-separated, UTF-8. Handles are small integers local
// to the filesystem instance.

#ifndef SRC_FATFS_FILESYSTEM_H_
#define SRC_FATFS_FILESYSTEM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace asfat {

struct OpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool append = false;

  static OpenFlags ReadOnly() { return {}; }
  static OpenFlags WriteCreate() {
    return {.read = false, .write = true, .create = true, .truncate = true};
  }
  static OpenFlags ReadWrite() { return {.read = true, .write = true}; }
  static OpenFlags Append() {
    return {.read = false, .write = true, .create = true, .append = true};
  }
};

enum class Whence { kSet, kCurrent, kEnd };

struct FileInfo {
  std::string name;
  uint64_t size = 0;
  bool is_directory = false;
};

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  virtual asbase::Result<int> Open(const std::string& path,
                                   OpenFlags flags) = 0;
  virtual asbase::Status Close(int handle) = 0;
  virtual asbase::Result<size_t> Read(int handle, std::span<uint8_t> out) = 0;
  virtual asbase::Result<size_t> Write(int handle,
                                       std::span<const uint8_t> data) = 0;
  virtual asbase::Result<uint64_t> Seek(int handle, int64_t offset,
                                        Whence whence) = 0;
  virtual asbase::Result<FileInfo> Stat(const std::string& path) = 0;
  virtual asbase::Status Mkdir(const std::string& path) = 0;
  // Removes a file or an empty directory.
  virtual asbase::Status Remove(const std::string& path) = 0;
  virtual asbase::Result<std::vector<FileInfo>> ReadDir(
      const std::string& path) = 0;
  // Flush any caches to the backing device.
  virtual asbase::Status Sync() = 0;

  // Convenience wrappers used everywhere in workloads and tests.
  asbase::Status WriteFile(const std::string& path,
                           std::span<const uint8_t> data);
  asbase::Status WriteFile(const std::string& path, const std::string& text);
  asbase::Result<std::vector<uint8_t>> ReadFile(const std::string& path);
};

// Splits "/a/b/c" into {"a","b","c"}; rejects empty components and
// non-absolute paths.
asbase::Result<std::vector<std::string>> SplitPath(const std::string& path);

}  // namespace asfat

#endif  // SRC_FATFS_FILESYSTEM_H_
