// In-memory filesystem (the as-libos `ramfs` backing, Fig 16).
//
// Simple tree of nodes with std::string file contents. Also serves as the
// reference model in the FAT32 property tests: the same random operation
// sequence is applied to both filesystems and the observable state must
// match.

#ifndef SRC_FATFS_RAM_FILESYSTEM_H_
#define SRC_FATFS_RAM_FILESYSTEM_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fatfs/filesystem.h"

namespace asfat {

class RamFilesystem : public Filesystem {
 public:
  RamFilesystem();
  ~RamFilesystem() override = default;

  asbase::Result<int> Open(const std::string& path, OpenFlags flags) override;
  asbase::Status Close(int handle) override;
  asbase::Result<size_t> Read(int handle, std::span<uint8_t> out) override;
  asbase::Result<size_t> Write(int handle,
                               std::span<const uint8_t> data) override;
  asbase::Result<uint64_t> Seek(int handle, int64_t offset,
                                Whence whence) override;
  asbase::Result<FileInfo> Stat(const std::string& path) override;
  asbase::Status Mkdir(const std::string& path) override;
  asbase::Status Remove(const std::string& path) override;
  asbase::Result<std::vector<FileInfo>> ReadDir(
      const std::string& path) override;
  asbase::Status Sync() override { return asbase::OkStatus(); }

  // Total bytes held by files (memory accounting for Fig 17b).
  size_t TotalBytes() const;

 private:
  struct Node {
    bool is_directory = false;
    std::vector<uint8_t> content;                     // files
    std::map<std::string, std::unique_ptr<Node>> children;  // directories
  };
  struct OpenFile {
    Node* node;
    uint64_t offset;
    OpenFlags flags;
  };

  // Returns the node at `parts`, or nullptr.
  Node* Lookup(const std::vector<std::string>& parts);
  // Returns the parent directory of `parts` (which must be non-empty).
  Node* LookupParent(const std::vector<std::string>& parts);

  mutable std::mutex mutex_;
  Node root_;
  std::unordered_map<int, OpenFile> open_files_;
  int next_handle_ = 3;
};

}  // namespace asfat

#endif  // SRC_FATFS_RAM_FILESYSTEM_H_
