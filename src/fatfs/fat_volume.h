// From-scratch FAT32 filesystem over a BlockDevice.
//
// C++ equivalent of the `rust-fatfs` crate AlloyStack mounts as each WFD's
// virtual disk image (§7.1). Implements the on-disk format for real: BPB boot
// sector, 32-bit FAT with write-through updates, cluster chains, 8.3 short
// names with VFAT long-file-name (LFN) entries, subdirectories, create /
// read / write / append / seek / delete.
//
// Deviations from the full spec, chosen for scope and documented here:
//   * always formats FAT32 regardless of cluster count (no FAT12/16),
//   * single FAT copy (NumFATs = 1), no FSInfo sector,
//   * timestamps are written as fixed values (no RTC in the LibOS yet).
// None of these affect the performance paths Table 4 measures (cluster-chain
// traversal, FAT updates, directory search).

#ifndef SRC_FATFS_FAT_VOLUME_H_
#define SRC_FATFS_FAT_VOLUME_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/blockdev/block_device.h"
#include "src/fatfs/filesystem.h"

namespace asfat {

struct FormatOptions {
  uint32_t sectors_per_cluster = 8;  // 4 KiB clusters
  std::string volume_label = "ALLOYSTACK";
};

class FatVolume : public Filesystem {
 public:
  // Writes a fresh FAT32 layout onto the device.
  static asbase::Status Format(asblk::BlockDevice* device,
                               const FormatOptions& options = {});

  // Parses the boot sector and loads the FAT. The device must outlive the
  // volume.
  static asbase::Result<std::unique_ptr<FatVolume>> Mount(
      asblk::BlockDevice* device);

  // Snapshot-fork fast mount (DESIGN.md §14): everything Mount derives from
  // the device — geometry plus the in-memory FAT — captured once from a
  // booted volume. The FAT vector is shared copy-on-write between the image
  // and every volume mounted from it; a volume's first FAT update after the
  // capture copies the vector privately (see MutableFat), so an idle clone's
  // host-heap cost for the FAT is zero.
  struct MetaImage {
    uint32_t sectors_per_cluster = 0;
    uint32_t bytes_per_cluster = 0;
    uint32_t reserved_sectors = 0;
    uint32_t fat_sectors = 0;
    uint32_t data_start_sector = 0;
    uint32_t cluster_count = 0;
    uint32_t root_cluster = 2;
    std::shared_ptr<std::vector<uint32_t>> fat;  // immutable once captured
    uint32_t next_free_hint = 3;
  };

  // Captures the mounted volume's metadata. Call with no open files (the
  // visor snapshots post-reset); open handles are not part of the image.
  MetaImage SnapshotMeta();

  // Mounts over `device` (typically a CoW MemDisk clone) without reading a
  // single block: geometry and FAT come from the image. O(µs) vs O(FAT
  // sectors) for Mount.
  static std::unique_ptr<FatVolume> MountFromMeta(asblk::BlockDevice* device,
                                                  const MetaImage& meta);

  // ---- Filesystem interface ----
  asbase::Result<int> Open(const std::string& path, OpenFlags flags) override;
  asbase::Status Close(int handle) override;
  asbase::Result<size_t> Read(int handle, std::span<uint8_t> out) override;
  asbase::Result<size_t> Write(int handle,
                               std::span<const uint8_t> data) override;
  asbase::Result<uint64_t> Seek(int handle, int64_t offset,
                                Whence whence) override;
  asbase::Result<FileInfo> Stat(const std::string& path) override;
  asbase::Status Mkdir(const std::string& path) override;
  asbase::Status Remove(const std::string& path) override;
  asbase::Result<std::vector<FileInfo>> ReadDir(
      const std::string& path) override;
  asbase::Status Sync() override;

  // ---- introspection ----
  uint32_t cluster_count() const { return cluster_count_; }
  uint32_t bytes_per_cluster() const { return bytes_per_cluster_; }
  asbase::Result<uint32_t> CountFreeClusters();

  static constexpr uint32_t kEndOfChain = 0x0FFFFFF8;
  static constexpr uint32_t kFatMask = 0x0FFFFFFF;

 private:
  FatVolume(asblk::BlockDevice* device) : device_(device) {}

  // Location of a 32-byte directory entry on disk.
  struct EntryLocation {
    uint32_t dir_cluster = 0;  // first cluster of the containing directory
    uint32_t index = 0;        // entry index within the directory stream
  };

  // A parsed directory entry (after LFN assembly).
  struct DirEntry {
    std::string name;        // long name if present, else 8.3
    uint8_t attr = 0;
    uint32_t first_cluster = 0;
    uint32_t size = 0;
    EntryLocation location;      // of the 8.3 entry
    uint32_t lfn_start_index = 0;  // first LFN slot (== location.index if none)
    bool is_directory() const { return (attr & 0x10) != 0; }
  };

  struct OpenFile {
    std::string path;          // canonical, for open-file conflict checks
    uint32_t first_cluster;
    uint64_t offset;
    uint32_t size;
    EntryLocation location;
    OpenFlags flags;
    bool dirty = false;
  };

  asbase::Status LoadGeometry();
  asbase::Status LoadFat();

  // The FAT cache, copy-on-write: shared with a MetaImage (and sibling
  // volumes) until the first update, which copies it privately. Readers use
  // fat(); writers must go through MutableFat(). mutex_ held for both.
  const std::vector<uint32_t>& fat() const { return *fat_; }
  std::vector<uint32_t>& MutableFat();

  // FAT access (in-memory cache, write-through).
  uint32_t FatEntry(uint32_t cluster) const;
  asbase::Status SetFatEntry(uint32_t cluster, uint32_t value);
  asbase::Result<uint32_t> AllocateCluster(uint32_t prev_cluster);
  asbase::Status FreeChain(uint32_t first_cluster);

  // Cluster data I/O; offset+len must stay within one cluster.
  uint64_t ClusterFirstSector(uint32_t cluster) const;
  asbase::Status ReadInCluster(uint32_t cluster, uint32_t offset,
                               std::span<uint8_t> out);
  asbase::Status WriteInCluster(uint32_t cluster, uint32_t offset,
                                std::span<const uint8_t> data);
  asbase::Status ZeroCluster(uint32_t cluster);

  // Walks `chain` to the cluster holding byte `offset`; allocates clusters on
  // the way when `extend` (write path).
  asbase::Result<uint32_t> ClusterForOffset(uint32_t first_cluster,
                                            uint64_t offset, bool extend);

  // Directory primitives.
  asbase::Status ReadRawEntry(uint32_t dir_cluster, uint32_t index,
                              std::span<uint8_t> out32);
  asbase::Status WriteRawEntry(uint32_t dir_cluster, uint32_t index,
                               std::span<const uint8_t> entry32);
  asbase::Result<std::vector<DirEntry>> ParseDir(uint32_t dir_cluster);
  asbase::Result<DirEntry> FindInDir(uint32_t dir_cluster,
                                     const std::string& name);
  // Creates a (possibly LFN) entry; returns its location.
  asbase::Result<DirEntry> CreateEntry(uint32_t dir_cluster,
                                       const std::string& name, uint8_t attr,
                                       uint32_t first_cluster, uint32_t size);
  asbase::Status DeleteEntry(const DirEntry& entry);
  // Rewrites first_cluster/size of an existing 8.3 entry.
  asbase::Status UpdateEntry(const EntryLocation& location,
                             uint32_t first_cluster, uint32_t size);

  // Path resolution: returns the directory cluster containing the leaf and
  // the leaf name.
  struct ResolvedParent {
    uint32_t dir_cluster;
    std::string leaf;
  };
  asbase::Result<ResolvedParent> ResolveParent(const std::string& path);
  asbase::Result<DirEntry> ResolvePath(const std::string& path);

  asbase::Status FlushFile(OpenFile& file);

  asblk::BlockDevice* device_;
  std::mutex mutex_;

  // Geometry (from the boot sector).
  uint32_t sectors_per_cluster_ = 0;
  uint32_t bytes_per_cluster_ = 0;
  uint32_t reserved_sectors_ = 0;
  uint32_t fat_sectors_ = 0;
  uint32_t data_start_sector_ = 0;
  uint32_t cluster_count_ = 0;
  uint32_t root_cluster_ = 2;

  std::shared_ptr<std::vector<uint32_t>> fat_;  // in-memory copy of the FAT
  uint32_t next_free_hint_ = 3;

  std::unordered_map<int, OpenFile> open_files_;
  int next_handle_ = 3;
};

}  // namespace asfat

#endif  // SRC_FATFS_FAT_VOLUME_H_
