#include "src/fatfs/ram_filesystem.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"

namespace asfat {
namespace {

// File I/O counters, labeled fs="ram" (the FAT volume keeps its own series).
struct IoCounters {
  asobs::Counter& read_ops;
  asobs::Counter& read_bytes;
  asobs::Counter& write_ops;
  asobs::Counter& write_bytes;
};

IoCounters& RamIoCounters() {
  const asobs::Labels labels = {{"fs", "ram"}};
  static auto* counters = new IoCounters{
      asobs::Registry::Global().GetCounter("alloy_fs_read_ops_total", labels),
      asobs::Registry::Global().GetCounter("alloy_fs_read_bytes_total",
                                           labels),
      asobs::Registry::Global().GetCounter("alloy_fs_write_ops_total", labels),
      asobs::Registry::Global().GetCounter("alloy_fs_write_bytes_total",
                                           labels),
  };
  return *counters;
}

}  // namespace

RamFilesystem::RamFilesystem() { root_.is_directory = true; }

RamFilesystem::Node* RamFilesystem::Lookup(
    const std::vector<std::string>& parts) {
  Node* node = &root_;
  for (const auto& part : parts) {
    if (!node->is_directory) {
      return nullptr;
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

RamFilesystem::Node* RamFilesystem::LookupParent(
    const std::vector<std::string>& parts) {
  std::vector<std::string> parent_parts(parts.begin(), parts.end() - 1);
  Node* parent = Lookup(parent_parts);
  if (parent == nullptr || !parent->is_directory) {
    return nullptr;
  }
  return parent;
}

asbase::Result<int> RamFilesystem::Open(const std::string& path,
                                        OpenFlags flags) {
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return asbase::InvalidArgument("cannot open the root directory");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = Lookup(parts);
  if (node == nullptr) {
    if (!flags.create) {
      return asbase::NotFound(path + " does not exist");
    }
    Node* parent = LookupParent(parts);
    if (parent == nullptr) {
      return asbase::NotFound("parent directory of " + path +
                              " does not exist");
    }
    auto child = std::make_unique<Node>();
    node = child.get();
    parent->children[parts.back()] = std::move(child);
  } else if (node->is_directory) {
    return asbase::InvalidArgument(path + " is a directory");
  } else if (flags.truncate) {
    node->content.clear();
  }
  int handle = next_handle_++;
  open_files_[handle] =
      OpenFile{node, flags.append ? node->content.size() : 0, flags};
  return handle;
}

asbase::Status RamFilesystem::Close(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_files_.erase(handle) == 0) {
    return asbase::InvalidArgument("bad handle");
  }
  return asbase::OkStatus();
}

asbase::Result<size_t> RamFilesystem::Read(int handle,
                                           std::span<uint8_t> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  OpenFile& file = it->second;
  if (!file.flags.read) {
    return asbase::PermissionDenied("handle not open for reading");
  }
  const auto& content = file.node->content;
  if (file.offset >= content.size()) {
    return size_t{0};
  }
  size_t n = std::min(out.size(), content.size() - file.offset);
  std::memcpy(out.data(), content.data() + file.offset, n);
  file.offset += n;
  RamIoCounters().read_ops.Add(1);
  RamIoCounters().read_bytes.Add(n);
  return n;
}

asbase::Result<size_t> RamFilesystem::Write(int handle,
                                            std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  OpenFile& file = it->second;
  if (!file.flags.write) {
    return asbase::PermissionDenied("handle not open for writing");
  }
  auto& content = file.node->content;
  if (file.flags.append) {
    file.offset = content.size();
  }
  if (file.offset + data.size() > content.size()) {
    content.resize(file.offset + data.size());
  }
  std::memcpy(content.data() + file.offset, data.data(), data.size());
  file.offset += data.size();
  RamIoCounters().write_ops.Add(1);
  RamIoCounters().write_bytes.Add(data.size());
  return data.size();
}

asbase::Result<uint64_t> RamFilesystem::Seek(int handle, int64_t offset,
                                             Whence whence) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_files_.find(handle);
  if (it == open_files_.end()) {
    return asbase::InvalidArgument("bad handle");
  }
  OpenFile& file = it->second;
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCurrent:
      base = static_cast<int64_t>(file.offset);
      break;
    case Whence::kEnd:
      base = static_cast<int64_t>(file.node->content.size());
      break;
  }
  int64_t target = base + offset;
  if (target < 0) {
    return asbase::OutOfRange("seek before start of file");
  }
  file.offset = static_cast<uint64_t>(target);
  return file.offset;
}

asbase::Result<FileInfo> RamFilesystem::Stat(const std::string& path) {
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = Lookup(parts);
  if (node == nullptr) {
    return asbase::NotFound(path + " does not exist");
  }
  FileInfo info;
  info.name = parts.empty() ? "/" : parts.back();
  info.is_directory = node->is_directory;
  info.size = node->content.size();
  return info;
}

asbase::Status RamFilesystem::Mkdir(const std::string& path) {
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return asbase::AlreadyExists("/ exists");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (Lookup(parts) != nullptr) {
    return asbase::AlreadyExists(path + " exists");
  }
  Node* parent = LookupParent(parts);
  if (parent == nullptr) {
    return asbase::NotFound("parent directory of " + path + " does not exist");
  }
  auto node = std::make_unique<Node>();
  node->is_directory = true;
  parent->children[parts.back()] = std::move(node);
  return asbase::OkStatus();
}

asbase::Status RamFilesystem::Remove(const std::string& path) {
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return asbase::InvalidArgument("cannot remove /");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = Lookup(parts);
  if (node == nullptr) {
    return asbase::NotFound(path + " does not exist");
  }
  if (node->is_directory && !node->children.empty()) {
    return asbase::FailedPrecondition(path + " is not empty");
  }
  for (const auto& [handle, file] : open_files_) {
    if (file.node == node) {
      return asbase::FailedPrecondition(path + " is open");
    }
  }
  Node* parent = LookupParent(parts);
  parent->children.erase(parts.back());
  return asbase::OkStatus();
}

asbase::Result<std::vector<FileInfo>> RamFilesystem::ReadDir(
    const std::string& path) {
  AS_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  std::lock_guard<std::mutex> lock(mutex_);
  Node* node = Lookup(parts);
  if (node == nullptr) {
    return asbase::NotFound(path + " does not exist");
  }
  if (!node->is_directory) {
    return asbase::InvalidArgument(path + " is not a directory");
  }
  std::vector<FileInfo> entries;
  for (const auto& [name, child] : node->children) {
    FileInfo info;
    info.name = name;
    info.is_directory = child->is_directory;
    info.size = child->content.size();
    entries.push_back(std::move(info));
  }
  return entries;
}

size_t RamFilesystem::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  std::vector<const Node*> stack = {&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    total += node->content.size();
    for (const auto& [name, child] : node->children) {
      stack.push_back(child.get());
    }
  }
  return total;
}

}  // namespace asfat
