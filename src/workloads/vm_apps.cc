#include "src/workloads/vm_apps.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "src/vm/assembler.h"

namespace aswl {
namespace {

// Guest memory layout shared by all app programs:
//   16..63    parameter-name strings
//   64..127   slot base strings
//   128       8-byte scratch (counts)
//   256..511  input path string
//   1024..    radix count table (256 * 8)
//   3072..    radix position table (256 * 8)
//   5120..    per-bucket start cursors (partition)
//   AreaA     primary data area (input / received buffers)
//   AreaB     secondary data area (radix aux / scatter targets)
constexpr const char* kMemoryPrelude = R"(
.pages 520
.data 16 "bytes"
.data 24 "seed"
.data 32 "input"
.data 40 "n"
.data 48 "chain_length"
)";
// AreaA = 65536, AreaB = 16842752, per-area capacity 8 MiB.

// FNV-1a constants as signed i64 literals.
constexpr const char* kFnvInit = "push -3750763034362895579";
constexpr const char* kFnvPrime = "push 1099511628211";

// Reads the whole file named by param "input" into AreaA.
// Locals used: 20=path_len, 21=size, 22=fd, 23=done, 24=n_read.
// Leaves the byte size in local 21.
const char* kReadInputFragment = R"(
  push 32
  push 5
  push 256
  push 128
  host ctx_param_str
  local.set 20
  push 256
  local.get 20
  host path_filestat_get
  local.set 21
  push 256
  local.get 20
  push 0
  host path_open
  local.set 22
  push 0
  local.set 23
readloop:
  local.get 23
  local.get 21
  lt_s
  jz readdone
  local.get 22
  push 65536
  local.get 23
  add
  local.get 21
  local.get 23
  sub
  host fd_read
  local.set 24
  local.get 24
  eqz
  jz readcont
  jmp readdone
readcont:
  local.get 23
  local.get 24
  add
  local.set 23
  jmp readloop
readdone:
  local.get 22
  host fd_close
  drop
)";

// ------------------------------------------------------------------- pipe

std::string PipeSenderSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "pipe"
.func main locals=3
  push 16
  push 5
  host ctx_param_int
  local.set 0            # bytes
  push 24
  push 4
  host ctx_param_int
  push 1
  or
  local.set 1            # xorshift state (nonzero)
  push 0
  local.set 2            # i
fill:
  local.get 2
  push 8
  add
  local.get 0
  le_s
  jz filled
  local.get 1
  local.get 1
  push 13
  shl
  xor
  local.set 1
  local.get 1
  local.get 1
  push 7
  shr_u
  xor
  local.set 1
  local.get 1
  local.get 1
  push 17
  shl
  xor
  local.set 1
  push 65536
  local.get 2
  add
  local.get 1
  store64
  local.get 2
  push 8
  add
  local.set 2
  jmp fill
filled:
  push 64
  push 4
  push -1
  push -1
  push 65536
  local.get 0
  host buffer_register2
  drop
  halt
.end
)";
}

std::string PipeReceiverSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "pipe"
.func main locals=3
  push 64
  push 4
  push -1
  push -1
  push 65536
  push 16777216
  host access_buffer2
  local.set 0            # len
  )" + kFnvInit + R"(
  local.set 2            # hash
  push 0
  local.set 1
fnv:
  local.get 1
  push 8
  add
  local.get 0
  le_s
  jz done
  local.get 2
  push 65536
  local.get 1
  add
  load64
  xor
  )" + kFnvPrime + R"(
  mul
  local.set 2
  local.get 1
  push 8
  add
  local.set 1
  jmp fnv
done:
  local.get 2
  host ctx_set_result_int
  drop
  halt
.end
)";
}

// -------------------------------------------------------------- wordcount

std::string WcMapSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "wct"
.func main locals=25
  host ctx_instance
  local.set 0
  host ctx_instances
  local.set 1
)" + kReadInputFragment + R"(
  # begin = size*i/n ; end = size*(i+1)/n  (element = byte here)
  local.get 21
  local.get 0
  mul
  local.get 1
  div_s
  local.set 4
  local.get 21
  local.get 0
  push 1
  add
  mul
  local.get 1
  div_s
  local.set 5
  push 0
  local.set 7            # count of word starts
  local.get 4
  local.set 6            # k
scan:
  local.get 6
  local.get 5
  lt_s
  jz scandone
  push 65536
  local.get 6
  add
  load8
  call is_sep
  eqz
  jz next                # separator -> not a start
  # word char: a start iff k == 0 or prev is separator
  local.get 6
  eqz
  jz checkprev
  local.get 7
  push 1
  add
  local.set 7
  jmp next
checkprev:
  push 65536
  local.get 6
  add
  push 1
  sub
  load8
  call is_sep
  jz next                # prev is a word char -> mid-word
  local.get 7
  push 1
  add
  local.set 7
next:
  local.get 6
  push 1
  add
  local.set 6
  jmp scan
scandone:
  push 128
  local.get 7
  store64
  push 64
  push 3
  local.get 0
  push -1
  push 128
  push 8
  host buffer_register2
  drop
  halt
.end
.func is_sep params=1
  local.get 0
  push 32
  eq
  jz not_space
  push 1
  ret
not_space:
  local.get 0
  push 10
  eq
  jz not_newline
  push 1
  ret
not_newline:
  local.get 0
  push 9
  eq
  ret
.end
)";
}

std::string WcCollectSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "wct"
.func main locals=3
  push 40
  push 1
  host ctx_param_int
  local.set 0            # n
  push 0
  local.set 1
  push 0
  local.set 2            # total
gather:
  local.get 1
  local.get 0
  lt_s
  jz done
  push 64
  push 3
  local.get 1
  push -1
  push 128
  push 8
  host access_buffer2
  drop
  push 128
  load64
  local.get 2
  add
  local.set 2
  local.get 1
  push 1
  add
  local.set 1
  jmp gather
done:
  local.get 2
  host ctx_set_result_int
  drop
  halt
.end
)";
}

// ---------------------------------------------------------------- sorting

std::string PsPartitionSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "pss"
.func main locals=25
  host ctx_instance
  local.set 0
  host ctx_instances
  local.set 1
)" + kReadInputFragment + R"(
  # element range [begin, end) over count = size/4
  local.get 21
  push 4
  div_s
  local.set 2            # count
  local.get 2
  local.get 0
  mul
  local.get 1
  div_s
  local.set 4            # begin
  local.get 2
  local.get 0
  push 1
  add
  mul
  local.get 1
  div_s
  local.set 5            # end
  # zero per-bucket byte counts at 1024
  push 0
  local.set 6
zc:
  local.get 6
  local.get 1
  lt_s
  jz zcdone
  push 1024
  local.get 6
  push 8
  mul
  add
  push 0
  store64
  local.get 6
  push 1
  add
  local.set 6
  jmp zc
zcdone:
  # pass 1: count bytes per bucket
  local.get 4
  local.set 6
p1:
  local.get 6
  local.get 5
  lt_s
  jz p1done
  push 65536
  local.get 6
  push 4
  mul
  add
  load32
  local.get 1
  mul
  push 32
  shr_u
  local.set 8            # bucket j
  push 1024
  local.get 8
  push 8
  mul
  add
  local.set 9
  local.get 9
  local.get 9
  load64
  push 4
  add
  store64
  local.get 6
  push 1
  add
  local.set 6
  jmp p1
p1done:
  # cursors at 3072 (write addresses into AreaB), starts at 5120
  push 16842752
  local.set 10           # running base
  push 0
  local.set 6
pf:
  local.get 6
  local.get 1
  lt_s
  jz pfdone
  push 3072
  local.get 6
  push 8
  mul
  add
  local.get 10
  store64
  push 5120
  local.get 6
  push 8
  mul
  add
  local.get 10
  store64
  local.get 10
  push 1024
  local.get 6
  push 8
  mul
  add
  load64
  add
  local.set 10
  local.get 6
  push 1
  add
  local.set 6
  jmp pf
pfdone:
  # pass 2: scatter into AreaB
  local.get 4
  local.set 6
p2:
  local.get 6
  local.get 5
  lt_s
  jz p2done
  push 65536
  local.get 6
  push 4
  mul
  add
  load32
  local.set 7            # v
  local.get 7
  local.get 1
  mul
  push 32
  shr_u
  local.set 8            # j
  push 3072
  local.get 8
  push 8
  mul
  add
  local.set 9            # &cursor
  local.get 9
  load64
  local.set 10           # addr
  local.get 10
  local.get 7
  store32
  local.get 9
  local.get 10
  push 4
  add
  store64
  local.get 6
  push 1
  add
  local.set 6
  jmp p2
p2done:
  # register each bucket
  push 0
  local.set 6
reg:
  local.get 6
  local.get 1
  lt_s
  jz regdone
  push 64
  push 3
  local.get 0
  local.get 6
  push 5120
  local.get 6
  push 8
  mul
  add
  load64
  push 1024
  local.get 6
  push 8
  mul
  add
  load64
  host buffer_register2
  drop
  local.get 6
  push 1
  add
  local.set 6
  jmp reg
regdone:
  halt
.end
)";
}

std::string PsSortSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "pss"
.data 72 "pssr"
.func main locals=16
  host ctx_instance
  local.set 0            # j (my bucket)
  host ctx_instances
  local.set 1            # n
  # gather my bucket parts into AreaA
  push 0
  local.set 2            # total bytes
  push 0
  local.set 3            # i
gather:
  local.get 3
  local.get 1
  lt_s
  jz gathered
  push 64
  push 3
  local.get 3
  local.get 0
  push 65536
  local.get 2
  add
  push 16777216
  local.get 2
  sub
  host access_buffer2
  local.get 2
  add
  local.set 2
  local.get 3
  push 1
  add
  local.set 3
  jmp gather
gathered:
  local.get 2
  push 4
  div_s
  local.set 4            # count
  # LSD radix sort, 4 byte passes, src/dst ping-pong AreaA <-> AreaB
  push 65536
  local.set 5            # src
  push 16842752
  local.set 6            # dst
  push 0
  local.set 7            # pass
pass:
  local.get 7
  push 4
  lt_s
  jz sorted
  # zero 256 counters at 1024
  push 0
  local.set 8
zb:
  local.get 8
  push 256
  lt_s
  jz zbdone
  push 1024
  local.get 8
  push 8
  mul
  add
  push 0
  store64
  local.get 8
  push 1
  add
  local.set 8
  jmp zb
zbdone:
  # histogram
  push 0
  local.set 8            # k
hist:
  local.get 8
  local.get 4
  lt_s
  jz histdone
  local.get 5
  local.get 8
  push 4
  mul
  add
  load32
  local.get 7
  push 8
  mul
  shr_u
  push 255
  and
  local.set 9            # b
  push 1024
  local.get 9
  push 8
  mul
  add
  local.set 10
  local.get 10
  local.get 10
  load64
  push 1
  add
  store64
  local.get 8
  push 1
  add
  local.set 8
  jmp hist
histdone:
  # prefix sums -> output indices at 3072
  push 0
  local.set 11           # running index
  push 0
  local.set 8
pfx:
  local.get 8
  push 256
  lt_s
  jz pfxdone
  push 3072
  local.get 8
  push 8
  mul
  add
  local.get 11
  store64
  local.get 11
  push 1024
  local.get 8
  push 8
  mul
  add
  load64
  add
  local.set 11
  local.get 8
  push 1
  add
  local.set 8
  jmp pfx
pfxdone:
  # scatter
  push 0
  local.set 8
scat:
  local.get 8
  local.get 4
  lt_s
  jz scatdone
  local.get 5
  local.get 8
  push 4
  mul
  add
  load32
  local.set 12           # v
  local.get 12
  local.get 7
  push 8
  mul
  shr_u
  push 255
  and
  local.set 9            # b
  push 3072
  local.get 9
  push 8
  mul
  add
  local.set 10
  local.get 6
  local.get 10
  load64
  push 4
  mul
  add
  local.get 12
  store32
  local.get 10
  local.get 10
  load64
  push 1
  add
  store64
  local.get 8
  push 1
  add
  local.set 8
  jmp scat
scatdone:
  # swap src/dst
  local.get 5
  local.set 13
  local.get 6
  local.set 5
  local.get 13
  local.set 6
  local.get 7
  push 1
  add
  local.set 7
  jmp pass
sorted:
  # after 4 passes src == AreaA again
  push 72
  push 4
  local.get 0
  push -1
  local.get 5
  local.get 2
  host buffer_register2
  drop
  halt
.end
)";
}

std::string PsMergeSource() {
  return std::string(kMemoryPrelude) + R"(
.data 72 "pssr"
.func main locals=8
  push 40
  push 1
  host ctx_param_int
  local.set 0            # n
  )" + kFnvInit + R"(
  local.set 6            # hash
  push 0
  local.set 5            # prev
  push 0
  local.set 1            # j
parts:
  local.get 1
  local.get 0
  lt_s
  jz done
  push 72
  push 4
  local.get 1
  push -1
  push 65536
  push 16777216
  host access_buffer2
  local.set 2            # len
  push 0
  local.set 3            # k (bytes)
walk:
  local.get 3
  local.get 2
  lt_s
  jz walked
  # order check every 4 bytes
  local.get 3
  push 4
  rem_s
  eqz
  jz fnvstep
  push 65536
  local.get 3
  add
  load32
  local.set 4
  local.get 4
  local.get 5
  lt_s
  eqz
  jz unsorted
  local.get 4
  local.set 5
fnvstep:
  local.get 6
  push 65536
  local.get 3
  add
  load8
  xor
  )" + kFnvPrime + R"(
  mul
  local.set 6
  local.get 3
  push 1
  add
  local.set 3
  jmp walk
unsorted:
  push -1
  host ctx_set_result_int
  drop
  halt
walked:
  local.get 1
  push 1
  add
  local.set 1
  jmp parts
done:
  local.get 6
  host ctx_set_result_int
  drop
  halt
.end
)";
}

// ------------------------------------------------------------------ chain

std::string ChainStageSource() {
  return std::string(kMemoryPrelude) + R"(
.data 64 "ch"
.func main locals=6
  host ctx_stage
  local.set 0            # s
  push 48
  push 12
  host ctx_param_int
  local.set 1            # L
  local.get 0
  eqz
  jz receive
  # first stage: generate payload
  push 16
  push 5
  host ctx_param_int
  local.set 2            # len
  push 24
  push 4
  host ctx_param_int
  push 1
  or
  local.set 4            # xorshift state
  push 0
  local.set 3
gen:
  local.get 3
  local.get 2
  lt_s
  jz work
  local.get 4
  local.get 4
  push 13
  shl
  xor
  local.set 4
  local.get 4
  local.get 4
  push 7
  shr_u
  xor
  local.set 4
  local.get 4
  local.get 4
  push 17
  shl
  xor
  local.set 4
  push 65536
  local.get 3
  add
  local.get 4
  store8
  local.get 3
  push 1
  add
  local.set 3
  jmp gen
receive:
  push 64
  push 2
  local.get 0
  push 1
  sub
  push -1
  push 65536
  push 16777216
  host access_buffer2
  local.set 2            # len
work:
  # transform: every byte += 1
  push 0
  local.set 3
inc:
  local.get 3
  local.get 2
  lt_s
  jz incdone
  push 65536
  local.get 3
  add
  push 65536
  local.get 3
  add
  load8
  push 1
  add
  store8
  local.get 3
  push 1
  add
  local.set 3
  jmp inc
incdone:
  # last stage: checksum and report; else forward
  local.get 0
  local.get 1
  push 1
  sub
  eq
  jz forward
  )" + kFnvInit + R"(
  local.set 4
  push 0
  local.set 3
fnv:
  local.get 3
  local.get 2
  lt_s
  jz report
  local.get 4
  push 65536
  local.get 3
  add
  load8
  xor
  )" + kFnvPrime + R"(
  mul
  local.set 4
  local.get 3
  push 1
  add
  local.set 3
  jmp fnv
report:
  local.get 4
  host ctx_set_result_int
  drop
  halt
forward:
  push 64
  push 2
  local.get 0
  push -1
  push 65536
  local.get 2
  host buffer_register2
  drop
  halt
.end
)";
}

asbase::Result<std::shared_ptr<const asvm::VmModule>> AssembleShared(
    const std::string& source) {
  AS_ASSIGN_OR_RETURN(asvm::VmModule module, asvm::Assemble(source));
  return std::shared_ptr<const asvm::VmModule>(
      std::make_shared<asvm::VmModule>(std::move(module)));
}

uint64_t Fnv64(std::span<const uint8_t> data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t byte : data) {
    hash = (hash ^ byte) * 0x100000001b3ULL;
  }
  return hash;
}

std::string VmResult(uint64_t value) {
  return "vm=" + std::to_string(static_cast<int64_t>(value));
}

bool VmIsSep(uint8_t c) { return c == ' ' || c == '\n' || c == '\t'; }

}  // namespace

const char* VmAppName(VmApp app) {
  switch (app) {
    case VmApp::kPipe:
      return "pipe";
    case VmApp::kWordCount:
      return "wordcount";
    case VmApp::kSorting:
      return "parallel-sorting";
    case VmApp::kChain:
      return "function-chain";
  }
  return "?";
}

asbase::Result<VmWorkflowSpec> BuildVmWorkflow(VmApp app, int width) {
  VmWorkflowSpec spec;
  spec.name = std::string("vm-") + VmAppName(app);
  switch (app) {
    case VmApp::kPipe: {
      AS_ASSIGN_OR_RETURN(auto sender, AssembleShared(PipeSenderSource()));
      AS_ASSIGN_OR_RETURN(auto receiver, AssembleShared(PipeReceiverSource()));
      spec.stages.push_back({"pipe.sender", sender, 1});
      spec.stages.push_back({"pipe.receiver", receiver, 1});
      break;
    }
    case VmApp::kWordCount: {
      AS_ASSIGN_OR_RETURN(auto map, AssembleShared(WcMapSource()));
      AS_ASSIGN_OR_RETURN(auto collect, AssembleShared(WcCollectSource()));
      spec.stages.push_back({"wc.map", map, width});
      spec.stages.push_back({"wc.collect", collect, 1});
      break;
    }
    case VmApp::kSorting: {
      AS_ASSIGN_OR_RETURN(auto partition, AssembleShared(PsPartitionSource()));
      AS_ASSIGN_OR_RETURN(auto sort, AssembleShared(PsSortSource()));
      AS_ASSIGN_OR_RETURN(auto merge, AssembleShared(PsMergeSource()));
      spec.stages.push_back({"ps.partition", partition, width});
      spec.stages.push_back({"ps.sort", sort, width});
      spec.stages.push_back({"ps.merge", merge, 1});
      break;
    }
    case VmApp::kChain: {
      AS_ASSIGN_OR_RETURN(auto stage, AssembleShared(ChainStageSource()));
      for (int s = 0; s < width; ++s) {
        spec.stages.push_back({"chain.stage" + std::to_string(s), stage, 1});
      }
      break;
    }
  }
  return spec;
}

std::vector<uint8_t> VmXorshiftPayload(size_t bytes, uint64_t seed) {
  std::vector<uint8_t> out(bytes);
  uint64_t x = seed | 1;
  for (auto& byte : out) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    byte = static_cast<uint8_t>(x);
  }
  return out;
}

// The pipe guests work in 8-byte strides (one xorshift word per store64 /
// one FNV step per load64) so interpreted transfers stay transfer-bound.
std::string ExpectedVmPipeResult(size_t bytes, uint64_t seed) {
  const size_t words = bytes / 8;
  uint64_t x = seed | 1;
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < words; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    hash = (hash ^ x) * 0x100000001b3ULL;
  }
  return VmResult(hash);
}

std::string ExpectedVmWordCountResult(const std::vector<uint8_t>& corpus) {
  uint64_t words = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!VmIsSep(corpus[i]) && (i == 0 || VmIsSep(corpus[i - 1]))) {
      ++words;
    }
  }
  return VmResult(words);
}

std::string ExpectedVmSortingResult(const std::vector<uint8_t>& input) {
  const size_t count = input.size() / 4;
  std::vector<uint32_t> values(count);
  std::memcpy(values.data(), input.data(), count * 4);
  std::sort(values.begin(), values.end());
  std::vector<uint8_t> bytes(count * 4);
  std::memcpy(bytes.data(), values.data(), count * 4);
  return VmResult(Fnv64(bytes));
}

std::string ExpectedVmChainResult(size_t bytes, uint64_t seed, int length) {
  auto data = VmXorshiftPayload(bytes, seed);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(byte + length);
  }
  return VmResult(Fnv64(data));
}

}  // namespace aswl
