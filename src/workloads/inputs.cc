#include "src/workloads/inputs.h"

#include "src/common/rng.h"

namespace aswl {

std::vector<uint8_t> MakeTextCorpus(size_t bytes, uint64_t seed) {
  asbase::Rng rng(seed);
  // A fixed pool with a skewed pick distribution approximates natural text.
  std::vector<std::string> pool;
  pool.reserve(512);
  for (int i = 0; i < 512; ++i) {
    pool.push_back(rng.Word(2, 10));
  }
  std::vector<uint8_t> out;
  out.reserve(bytes + 16);
  while (out.size() < bytes) {
    // Zipf-ish: square the uniform draw to favour low indices.
    const double u = rng.NextDouble();
    const size_t index = static_cast<size_t>(u * u * 511.0);
    const std::string& word = pool[index];
    out.insert(out.end(), word.begin(), word.end());
    out.push_back(rng.OneIn(12) ? '\n' : ' ');
  }
  out.resize(bytes);
  if (!out.empty()) {
    out.back() = '\n';
  }
  return out;
}

std::vector<uint8_t> MakeIntegerInput(size_t bytes, uint64_t seed) {
  asbase::Rng rng(seed);
  const size_t count = bytes / 4;
  std::vector<uint8_t> out(count * 4);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Next());
    out[i * 4 + 0] = static_cast<uint8_t>(v);
    out[i * 4 + 1] = static_cast<uint8_t>(v >> 8);
    out[i * 4 + 2] = static_cast<uint8_t>(v >> 16);
    out[i * 4 + 3] = static_cast<uint8_t>(v >> 24);
  }
  return out;
}

std::vector<uint8_t> MakePayload(size_t bytes, uint64_t seed) {
  std::vector<uint8_t> out(bytes);
  FillPayload(out, seed);
  return out;
}

void FillPayload(std::span<uint8_t> out, uint64_t seed) {
  asbase::Rng rng(seed);
  for (auto& byte : out) {
    byte = static_cast<uint8_t>(rng.Next());
  }
}

uint64_t Checksum(std::span<const uint8_t> data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t byte : data) {
    hash = (hash ^ byte) * 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Checksum(const std::vector<uint8_t>& data) {
  return Checksum(std::span<const uint8_t>(data.data(), data.size()));
}

}  // namespace aswl
