// The evaluation applications (§8.1), written once over ExecEnv:
//
//   no-ops           empty function, returns immediately (cold-start probe)
//   pipe             two functions moving a sized payload (transfer probe)
//   WordCount        MapReduce word frequencies; parallel, sparse data
//   ParallelSorting  range partition + sort + merge; parallel, dense data
//   FunctionChain    sequential chain forwarding intermediate data
//
// Every workflow ends by setting a deterministic result string
// ("words=... hash=..."), so test suites can assert that AlloyStack and
// every baseline compute the same answer on the same input.

#ifndef SRC_WORKLOADS_GENERIC_APPS_H_
#define SRC_WORKLOADS_GENERIC_APPS_H_

#include "src/workloads/exec_env.h"

namespace aswl {

// Workflow builders. `instances` is the parallelism of each parallel stage.
GenericWorkflow NoOpsWorkflow();
GenericWorkflow PipeWorkflow();
GenericWorkflow WordCountWorkflow(int instances);
GenericWorkflow ParallelSortingWorkflow(int instances);
GenericWorkflow FunctionChainWorkflow(int length);

// Parameters the workflows read from env.params:
//   pipe:     "bytes" (payload size), "seed"
//   wc/ps:    "input" (input file path)
//   chain:    "bytes", "seed", "chain_length"

// Reference results computed directly (no workflow machinery), used to
// verify every runtime returns the same answer.
std::string ExpectedWordCountResult(const std::vector<uint8_t>& corpus);
std::string ExpectedSortingResult(const std::vector<uint8_t>& input);
std::string ExpectedChainResult(size_t bytes, uint64_t seed, int length);
std::string ExpectedPipeResult(size_t bytes, uint64_t seed);

}  // namespace aswl

#endif  // SRC_WORKLOADS_GENERIC_APPS_H_
