// AlloyStack bindings for the generic applications.
//
// `BindAlloyStackEnv` adapts a FunctionContext to ExecEnv:
//   put/get     -> AsBuffer reference passing (§5) — zero copy; or, when the
//                  WFD runs with reference_passing=false (the Fig 14
//                  ablation / AWS-recommended pattern), through fatfs files.
//   read_input  -> the WFD's LibOS filesystem.
//
// `RegisterAlloyStackWorkflow` converts a GenericWorkflow into registry
// functions + a WorkflowSpec runnable by the Orchestrator/AsVisor.

#ifndef SRC_WORKLOADS_ALLOYSTACK_ENV_H_
#define SRC_WORKLOADS_ALLOYSTACK_ENV_H_

#include "src/core/visor/orchestrator.h"
#include "src/workloads/exec_env.h"
#include "src/workloads/vm_apps.h"

namespace aswl {

// Builds the ExecEnv view of an AlloyStack function invocation.
ExecEnv BindAlloyStackEnv(alloy::FunctionContext& context);

// Registers every function of `workflow` in the global FunctionRegistry
// (names are prefixed with "as." + workflow.name) and returns the
// corresponding WorkflowSpec.
alloy::WorkflowSpec RegisterAlloyStackWorkflow(const GenericWorkflow& workflow);

// Registers a VM workflow's stage modules (wrapped by MakeVmFunction, i.e.
// the AlloyStack-C / AlloyStack-Py execution path) and returns the
// WorkflowSpec.
alloy::WorkflowSpec RegisterAlloyVmWorkflow(const VmWorkflowSpec& workflow,
                                            bool python);

}  // namespace aswl

#endif  // SRC_WORKLOADS_ALLOYSTACK_ENV_H_
