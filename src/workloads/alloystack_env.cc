#include "src/workloads/alloystack_env.h"

#include <cstring>

#include "src/core/asstd/wasi.h"
#include "src/obs/metrics.h"

namespace aswl {
namespace {

constexpr uint64_t kEnvFingerprint = 0xE27ECB0FFE12ULL;

// Ownership shim for AlloyStack buffers: frees the WFD heap memory when the
// last reference drops, unless the buffer was forwarded to another slot.
class HeapBufferOwner {
 public:
  HeapBufferOwner(alloy::AsStd* as, alloy::RawBuffer raw, bool registered)
      : as_(as), raw_(raw), registered_(registered) {}

  HeapBufferOwner(const HeapBufferOwner&) = delete;
  HeapBufferOwner& operator=(const HeapBufferOwner&) = delete;

  ~HeapBufferOwner() {
    if (!forwarded_ && !registered_) {
      // Acquired but never forwarded: consumption finished, free the memory.
      as_->FreeBuffer(raw_);
    }
    // `registered` buffers belong to their slot until acquired.
  }

  const alloy::RawBuffer& raw() const { return raw_; }
  bool registered() const { return registered_; }
  void MarkForwarded() { forwarded_ = true; }

 private:
  alloy::AsStd* as_;
  alloy::RawBuffer raw_;
  bool registered_;
  bool forwarded_ = false;
};

alloy::Phase ToAlloyPhase(EnvPhase phase) {
  switch (phase) {
    case EnvPhase::kReadInput:
      return alloy::Phase::kReadInput;
    case EnvPhase::kTransfer:
      return alloy::Phase::kTransfer;
    case EnvPhase::kCompute:
      break;
  }
  return alloy::Phase::kCompute;
}

}  // namespace

ExecEnv BindAlloyStackEnv(alloy::FunctionContext& context) {
  ExecEnv env;
  alloy::AsStd* as = &context.as();
  const bool reference_passing =
      as->wfd().options().reference_passing;

  env.stage = context.stage();
  env.instance = context.instance();
  env.instance_count = context.instance_count();
  env.params = context.params();
  env.phase = [&context](EnvPhase phase) {
    context.BeginPhase(ToAlloyPhase(phase));
  };
  env.set_result = [&context](std::string result) {
    context.SetResult(std::move(result));
  };

  env.read_input = [as](const std::string& path) {
    return as->ReadWholeFile(path);
  };

  if (reference_passing) {
    // Reference passing (§5): buffers live on the WFD heap; send/recv moves
    // ownership through the slot table, never the bytes.
    env.alloc = [as](const std::string& slot,
                     size_t size) -> asbase::Result<EnvBuffer> {
      AS_ASSIGN_OR_RETURN(alloy::RawBuffer raw,
                          as->AllocBuffer(slot, size, kEnvFingerprint));
      auto owner =
          std::make_shared<HeapBufferOwner>(as, raw, /*registered=*/true);
      return EnvBuffer{raw.bytes, owner};
    };
    env.send = [as](const std::string& slot,
                    EnvBuffer buffer) -> asbase::Status {
      auto owner = std::static_pointer_cast<HeapBufferOwner>(buffer.owner);
      if (owner == nullptr) {
        return asbase::InvalidArgument("buffer was not allocated by this env");
      }
      if (owner->registered()) {
        return asbase::OkStatus();  // fresh buffer: already in the slot table
      }
      // In-place forward of a received buffer: ownership transfer (§5).
      owner->MarkForwarded();
      return as->ForwardBuffer(slot, owner->raw());
    };
    env.recv = [as](const std::string& slot) -> asbase::Result<EnvBuffer> {
      AS_ASSIGN_OR_RETURN(alloy::RawBuffer raw,
                          as->AcquireBuffer(slot, kEnvFingerprint));
      auto owner =
          std::make_shared<HeapBufferOwner>(as, raw, /*registered=*/false);
      return EnvBuffer{raw.bytes, owner};
    };
  } else {
    // Ablation (Fig 14) / AWS-recommended pattern: intermediate data moves
    // through fatfs files — written to the virtual disk by the producer and
    // read back by the consumer.
    env.alloc = [](const std::string&, size_t size) {
      return EnvBuffer::FromVector(std::vector<uint8_t>(size));
    };
    env.send = [as](const std::string& slot,
                    EnvBuffer buffer) -> asbase::Status {
      asbase::Status mkdir_status = as->Mkdir("/xfer");
      if (!mkdir_status.ok() &&
          mkdir_status.code() != asbase::ErrorCode::kAlreadyExists) {
        return mkdir_status;
      }
      asobs::Registry::Global()
          .GetHistogram("alloy_asbuffer_transfer_bytes", {{"mode", "copy"}})
          .Record(static_cast<int64_t>(buffer.data.size()));
      return as->WriteWholeFile("/xfer/" + slot,
                                std::span<const uint8_t>(buffer.data));
    };
    env.recv = [as](const std::string& slot) -> asbase::Result<EnvBuffer> {
      AS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          as->ReadWholeFile("/xfer/" + slot));
      AS_RETURN_IF_ERROR(as->Remove("/xfer/" + slot));
      return EnvBuffer::FromVector(std::move(bytes));
    };
  }
  return env;
}

alloy::WorkflowSpec RegisterAlloyStackWorkflow(
    const GenericWorkflow& workflow) {
  alloy::WorkflowSpec spec;
  spec.name = workflow.name;
  for (const auto& stage : workflow.stages) {
    alloy::StageSpec stage_spec;
    for (const auto& function : stage.functions) {
      const std::string registry_name =
          "as." + workflow.name + "." + function.name;
      GenericFn fn = function.fn;
      alloy::FunctionRegistry::Global().Register(
          registry_name,
          [fn](alloy::FunctionContext& context) -> asbase::Status {
            ExecEnv env = BindAlloyStackEnv(context);
            return fn(env);
          });
      alloy::FunctionSpec fn_spec;
      fn_spec.name = registry_name;
      fn_spec.instances = function.instances;
      stage_spec.functions.push_back(std::move(fn_spec));
    }
    spec.stages.push_back(std::move(stage_spec));
  }
  return spec;
}

alloy::WorkflowSpec RegisterAlloyVmWorkflow(const VmWorkflowSpec& workflow,
                                            bool python) {
  alloy::WorkflowSpec spec;
  spec.name = workflow.name + (python ? "-py" : "-c");
  for (size_t stage_index = 0; stage_index < workflow.stages.size();
       ++stage_index) {
    const auto& stage = workflow.stages[stage_index];
    const std::string registry_name = "asvm." + spec.name + "." + stage.name +
                                      "#" + std::to_string(stage_index);
    alloy::VmFunctionOptions options;
    options.python_runtime = python;
    alloy::FunctionRegistry::Global().Register(
        registry_name, alloy::MakeVmFunction(stage.module, options));
    alloy::StageSpec stage_spec;
    alloy::FunctionSpec fn_spec;
    fn_spec.name = registry_name;
    fn_spec.instances = stage.instances;
    stage_spec.functions.push_back(std::move(fn_spec));
    spec.stages.push_back(std::move(stage_spec));
  }
  return spec;
}

}  // namespace aswl
