// Deterministic workload input generators (§8.1 benchmarks).

#ifndef SRC_WORKLOADS_INPUTS_H_
#define SRC_WORKLOADS_INPUTS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aswl {

// Text corpus for WordCount: lowercase words drawn from a Zipf-ish pool,
// separated by spaces/newlines. Deterministic in (bytes, seed).
std::vector<uint8_t> MakeTextCorpus(size_t bytes, uint64_t seed);

// Random uint32 array (little-endian bytes) for ParallelSorting.
std::vector<uint8_t> MakeIntegerInput(size_t bytes, uint64_t seed);

// Opaque payload for pipe / FunctionChain.
std::vector<uint8_t> MakePayload(size_t bytes, uint64_t seed);

// Writes the same payload directly into caller-provided memory (zero-copy
// producers fill transfer buffers in place).
void FillPayload(std::span<uint8_t> out, uint64_t seed);

// Checksum over a raw span.
uint64_t Checksum(std::span<const uint8_t> data);

// FNV-1a checksum used by apps to produce verifiable result strings.
uint64_t Checksum(const std::vector<uint8_t>& data);

}  // namespace aswl

#endif  // SRC_WORKLOADS_INPUTS_H_
