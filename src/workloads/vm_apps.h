// AsVM ("WASM") versions of the benchmark applications (§8.5).
//
// These are the C/Python-path workloads: the same pipe / WordCount /
// ParallelSorting / FunctionChain shapes, written in AsVM assembly and
// executed by the interpreter — on AlloyStack through the WASI adaptation
// layer (as-std -> as-libos), and on Faasm through its two-tier state layer.
// All I/O goes through hostcalls; the guests never touch the platform
// directly.
//
// The WordCount VM variant counts tokens (not per-word frequencies): hash
// tables in bytecode would measure the assembler, not the platform. The
// compute/transfer shape (full scan, fan-out, fan-in) is preserved.
// ParallelSorting sorts for real: byte-wise LSD radix sort in bytecode.

#ifndef SRC_WORKLOADS_VM_APPS_H_
#define SRC_WORKLOADS_VM_APPS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/vm/isa.h"

namespace aswl {

enum class VmApp { kPipe, kWordCount, kSorting, kChain };

const char* VmAppName(VmApp app);

struct VmStageSpec {
  std::string name;
  std::shared_ptr<const asvm::VmModule> module;
  int instances = 1;
};

struct VmWorkflowSpec {
  std::string name;
  std::vector<VmStageSpec> stages;
};

// Assembles the app's stages. `width` is the parallel-stage instance count
// (pipe ignores it; chain uses it as the chain length).
//
// Runtime parameters read by the guests (via ctx_param_*):
//   pipe:    "bytes", "seed"
//   wc:      "input", "n" (= width)
//   sorting: "input", "n"
//   chain:   "bytes", "seed", "chain_length"
asbase::Result<VmWorkflowSpec> BuildVmWorkflow(VmApp app, int width);

// Reference results ("vm=<value>") computed natively, for cross-runtime
// verification of the VM workloads.
std::string ExpectedVmPipeResult(size_t bytes, uint64_t seed);
std::string ExpectedVmWordCountResult(const std::vector<uint8_t>& corpus);
std::string ExpectedVmSortingResult(const std::vector<uint8_t>& input);
std::string ExpectedVmChainResult(size_t bytes, uint64_t seed, int length);

// The xorshift byte stream VM guests generate (pipe/chain payloads).
std::vector<uint8_t> VmXorshiftPayload(size_t bytes, uint64_t seed);

}  // namespace aswl

#endif  // SRC_WORKLOADS_VM_APPS_H_
