// Runtime-neutral execution environment for benchmark applications.
//
// The evaluation runs the same applications (WordCount, ParallelSorting,
// FunctionChain, pipe) on AlloyStack and on every comparison system. To keep
// the *application logic* identical across runtimes — so measured differences
// come from the platforms, not the ports — apps are written once against
// this small interface and each runtime (AlloyStack, Faastlane, OpenFaaS,
// Faasm, ...) provides its own data-plane bindings.
//
// The buffer protocol preserves each runtime's copy semantics:
//   producer:  alloc(slot, size) -> write into .data -> send(slot, buffer)
//   consumer:  recv(slot) -> read .data -> drop (owner releases)
// A reference-passing runtime (AlloyStack AsBuffer, Faastlane-refer) backs
// .data with the transferred memory itself — zero copies; a copying runtime
// (redis, pipes) copies inside send/recv where the real system would.

#ifndef SRC_WORKLOADS_EXEC_ENV_H_
#define SRC_WORKLOADS_EXEC_ENV_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"

namespace aswl {

// A view over transferable payload memory. `owner` keeps the backing alive;
// releasing the last reference returns the memory to its runtime.
struct EnvBuffer {
  std::span<uint8_t> data;
  std::shared_ptr<void> owner;

  // Convenience for buffers backed by a plain vector.
  static EnvBuffer FromVector(std::vector<uint8_t> bytes) {
    auto holder = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
    return EnvBuffer{std::span<uint8_t>(holder->data(), holder->size()),
                     holder};
  }
};

// Phases of a function execution, for the Fig 15 breakdown.
enum class EnvPhase { kReadInput, kCompute, kTransfer };

struct ExecEnv {
  // Allocate an outgoing buffer for `slot`. The producer writes .data in
  // place, then publishes with send(). (Not registered until send.)
  std::function<asbase::Result<EnvBuffer>(const std::string& slot,
                                          size_t size)>
      alloc;
  // Publish a buffer previously obtained from alloc() — or one obtained
  // from recv() (in-place forwarding along a chain).
  std::function<asbase::Status(const std::string& slot, EnvBuffer buffer)>
      send;
  // Receive the buffer registered under `slot` (single consumer).
  std::function<asbase::Result<EnvBuffer>(const std::string& slot)> recv;
  // Read a workflow input file from the runtime's storage.
  std::function<asbase::Result<std::vector<uint8_t>>(const std::string& path)>
      read_input;
  // Phase marker (may be a no-op).
  std::function<void(EnvPhase)> phase = [](EnvPhase) {};
  // Report the workflow result (final stage).
  std::function<void(std::string)> set_result = [](std::string) {};

  int stage = 0;
  int instance = 0;
  int instance_count = 1;
  asbase::Json params;
};

// One application function (runs as one instance of a stage).
using GenericFn = std::function<asbase::Status(ExecEnv&)>;

struct GenericFunction {
  std::string name;
  GenericFn fn;
  int instances = 1;
};

struct GenericStage {
  std::vector<GenericFunction> functions;
};

struct GenericWorkflow {
  std::string name;
  std::vector<GenericStage> stages;
};

}  // namespace aswl

#endif  // SRC_WORKLOADS_EXEC_ENV_H_
