#include "src/workloads/generic_apps.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/workloads/inputs.h"

namespace aswl {
namespace {

uint64_t HashWord(std::string_view word) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : word) {
    hash = (hash ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

bool IsWordChar(uint8_t c) { return c != ' ' && c != '\n' && c != '\t'; }

// Tokenizes `text` and calls visit(word) for each token.
template <typename Visit>
void ForEachWord(std::span<const uint8_t> text, Visit&& visit) {
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) {
      ++i;
    }
    if (i > start) {
      visit(std::string_view(
          reinterpret_cast<const char*>(text.data()) + start, i - start));
    }
  }
}

// The byte range instance `i` of `n` owns, extended to word boundaries so
// every word is counted exactly once across instances.
std::pair<size_t, size_t> WordSlice(std::span<const uint8_t> text, int i,
                                    int n) {
  size_t begin = text.size() * static_cast<size_t>(i) / static_cast<size_t>(n);
  size_t end =
      text.size() * static_cast<size_t>(i + 1) / static_cast<size_t>(n);
  while (begin > 0 && begin < text.size() && IsWordChar(text[begin - 1]) &&
         IsWordChar(text[begin])) {
    ++begin;
  }
  while (end < text.size() && end > 0 && IsWordChar(text[end - 1]) &&
         IsWordChar(text[end])) {
    ++end;
  }
  return {begin, end};
}

using Counts = std::unordered_map<std::string, uint64_t>;

std::vector<uint8_t> SerializeCounts(const Counts& counts) {
  std::vector<uint8_t> out;
  for (const auto& [word, count] : counts) {
    const uint16_t len = static_cast<uint16_t>(word.size());
    out.push_back(static_cast<uint8_t>(len));
    out.push_back(static_cast<uint8_t>(len >> 8));
    out.insert(out.end(), word.begin(), word.end());
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<uint8_t>(count >> (8 * b)));
    }
  }
  return out;
}

asbase::Status MergeCounts(std::span<const uint8_t> blob, Counts* into) {
  size_t pos = 0;
  while (pos < blob.size()) {
    if (pos + 2 > blob.size()) {
      return asbase::DataLoss("truncated count record");
    }
    const uint16_t len =
        static_cast<uint16_t>(blob[pos] | (blob[pos + 1] << 8));
    pos += 2;
    if (pos + len + 8 > blob.size()) {
      return asbase::DataLoss("truncated count record");
    }
    std::string word(reinterpret_cast<const char*>(blob.data()) + pos, len);
    pos += len;
    uint64_t count = 0;
    for (int b = 0; b < 8; ++b) {
      count |= static_cast<uint64_t>(blob[pos + static_cast<size_t>(b)])
               << (8 * b);
    }
    pos += 8;
    (*into)[std::move(word)] += count;
  }
  return asbase::OkStatus();
}

// Order-independent digest of a count table.
void SummarizeCounts(const Counts& counts, uint64_t* total, uint64_t* distinct,
                     uint64_t* digest) {
  *total = 0;
  *distinct = counts.size();
  *digest = 0;
  for (const auto& [word, count] : counts) {
    *total += count;
    *digest ^= HashWord(word) * (count + 1);
  }
}

std::string FormatWcResult(uint64_t total, uint64_t distinct,
                           uint64_t digest) {
  return "words=" + std::to_string(total) +
         " distinct=" + std::to_string(distinct) +
         " hash=" + std::to_string(digest);
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// Sends a serialized blob: alloc + copy-in + publish. (Serialization output
// necessarily materializes once in every runtime.)
asbase::Status SendBlob(ExecEnv& env, const std::string& slot,
                        std::span<const uint8_t> blob) {
  AS_ASSIGN_OR_RETURN(EnvBuffer buffer, env.alloc(slot, blob.size()));
  if (!blob.empty()) {
    std::memcpy(buffer.data.data(), blob.data(), blob.size());
  }
  return env.send(slot, std::move(buffer));
}

}  // namespace

// ----------------------------------------------------------------- no-ops

GenericWorkflow NoOpsWorkflow() {
  GenericWorkflow workflow;
  workflow.name = "no-ops";
  workflow.stages.push_back(GenericStage{{GenericFunction{
      "noop",
      [](ExecEnv& env) {
        env.set_result("ok");
        return asbase::OkStatus();
      },
      1}}});
  return workflow;
}

// ------------------------------------------------------------------- pipe

GenericWorkflow PipeWorkflow() {
  GenericWorkflow workflow;
  workflow.name = "pipe";
  workflow.stages.push_back(GenericStage{{GenericFunction{
      "pipe.sender",
      [](ExecEnv& env) -> asbase::Status {
        const size_t bytes =
            static_cast<size_t>(env.params["bytes"].as_int(4096));
        const uint64_t seed =
            static_cast<uint64_t>(env.params["seed"].as_int(1));
        env.phase(EnvPhase::kTransfer);
        AS_ASSIGN_OR_RETURN(EnvBuffer buffer, env.alloc("pipe", bytes));
        env.phase(EnvPhase::kCompute);
        FillPayload(buffer.data, seed);  // producer writes in place
        env.phase(EnvPhase::kTransfer);
        return env.send("pipe", std::move(buffer));
      },
      1}}});
  workflow.stages.push_back(GenericStage{{GenericFunction{
      "pipe.receiver",
      [](ExecEnv& env) -> asbase::Status {
        // The paper's transfer window runs until B has read all the data:
        // keep the traversal inside the transfer phase.
        env.phase(EnvPhase::kTransfer);
        AS_ASSIGN_OR_RETURN(EnvBuffer buffer, env.recv("pipe"));
        const uint64_t checksum = Checksum(buffer.data);
        env.phase(EnvPhase::kCompute);
        env.set_result("bytes=" + std::to_string(buffer.data.size()) +
                       " hash=" + std::to_string(checksum));
        return asbase::OkStatus();
      },
      1}}});
  return workflow;
}

std::string ExpectedPipeResult(size_t bytes, uint64_t seed) {
  auto payload = MakePayload(bytes, seed);
  return "bytes=" + std::to_string(payload.size()) +
         " hash=" + std::to_string(Checksum(payload));
}

// -------------------------------------------------------------- WordCount

GenericWorkflow WordCountWorkflow(int instances) {
  GenericWorkflow workflow;
  workflow.name = "wordcount";
  const int n = instances;

  workflow.stages.push_back(GenericStage{{GenericFunction{
      "wc.map",
      [n](ExecEnv& env) -> asbase::Status {
        env.phase(EnvPhase::kReadInput);
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> corpus,
                            env.read_input(env.params["input"].as_string()));
        env.phase(EnvPhase::kCompute);
        auto [begin, end] = WordSlice(corpus, env.instance, n);
        std::vector<Counts> partitions(static_cast<size_t>(n));
        ForEachWord(
            std::span<const uint8_t>(corpus).subspan(begin, end - begin),
            [&](std::string_view word) {
              partitions[HashWord(word) % static_cast<size_t>(n)]
                        [std::string(word)] += 1;
            });
        for (int j = 0; j < n; ++j) {
          std::vector<uint8_t> blob =
              SerializeCounts(partitions[static_cast<size_t>(j)]);
          env.phase(EnvPhase::kTransfer);
          AS_RETURN_IF_ERROR(SendBlob(
              env,
              "wc-" + std::to_string(env.instance) + "-" + std::to_string(j),
              blob));
          env.phase(EnvPhase::kCompute);
        }
        return asbase::OkStatus();
      },
      n}}});

  workflow.stages.push_back(GenericStage{{GenericFunction{
      "wc.reduce",
      [n](ExecEnv& env) -> asbase::Status {
        Counts merged;
        for (int i = 0; i < n; ++i) {
          env.phase(EnvPhase::kTransfer);
          AS_ASSIGN_OR_RETURN(EnvBuffer blob,
                              env.recv("wc-" + std::to_string(i) + "-" +
                                       std::to_string(env.instance)));
          env.phase(EnvPhase::kCompute);
          AS_RETURN_IF_ERROR(MergeCounts(blob.data, &merged));
        }
        uint64_t total, distinct, digest;
        SummarizeCounts(merged, &total, &distinct, &digest);
        std::vector<uint8_t> summary(24);
        std::memcpy(summary.data(), &total, 8);
        std::memcpy(summary.data() + 8, &distinct, 8);
        std::memcpy(summary.data() + 16, &digest, 8);
        env.phase(EnvPhase::kTransfer);
        return SendBlob(env, "wcres-" + std::to_string(env.instance), summary);
      },
      n}}});

  workflow.stages.push_back(GenericStage{{GenericFunction{
      "wc.collect",
      [n](ExecEnv& env) -> asbase::Status {
        uint64_t total = 0, distinct = 0, digest = 0;
        for (int j = 0; j < n; ++j) {
          env.phase(EnvPhase::kTransfer);
          AS_ASSIGN_OR_RETURN(EnvBuffer summary,
                              env.recv("wcres-" + std::to_string(j)));
          env.phase(EnvPhase::kCompute);
          if (summary.data.size() != 24) {
            return asbase::DataLoss("bad reducer summary");
          }
          uint64_t t, d, h;
          std::memcpy(&t, summary.data.data(), 8);
          std::memcpy(&d, summary.data.data() + 8, 8);
          std::memcpy(&h, summary.data.data() + 16, 8);
          total += t;
          distinct += d;
          digest ^= h;
        }
        env.set_result(FormatWcResult(total, distinct, digest));
        return asbase::OkStatus();
      },
      1}}});
  return workflow;
}

std::string ExpectedWordCountResult(const std::vector<uint8_t>& corpus) {
  Counts counts;
  ForEachWord(std::span<const uint8_t>(corpus.data(), corpus.size()),
              [&](std::string_view word) { counts[std::string(word)] += 1; });
  uint64_t total, distinct, digest;
  SummarizeCounts(counts, &total, &distinct, &digest);
  return FormatWcResult(total, distinct, digest);
}

// -------------------------------------------------------- ParallelSorting

GenericWorkflow ParallelSortingWorkflow(int instances) {
  GenericWorkflow workflow;
  workflow.name = "parallel-sorting";
  const int n = instances;

  workflow.stages.push_back(GenericStage{{GenericFunction{
      "ps.partition",
      [n](ExecEnv& env) -> asbase::Status {
        env.phase(EnvPhase::kReadInput);
        AS_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                            env.read_input(env.params["input"].as_string()));
        env.phase(EnvPhase::kCompute);
        const size_t count = raw.size() / 4;
        const size_t begin =
            count * static_cast<size_t>(env.instance) / static_cast<size_t>(n);
        const size_t end = count * static_cast<size_t>(env.instance + 1) /
                           static_cast<size_t>(n);
        auto bucket_of = [n](uint32_t v) {
          return static_cast<size_t>(
              (static_cast<uint64_t>(v) * static_cast<uint64_t>(n)) >> 32);
        };
        // Pass 1: bucket sizes, so output buffers can be allocated exactly
        // and filled in place (no intermediate vectors).
        std::vector<size_t> sizes(static_cast<size_t>(n), 0);
        for (size_t k = begin; k < end; ++k) {
          sizes[bucket_of(ReadU32(raw.data() + k * 4))] += 4;
        }
        env.phase(EnvPhase::kTransfer);
        std::vector<EnvBuffer> buckets;
        buckets.reserve(static_cast<size_t>(n));
        for (int j = 0; j < n; ++j) {
          AS_ASSIGN_OR_RETURN(
              EnvBuffer buffer,
              env.alloc("ps-" + std::to_string(env.instance) + "-" +
                            std::to_string(j),
                        sizes[static_cast<size_t>(j)]));
          buckets.push_back(std::move(buffer));
        }
        env.phase(EnvPhase::kCompute);
        // Pass 2: scatter values directly into the transfer buffers.
        std::vector<size_t> fill(static_cast<size_t>(n), 0);
        for (size_t k = begin; k < end; ++k) {
          const uint32_t v = ReadU32(raw.data() + k * 4);
          const size_t j = bucket_of(v);
          std::memcpy(buckets[j].data.data() + fill[j], raw.data() + k * 4, 4);
          fill[j] += 4;
        }
        env.phase(EnvPhase::kTransfer);
        for (int j = 0; j < n; ++j) {
          AS_RETURN_IF_ERROR(env.send(
              "ps-" + std::to_string(env.instance) + "-" + std::to_string(j),
              std::move(buckets[static_cast<size_t>(j)])));
        }
        return asbase::OkStatus();
      },
      n}}});

  workflow.stages.push_back(GenericStage{{GenericFunction{
      "ps.sort",
      [n](ExecEnv& env) -> asbase::Status {
        env.phase(EnvPhase::kTransfer);
        std::vector<EnvBuffer> parts;
        size_t total_bytes = 0;
        for (int i = 0; i < n; ++i) {
          AS_ASSIGN_OR_RETURN(EnvBuffer part,
                              env.recv("ps-" + std::to_string(i) + "-" +
                                       std::to_string(env.instance)));
          total_bytes += part.data.size();
          parts.push_back(std::move(part));
        }
        AS_ASSIGN_OR_RETURN(
            EnvBuffer out,
            env.alloc("psres-" + std::to_string(env.instance), total_bytes));
        env.phase(EnvPhase::kCompute);
        size_t offset = 0;
        for (const auto& part : parts) {
          if (!part.data.empty()) {
            std::memcpy(out.data.data() + offset, part.data.data(),
                        part.data.size());
            offset += part.data.size();
          }
        }
        parts.clear();  // release upstream buffers
        const size_t count = out.data.size() / 4;
        std::vector<uint32_t> values(count);
        std::memcpy(values.data(), out.data.data(), count * 4);
        std::sort(values.begin(), values.end());
        std::memcpy(out.data.data(), values.data(), count * 4);
        env.phase(EnvPhase::kTransfer);
        return env.send("psres-" + std::to_string(env.instance),
                        std::move(out));
      },
      n}}});

  workflow.stages.push_back(GenericStage{{GenericFunction{
      "ps.merge",
      [n](ExecEnv& env) -> asbase::Status {
        uint64_t hash = 0xcbf29ce484222325ULL;
        size_t total = 0;
        uint32_t prev = 0;
        for (int j = 0; j < n; ++j) {
          env.phase(EnvPhase::kTransfer);
          AS_ASSIGN_OR_RETURN(EnvBuffer part,
                              env.recv("psres-" + std::to_string(j)));
          env.phase(EnvPhase::kCompute);
          for (size_t k = 0; k * 4 < part.data.size(); ++k) {
            const uint32_t v = ReadU32(part.data.data() + k * 4);
            if (v < prev) {
              return asbase::Internal("merge produced unsorted output");
            }
            prev = v;
          }
          for (uint8_t byte : part.data) {
            hash = (hash ^ byte) * 0x100000001b3ULL;
          }
          total += part.data.size() / 4;
        }
        env.set_result("count=" + std::to_string(total) +
                       " hash=" + std::to_string(hash));
        return asbase::OkStatus();
      },
      1}}});
  return workflow;
}

std::string ExpectedSortingResult(const std::vector<uint8_t>& input) {
  const size_t count = input.size() / 4;
  std::vector<uint32_t> values(count);
  for (size_t k = 0; k < count; ++k) {
    values[k] = ReadU32(input.data() + k * 4);
  }
  std::sort(values.begin(), values.end());
  std::vector<uint8_t> sorted(count * 4);
  for (size_t k = 0; k < count; ++k) {
    std::memcpy(sorted.data() + k * 4, &values[k], 4);
  }
  return "count=" + std::to_string(count) +
         " hash=" + std::to_string(Checksum(sorted));
}

// ---------------------------------------------------------- FunctionChain

GenericWorkflow FunctionChainWorkflow(int length) {
  GenericWorkflow workflow;
  workflow.name = "function-chain";
  for (int s = 0; s < length; ++s) {
    const bool first = s == 0;
    const bool last = s == length - 1;
    workflow.stages.push_back(GenericStage{{GenericFunction{
        "chain.stage" + std::to_string(s),
        [s, first, last](ExecEnv& env) -> asbase::Status {
          EnvBuffer buffer;
          if (first) {
            env.phase(EnvPhase::kTransfer);
            AS_ASSIGN_OR_RETURN(
                buffer,
                env.alloc("chain-0", static_cast<size_t>(
                                         env.params["bytes"].as_int(4096))));
            env.phase(EnvPhase::kCompute);
            FillPayload(buffer.data,
                        static_cast<uint64_t>(env.params["seed"].as_int(1)));
          } else {
            env.phase(EnvPhase::kTransfer);
            AS_ASSIGN_OR_RETURN(buffer,
                                env.recv("chain-" + std::to_string(s - 1)));
          }
          env.phase(EnvPhase::kCompute);
          // Each hop touches every byte (checksum-style transform).
          for (auto& byte : buffer.data) {
            byte = static_cast<uint8_t>(byte + 1);
          }
          if (last) {
            env.set_result("bytes=" + std::to_string(buffer.data.size()) +
                           " hash=" + std::to_string(Checksum(buffer.data)));
            return asbase::OkStatus();
          }
          env.phase(EnvPhase::kTransfer);
          // Forward in place: reference-passing runtimes re-register the
          // same memory under the next slot.
          return env.send("chain-" + std::to_string(s), std::move(buffer));
        },
        1}}});
  }
  return workflow;
}

std::string ExpectedChainResult(size_t bytes, uint64_t seed, int length) {
  auto data = MakePayload(bytes, seed);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(byte + length);
  }
  return "bytes=" + std::to_string(data.size()) +
         " hash=" + std::to_string(Checksum(data));
}

}  // namespace aswl
