// First-fit free-list heap allocator with address-ordered coalescing.
//
// C++ port of the `linked_list_allocator` crate the Rust implementation uses
// as the WFD heap (§7.1). Each WFD owns one instance over its heap arena;
// AsBuffer allocations and LibOS-internal allocations come from here, which is
// what makes "easy recovery by heap units if functions crash" possible — the
// whole heap is dropped with the WFD.
//
// Not thread-safe by itself; `mm` wraps it with the WFD heap lock.

#ifndef SRC_ALLOC_LINKED_LIST_ALLOCATOR_H_
#define SRC_ALLOC_LINKED_LIST_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>

namespace asalloc {

class LinkedListAllocator {
 public:
  LinkedListAllocator() = default;

  LinkedListAllocator(const LinkedListAllocator&) = delete;
  LinkedListAllocator& operator=(const LinkedListAllocator&) = delete;

  // Takes over (but does not own) [base, base + size). base must be 16-byte
  // aligned and size a multiple of 16 and >= kMinBlock.
  void Init(void* base, size_t size);

  // Returns nullptr when no block fits. align must be a power of two;
  // alignments below 16 are rounded up to 16.
  void* Allocate(size_t size, size_t align = 16);

  // ptr must be a live pointer returned by Allocate(). Coalesces with
  // adjacent free blocks.
  void Deallocate(void* ptr);

  // Drops every allocation and returns the heap to one free block.
  void Reset();

  struct Stats {
    size_t heap_bytes = 0;
    size_t used_bytes = 0;   // includes per-block header overhead
    size_t free_bytes = 0;
    size_t live_allocations = 0;
    size_t total_allocations = 0;
    size_t total_frees = 0;
    size_t largest_free_block = 0;  // payload capacity of the biggest block
  };
  Stats stats() const;

  // Position-independent allocator state for snapshot-fork (DESIGN.md §14).
  // The free list itself lives *inside* the heap as absolute pointers; the
  // image records the heap base it was captured against so RestoreImage can
  // rebase every in-heap link when a clone maps the heap at a new address.
  struct Image {
    uint64_t base = 0;            // heap base at capture time
    uint64_t size = 0;            // heap size
    uint64_t free_list_offset = kNoFreeList;  // head node offset, or none
    Stats stats;
  };
  static constexpr uint64_t kNoFreeList = ~0ULL;

  Image CaptureImage() const;

  // Re-initializes this allocator over `new_base` (a copy-on-write clone of
  // the heap the image was captured from): walks the cloned free list,
  // rewriting each in-heap next pointer from template addresses to clone
  // addresses. Only pages holding free-list nodes are dirtied.
  void RestoreImage(const Image& image, void* new_base);

  bool initialized() const { return base_ != 0; }

  // Validates free-list invariants (address order, in-bounds, no adjacency).
  // Used by tests; returns false on corruption.
  bool CheckInvariants() const;

  static constexpr size_t kAlign = 16;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kMinBlock = 32;  // header + minimal payload

 private:
  // Every block (free or used) starts with a Header. Free blocks additionally
  // store the free-list link in the first payload word.
  struct Header {
    uint64_t size;   // whole block including header
    uint64_t magic;  // kUsedMagic / kFreeMagic, catches double free
  };
  struct FreeNode {
    Header header;
    FreeNode* next;
  };

  static constexpr uint64_t kUsedMagic = 0xA110C8ED'0000F00DULL;
  static constexpr uint64_t kFreeMagic = 0xF4EEB10C'0000BEEFULL;

  static Header* HeaderOf(void* payload) {
    return reinterpret_cast<Header*>(static_cast<char*>(payload) -
                                     kHeaderSize);
  }

  uintptr_t base_ = 0;
  size_t size_ = 0;
  FreeNode* free_list_ = nullptr;  // address-ordered
  Stats stats_;
};

}  // namespace asalloc

#endif  // SRC_ALLOC_LINKED_LIST_ALLOCATOR_H_
