#include "src/alloc/slot_registry.h"

#include "src/obs/metrics.h"

namespace asalloc {

asbase::Status SlotRegistry::Register(const std::string& slot,
                                      BufferRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = slots_.emplace(slot, record);
  if (!inserted) {
    return asbase::AlreadyExists("slot '" + slot + "' already holds a buffer");
  }
  asobs::Registry::Global()
      .GetCounter("alloy_asbuffer_bytes_total", {{"op", "register"}})
      .Add(record.size);
  return asbase::OkStatus();
}

asbase::Result<BufferRecord> SlotRegistry::Acquire(const std::string& slot,
                                                   uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return asbase::NotFound("no buffer registered under slot '" + slot + "'");
  }
  if (it->second.fingerprint != fingerprint) {
    return asbase::InvalidArgument(
        "type fingerprint mismatch for slot '" + slot +
        "': sender and receiver disagree on the payload type");
  }
  BufferRecord record = it->second;
  slots_.erase(it);
  asobs::Registry::Global()
      .GetCounter("alloy_asbuffer_bytes_total", {{"op", "acquire"}})
      .Add(record.size);
  asobs::Registry::Global()
      .GetHistogram("alloy_asbuffer_transfer_bytes", {{"mode", "reference"}})
      .Record(static_cast<int64_t>(record.size));
  return record;
}

asbase::Result<BufferRecord> SlotRegistry::Peek(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return asbase::NotFound("no buffer registered under slot '" + slot + "'");
  }
  return it->second;
}

asbase::Status SlotRegistry::Remove(const std::string& slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slots_.erase(slot) == 0) {
    return asbase::NotFound("no buffer registered under slot '" + slot + "'");
  }
  return asbase::OkStatus();
}

size_t SlotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::vector<std::string> SlotRegistry::SlotNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, record] : slots_) {
    names.push_back(name);
  }
  return names;
}

void SlotRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

uint64_t FingerprintName(std::string_view type_name) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : type_name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace asalloc
