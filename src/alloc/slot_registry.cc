#include "src/alloc/slot_registry.h"

#include <atomic>
#include <cassert>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace asalloc {
namespace {

std::atomic<bool> abort_on_pinned_release{true};

}  // namespace

// Pin bookkeeping shared between the registry and every outstanding pin
// handle: handles may outlive the registry (frames queued in the fabric
// after the sending WFD is torn down), so the table is jointly owned.
struct SlotRegistry::PinTable {
  mutable std::mutex mutex;
  // addr -> live pin count over that buffer.
  std::unordered_map<uintptr_t, size_t> pins;
};

SlotRegistry::SlotRegistry() : pin_table_(std::make_shared<PinTable>()) {}

SlotRegistry::~SlotRegistry() = default;

std::shared_ptr<const void> SlotRegistry::PinForTx(uintptr_t addr,
                                                   size_t size) {
  std::shared_ptr<PinTable> table = pin_table_;
  {
    std::lock_guard<std::mutex> lock(table->mutex);
    ++table->pins[addr];
  }
  asobs::Registry::Global()
      .GetCounter("alloy_asbuffer_tx_pins_total")
      .Add(1);
  asobs::Registry::Global().GetGauge("alloy_asbuffer_tx_pinned").Add(1);
  // The handle owns the table, so release works even after the registry
  // (and its WFD) are gone.
  return std::shared_ptr<const void>(
      reinterpret_cast<const void*>(addr), [table, addr](const void*) {
        {
          std::lock_guard<std::mutex> lock(table->mutex);
          auto it = table->pins.find(addr);
          if (it != table->pins.end() && --it->second == 0) {
            table->pins.erase(it);
          }
        }
        asobs::Registry::Global().GetGauge("alloy_asbuffer_tx_pinned").Add(-1);
      });
}

bool SlotRegistry::IsPinnedForTx(uintptr_t addr) const {
  std::lock_guard<std::mutex> lock(pin_table_->mutex);
  return pin_table_->pins.count(addr) > 0;
}

size_t SlotRegistry::TxPinnedBuffers() const {
  std::lock_guard<std::mutex> lock(pin_table_->mutex);
  return pin_table_->pins.size();
}

bool SlotRegistry::CheckReleasable(uintptr_t addr) const {
  size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(pin_table_->mutex);
    auto it = pin_table_->pins.find(addr);
    if (it != pin_table_->pins.end()) {
      live = it->second;
    }
  }
  if (live == 0) {
    return true;
  }
  asobs::Registry::Global()
      .GetCounter("alloy_asbuffer_pinned_release_total")
      .Add(1);
  AS_LOG(kError) << "releasing buffer @" << addr << " with " << live
                 << " live TX pin(s): the netstack still references this "
                    "memory (leaked pin or teardown-order bug)";
  if (abort_on_pinned_release.load(std::memory_order_relaxed)) {
    assert(false && "buffer released with live TX pins");
  }
  return false;
}

void SlotRegistry::set_abort_on_pinned_release(bool abort_on_violation) {
  abort_on_pinned_release.store(abort_on_violation,
                                std::memory_order_relaxed);
}

asbase::Status SlotRegistry::Register(const std::string& slot,
                                      BufferRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = slots_.emplace(slot, record);
  if (!inserted) {
    return asbase::AlreadyExists("slot '" + slot + "' already holds a buffer");
  }
  asobs::Registry::Global()
      .GetCounter("alloy_asbuffer_bytes_total", {{"op", "register"}})
      .Add(record.size);
  return asbase::OkStatus();
}

asbase::Result<BufferRecord> SlotRegistry::Acquire(const std::string& slot,
                                                   uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return asbase::NotFound("no buffer registered under slot '" + slot + "'");
  }
  if (it->second.fingerprint != fingerprint) {
    return asbase::InvalidArgument(
        "type fingerprint mismatch for slot '" + slot +
        "': sender and receiver disagree on the payload type");
  }
  BufferRecord record = it->second;
  slots_.erase(it);
  asobs::Registry::Global()
      .GetCounter("alloy_asbuffer_bytes_total", {{"op", "acquire"}})
      .Add(record.size);
  asobs::Registry::Global()
      .GetHistogram("alloy_asbuffer_transfer_bytes", {{"mode", "reference"}})
      .Record(static_cast<int64_t>(record.size));
  return record;
}

asbase::Result<BufferRecord> SlotRegistry::Peek(const std::string& slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return asbase::NotFound("no buffer registered under slot '" + slot + "'");
  }
  return it->second;
}

asbase::Status SlotRegistry::Remove(const std::string& slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slots_.erase(slot) == 0) {
    return asbase::NotFound("no buffer registered under slot '" + slot + "'");
  }
  return asbase::OkStatus();
}

size_t SlotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::vector<std::string> SlotRegistry::SlotNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, record] : slots_) {
    names.push_back(name);
  }
  return names;
}

void SlotRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

uint64_t FingerprintName(std::string_view type_name) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : type_name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace asalloc
