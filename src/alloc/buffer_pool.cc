#include "src/alloc/buffer_pool.h"

#include <utility>

#include "src/obs/metrics.h"

namespace asalloc {
namespace {

struct PoolCounters {
  asobs::Counter& take_fresh;
  asobs::Counter& take_reused;
  asobs::Counter& recycled;
};

PoolCounters& Counters() {
  static auto* counters = new PoolCounters{
      asobs::Registry::Global().GetCounter("alloy_net_rx_pool_blocks_total",
                                           {{"op", "alloc"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_pool_blocks_total",
                                           {{"op", "reuse"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_pool_blocks_total",
                                           {{"op", "recycle"}}),
  };
  return *counters;
}

}  // namespace

BufferPool::BufferPool(size_t block_bytes, size_t max_free_blocks)
    : block_bytes_(block_bytes), free_list_(std::make_shared<FreeList>()) {
  free_list_->max_blocks = max_free_blocks;
}

BufferPool::BlockRef BufferPool::Take() {
  std::unique_ptr<uint8_t[]> storage;
  {
    std::lock_guard<std::mutex> lock(free_list_->mutex);
    if (!free_list_->blocks.empty()) {
      storage = std::move(free_list_->blocks.back());
      free_list_->blocks.pop_back();
    }
  }
  if (storage != nullptr) {
    Counters().take_reused.Add(1);
  } else {
    storage = std::make_unique<uint8_t[]>(block_bytes_);
    Counters().take_fresh.Add(1);
  }
  uint8_t* raw = storage.release();
  std::weak_ptr<FreeList> weak_list = free_list_;
  return BlockRef(raw, [weak_list](uint8_t* p) {
    std::unique_ptr<uint8_t[]> reclaimed(p);
    if (auto list = weak_list.lock()) {
      std::lock_guard<std::mutex> lock(list->mutex);
      if (list->blocks.size() < list->max_blocks) {
        list->blocks.push_back(std::move(reclaimed));
        Counters().recycled.Add(1);
        return;
      }
    }
    // Pool gone or freelist full: plain free via `reclaimed`.
  });
}

size_t BufferPool::free_blocks() const {
  std::lock_guard<std::mutex> lock(free_list_->mutex);
  return free_list_->blocks.size();
}

BufferPool& BufferPool::Global() {
  static auto* pool = new BufferPool();
  return *pool;
}

}  // namespace asalloc
