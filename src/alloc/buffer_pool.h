// Pool of fixed-size refcounted receive blocks.
//
// The netstack's RX path lands reassembled TCP payload straight into these
// blocks and hands them to as-std *by reference* (RecvZeroCopy): the reader
// holds a `BlockRef` for exactly as long as it looks at the bytes, and the
// storage goes back to the freelist when the last reference drops — the RX
// half of the zero-copy data path (DESIGN.md). Blocks are shared between a
// connection's landing cursor, its reassembly queue, and any number of
// readers, so the refcount is the only ownership protocol.

#ifndef SRC_ALLOC_BUFFER_POOL_H_
#define SRC_ALLOC_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace asalloc {

class BufferPool {
 public:
  // A refcounted view of one pool block's storage. The aliasing shared_ptr
  // keeps the recycle deleter alive; data() is stable for the ref's lifetime.
  using BlockRef = std::shared_ptr<uint8_t[]>;

  explicit BufferPool(size_t block_bytes = kDefaultBlockBytes,
                      size_t max_free_blocks = kDefaultMaxFreeBlocks);

  // Hands out a block (freelist hit or fresh allocation). The returned ref
  // recycles the storage into the freelist when the last holder drops it —
  // even if that happens after the pool is gone (the freelist is shared,
  // orphaned storage is simply freed).
  BlockRef Take();

  size_t block_bytes() const { return block_bytes_; }
  // Observability for tests: blocks currently parked in the freelist.
  size_t free_blocks() const;

  // Process-wide pool the netstack lands RX payload into. Leaked on purpose:
  // BlockRefs inside still-queued frames may outlive any particular stack.
  static BufferPool& Global();

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kDefaultMaxFreeBlocks = 256;

 private:
  // Shared with every outstanding BlockRef deleter, so recycling keeps
  // working (or degrades to plain free) regardless of pool lifetime.
  struct FreeList {
    std::mutex mutex;
    std::vector<std::unique_ptr<uint8_t[]>> blocks;
    size_t max_blocks;
  };

  size_t block_bytes_;
  std::shared_ptr<FreeList> free_list_;
};

}  // namespace asalloc

#endif  // SRC_ALLOC_BUFFER_POOL_H_
