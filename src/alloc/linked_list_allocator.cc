#include "src/alloc/linked_list_allocator.h"

#include "src/common/logging.h"

namespace asalloc {
namespace {

uintptr_t AlignUp(uintptr_t value, size_t align) {
  return (value + align - 1) & ~(static_cast<uintptr_t>(align) - 1);
}

}  // namespace

void LinkedListAllocator::Init(void* base, size_t size) {
  uintptr_t addr = reinterpret_cast<uintptr_t>(base);
  AS_CHECK(addr % kAlign == 0) << "heap base must be 16-byte aligned";
  AS_CHECK(size % kAlign == 0 && size >= kMinBlock) << "bad heap size";
  base_ = addr;
  size_ = size;
  stats_ = Stats{};
  stats_.heap_bytes = size;
  stats_.free_bytes = size;
  free_list_ = reinterpret_cast<FreeNode*>(base);
  free_list_->header.size = size;
  free_list_->header.magic = kFreeMagic;
  free_list_->next = nullptr;
}

void* LinkedListAllocator::Allocate(size_t size, size_t align) {
  AS_CHECK(initialized());
  if (align < kAlign) {
    align = kAlign;
  }
  AS_CHECK((align & (align - 1)) == 0) << "alignment must be a power of two";
  if (size == 0) {
    size = 1;
  }
  // Whole-block size: header + payload, rounded to granularity.
  const size_t need =
      AlignUp(kHeaderSize + size, kAlign) < kMinBlock
          ? kMinBlock
          : AlignUp(kHeaderSize + size, kAlign);

  FreeNode** link = &free_list_;
  while (FreeNode* node = *link) {
    const uintptr_t block_start = reinterpret_cast<uintptr_t>(node);
    const uintptr_t block_end = block_start + node->header.size;

    // Earliest payload position inside this block satisfying `align`, leaving
    // either no prefix or a prefix big enough to stay a free block.
    uintptr_t payload = AlignUp(block_start + kHeaderSize, align);
    uintptr_t used_start = payload - kHeaderSize;
    if (used_start != block_start && used_start - block_start < kMinBlock) {
      payload = AlignUp(block_start + kMinBlock + kHeaderSize, align);
      used_start = payload - kHeaderSize;
    }
    if (used_start + need > block_end) {
      link = &node->next;
      continue;
    }

    FreeNode* next = node->next;

    // Prefix free block (when alignment forced an offset).
    const size_t prefix = used_start - block_start;
    FreeNode** reinsert_link = link;
    if (prefix > 0) {
      node->header.size = prefix;
      // node stays in the list; new blocks go after it.
      reinsert_link = &node->next;
    } else {
      *link = next;  // unlink the node; the whole front becomes the used block
    }

    // Suffix free block (when the block is bigger than needed).
    size_t used_size = need;
    const size_t suffix = block_end - (used_start + need);
    if (suffix >= kMinBlock) {
      FreeNode* tail = reinterpret_cast<FreeNode*>(used_start + need);
      tail->header.size = suffix;
      tail->header.magic = kFreeMagic;
      tail->next = next;
      *reinsert_link = tail;
    } else {
      used_size += suffix;  // absorb the sliver
      *reinsert_link = next;
    }
    if (prefix > 0) {
      // node->next was overwritten above via reinsert_link when no suffix;
      // when there is a suffix, tail already chains to next. Either way the
      // list is consistent now.
    }

    Header* header = reinterpret_cast<Header*>(used_start);
    header->size = used_size;
    header->magic = kUsedMagic;
    stats_.used_bytes += used_size;
    stats_.free_bytes -= used_size;
    ++stats_.live_allocations;
    ++stats_.total_allocations;
    return reinterpret_cast<void*>(payload);
  }
  return nullptr;
}

void LinkedListAllocator::Deallocate(void* ptr) {
  AS_CHECK(ptr != nullptr);
  Header* header = HeaderOf(ptr);
  AS_CHECK(header->magic == kUsedMagic) << "bad free: not a live allocation";
  const uintptr_t start = reinterpret_cast<uintptr_t>(header);
  AS_CHECK(start >= base_ && start + header->size <= base_ + size_)
      << "bad free: outside heap";

  const size_t size = header->size;
  stats_.used_bytes -= size;
  stats_.free_bytes += size;
  --stats_.live_allocations;
  ++stats_.total_frees;

  // Insert in address order.
  FreeNode* node = reinterpret_cast<FreeNode*>(header);
  node->header.magic = kFreeMagic;
  FreeNode** link = &free_list_;
  while (*link && reinterpret_cast<uintptr_t>(*link) < start) {
    link = &(*link)->next;
  }
  node->next = *link;
  *link = node;

  // Coalesce with successor.
  if (node->next &&
      start + node->header.size == reinterpret_cast<uintptr_t>(node->next)) {
    node->header.size += node->next->header.size;
    node->next = node->next->next;
  }
  // Coalesce with predecessor.
  if (link != &free_list_) {
    FreeNode* prev =
        reinterpret_cast<FreeNode*>(reinterpret_cast<char*>(link) -
                                    offsetof(FreeNode, next));
    if (reinterpret_cast<uintptr_t>(prev) + prev->header.size == start) {
      prev->header.size += node->header.size;
      prev->next = node->next;
    }
  }
}

void LinkedListAllocator::Reset() {
  AS_CHECK(initialized());
  const size_t total_allocations = stats_.total_allocations;
  const size_t total_frees = stats_.total_frees;
  Init(reinterpret_cast<void*>(base_), size_);
  stats_.total_allocations = total_allocations;
  stats_.total_frees = total_frees;
}

LinkedListAllocator::Image LinkedListAllocator::CaptureImage() const {
  AS_CHECK(initialized());
  Image image;
  image.base = base_;
  image.size = size_;
  image.free_list_offset =
      free_list_ == nullptr
          ? kNoFreeList
          : reinterpret_cast<uintptr_t>(free_list_) - base_;
  image.stats = stats_;
  return image;
}

void LinkedListAllocator::RestoreImage(const Image& image, void* new_base) {
  const uintptr_t addr = reinterpret_cast<uintptr_t>(new_base);
  AS_CHECK(addr % kAlign == 0) << "heap base must be 16-byte aligned";
  base_ = addr;
  size_ = image.size;
  stats_ = image.stats;
  free_list_ = nullptr;
  // The cloned heap's free nodes still hold template-relative next pointers
  // (they came over with the CoW page contents). Rebase each link once.
  FreeNode** link = &free_list_;
  uint64_t offset = image.free_list_offset;
  while (offset != kNoFreeList) {
    AS_CHECK(offset + kMinBlock <= size_) << "free-list offset out of bounds";
    FreeNode* node = reinterpret_cast<FreeNode*>(addr + offset);
    AS_CHECK(node->header.magic == kFreeMagic)
        << "free-list corruption in snapshot image";
    *link = node;
    FreeNode* template_next = node->next;
    offset = template_next == nullptr
                 ? kNoFreeList
                 : reinterpret_cast<uintptr_t>(template_next) - image.base;
    node->next = nullptr;  // rewritten by the next iteration through `link`
    link = &node->next;
  }
}

LinkedListAllocator::Stats LinkedListAllocator::stats() const {
  Stats out = stats_;
  out.largest_free_block = 0;
  for (const FreeNode* node = free_list_; node; node = node->next) {
    const size_t payload = node->header.size - kHeaderSize;
    if (payload > out.largest_free_block) {
      out.largest_free_block = payload;
    }
  }
  return out;
}

bool LinkedListAllocator::CheckInvariants() const {
  uintptr_t prev_end = 0;
  const FreeNode* prev = nullptr;
  size_t free_total = 0;
  for (const FreeNode* node = free_list_; node; node = node->next) {
    const uintptr_t start = reinterpret_cast<uintptr_t>(node);
    if (node->header.magic != kFreeMagic) {
      return false;
    }
    if (start < base_ || start + node->header.size > base_ + size_) {
      return false;
    }
    if (prev && start <= reinterpret_cast<uintptr_t>(prev)) {
      return false;  // not address ordered
    }
    if (prev && prev_end == start) {
      return false;  // adjacent free blocks should have been coalesced
    }
    free_total += node->header.size;
    prev = node;
    prev_end = start + node->header.size;
  }
  return free_total == stats_.free_bytes;
}

}  // namespace asalloc
