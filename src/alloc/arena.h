// Page-aligned memory arenas backing WFD heaps and MPK partitions.
//
// Arenas are mmap'd so that (a) protection keys can be bound at page
// granularity and (b) destroying the WFD returns the memory to the host in
// one munmap, matching the paper's "as-visor destroys the WFD and reclaims
// the associated resources".

#ifndef SRC_ALLOC_ARENA_H_
#define SRC_ALLOC_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace asalloc {

class Arena {
 public:
  Arena() = default;
  // Maps `size` bytes (rounded up to pages) of zeroed anonymous memory.
  explicit Arena(size_t size);
  ~Arena();

  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  // Number of resident pages actually touched (via mincore). Used by the
  // resource-usage benches (Fig 17b).
  size_t ResidentBytes() const;

  static size_t PageSize();

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace asalloc

#endif  // SRC_ALLOC_ARENA_H_
