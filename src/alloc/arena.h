// Page-aligned memory arenas backing WFD heaps and MPK partitions.
//
// Arenas are mmap'd so that (a) protection keys can be bound at page
// granularity and (b) destroying the WFD returns the memory to the host in
// one munmap, matching the paper's "as-visor destroys the WFD and reclaims
// the associated resources".
//
// Snapshot-fork (DESIGN.md §14): a booted arena can be frozen into an
// ArenaSnapshot — its resident pages written into a sealed memfd — and new
// arenas cloned from it as MAP_PRIVATE copy-on-write views. Clones share the
// template's physical pages until they write; an idle clone costs only the
// pages it dirties, which PrivateResidentBytes() measures.

#ifndef SRC_ALLOC_ARENA_H_
#define SRC_ALLOC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/status.h"

namespace asalloc {

// An immutable heap template: the resident pages of a captured arena inside
// a sealed (F_SEAL_SHRINK|GROW|WRITE) memfd. Shared between all clones; the
// fd closes when the last reference drops (existing MAP_PRIVATE clone
// mappings keep the file's pages alive independently of the fd).
class ArenaSnapshot {
 public:
  ~ArenaSnapshot();

  ArenaSnapshot(const ArenaSnapshot&) = delete;
  ArenaSnapshot& operator=(const ArenaSnapshot&) = delete;

  size_t size() const { return size_; }
  // Bytes actually written into the memfd (the template's resident set at
  // capture time) — the one-time cost of the snapshot, not per clone.
  size_t image_bytes() const { return image_bytes_; }

 private:
  friend class Arena;
  ArenaSnapshot() = default;

  int fd_ = -1;
  size_t size_ = 0;
  size_t image_bytes_ = 0;
};

class Arena {
 public:
  Arena() = default;
  // Maps `size` bytes (rounded up to pages) of zeroed anonymous memory.
  explicit Arena(size_t size);
  ~Arena();

  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  // Freezes the arena's current contents into an immutable template: only
  // resident pages are copied into the memfd, so an untouched 64 MiB heap
  // snapshots in O(touched pages). The arena itself is unaffected.
  asbase::Result<std::shared_ptr<const ArenaSnapshot>> CaptureSnapshot() const;

  // Maps a copy-on-write (MAP_PRIVATE) view of the template. O(µs): no page
  // is copied until the clone writes to it.
  static asbase::Result<Arena> CloneFrom(const ArenaSnapshot& snapshot);
  bool is_cow_clone() const { return cow_clone_; }

  // Number of resident pages actually touched (via mincore). Used by the
  // resource-usage benches (Fig 17b). For a CoW clone this counts shared
  // template pages too — use PrivateResidentBytes for incremental cost.
  size_t ResidentBytes() const;

  // Bytes of memory privately owned by this mapping: for a CoW clone, only
  // the pages dirtied since the clone (anonymous copies), not the resident
  // file-backed template pages it shares. Read from /proc/self/pagemap
  // (bit 61 distinguishes file-backed from private pages); falls back to
  // ResidentBytes() when pagemap is unreadable. For a plain anonymous arena
  // the two agree.
  size_t PrivateResidentBytes() const;

  static size_t PageSize();

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool cow_clone_ = false;
};

}  // namespace asalloc

#endif  // SRC_ALLOC_ARENA_H_
