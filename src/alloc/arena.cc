#include "src/alloc/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace asalloc {

size_t Arena::PageSize() {
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

Arena::Arena(size_t size) {
  const size_t page = PageSize();
  size_ = (size + page - 1) / page * page;
  void* mapped = mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  AS_CHECK(mapped != MAP_FAILED) << "mmap of " << size_ << " bytes failed";
  data_ = mapped;
}

Arena::~Arena() {
  if (data_ != nullptr) {
    munmap(data_, size_);
  }
}

Arena::Arena(Arena&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      cow_clone_(std::exchange(other.cow_clone_, false)) {}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      munmap(data_, size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    cow_clone_ = std::exchange(other.cow_clone_, false);
  }
  return *this;
}

ArenaSnapshot::~ArenaSnapshot() {
  if (fd_ >= 0) {
    close(fd_);
  }
}

asbase::Result<std::shared_ptr<const ArenaSnapshot>> Arena::CaptureSnapshot()
    const {
  if (data_ == nullptr) {
    return asbase::FailedPrecondition("cannot snapshot an invalid arena");
  }
  int fd = static_cast<int>(
      syscall(SYS_memfd_create, "alloy-wfd-snapshot",
              static_cast<unsigned>(MFD_CLOEXEC | MFD_ALLOW_SEALING)));
  if (fd < 0) {
    return asbase::Internal(std::string("memfd_create failed: ") +
                            std::strerror(errno));
  }
  if (ftruncate(fd, static_cast<off_t>(size_)) != 0) {
    close(fd);
    return asbase::Internal("cannot size snapshot memfd");
  }
  // Only resident pages carry content (untouched anonymous pages are zero,
  // and so are the memfd's holes); copy runs of them.
  const size_t page = PageSize();
  const size_t pages = size_ / page;
  std::vector<unsigned char> resident(pages);
  if (mincore(data_, size_, resident.data()) != 0) {
    // Conservative fallback: treat everything as resident.
    std::fill(resident.begin(), resident.end(), 1);
  }
  size_t image_bytes = 0;
  const char* base = static_cast<const char*>(data_);
  size_t run_start = 0;
  bool in_run = false;
  auto flush_run = [&](size_t end_page) -> bool {
    const size_t offset = run_start * page;
    const size_t len = (end_page - run_start) * page;
    size_t done = 0;
    while (done < len) {
      ssize_t n = pwrite(fd, base + offset + done, len - done,
                         static_cast<off_t>(offset + done));
      if (n <= 0) {
        return false;
      }
      done += static_cast<size_t>(n);
    }
    image_bytes += len;
    return true;
  };
  for (size_t p = 0; p < pages; ++p) {
    if (resident[p] & 1) {
      if (!in_run) {
        run_start = p;
        in_run = true;
      }
    } else if (in_run) {
      if (!flush_run(p)) {
        close(fd);
        return asbase::Internal("short write into snapshot memfd");
      }
      in_run = false;
    }
  }
  if (in_run && !flush_run(pages)) {
    close(fd);
    return asbase::Internal("short write into snapshot memfd");
  }
  // Seal the template: nothing can resize or write the shared image after
  // this point. MAP_PRIVATE clone mappings are unaffected by F_SEAL_WRITE.
  if (fcntl(fd, F_ADD_SEALS,
            F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_WRITE | F_SEAL_SEAL) != 0) {
    close(fd);
    return asbase::Internal("cannot seal snapshot memfd");
  }
  auto snapshot = std::shared_ptr<ArenaSnapshot>(new ArenaSnapshot());
  snapshot->fd_ = fd;
  snapshot->size_ = size_;
  snapshot->image_bytes_ = image_bytes;
  return std::shared_ptr<const ArenaSnapshot>(std::move(snapshot));
}

asbase::Result<Arena> Arena::CloneFrom(const ArenaSnapshot& snapshot) {
  if (snapshot.fd_ < 0 || snapshot.size_ == 0) {
    return asbase::FailedPrecondition("invalid arena snapshot");
  }
  // MAP_NORESERVE: clones are expected to dirty a small fraction of the
  // template; don't charge full swap for each. MAP_PRIVATE gives CoW — the
  // sealed file is never written through this mapping.
  void* mapped = mmap(nullptr, snapshot.size_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_NORESERVE, snapshot.fd_, 0);
  if (mapped == MAP_FAILED) {
    return asbase::Internal(std::string("CoW clone mmap failed: ") +
                            std::strerror(errno));
  }
  Arena arena;
  arena.data_ = mapped;
  arena.size_ = snapshot.size_;
  arena.cow_clone_ = true;
  return arena;
}

size_t Arena::ResidentBytes() const {
  if (data_ == nullptr) {
    return 0;
  }
  const size_t page = PageSize();
  const size_t pages = size_ / page;
  std::vector<unsigned char> vec(pages);
  if (mincore(data_, size_, vec.data()) != 0) {
    return 0;
  }
  size_t resident = 0;
  for (unsigned char byte : vec) {
    if (byte & 1) {
      ++resident;
    }
  }
  return resident * page;
}

size_t Arena::PrivateResidentBytes() const {
  if (data_ == nullptr) {
    return 0;
  }
  if (!cow_clone_) {
    // Anonymous mapping: every resident page is private by construction.
    return ResidentBytes();
  }
  int fd = open("/proc/self/pagemap", O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ResidentBytes();
  }
  const size_t page = PageSize();
  const size_t pages = size_ / page;
  const uintptr_t first_page = reinterpret_cast<uintptr_t>(data_) / page;
  constexpr size_t kBatch = 8192;  // 64 KiB of pagemap entries per pread
  std::vector<uint64_t> entries(kBatch);
  size_t private_pages = 0;
  for (size_t done = 0; done < pages; done += kBatch) {
    const size_t count = std::min(kBatch, pages - done);
    const off_t offset =
        static_cast<off_t>((first_page + done) * sizeof(uint64_t));
    ssize_t n = pread(fd, entries.data(), count * sizeof(uint64_t), offset);
    if (n != static_cast<ssize_t>(count * sizeof(uint64_t))) {
      close(fd);
      return ResidentBytes();
    }
    for (size_t i = 0; i < count; ++i) {
      const uint64_t entry = entries[i];
      const bool present = (entry >> 63) & 1;
      const bool swapped = (entry >> 62) & 1;
      const bool file_backed = (entry >> 61) & 1;
      // A CoW-broken page is an anonymous copy (not file-backed); an
      // untouched page in the clone is still the memfd's file page.
      if ((present || swapped) && !file_backed) {
        ++private_pages;
      }
    }
  }
  close(fd);
  return private_pages * page;
}

}  // namespace asalloc
