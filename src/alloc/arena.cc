#include "src/alloc/arena.h"

#include <sys/mman.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace asalloc {

size_t Arena::PageSize() {
  static const size_t kPage = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

Arena::Arena(size_t size) {
  const size_t page = PageSize();
  size_ = (size + page - 1) / page * page;
  void* mapped = mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  AS_CHECK(mapped != MAP_FAILED) << "mmap of " << size_ << " bytes failed";
  data_ = mapped;
}

Arena::~Arena() {
  if (data_ != nullptr) {
    munmap(data_, size_);
  }
}

Arena::Arena(Arena&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      munmap(data_, size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

size_t Arena::ResidentBytes() const {
  if (data_ == nullptr) {
    return 0;
  }
  const size_t page = PageSize();
  const size_t pages = size_ / page;
  std::vector<unsigned char> vec(pages);
  if (mincore(data_, size_, vec.data()) != 0) {
    return 0;
  }
  size_t resident = 0;
  for (unsigned char byte : vec) {
    if (byte & 1) {
      ++resident;
    }
  }
  return resident * page;
}

}  // namespace asalloc
