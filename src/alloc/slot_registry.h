// Slot -> buffer mapping for intermediate data (§5, §7.1).
//
// `alloc_buffer(slot, layout, fingerprint)` registers a heap buffer under a
// slot name; `acquire_buffer(slot, fingerprint)` looks it up, validates the
// type fingerprint, and *removes* the entry so no two functions can own the
// same buffer. Fan-out uses distinct slot names, fan-in one slot per
// upstream function.

#ifndef SRC_ALLOC_SLOT_REGISTRY_H_
#define SRC_ALLOC_SLOT_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace asalloc {

struct BufferRecord {
  uintptr_t addr = 0;
  size_t size = 0;
  // Hash of the transported type; mismatches indicate sender/receiver type
  // skew and are rejected before any dereference.
  uint64_t fingerprint = 0;
};

class SlotRegistry {
 public:
  // Fails with kAlreadyExists if the slot is occupied (a sender must not
  // silently clobber data a receiver has not consumed).
  asbase::Status Register(const std::string& slot, BufferRecord record);

  // Single-consumer take: validates the fingerprint, removes the slot.
  asbase::Result<BufferRecord> Acquire(const std::string& slot,
                                       uint64_t fingerprint);

  // Non-destructive lookup (used by diagnostics and tests).
  asbase::Result<BufferRecord> Peek(const std::string& slot) const;

  // Drops a slot without consuming it (sender-side abort path).
  asbase::Status Remove(const std::string& slot);

  size_t size() const;
  std::vector<std::string> SlotNames() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, BufferRecord> slots_;
};

// FNV-1a over a type's stable name; as-std uses this to fingerprint
// AsBuffer<T> payloads the way the Rust side derives `FaasData`.
uint64_t FingerprintName(std::string_view type_name);

}  // namespace asalloc

#endif  // SRC_ALLOC_SLOT_REGISTRY_H_
