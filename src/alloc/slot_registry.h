// Slot -> buffer mapping for intermediate data (§5, §7.1).
//
// `alloc_buffer(slot, layout, fingerprint)` registers a heap buffer under a
// slot name; `acquire_buffer(slot, fingerprint)` looks it up, validates the
// type fingerprint, and *removes* the entry so no two functions can own the
// same buffer. Fan-out uses distinct slot names, fan-in one slot per
// upstream function.

#ifndef SRC_ALLOC_SLOT_REGISTRY_H_
#define SRC_ALLOC_SLOT_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace asalloc {

struct BufferRecord {
  uintptr_t addr = 0;
  size_t size = 0;
  // Hash of the transported type; mismatches indicate sender/receiver type
  // skew and are rejected before any dereference.
  uint64_t fingerprint = 0;
};

class SlotRegistry {
 public:
  // Out of line: the pin table is an incomplete type here.
  SlotRegistry();
  ~SlotRegistry();

  // Fails with kAlreadyExists if the slot is occupied (a sender must not
  // silently clobber data a receiver has not consumed).
  asbase::Status Register(const std::string& slot, BufferRecord record);

  // Single-consumer take: validates the fingerprint, removes the slot.
  asbase::Result<BufferRecord> Acquire(const std::string& slot,
                                       uint64_t fingerprint);

  // Non-destructive lookup (used by diagnostics and tests).
  asbase::Result<BufferRecord> Peek(const std::string& slot) const;

  // Drops a slot without consuming it (sender-side abort path).
  asbase::Status Remove(const std::string& slot);

  size_t size() const;
  std::vector<std::string> SlotNames() const;
  void Clear();

  // ---- TX pinning (zero-copy netstack sends) ----
  //
  // `SlotRegistry` is the authority on slot-buffer ownership, so it also
  // tracks which buffers the netstack currently holds by reference. A pin
  // refcounts `[addr, addr+size)`: the TCP send queue and every in-flight
  // frame share the handle, and the count drops when the covering ACK (or
  // connection teardown) releases the last reference. Handles stay valid
  // past the registry's lifetime — they own the shared pin table, and
  // orphaned releases just decay to no-ops.
  std::shared_ptr<const void> PinForTx(uintptr_t addr, size_t size);
  bool IsPinnedForTx(uintptr_t addr) const;
  size_t TxPinnedBuffers() const;

  // Owners call this immediately before freeing or recycling buffer memory.
  // Returns false — and records `alloy_asbuffer_pinned_release_total` (plus
  // a debug assert) — when live TX pins still cover `addr`: a leaked pin
  // would otherwise re-read freed memory on retransmit, silently.
  bool CheckReleasable(uintptr_t addr) const;

  // Tests flip this off to exercise the violation path (metric + log)
  // without tripping the debug assert; production leaves it armed.
  static void set_abort_on_pinned_release(bool abort_on_violation);

 private:
  struct PinTable;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, BufferRecord> slots_;
  std::shared_ptr<PinTable> pin_table_;
};

// FNV-1a over a type's stable name; as-std uses this to fingerprint
// AsBuffer<T> payloads the way the Rust side derives `FaasData`.
uint64_t FingerprintName(std::string_view type_name);

}  // namespace asalloc

#endif  // SRC_ALLOC_SLOT_REGISTRY_H_
