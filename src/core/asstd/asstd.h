// as-std: the standard-library layer user functions link against (§3.5).
//
// Three jobs, matching the paper:
//  1. Intercept "syscalls": user code never reaches the host kernel — every
//     operation below routes into this WFD's as-libos.
//  2. Hide on-demand loading: a call that needs an unloaded module triggers
//     the slow path transparently (EnsureLoaded inside the LibOS).
//  3. Switch MPK permissions: every LibOS entry goes through the WFD
//     trampoline, which raises PKRU to the system value and restores the
//     user value on return (Fig 9).
//
// `AsBuffer<T>` / raw slot buffers implement reference passing (§5, Fig 6/8).

#ifndef SRC_CORE_ASSTD_ASSTD_H_
#define SRC_CORE_ASSTD_ASSTD_H_

#include <atomic>
#include <string>
#include <string_view>

#include "src/alloc/slot_registry.h"
#include "src/core/wfd.h"

namespace alloy {

class AsStd;

// RAII file handle over a LibOS fd.
class AsFile {
 public:
  AsFile() = default;
  AsFile(AsStd* as, int fd) : as_(as), fd_(fd) {}
  ~AsFile();
  AsFile(AsFile&& other) noexcept;
  AsFile& operator=(AsFile&& other) noexcept;
  AsFile(const AsFile&) = delete;
  AsFile& operator=(const AsFile&) = delete;

  asbase::Result<size_t> Read(std::span<uint8_t> out);
  asbase::Result<size_t> Write(std::span<const uint8_t> data);
  asbase::Result<size_t> Write(std::string_view text);
  asbase::Result<uint64_t> Seek(int64_t offset, asfat::Whence whence);
  asbase::Status Close();

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  AsStd* as_ = nullptr;
  int fd_ = -1;
};

// A raw (untyped) intermediate-data buffer registered under a slot.
struct RawBuffer {
  std::span<uint8_t> bytes;
  // Fingerprint the slot was registered with (type identity).
  uint64_t fingerprint = 0;
};

class AsStd {
 public:
  explicit AsStd(Wfd* wfd) : wfd_(wfd) {}

  Wfd& wfd() { return *wfd_; }

  // ---- files ----
  asbase::Result<AsFile> Open(const std::string& path, asfat::OpenFlags flags);
  asbase::Status WriteWholeFile(const std::string& path,
                                std::span<const uint8_t> data);
  asbase::Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path);
  asbase::Status Mkdir(const std::string& path);
  asbase::Status Remove(const std::string& path);
  asbase::Result<asfat::FileInfo> Stat(const std::string& path);

  // ---- stdio / time ----
  asbase::Status Print(std::string_view text);
  asbase::Result<int64_t> NowMicros();

  // ---- deadlines ----
  // Absolute MonoNanos deadline for the surrounding invocation, stamped by
  // the orchestrator. Slow paths below (whole-file chunk loops) check it
  // between chunks, and sockets minted by Bind/Connect inherit it, so a
  // function stuck in library code still honors the invocation deadline
  // without the orchestrator preempting its thread. 0 = none.
  void set_deadline_nanos(int64_t deadline) { deadline_nanos_ = deadline; }
  int64_t deadline_nanos() const { return deadline_nanos_; }
  // kDeadlineExceeded once the deadline has passed, OkStatus before.
  asbase::Status CheckDeadline() const;

  // ---- sockets ----
  asbase::Result<std::unique_ptr<asnet::TcpListener>> Bind(uint16_t port);
  asbase::Result<std::unique_ptr<asnet::TcpConnection>> Connect(
      asnet::Ipv4Addr dst, uint16_t port);
  // Zero-copy send of a slot-backed buffer: pins the heap memory in the
  // LibOS (so freeing it while the netstack still references it is loudly
  // visible) and hands the bytes to the stack by reference — the segment
  // builder gather-writes frames straight from the slot, no payload memcpy.
  // The pin is released when the covering ACK arrives or the connection
  // tears down. Blocking semantics match connection.Send.
  asbase::Result<size_t> SendZeroCopy(asnet::TcpConnection& connection,
                                      const RawBuffer& buffer);
  // Zero-copy receive: the front pool-owned extent by reference (no copy);
  // `bytes.empty()` signals EOF. Use connection.Recv for contiguity.
  asbase::Result<asnet::RxChunk> RecvZeroCopy(
      asnet::TcpConnection& connection);

  // ---- intermediate data (reference passing, §5) ----
  // Sender side: allocate `size` bytes on the WFD heap under `slot`.
  asbase::Result<RawBuffer> AllocBuffer(const std::string& slot, size_t size,
                                        uint64_t fingerprint);
  // Receiver side: take ownership of the slot's buffer (slot is removed).
  asbase::Result<RawBuffer> AcquireBuffer(const std::string& slot,
                                          uint64_t fingerprint);
  // Frees a buffer obtained from AcquireBuffer after consumption.
  asbase::Status FreeBuffer(RawBuffer buffer);
  // Transfers an owned buffer to a downstream function under a new slot
  // (chain forwarding) without copying.
  asbase::Status ForwardBuffer(const std::string& slot, RawBuffer buffer);

  // ---- mmap'd file reads (mmap_file_backend) ----
  asbase::Result<std::span<uint8_t>> MapFile(const std::string& path);
  asbase::Status FaultIn(std::span<uint8_t> mapping, size_t offset,
                         size_t len);
  asbase::Status Unmap(std::span<uint8_t> mapping);

  // Number of LibOS entries made through this as-std (trampoline crossings
  // are wfd().trampoline().enter_count()).
  uint64_t syscall_count() const {
    return syscalls_.load(std::memory_order_relaxed);
  }

  // IFI support: wraps an intermediate-buffer access. Under AS-IFI this
  // costs two PKRU writes (enable the buffer owner's key, then drop it);
  // without IFI it is free. Usage:
  //   { auto guard = as.BufferAccess(); memcpy(buffer, ...); }
  class AccessGuard {
   public:
    AccessGuard(asmpk::PkeyRuntime* mpk, uint32_t widened, bool active)
        : mpk_(mpk), active_(active) {
      if (active_) {
        saved_ = mpk_->ReadPkru();
        mpk_->WritePkru(widened);
      }
    }
    ~AccessGuard() {
      if (active_) {
        mpk_->WritePkru(saved_);
      }
    }
    AccessGuard(const AccessGuard&) = delete;
    AccessGuard& operator=(const AccessGuard&) = delete;

   private:
    asmpk::PkeyRuntime* mpk_;
    bool active_;
    uint32_t saved_ = 0;
  };
  AccessGuard BufferAccess() {
    return AccessGuard(&wfd_->mpk(),
                       asmpk::PkeyRuntime::AllowKey(
                           wfd_->mpk().ReadPkru(), wfd_->user_key()),
                       wfd_->options().inter_function_isolation);
  }

 private:
  // All LibOS entries funnel through here: counts the call and performs the
  // MPK permission switch via the trampoline.
  template <typename Fn>
  auto Syscall(Fn&& fn) -> decltype(fn()) {
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    return wfd_->trampoline().EnterSystem(std::forward<Fn>(fn));
  }

  friend class AsFile;

  Wfd* wfd_;
  std::atomic<uint64_t> syscalls_{0};
  int64_t deadline_nanos_ = 0;
};

// Typed reference-passing buffer (Fig 6/8). T must be trivially copyable —
// the payload lives on the WFD heap and crosses function boundaries by
// reference.
template <typename T>
class AsBuffer {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "AsBuffer payloads live on the shared WFD heap");

  // Sender: create the buffer under `slot` (Fig 8 func_a).
  static asbase::Result<AsBuffer> WithSlot(AsStd& as, const std::string& slot) {
    AS_ASSIGN_OR_RETURN(RawBuffer raw,
                        as.AllocBuffer(slot, sizeof(T), Fingerprint()));
    return AsBuffer(&as, new (raw.bytes.data()) T());
  }

  // Receiver: reference the buffer through the same slot (Fig 8 func_b).
  static asbase::Result<AsBuffer> FromSlot(AsStd& as, const std::string& slot) {
    AS_ASSIGN_OR_RETURN(RawBuffer raw, as.AcquireBuffer(slot, Fingerprint()));
    return AsBuffer(&as, reinterpret_cast<T*>(raw.bytes.data()));
  }

  T* operator->() { return data_; }
  T& operator*() { return *data_; }
  const T* operator->() const { return data_; }
  const T& operator*() const { return *data_; }
  T* get() { return data_; }

  // Hands the memory back to the WFD heap (receiver side, after use).
  asbase::Status Release() {
    if (data_ == nullptr) {
      return asbase::FailedPrecondition("buffer already released");
    }
    RawBuffer raw{std::span<uint8_t>(reinterpret_cast<uint8_t*>(data_),
                                     sizeof(T)),
                  Fingerprint()};
    data_ = nullptr;
    return as_->FreeBuffer(raw);
  }

  static uint64_t Fingerprint() {
    return asalloc::FingerprintName(typeid(T).name());
  }

 private:
  AsBuffer(AsStd* as, T* data) : as_(as), data_(data) {}
  AsStd* as_;
  T* data_;
};

}  // namespace alloy

#endif  // SRC_CORE_ASSTD_ASSTD_H_
