#include "src/core/asstd/wasi.h"

#include <cstring>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/vm/assembler.h"

namespace alloy {
namespace {

// Scoped phase marker: hostcalls attribute their time to the right Fig 15
// bucket and return the function to compute time afterwards.
class ScopedPhase {
 public:
  ScopedPhase(FunctionContext* context, Phase phase) : context_(context) {
    context_->BeginPhase(phase);
  }
  ~ScopedPhase() { context_->BeginPhase(Phase::kCompute); }

 private:
  FunctionContext* context_;
};

std::string SlotName(const std::string& base, int64_t i, int64_t j) {
  std::string slot = base;
  if (i >= 0) {
    slot += "-" + std::to_string(i);
  }
  if (j >= 0) {
    slot += "-" + std::to_string(j);
  }
  return slot;
}

asfat::OpenFlags DecodeOpenFlags(int64_t oflags) {
  asfat::OpenFlags flags;
  flags.read = true;
  if (oflags & 1) {
    flags = asfat::OpenFlags::WriteCreate();
  }
  if (oflags & 2) {
    flags = asfat::OpenFlags::Append();
  }
  return flags;
}

}  // namespace

WasiEnv::WasiEnv(FunctionContext* context) : context_(context) {
  RegisterAll();
}

void WasiEnv::RegisterAll() {
  AsStd& as = context_->as();

  // ---- the 15 WASI interfaces (§7.2) ----
  table_.Register(
      "fd_write", 3,
      [this, &as](asvm::Vm& vm,
                  std::span<const int64_t> args) -> asbase::Result<int64_t> {
        const int64_t fd = args[0];
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[1]),
                                         static_cast<uint64_t>(args[2])));
        std::span<const uint8_t> data(
            vm.memory().data() + args[1], static_cast<size_t>(args[2]));
        if (fd == 1 || fd == 2) {
          AS_RETURN_IF_ERROR(as.Print(std::string_view(
              reinterpret_cast<const char*>(data.data()), data.size())));
          return args[2];
        }
        auto it = open_files_.find(fd);
        if (it == open_files_.end()) {
          return asbase::InvalidArgument("wasi: bad fd");
        }
        AS_ASSIGN_OR_RETURN(size_t n, it->second.Write(data));
        return static_cast<int64_t>(n);
      });

  table_.Register(
      "fd_read", 3,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        ScopedPhase phase(context_, Phase::kReadInput);
        auto it = open_files_.find(args[0]);
        if (it == open_files_.end()) {
          return asbase::InvalidArgument("wasi: bad fd");
        }
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[1]),
                                         static_cast<uint64_t>(args[2])));
        std::span<uint8_t> dest(vm.memory().data() + args[1],
                                static_cast<size_t>(args[2]));
        AS_ASSIGN_OR_RETURN(size_t n, it->second.Read(dest));
        return static_cast<int64_t>(n);
      });

  table_.Register(
      "fd_close", 1,
      [this](asvm::Vm&,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        auto it = open_files_.find(args[0]);
        if (it == open_files_.end()) {
          return asbase::InvalidArgument("wasi: bad fd");
        }
        AS_RETURN_IF_ERROR(it->second.Close());
        open_files_.erase(it);
        return 0;
      });

  table_.Register(
      "fd_seek", 3,
      [this](asvm::Vm&,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        auto it = open_files_.find(args[0]);
        if (it == open_files_.end()) {
          return asbase::InvalidArgument("wasi: bad fd");
        }
        auto whence = static_cast<asfat::Whence>(args[2]);
        AS_ASSIGN_OR_RETURN(uint64_t pos, it->second.Seek(args[1], whence));
        return static_cast<int64_t>(pos);
      });

  table_.Register(
      "path_open", 3,
      [this, &as](asvm::Vm& vm,
                  std::span<const int64_t> args) -> asbase::Result<int64_t> {
        ScopedPhase phase(context_, Phase::kReadInput);
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        AS_ASSIGN_OR_RETURN(AsFile file,
                            as.Open(path, DecodeOpenFlags(args[2])));
        const int64_t fd = next_fd_++;
        open_files_[fd] = std::move(file);
        return fd;
      });

  table_.Register(
      "path_create_directory", 2,
      [&as](asvm::Vm& vm,
            std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        AS_RETURN_IF_ERROR(as.Mkdir(path));
        return 0;
      });

  table_.Register(
      "path_unlink_file", 2,
      [&as](asvm::Vm& vm,
            std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        AS_RETURN_IF_ERROR(as.Remove(path));
        return 0;
      });

  table_.Register(
      "path_filestat_get", 2,
      [&as](asvm::Vm& vm,
            std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        AS_ASSIGN_OR_RETURN(asfat::FileInfo info, as.Stat(path));
        return static_cast<int64_t>(info.size);
      });

  table_.Register(
      "fd_readdir", 2,
      [&as](asvm::Vm& vm,
            std::span<const int64_t> args) -> asbase::Result<int64_t> {
        // Simplified: returns the number of entries in the directory named
        // by the guest string.
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        auto listing = as.wfd().libos().ReadDir(path);
        if (!listing.ok()) {
          return listing.status();
        }
        return static_cast<int64_t>(listing->size());
      });

  table_.Register(
      "clock_time_get", 1,
      [&as](asvm::Vm&,
            std::span<const int64_t>) -> asbase::Result<int64_t> {
        return as.NowMicros();
      });

  table_.Register(
      "proc_exit", 1,
      [this](asvm::Vm&,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        exit_code_ = args[0];
        return args[0];
      });

  table_.Register(
      "random_get", 2,
      [](asvm::Vm& vm,
         std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[0]),
                                         static_cast<uint64_t>(args[1])));
        asbase::Rng rng(static_cast<uint64_t>(asbase::MonoNanos()));
        for (int64_t i = 0; i < args[1]; ++i) {
          vm.memory()[static_cast<size_t>(args[0] + i)] =
              static_cast<uint8_t>(rng.Next());
        }
        return 0;
      });

  table_.Register("sched_yield", 0,
                  [](asvm::Vm&, std::span<const int64_t>)
                      -> asbase::Result<int64_t> {
                    std::this_thread::yield();
                    return 0;
                  });

  table_.Register(
      "args_sizes_get", 0,
      [this](asvm::Vm&, std::span<const int64_t>) -> asbase::Result<int64_t> {
        return static_cast<int64_t>(
            context_->params()["vm_arg"].as_string().size());
      });

  table_.Register(
      "args_get", 1,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        const std::string& arg = context_->params()["vm_arg"].as_string();
        AS_RETURN_IF_ERROR(vm.WriteGuestBytes(
            static_cast<uint64_t>(args[0]),
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(arg.data()), arg.size())));
        return static_cast<int64_t>(arg.size());
      });

  // ---- the two customized intermediate-data interfaces (§7.2) ----
  table_.Register(
      "buffer_register", 4,
      [this, &as](asvm::Vm& vm,
                  std::span<const int64_t> args) -> asbase::Result<int64_t> {
        ScopedPhase phase(context_, Phase::kTransfer);
        AS_ASSIGN_OR_RETURN(std::string slot,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[2]),
                                         static_cast<uint64_t>(args[3])));
        // C/Python transfer is string-typed (§7.2).
        const uint64_t fingerprint = asalloc::FingerprintName("wasm-string");
        AS_ASSIGN_OR_RETURN(
            RawBuffer buffer,
            as.AllocBuffer(slot, static_cast<size_t>(args[3]), fingerprint));
        auto guard = as.BufferAccess();
        std::memcpy(buffer.bytes.data(), vm.memory().data() + args[2],
                    static_cast<size_t>(args[3]));
        return 0;
      });

  table_.Register(
      "access_buffer", 4,
      [this, &as](asvm::Vm& vm,
                  std::span<const int64_t> args) -> asbase::Result<int64_t> {
        ScopedPhase phase(context_, Phase::kTransfer);
        AS_ASSIGN_OR_RETURN(std::string slot,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const uint64_t fingerprint = asalloc::FingerprintName("wasm-string");
        AS_ASSIGN_OR_RETURN(RawBuffer buffer,
                            as.AcquireBuffer(slot, fingerprint));
        const size_t n =
            std::min<size_t>(buffer.bytes.size(), static_cast<size_t>(args[3]));
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[2]), n));
        {
          auto guard = as.BufferAccess();
          std::memcpy(vm.memory().data() + args[2], buffer.bytes.data(), n);
        }
        AS_RETURN_IF_ERROR(as.FreeBuffer(buffer));
        return static_cast<int64_t>(n);
      });

  // Indexed variants: slot = base[-i][-j] (i/j = -1 omits the suffix).
  // Saves guests from integer-to-string formatting in bytecode.
  table_.Register(
      "buffer_register2", 6,
      [this, &as](asvm::Vm& vm,
                  std::span<const int64_t> args) -> asbase::Result<int64_t> {
        ScopedPhase phase(context_, Phase::kTransfer);
        AS_ASSIGN_OR_RETURN(std::string base,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string slot = SlotName(base, args[2], args[3]);
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[4]),
                                         static_cast<uint64_t>(args[5])));
        const uint64_t fingerprint = asalloc::FingerprintName("wasm-string");
        AS_ASSIGN_OR_RETURN(
            RawBuffer buffer,
            as.AllocBuffer(slot, static_cast<size_t>(args[5]), fingerprint));
        auto guard = as.BufferAccess();
        if (args[5] > 0) {
          std::memcpy(buffer.bytes.data(), vm.memory().data() + args[4],
                      static_cast<size_t>(args[5]));
        }
        return 0;
      });

  table_.Register(
      "access_buffer2", 6,
      [this, &as](asvm::Vm& vm,
                  std::span<const int64_t> args) -> asbase::Result<int64_t> {
        ScopedPhase phase(context_, Phase::kTransfer);
        AS_ASSIGN_OR_RETURN(std::string base,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string slot = SlotName(base, args[2], args[3]);
        const uint64_t fingerprint = asalloc::FingerprintName("wasm-string");
        AS_ASSIGN_OR_RETURN(RawBuffer buffer,
                            as.AcquireBuffer(slot, fingerprint));
        const size_t n =
            std::min<size_t>(buffer.bytes.size(), static_cast<size_t>(args[5]));
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[4]), n));
        {
          auto guard = as.BufferAccess();
          if (n > 0) {
            std::memcpy(vm.memory().data() + args[4], buffer.bytes.data(), n);
          }
        }
        AS_RETURN_IF_ERROR(as.FreeBuffer(buffer));
        return static_cast<int64_t>(n);
      });

  // ---- context accessors for workflow-aware guests ----
  table_.Register("ctx_stage", 0,
                  [this](asvm::Vm&, std::span<const int64_t>)
                      -> asbase::Result<int64_t> {
                    return context_->stage();
                  });
  table_.Register("ctx_set_result_int", 1,
                  [this](asvm::Vm&, std::span<const int64_t> args)
                      -> asbase::Result<int64_t> {
                    context_->SetResult("vm=" + std::to_string(args[0]));
                    return 0;
                  });
  table_.Register("ctx_instance", 0,
                  [this](asvm::Vm&, std::span<const int64_t>)
                      -> asbase::Result<int64_t> {
                    return context_->instance();
                  });
  table_.Register("ctx_instances", 0,
                  [this](asvm::Vm&, std::span<const int64_t>)
                      -> asbase::Result<int64_t> {
                    return context_->instance_count();
                  });
  table_.Register(
      "ctx_param_int", 2,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string name,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        return context_->params()[name].as_int();
      });
  table_.Register(
      "ctx_param_str", 4,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string name,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string& value = context_->params()[name].as_string();
        const size_t n =
            std::min<size_t>(value.size(), static_cast<size_t>(args[3]));
        AS_RETURN_IF_ERROR(vm.WriteGuestBytes(
            static_cast<uint64_t>(args[2]),
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(value.data()), n)));
        return static_cast<int64_t>(n);
      });
  table_.Register(
      "ctx_set_result", 2,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string result,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        context_->SetResult(std::move(result));
        return 0;
      });
}

asbase::Status EnsurePythonStdlib(AsStd& as) {
  auto stat = as.Stat(kPythonStdlibPath);
  if (stat.ok() && stat->size == kPythonStdlibBytes) {
    return asbase::OkStatus();
  }
  asbase::Status mkdir_status = as.Mkdir("/lib");
  if (!mkdir_status.ok() &&
      mkdir_status.code() != asbase::ErrorCode::kAlreadyExists) {
    return mkdir_status;
  }
  std::vector<uint8_t> image(kPythonStdlibBytes);
  asbase::Rng rng(20250704);
  for (auto& byte : image) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  return as.WriteWholeFile(kPythonStdlibPath, image);
}

UserFunction MakeVmFunction(std::shared_ptr<const asvm::VmModule> module,
                            VmFunctionOptions options) {
  return [module, options](FunctionContext& context) -> asbase::Status {
    context.BeginPhase(Phase::kCompute);
    if (options.python_runtime) {
      // CPython runtime initialization: pull the stdlib image through the
      // LibOS filesystem and checksum it (import machinery model). This is
      // the dominant AS-Py / Faasm-Py cold-start cost in Fig 10.
      context.BeginPhase(Phase::kReadInput);
      auto image = context.as().ReadWholeFile(kPythonStdlibPath);
      if (!image.ok()) {
        AS_RETURN_IF_ERROR(EnsurePythonStdlib(context.as()));
        image = context.as().ReadWholeFile(kPythonStdlibPath);
        if (!image.ok()) {
          return image.status();
        }
      }
      uint64_t checksum = 0xcbf29ce484222325ULL;
      for (uint8_t byte : *image) {
        checksum = (checksum ^ byte) * 0x100000001b3ULL;
      }
      if (checksum == 0) {
        return asbase::Internal("stdlib image corrupt");
      }
      context.BeginPhase(Phase::kCompute);
      // Interpreter bootstrap beyond the image read (modeled; DESIGN.md §1).
      asbase::SpinFor(asbase::SimCostModel::Global().Scaled(
          asbase::SimCostModel::Global().cpython_bootstrap_nanos));
    }

    WasiEnv env(&context);
    const asvm::VmMode mode =
        options.python_runtime ? asvm::VmMode::kBoxed : options.mode;
    asvm::Vm vm(module.get(), &env.host(), mode);
    if (options.fuel != 0) {
      vm.set_fuel(options.fuel);
    }
    const int64_t vm_start = asbase::MonoNanos();
    auto result = vm.Run();
    if (mode == asvm::VmMode::kAot) {
      // Wasmtime's Cranelift code generator is ~30% slower than WAVM's LLVM
      // backend (§8.5); both runtimes here share one interpreter, so
      // AlloyStack's side carries the calibrated penalty explicitly.
      const auto& model = asbase::SimCostModel::Global();
      asbase::SpinFor(static_cast<int64_t>(
          static_cast<double>(asbase::MonoNanos() - vm_start) *
          model.wasmtime_cranelift_penalty * model.scale));
    }
    if (!result.ok()) {
      return result.status();
    }
    if (env.exit_code() != 0) {
      return asbase::Internal("guest exited with code " +
                              std::to_string(env.exit_code()));
    }
    return asbase::OkStatus();
  };
}

asbase::Status RegisterVmFunction(const std::string& name,
                                  const std::string& source,
                                  VmFunctionOptions options) {
  AS_ASSIGN_OR_RETURN(asvm::VmModule module, asvm::Assemble(source));
  auto shared = std::make_shared<const asvm::VmModule>(std::move(module));
  FunctionRegistry::Global().Register(name,
                                      MakeVmFunction(shared, options));
  return asbase::OkStatus();
}

}  // namespace alloy
