#include "src/core/asstd/asstd.h"

#include <utility>

#include "src/common/clock.h"

namespace alloy {

AsFile::~AsFile() {
  if (valid()) {
    Close();
  }
}

AsFile::AsFile(AsFile&& other) noexcept
    : as_(std::exchange(other.as_, nullptr)), fd_(std::exchange(other.fd_, -1)) {}

AsFile& AsFile::operator=(AsFile&& other) noexcept {
  if (this != &other) {
    if (valid()) {
      Close();
    }
    as_ = std::exchange(other.as_, nullptr);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

asbase::Result<size_t> AsFile::Read(std::span<uint8_t> out) {
  return as_->Syscall([&] { return as_->wfd().libos().Read(fd_, out); });
}

asbase::Result<size_t> AsFile::Write(std::span<const uint8_t> data) {
  return as_->Syscall([&] { return as_->wfd().libos().Write(fd_, data); });
}

asbase::Result<size_t> AsFile::Write(std::string_view text) {
  return Write(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

asbase::Result<uint64_t> AsFile::Seek(int64_t offset, asfat::Whence whence) {
  return as_->Syscall(
      [&] { return as_->wfd().libos().Seek(fd_, offset, whence); });
}

asbase::Status AsFile::Close() {
  if (!valid()) {
    return asbase::FailedPrecondition("file already closed");
  }
  int fd = std::exchange(fd_, -1);
  return as_->Syscall([&] { return as_->wfd().libos().CloseFd(fd); });
}

asbase::Result<AsFile> AsStd::Open(const std::string& path,
                                   asfat::OpenFlags flags) {
  AS_ASSIGN_OR_RETURN(
      int fd, Syscall([&] { return wfd_->libos().Open(path, flags); }));
  return AsFile(this, fd);
}

asbase::Status AsStd::CheckDeadline() const {
  if (deadline_nanos_ != 0 && asbase::MonoNanos() > deadline_nanos_) {
    return asbase::DeadlineExceeded("invocation deadline exceeded in as-std");
  }
  return asbase::OkStatus();
}

asbase::Status AsStd::WriteWholeFile(const std::string& path,
                                     std::span<const uint8_t> data) {
  AS_ASSIGN_OR_RETURN(AsFile file,
                      Open(path, asfat::OpenFlags::WriteCreate()));
  size_t done = 0;
  while (done < data.size()) {
    AS_RETURN_IF_ERROR(CheckDeadline());
    AS_ASSIGN_OR_RETURN(size_t n, file.Write(data.subspan(done)));
    if (n == 0) {
      return asbase::ResourceExhausted("short write to " + path);
    }
    done += n;
  }
  return file.Close();
}

asbase::Result<std::vector<uint8_t>> AsStd::ReadWholeFile(
    const std::string& path) {
  AS_ASSIGN_OR_RETURN(asfat::FileInfo info, Stat(path));
  AS_ASSIGN_OR_RETURN(AsFile file, Open(path, asfat::OpenFlags::ReadOnly()));
  std::vector<uint8_t> data(info.size);
  size_t done = 0;
  while (done < data.size()) {
    AS_RETURN_IF_ERROR(CheckDeadline());
    AS_ASSIGN_OR_RETURN(size_t n,
                        file.Read(std::span<uint8_t>(data).subspan(done)));
    if (n == 0) {
      break;
    }
    done += n;
  }
  data.resize(done);
  AS_RETURN_IF_ERROR(file.Close());
  return data;
}

asbase::Status AsStd::Mkdir(const std::string& path) {
  return Syscall([&] { return wfd_->libos().Mkdir(path); });
}

asbase::Status AsStd::Remove(const std::string& path) {
  return Syscall([&] { return wfd_->libos().Remove(path); });
}

asbase::Result<asfat::FileInfo> AsStd::Stat(const std::string& path) {
  return Syscall([&] { return wfd_->libos().Stat(path); });
}

asbase::Status AsStd::Print(std::string_view text) {
  return Syscall([&]() -> asbase::Status {
    auto n = wfd_->libos().HostStdout(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(text.data()), text.size()));
    return n.status();
  });
}

asbase::Result<int64_t> AsStd::NowMicros() {
  return Syscall([&] { return wfd_->libos().GettimeofdayMicros(); });
}

asbase::Result<std::unique_ptr<asnet::TcpListener>> AsStd::Bind(
    uint16_t port) {
  auto listener = Syscall([&] { return wfd_->libos().SmolBind(port); });
  if (listener.ok()) {
    // Accept (and every accepted connection) honors the invocation deadline.
    (*listener)->set_deadline_nanos(deadline_nanos_);
  }
  return listener;
}

asbase::Result<std::unique_ptr<asnet::TcpConnection>> AsStd::Connect(
    asnet::Ipv4Addr dst, uint16_t port) {
  auto connection =
      Syscall([&] { return wfd_->libos().SmolConnect(dst, port); });
  if (connection.ok()) {
    (*connection)->set_deadline_nanos(deadline_nanos_);
  }
  return connection;
}

asbase::Result<size_t> AsStd::SendZeroCopy(asnet::TcpConnection& connection,
                                           const RawBuffer& buffer) {
  AS_ASSIGN_OR_RETURN(std::shared_ptr<const void> pin, Syscall([&] {
                        return wfd_->libos().PinTxBuffer(buffer.bytes.data(),
                                                         buffer.bytes.size());
                      }));
  return connection.SendZeroCopy(buffer.bytes, std::move(pin));
}

asbase::Result<asnet::RxChunk> AsStd::RecvZeroCopy(
    asnet::TcpConnection& connection) {
  // The connection blocks on stack state, not LibOS state, so no trampoline
  // crossing is needed — but count it as a syscall like Recv-through-fd.
  syscalls_.fetch_add(1, std::memory_order_relaxed);
  return connection.RecvZeroCopy();
}

asbase::Result<RawBuffer> AsStd::AllocBuffer(const std::string& slot,
                                             size_t size,
                                             uint64_t fingerprint) {
  AS_ASSIGN_OR_RETURN(void* data, Syscall([&] {
                        return wfd_->libos().AllocBuffer(slot, size, 16,
                                                         fingerprint);
                      }));
  return RawBuffer{std::span<uint8_t>(static_cast<uint8_t*>(data), size),
                   fingerprint};
}

asbase::Result<RawBuffer> AsStd::AcquireBuffer(const std::string& slot,
                                               uint64_t fingerprint) {
  AS_ASSIGN_OR_RETURN(asalloc::BufferRecord record, Syscall([&] {
                        return wfd_->libos().AcquireBuffer(slot, fingerprint);
                      }));
  return RawBuffer{
      std::span<uint8_t>(reinterpret_cast<uint8_t*>(record.addr), record.size),
      record.fingerprint};
}

asbase::Status AsStd::FreeBuffer(RawBuffer buffer) {
  return Syscall(
      [&] { return wfd_->libos().HeapFree(buffer.bytes.data()); });
}

asbase::Status AsStd::ForwardBuffer(const std::string& slot,
                                    RawBuffer buffer) {
  return Syscall([&] {
    return wfd_->libos().RegisterBuffer(slot, buffer.bytes.data(),
                                        buffer.bytes.size(),
                                        buffer.fingerprint);
  });
}

asbase::Result<std::span<uint8_t>> AsStd::MapFile(const std::string& path) {
  return Syscall([&] { return wfd_->libos().MmapFile(path); });
}

asbase::Status AsStd::FaultIn(std::span<uint8_t> mapping, size_t offset,
                              size_t len) {
  return Syscall([&]() -> asbase::Status {
    return wfd_->libos()
        .EnsureResident(mapping.data(), offset, len)
        .status();
  });
}

asbase::Status AsStd::Unmap(std::span<uint8_t> mapping) {
  return Syscall([&] { return wfd_->libos().Munmap(mapping.data()); });
}

}  // namespace alloy
