// WASI adaptation layer (§7.2): bridges AsVM hostcalls to as-std.
//
// The paper runs C and Python functions by compiling them to WASM and
// executing them under Wasmtime, with a thin layer connecting WASI imports
// to as-std. Here AsVM plays Wasmtime's role: `WasiEnv` exposes the 15 WASI
// interfaces plus the two customized intermediate-data interfaces
// (`buffer_register` / `access_buffer`) and a few context accessors, all
// routed through this WFD's as-std (and so through the MPK trampoline into
// as-libos).
//
// `MakeVmFunction` wraps an assembled module as a regular registry function
// — "disguising the WASM runtime as a regular Rust user function".
// `python_runtime = true` models the CPython-on-WASM path: the boxed
// interpreter mode plus a synthetic stdlib image that must be read (through
// the LibOS filesystem) and checksummed before execution, reproducing the
// Python cold-start behaviour of Fig 10.

#ifndef SRC_CORE_ASSTD_WASI_H_
#define SRC_CORE_ASSTD_WASI_H_

#include <map>
#include <memory>

#include "src/core/visor/orchestrator.h"
#include "src/vm/vm.h"

namespace alloy {

class WasiEnv {
 public:
  explicit WasiEnv(FunctionContext* context);

  const asvm::HostTable& host() const { return table_; }

  // proc_exit code, if the guest called it (guest halts right after).
  int64_t exit_code() const { return exit_code_; }

 private:
  void RegisterAll();

  FunctionContext* context_;
  asvm::HostTable table_;
  std::map<int64_t, AsFile> open_files_;
  int64_t next_fd_ = 3;
  int64_t exit_code_ = 0;
};

struct VmFunctionOptions {
  asvm::VmMode mode = asvm::VmMode::kAot;
  // CPython model: boxed interpreter + stdlib image load at startup.
  bool python_runtime = false;
  uint64_t fuel = 0;  // 0 = unlimited
};

// Size of the synthetic Python stdlib image written to the WFD filesystem.
constexpr size_t kPythonStdlibBytes = 4u << 20;
constexpr const char* kPythonStdlibPath = "/lib/python_stdlib.img";

// Writes the stdlib image if it is not already on this WFD's filesystem.
asbase::Status EnsurePythonStdlib(AsStd& as);

// Wraps an assembled AsVM module as a registry-compatible user function.
// The module must outlive every invocation.
UserFunction MakeVmFunction(std::shared_ptr<const asvm::VmModule> module,
                            VmFunctionOptions options = {});

// Assembles `source` and registers it under `name` in the global registry.
asbase::Status RegisterVmFunction(const std::string& name,
                                  const std::string& source,
                                  VmFunctionOptions options = {});

}  // namespace alloy

#endif  // SRC_CORE_ASSTD_WASI_H_
