// The WorkFlow Domain (WFD) abstraction (§3.1).
//
// A WFD is the unit of workflow deployment: one shared address space holding
// the user functions, the as-libos instance, the heap, and the MPK partition
// layout. Strong isolation exists *between* WFDs (separate LibOS instances,
// separate heaps, separate keys); functions *inside* a WFD share the address
// space so intermediate data moves by reference (§5).
//
// MPK layout (§3.3): the WFD allocates a *system* key (as-libos/as-visor
// state) and a *user* key (heap + user data). User code runs under a PKRU
// that denies the system key; the as-std trampoline raises permissions
// around every LibOS call. With `inter_function_isolation` (AS-IFI), each
// registered function instance additionally gets its own key and pays a PKRU
// switch around intermediate-buffer accesses.

#ifndef SRC_CORE_WFD_H_
#define SRC_CORE_WFD_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/libos/libos.h"
#include "src/core/wfd_snapshot.h"
#include "src/mpk/trampoline.h"

namespace alloy {

struct WfdOptions {
  std::string name = "wfd";

  // On-demand module loading (§4). false == the AS-load-all ablation.
  bool on_demand = true;
  // Reference passing for intermediate data (§5). false == the ablation that
  // moves intermediate data through fatfs files (AWS-recommended pattern).
  bool reference_passing = true;
  // AS-IFI: a protection key per function instance (§3.3, FINRA-style).
  bool inter_function_isolation = false;
  // Back the filesystem with ramfs instead of a FAT disk image (Fig 16).
  bool use_ramfs = false;

  size_t heap_bytes = 64u << 20;
  uint64_t disk_blocks = 128 * 1024;  // 64 MiB virtual disk

  // Virtual network attachment (optional).
  asnet::VirtualSwitch* fabric = nullptr;
  asnet::Ipv4Addr addr = 0;
  // Optional pre-populated disk image (not owned).
  asblk::BlockDevice* disk = nullptr;

  asmpk::MpkBackend mpk_backend = asmpk::PkeyRuntime::DefaultBackend();

  // CPUs this WFD's stage workers pin to (multi-visor sharding: the owning
  // shard's core set, so a WFD's stages stop bouncing across the machine).
  // Empty = no affinity. Best-effort; an invalid set falls back to unpinned.
  std::vector<int> cpu_affinity;

  // Invocation trace to hang wfd/libos spans off (optional, not owned; must
  // outlive the WFD). `trace_parent` is the span id to parent under.
  asobs::Trace* trace = nullptr;
  uint32_t trace_parent = 0;
};

class Wfd {
 public:
  // Instantiates the WFD: MPK keys + trampoline + (empty or full) LibOS.
  // The time this takes *is* the WFD part of cold start (Fig 10).
  static asbase::Result<std::unique_ptr<Wfd>> Create(WfdOptions options);

  // Clone boot (DESIGN.md §14): a fresh WFD — own MPK keys, own trampoline,
  // own address-space view — whose LibOS state is reconstructed
  // copy-on-write from a snapshot-fork template instead of booted. The
  // clone's user key is rebound over its private CoW heap view; fds and the
  // netstack register lazily. O(µs) where Create is ~ms. Fails when the
  // options are incompatible with the template's geometry.
  static asbase::Result<std::unique_ptr<Wfd>> CloneFromSnapshot(
      WfdOptions options, std::shared_ptr<const WfdSnapshot> snapshot);
  bool cloned_from_snapshot() const { return cloned_from_snapshot_; }

  // Freezes this WFD's booted state into an immutable template (call only
  // post-Reset on an exclusively-owned WFD). `max_image_bytes` caps the
  // template's one-time resident cost (heap image + disk chunks); 0 = no
  // cap. The WFD keeps serving afterwards — its disk becomes a CoW client
  // of the frozen image.
  asbase::Result<std::shared_ptr<const WfdSnapshot>> CaptureSnapshot(
      size_t max_image_bytes = 0);

  ~Wfd();

  Wfd(const Wfd&) = delete;
  Wfd& operator=(const Wfd&) = delete;

  Libos& libos() { return *libos_; }
  asmpk::PkeyRuntime& mpk() { return *mpk_; }
  asmpk::Trampoline& trampoline() { return *trampoline_; }
  const WfdOptions& options() const { return options_; }

  // Nanoseconds spent inside Create() — the WFD instantiation part of the
  // cold-start budget. Module load time accrues separately in the LibOS.
  int64_t creation_nanos() const { return creation_nanos_; }

  // Re-points the invocation trace (and the parent span id) this WFD's
  // spans attach to. A pooled WFD outlives the per-invocation trace it was
  // created with; the pool calls SetTrace(trace, id) on lease and
  // SetTrace(nullptr, 0) before parking the WFD warm.
  void SetTrace(asobs::Trace* trace, uint32_t trace_parent);

  // Prepares the WFD for the next invocation of the same workflow (warm
  // start): clears per-invocation LibOS state (slots, fds, mmaps) and
  // reopens the thread's PKRU. Loaded modules and the heap survive. On
  // failure the WFD must be destroyed, not re-pooled.
  asbase::Status Reset();

  // Under AS-IFI, allocates a dedicated key for a function instance.
  // Returns the WFD user key otherwise.
  asbase::Result<asmpk::ProtKey> RegisterFunctionInstance(
      const std::string& function_name);

  asmpk::ProtKey system_key() const { return system_key_; }
  asmpk::ProtKey user_key() const { return user_key_; }

  // PKRU for user code: everything denied except the given function key and
  // the shared user key.
  uint32_t UserPkru(asmpk::ProtKey function_key) const;

  // Resident memory attributable to this WFD (Fig 17b).
  size_t ResidentBytes() const;

  // ---- stage worker pool (orchestrator data plane) ----
  // Grows this WFD's worker pool to at least `num_threads` (the workflow's
  // max stage fan-out) and returns how many threads were actually spawned.
  // The pool is lazily created on the first run and survives Reset() and
  // pool park, so a reused WFD dispatches stage instances with zero spawns;
  // the pool's threads die with the WFD. The warmer factory calls this too,
  // so pre-warmed WFDs arrive with their workers already up.
  size_t EnsureStageWorkers(size_t num_threads);
  // The pool itself (nullptr until EnsureStageWorkers ran once).
  asbase::ThreadPool* stage_workers() { return stage_workers_.get(); }
  size_t stage_worker_count() const;

 private:
  Wfd() = default;

  WfdOptions options_;
  std::unique_ptr<asmpk::PkeyRuntime> mpk_;
  asmpk::ProtKey system_key_ = 0;
  asmpk::ProtKey user_key_ = 0;
  std::unique_ptr<asmpk::Trampoline> trampoline_;
  std::unique_ptr<Libos> libos_;
  int64_t creation_nanos_ = 0;
  bool cloned_from_snapshot_ = false;

  // Declared last so the workers join before the LibOS (heap, netstack)
  // they may have touched is torn down.
  mutable std::mutex stage_workers_mutex_;
  std::unique_ptr<asbase::ThreadPool> stage_workers_;
};

}  // namespace alloy

#endif  // SRC_CORE_WFD_H_
