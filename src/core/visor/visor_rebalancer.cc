#include "src/core/visor/visor_rebalancer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/core/visor/visor_router.h"
#include "src/obs/rebalance.h"

namespace alloy {
namespace {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(env, &end, 10);
  if (end == env || value < 0) {
    return fallback;
  }
  return static_cast<int64_t>(value);
}

bool EnvFlag(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  return !(env[0] == '0' && env[1] == '\0');
}

std::string SlicesToString(const std::vector<size_t>& slices) {
  std::string out;
  for (size_t slice : slices) {
    if (!out.empty()) {
      out += "/";
    }
    out += std::to_string(slice);
  }
  return out;
}

}  // namespace

RebalancerOptions RebalancerOptions::FromEnv(RebalancerOptions base) {
  base.enabled = EnvFlag("ALLOY_REBALANCE", base.enabled);
  base.interval_ms = EnvInt64("ALLOY_REBALANCE_INTERVAL_MS", base.interval_ms);
  base.cooldown_ms = EnvInt64("ALLOY_REBALANCE_COOLDOWN_MS", base.cooldown_ms);
  base.reslice_deadband = static_cast<size_t>(std::max<int64_t>(
      1, EnvInt64("ALLOY_REBALANCE_DEADBAND",
                  static_cast<int64_t>(base.reslice_deadband))));
  base.migrate = EnvFlag("ALLOY_REBALANCE_MIGRATE", base.migrate);
  base.migrate_ratio =
      static_cast<double>(EnvInt64(
          "ALLOY_REBALANCE_MIGRATE_RATIO_PCT",
          static_cast<int64_t>(std::llround(base.migrate_ratio * 100)))) /
      100.0;
  base.scale = EnvFlag("ALLOY_REBALANCE_SCALE", base.scale);
  base.scale_up_utilization =
      static_cast<double>(EnvInt64(
          "ALLOY_REBALANCE_SCALE_UP_PCT",
          static_cast<int64_t>(std::llround(base.scale_up_utilization *
                                            100)))) /
      100.0;
  base.scale_down_utilization =
      static_cast<double>(EnvInt64(
          "ALLOY_REBALANCE_SCALE_DOWN_PCT",
          static_cast<int64_t>(std::llround(base.scale_down_utilization *
                                            100)))) /
      100.0;
  return base;
}

std::vector<size_t> DemandWeightedSlices(size_t total,
                                         const std::vector<double>& weights) {
  const size_t n = weights.size();
  std::vector<size_t> slices(n, 1);
  if (n == 0 || total <= n) {
    return slices;  // floor of 1 each is all the budget there is
  }
  double sum = 0;
  for (double weight : weights) {
    sum += std::max(weight, 0.0);
  }
  size_t remaining = total - n;
  if (sum <= 0) {
    // No demand signal: spread evenly, remainder to the lowest shards
    // (matches the router's static ShardSlice convention).
    for (size_t i = 0; i < n; ++i) {
      slices[i] += remaining / n + (i < remaining % n ? 1 : 0);
    }
    return slices;
  }
  // Largest-remainder apportionment: exact total, deterministic ties.
  std::vector<double> fractional(n, 0);
  size_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double share =
        static_cast<double>(remaining) * std::max(weights[i], 0.0) / sum;
    const size_t whole = static_cast<size_t>(share);
    slices[i] += whole;
    assigned += whole;
    fractional[i] = share - static_cast<double>(whole);
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return fractional[a] > fractional[b];
  });
  for (size_t k = 0; k < remaining - assigned; ++k) {
    ++slices[order[k % n]];
  }
  return slices;
}

ShardRebalancer::ShardRebalancer(AsVisorRouter* router,
                                 RebalancerOptions options)
    : router_(router), options_(std::move(options)) {
  reslices_ = &asobs::Registry::Global().GetCounter(
      "alloy_rebalance_reslices_total", {});
}

ShardRebalancer::~ShardRebalancer() { Stop(); }

void ShardRebalancer::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return;
    }
    running_ = true;
    stopping_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void ShardRebalancer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

uint64_t ShardRebalancer::actions_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return actions_;
}

void ShardRebalancer::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stopping_; });
    if (stopping_) {
      break;
    }
    lock.unlock();
    TickOnce();
    lock.lock();
  }
}

bool ShardRebalancer::TickOnce() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t now = asbase::MonoNanos();
    if (options_.cooldown_ms > 0 && last_action_nanos_ != 0 &&
        now - last_action_nanos_ < options_.cooldown_ms * 1'000'000) {
      return false;  // inside the cooldown: observe only
    }
  }
  const std::vector<AsVisor::ShardLoad> loads = router_->ShardLoads();
  if (loads.empty()) {
    return false;
  }
  // Demand = what the shard is carrying plus what is waiting on it — both
  // already maintained by the admission path, so sampling is one lock hold
  // per shard.
  std::vector<double> demand(loads.size(), 0);
  for (size_t i = 0; i < loads.size(); ++i) {
    demand[i] =
        static_cast<double>(loads[i].inflight) +
        static_cast<double>(loads[i].queued);
  }
  const bool acted = MaybeScale(loads, demand) ||
                     MaybeMigrate(loads, demand) ||
                     MaybeReslice(loads, demand);
  if (acted) {
    std::lock_guard<std::mutex> lock(mutex_);
    last_action_nanos_ = asbase::MonoNanos();
    ++actions_;
  }
  return acted;
}

bool ShardRebalancer::MaybeScale(const std::vector<AsVisor::ShardLoad>& loads,
                                 const std::vector<double>& demand) {
  if (!options_.scale) {
    return false;
  }
  const size_t n = loads.size();
  double total_demand = 0;
  size_t total_budget = 0;
  size_t total_queued = 0;
  for (size_t i = 0; i < n; ++i) {
    total_demand += demand[i];
    total_budget += loads[i].max_inflight;
    total_queued += loads[i].queued;
  }
  if (total_budget == 0) {
    return false;
  }
  const double utilization = total_demand / static_cast<double>(total_budget);
  if (utilization > options_.scale_up_utilization &&
      n < router_->max_shards_limit()) {
    return router_->ScaleTo(n + 1).ok();
  }
  // Scale down only from genuine quiet (no queue anywhere) — a shard worth
  // of queued work disappearing into a smaller mesh is the opposite of help.
  if (utilization < options_.scale_down_utilization && total_queued == 0 &&
      n > router_->min_shards()) {
    return router_->ScaleTo(n - 1).ok();
  }
  return false;
}

bool ShardRebalancer::MaybeMigrate(
    const std::vector<AsVisor::ShardLoad>& loads,
    const std::vector<double>& demand) {
  if (!options_.migrate || loads.size() < 2) {
    return false;
  }
  const size_t hot = static_cast<size_t>(
      std::max_element(demand.begin(), demand.end()) - demand.begin());
  const size_t cold = static_cast<size_t>(
      std::min_element(demand.begin(), demand.end()) - demand.begin());
  if (hot == cold ||
      demand[hot] < options_.migrate_ratio * (demand[cold] + 1.0)) {
    return false;
  }
  // Moving a shard's ONLY workflow just relocates the hotspot (and pays the
  // handoff); budget re-slicing serves that case better.
  if (loads[hot].workflows.size() < 2) {
    return false;
  }
  // Pick the movable workflow that minimizes the resulting peak across the
  // pair, requiring strict improvement so an oscillation cannot start.
  const AsVisor::WorkflowLoad* best = nullptr;
  double best_peak = demand[hot];
  for (const AsVisor::WorkflowLoad& workflow : loads[hot].workflows) {
    if (workflow.pinned) {
      continue;  // the operator chose this placement; never override it
    }
    const double moved =
        static_cast<double>(workflow.inflight) +
        static_cast<double>(workflow.queued);
    if (moved <= 0) {
      continue;  // moving an idle workflow changes nothing now
    }
    const double peak =
        std::max(demand[hot] - moved, demand[cold] + moved);
    if (peak < best_peak) {
      best_peak = peak;
      best = &workflow;
    }
  }
  if (best == nullptr) {
    return false;
  }
  return router_->MigrateWorkflow(best->name, cold).ok();
}

bool ShardRebalancer::MaybeReslice(
    const std::vector<AsVisor::ShardLoad>& loads,
    const std::vector<double>& demand) {
  const size_t total = router_->max_inflight_total();
  // Weight demand + 1 so an idle shard keeps a trickle of budget (a fresh
  // arrival there must not be rejected outright) and a uniform load
  // resolves to the even split.
  std::vector<double> weights(demand.size(), 0);
  for (size_t i = 0; i < demand.size(); ++i) {
    weights[i] = demand[i] + 1.0;
  }
  const std::vector<size_t> target = DemandWeightedSlices(total, weights);
  std::vector<size_t> current(loads.size(), 0);
  bool outside_deadband = false;
  for (size_t i = 0; i < loads.size(); ++i) {
    current[i] = loads[i].max_inflight;
    const size_t delta = target[i] > current[i] ? target[i] - current[i]
                                                : current[i] - target[i];
    if (delta >= options_.reslice_deadband) {
      outside_deadband = true;
    }
  }
  if (!outside_deadband) {
    return false;
  }
  if (!router_->SetShardSlices(target)) {
    return false;  // shard count changed mid-pass; next tick re-samples
  }
  reslices_->Add(1);
  asobs::RebalanceEvent event;
  event.kind = asobs::RebalanceKind::kReslice;
  event.detail =
      "slices " + SlicesToString(current) + " -> " + SlicesToString(target);
  asobs::RebalanceLog::Global().Record(std::move(event));
  AS_LOG(kInfo) << "resliced in-flight budget: " << SlicesToString(current)
                << " -> " << SlicesToString(target);
  return true;
}

}  // namespace alloy
