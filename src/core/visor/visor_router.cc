#include "src/core/visor/visor_router.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace alloy {
namespace {

constexpr size_t kVnodesPerShard = 64;
constexpr size_t kMaxShards = 64;

// FNV-1a 64-bit with a murmur-style finalizer. Deterministic across builds
// and platforms, unlike std::hash — shard placement must be stable so a
// workflow's warm pool is found again after a process restart with the same
// shard count. The finalizer matters: raw FNV-1a barely diffuses trailing
// bytes into the high bits, so short keys differing only in their suffix
// ("shard-3#17", "wf-42") cluster on the ring and one vnode ends up owning
// nearly every key.
uint64_t Fnv1a(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

size_t ResolveShardCount(size_t requested) {
  size_t shards = requested;
  if (shards == 0) {
    const char* env = std::getenv("ALLOY_VISOR_SHARDS");
    if (env != nullptr && *env != '\0') {
      shards = static_cast<size_t>(std::max(0L, std::atol(env)));
    }
  }
  if (shards == 0) {
    shards = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(shards, kMaxShards);
}

// Shard i's core slice: cores {j : j mod N == i}. Empty (no affinity) when
// the machine has fewer cores than shards — a 2-core box running 8 shards
// should time-share, not fight over a bogus pin.
std::vector<int> ShardCpus(size_t shard, size_t shard_count) {
  const size_t cores = std::thread::hardware_concurrency();
  if (cores < shard_count) {
    return {};
  }
  std::vector<int> cpus;
  for (size_t j = shard; j < cores; j += shard_count) {
    cpus.push_back(static_cast<int>(j));
  }
  return cpus;
}

// Query-string value for `key` in an HTTP target ("/trace?workflow=x").
std::string QueryParam(const std::string& target, const std::string& key) {
  const size_t question = target.find('?');
  if (question == std::string::npos) {
    return "";
  }
  std::string query = target.substr(question + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

// total budget -> shard `i`'s slice: even division, remainder to the lowest
// shards, never below 1.
size_t ShardSlice(size_t total, size_t shard, size_t shard_count) {
  const size_t base = total / shard_count;
  const size_t extra = shard < total % shard_count ? 1 : 0;
  return std::max<size_t>(1, base + extra);
}

}  // namespace

AsVisorRouter::AsVisorRouter(RouterOptions options) {
  const size_t shard_count = ResolveShardCount(options.shards);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    AsVisor::ShardIdentity identity;
    identity.index = static_cast<int>(i);
    identity.cpus = ShardCpus(i, shard_count);
    shards_.push_back(std::make_unique<AsVisor>(std::move(identity)));
  }
  ring_.reserve(shard_count * kVnodesPerShard);
  for (size_t i = 0; i < shard_count; ++i) {
    for (size_t v = 0; v < kVnodesPerShard; ++v) {
      ring_.push_back({Fnv1a("shard-" + std::to_string(i) + "#" +
                             std::to_string(v)),
                       i});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
            });
}

AsVisorRouter::~AsVisorRouter() {
  StopWatchdog();
  // Join every shard's pool warmer in index order (each shard joins its own
  // pools in workflow-name order) so teardown is deterministic.
  for (const auto& shard : shards_) {
    shard->ShutdownPools();
  }
}

size_t AsVisorRouter::HashShard(const std::string& workflow_name) const {
  const uint64_t hash = Fnv1a(workflow_name);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingPoint& point, uint64_t value) { return point.hash < value; });
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around the ring
  }
  return it->shard;
}

size_t AsVisorRouter::ShardOf(const std::string& workflow_name) const {
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(workflow_name);
    if (it != routes_.end()) {
      return it->second;
    }
  }
  return HashShard(workflow_name);
}

void AsVisorRouter::RegisterWorkflow(const WorkflowSpec& spec) {
  RegisterWorkflow(spec, AsVisor::WorkflowOptions{});
}

void AsVisorRouter::RegisterWorkflow(const WorkflowSpec& spec,
                                     AsVisor::WorkflowOptions options) {
  const size_t target = options.pin_shard >= 0
                            ? static_cast<size_t>(options.pin_shard) %
                                  shards_.size()
                            : HashShard(spec.name);
  size_t previous = target;
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(spec.name);
    if (it != routes_.end()) {
      previous = it->second;
      it->second = target;
    } else {
      routes_.emplace(spec.name, target);
    }
  }
  if (previous != target) {
    // Placement changed (new pin, or pin dropped): migrate — the old
    // shard's entry (queued tickets, warm pool) goes away before the new
    // one exists, so the workflow is never registered twice.
    shards_[previous]->UnregisterWorkflow(spec.name);
  }
  shards_[target]->RegisterWorkflow(spec, std::move(options));
}

asbase::Status AsVisorRouter::RegisterWorkflowFromJson(
    const asbase::Json& config) {
  AS_ASSIGN_OR_RETURN(WorkflowSpec spec, WorkflowSpec::FromJson(config));
  int pin_shard = -1;
  const asbase::Json& opts = config["options"];
  if (opts.is_object() && opts["pin_shard"].is_number()) {
    pin_shard = static_cast<int>(opts["pin_shard"].as_int());
  }
  const size_t target =
      pin_shard >= 0 ? static_cast<size_t>(pin_shard) % shards_.size()
                     : HashShard(spec.name);
  size_t previous = target;
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(spec.name);
    if (it != routes_.end()) {
      previous = it->second;
      it->second = target;
    } else {
      routes_.emplace(spec.name, target);
    }
  }
  if (previous != target) {
    shards_[previous]->UnregisterWorkflow(spec.name);
  }
  return shards_[target]->RegisterWorkflowFromJson(config);
}

bool AsVisorRouter::UnregisterWorkflow(const std::string& workflow_name) {
  size_t owner = shards_.size();
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(workflow_name);
    if (it == routes_.end()) {
      return false;
    }
    owner = it->second;
    routes_.erase(it);
  }
  return shards_[owner]->UnregisterWorkflow(workflow_name);
}

asbase::Result<InvokeResult> AsVisorRouter::Invoke(
    const std::string& workflow_name, const asbase::Json& params) {
  return shards_[ShardOf(workflow_name)]->Invoke(workflow_name, params);
}

asbase::Result<InvokeResult> AsVisorRouter::Invoke(
    const std::string& workflow_name, const asbase::Json& params,
    const AsVisor::InvokeOptions& options) {
  return shards_[ShardOf(workflow_name)]->Invoke(workflow_name, params,
                                                 options);
}

// --------------------------------------------------------------- watchdog

asbase::Status AsVisorRouter::StartWatchdog(uint16_t port) {
  return StartWatchdog(port, AsVisor::ServingOptions{});
}

asbase::Status AsVisorRouter::StartWatchdog(uint16_t port,
                                            AsVisor::ServingOptions serving) {
  if (server_ != nullptr) {
    return asbase::FailedPrecondition("watchdog already running");
  }
  if (serving.worker_threads == 0 || serving.max_inflight == 0) {
    return asbase::InvalidArgument(
        "worker_threads and max_inflight must be >= 1");
  }
  serving_total_ = serving;
  for (size_t i = 0; i < shards_.size(); ++i) {
    AsVisor::ServingOptions slice = serving;
    slice.max_inflight = ShardSlice(serving.max_inflight, i, shards_.size());
    slice.worker_threads =
        ShardSlice(serving.worker_threads, i, shards_.size());
    asbase::Status started = shards_[i]->StartServing(slice);
    if (!started.ok()) {
      for (size_t j = 0; j < i; ++j) {
        shards_[j]->StopServing();
      }
      return started;
    }
  }
  server_ = std::make_unique<ashttp::HttpServer>(
      [this](const ashttp::HttpRequest& request) {
        ashttp::HttpResponse response;
        if (request.method == "GET" && request.target == "/health") {
          response.body = "ok";
          return response;
        }
        if (request.method == "GET" && request.target == "/healthz") {
          // Liveness is a process property, not a shard one.
          response.body = "ok";
          return response;
        }
        if (request.method == "GET" && request.target == "/readyz") {
          return ServeReadyz();
        }
        if (request.method == "GET" && request.target == "/metrics") {
          // One registry serves all shards; their series are kept apart by
          // the alloy_visor_shard label.
          response.headers["content-type"] = "text/plain; version=0.0.4";
          response.body = asobs::Registry::Global().RenderPrometheus();
          return response;
        }
        if (request.method == "GET" &&
            request.target.rfind("/trace", 0) == 0) {
          return ServeTrace(request.target);
        }
        if (request.method == "GET" &&
            request.target.rfind("/debug/flight", 0) == 0) {
          return ServeFlight(request.target);
        }
        if (request.method == "GET" &&
            request.target.rfind("/debug/latency", 0) == 0) {
          return ServeLatency(request.target);
        }
        if (request.method == "POST" &&
            request.target.rfind("/invoke/", 0) == 0) {
          return Dispatch(request);
        }
        response.status = 404;
        response.reason = "Not Found";
        response.body = "unknown endpoint";
        return response;
      });
  asbase::Status started = server_->Start(port);
  if (!started.ok()) {
    server_.reset();
    StopWatchdog();
  }
  return started;
}

ashttp::HttpResponse AsVisorRouter::Dispatch(
    const ashttp::HttpRequest& request) {
  const std::string name =
      request.target.substr(std::string("/invoke/").size());
  // Routing is the only shared step on the hot path, and it takes a read
  // lock at most — an unregistered name falls through to the hash shard,
  // which answers 404 itself.
  return shards_[ShardOf(name)]->HandleInvoke(request);
}

ashttp::HttpResponse AsVisorRouter::ServeTrace(
    const std::string& target) const {
  const std::string workflow = QueryParam(target, "workflow");
  if (workflow.empty()) {
    ashttp::HttpResponse response;
    response.status = 400;
    response.reason = "Bad Request";
    std::string names;
    for (const auto& shard : shards_) {
      for (const std::string& name : shard->WorkflowNames()) {
        names += names.empty() ? name : ", " + name;
      }
    }
    response.body = "usage: /trace?workflow=<name>; registered: " + names;
    return response;
  }
  return shards_[ShardOf(workflow)]->ServeTrace(target);
}

ashttp::HttpResponse AsVisorRouter::ServeReadyz() const {
  ashttp::HttpResponse response;
  asbase::Json doc;
  asbase::Json per_shard{asbase::JsonArray{}};
  bool any_draining = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const bool draining = shards_[i]->draining();
    any_draining = any_draining || draining;
    asbase::Json row;
    row.Set("shard", static_cast<int64_t>(i));
    row.Set("draining", draining);
    per_shard.Append(std::move(row));
  }
  doc.Set("ready", !any_draining);
  doc.Set("shards", std::move(per_shard));
  if (any_draining) {
    response.status = 503;
    response.reason = "Service Unavailable";
  }
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

std::vector<asobs::FlightRecord> AsVisorRouter::MergedFlight(
    int64_t since_nanos) const {
  std::vector<asobs::FlightRecord> merged;
  for (const auto& shard : shards_) {
    std::vector<asobs::FlightRecord> records =
        shard->flight().Snapshot("", since_nanos);
    merged.insert(merged.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const asobs::FlightRecord& a, const asobs::FlightRecord& b) {
              return a.end_nanos < b.end_nanos;
            });
  return merged;
}

ashttp::HttpResponse AsVisorRouter::ServeFlight(
    const std::string& target) const {
  const std::string workflow = QueryParam(target, "workflow");
  if (!workflow.empty()) {
    // The workflow lives on exactly one shard; its ring has every record.
    return shards_[ShardOf(workflow)]->ServeFlight(target);
  }
  const std::string since = QueryParam(target, "since");
  const int64_t since_nanos = since.empty() ? 0 : std::atoll(since.c_str());
  asbase::Json doc = asobs::FlightReportJson(MergedFlight(since_nanos));
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  for (const auto& shard : shards_) {
    recorded += shard->flight().recorded();
    dropped += shard->flight().dropped();
  }
  doc.Set("recorded", static_cast<int64_t>(recorded));
  doc.Set("dropped", static_cast<int64_t>(dropped));
  doc.Set("shards", static_cast<int64_t>(shards_.size()));
  ashttp::HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

ashttp::HttpResponse AsVisorRouter::ServeLatency(
    const std::string& target) const {
  const std::string workflow = QueryParam(target, "workflow");
  if (!workflow.empty()) {
    return shards_[ShardOf(workflow)]->ServeLatency(target);
  }
  asbase::Json doc = asobs::LatencyAttributionJson(MergedFlight(0));
  ashttp::HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

uint16_t AsVisorRouter::watchdog_port() const {
  return server_ == nullptr ? 0 : server_->port();
}

void AsVisorRouter::StopWatchdog() {
  // Phase 1: flip every shard to draining (index order, non-blocking) so
  // queued admissions across ALL shards start unwinding with 503 before any
  // join below can wait on them.
  for (const auto& shard : shards_) {
    shard->BeginDrain();
  }
  // Phase 2: stop the shared server — joins its connection threads, whose
  // queued waiters just unwound.
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
  // Phase 3: drain + destroy each shard's worker pool, index order.
  for (const auto& shard : shards_) {
    shard->StopServing();
  }
}

void AsVisorRouter::SetMaxInflightTotal(size_t max_inflight) {
  serving_total_.max_inflight = std::max<size_t>(1, max_inflight);
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->SetMaxInflight(
        ShardSlice(serving_total_.max_inflight, i, shards_.size()));
  }
}

asbase::Result<asbase::Histogram> AsVisorRouter::LatencyHistogram(
    const std::string& workflow_name) const {
  return shards_[ShardOf(workflow_name)]->LatencyHistogram(workflow_name);
}

asbase::Result<size_t> AsVisorRouter::WarmWfdCount(
    const std::string& workflow_name) const {
  return shards_[ShardOf(workflow_name)]->WarmWfdCount(workflow_name);
}

}  // namespace alloy
