#include "src/core/visor/visor_router.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/rebalance.h"

namespace alloy {
namespace {

constexpr size_t kVnodesPerShard = 64;
constexpr size_t kMaxShards = 64;

// A request follows at most this many internal migration redirects before
// the 307 goes back to the client. Two covers the normal case (one
// migration while queued, maybe one more racing the retry); anything past
// that means the rebalancer is thrashing and the client's retry is the
// better backstop.
constexpr int kMaxMigrationHops = 4;

// FNV-1a 64-bit with a murmur-style finalizer. Deterministic across builds
// and platforms, unlike std::hash — shard placement must be stable so a
// workflow's warm pool is found again after a process restart with the same
// shard count. The finalizer matters: raw FNV-1a barely diffuses trailing
// bytes into the high bits, so short keys differing only in their suffix
// ("shard-3#17", "wf-42") cluster on the ring and one vnode ends up owning
// nearly every key.
uint64_t Fnv1a(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

size_t ResolveShardCount(size_t requested) {
  size_t shards = requested;
  if (shards == 0) {
    const char* env = std::getenv("ALLOY_VISOR_SHARDS");
    if (env != nullptr && *env != '\0') {
      shards = static_cast<size_t>(std::max(0L, std::atol(env)));
    }
  }
  if (shards == 0) {
    shards = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(shards, kMaxShards);
}

// Shard i's core slice: cores {j : j mod N == i}. Empty (no affinity) when
// the machine has fewer cores than shards — a 2-core box running 8 shards
// should time-share, not fight over a bogus pin.
std::vector<int> ShardCpus(size_t shard, size_t shard_count) {
  const size_t cores = std::thread::hardware_concurrency();
  if (cores < shard_count) {
    return {};
  }
  std::vector<int> cpus;
  for (size_t j = shard; j < cores; j += shard_count) {
    cpus.push_back(static_cast<int>(j));
  }
  return cpus;
}

// Query-string value for `key` in an HTTP target ("/trace?workflow=x").
std::string QueryParam(const std::string& target, const std::string& key) {
  const size_t question = target.find('?');
  if (question == std::string::npos) {
    return "";
  }
  std::string query = target.substr(question + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

// total budget -> shard `i`'s slice: even division, remainder to the lowest
// shards, never below 1.
size_t ShardSlice(size_t total, size_t shard, size_t shard_count) {
  const size_t base = total / shard_count;
  const size_t extra = shard < total % shard_count ? 1 : 0;
  return std::max<size_t>(1, base + extra);
}

}  // namespace

AsVisorRouter::AsVisorRouter(RouterOptions options) {
  const size_t shard_count = ResolveShardCount(options.shards);
  min_shards_ = std::min(std::max<size_t>(1, options.min_shards), shard_count);
  max_shards_ = options.max_shards == 0
                    ? shard_count
                    : std::min(options.max_shards, kMaxShards);
  max_shards_ = std::max(max_shards_, shard_count);
  rebalancer_options_ = RebalancerOptions::FromEnv(options.rebalancer);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(MakeShard(i, shard_count));
  }
  RebuildRingLocked(shard_count);
  asobs::Registry& registry = asobs::Registry::Global();
  migrations_ = &registry.GetCounter("alloy_rebalance_migrations_total", {});
  scale_ups_ = &registry.GetCounter("alloy_rebalance_scale_ups_total", {});
  scale_downs_ = &registry.GetCounter("alloy_rebalance_scale_downs_total", {});
  queue_handoffs_ =
      &registry.GetCounter("alloy_rebalance_queue_handoffs_total", {});
  shards_gauge_ = &registry.GetGauge("alloy_rebalance_shards", {});
  shards_gauge_->Set(static_cast<int64_t>(shard_count));
}

AsVisorRouter::~AsVisorRouter() {
  StopWatchdog();
  // Join every shard's pool warmer in index order (each shard joins its own
  // pools in workflow-name order) so teardown is deterministic.
  for (const auto& shard : SnapshotShards()) {
    shard->ShutdownPools();
  }
}

std::shared_ptr<AsVisor> AsVisorRouter::MakeShard(size_t index,
                                                  size_t shard_count) const {
  AsVisor::ShardIdentity identity;
  identity.index = static_cast<int>(index);
  identity.cpus = ShardCpus(index, shard_count);
  return std::make_shared<AsVisor>(std::move(identity));
}

void AsVisorRouter::RebuildRingLocked(size_t shard_count) {
  // Vnode hashes depend only on (shard, vnode), so the ring for N shards is
  // a strict subset of the ring for N+1: changing the count moves only the
  // keys the added/removed vnodes own — ~1/(N+1) of them.
  ring_.clear();
  ring_.reserve(shard_count * kVnodesPerShard);
  for (size_t i = 0; i < shard_count; ++i) {
    for (size_t v = 0; v < kVnodesPerShard; ++v) {
      ring_.push_back({Fnv1a("shard-" + std::to_string(i) + "#" +
                             std::to_string(v)),
                       i});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
            });
}

size_t AsVisorRouter::shard_count() const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return shards_.size();
}

std::shared_ptr<AsVisor> AsVisorRouter::ShardPtr(size_t index) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return shards_[std::min(index, shards_.size() - 1)];
}

std::vector<std::shared_ptr<AsVisor>> AsVisorRouter::SnapshotShards() const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return shards_;
}

size_t AsVisorRouter::HashShardLocked(const std::string& workflow_name) const {
  const uint64_t hash = Fnv1a(workflow_name);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingPoint& point, uint64_t value) { return point.hash < value; });
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around the ring
  }
  return it->shard;
}

size_t AsVisorRouter::HashShard(const std::string& workflow_name) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return HashShardLocked(workflow_name);
}

size_t AsVisorRouter::ShardOf(const std::string& workflow_name) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  auto it = routes_.find(workflow_name);
  if (it != routes_.end()) {
    return std::min(it->second, shards_.size() - 1);
  }
  return HashShardLocked(workflow_name);
}

std::shared_ptr<AsVisor> AsVisorRouter::ResolveShard(
    const std::string& workflow_name) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  size_t index;
  auto it = routes_.find(workflow_name);
  if (it != routes_.end()) {
    index = std::min(it->second, shards_.size() - 1);
  } else {
    index = HashShardLocked(workflow_name);
  }
  return shards_[index];
}

void AsVisorRouter::RegisterWorkflow(const WorkflowSpec& spec) {
  RegisterWorkflow(spec, AsVisor::WorkflowOptions{});
}

void AsVisorRouter::RegisterWorkflow(const WorkflowSpec& spec,
                                     AsVisor::WorkflowOptions options) {
  std::shared_ptr<AsVisor> target_shard;
  std::shared_ptr<AsVisor> previous_shard;
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    const size_t target =
        options.pin_shard >= 0
            ? static_cast<size_t>(options.pin_shard) % shards_.size()
            : HashShardLocked(spec.name);
    size_t previous = target;
    auto it = routes_.find(spec.name);
    if (it != routes_.end()) {
      previous = it->second;
      it->second = target;
    } else {
      routes_.emplace(spec.name, target);
    }
    if (previous != target && previous < shards_.size()) {
      previous_shard = shards_[previous];
    }
    target_shard = shards_[target];
  }
  if (previous_shard != nullptr) {
    // Placement changed (new pin, or pin dropped): migrate — the old
    // shard's entry (queued tickets, warm pool) goes away before the new
    // one exists, so the workflow is never registered twice.
    previous_shard->UnregisterWorkflow(spec.name);
  }
  target_shard->RegisterWorkflow(spec, std::move(options));
}

asbase::Status AsVisorRouter::RegisterWorkflowFromJson(
    const asbase::Json& config) {
  AS_ASSIGN_OR_RETURN(WorkflowSpec spec, WorkflowSpec::FromJson(config));
  int pin_shard = -1;
  const asbase::Json& opts = config["options"];
  if (opts.is_object() && opts["pin_shard"].is_number()) {
    pin_shard = static_cast<int>(opts["pin_shard"].as_int());
  }
  std::shared_ptr<AsVisor> target_shard;
  std::shared_ptr<AsVisor> previous_shard;
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    const size_t target =
        pin_shard >= 0 ? static_cast<size_t>(pin_shard) % shards_.size()
                       : HashShardLocked(spec.name);
    size_t previous = target;
    auto it = routes_.find(spec.name);
    if (it != routes_.end()) {
      previous = it->second;
      it->second = target;
    } else {
      routes_.emplace(spec.name, target);
    }
    if (previous != target && previous < shards_.size()) {
      previous_shard = shards_[previous];
    }
    target_shard = shards_[target];
  }
  if (previous_shard != nullptr) {
    previous_shard->UnregisterWorkflow(spec.name);
  }
  return target_shard->RegisterWorkflowFromJson(config);
}

bool AsVisorRouter::UnregisterWorkflow(const std::string& workflow_name) {
  std::shared_ptr<AsVisor> owner;
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(workflow_name);
    if (it == routes_.end()) {
      return false;
    }
    owner = shards_[std::min(it->second, shards_.size() - 1)];
    routes_.erase(it);
  }
  return owner->UnregisterWorkflow(workflow_name);
}

asbase::Result<InvokeResult> AsVisorRouter::Invoke(
    const std::string& workflow_name, const asbase::Json& params) {
  return Invoke(workflow_name, params, AsVisor::InvokeOptions{});
}

asbase::Result<InvokeResult> AsVisorRouter::Invoke(
    const std::string& workflow_name, const asbase::Json& params,
    const AsVisor::InvokeOptions& options) {
  std::shared_ptr<AsVisor> shard = ResolveShard(workflow_name);
  auto result = shard->Invoke(workflow_name, params, options);
  if (!result.ok() &&
      result.status().code() == asbase::ErrorCode::kNotFound) {
    // A migration may have raced the resolve: the route flipped after we
    // copied the shard pointer. One re-resolve covers it; a second NotFound
    // is a genuinely unknown workflow.
    std::shared_ptr<AsVisor> again = ResolveShard(workflow_name);
    if (again != shard) {
      return again->Invoke(workflow_name, params, options);
    }
  }
  return result;
}

// --------------------------------------------------------------- watchdog

asbase::Status AsVisorRouter::StartWatchdog(uint16_t port) {
  return StartWatchdog(port, AsVisor::ServingOptions{});
}

asbase::Status AsVisorRouter::StartWatchdog(uint16_t port,
                                            AsVisor::ServingOptions serving) {
  if (server_ != nullptr) {
    return asbase::FailedPrecondition("watchdog already running");
  }
  if (serving.worker_threads == 0 || serving.max_inflight == 0) {
    return asbase::InvalidArgument(
        "worker_threads and max_inflight must be >= 1");
  }
  std::vector<std::shared_ptr<AsVisor>> shards = SnapshotShards();
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    serving_total_ = serving;
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    AsVisor::ServingOptions slice = serving;
    slice.max_inflight = ShardSlice(serving.max_inflight, i, shards.size());
    slice.worker_threads =
        ShardSlice(serving.worker_threads, i, shards.size());
    asbase::Status started = shards[i]->StartServing(slice);
    if (!started.ok()) {
      for (size_t j = 0; j < i; ++j) {
        shards[j]->StopServing();
      }
      return started;
    }
  }
  server_ = std::make_unique<ashttp::HttpServer>(
      [this](const ashttp::HttpRequest& request) {
        ashttp::HttpResponse response;
        if (request.method == "GET" && request.target == "/health") {
          response.body = "ok";
          return response;
        }
        if (request.method == "GET" && request.target == "/healthz") {
          // Liveness is a process property, not a shard one.
          response.body = "ok";
          return response;
        }
        if (request.method == "GET" && request.target == "/readyz") {
          return ServeReadyz();
        }
        if (request.method == "GET" && request.target == "/metrics") {
          // One registry serves all shards; their series are kept apart by
          // the alloy_visor_shard label.
          response.headers["content-type"] = "text/plain; version=0.0.4";
          response.body = asobs::Registry::Global().RenderPrometheus();
          return response;
        }
        if (request.method == "GET" &&
            request.target.rfind("/trace", 0) == 0) {
          return ServeTrace(request.target);
        }
        if (request.method == "GET" &&
            request.target.rfind("/debug/flight", 0) == 0) {
          return ServeFlight(request.target);
        }
        if (request.method == "GET" &&
            request.target.rfind("/debug/latency", 0) == 0) {
          return ServeLatency(request.target);
        }
        if (request.method == "POST" &&
            request.target.rfind("/invoke/", 0) == 0) {
          return Dispatch(request);
        }
        response.status = 404;
        response.reason = "Not Found";
        response.body = "unknown endpoint";
        return response;
      });
  asbase::Status started = server_->Start(port);
  if (!started.ok()) {
    server_.reset();
    StopWatchdog();
    return started;
  }
  serving_active_.store(true, std::memory_order_release);
  if (rebalancer_options_.enabled) {
    rebalancer_ = std::make_unique<ShardRebalancer>(this, rebalancer_options_);
    rebalancer_->Start();
  }
  return started;
}

ashttp::HttpResponse AsVisorRouter::Dispatch(
    const ashttp::HttpRequest& request) {
  const std::string name =
      request.target.substr(std::string("/invoke/").size());
  // Routing is the only shared step on the hot path, and it takes a read
  // lock at most — an unregistered name falls through to the hash shard,
  // which answers 404 itself.
  int64_t carried_wait_nanos = 0;
  ashttp::HttpResponse response;
  for (int hop = 0; hop < kMaxMigrationHops; ++hop) {
    response = ResolveShard(name)->HandleInvoke(request, carried_wait_nanos);
    if (response.status != 307 ||
        response.headers.find("x-alloy-migrated") == response.headers.end()) {
      return response;
    }
    // Queue handoff: the workflow migrated while this request was queued
    // (or racing the route flip). Re-dispatch to the new owner, carrying
    // the queue wait already paid so the invocation's trace and flight
    // record stay honest about the total.
    queue_handoffs_->Add(1);
    auto wait = response.headers.find("x-alloy-queue-wait-ns");
    if (wait != response.headers.end()) {
      carried_wait_nanos = std::atoll(wait->second.c_str());
    }
  }
  // Hop budget exhausted (the mesh is thrashing): surface the redirect to
  // the client, whose retry re-enters with a fresh budget.
  return response;
}

ashttp::HttpResponse AsVisorRouter::ServeTrace(
    const std::string& target) const {
  const std::string workflow = QueryParam(target, "workflow");
  if (workflow.empty()) {
    ashttp::HttpResponse response;
    response.status = 400;
    response.reason = "Bad Request";
    std::string names;
    for (const auto& shard : SnapshotShards()) {
      for (const std::string& name : shard->WorkflowNames()) {
        names += names.empty() ? name : ", " + name;
      }
    }
    response.body = "usage: /trace?workflow=<name>; registered: " + names;
    return response;
  }
  return ResolveShard(workflow)->ServeTrace(target);
}

ashttp::HttpResponse AsVisorRouter::ServeReadyz() const {
  ashttp::HttpResponse response;
  asbase::Json doc;
  asbase::Json per_shard{asbase::JsonArray{}};
  bool any_draining = false;
  const std::vector<std::shared_ptr<AsVisor>> shards = SnapshotShards();
  for (size_t i = 0; i < shards.size(); ++i) {
    const bool draining = shards[i]->draining();
    any_draining = any_draining || draining;
    asbase::Json row;
    row.Set("shard", static_cast<int64_t>(i));
    row.Set("draining", draining);
    per_shard.Append(std::move(row));
  }
  doc.Set("ready", !any_draining);
  doc.Set("shards", std::move(per_shard));
  if (any_draining) {
    response.status = 503;
    response.reason = "Service Unavailable";
  }
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

std::vector<asobs::FlightRecord> AsVisorRouter::MergedFlight(
    int64_t since_nanos) const {
  std::vector<asobs::FlightRecord> merged;
  for (const auto& shard : SnapshotShards()) {
    std::vector<asobs::FlightRecord> records =
        shard->flight().Snapshot("", since_nanos);
    merged.insert(merged.end(), std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const asobs::FlightRecord& a, const asobs::FlightRecord& b) {
              return a.end_nanos < b.end_nanos;
            });
  return merged;
}

ashttp::HttpResponse AsVisorRouter::ServeFlight(
    const std::string& target) const {
  const std::string workflow = QueryParam(target, "workflow");
  if (!workflow.empty()) {
    // The workflow lives on exactly one shard; its ring has every record.
    return ResolveShard(workflow)->ServeFlight(target);
  }
  const std::string since = QueryParam(target, "since");
  const int64_t since_nanos = since.empty() ? 0 : std::atoll(since.c_str());
  asbase::Json doc = asobs::FlightReportJson(MergedFlight(since_nanos));
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  const std::vector<std::shared_ptr<AsVisor>> shards = SnapshotShards();
  for (const auto& shard : shards) {
    recorded += shard->flight().recorded();
    dropped += shard->flight().dropped();
  }
  doc.Set("recorded", static_cast<int64_t>(recorded));
  doc.Set("dropped", static_cast<int64_t>(dropped));
  doc.Set("shards", static_cast<int64_t>(shards.size()));
  // Control-plane context: the reslice/migration/scale that explains a
  // latency step rides along with the records it affected.
  doc.Set("rebalance_events",
          asobs::RebalanceLog::Global().ToJson(since_nanos));
  ashttp::HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

ashttp::HttpResponse AsVisorRouter::ServeLatency(
    const std::string& target) const {
  const std::string workflow = QueryParam(target, "workflow");
  if (!workflow.empty()) {
    return ResolveShard(workflow)->ServeLatency(target);
  }
  asbase::Json doc = asobs::LatencyAttributionJson(MergedFlight(0));
  ashttp::HttpResponse response;
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

uint16_t AsVisorRouter::watchdog_port() const {
  return server_ == nullptr ? 0 : server_->port();
}

void AsVisorRouter::StopWatchdog() {
  // Phase 0: stop the control loop first — a rebalance action mid-teardown
  // would race the drains below.
  if (rebalancer_ != nullptr) {
    rebalancer_->Stop();
    rebalancer_.reset();
  }
  serving_active_.store(false, std::memory_order_release);
  const std::vector<std::shared_ptr<AsVisor>> shards = SnapshotShards();
  // Phase 1: flip every shard to draining (index order, non-blocking) so
  // queued admissions across ALL shards start unwinding with 503 before any
  // join below can wait on them.
  for (const auto& shard : shards) {
    shard->BeginDrain();
  }
  // Phase 2: stop the shared server — joins its connection threads, whose
  // queued waiters just unwound.
  if (server_ != nullptr) {
    server_->Stop();
    server_.reset();
  }
  // Phase 3: drain + destroy each shard's worker pool, index order.
  for (const auto& shard : shards) {
    shard->StopServing();
  }
}

void AsVisorRouter::SetMaxInflightTotal(size_t max_inflight) {
  std::vector<std::shared_ptr<AsVisor>> shards;
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    serving_total_.max_inflight = std::max<size_t>(1, max_inflight);
    max_inflight = serving_total_.max_inflight;
    shards = shards_;
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    shards[i]->SetMaxInflight(ShardSlice(max_inflight, i, shards.size()));
  }
}

size_t AsVisorRouter::max_inflight_total() const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return serving_total_.max_inflight;
}

// --------------------------------------------- elastic mesh (DESIGN.md §12)

std::vector<AsVisor::ShardLoad> AsVisorRouter::ShardLoads() const {
  const std::vector<std::shared_ptr<AsVisor>> shards = SnapshotShards();
  std::vector<AsVisor::ShardLoad> loads;
  loads.reserve(shards.size());
  for (const auto& shard : shards) {
    loads.push_back(shard->LoadSnapshot());
  }
  return loads;
}

bool AsVisorRouter::SetShardSlices(const std::vector<size_t>& slices) {
  const std::vector<std::shared_ptr<AsVisor>> shards = SnapshotShards();
  if (slices.size() != shards.size()) {
    return false;  // a scale raced the caller's snapshot; skip this pass
  }
  for (size_t i = 0; i < shards.size(); ++i) {
    shards[i]->SetMaxInflight(slices[i]);
  }
  return true;
}

asbase::Status AsVisorRouter::MigrateWorkflow(const std::string& workflow_name,
                                              size_t to_shard) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  return MigrateWorkflowInternal(workflow_name, to_shard);
}

asbase::Status AsVisorRouter::MigrateWorkflowInternal(
    const std::string& workflow_name, size_t to_shard) {
  std::shared_ptr<AsVisor> from;
  std::shared_ptr<AsVisor> to;
  size_t from_index = 0;
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    if (to_shard >= shards_.size()) {
      return asbase::InvalidArgument("no shard " + std::to_string(to_shard));
    }
    auto it = routes_.find(workflow_name);
    if (it == routes_.end()) {
      return asbase::NotFound("no workflow named '" + workflow_name + "'");
    }
    from_index = std::min(it->second, shards_.size() - 1);
    if (from_index == to_shard) {
      return asbase::OkStatus();  // already there
    }
    from = shards_[from_index];
    to = shards_[to_shard];
  }
  AS_ASSIGN_OR_RETURN(AsVisor::WorkflowRegistration registration,
                      from->GetRegistration(workflow_name));
  // The old shard stamped its core slice into the WFD options at
  // registration; clear it so the new shard applies its own. An explicit
  // caller-chosen affinity (different from the shard slice) survives.
  if (registration.options.wfd.cpu_affinity == from->shard_cpus()) {
    registration.options.wfd.cpu_affinity.clear();
  }
  // A pin follows the migration — otherwise the next re-register would
  // bounce the workflow straight back.
  if (registration.options.pin_shard >= 0) {
    registration.options.pin_shard = static_cast<int>(to_shard);
  }
  // Order is the whole trick (no stranded requests, no 404 window):
  //  1. register on the NEW shard — the workflow is now servable there;
  //  2. flip the route — fresh arrivals go to the new owner;
  //  3. MigrateOut on the OLD shard — queued waiters wake against the
  //     tombstone, unwind as migrated, and the router re-dispatches them to
  //     the new owner (Dispatch's 307 loop), queue wait carried.
  to->RegisterWorkflow(registration.spec, registration.options);
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(workflow_name);
    if (it != routes_.end() && it->second == from_index) {
      it->second = to_shard;
    }
  }
  size_t warm_moved = 0;
  std::shared_ptr<WfdPool> old_pool = from->MigrateOut(workflow_name);
  if (old_pool != nullptr) {
    // 4. hand the warm pool over: the WFDs survive the move, so the first
    // invocations on the new shard are warm starts, not a cold-start storm.
    std::vector<std::unique_ptr<Wfd>> wfds = old_pool->TakeWarmForHandoff();
    warm_moved = wfds.size();
    to->AdoptWarmWfds(workflow_name, std::move(wfds));
    old_pool->Shutdown();
  }
  migrations_->Add(1);
  asobs::RebalanceEvent event;
  event.kind = asobs::RebalanceKind::kMigrate;
  event.from_shard = static_cast<int32_t>(from_index);
  event.to_shard = static_cast<int32_t>(to_shard);
  event.workflow = workflow_name;
  event.detail = "warm_wfds=" + std::to_string(warm_moved);
  asobs::RebalanceLog::Global().Record(std::move(event));
  AS_LOG(kInfo) << "migrated '" << workflow_name << "' shard " << from_index
                << " -> " << to_shard << " (" << warm_moved << " warm WFDs)";
  return asbase::OkStatus();
}

asbase::Status AsVisorRouter::ScaleTo(size_t target) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  target = std::min(std::max(target, min_shards_), max_shards_);
  size_t old_count;
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    old_count = shards_.size();
  }
  if (target == old_count) {
    return asbase::OkStatus();
  }

  // name -> destination shard for every workflow whose placement moves.
  std::vector<std::pair<std::string, size_t>> moves;

  if (target > old_count) {
    // Scale UP. Build + start the new shards before they become routable.
    // New shards take core slices modulo the NEW count; existing shards
    // keep their slices (re-pinning live stage workers isn't worth it) —
    // overlap resolves as WFDs age out.
    std::vector<std::shared_ptr<AsVisor>> fresh;
    const size_t total_workers = [&] {
      std::shared_lock<std::shared_mutex> lock(routes_mutex_);
      return serving_total_.worker_threads;
    }();
    for (size_t i = old_count; i < target; ++i) {
      std::shared_ptr<AsVisor> shard = MakeShard(i, target);
      if (serving_active_.load(std::memory_order_acquire)) {
        AsVisor::ServingOptions slice;
        {
          std::shared_lock<std::shared_mutex> lock(routes_mutex_);
          slice = serving_total_;
        }
        slice.worker_threads = ShardSlice(total_workers, i, target);
        slice.max_inflight = ShardSlice(slice.max_inflight, i, target);
        AS_RETURN_IF_ERROR(shard->StartServing(slice));
      }
      fresh.push_back(std::move(shard));
    }
    {
      std::unique_lock<std::shared_mutex> lock(routes_mutex_);
      for (auto& shard : fresh) {
        shards_.push_back(std::move(shard));
      }
      RebuildRingLocked(target);
      // The new vnodes claim ~1/(N+1) of the keyspace; migrate exactly the
      // registered workflows whose hash home moved (pins stay put).
      for (const auto& [name, owner] : routes_) {
        const size_t home = HashShardLocked(name);
        if (home == owner) {
          continue;
        }
        auto registration = shards_[owner]->GetRegistration(name);
        if (registration.ok() && registration->options.pin_shard < 0) {
          moves.emplace_back(name, home);
        }
      }
    }
  } else {
    // Scale DOWN. Shrink the ring first so hash lookups for unrouted names
    // already land on survivors, then evacuate the doomed shards while they
    // still serve (queued waiters hand off via migration tombstones).
    {
      std::unique_lock<std::shared_mutex> lock(routes_mutex_);
      RebuildRingLocked(target);
      for (const auto& [name, owner] : routes_) {
        if (owner < target) {
          continue;  // survivor-owned keys never move (subset ring)
        }
        auto registration = shards_[owner]->GetRegistration(name);
        size_t home;
        if (registration.ok() && registration->options.pin_shard >= 0) {
          home = static_cast<size_t>(registration->options.pin_shard) % target;
        } else {
          home = HashShardLocked(name);
        }
        moves.emplace_back(name, home);
      }
    }
  }

  for (const auto& [name, destination] : moves) {
    asbase::Status migrated = MigrateWorkflowInternal(name, destination);
    if (!migrated.ok()) {
      AS_LOG(kWarn) << "scale migration of '" << name << "' failed ("
                    << migrated.ToString() << ")";
    }
  }

  if (target < old_count) {
    // Evacuated: detach the doomed shards, then drain them. In-flight
    // requests still hold shard shared_ptrs from Dispatch and finish
    // normally inside StopServing's join.
    std::vector<std::shared_ptr<AsVisor>> doomed;
    {
      std::unique_lock<std::shared_mutex> lock(routes_mutex_);
      for (size_t i = target; i < shards_.size(); ++i) {
        doomed.push_back(shards_[i]);
      }
      shards_.resize(target);
    }
    for (const auto& shard : doomed) {
      shard->BeginDrain();
    }
    for (const auto& shard : doomed) {
      shard->StopServing();
      shard->ShutdownPools();
    }
  }

  // Back to even slices across the new mesh; the rebalancer re-skews them
  // next tick if demand still warrants it.
  SetMaxInflightTotal(max_inflight_total());
  shards_gauge_->Set(static_cast<int64_t>(target));
  asobs::RebalanceEvent event;
  event.kind = target > old_count ? asobs::RebalanceKind::kScaleUp
                                  : asobs::RebalanceKind::kScaleDown;
  event.detail = "shards " + std::to_string(old_count) + " -> " +
                 std::to_string(target) + ", " + std::to_string(moves.size()) +
                 " workflows moved";
  asobs::RebalanceLog::Global().Record(std::move(event));
  (target > old_count ? scale_ups_ : scale_downs_)->Add(1);
  AS_LOG(kInfo) << "scaled shard mesh " << old_count << " -> " << target
                << " (" << moves.size() << " workflows moved)";
  return asbase::OkStatus();
}

asbase::Result<asbase::Histogram> AsVisorRouter::LatencyHistogram(
    const std::string& workflow_name) const {
  return ResolveShard(workflow_name)->LatencyHistogram(workflow_name);
}

asbase::Result<size_t> AsVisorRouter::WarmWfdCount(
    const std::string& workflow_name) const {
  return ResolveShard(workflow_name)->WarmWfdCount(workflow_name);
}

}  // namespace alloy
