// Warm-WFD pool: caches instantiated WFDs between invocations of one
// workflow (serving layer, DESIGN.md §8).
//
// Cold starts are cheap in AlloyStack but not free — WFD instantiation plus
// the on-demand module loads a workflow triggers (Fig 10). Under sustained
// traffic the same modules load again and again; the pool amortizes that by
// keeping up to `capacity` fully-booted WFDs parked per workflow. Lifecycle:
//
//   lease (warm hit)  -> run -> reset ok  -> park warm      (reuse)
//   lease (miss)      -> Wfd::Create by the caller          (cold start)
//   run failed        -> destroy, never re-pool             (poisoned WFD)
//   reset failed      -> destroy                            (unreclaimable)
//   park while full   -> destroy                            (eviction)
//
// On top of the reactive store the pool runs a closed-loop *warmer*: a
// background thread that (a) fills the pool to a `min_warm` floor as soon as
// the workflow is registered, (b) refills on drain, sized by an EWMA of the
// workflow's arrival rate so a traffic spike pays at most the cold starts
// already in flight when it lands, and (c) evicts every parked WFD once the
// workflow has been idle past `idle_ttl_ms`, so a quiet workflow's pool —
// and the heap + disk its WFDs pin — shrinks to zero. The warmer needs a
// `factory` callback (provided by the visor) to instantiate WFDs itself;
// caller-side cold starts (and the wfd_create trace span) stay with the
// visor so a cold start looks identical with or without pooling.
//
// Metrics, all labelled {workflow=...}: alloy_visor_pool_{hits,misses,
// evictions}_total, alloy_visor_prewarms_total (WFDs booted by the warmer),
// and alloy_visor_pool_resident_bytes (heap pinned by parked WFDs).

#ifndef SRC_CORE_VISOR_WFD_POOL_H_
#define SRC_CORE_VISOR_WFD_POOL_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/wfd.h"
#include "src/obs/metrics.h"

namespace alloy {

struct WfdPoolOptions {
  // Max parked WFDs. 0 disables pooling (every lease misses, every park
  // evicts) and the warmer never starts.
  size_t capacity = 2;
  // Floor the warmer fills to proactively (clamped to capacity). 0 keeps the
  // pool purely reactive.
  size_t min_warm = 0;
  // Evict all parked WFDs after this long without a lease or a park. 0 =
  // parked WFDs never expire. Idleness overrides min_warm — the floor is
  // re-filled when traffic returns.
  int64_t idle_ttl_ms = 0;
  // Instantiates one fully-booted WFD for this workflow (blocking; called
  // off the pool lock). Required for the warmer; without it min_warm and the
  // EWMA refill are inert and only the reactive store + idle TTL work.
  std::function<asbase::Result<std::unique_ptr<Wfd>>()> factory;
  // Appended to {workflow=...} on every pool metric — the sharded visor
  // passes {alloy_visor_shard=i} so two shards (or an old and a new pool
  // during re-registration) never write the same series.
  asobs::Labels extra_labels;
  // Shard index for the warmer thread's log context (`shard=N wf=name`
  // prefixes); < 0 = unsharded, no shard field.
  int log_shard = -1;
};

class WfdPool {
 public:
  // Reactive-only pool (no warmer); `workflow` labels the metrics.
  WfdPool(const std::string& workflow, size_t capacity);
  WfdPool(const std::string& workflow, WfdPoolOptions options);
  ~WfdPool();

  WfdPool(const WfdPool&) = delete;
  WfdPool& operator=(const WfdPool&) = delete;

  // Pops a warm WFD (counted as a hit) or returns nullptr (a miss — the
  // caller cold-starts via Wfd::Create and pays the instantiation). Every
  // call counts as an arrival for the warmer's rate EWMA.
  std::unique_ptr<Wfd> TryAcquireWarm();

  // Parks a successfully-reset WFD for reuse, ending the lease started by
  // the matching TryAcquireWarm. The caller must have called Wfd::Reset()
  // (ok) and Wfd::SetTrace(nullptr, 0) first. If the pool is at capacity
  // the WFD is destroyed and counted as an eviction.
  void Park(std::unique_ptr<Wfd> wfd);

  // Ends a lease whose WFD will NOT come back (failed run, failed reset,
  // pooling disabled). Every TryAcquireWarm must be balanced by exactly one
  // Park or AbandonLease, or the warmer under-provisions forever.
  void AbandonLease();

  // Lease phase stamp: wall time one lease took to produce a runnable WFD —
  // a warm pop, or the caller-side cold start on a miss. Feeds the
  // alloy_visor_pool_lease_nanos summary (and the flight recorder's lease
  // phase, which the visor stamps itself).
  void RecordLease(int64_t lease_nanos) { lease_hist_.Record(lease_nanos); }

  // Live-migration handoff (DESIGN.md §12): extracts every parked WFD,
  // un-charging the resident gauge, WITHOUT counting evictions — the WFDs
  // survive, they just change pools. The caller (router migration) hands
  // them to the new shard's pool via AdoptWarm and then Shutdowns this one.
  std::vector<std::unique_ptr<Wfd>> TakeWarmForHandoff();

  // Parks a WFD that was never leased from this pool — the receiving side
  // of a migration handoff. No lease accounting moves (there was no
  // TryAcquireWarm); a full pool destroys the WFD and counts an eviction,
  // exactly as Park would.
  void AdoptWarm(std::unique_ptr<Wfd> wfd);

  // Destroys every parked WFD (workflow re-registration, shutdown).
  // Counted as evictions.
  void Clear();

  // Stops the warmer thread and clears the pool. Called by the destructor;
  // the visor also calls it when a re-registration replaces this pool, so an
  // orphaned pool does not keep pre-warming WFDs nobody will lease.
  void Shutdown();

  size_t warm_count() const;
  size_t capacity() const { return options_.capacity; }
  size_t min_warm() const { return options_.min_warm; }

  // Bytes of WFD heap currently pinned by parked WFDs (mirrors the
  // alloy_visor_pool_resident_bytes gauge).
  size_t resident_bytes() const;

  // Warm WFDs the warmer currently aims to keep parked (tests, ops).
  size_t target_warm() const;

 private:
  // How far ahead the warmer provisions: enough warm WFDs to absorb the
  // arrivals the EWMA predicts for the next horizon.
  static constexpr int64_t kWarmHorizonNanos = 100'000'000;  // 100 ms
  static constexpr double kArrivalAlpha = 0.2;

  // A parked WFD plus the byte count it was charged to the resident gauge
  // with. The gauge moves by deltas (Add), never absolute Set: during
  // re-registration an old and a new pool briefly share the series, and a
  // Set from either side would erase the other's contribution (observed as
  // the gauge stuck at 0 after a re-register under load). Recording the
  // charge makes the un-charge exact even if ResidentBytes() drifts while
  // the WFD is parked.
  struct Parked {
    std::unique_ptr<Wfd> wfd;
    size_t bytes = 0;
  };

  void WarmerLoop();
  size_t TargetWarmLocked(int64_t now) const;
  bool IdleLocked(int64_t now) const;
  void AddWarmLocked(std::unique_ptr<Wfd> wfd);
  std::unique_ptr<Wfd> PopWarmLocked();
  // Drops every parked WFD from the store and un-charges the gauge; returns
  // the doomed WFDs for off-lock destruction.
  std::vector<Parked> TakeAllLocked();

  const WfdPoolOptions options_;
  const std::string workflow_;  // for the warmer thread's log context
  asobs::Counter& hits_;
  asobs::Counter& misses_;
  asobs::Counter& evictions_;
  asobs::Counter& prewarms_;
  asobs::Gauge& resident_gauge_;
  asobs::LatencyHistogram& lease_hist_;

  mutable std::mutex mutex_;
  std::condition_variable warmer_cv_;
  std::vector<Parked> warm_;
  size_t resident_bytes_ = 0;   // sum of parked WFDs' ResidentBytes()
  size_t prewarming_ = 0;       // warmer creations in flight (off-lock)
  // Leases in flight (TryAcquireWarm without a matching Park/AbandonLease).
  // They count toward the warm target: each will be parked back shortly, so
  // booting a replacement would only evict the experienced WFD on return.
  size_t outstanding_ = 0;
  bool stopping_ = false;

  // Arrival-rate EWMA (leases = arrivals) + idle tracking.
  double ewma_interarrival_nanos_ = 0;
  int64_t last_arrival_nanos_ = 0;
  int64_t last_activity_nanos_ = 0;

  std::thread warmer_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_WFD_POOL_H_
