// Warm-WFD pool: caches instantiated WFDs between invocations of one
// workflow (serving layer, DESIGN.md §8).
//
// Cold starts are cheap in AlloyStack but not free — WFD instantiation plus
// the on-demand module loads a workflow triggers (Fig 10). Under sustained
// traffic the same modules load again and again; the pool amortizes that by
// keeping up to `capacity` fully-booted WFDs parked per workflow. Lifecycle:
//
//   lease (warm hit)  -> run -> reset ok  -> park warm      (reuse)
//   lease (miss)      -> Wfd::Create by the caller          (cold start)
//   run failed        -> destroy, never re-pool             (poisoned WFD)
//   reset failed      -> destroy                            (unreclaimable)
//   park while full   -> destroy                            (eviction)
//
// The pool only *stores* warm WFDs; creation (and the wfd_create trace
// span) stays with the visor so a cold start looks identical with or
// without pooling. Hit/miss/eviction counts feed the per-workflow
// alloy_visor_pool_*_total metrics.

#ifndef SRC_CORE_VISOR_WFD_POOL_H_
#define SRC_CORE_VISOR_WFD_POOL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/wfd.h"
#include "src/obs/metrics.h"

namespace alloy {

class WfdPool {
 public:
  // `workflow` labels the metrics; `capacity` is the max parked WFDs.
  // capacity == 0 disables pooling (every lease misses, every park evicts).
  WfdPool(const std::string& workflow, size_t capacity);
  ~WfdPool();

  WfdPool(const WfdPool&) = delete;
  WfdPool& operator=(const WfdPool&) = delete;

  // Pops a warm WFD (counted as a hit) or returns nullptr (a miss — the
  // caller cold-starts via Wfd::Create and pays the instantiation).
  std::unique_ptr<Wfd> TryAcquireWarm();

  // Parks a successfully-reset WFD for reuse. The caller must have called
  // Wfd::Reset() (ok) and Wfd::SetTrace(nullptr, 0) first. If the pool is
  // at capacity the WFD is destroyed and counted as an eviction.
  void Park(std::unique_ptr<Wfd> wfd);

  // Destroys every parked WFD (workflow re-registration, shutdown).
  // Counted as evictions.
  void Clear();

  size_t warm_count() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  asobs::Counter& hits_;
  asobs::Counter& misses_;
  asobs::Counter& evictions_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Wfd>> warm_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_WFD_POOL_H_
