#include "src/core/visor/wfd_pool.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace alloy {
namespace {

WfdPoolOptions ReactiveOptions(size_t capacity) {
  WfdPoolOptions options;
  options.capacity = capacity;
  return options;
}

asobs::Labels PoolLabels(const std::string& workflow,
                         const asobs::Labels& extra) {
  asobs::Labels labels = {{"workflow", workflow}};
  labels.insert(labels.end(), extra.begin(), extra.end());
  return labels;
}

}  // namespace

WfdPool::WfdPool(const std::string& workflow, size_t capacity)
    : WfdPool(workflow, ReactiveOptions(capacity)) {}

WfdPool::WfdPool(const std::string& workflow, WfdPoolOptions options)
    : options_(std::move(options)),
      workflow_(workflow),
      hits_(asobs::Registry::Global().GetCounter(
          "alloy_visor_pool_hits_total",
          PoolLabels(workflow, options_.extra_labels))),
      misses_(asobs::Registry::Global().GetCounter(
          "alloy_visor_pool_misses_total",
          PoolLabels(workflow, options_.extra_labels))),
      evictions_(asobs::Registry::Global().GetCounter(
          "alloy_visor_pool_evictions_total",
          PoolLabels(workflow, options_.extra_labels))),
      prewarms_(asobs::Registry::Global().GetCounter(
          "alloy_visor_prewarms_total",
          PoolLabels(workflow, options_.extra_labels))),
      resident_gauge_(asobs::Registry::Global().GetGauge(
          "alloy_visor_pool_resident_bytes",
          PoolLabels(workflow, options_.extra_labels))),
      lease_hist_(asobs::Registry::Global().GetHistogram(
          "alloy_visor_pool_lease_nanos",
          PoolLabels(workflow, options_.extra_labels))) {
  last_activity_nanos_ = asbase::MonoNanos();
  // The warmer only exists when it has something to do: a floor or a
  // predictive refill needs the factory; the idle-TTL evictor does not.
  const bool needs_warmer =
      options_.capacity > 0 &&
      ((options_.factory != nullptr) || options_.idle_ttl_ms > 0);
  if (needs_warmer) {
    warmer_ = std::thread([this] { WarmerLoop(); });
  }
}

WfdPool::~WfdPool() { Shutdown(); }

void WfdPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  warmer_cv_.notify_all();
  if (warmer_.joinable()) {
    warmer_.join();
  }
  Clear();
}

std::unique_ptr<Wfd> WfdPool::PopWarmLocked() {
  if (warm_.empty()) {
    return nullptr;
  }
  Parked parked = std::move(warm_.back());
  warm_.pop_back();
  // Un-charge exactly what was charged at park time, not ResidentBytes()
  // now — the two can differ, and the gauge is shared with other pools.
  resident_bytes_ -= std::min(resident_bytes_, parked.bytes);
  resident_gauge_.Add(-static_cast<int64_t>(parked.bytes));
  return std::move(parked.wfd);
}

void WfdPool::AddWarmLocked(std::unique_ptr<Wfd> wfd) {
  Parked parked;
  parked.bytes = wfd->ResidentBytes();
  parked.wfd = std::move(wfd);
  resident_bytes_ += parked.bytes;
  resident_gauge_.Add(static_cast<int64_t>(parked.bytes));
  warm_.push_back(std::move(parked));
}

std::vector<WfdPool::Parked> WfdPool::TakeAllLocked() {
  std::vector<Parked> doomed;
  doomed.swap(warm_);
  int64_t charged = 0;
  for (const Parked& parked : doomed) {
    charged += static_cast<int64_t>(parked.bytes);
  }
  resident_bytes_ = 0;
  resident_gauge_.Add(-charged);
  return doomed;
}

std::unique_ptr<Wfd> WfdPool::TryAcquireWarm() {
  std::unique_ptr<Wfd> wfd;
  bool drained_below_target = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t now = asbase::MonoNanos();
    if (last_arrival_nanos_ != 0) {
      const double interval = static_cast<double>(now - last_arrival_nanos_);
      ewma_interarrival_nanos_ =
          ewma_interarrival_nanos_ == 0
              ? interval
              : kArrivalAlpha * interval +
                    (1.0 - kArrivalAlpha) * ewma_interarrival_nanos_;
    }
    last_arrival_nanos_ = now;
    last_activity_nanos_ = now;
    wfd = PopWarmLocked();
    ++outstanding_;
    drained_below_target =
        warm_.size() + prewarming_ + outstanding_ < TargetWarmLocked(now);
  }
  if (wfd == nullptr) {
    misses_.Add(1);
  } else {
    hits_.Add(1);
  }
  if (drained_below_target) {
    warmer_cv_.notify_all();
  }
  return wfd;
}

void WfdPool::Park(std::unique_ptr<Wfd> wfd) {
  if (wfd == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_activity_nanos_ = asbase::MonoNanos();
    if (outstanding_ > 0) {
      --outstanding_;
    }
    if (!stopping_ && warm_.size() < options_.capacity) {
      AddWarmLocked(std::move(wfd));
      return;
    }
  }
  // At capacity: destroy outside the lock (WFD teardown is not cheap).
  evictions_.Add(1);
  wfd.reset();
}

void WfdPool::AbandonLease() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (outstanding_ > 0) {
      --outstanding_;
    }
  }
  // The WFD this lease would have returned is gone: the pool may now be
  // below target, so give the warmer a chance to boot a replacement.
  warmer_cv_.notify_all();
}

std::vector<std::unique_ptr<Wfd>> WfdPool::TakeWarmForHandoff() {
  std::vector<Parked> taken;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taken = TakeAllLocked();
  }
  // Not evictions: these WFDs keep living, in another pool.
  std::vector<std::unique_ptr<Wfd>> wfds;
  wfds.reserve(taken.size());
  for (Parked& parked : taken) {
    wfds.push_back(std::move(parked.wfd));
  }
  return wfds;
}

void WfdPool::AdoptWarm(std::unique_ptr<Wfd> wfd) {
  if (wfd == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_activity_nanos_ = asbase::MonoNanos();
    if (!stopping_ && warm_.size() < options_.capacity) {
      AddWarmLocked(std::move(wfd));
      return;
    }
  }
  evictions_.Add(1);
  wfd.reset();
}

void WfdPool::Clear() {
  std::vector<Parked> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doomed = TakeAllLocked();
  }
  evictions_.Add(doomed.size());
  doomed.clear();
}

size_t WfdPool::warm_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_.size();
}

size_t WfdPool::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

size_t WfdPool::target_warm() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return TargetWarmLocked(asbase::MonoNanos());
}

bool WfdPool::IdleLocked(int64_t now) const {
  return options_.idle_ttl_ms > 0 &&
         now - last_activity_nanos_ > options_.idle_ttl_ms * 1'000'000;
}

size_t WfdPool::TargetWarmLocked(int64_t now) const {
  if (IdleLocked(now)) {
    return 0;  // quiet workflow: let the pool drain entirely
  }
  size_t target = options_.min_warm;
  if (ewma_interarrival_nanos_ > 0 && last_arrival_nanos_ != 0) {
    // Age the EWMA against the gap since the last arrival so a finished
    // burst cannot pin the target high until the idle TTL fires.
    const double interarrival =
        std::max(ewma_interarrival_nanos_,
                 static_cast<double>(now - last_arrival_nanos_));
    const double predicted_arrivals =
        static_cast<double>(kWarmHorizonNanos) / interarrival;
    target = std::max(target,
                      static_cast<size_t>(std::ceil(predicted_arrivals)));
  }
  return std::min(target, options_.capacity);
}

void WfdPool::WarmerLoop() {
  // The warmer's lines (factory failures, back-off warnings) interleave
  // with every shard's traffic; tag them with their shard + workflow.
  asbase::ScopedLogContext log_context(options_.log_shard, workflow_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const int64_t now = asbase::MonoNanos();

    // Idle-TTL eviction: a quiet workflow's parked WFDs pin heap + disk for
    // nothing; drop them all (destruction happens off-lock).
    if (IdleLocked(now) && !warm_.empty()) {
      std::vector<Parked> doomed = TakeAllLocked();
      lock.unlock();
      evictions_.Add(doomed.size());
      doomed.clear();
      lock.lock();
      continue;
    }

    // Pre-warm toward the target, one WFD per iteration so a stop request
    // or an idle transition is honored between creations. Outstanding
    // leases count as provisioned: each comes back via Park, and a
    // replacement booted meanwhile would only evict it on return — churn
    // that costs a module reload on the next lease.
    if (options_.factory != nullptr &&
        warm_.size() + prewarming_ + outstanding_ < TargetWarmLocked(now)) {
      ++prewarming_;
      lock.unlock();
      auto wfd_or = options_.factory();
      lock.lock();
      --prewarming_;
      if (!wfd_or.ok()) {
        AS_LOG(kWarn) << "pre-warm factory failed ("
                      << wfd_or.status().ToString() << "); backing off";
        warmer_cv_.wait_for(lock, std::chrono::milliseconds(50),
                            [this] { return stopping_; });
      } else if (!stopping_ && warm_.size() < options_.capacity) {
        prewarms_.Add(1);
        AddWarmLocked(std::move(*wfd_or));
      } else {
        // Raced with shutdown or a concurrent fill: destroy off-lock.
        std::unique_ptr<Wfd> doomed = std::move(*wfd_or);
        lock.unlock();
        evictions_.Add(1);
        doomed.reset();
        lock.lock();
      }
      continue;
    }

    // Nothing to do: sleep until a drain notifies us or the next TTL check
    // is due.
    warmer_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

}  // namespace alloy
