#include "src/core/visor/wfd_pool.h"

namespace alloy {

WfdPool::WfdPool(const std::string& workflow, size_t capacity)
    : capacity_(capacity),
      hits_(asobs::Registry::Global().GetCounter(
          "alloy_visor_pool_hits_total", {{"workflow", workflow}})),
      misses_(asobs::Registry::Global().GetCounter(
          "alloy_visor_pool_misses_total", {{"workflow", workflow}})),
      evictions_(asobs::Registry::Global().GetCounter(
          "alloy_visor_pool_evictions_total", {{"workflow", workflow}})) {}

WfdPool::~WfdPool() { Clear(); }

std::unique_ptr<Wfd> WfdPool::TryAcquireWarm() {
  std::unique_ptr<Wfd> wfd;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!warm_.empty()) {
      wfd = std::move(warm_.back());
      warm_.pop_back();
    }
  }
  if (wfd == nullptr) {
    misses_.Add(1);
  } else {
    hits_.Add(1);
  }
  return wfd;
}

void WfdPool::Park(std::unique_ptr<Wfd> wfd) {
  if (wfd == nullptr) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (warm_.size() < capacity_) {
      warm_.push_back(std::move(wfd));
      return;
    }
  }
  // At capacity: destroy outside the lock (WFD teardown is not cheap).
  evictions_.Add(1);
  wfd.reset();
}

void WfdPool::Clear() {
  std::vector<std::unique_ptr<Wfd>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doomed.swap(warm_);
  }
  evictions_.Add(doomed.size());
  doomed.clear();
}

size_t WfdPool::warm_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warm_.size();
}

}  // namespace alloy
