#include "src/core/visor/orchestrator.h"

#include <algorithm>
#include <thread>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace alloy {
namespace {

// Data-plane metrics: how many OS threads stage dispatch actually creates
// (zero on a reused WFD — the whole point of the per-WFD worker pool) and
// how long an instance waits between submit and a worker picking it up.
struct OrchMetrics {
  asobs::Counter& thread_spawns;
  asobs::LatencyHistogram& dispatch_nanos;
};

OrchMetrics& Metrics() {
  static auto* metrics = new OrchMetrics{
      asobs::Registry::Global().GetCounter("alloy_orch_thread_spawns_total"),
      asobs::Registry::Global().GetHistogram("alloy_orch_dispatch_nanos"),
  };
  return *metrics;
}

// Worker-cached user PKRU. Outside AS-IFI, RegisterFunctionInstance returns
// the WFD's shared user key, so the derived PKRU is a per-WFD constant: each
// pool worker computes it on its first instance and reuses it across every
// later invocation on this WFD (workers live exactly as long as their WFD).
thread_local const Wfd* cached_pkru_wfd = nullptr;
thread_local uint32_t cached_user_pkru = 0;

}  // namespace

void FunctionContext::BeginPhase(Phase phase) {
  const int64_t now = asbase::MonoNanos();
  if (timing_started_) {
    const int64_t elapsed = now - phase_start_nanos_;
    switch (current_phase_) {
      case Phase::kReadInput:
        timings_.read_input_nanos += elapsed;
        break;
      case Phase::kCompute:
        timings_.compute_nanos += elapsed;
        break;
      case Phase::kTransfer:
        timings_.transfer_nanos += elapsed;
        break;
    }
  }
  current_phase_ = phase;
  phase_start_nanos_ = now;
  timing_started_ = true;
}

void FunctionContext::FinishTiming() {
  if (timing_started_) {
    BeginPhase(current_phase_);  // flush the open phase
    timing_started_ = false;
  }
}

void FunctionContext::SetResult(std::string result) {
  result_ = std::move(result);
}

bool FunctionContext::past_deadline() const {
  return deadline_nanos_ != 0 && asbase::MonoNanos() > deadline_nanos_;
}

FunctionRegistry& FunctionRegistry::Global() {
  static auto* registry = new FunctionRegistry();
  return *registry;
}

void FunctionRegistry::Register(const std::string& name, UserFunction fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  functions_[name] = std::move(fn);
}

asbase::Result<UserFunction> FunctionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return asbase::NotFound("no function named '" + name +
                            "' in the registry");
  }
  return it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, fn] : functions_) {
    names.push_back(name);
  }
  return names;
}

asbase::Result<WorkflowSpec> WorkflowSpec::FromJson(
    const asbase::Json& config) {
  WorkflowSpec spec;
  if (!config["name"].is_string()) {
    return asbase::InvalidArgument("workflow config needs a 'name'");
  }
  spec.name = config["name"].as_string();
  if (!config["stages"].is_array()) {
    return asbase::InvalidArgument("workflow config needs 'stages'");
  }
  for (const auto& stage_json : config["stages"].array()) {
    StageSpec stage;
    if (!stage_json["functions"].is_array()) {
      return asbase::InvalidArgument("stage needs 'functions'");
    }
    for (const auto& fn_json : stage_json["functions"].array()) {
      FunctionSpec fn;
      fn.name = fn_json["name"].as_string();
      if (fn.name.empty()) {
        return asbase::InvalidArgument("function needs a 'name'");
      }
      fn.instances = static_cast<int>(fn_json["instances"].as_int(1));
      fn.max_retries = static_cast<int>(fn_json["max_retries"].as_int(0));
      if (fn.instances < 1) {
        return asbase::InvalidArgument("instances must be >= 1");
      }
      stage.functions.push_back(std::move(fn));
    }
    if (stage.functions.empty()) {
      return asbase::InvalidArgument("stage has no functions");
    }
    spec.stages.push_back(std::move(stage));
  }
  if (spec.stages.empty()) {
    return asbase::InvalidArgument("workflow has no stages");
  }
  return spec;
}

asbase::Result<RunStats> Orchestrator::Run(const WorkflowSpec& workflow,
                                           const asbase::Json& params) {
  return Run(workflow, params, RunOptions{});
}

size_t Orchestrator::MaxStageFanout(const WorkflowSpec& workflow) {
  size_t fanout = 0;
  for (const StageSpec& stage : workflow.stages) {
    size_t instances = 0;
    for (const FunctionSpec& fn : stage.functions) {
      instances += static_cast<size_t>(fn.instances);
    }
    fanout = std::max(fanout, instances);
  }
  return fanout;
}

asbase::Result<RunStats> Orchestrator::Run(const WorkflowSpec& workflow,
                                           const asbase::Json& params,
                                           const RunOptions& options) {
  RunStats stats;
  const int64_t run_start = asbase::MonoNanos();
  auto deadline_exceeded = [&] {
    return options.deadline_nanos != 0 &&
           asbase::MonoNanos() > options.deadline_nanos;
  };
  const uint64_t enters_before = wfd_->trampoline().enter_count();
  const uint64_t switches_before = wfd_->mpk().switch_count();

  AsStd as(wfd_);
  as.set_deadline_nanos(options.deadline_nanos);
  asobs::Trace* trace = wfd_->options().trace;
  const uint32_t trace_parent = wfd_->options().trace_parent;

  // Stage instances dispatch onto the WFD's resident worker pool, sized once
  // to the workflow's max fan-out. On a fresh WFD this spawns the workers
  // (counted in alloy_orch_thread_spawns_total); on a reused WFD the pool is
  // already up and a whole invocation runs with zero thread spawns.
  asbase::ThreadPool* pool = nullptr;
  if (!options.spawn_per_stage) {
    const size_t fanout = std::max<size_t>(MaxStageFanout(workflow), 1);
    const size_t spawned = wfd_->EnsureStageWorkers(fanout);
    if (spawned > 0) {
      Metrics().thread_spawns.Add(spawned);
    }
    pool = wfd_->stage_workers();
  }

  for (size_t stage_index = 0; stage_index < workflow.stages.size();
       ++stage_index) {
    if (deadline_exceeded()) {
      return asbase::DeadlineExceeded(
          "deadline exceeded before stage " + std::to_string(stage_index) +
          " of workflow '" + workflow.name + "'");
    }
    const StageSpec& stage = workflow.stages[stage_index];
    const int64_t stage_start = asbase::MonoNanos();
    asobs::Span stage_span;
    if (trace != nullptr) {
      stage_span = trace->StartSpan("stage:" + std::to_string(stage_index),
                                    "orchestrator", trace_parent);
    }
    const uint32_t stage_span_id = stage_span.id();

    struct InstanceRun {
      FunctionContext context;
      asbase::Status status = asbase::OkStatus();
      int64_t finished_at = 0;
      size_t retries = 0;
    };
    std::vector<std::unique_ptr<InstanceRun>> runs;
    std::vector<std::thread> threads;

    for (const FunctionSpec& fn_spec : stage.functions) {
      AS_ASSIGN_OR_RETURN(UserFunction fn,
                          FunctionRegistry::Global().Find(fn_spec.name));
      for (int instance = 0; instance < fn_spec.instances; ++instance) {
        auto run = std::make_unique<InstanceRun>(InstanceRun{
            FunctionContext(&as, fn_spec.name,
                            static_cast<int>(stage_index), instance,
                            fn_spec.instances, &params)});
        run->context.deadline_nanos_ = options.deadline_nanos;
        InstanceRun* run_ptr = run.get();
        runs.push_back(std::move(run));

        const int max_retries = fn_spec.max_retries;
        const int64_t submitted_at = asbase::MonoNanos();
        auto body = [this, run_ptr, fn, max_retries, trace, stage_span_id,
                     instance, submitted_at, fn_name = fn_spec.name] {
          Metrics().dispatch_nanos.Record(asbase::MonoNanos() - submitted_at);
          // Started on the instance thread so the span carries its real tid.
          asobs::Span fn_span;
          if (trace != nullptr) {
            fn_span = trace->StartSpan(
                fn_name + "#" + std::to_string(instance), "function",
                stage_span_id);
          }
          uint32_t user_pkru;
          const bool cacheable = !wfd_->options().inter_function_isolation;
          if (cacheable && cached_pkru_wfd == wfd_) {
            // Warm worker: the instance key and PKRU were derived on an
            // earlier invocation of this WFD.
            user_pkru = cached_user_pkru;
          } else {
            auto fn_key = wfd_->RegisterFunctionInstance(fn_name);
            user_pkru =
                wfd_->UserPkru(fn_key.ok() ? *fn_key : wfd_->user_key());
            if (cacheable) {
              cached_pkru_wfd = wfd_;
              cached_user_pkru = user_pkru;
            }
          }
          // Run with user permissions; functions regain system access only
          // through the as-std trampoline.
          wfd_->mpk().WritePkru(user_pkru);
          run_ptr->context.BeginPhase(Phase::kCompute);
          asbase::Status status = asbase::OkStatus();
          for (int attempt = 0; attempt <= max_retries; ++attempt) {
            if (attempt > 0) {
              ++run_ptr->retries;
            }
            // Retry-based fault tolerance (§3.1): user exceptions poison
            // only this function, which can re-run if idempotent.
            try {
              status = fn(run_ptr->context);
            } catch (const std::exception& error) {
              status = asbase::Internal(std::string("function crashed: ") +
                                        error.what());
            }
            if (status.ok()) {
              break;
            }
          }
          run_ptr->context.FinishTiming();
          run_ptr->status = status;
          run_ptr->finished_at = asbase::MonoNanos();
          wfd_->mpk().WritePkru(0);  // leave the thread fully open again
        };
        if (pool != nullptr) {
          pool->Submit(std::move(body));
        } else {
          Metrics().thread_spawns.Add(1);
          threads.emplace_back(std::move(body));
        }
      }
    }

    // Stage barrier: the pool runs only this stage's tasks (one run per WFD
    // at a time), so Drain() is the fan-in wait.
    if (pool != nullptr) {
      pool->Drain();
    }
    for (auto& thread : threads) {
      thread.join();
    }
    const int64_t barrier_at = asbase::MonoNanos();
    stats.stage_nanos.push_back(barrier_at - stage_start);

    for (auto& run : runs) {
      run->context.timings().wait_nanos = barrier_at - run->finished_at;
      stats.phases += run->context.timings();
      stats.retries += run->retries;
      ++stats.instances_run;
      if (!run->context.result().empty()) {
        stats.result = run->context.result();
      }
      if (!run->status.ok()) {
        return asbase::Status(run->status.code(),
                              "function '" + run->context.function_name() +
                                  "' failed: " + run->status.message());
      }
    }
    if (deadline_exceeded()) {
      // Cooperative enforcement: the slow stage was allowed to join (its
      // threads share the WFD — preemption would poison the domain), but
      // the rest of the workflow does not run.
      return asbase::DeadlineExceeded(
          "stage " + std::to_string(stage_index) + " of workflow '" +
          workflow.name + "' ran past the invocation deadline");
    }
  }

  stats.total_nanos = asbase::MonoNanos() - run_start;
  stats.trampoline_enters = wfd_->trampoline().enter_count() - enters_before;
  stats.pkru_switches = wfd_->mpk().switch_count() - switches_before;
  return stats;
}

}  // namespace alloy
