// Multi-visor sharding (DESIGN.md §10) + elastic shard mesh (§12): N
// per-core AsVisor shards behind a consistent-hash router, rebalanced at
// runtime.
//
// A single AsVisor serializes every admission decision, pool lease, and
// queue wake-up on one mutex — and every ReleaseAdmission broadcast wakes
// *all* queued waiters, each of which re-locks that mutex and re-runs an
// O(workflows + queue depth) eligibility predicate. Past a few dozen
// concurrent requests the control plane burns more CPU thundering than
// serving. The router splits the world into N independent shards: each
// workflow lives on exactly one shard (consistent hash on its name, or an
// explicit `pin_shard` override), so admission state, the condvar herd, the
// WfdPool + warmer, and the service-time EWMAs are all shard-local and the
// per-completion wake cost divides by N.
//
// Placement is a 64-vnode/shard FNV-1a hash ring, so changing the shard
// count moves only ~1/(N+1) of the workflows (tested both directions).
// Global serving budgets (`max_inflight`, worker threads) are divided into
// per-shard slices at StartWatchdog. One shared HttpServer fronts all
// shards: `/invoke/<wf>` routes to the owning shard with no cross-shard
// lock on the hot path, `/metrics` serves the shared registry (shards label
// their series `alloy_visor_shard="<i>"`), `/trace` routes by the workflow
// query param.
//
// The mesh is *elastic*: MigrateWorkflow moves a workflow (warm pool and
// queued admissions included) between shards, ScaleTo grows or shrinks the
// shard count within [min_shards, max_shards], and an optional
// ShardRebalancer (RouterOptions::rebalancer.enabled) drives both plus
// demand-weighted budget re-slicing from a control loop. Requests caught
// mid-migration carry their paid queue wait through an internal 307 hop
// (`x-alloy-migrated`), so a migration costs a re-dispatch, not a 503.
//
// The router exposes the same surface as AsVisor (RegisterWorkflow /
// Invoke / StartWatchdog), so the watchdog, benches, and tests swap over
// by constructing an AsVisorRouter instead of an AsVisor.

#ifndef SRC_CORE_VISOR_VISOR_ROUTER_H_
#define SRC_CORE_VISOR_VISOR_ROUTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/visor/visor.h"
#include "src/core/visor/visor_rebalancer.h"

namespace alloy {

struct RouterOptions {
  // Initial shard count. 0 = the ALLOY_VISOR_SHARDS environment variable if
  // set, else hardware_concurrency (min 1).
  size_t shards = 0;
  // Elastic bounds for ScaleTo / the rebalancer. min_shards clamps to
  // [1, initial count]; max_shards 0 means "the initial count" (scaling
  // disabled unless explicitly widened), and is capped at the router's
  // hard shard limit.
  size_t min_shards = 1;
  size_t max_shards = 0;
  // Load-aware rebalancing (off by default; ALLOY_REBALANCE=1 and friends
  // override, see RebalancerOptions::FromEnv). The control loop runs only
  // while the watchdog is up.
  RebalancerOptions rebalancer;
};

class AsVisorRouter {
 public:
  explicit AsVisorRouter(RouterOptions options = {});
  ~AsVisorRouter();

  AsVisorRouter(const AsVisorRouter&) = delete;
  AsVisorRouter& operator=(const AsVisorRouter&) = delete;

  size_t shard_count() const;
  // Direct shard access (tests, ops introspection). The reference stays
  // valid until a ScaleTo removes the shard; callers that might race a
  // scale-down should hold the shared_ptr from ShardPtr instead.
  AsVisor& shard(size_t index) { return *ShardPtr(index); }
  std::shared_ptr<AsVisor> ShardPtr(size_t index) const;

  // ---- AsVisor-compatible surface ----
  // Registers on the owning shard (consistent hash, or options.pin_shard
  // modulo shard count when >= 0). A workflow whose placement changed —
  // pinned somewhere new, or re-registered after its pin was dropped — is
  // unregistered from the old shard first, so it is never registered twice.
  void RegisterWorkflow(const WorkflowSpec& spec);
  void RegisterWorkflow(const WorkflowSpec& spec,
                        AsVisor::WorkflowOptions options);
  asbase::Status RegisterWorkflowFromJson(const asbase::Json& config);
  bool UnregisterWorkflow(const std::string& workflow_name);

  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params);
  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params,
                                      const AsVisor::InvokeOptions& options);

  // One shared HTTP server for all shards. `serving` carries the GLOBAL
  // budgets; the router divides max_inflight and worker_threads into
  // per-shard slices (each at least 1, remainder to the lowest shards).
  // Starts the rebalancer when RouterOptions enabled it.
  asbase::Status StartWatchdog(uint16_t port = 0);
  asbase::Status StartWatchdog(uint16_t port, AsVisor::ServingOptions serving);
  uint16_t watchdog_port() const;
  // Stops the rebalancer, then three deterministic phases: (1) BeginDrain
  // on every shard in index order — queued admissions unwind with 503;
  // (2) stop the shared server, joining its connection threads; (3)
  // StopServing each shard in index order (drains + destroys its pool).
  void StopWatchdog();

  // The serving pipeline without the HTTP socket: routes the request to the
  // owning shard's HandleInvoke (admission + dispatch + response mapping),
  // following internal migration redirects (bounded hops) so a workflow
  // moving shards costs the client nothing but the re-queue.
  // What the shared server's handler calls; benches drive it directly.
  ashttp::HttpResponse Dispatch(const ashttp::HttpRequest& request);

  // Rebalance hook: re-divides a new global in-flight budget EVENLY across
  // shards and wakes their queued admissions.
  void SetMaxInflightTotal(size_t max_inflight);
  size_t max_inflight_total() const;

  // ---- elastic mesh (DESIGN.md §12) ----
  // Moves `workflow_name` (registration, warm WFD pool, queued admissions)
  // to shard `to_shard`: the new owner registers first, the route flips,
  // then the old entry migrates out — queued waiters unwind as migrated and
  // re-dispatch to the new owner carrying their paid queue wait. Records an
  // alloy_rebalance_migrations_total tick + a RebalanceLog event.
  asbase::Status MigrateWorkflow(const std::string& workflow_name,
                                 size_t to_shard);

  // Grows or shrinks the mesh to `target` shards (clamped to the
  // RouterOptions bounds). Scale-up starts the new shards serving and
  // migrates the workflows whose hash placement moved (~1/(N+1)).
  // Scale-down migrates every workflow off the doomed shards (hash owners
  // for free workflows, pin % target for pinned ones), drains them, and
  // removes them. Either direction re-slices the in-flight budget evenly.
  asbase::Status ScaleTo(size_t target);

  size_t min_shards() const { return min_shards_; }
  size_t max_shards_limit() const { return max_shards_; }

  // Per-shard load snapshots, index-aligned — the rebalancer's input.
  std::vector<AsVisor::ShardLoad> ShardLoads() const;

  // Applies per-shard max_inflight slices (index-aligned; ignored when the
  // size does not match the current shard count — a scale raced it).
  // Returns false on that mismatch.
  bool SetShardSlices(const std::vector<size_t>& slices);

  // The rebalancer instance (null when disabled); tests use it to drive
  // TickOnce deterministically.
  ShardRebalancer* rebalancer() { return rebalancer_.get(); }

  // Where `workflow_name` is (registered) or would be (hash) placed.
  size_t ShardOf(const std::string& workflow_name) const;
  // Pure ring placement, ignoring pins and registrations (tests).
  size_t HashShard(const std::string& workflow_name) const;

  // Convenience pass-throughs to the owning shard.
  asbase::Result<asbase::Histogram> LatencyHistogram(
      const std::string& workflow_name) const;
  asbase::Result<size_t> WarmWfdCount(const std::string& workflow_name) const;

 private:
  struct RingPoint {
    uint64_t hash;
    size_t shard;
  };

  // MigrateWorkflow without the admin mutex — ScaleTo (which already holds
  // it) calls this for each evacuated workflow.
  asbase::Status MigrateWorkflowInternal(const std::string& workflow_name,
                                         size_t to_shard);

  // Owning shard for a request: the routes entry if present, else the ring.
  // Returns the shared_ptr so a concurrent scale-down cannot free the shard
  // under an in-flight request.
  std::shared_ptr<AsVisor> ResolveShard(const std::string& workflow_name) const;
  // All shards, under one shared-lock hold (iteration off-lock).
  std::vector<std::shared_ptr<AsVisor>> SnapshotShards() const;
  // Ring placement; caller holds routes_mutex_ (either side).
  size_t HashShardLocked(const std::string& workflow_name) const;
  // Rebuilds ring_ for `shard_count` shards; caller holds the write lock.
  void RebuildRingLocked(size_t shard_count);
  // Creates shard `index` of `shard_count` (identity + cpu slice).
  std::shared_ptr<AsVisor> MakeShard(size_t index, size_t shard_count) const;

  ashttp::HttpResponse ServeTrace(const std::string& target) const;
  // /readyz across shards: 503 if ANY shard is draining (a rolling drain
  // must pull the whole process out of the balancer before requests start
  // landing on the drained shard); body lists per-shard state.
  ashttp::HttpResponse ServeReadyz() const;
  // /debug/flight and /debug/latency: with ?workflow= the owning shard
  // answers; without, the router merges every shard's flight ring (and
  // appends recent rebalance events).
  ashttp::HttpResponse ServeFlight(const std::string& target) const;
  ashttp::HttpResponse ServeLatency(const std::string& target) const;
  // Every shard's flight records merged oldest-first (end_nanos order).
  std::vector<asobs::FlightRecord> MergedFlight(int64_t since_nanos) const;

  // Elastic bounds, fixed at construction.
  size_t min_shards_ = 1;
  size_t max_shards_ = 1;
  // Rebalancer config (env overrides applied), fixed at construction; the
  // instance itself lives from StartWatchdog to StopWatchdog.
  RebalancerOptions rebalancer_options_;

  // Serializes control-plane mutations (MigrateWorkflow, ScaleTo) against
  // each other; the data plane never takes it.
  std::mutex admin_mutex_;

  // Mesh state: shards_, ring_, and routes_ move together under
  // routes_mutex_ (the /invoke hot path only ever takes the read side, once,
  // to resolve + copy a shard pointer).
  mutable std::shared_mutex routes_mutex_;
  std::vector<std::shared_ptr<AsVisor>> shards_;
  // kVnodesPerShard vnodes per shard, sorted by hash; rebuilt on ScaleTo.
  std::vector<RingPoint> ring_;
  // workflow -> owning shard, set at registration, flipped by migration.
  std::map<std::string, size_t> routes_;

  AsVisor::ServingOptions serving_total_;
  std::atomic<bool> serving_active_{false};
  std::unique_ptr<ashttp::HttpServer> server_;
  std::unique_ptr<ShardRebalancer> rebalancer_;

  // Rebalance observability (registry-owned).
  asobs::Counter* migrations_ = nullptr;
  asobs::Counter* scale_ups_ = nullptr;
  asobs::Counter* scale_downs_ = nullptr;
  asobs::Counter* queue_handoffs_ = nullptr;
  asobs::Gauge* shards_gauge_ = nullptr;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_VISOR_ROUTER_H_
