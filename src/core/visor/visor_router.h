// Multi-visor sharding (DESIGN.md §10): N per-core AsVisor shards behind a
// consistent-hash router.
//
// A single AsVisor serializes every admission decision, pool lease, and
// queue wake-up on one mutex — and every ReleaseAdmission broadcast wakes
// *all* queued waiters, each of which re-locks that mutex and re-runs an
// O(workflows + queue depth) eligibility predicate. Past a few dozen
// concurrent requests the control plane burns more CPU thundering than
// serving. The router splits the world into N independent shards: each
// workflow lives on exactly one shard (consistent hash on its name, or an
// explicit `pin_shard` override), so admission state, the condvar herd, the
// WfdPool + warmer, and the service-time EWMAs are all shard-local and the
// per-completion wake cost divides by N.
//
// Placement is a 64-vnode/shard FNV-1a hash ring, so growing the shard
// count moves only ~1/N of the workflows (tested). Global serving budgets
// (`max_inflight`, worker threads) are divided into per-shard slices at
// StartWatchdog with a rebalance hook (`SetMaxInflightTotal`). One shared
// HttpServer fronts all shards: `/invoke/<wf>` routes to the owning shard
// with no cross-shard lock on the hot path, `/metrics` serves the shared
// registry (shards label their series `alloy_visor_shard="<i>"`), `/trace`
// routes by the workflow query param. Shard stage workers pin to the
// shard's core slice when the machine has at least one core per shard.
//
// The router exposes the same surface as AsVisor (RegisterWorkflow /
// Invoke / StartWatchdog), so the watchdog, benches, and tests swap over
// by constructing an AsVisorRouter instead of an AsVisor.

#ifndef SRC_CORE_VISOR_VISOR_ROUTER_H_
#define SRC_CORE_VISOR_VISOR_ROUTER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/visor/visor.h"

namespace alloy {

struct RouterOptions {
  // Shard count. 0 = the ALLOY_VISOR_SHARDS environment variable if set,
  // else hardware_concurrency (min 1).
  size_t shards = 0;
};

class AsVisorRouter {
 public:
  explicit AsVisorRouter(RouterOptions options = {});
  ~AsVisorRouter();

  AsVisorRouter(const AsVisorRouter&) = delete;
  AsVisorRouter& operator=(const AsVisorRouter&) = delete;

  size_t shard_count() const { return shards_.size(); }
  // Direct shard access (tests, ops introspection).
  AsVisor& shard(size_t index) { return *shards_[index]; }

  // ---- AsVisor-compatible surface ----
  // Registers on the owning shard (consistent hash, or options.pin_shard
  // modulo shard count when >= 0). A workflow whose placement changed —
  // pinned somewhere new, or re-registered after its pin was dropped — is
  // unregistered from the old shard first, so it is never registered twice.
  void RegisterWorkflow(const WorkflowSpec& spec);
  void RegisterWorkflow(const WorkflowSpec& spec,
                        AsVisor::WorkflowOptions options);
  asbase::Status RegisterWorkflowFromJson(const asbase::Json& config);
  bool UnregisterWorkflow(const std::string& workflow_name);

  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params);
  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params,
                                      const AsVisor::InvokeOptions& options);

  // One shared HTTP server for all shards. `serving` carries the GLOBAL
  // budgets; the router divides max_inflight and worker_threads into
  // per-shard slices (each at least 1, remainder to the lowest shards).
  asbase::Status StartWatchdog(uint16_t port = 0);
  asbase::Status StartWatchdog(uint16_t port, AsVisor::ServingOptions serving);
  uint16_t watchdog_port() const;
  // Three deterministic phases: (1) BeginDrain on every shard in index
  // order — queued admissions unwind with 503; (2) stop the shared server,
  // joining its connection threads; (3) StopServing each shard in index
  // order (drains + destroys its worker pool).
  void StopWatchdog();

  // The serving pipeline without the HTTP socket: routes the request to the
  // owning shard's HandleInvoke (admission + dispatch + response mapping).
  // What the shared server's handler calls; benches drive it directly.
  ashttp::HttpResponse Dispatch(const ashttp::HttpRequest& request);

  // Rebalance hook: re-divides a new global in-flight budget across shards
  // and wakes their queued admissions.
  void SetMaxInflightTotal(size_t max_inflight);

  // Where `workflow_name` is (registered) or would be (hash) placed.
  size_t ShardOf(const std::string& workflow_name) const;
  // Pure ring placement, ignoring pins and registrations (tests).
  size_t HashShard(const std::string& workflow_name) const;

  // Convenience pass-throughs to the owning shard.
  asbase::Result<asbase::Histogram> LatencyHistogram(
      const std::string& workflow_name) const;
  asbase::Result<size_t> WarmWfdCount(const std::string& workflow_name) const;

 private:
  struct RingPoint {
    uint64_t hash;
    size_t shard;
  };

  ashttp::HttpResponse ServeTrace(const std::string& target) const;
  // /readyz across shards: 503 if ANY shard is draining (a rolling drain
  // must pull the whole process out of the balancer before requests start
  // landing on the drained shard); body lists per-shard state.
  ashttp::HttpResponse ServeReadyz() const;
  // /debug/flight and /debug/latency: with ?workflow= the owning shard
  // answers; without, the router merges every shard's flight ring.
  ashttp::HttpResponse ServeFlight(const std::string& target) const;
  ashttp::HttpResponse ServeLatency(const std::string& target) const;
  // Every shard's flight records merged oldest-first (end_nanos order).
  std::vector<asobs::FlightRecord> MergedFlight(int64_t since_nanos) const;

  std::vector<std::unique_ptr<AsVisor>> shards_;
  // 64 vnodes per shard, sorted by hash; immutable after construction.
  std::vector<RingPoint> ring_;

  // workflow -> owning shard, fixed at registration. shared_mutex: the
  // /invoke hot path only ever takes the read side.
  mutable std::shared_mutex routes_mutex_;
  std::map<std::string, size_t> routes_;

  AsVisor::ServingOptions serving_total_;
  std::unique_ptr<ashttp::HttpServer> server_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_VISOR_ROUTER_H_
