#include "src/core/visor/visor.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <optional>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/rebalance.h"

namespace alloy {
namespace {

// Smoothing for the per-workflow service-time EWMA behind the
// queue-with-budget admission predictor.
constexpr double kServiceAlpha = 0.2;

// Flight-ring capacity when ALLOY_FLIGHT_RING is unset.
constexpr size_t kDefaultFlightRing = 1024;

// Non-negative integer env override, `fallback` when unset or unparseable.
int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long value = std::strtoll(env, &end, 10);
  if (end == env || value < 0) {
    return fallback;
  }
  return static_cast<int64_t>(value);
}

// ALLOY_SNAPSHOT gates snapshot-fork clone boot (DESIGN.md §14). Default
// on; "0"/"off"/"false" disables capture (and therefore cloning).
bool SnapshotEnabledFromEnv() {
  const char* env = std::getenv("ALLOY_SNAPSHOT");
  if (env == nullptr || *env == '\0') {
    return true;
  }
  const std::string value(env);
  return value != "0" && value != "off" && value != "false";
}

// Burn rates export through int64 gauges; scale to milli-units (burn 1.0 →
// gauge 1000) so fractional burns stay visible. Documented in docs/metrics.md.
int64_t BurnMilli(double burn) {
  return static_cast<int64_t>(std::llround(
      std::min(burn, 1e12) * 1000.0));
}

// Query-string value for `key` in an HTTP target ("/trace?workflow=x").
std::string QueryParam(const std::string& target, const std::string& key) {
  const size_t question = target.find('?');
  if (question == std::string::npos) {
    return "";
  }
  std::string query = target.substr(question + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

asbase::Json SummarizeTrace(const asobs::Trace& trace) {
  asbase::Json summary;
  summary.Set("workflow", trace.workflow());
  asbase::Json spans{asbase::JsonArray{}};
  for (const asobs::SpanRecord& record : trace.Spans()) {
    asbase::Json span;
    span.Set("id", static_cast<int64_t>(record.id));
    span.Set("parent", static_cast<int64_t>(record.parent));
    span.Set("name", record.name);
    span.Set("category", record.category);
    span.Set("dur_nanos", record.duration_nanos);
    spans.Append(std::move(span));
  }
  summary.Set("spans", std::move(spans));
  return summary;
}

}  // namespace

AsVisor::AsVisor(ShardIdentity shard)
    : shard_(std::move(shard)),
      inflight_gauge_(&asobs::Registry::Global().GetGauge(
          "alloy_visor_inflight", ShardLabels())) {
  flight_ = std::make_unique<asobs::FlightRecorder>(static_cast<size_t>(
      EnvInt64("ALLOY_FLIGHT_RING", kDefaultFlightRing)));
  trace_ring_ = static_cast<size_t>(
      EnvInt64("ALLOY_TRACE_RING", static_cast<int64_t>(kTraceRing)));
  trace_threshold_ms_ = EnvInt64("ALLOY_TRACE_THRESHOLD_MS", 0);
  const char* blackbox_dir = std::getenv("ALLOY_BLACKBOX_DIR");
  blackbox_dir_ = blackbox_dir != nullptr && *blackbox_dir != '\0'
                      ? blackbox_dir
                      : ".";
  asobs::Registry& registry = asobs::Registry::Global();
  flight_records_ = &registry.GetCounter("alloy_visor_flight_records_total",
                                         ShardLabels());
  flight_dropped_ = &registry.GetCounter("alloy_visor_flight_dropped_total",
                                         ShardLabels());
  traces_retained_ = &registry.GetCounter("alloy_visor_traces_retained_total",
                                          ShardLabels());
  blackbox_counter_ = &registry.GetCounter(
      "alloy_slo_blackbox_snapshots_total", ShardLabels());
}

AsVisor::~AsVisor() {
  StopWatchdog();
  ShutdownPools();
}

asobs::Labels AsVisor::ShardLabels() const {
  if (shard_.index < 0) {
    return {};
  }
  return {{"alloy_visor_shard", std::to_string(shard_.index)}};
}

asobs::Labels AsVisor::WorkflowLabels(
    const std::string& workflow_name) const {
  asobs::Labels labels = {{"workflow", workflow_name}};
  if (shard_.index >= 0) {
    labels.push_back({"alloy_visor_shard", std::to_string(shard_.index)});
  }
  return labels;
}

void AsVisor::RegisterWorkflow(const WorkflowSpec& spec) {
  RegisterWorkflow(spec, WorkflowOptions{});
}

void AsVisor::RegisterWorkflow(const WorkflowSpec& spec,
                               WorkflowOptions options) {
  if (!(options.weight >= 1e-6)) {  // also catches NaN
    options.weight = 1.0;
  }
  // Sharded visor: this shard's WFDs (and their stage workers) stay on the
  // shard's core set unless the caller pinned them elsewhere explicitly.
  if (options.wfd.cpu_affinity.empty() && !shard_.cpus.empty()) {
    options.wfd.cpu_affinity = shard_.cpus;
  }
  Entry entry;
  entry.spec = spec;
  entry.warmup = std::make_shared<WarmupProfile>();
  entry.snapshot = std::make_shared<SnapshotCell>();
  entry.snapshot_enabled = SnapshotEnabledFromEnv();
  entry.snapshot_max_bytes =
      static_cast<size_t>(EnvInt64("ALLOY_SNAPSHOT_MAX_BYTES", 0));
  {
    asobs::Registry& registry = asobs::Registry::Global();
    const asobs::Labels labels = WorkflowLabels(spec.name);
    entry.invocations =
        &registry.GetCounter("alloy_visor_invocations_total", labels);
    entry.failures =
        &registry.GetCounter("alloy_visor_invocation_failures_total", labels);
    entry.timeouts = &registry.GetCounter("alloy_visor_timeouts_total", labels);
    entry.rejections =
        &registry.GetCounter("alloy_visor_rejections_total", labels);
    entry.queued_gauge = &registry.GetGauge("alloy_visor_queued", labels);
    entry.invoke_hist =
        &registry.GetHistogram("alloy_visor_invoke_nanos", labels);
    entry.queue_wait_hist =
        &registry.GetHistogram("alloy_visor_queue_wait_nanos", labels);
    entry.flight_id = flight_->InternWorkflow(spec.name);
    if (options.slo_objective > 0) {
      asobs::SloOptions slo_options;
      slo_options.objective = std::min(options.slo_objective, 1.0);
      slo_options.latency_objective_ms = options.slo_latency_ms;
      entry.slo = std::make_shared<asobs::SloTracker>(slo_options);
      asobs::Labels fast_labels = labels;
      fast_labels.push_back({"window", "fast"});
      asobs::Labels slow_labels = labels;
      slow_labels.push_back({"window", "slow"});
      entry.burn_fast = &registry.GetGauge("alloy_slo_burn_rate", fast_labels);
      entry.burn_slow = &registry.GetGauge("alloy_slo_burn_rate", slow_labels);
    }
    entry.snapshot_creates =
        &registry.GetCounter("alloy_visor_snapshot_creates_total", labels);
    entry.snapshot_clones =
        &registry.GetCounter("alloy_visor_snapshot_clones_total", labels);
    entry.snapshot_invalidations = &registry.GetCounter(
        "alloy_visor_snapshot_invalidations_total", labels);
    entry.snapshot_fallbacks = &registry.GetCounter(
        "alloy_visor_snapshot_fallback_boots_total", labels);
    entry.snapshot_clone_hist =
        &registry.GetHistogram("alloy_visor_snapshot_clone_nanos", labels);
  }
  // The fan-out is known from the spec; the module set is learned from the
  // first completed invocation (see Invoke).
  entry.warmup->stage_workers = Orchestrator::MaxStageFanout(spec);
  WfdPoolOptions pool_options;
  pool_options.capacity = options.pool_size;
  pool_options.min_warm = std::min(options.min_warm, options.pool_size);
  pool_options.idle_ttl_ms = options.idle_ttl_ms;
  pool_options.extra_labels = ShardLabels();
  pool_options.log_shard = shard_.index;
  if (pool_options.capacity > 0 &&
      (pool_options.min_warm > 0 || pool_options.idle_ttl_ms > 0)) {
    // The warmer cold-starts WFDs itself; those boots carry no invocation
    // trace (there is none yet) and count as prewarms, not misses. Captures
    // the WarmupProfile (not `this`): the warmer may outlive the
    // registration, and the profile has its own lock.
    WfdOptions wfd_options = options.wfd;
    wfd_options.trace = nullptr;
    wfd_options.trace_parent = 0;
    pool_options.factory =
        [wfd_options, warmup = entry.warmup, snapcell = entry.snapshot,
         clones = entry.snapshot_clones, fallbacks = entry.snapshot_fallbacks,
         clone_hist = entry.snapshot_clone_hist]()
        -> asbase::Result<std::unique_ptr<Wfd>> {
      // Primary path (DESIGN.md §14): clone-boot from the snapshot template
      // when one exists — the pre-warmed WFD arrives hot for O(µs) instead
      // of a full boot + module replay. Counter pointers are registry-owned
      // (immortal), safe to hold in a closure that outlives the Entry.
      if (std::shared_ptr<const WfdSnapshot> snap = snapcell->Get()) {
        auto clone_or = Wfd::CloneFromSnapshot(wfd_options, std::move(snap));
        if (clone_or.ok()) {
          clones->Add(1);
          clone_hist->Record((*clone_or)->creation_nanos());
          return clone_or;
        }
        AS_LOG(kWarn) << "snapshot clone-boot failed ("
                      << clone_or.status().ToString()
                      << "); falling back to full boot";
      }
      fallbacks->Add(1);
      AS_ASSIGN_OR_RETURN(std::unique_ptr<Wfd> wfd,
                          Wfd::Create(wfd_options));
      std::vector<ModuleKind> modules;
      size_t workers = 0;
      {
        std::lock_guard<std::mutex> lock(warmup->mutex);
        modules = warmup->modules;
        workers = warmup->stage_workers;
      }
      // Replay what real runs touched so the pre-warmed WFD is hot, not
      // just booted. Best-effort: a module that fails to load here will be
      // retried (and properly surfaced) by the invocation that needs it.
      for (ModuleKind kind : modules) {
        asbase::Status loaded = wfd->libos().EnsureLoaded(kind);
        if (!loaded.ok()) {
          AS_LOG(kWarn) << "pre-warm module load failed ("
                        << loaded.ToString() << ")";
        }
      }
      if (workers > 0) {
        wfd->EnsureStageWorkers(workers);
      }
      return wfd;
    };
  }
  entry.pool = std::make_shared<WfdPool>(spec.name, std::move(pool_options));
  entry.options = std::move(options);
  asobs::Counter* invalidations = entry.snapshot_invalidations;
  std::shared_ptr<WfdPool> old_pool;
  std::shared_ptr<SnapshotCell> old_cell;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Overwrite drops the previous entry — including its pool, whose warm
    // WFDs were built from the old WfdOptions and must not serve the new
    // registration. In-flight invocations keep the old pool alive via
    // shared_ptr until they finish.
    auto it = workflows_.find(spec.name);
    if (it != workflows_.end()) {
      old_pool = it->second.pool;
      old_cell = it->second.snapshot;
    }
    workflows_[spec.name] = std::move(entry);
    // A fresh registration supersedes any migration tombstone: requests for
    // this name belong here again, not wherever it moved to last time.
    migrated_out_.erase(spec.name);
  }
  // Requests queued against the old registration re-evaluate (their ticket
  // vanished with the old Entry).
  admission_cv_.notify_all();
  // Re-registration invalidates the old snapshot template: its images were
  // built from the old code/options and must not clone-boot the new
  // registration. The old cell may still be referenced by the orphaned
  // pool's factory; dropping the snapshot makes that factory fall back to a
  // full boot until the pool shuts down.
  if (old_cell != nullptr && old_cell->Invalidate()) {
    invalidations->Add(1);
  }
  if (old_pool != nullptr) {
    // Stop the orphan's warmer now (it joins a thread — never under mutex_)
    // so it does not keep booting WFDs nobody will lease.
    old_pool->Shutdown();
  }
}

bool AsVisor::UnregisterWorkflow(const std::string& workflow_name) {
  std::shared_ptr<WfdPool> old_pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return false;
    }
    old_pool = it->second.pool;
    workflows_.erase(it);
  }
  // Queued admissions for this workflow wake, find their ticket gone, and
  // unwind with NotFound.
  admission_cv_.notify_all();
  if (old_pool != nullptr) {
    old_pool->Shutdown();
  }
  return true;
}

// ---------------------------------------------- live migration (DESIGN §12)

asbase::Result<AsVisor::WorkflowRegistration> AsVisor::GetRegistration(
    const std::string& workflow_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = workflows_.find(workflow_name);
  if (it == workflows_.end()) {
    return asbase::NotFound("no workflow named '" + workflow_name + "'");
  }
  WorkflowRegistration registration;
  registration.spec = it->second.spec;
  registration.options = it->second.options;
  return registration;
}

std::shared_ptr<WfdPool> AsVisor::MigrateOut(const std::string& workflow_name) {
  std::shared_ptr<WfdPool> old_pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return nullptr;
    }
    old_pool = it->second.pool;
    workflows_.erase(it);
    const int64_t now = asbase::MonoNanos();
    migrated_out_[workflow_name] = now;
    // Lazy prune: the map only grows by one entry per migration, so sweeping
    // it here keeps it bounded without a timer.
    for (auto tomb = migrated_out_.begin(); tomb != migrated_out_.end();) {
      if (now - tomb->second > kMigrationTombstoneNanos) {
        tomb = migrated_out_.erase(tomb);
      } else {
        ++tomb;
      }
    }
  }
  // Queued waiters wake, find the tombstone, and unwind as *migrated* —
  // the router re-dispatches them to the new owner (queue handoff).
  admission_cv_.notify_all();
  return old_pool;
}

void AsVisor::AdoptWarmWfds(const std::string& workflow_name,
                            std::vector<std::unique_ptr<Wfd>> wfds) {
  std::shared_ptr<WfdPool> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it != workflows_.end()) {
      pool = it->second.pool;
    }
  }
  if (pool == nullptr) {
    // Raced with an unregister: the WFDs die here (vector destructor).
    return;
  }
  for (std::unique_ptr<Wfd>& wfd : wfds) {
    pool->AdoptWarm(std::move(wfd));
  }
}

AsVisor::ShardLoad AsVisor::LoadSnapshot() const {
  ShardLoad load;
  std::lock_guard<std::mutex> lock(mutex_);
  load.inflight = inflight_global_;
  load.max_inflight = serving_.max_inflight;
  load.workflows.reserve(workflows_.size());
  for (const auto& [name, entry] : workflows_) {
    WorkflowLoad row;
    row.name = name;
    row.inflight = entry.inflight;
    row.queued = entry.waiters.size();
    row.service_ewma_nanos = entry.service_ewma_nanos;
    row.pinned = entry.options.pin_shard >= 0;
    load.queued += row.queued;
    load.workflows.push_back(std::move(row));
  }
  return load;
}

asbase::Status AsVisor::RegisterWorkflowFromJson(const asbase::Json& config) {
  AS_ASSIGN_OR_RETURN(WorkflowSpec spec, WorkflowSpec::FromJson(config));
  WorkflowOptions options;
  const asbase::Json& opts = config["options"];
  if (opts.is_object()) {
    options.wfd.use_ramfs = opts["ramfs"].as_bool(false);
    options.wfd.on_demand = !opts["load_all"].as_bool(false);
    options.wfd.reference_passing = opts["reference_passing"].as_bool(true);
    options.wfd.inter_function_isolation =
        opts["inter_function_isolation"].as_bool(false);
    if (opts["heap_mb"].is_number()) {
      options.wfd.heap_bytes =
          static_cast<size_t>(opts["heap_mb"].as_int()) << 20;
    }
    if (opts["disk_mb"].is_number()) {
      options.wfd.disk_blocks =
          static_cast<uint64_t>(opts["disk_mb"].as_int()) * 2048;
    }
    if (opts["pool_size"].is_number()) {
      options.pool_size = static_cast<size_t>(opts["pool_size"].as_int());
    }
    if (opts["min_warm"].is_number()) {
      const int64_t value = opts["min_warm"].as_int();
      if (value < 0) {
        return asbase::InvalidArgument("min_warm must be >= 0");
      }
      options.min_warm = static_cast<size_t>(value);
    }
    if (opts["idle_ttl_ms"].is_number()) {
      const int64_t value = opts["idle_ttl_ms"].as_int();
      if (value < 0) {
        return asbase::InvalidArgument("idle_ttl_ms must be >= 0");
      }
      options.idle_ttl_ms = value;
    }
    if (opts["queue_capacity"].is_number()) {
      const int64_t value = opts["queue_capacity"].as_int();
      if (value < 0) {
        return asbase::InvalidArgument("queue_capacity must be >= 0");
      }
      options.queue_capacity = static_cast<size_t>(value);
    }
    if (opts["queueing_budget_ms"].is_number()) {
      const int64_t value = opts["queueing_budget_ms"].as_int();
      if (value < 0) {
        return asbase::InvalidArgument("queueing_budget_ms must be >= 0");
      }
      options.queueing_budget_ms = value;
    }
    if (opts["max_concurrency"].is_number()) {
      const int64_t value = opts["max_concurrency"].as_int();
      if (value < 1) {
        return asbase::InvalidArgument("max_concurrency must be >= 1");
      }
      options.max_concurrency = static_cast<int>(value);
    }
    if (opts["timeout_ms"].is_number()) {
      const int64_t value = opts["timeout_ms"].as_int();
      if (value < 0) {
        return asbase::InvalidArgument("timeout_ms must be >= 0");
      }
      options.timeout_ms = value;
    }
    if (opts["weight"].is_number()) {
      const double value = opts["weight"].as_double();
      if (!(value > 0)) {
        return asbase::InvalidArgument("weight must be > 0");
      }
      options.weight = value;
    }
    if (opts["pin_shard"].is_number()) {
      const int64_t value = opts["pin_shard"].as_int();
      if (value < -1) {
        return asbase::InvalidArgument("pin_shard must be >= -1");
      }
      options.pin_shard = static_cast<int>(value);
    }
    if (opts["slo_objective"].is_number()) {
      const double value = opts["slo_objective"].as_double();
      if (value < 0 || value > 1) {
        return asbase::InvalidArgument("slo_objective must be in [0, 1]");
      }
      options.slo_objective = value;
    }
    if (opts["slo_latency_ms"].is_number()) {
      const int64_t value = opts["slo_latency_ms"].as_int();
      if (value < 0) {
        return asbase::InvalidArgument("slo_latency_ms must be >= 0");
      }
      options.slo_latency_ms = value;
    }
  }
  options.wfd.name = spec.name;
  RegisterWorkflow(spec, std::move(options));
  return asbase::OkStatus();
}

asbase::Result<InvokeResult> AsVisor::Invoke(const std::string& workflow_name,
                                             const asbase::Json& params) {
  return Invoke(workflow_name, params, InvokeOptions{});
}

asbase::Result<InvokeResult> AsVisor::Invoke(
    const std::string& workflow_name, const asbase::Json& params,
    const InvokeOptions& invoke_options) {
  WorkflowSpec spec;
  WfdOptions wfd_options;
  std::shared_ptr<WfdPool> pool;
  int64_t timeout_ms = 0;
  asobs::Counter* invocations = nullptr;
  asobs::Counter* failures = nullptr;
  asobs::Counter* timeouts = nullptr;
  asobs::LatencyHistogram* invoke_hist = nullptr;
  uint32_t flight_id = 0;
  std::shared_ptr<SnapshotCell> snapcell;
  bool snapshot_enabled = true;
  size_t snapshot_max_bytes = 0;
  asobs::Counter* snapshot_creates = nullptr;
  asobs::Counter* snapshot_clones = nullptr;
  asobs::Counter* snapshot_invalidations = nullptr;
  asobs::Counter* snapshot_fallbacks = nullptr;
  asobs::LatencyHistogram* snapshot_clone_hist = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return asbase::NotFound("no workflow named '" + workflow_name + "'");
    }
    spec = it->second.spec;
    wfd_options = it->second.options.wfd;
    pool = it->second.pool;
    timeout_ms = it->second.options.timeout_ms;
    // Registry series cached at registration (see Entry): the hot path must
    // not take the process-global registry mutex, which every shard shares.
    invocations = it->second.invocations;
    failures = it->second.failures;
    timeouts = it->second.timeouts;
    invoke_hist = it->second.invoke_hist;
    flight_id = it->second.flight_id;
    snapcell = it->second.snapshot;
    snapshot_enabled = it->second.snapshot_enabled;
    snapshot_max_bytes = it->second.snapshot_max_bytes;
    snapshot_creates = it->second.snapshot_creates;
    snapshot_clones = it->second.snapshot_clones;
    snapshot_invalidations = it->second.snapshot_invalidations;
    snapshot_fallbacks = it->second.snapshot_fallbacks;
    snapshot_clone_hist = it->second.snapshot_clone_hist;
  }

  // Everything logged while this invocation runs on this thread carries its
  // shard + workflow.
  asbase::ScopedLogContext log_context(shard_.index, workflow_name);

  const int64_t received_at = asbase::MonoNanos();
  const int64_t deadline_nanos =
      timeout_ms > 0 ? received_at + timeout_ms * 1'000'000 : 0;
  InvokeResult result;

  invocations->Add(1);

  // The trace outlives the WFD (which holds a raw pointer to it) and may
  // then be retained (tail-based, see AccountOutcome) for /trace.
  auto trace = std::make_shared<asobs::Trace>(workflow_name);
  asobs::Span root = trace->StartSpan("invoke", "visor");
  root.SetArg("workflow", workflow_name);
  if (invoke_options.queue_wait_nanos > 0) {
    // The admission wait happened before this trace existed; backfill it as
    // a completed span ending where the invoke span starts.
    trace->RecordSpan("queue_wait", "visor", root.id(),
                      received_at - invoke_options.queue_wait_nanos,
                      invoke_options.queue_wait_nanos);
  }

  // The invocation's flight record, stamped as phases complete and
  // deposited on every exit path — including failures, which is where a
  // black box matters most.
  asobs::FlightRecord flight;
  flight.shard = shard_.index;
  flight.start_nanos = received_at;
  flight.queue_wait_nanos = invoke_options.queue_wait_nanos;

  auto fail = [&](asbase::Status status) {
    failures->Add(1);
    asobs::FlightOutcome outcome = asobs::FlightOutcome::kError;
    if (status.code() == asbase::ErrorCode::kDeadlineExceeded) {
      timeouts->Add(1);
      outcome = asobs::FlightOutcome::kTimeout;
    }
    // Close the span tree so the retained trace is complete.
    root.SetArg("outcome", asobs::FlightOutcomeName(outcome));
    root.End();
    flight.outcome = outcome;
    flight.end_nanos = asbase::MonoNanos();
    flight.total_nanos = flight.end_nanos - received_at;
    EmitFlight(flight_id, flight);
    AccountOutcome(workflow_name, trace, outcome, flight.total_nanos);
    return status;
  };

  // Step 1 (Fig 4): lease a warm WFD or instantiate one for this
  // invocation. On a warm hit cold start is skipped entirely; module loads
  // are accounted as a delta so only *new* loads count against this run.
  const int64_t lease_start = asbase::MonoNanos();
  std::unique_ptr<Wfd> wfd = pool->TryAcquireWarm();
  // The lease counts toward the pool's warm target until it ends: Park ends
  // it on the success path, this guard covers every path that destroys the
  // WFD instead (create/run/reset failure, pooling disabled).
  struct LeaseEnd {
    WfdPool* pool;
    bool armed = true;
    ~LeaseEnd() {
      if (armed) {
        pool->AbandonLease();
      }
    }
  } lease_end{pool.get()};
  result.warm_start = wfd != nullptr;
  flight.warm_start = result.warm_start;
  int64_t loads_before = 0;
  if (result.warm_start) {
    wfd->SetTrace(trace.get(), root.id());
    loads_before = wfd->libos().TotalLoadNanos();
    root.SetArg("start", "warm");
  } else {
    wfd_options.trace = trace.get();
    wfd_options.trace_parent = root.id();
    // Miss path, primary: clone-boot from the snapshot template (DESIGN.md
    // §14) — O(µs) where a full boot is ~ms. Falls through to Create on any
    // clone failure (geometry drift, mmap failure) or when no template has
    // been captured yet.
    std::shared_ptr<const WfdSnapshot> snap =
        snapcell != nullptr ? snapcell->Get() : nullptr;
    if (snap != nullptr) {
      asobs::Span clone_span =
          trace->StartSpan("wfd_clone", "visor", root.id());
      auto clone_or = Wfd::CloneFromSnapshot(wfd_options, std::move(snap));
      clone_span.End();
      if (clone_or.ok()) {
        wfd = std::move(*clone_or);
        result.wfd_create_nanos = wfd->creation_nanos();
        result.clone_start = true;
        snapshot_clones->Add(1);
        snapshot_clone_hist->Record(result.wfd_create_nanos);
        root.SetArg("start", "clone");
      } else {
        AS_LOG(kWarn) << "snapshot clone-boot failed ("
                      << clone_or.status().ToString()
                      << "); falling back to full boot";
      }
    }
    if (wfd == nullptr) {
      asobs::Span create_span =
          trace->StartSpan("wfd_create", "visor", root.id());
      auto wfd_or = Wfd::Create(wfd_options);
      create_span.End();
      if (!wfd_or.ok()) {
        flight.lease_nanos = asbase::MonoNanos() - lease_start;
        return fail(wfd_or.status());
      }
      wfd = std::move(*wfd_or);
      result.wfd_create_nanos = wfd->creation_nanos();
      snapshot_fallbacks->Add(1);
      root.SetArg("start", "cold");
    }
  }
  // Lease phase: warm pop, or the cold start the miss forced.
  flight.lease_nanos = asbase::MonoNanos() - lease_start;
  pool->RecordLease(flight.lease_nanos);

  // Steps 2-6: run the workflow; modules load on demand inside. The
  // deadline is enforced cooperatively at stage barriers.
  Orchestrator orchestrator(wfd.get());
  Orchestrator::RunOptions run_options;
  run_options.deadline_nanos = deadline_nanos;
  const int64_t exec_start = asbase::MonoNanos();
  auto run_or = orchestrator.Run(spec, params, run_options);
  flight.exec_nanos = asbase::MonoNanos() - exec_start;
  flight.module_load_nanos = wfd->libos().TotalLoadNanos() - loads_before;
  if (!run_or.ok()) {
    // A failed (or timed-out) run leaves the WFD in an unknown state:
    // destroy it — never re-pool — so the next invocation cold-starts
    // clean. `wfd` going out of scope does the reclaim.
    return fail(run_or.status());
  }
  result.run = std::move(*run_or);
  flight.net_nanos = result.run.phases.transfer_nanos;
  flight.stages = static_cast<uint32_t>(std::min(
      result.run.stage_nanos.size(), asobs::FlightRecord::kMaxStages));
  for (uint32_t i = 0; i < flight.stages; ++i) {
    flight.stage_nanos[i] = result.run.stage_nanos[i];
  }

  result.module_load_nanos = wfd->libos().TotalLoadNanos() - loads_before;
  result.cold_start_nanos = result.wfd_create_nanos + result.module_load_nanos;
  result.modules_loaded = wfd->libos().LoadedModules();
  result.resident_bytes = wfd->ResidentBytes();

  // Step 7: return the WFD to the pool (reset + park) or destroy it and
  // reclaim resources. Explicit here so the root span (and
  // end_to_end_nanos) covers reclaim, and so no code touches the trace
  // through the WFD's pointer after the span set is finalized.
  const int64_t reset_start = asbase::MonoNanos();
  if (pool->capacity() > 0) {
    asobs::Span reset_span = trace->StartSpan("pool_reset", "visor", root.id());
    asbase::Status reset = wfd->Reset();
    reset_span.End();
    if (reset.ok()) {
      wfd->SetTrace(nullptr, 0);
      // First successful boot+invoke+reset freezes the snapshot template
      // (DESIGN.md §14). Post-reset so the image holds no per-invocation
      // state; pre-park so the WFD is still exclusively ours. The cell
      // admits exactly one capture attempt, so steady state pays only a
      // CaptureWorthTrying() mutex peek.
      if (snapshot_enabled && snapcell != nullptr &&
          !wfd->cloned_from_snapshot() && snapcell->CaptureWorthTrying()) {
        asobs::Span snap_span =
            trace->StartSpan("snapshot_capture", "visor", root.id());
        MaybeCaptureSnapshot(snapcell, *wfd, snapshot_max_bytes,
                             snapshot_creates);
        snap_span.End();
      }
      pool->Park(std::move(wfd));
      lease_end.armed = false;
    } else {
      AS_LOG(kWarn) << "WFD reset for '" << workflow_name
                    << "' failed (" << reset.ToString() << "); destroying";
      // A WFD that cannot reset throws doubt on the template it may have
      // been cloned from (e.g. leaked slots baked into the image): drop the
      // snapshot so the next boot rebuilds from scratch.
      if (snapcell != nullptr && snapcell->Invalidate()) {
        snapshot_invalidations->Add(1);
      }
      wfd.reset();
    }
  } else {
    // pool_size == 0 cold-starts every invocation — the configuration with
    // the most to gain from a template. Reset + capture once even though
    // this WFD is about to be destroyed, so every later miss clone-boots.
    if (snapshot_enabled && snapcell != nullptr &&
        !wfd->cloned_from_snapshot() && snapcell->CaptureWorthTrying() &&
        wfd->Reset().ok()) {
      asobs::Span snap_span =
          trace->StartSpan("snapshot_capture", "visor", root.id());
      MaybeCaptureSnapshot(snapcell, *wfd, snapshot_max_bytes,
                           snapshot_creates);
      snap_span.End();
    }
    wfd.reset();
  }
  flight.reset_nanos = asbase::MonoNanos() - reset_start;
  result.end_to_end_nanos = asbase::MonoNanos() - received_at;
  root.End();

  invoke_hist->Record(result.end_to_end_nanos);
  result.trace = trace;
  result.span_summary = SummarizeTrace(*trace);

  flight.outcome = asobs::FlightOutcome::kOk;
  flight.end_nanos = received_at + result.end_to_end_nanos;
  flight.total_nanos = result.end_to_end_nanos;
  EmitFlight(flight_id, flight);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it != workflows_.end()) {
      it->second.latency.Record(result.end_to_end_nanos);
      // Service time feeding the admission predictor: execution only (the
      // queue wait is the quantity being predicted, not part of service).
      const double sample = static_cast<double>(result.end_to_end_nanos);
      Entry& entry = it->second;
      entry.service_ewma_nanos =
          entry.service_ewma_nanos == 0
              ? sample
              : kServiceAlpha * sample +
                    (1.0 - kServiceAlpha) * entry.service_ewma_nanos;
      if (it->second.warmup != nullptr) {
        // Teach the pool warmer what this workflow actually loads, so the
        // next pre-warmed WFD arrives with these modules already up.
        // (Lock order: mutex_ then the profile lock; the factory takes only
        // the profile lock, so there is no inversion.)
        std::lock_guard<std::mutex> warmup_lock(it->second.warmup->mutex);
        it->second.warmup->modules = result.modules_loaded;
      }
    }
  }
  // Tail-based retention + SLO accounting. A fast success is usually NOT
  // retained (threshold > 0); the trace still rode along in `result` for
  // the caller.
  AccountOutcome(workflow_name, trace, asobs::FlightOutcome::kOk,
                 result.end_to_end_nanos);
  return result;
}

void AsVisor::MaybeCaptureSnapshot(
    const std::shared_ptr<SnapshotCell>& cell, Wfd& wfd,
    size_t max_image_bytes, asobs::Counter* creates) {
  if (!cell->TryBeginCapture()) {
    return;  // lost the race to a concurrent invocation, or already done
  }
  auto snapshot_or = wfd.CaptureSnapshot(max_image_bytes);
  if (snapshot_or.ok()) {
    cell->EndCapture(std::move(*snapshot_or));
    creates->Add(1);
  } else {
    // Capture failure marks the cell dead: a workflow whose state cannot
    // snapshot (ramfs, external disk, oversized image, pinned buffers)
    // should not retry — and pay for — the capture on every invocation.
    AS_LOG(kInfo) << "snapshot capture declined ("
                  << snapshot_or.status().ToString()
                  << "); workflow will keep full-boot cold starts";
    cell->EndCapture(nullptr);
  }
}

asbase::Result<InvokeResult> AsVisor::InvokeFromConfig(
    const std::string& config_json, const asbase::Json& params) {
  AS_ASSIGN_OR_RETURN(asbase::Json config, asbase::Json::Parse(config_json));
  AS_RETURN_IF_ERROR(RegisterWorkflowFromJson(config));
  return Invoke(config["name"].as_string(), params);
}

// ------------------------------- flight recorder / tail retention / SLO

void AsVisor::EmitFlight(uint32_t workflow_id,
                         const asobs::FlightRecord& record) {
  if (!flight_->enabled()) {
    return;
  }
  if (flight_->Record(workflow_id, record)) {
    flight_records_->Add(1);
  } else {
    flight_dropped_->Add(1);
  }
}

void AsVisor::AccountOutcome(const std::string& workflow_name,
                             std::shared_ptr<const asobs::Trace> trace,
                             asobs::FlightOutcome outcome,
                             int64_t total_nanos) {
  const int64_t now = asbase::MonoNanos();
  std::optional<BlackBoxRequest> blackbox;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return;  // unregistered while the invocation ran
    }
    Entry& entry = it->second;

    // Tail-based trace retention: keep the full span tree only for
    // invocations worth debugging — failures, timeouts, or runs over the
    // latency threshold. threshold 0 retains everything (PR 1 behavior).
    if (trace != nullptr && trace_ring_ > 0) {
      const bool retain =
          outcome != asobs::FlightOutcome::kOk || trace_threshold_ms_ == 0 ||
          total_nanos > trace_threshold_ms_ * 1'000'000;
      if (retain) {
        entry.traces.push_back(std::move(trace));
        while (entry.traces.size() > trace_ring_) {
          entry.traces.pop_front();
        }
        traces_retained_->Add(1);
      }
    }

    // SLO accounting + burn gauges; on a trigger, collect the queue/pool
    // snapshot under the lock and write the black box after it drops.
    if (entry.slo != nullptr) {
      const int64_t latency_ms = entry.slo->options().latency_objective_ms;
      const bool good =
          outcome == asobs::FlightOutcome::kOk &&
          (latency_ms == 0 || total_nanos <= latency_ms * 1'000'000);
      const bool timeout = outcome == asobs::FlightOutcome::kTimeout;
      const asobs::SloTracker::Verdict verdict =
          entry.slo->Record(good, timeout, now);
      entry.burn_fast->Set(BurnMilli(verdict.fast_burn));
      entry.burn_slow->Set(BurnMilli(verdict.slow_burn));
      if (verdict.trigger) {
        BlackBoxRequest request;
        request.reason = verdict.reason;
        request.workflow = workflow_name;
        request.fast_burn = verdict.fast_burn;
        request.slow_burn = verdict.slow_burn;
        asbase::Json queues{asbase::JsonArray{}};
        for (const auto& [name, other] : workflows_) {
          asbase::Json row;
          row.Set("workflow", name);
          row.Set("inflight", static_cast<int64_t>(other.inflight));
          row.Set("queued", static_cast<int64_t>(other.waiters.size()));
          row.Set("service_ewma_nanos",
                  static_cast<int64_t>(other.service_ewma_nanos));
          if (other.pool != nullptr) {
            // Lock order: mutex_ then the pool mutex — the pool never
            // calls back into the visor.
            row.Set("warm_wfds",
                    static_cast<int64_t>(other.pool->warm_count()));
            row.Set("pool_target_warm",
                    static_cast<int64_t>(other.pool->target_warm()));
          }
          queues.Append(std::move(row));
        }
        request.queues = std::move(queues);
        blackbox = std::move(request);
      }
    }
  }
  if (blackbox.has_value()) {
    WriteBlackBox(*blackbox);
  }
}

void AsVisor::WriteBlackBox(const BlackBoxRequest& request) {
  const uint64_t seq = blackbox_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string path =
      blackbox_dir_ + "/blackbox_shard" +
      std::to_string(std::max(shard_.index, 0)) + "_" +
      std::to_string(asbase::WallMicros()) + "_" + std::to_string(seq) +
      ".json";
  asbase::Json doc;
  doc.Set("reason", request.reason);
  doc.Set("workflow", request.workflow);
  doc.Set("shard", static_cast<int64_t>(shard_.index));
  doc.Set("wall_micros", asbase::WallMicros());
  doc.Set("fast_burn_milli", BurnMilli(request.fast_burn));
  doc.Set("slow_burn_milli", BurnMilli(request.slow_burn));
  doc.Set("queues", request.queues);
  doc.Set("flight", asobs::FlightReportJson(flight_->Snapshot()));
  // Recent control-plane actions: a reslice or migration just before the
  // trigger is usually the first thing the investigation needs to see.
  doc.Set("rebalance_events", asobs::RebalanceLog::Global().ToJson());
  std::ofstream out(path);
  if (!out) {
    AS_LOG(kWarn) << "black box write failed: cannot open " << path;
    return;
  }
  out << doc.Dump(2) << "\n";
  out.close();
  blackbox_counter_->Add(1);
  AS_LOG(kWarn) << "SLO trigger (" << request.reason << ") for '"
                << request.workflow << "': black box written to " << path;
}

// ------------------------------------------------------ admission control

void AsVisor::ReleaseAdmission(const std::string& workflow_name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_global_ > 0) {
      --inflight_global_;
    }
    auto it = workflows_.find(workflow_name);
    if (it != workflows_.end() && it->second.inflight > 0) {
      --it->second.inflight;
    }
  }
  inflight_gauge_->Add(-1);
  // A slot freed: the head of this workflow's queue (if any) can admit.
  admission_cv_.notify_all();
}

int64_t AsVisor::PredictedWaitNanosLocked(const Entry& entry) const {
  if (entry.service_ewma_nanos <= 0) {
    return 0;  // no sample yet — optimistically admit
  }
  // A new arrival runs after everyone already queued; with max_concurrency
  // servers draining the queue, expected wait ≈ position × service / c.
  const double position = static_cast<double>(entry.waiters.size()) + 1.0;
  const double concurrency =
      static_cast<double>(std::max(entry.options.max_concurrency, 1));
  return static_cast<int64_t>(position * entry.service_ewma_nanos /
                              concurrency);
}

namespace {

bool EligibleWaiter(const AsVisor::WorkflowOptions& options, int inflight,
                    bool has_waiters) {
  return has_waiters && inflight < options.max_concurrency;
}

}  // namespace

std::string AsVisor::NextWeightedWorkflowLocked() const {
  // Pass 1: the minimum number of whole DRR rounds until some eligible
  // workflow's deficit reaches 1 (0 when someone already has credit).
  double min_rounds = -1;
  for (const auto& [name, entry] : workflows_) {
    if (!EligibleWaiter(entry.options, entry.inflight,
                        !entry.waiters.empty())) {
      continue;
    }
    const double rounds =
        entry.deficit >= 1.0
            ? 0.0
            : std::ceil((1.0 - entry.deficit) / entry.options.weight);
    if (min_rounds < 0 || rounds < min_rounds) {
      min_rounds = rounds;
    }
  }
  if (min_rounds < 0) {
    return "";  // nobody eligible is queued
  }
  // Pass 2: after advancing everyone by min_rounds, the highest deficit
  // wins; ties go to the smallest name (map order + strict >).
  std::string winner;
  double best = 0;
  for (const auto& [name, entry] : workflows_) {
    if (!EligibleWaiter(entry.options, entry.inflight,
                        !entry.waiters.empty())) {
      continue;
    }
    const double credited = entry.deficit + min_rounds * entry.options.weight;
    if (credited >= 1.0 - 1e-9 && (winner.empty() || credited > best)) {
      winner = name;
      best = credited;
    }
  }
  return winner;
}

void AsVisor::ChargeGrantLocked(const std::string& winner) {
  double min_rounds = -1;
  for (const auto& [name, entry] : workflows_) {
    if (!EligibleWaiter(entry.options, entry.inflight,
                        !entry.waiters.empty())) {
      continue;
    }
    const double rounds =
        entry.deficit >= 1.0
            ? 0.0
            : std::ceil((1.0 - entry.deficit) / entry.options.weight);
    if (min_rounds < 0 || rounds < min_rounds) {
      min_rounds = rounds;
    }
  }
  if (min_rounds < 0) {
    return;
  }
  for (auto& [name, entry] : workflows_) {
    if (!EligibleWaiter(entry.options, entry.inflight,
                        !entry.waiters.empty())) {
      continue;
    }
    const double weight = entry.options.weight;
    // Cap banked credit so a long-uncontested workflow cannot starve
    // everyone for many grants once contention returns.
    entry.deficit = std::min(entry.deficit + min_rounds * weight,
                             std::max(1.0, weight) + weight);
  }
  auto it = workflows_.find(winner);
  if (it != workflows_.end()) {
    it->second.deficit -= 1.0;
  }
}

asbase::Status AsVisor::AdmitBlocking(const std::string& workflow_name,
                                      int64_t budget_ms_override,
                                      int64_t* queue_wait_nanos,
                                      int64_t* predicted_wait_nanos,
                                      bool* migrated) {
  *queue_wait_nanos = 0;
  *predicted_wait_nanos = 0;
  *migrated = false;
  uint64_t ticket = 0;
  const int64_t enqueued_at = asbase::MonoNanos();
  asobs::Gauge* queued_gauge = nullptr;
  asobs::LatencyHistogram* queue_wait_hist = nullptr;
  // Live iff `workflow_name` has a fresh migration tombstone (call under
  // mutex_): the workflow is not gone, it moved shards.
  auto migrated_away = [&]() {
    auto tomb = migrated_out_.find(workflow_name);
    return tomb != migrated_out_.end() &&
           asbase::MonoNanos() - tomb->second <= kMigrationTombstoneNanos;
  };
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      if (migrated_away()) {
        // Raced the route flip: the workflow lives on another shard now.
        *migrated = true;
        return asbase::Unavailable("workflow '" + workflow_name +
                                   "' migrated to another shard");
      }
      return asbase::NotFound("no workflow named '" + workflow_name + "'");
    }
    Entry& entry = it->second;
    // Same registry series even if the entry is replaced while we wait (the
    // registry dedupes by name+labels), so the gauge pointer stays valid.
    queued_gauge = entry.queued_gauge;
    queue_wait_hist = entry.queue_wait_hist;
    const bool slot_free =
        entry.inflight < entry.options.max_concurrency &&
        inflight_global_ < serving_.max_inflight;
    // Fast path: admit only when no other workflow has a runnable waiter —
    // a fresh arrival must not leapfrog a co-tenant already queued for a
    // global slot.
    if (slot_free && entry.waiters.empty() &&
        NextWeightedWorkflowLocked().empty()) {
      ++inflight_global_;
      ++entry.inflight;
      inflight_gauge_->Add(1);
      return asbase::OkStatus();
    }
    // Saturated. Queue only if allowed, not full, and the predicted wait
    // fits the budget; otherwise reject and report the prediction so the
    // caller can compute Retry-After.
    *predicted_wait_nanos = PredictedWaitNanosLocked(entry);
    if (entry.options.queue_capacity == 0) {
      return asbase::ResourceExhausted(
          "workflow '" + workflow_name + "' at max_concurrency (" +
          std::to_string(entry.options.max_concurrency) + ")");
    }
    if (entry.waiters.size() >= entry.options.queue_capacity) {
      return asbase::ResourceExhausted(
          "workflow '" + workflow_name + "' admission queue full (" +
          std::to_string(entry.options.queue_capacity) + ")");
    }
    const int64_t budget_ms = budget_ms_override >= 0
                                  ? budget_ms_override
                                  : entry.options.queueing_budget_ms;
    if (*predicted_wait_nanos > budget_ms * 1'000'000) {
      return asbase::ResourceExhausted(
          "predicted queue wait " +
          std::to_string(*predicted_wait_nanos / 1'000'000) +
          "ms exceeds budget " + std::to_string(budget_ms) + "ms for '" +
          workflow_name + "'");
    }
    ticket = entry.next_ticket++;
    entry.waiters.push_back(ticket);
    queued_gauge->Add(1);

    // Wait for our turn: front of the queue AND a free slot. Re-find the
    // entry each wake — a re-registration replaces it (our ticket vanishes
    // with the old Entry) and draining aborts the wait.
    admission_cv_.wait(lock, [&] {
      if (draining_) {
        return true;
      }
      auto found = workflows_.find(workflow_name);
      if (found == workflows_.end() || found->second.waiters.empty() ||
          std::find(found->second.waiters.begin(),
                    found->second.waiters.end(),
                    ticket) == found->second.waiters.end()) {
        return true;  // entry replaced: give up
      }
      // Front of our workflow's queue, slots free, and it is our
      // workflow's deficit-round-robin turn for the global slot.
      return found->second.waiters.front() == ticket &&
             found->second.inflight < found->second.options.max_concurrency &&
             inflight_global_ < serving_.max_inflight &&
             NextWeightedWorkflowLocked() == workflow_name;
    });
    queued_gauge->Add(-1);
    *queue_wait_nanos = asbase::MonoNanos() - enqueued_at;

    auto found = workflows_.find(workflow_name);
    bool granted = false;
    if (found != workflows_.end()) {
      auto& waiters = found->second.waiters;
      auto pos = std::find(waiters.begin(), waiters.end(), ticket);
      if (pos != waiters.end()) {
        granted = pos == waiters.begin();
        if (granted && !draining_) {
          // DRR bookkeeping happens while our ticket is still queued so the
          // eligible set matches what the selector saw when it picked us.
          ChargeGrantLocked(workflow_name);
        }
        // Remove the ticket on every exit path: a stale ticket abandoned by
        // a drained waiter would keep this workflow "eligible" forever and
        // wedge the round-robin for every co-tenant.
        waiters.erase(pos);
        if (waiters.empty()) {
          // Credit is only meaningful under contention; a drained queue
          // starts from scratch next time.
          found->second.deficit = 0;
        }
      }
    }
    if (draining_) {
      // Also unblock whoever is now at the front.
      lock.unlock();
      admission_cv_.notify_all();
      return asbase::Unavailable("watchdog draining");
    }
    if (!granted) {
      if (migrated_away()) {
        // Queue handoff: our ticket vanished because the workflow migrated
        // mid-wait. *queue_wait_nanos already holds the wait paid here; the
        // router carries it to the new shard so the total stays honest.
        *migrated = true;
        return asbase::Unavailable("workflow '" + workflow_name +
                                   "' migrated while queued");
      }
      return asbase::NotFound("workflow '" + workflow_name +
                              "' re-registered while queued");
    }
    ++inflight_global_;
    ++found->second.inflight;
  }
  inflight_gauge_->Add(1);
  queue_wait_hist->Record(*queue_wait_nanos);
  // Our pop may have moved a new waiter to the front.
  admission_cv_.notify_all();
  return asbase::OkStatus();
}

// --------------------------------------------------------------- watchdog

asbase::Status AsVisor::StartServing(const ServingOptions& serving) {
  if (serving.worker_threads == 0 || serving.max_inflight == 0) {
    return asbase::InvalidArgument(
        "worker_threads and max_inflight must be >= 1");
  }
  if (serving_pool_ != nullptr) {
    return asbase::FailedPrecondition("serving already started");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    serving_ = serving;
    draining_ = false;
    // Tail-retention knobs: 0 / -1 mean "keep the current setting" (env
    // override or the construction default).
    if (serving.trace_ring > 0) {
      trace_ring_ = serving.trace_ring;
    }
    if (serving.trace_threshold_ms >= 0) {
      trace_threshold_ms_ = serving.trace_threshold_ms;
    }
  }
  serving_pool_ = std::make_unique<asbase::ThreadPool>(serving.worker_threads);
  return asbase::OkStatus();
}

void AsVisor::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  admission_cv_.notify_all();
}

void AsVisor::StopServing() {
  BeginDrain();
  if (serving_pool_ != nullptr) {
    serving_pool_->Drain();
    serving_pool_.reset();
  }
}

void AsVisor::ShutdownPools() {
  // Collect under the lock, join outside it (Shutdown joins the warmer
  // thread). Map order makes the teardown sequence deterministic.
  std::vector<std::shared_ptr<WfdPool>> pools;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, entry] : workflows_) {
      if (entry.pool != nullptr) {
        pools.push_back(entry.pool);
      }
    }
  }
  for (const auto& pool : pools) {
    pool->Shutdown();
  }
}

void AsVisor::SetMaxInflight(size_t max_inflight) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    serving_.max_inflight = std::max<size_t>(1, max_inflight);
  }
  // A raised cap may make queued waiters runnable immediately.
  admission_cv_.notify_all();
}

size_t AsVisor::max_inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return serving_.max_inflight;
}

bool AsVisor::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

size_t AsVisor::trace_ring_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_ring_;
}

int64_t AsVisor::trace_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_threshold_ms_;
}

std::vector<std::string> AsVisor::WorkflowNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(workflows_.size());
  for (const auto& [name, entry] : workflows_) {
    names.push_back(name);
  }
  return names;
}

asbase::Status AsVisor::StartWatchdog(uint16_t port) {
  return StartWatchdog(port, ServingOptions{});
}

asbase::Status AsVisor::StartWatchdog(uint16_t port, ServingOptions serving) {
  if (watchdog_ != nullptr) {
    return asbase::FailedPrecondition("watchdog already running");
  }
  AS_RETURN_IF_ERROR(StartServing(serving));
  watchdog_ = std::make_unique<ashttp::HttpServer>(
      [this](const ashttp::HttpRequest& request) {
        ashttp::HttpResponse response;
        if (request.method == "GET" && request.target == "/health") {
          response.body = "ok";
          return response;
        }
        if (request.method == "GET" && request.target == "/healthz") {
          return ServeHealthz();
        }
        if (request.method == "GET" && request.target == "/readyz") {
          return ServeReadyz();
        }
        if (request.method == "GET" && request.target == "/metrics") {
          return ServeMetrics();
        }
        if (request.method == "GET" &&
            request.target.rfind("/trace", 0) == 0) {
          return ServeTrace(request.target);
        }
        if (request.method == "GET" &&
            request.target.rfind("/debug/flight", 0) == 0) {
          return ServeFlight(request.target);
        }
        if (request.method == "GET" &&
            request.target.rfind("/debug/latency", 0) == 0) {
          return ServeLatency(request.target);
        }
        if (request.method == "POST" &&
            request.target.rfind("/invoke/", 0) == 0) {
          return HandleInvoke(request);
        }
        response.status = 404;
        response.reason = "Not Found";
        response.body = "unknown endpoint";
        return response;
      });
  asbase::Status started = watchdog_->Start(port);
  if (!started.ok()) {
    watchdog_.reset();
    StopServing();
  }
  return started;
}

ashttp::HttpResponse AsVisor::HandleInvoke(const ashttp::HttpRequest& request,
                                           int64_t carried_queue_wait_nanos) {
  ashttp::HttpResponse response;
  if (serving_pool_ == nullptr) {
    response.status = 503;
    response.reason = "Service Unavailable";
    response.body = "serving not started";
    return response;
  }
  const std::string name = request.target.substr(std::string("/invoke/").size());
  // Admission decisions (429 lines, drain warnings) carry the shard +
  // workflow; the invocation itself re-establishes the context on its
  // serving-pool worker thread.
  asbase::ScopedLogContext log_context(shard_.index, name);
  asbase::Json params;
  if (!request.body.empty()) {
    auto parsed = asbase::Json::Parse(request.body);
    if (!parsed.ok()) {
      response.status = 400;
      response.reason = "Bad Request";
      response.body = parsed.status().ToString();
      return response;
    }
    params = *parsed;
  }

  // Admission control: admit, queue (when the workflow allows it and the
  // predicted wait fits this request's budget), or reject with a
  // Retry-After computed from that prediction.
  int64_t budget_ms_override = -1;
  auto budget_header = request.headers.find("x-queue-budget-ms");
  if (budget_header != request.headers.end()) {
    budget_ms_override = std::atoll(budget_header->second.c_str());
    if (budget_ms_override < 0) {
      budget_ms_override = -1;
    }
  }
  int64_t queue_wait_nanos = 0;
  int64_t predicted_wait_nanos = 0;
  bool migrated = false;
  asbase::Status admitted = AdmitBlocking(name, budget_ms_override,
                                          &queue_wait_nanos,
                                          &predicted_wait_nanos, &migrated);
  if (!admitted.ok()) {
    if (migrated) {
      // The workflow moved shards (possibly while this request sat in the
      // admission queue). 307 + marker headers: the router re-dispatches to
      // the new owner, carrying the wait already paid; a direct client
      // retries the same URL and the route lands it correctly.
      response.status = 307;
      response.reason = "Temporary Redirect";
      response.headers["location"] = request.target;
      response.headers["x-alloy-migrated"] = "1";
      response.headers["x-alloy-queue-wait-ns"] =
          std::to_string(carried_queue_wait_nanos + queue_wait_nanos);
      response.body = admitted.ToString();
      return response;
    }
    if (admitted.code() == asbase::ErrorCode::kNotFound) {
      response.status = 404;
      response.reason = "Not Found";
      response.body = admitted.ToString();
      return response;
    }
    if (admitted.code() == asbase::ErrorCode::kUnavailable) {
      response.status = 503;
      response.reason = "Service Unavailable";
      response.body = admitted.ToString();
      return response;
    }
    response.status = 429;
    response.reason = "Too Many Requests";
    int retry_after_fallback = 1;
    uint32_t flight_id = 0;
    asobs::Counter* rejections = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      retry_after_fallback = serving_.retry_after_seconds;
      auto it = workflows_.find(name);
      if (it != workflows_.end()) {
        flight_id = it->second.flight_id;
        rejections = it->second.rejections;
      }
    }
    if (rejections != nullptr) {
      rejections->Add(1);
    } else {
      asobs::Registry::Global()
          .GetCounter("alloy_visor_rejections_total", WorkflowLabels(name))
          .Add(1);
    }
    // Rejections leave a flight record too — a 429 storm is exactly the
    // kind of incident the black box must explain. queue_wait carries the
    // predicted wait that drove the rejection.
    asobs::FlightRecord rejected;
    rejected.shard = shard_.index;
    rejected.outcome = asobs::FlightOutcome::kRejected;
    rejected.start_nanos = asbase::MonoNanos();
    rejected.end_nanos = rejected.start_nanos;
    rejected.queue_wait_nanos = predicted_wait_nanos;
    EmitFlight(flight_id, rejected);
    AccountOutcome(name, nullptr, asobs::FlightOutcome::kRejected, 0);
    // Tell the client when a retry is predicted to succeed; fall back to
    // the static knob before any service-time sample exists.
    const int retry_after =
        predicted_wait_nanos > 0
            ? std::max<int>(
                  1, static_cast<int>(
                         std::ceil(static_cast<double>(predicted_wait_nanos) /
                                   1e9)))
            : retry_after_fallback;
    response.headers["retry-after"] = std::to_string(retry_after);
    response.body = admitted.ToString();
    return response;
  }

  // Dispatch onto the serving pool; the connection thread blocks until the
  // invocation completes (the admission caps bound how much work can be
  // queued behind the workers).
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    std::optional<asbase::Result<InvokeResult>> result;
  };
  auto pending = std::make_shared<Pending>();
  const int64_t total_queue_wait_nanos =
      carried_queue_wait_nanos + queue_wait_nanos;
  serving_pool_->Submit([this, name, params, pending, total_queue_wait_nanos] {
    InvokeOptions invoke_options;
    invoke_options.queue_wait_nanos = total_queue_wait_nanos;
    auto invoked = Invoke(name, params, invoke_options);
    {
      std::lock_guard<std::mutex> lock(pending->mutex);
      pending->result.emplace(std::move(invoked));
    }
    pending->cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(pending->mutex);
    pending->cv.wait(lock, [&] { return pending->result.has_value(); });
  }
  ReleaseAdmission(name);

  const asbase::Result<InvokeResult>& invoked = *pending->result;
  if (!invoked.ok()) {
    switch (invoked.status().code()) {
      case asbase::ErrorCode::kNotFound:
        response.status = 404;
        response.reason = "Not Found";
        break;
      case asbase::ErrorCode::kDeadlineExceeded:
        response.status = 504;
        response.reason = "Gateway Timeout";
        break;
      default:
        response.status = 500;
        response.reason = "Error";
    }
    response.body = invoked.status().ToString();
    return response;
  }
  asbase::Json body;
  body.Set("workflow", name);
  body.Set("cold_start_nanos", invoked->cold_start_nanos);
  body.Set("end_to_end_nanos", invoked->end_to_end_nanos);
  body.Set("warm_start", invoked->warm_start);
  body.Set("instances", static_cast<int64_t>(invoked->run.instances_run));
  body.Set("result", invoked->run.result);
  response.headers["content-type"] = "application/json";
  response.body = body.Dump();
  return response;
}

ashttp::HttpResponse AsVisor::ServeMetrics() const {
  ashttp::HttpResponse response;
  response.headers["content-type"] = "text/plain; version=0.0.4";
  response.body = asobs::Registry::Global().RenderPrometheus();
  return response;
}

ashttp::HttpResponse AsVisor::ServeTrace(const std::string& target) const {
  ashttp::HttpResponse response;
  const std::string workflow = QueryParam(target, "workflow");
  std::deque<std::shared_ptr<const asobs::Trace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (workflow.empty()) {
      response.status = 400;
      response.reason = "Bad Request";
      std::string names;
      for (const auto& [name, entry] : workflows_) {
        names += names.empty() ? name : ", " + name;
      }
      response.body = "usage: /trace?workflow=<name>; registered: " + names;
      return response;
    }
    auto it = workflows_.find(workflow);
    if (it == workflows_.end()) {
      response.status = 404;
      response.reason = "Not Found";
      response.body = "no workflow named '" + workflow + "'";
      return response;
    }
    traces = it->second.traces;
  }
  // One Chrome "process" per retained invocation, newest = highest pid.
  asbase::Json events{asbase::JsonArray{}};
  int pid = 1;
  for (const auto& trace : traces) {
    trace->AppendChromeEvents(events.array(), pid++);
  }
  asbase::Json doc;
  doc.Set("displayTimeUnit", "ms");
  doc.Set("traceEvents", std::move(events));
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

ashttp::HttpResponse AsVisor::ServeFlight(const std::string& target) const {
  ashttp::HttpResponse response;
  const std::string workflow = QueryParam(target, "workflow");
  const std::string since = QueryParam(target, "since");
  const int64_t since_nanos = since.empty() ? 0 : std::atoll(since.c_str());
  asbase::Json doc =
      asobs::FlightReportJson(flight_->Snapshot(workflow, since_nanos));
  if (!workflow.empty()) {
    doc.Set("workflow", workflow);
  }
  doc.Set("recorded", static_cast<int64_t>(flight_->recorded()));
  doc.Set("dropped", static_cast<int64_t>(flight_->dropped()));
  doc.Set("capacity", static_cast<int64_t>(flight_->capacity()));
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

ashttp::HttpResponse AsVisor::ServeLatency(const std::string& target) const {
  ashttp::HttpResponse response;
  const std::string workflow = QueryParam(target, "workflow");
  asbase::Json doc =
      asobs::LatencyAttributionJson(flight_->Snapshot(workflow));
  if (!workflow.empty()) {
    doc.Set("workflow", workflow);
  }
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

ashttp::HttpResponse AsVisor::ServeHealthz() const {
  ashttp::HttpResponse response;
  response.body = "ok";
  return response;
}

ashttp::HttpResponse AsVisor::ServeReadyz() const {
  ashttp::HttpResponse response;
  if (draining()) {
    response.status = 503;
    response.reason = "Service Unavailable";
    response.body = "draining";
    return response;
  }
  response.body = "ready";
  return response;
}

uint16_t AsVisor::watchdog_port() const {
  return watchdog_ == nullptr ? 0 : watchdog_->port();
}

void AsVisor::StopWatchdog() {
  // Abort queued admissions first: their connection threads sit inside
  // HandleInvoke and the server's Stop() joins them.
  BeginDrain();
  if (watchdog_ != nullptr) {
    // Stop the server first: connection threads block on in-flight
    // invocations, which need the serving pool alive to finish.
    watchdog_->Stop();
    watchdog_.reset();
  }
  StopServing();
}

asbase::Result<asbase::Histogram> AsVisor::LatencyHistogram(
    const std::string& workflow_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = workflows_.find(workflow_name);
  if (it == workflows_.end()) {
    return asbase::NotFound("no workflow named '" + workflow_name + "'");
  }
  return it->second.latency;
}

asbase::Result<size_t> AsVisor::WarmWfdCount(
    const std::string& workflow_name) const {
  std::shared_ptr<WfdPool> pool;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return asbase::NotFound("no workflow named '" + workflow_name + "'");
    }
    pool = it->second.pool;
  }
  return pool->warm_count();
}

}  // namespace alloy
