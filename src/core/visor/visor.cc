#include "src/core/visor/visor.h"

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace alloy {

AsVisor::~AsVisor() { StopWatchdog(); }

void AsVisor::RegisterWorkflow(const WorkflowSpec& spec,
                               WorkflowOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.spec = spec;
  entry.options = std::move(options);
  workflows_[spec.name] = std::move(entry);
}

asbase::Status AsVisor::RegisterWorkflowFromJson(const asbase::Json& config) {
  AS_ASSIGN_OR_RETURN(WorkflowSpec spec, WorkflowSpec::FromJson(config));
  WorkflowOptions options;
  const asbase::Json& opts = config["options"];
  if (opts.is_object()) {
    options.wfd.use_ramfs = opts["ramfs"].as_bool(false);
    options.wfd.on_demand = !opts["load_all"].as_bool(false);
    options.wfd.reference_passing = opts["reference_passing"].as_bool(true);
    options.wfd.inter_function_isolation =
        opts["inter_function_isolation"].as_bool(false);
    if (opts["heap_mb"].is_number()) {
      options.wfd.heap_bytes =
          static_cast<size_t>(opts["heap_mb"].as_int()) << 20;
    }
    if (opts["disk_mb"].is_number()) {
      options.wfd.disk_blocks =
          static_cast<uint64_t>(opts["disk_mb"].as_int()) * 2048;
    }
  }
  options.wfd.name = spec.name;
  RegisterWorkflow(spec, std::move(options));
  return asbase::OkStatus();
}

asbase::Result<InvokeResult> AsVisor::Invoke(const std::string& workflow_name,
                                             const asbase::Json& params) {
  WorkflowSpec spec;
  WfdOptions wfd_options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return asbase::NotFound("no workflow named '" + workflow_name + "'");
    }
    spec = it->second.spec;
    wfd_options = it->second.options.wfd;
  }

  const int64_t received_at = asbase::MonoNanos();
  InvokeResult result;

  // Step 1 (Fig 4): instantiate the WFD for this invocation.
  AS_ASSIGN_OR_RETURN(std::unique_ptr<Wfd> wfd, Wfd::Create(wfd_options));
  result.wfd_create_nanos = wfd->creation_nanos();

  // Steps 2-6: run the workflow; modules load on demand inside.
  Orchestrator orchestrator(wfd.get());
  AS_ASSIGN_OR_RETURN(result.run, orchestrator.Run(spec, params));

  result.module_load_nanos = wfd->libos().TotalLoadNanos();
  result.cold_start_nanos = result.wfd_create_nanos + result.module_load_nanos;
  result.modules_loaded = wfd->libos().LoadedModules();
  result.resident_bytes = wfd->ResidentBytes();
  result.end_to_end_nanos = asbase::MonoNanos() - received_at;

  // Step 7: destroy the WFD and reclaim resources (wfd goes out of scope).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it != workflows_.end()) {
      it->second.latency.Record(result.end_to_end_nanos);
    }
  }
  return result;
}

asbase::Result<InvokeResult> AsVisor::InvokeFromConfig(
    const std::string& config_json, const asbase::Json& params) {
  AS_ASSIGN_OR_RETURN(asbase::Json config, asbase::Json::Parse(config_json));
  AS_RETURN_IF_ERROR(RegisterWorkflowFromJson(config));
  return Invoke(config["name"].as_string(), params);
}

asbase::Status AsVisor::StartWatchdog(uint16_t port) {
  if (watchdog_ != nullptr) {
    return asbase::FailedPrecondition("watchdog already running");
  }
  watchdog_ = std::make_unique<ashttp::HttpServer>(
      [this](const ashttp::HttpRequest& request) {
        ashttp::HttpResponse response;
        if (request.method == "GET" && request.target == "/health") {
          response.body = "ok";
          return response;
        }
        const std::string prefix = "/invoke/";
        if (request.method != "POST" ||
            request.target.rfind(prefix, 0) != 0) {
          response.status = 404;
          response.reason = "Not Found";
          response.body = "unknown endpoint";
          return response;
        }
        const std::string name = request.target.substr(prefix.size());
        asbase::Json params;
        if (!request.body.empty()) {
          auto parsed = asbase::Json::Parse(request.body);
          if (!parsed.ok()) {
            response.status = 400;
            response.reason = "Bad Request";
            response.body = parsed.status().ToString();
            return response;
          }
          params = *parsed;
        }
        auto invoked = Invoke(name, params);
        if (!invoked.ok()) {
          response.status =
              invoked.status().code() == asbase::ErrorCode::kNotFound ? 404
                                                                      : 500;
          response.reason = "Error";
          response.body = invoked.status().ToString();
          return response;
        }
        asbase::Json body;
        body.Set("workflow", name);
        body.Set("cold_start_nanos", invoked->cold_start_nanos);
        body.Set("end_to_end_nanos", invoked->end_to_end_nanos);
        body.Set("instances", static_cast<int64_t>(invoked->run.instances_run));
        body.Set("result", invoked->run.result);
        response.headers["content-type"] = "application/json";
        response.body = body.Dump();
        return response;
      });
  return watchdog_->Start(port);
}

uint16_t AsVisor::watchdog_port() const {
  return watchdog_ == nullptr ? 0 : watchdog_->port();
}

void AsVisor::StopWatchdog() {
  if (watchdog_ != nullptr) {
    watchdog_->Stop();
    watchdog_.reset();
  }
}

asbase::Result<asbase::Histogram> AsVisor::LatencyHistogram(
    const std::string& workflow_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = workflows_.find(workflow_name);
  if (it == workflows_.end()) {
    return asbase::NotFound("no workflow named '" + workflow_name + "'");
  }
  return it->second.latency;
}

}  // namespace alloy
