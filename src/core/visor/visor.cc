#include "src/core/visor/visor.h"

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace alloy {
namespace {

// Query-string value for `key` in an HTTP target ("/trace?workflow=x").
std::string QueryParam(const std::string& target, const std::string& key) {
  const size_t question = target.find('?');
  if (question == std::string::npos) {
    return "";
  }
  std::string query = target.substr(question + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

asbase::Json SummarizeTrace(const asobs::Trace& trace) {
  asbase::Json summary;
  summary.Set("workflow", trace.workflow());
  asbase::Json spans{asbase::JsonArray{}};
  for (const asobs::SpanRecord& record : trace.Spans()) {
    asbase::Json span;
    span.Set("id", static_cast<int64_t>(record.id));
    span.Set("parent", static_cast<int64_t>(record.parent));
    span.Set("name", record.name);
    span.Set("category", record.category);
    span.Set("dur_nanos", record.duration_nanos);
    spans.Append(std::move(span));
  }
  summary.Set("spans", std::move(spans));
  return summary;
}

}  // namespace

AsVisor::~AsVisor() { StopWatchdog(); }

void AsVisor::RegisterWorkflow(const WorkflowSpec& spec,
                               WorkflowOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.spec = spec;
  entry.options = std::move(options);
  workflows_[spec.name] = std::move(entry);
}

asbase::Status AsVisor::RegisterWorkflowFromJson(const asbase::Json& config) {
  AS_ASSIGN_OR_RETURN(WorkflowSpec spec, WorkflowSpec::FromJson(config));
  WorkflowOptions options;
  const asbase::Json& opts = config["options"];
  if (opts.is_object()) {
    options.wfd.use_ramfs = opts["ramfs"].as_bool(false);
    options.wfd.on_demand = !opts["load_all"].as_bool(false);
    options.wfd.reference_passing = opts["reference_passing"].as_bool(true);
    options.wfd.inter_function_isolation =
        opts["inter_function_isolation"].as_bool(false);
    if (opts["heap_mb"].is_number()) {
      options.wfd.heap_bytes =
          static_cast<size_t>(opts["heap_mb"].as_int()) << 20;
    }
    if (opts["disk_mb"].is_number()) {
      options.wfd.disk_blocks =
          static_cast<uint64_t>(opts["disk_mb"].as_int()) * 2048;
    }
  }
  options.wfd.name = spec.name;
  RegisterWorkflow(spec, std::move(options));
  return asbase::OkStatus();
}

asbase::Result<InvokeResult> AsVisor::Invoke(const std::string& workflow_name,
                                             const asbase::Json& params) {
  WorkflowSpec spec;
  WfdOptions wfd_options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it == workflows_.end()) {
      return asbase::NotFound("no workflow named '" + workflow_name + "'");
    }
    spec = it->second.spec;
    wfd_options = it->second.options.wfd;
  }

  const int64_t received_at = asbase::MonoNanos();
  InvokeResult result;

  asobs::Registry& registry = asobs::Registry::Global();
  const asobs::Labels workflow_labels = {{"workflow", workflow_name}};
  registry.GetCounter("alloy_visor_invocations_total", workflow_labels)
      .Add(1);
  auto fail = [&](asbase::Status status) {
    asobs::Registry::Global()
        .GetCounter("alloy_visor_invocation_failures_total",
                    {{"workflow", workflow_name}})
        .Add(1);
    return status;
  };

  // The trace outlives the WFD (which holds a raw pointer to it) and is then
  // retained in the per-workflow ring for /trace.
  auto trace = std::make_shared<asobs::Trace>(workflow_name);
  asobs::Span root = trace->StartSpan("invoke", "visor");
  root.SetArg("workflow", workflow_name);
  wfd_options.trace = trace.get();
  wfd_options.trace_parent = root.id();

  // Step 1 (Fig 4): instantiate the WFD for this invocation.
  asobs::Span create_span = trace->StartSpan("wfd_create", "visor", root.id());
  auto wfd_or = Wfd::Create(wfd_options);
  create_span.End();
  if (!wfd_or.ok()) {
    return fail(wfd_or.status());
  }
  std::unique_ptr<Wfd> wfd = std::move(*wfd_or);
  result.wfd_create_nanos = wfd->creation_nanos();

  // Steps 2-6: run the workflow; modules load on demand inside.
  Orchestrator orchestrator(wfd.get());
  auto run_or = orchestrator.Run(spec, params);
  if (!run_or.ok()) {
    return fail(run_or.status());
  }
  result.run = std::move(*run_or);

  result.module_load_nanos = wfd->libos().TotalLoadNanos();
  result.cold_start_nanos = result.wfd_create_nanos + result.module_load_nanos;
  result.modules_loaded = wfd->libos().LoadedModules();
  result.resident_bytes = wfd->ResidentBytes();

  // Step 7: destroy the WFD and reclaim resources. Explicit here so the
  // root span (and end_to_end_nanos) covers reclaim, and so no code touches
  // the trace through the WFD's pointer after the span set is finalized.
  wfd.reset();
  result.end_to_end_nanos = asbase::MonoNanos() - received_at;
  root.End();

  registry.GetHistogram("alloy_visor_invoke_nanos", workflow_labels)
      .Record(result.end_to_end_nanos);
  result.trace = trace;
  result.span_summary = SummarizeTrace(*trace);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workflows_.find(workflow_name);
    if (it != workflows_.end()) {
      it->second.latency.Record(result.end_to_end_nanos);
      it->second.traces.push_back(trace);
      while (it->second.traces.size() > kTraceRing) {
        it->second.traces.pop_front();
      }
    }
  }
  return result;
}

asbase::Result<InvokeResult> AsVisor::InvokeFromConfig(
    const std::string& config_json, const asbase::Json& params) {
  AS_ASSIGN_OR_RETURN(asbase::Json config, asbase::Json::Parse(config_json));
  AS_RETURN_IF_ERROR(RegisterWorkflowFromJson(config));
  return Invoke(config["name"].as_string(), params);
}

asbase::Status AsVisor::StartWatchdog(uint16_t port) {
  if (watchdog_ != nullptr) {
    return asbase::FailedPrecondition("watchdog already running");
  }
  watchdog_ = std::make_unique<ashttp::HttpServer>(
      [this](const ashttp::HttpRequest& request) {
        ashttp::HttpResponse response;
        if (request.method == "GET" && request.target == "/health") {
          response.body = "ok";
          return response;
        }
        if (request.method == "GET" && request.target == "/metrics") {
          return ServeMetrics();
        }
        if (request.method == "GET" &&
            request.target.rfind("/trace", 0) == 0) {
          return ServeTrace(request.target);
        }
        const std::string prefix = "/invoke/";
        if (request.method != "POST" ||
            request.target.rfind(prefix, 0) != 0) {
          response.status = 404;
          response.reason = "Not Found";
          response.body = "unknown endpoint";
          return response;
        }
        const std::string name = request.target.substr(prefix.size());
        asbase::Json params;
        if (!request.body.empty()) {
          auto parsed = asbase::Json::Parse(request.body);
          if (!parsed.ok()) {
            response.status = 400;
            response.reason = "Bad Request";
            response.body = parsed.status().ToString();
            return response;
          }
          params = *parsed;
        }
        auto invoked = Invoke(name, params);
        if (!invoked.ok()) {
          response.status =
              invoked.status().code() == asbase::ErrorCode::kNotFound ? 404
                                                                      : 500;
          response.reason = "Error";
          response.body = invoked.status().ToString();
          return response;
        }
        asbase::Json body;
        body.Set("workflow", name);
        body.Set("cold_start_nanos", invoked->cold_start_nanos);
        body.Set("end_to_end_nanos", invoked->end_to_end_nanos);
        body.Set("instances", static_cast<int64_t>(invoked->run.instances_run));
        body.Set("result", invoked->run.result);
        response.headers["content-type"] = "application/json";
        response.body = body.Dump();
        return response;
      });
  return watchdog_->Start(port);
}

ashttp::HttpResponse AsVisor::ServeMetrics() const {
  ashttp::HttpResponse response;
  response.headers["content-type"] = "text/plain; version=0.0.4";
  response.body = asobs::Registry::Global().RenderPrometheus();
  return response;
}

ashttp::HttpResponse AsVisor::ServeTrace(const std::string& target) const {
  ashttp::HttpResponse response;
  const std::string workflow = QueryParam(target, "workflow");
  std::deque<std::shared_ptr<const asobs::Trace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (workflow.empty()) {
      response.status = 400;
      response.reason = "Bad Request";
      std::string names;
      for (const auto& [name, entry] : workflows_) {
        names += names.empty() ? name : ", " + name;
      }
      response.body = "usage: /trace?workflow=<name>; registered: " + names;
      return response;
    }
    auto it = workflows_.find(workflow);
    if (it == workflows_.end()) {
      response.status = 404;
      response.reason = "Not Found";
      response.body = "no workflow named '" + workflow + "'";
      return response;
    }
    traces = it->second.traces;
  }
  // One Chrome "process" per retained invocation, newest = highest pid.
  asbase::Json events{asbase::JsonArray{}};
  int pid = 1;
  for (const auto& trace : traces) {
    trace->AppendChromeEvents(events.array(), pid++);
  }
  asbase::Json doc;
  doc.Set("displayTimeUnit", "ms");
  doc.Set("traceEvents", std::move(events));
  response.headers["content-type"] = "application/json";
  response.body = doc.Dump();
  return response;
}

uint16_t AsVisor::watchdog_port() const {
  return watchdog_ == nullptr ? 0 : watchdog_->port();
}

void AsVisor::StopWatchdog() {
  if (watchdog_ != nullptr) {
    watchdog_->Stop();
    watchdog_.reset();
  }
}

asbase::Result<asbase::Histogram> AsVisor::LatencyHistogram(
    const std::string& workflow_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = workflows_.find(workflow_name);
  if (it == workflows_.end()) {
    return asbase::NotFound("no workflow named '" + workflow_name + "'");
  }
  return it->second.latency;
}

}  // namespace alloy
