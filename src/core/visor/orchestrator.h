// as-visor's orchestrator (§3.3): runs a workflow's DAG as parallel thread
// stages inside one WFD.
//
// A workflow is a sequence of stages; each stage is a set of function
// instances that run concurrently on their own threads; stages are separated
// by barriers (the fan-in wait the Fig 15 breakdown measures). Functions are
// looked up by name in the process-global FunctionRegistry, so JSON workflow
// configurations (§7.1) can reference them.
//
// Each instance thread drops to user MPK permissions before running the
// function body and regains nothing until the function's as-std calls
// trampoline back into the LibOS.

#ifndef SRC_CORE_VISOR_ORCHESTRATOR_H_
#define SRC_CORE_VISOR_ORCHESTRATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/core/asstd/asstd.h"

namespace alloy {

// Execution phases a function reports for the latency breakdown (Fig 15).
enum class Phase { kReadInput, kCompute, kTransfer };

struct PhaseTimings {
  int64_t read_input_nanos = 0;
  int64_t compute_nanos = 0;
  int64_t transfer_nanos = 0;
  int64_t wait_nanos = 0;  // fan-in: finished-to-barrier time

  PhaseTimings& operator+=(const PhaseTimings& other) {
    read_input_nanos += other.read_input_nanos;
    compute_nanos += other.compute_nanos;
    transfer_nanos += other.transfer_nanos;
    wait_nanos += other.wait_nanos;
    return *this;
  }
};

class FunctionContext {
 public:
  FunctionContext(AsStd* as, std::string function_name, int stage,
                  int instance, int instance_count, const asbase::Json* params)
      : as_(as), function_name_(std::move(function_name)), stage_(stage),
        instance_(instance), instance_count_(instance_count),
        params_(params) {}

  AsStd& as() { return *as_; }
  const std::string& function_name() const { return function_name_; }
  int stage() const { return stage_; }
  int instance() const { return instance_; }
  int instance_count() const { return instance_count_; }
  const asbase::Json& params() const { return *params_; }

  // Phase accounting. A function marks transitions; un-marked time counts as
  // compute.
  void BeginPhase(Phase phase);
  PhaseTimings& timings() { return timings_; }
  void FinishTiming();

  // Sets the workflow's result payload (visible in InvokeResult). Last
  // writer wins; typically only the final stage writes it.
  void SetResult(std::string result);
  const std::string& result() const { return result_; }

  // Absolute MonoNanos deadline for the surrounding invocation, 0 = none.
  // Enforcement is cooperative: the orchestrator checks at stage barriers;
  // long-running functions should poll past_deadline() and return early
  // with any error (the run is aborted as DeadlineExceeded either way).
  int64_t deadline_nanos() const { return deadline_nanos_; }
  bool past_deadline() const;

 private:
  friend class Orchestrator;
  AsStd* as_;
  std::string function_name_;
  int stage_;
  int instance_;
  int instance_count_;
  const asbase::Json* params_;

  PhaseTimings timings_;
  Phase current_phase_ = Phase::kCompute;
  int64_t phase_start_nanos_ = 0;
  bool timing_started_ = false;
  std::string result_;
  int64_t deadline_nanos_ = 0;
};

using UserFunction = std::function<asbase::Status(FunctionContext&)>;

// Process-global function registry; workloads register at startup.
class FunctionRegistry {
 public:
  static FunctionRegistry& Global();

  void Register(const std::string& name, UserFunction fn);
  asbase::Result<UserFunction> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, UserFunction> functions_;
};

struct FunctionSpec {
  std::string name;       // registry lookup key
  int instances = 1;
  int max_retries = 0;    // retry-based fault tolerance (§3.1)
};

struct StageSpec {
  std::vector<FunctionSpec> functions;
};

struct WorkflowSpec {
  std::string name;
  std::vector<StageSpec> stages;

  // Parses {"name": ..., "stages":[{"functions":[{"name","instances"}]}]}.
  static asbase::Result<WorkflowSpec> FromJson(const asbase::Json& config);
};

struct RunStats {
  int64_t total_nanos = 0;
  PhaseTimings phases;       // summed over every instance
  // Wall time per stage, launch to barrier (flight-recorder stage stamps).
  std::vector<int64_t> stage_nanos;
  size_t instances_run = 0;
  size_t retries = 0;
  std::string result;
  uint64_t trampoline_enters = 0;
  uint64_t pkru_switches = 0;
};

class Orchestrator {
 public:
  struct RunOptions {
    // Absolute MonoNanos instant the invocation must finish by; 0 = no
    // deadline. Checked cooperatively before each stage launches and at
    // every stage barrier, so a slow stage is detected when it joins, not
    // preempted mid-flight (functions share the WFD address space — killing
    // a thread would poison the whole domain).
    int64_t deadline_nanos = 0;
    // Spawn a fresh std::thread per stage instance instead of dispatching
    // onto the WFD's worker pool — the pre-worker-pool behavior, kept for
    // the dataplane bench's spawn-vs-dispatch comparison.
    bool spawn_per_stage = false;
  };

  // Largest number of instances any single stage runs concurrently — the
  // worker-pool size the workflow needs for full stage parallelism.
  static size_t MaxStageFanout(const WorkflowSpec& workflow);

  explicit Orchestrator(Wfd* wfd) : wfd_(wfd) {}

  // Runs the workflow to completion. Any function failure beyond its retry
  // budget aborts the run with that function's status; exceeding the
  // deadline aborts with kDeadlineExceeded.
  asbase::Result<RunStats> Run(const WorkflowSpec& workflow,
                               const asbase::Json& params);
  asbase::Result<RunStats> Run(const WorkflowSpec& workflow,
                               const asbase::Json& params,
                               const RunOptions& options);

 private:
  Wfd* wfd_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_ORCHESTRATOR_H_
