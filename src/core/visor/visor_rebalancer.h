// Elastic shard mesh rebalancer (DESIGN.md §12): a control loop that keeps
// the shard mesh matched to the offered load.
//
// The consistent-hash router fixes each workflow's placement at registration
// and slices the global in-flight budget evenly. Both are wrong the moment
// traffic skews: a Zipf-shaped workload parks most demand on one shard,
// whose admission queue rejects while its neighbours idle with unused
// budget. The rebalancer samples each shard's load (inflight + queued
// tickets, straight from the gauges the admission path already maintains)
// and applies, at most one per tick, the cheapest action that helps:
//
//   1. scale   — grow/shrink the shard count within RouterOptions bounds
//                when mesh-wide utilization crosses the thresholds
//                (consistent hashing keeps key movement ~1/(N+1));
//   2. migrate — move a whole workflow off the hottest shard onto the
//                coldest (warm pool + queued tickets hand off, see
//                AsVisorRouter::MigrateWorkflow) when the demand ratio
//                clears `migrate_ratio` and the move strictly lowers the
//                peak;
//   3. reslice — re-divide the global `max_inflight` budget across shards
//                proportionally to demand, with a dead band so balanced
//                load keeps the even split and a near-miss does not churn.
//
// Hysteresis = dead band + cooldown: an action arms a cooldown during which
// the loop only observes, so one burst cannot trigger a reslice, a
// migration, and a scale-up in three consecutive ticks. Every action is
// counted (alloy_rebalance_*_total) and logged to asobs::RebalanceLog,
// which rides along in /debug/flight and black-box snapshots.
//
// Only the admission *budget* moves — worker threads are fixed per shard at
// StartWatchdog (asbase::ThreadPool cannot resize). max_inflight is the
// binding constraint under saturation, so shifting it shifts real capacity;
// the thread slice only caps how much of that budget can execute truly in
// parallel.

#ifndef SRC_CORE_VISOR_VISOR_REBALANCER_H_
#define SRC_CORE_VISOR_VISOR_REBALANCER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/visor/visor.h"

namespace alloy {

class AsVisorRouter;

struct RebalancerOptions {
  // Master switch: off = the router behaves exactly as before this PR
  // (static even slices, no migration, fixed shard count).
  bool enabled = false;
  // Control-loop period. Each tick samples load and applies at most one
  // action.
  int64_t interval_ms = 200;
  // Minimum time between actions; ticks inside the cooldown only observe.
  int64_t cooldown_ms = 1000;
  // Reslice dead band, in in-flight slots: act only when some shard's
  // demand-weighted target differs from its current slice by at least this
  // much. >= 1; 2 (default) means a one-slot wobble never reslices.
  size_t reslice_deadband = 2;
  // Allow live workflow migration off the hottest shard.
  bool migrate = true;
  // Migrate only when hot-shard demand >= migrate_ratio * (cold + 1); the
  // +1 keeps an idle cold shard from attracting every workflow in turn.
  double migrate_ratio = 2.0;
  // Allow shard-count changes (within RouterOptions min/max bounds).
  bool scale = false;
  // Mesh-wide (inflight + queued) / max_inflight thresholds for scaling.
  double scale_up_utilization = 0.9;
  double scale_down_utilization = 0.25;

  // Environment overrides, applied on top of `base` (the programmatic
  // config): ALLOY_REBALANCE (0/1 -> enabled), ALLOY_REBALANCE_INTERVAL_MS,
  // ALLOY_REBALANCE_COOLDOWN_MS, ALLOY_REBALANCE_DEADBAND,
  // ALLOY_REBALANCE_MIGRATE (0/1), ALLOY_REBALANCE_MIGRATE_RATIO_PCT,
  // ALLOY_REBALANCE_SCALE (0/1), ALLOY_REBALANCE_SCALE_UP_PCT,
  // ALLOY_REBALANCE_SCALE_DOWN_PCT. Ratios are percent integers (200 =
  // 2.0x) so the env stays integer-only like every other ALLOY_* knob.
  static RebalancerOptions FromEnv(RebalancerOptions base);
};

// Demand-weighted division of `total` slots across `weights` (each >= 0):
// everyone gets a floor of 1, the rest distributes proportionally by
// largest remainder (ties to the lowest shard), and the slice sum is
// exactly max(total, weights.size()). Exposed for tests; the rebalancer
// feeds it weight = demand + 1 so an idle shard keeps a trickle.
std::vector<size_t> DemandWeightedSlices(size_t total,
                                         const std::vector<double>& weights);

class ShardRebalancer {
 public:
  ShardRebalancer(AsVisorRouter* router, RebalancerOptions options);
  ~ShardRebalancer();

  ShardRebalancer(const ShardRebalancer&) = delete;
  ShardRebalancer& operator=(const ShardRebalancer&) = delete;

  // Starts the control thread (no-op when already running).
  void Start();
  // Stops and joins it. Safe to call repeatedly; the destructor calls it.
  void Stop();

  // One deterministic control pass: sample, decide, apply at most one
  // action. Returns true when an action was taken. The loop calls this;
  // tests call it directly (with cooldown_ms = 0) to step the controller
  // without timing races.
  bool TickOnce();

  const RebalancerOptions& options() const { return options_; }
  uint64_t actions_taken() const;

 private:
  void Loop();

  // Decision stages, in priority order; each returns true if it acted.
  bool MaybeScale(const std::vector<AsVisor::ShardLoad>& loads,
                  const std::vector<double>& demand);
  bool MaybeMigrate(const std::vector<AsVisor::ShardLoad>& loads,
                    const std::vector<double>& demand);
  bool MaybeReslice(const std::vector<AsVisor::ShardLoad>& loads,
                    const std::vector<double>& demand);

  AsVisorRouter* const router_;
  const RebalancerOptions options_;

  asobs::Counter* reslices_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  int64_t last_action_nanos_ = 0;  // guarded by mutex_
  uint64_t actions_ = 0;           // guarded by mutex_
  std::thread thread_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_VISOR_REBALANCER_H_
