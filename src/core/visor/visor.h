// as-visor: the global runtime layer (§3.3).
//
// Owns workflow definitions, instantiates (or leases from the warm pool) a
// WFD per invocation, orchestrates the run, returns the WFD to the pool or
// destroys it (§3.2), and exposes the watchdog — an HTTP endpoint (host
// socket) through which external events trigger workflows. A CLI-style
// entry (`InvokeFromConfig`) executes workflows straight from JSON
// configurations (§7.1).
//
// Serving layer (DESIGN.md §8): invocations arriving through the watchdog
// are dispatched onto a worker thread pool, gated by per-workflow
// `max_concurrency` and a global in-flight cap. A saturated workflow may
// absorb short bursts through a bounded FIFO admission queue: a request
// queues only when its *predicted* wait (queue position × an EWMA of recent
// service time / max_concurrency) fits its queueing budget; otherwise it is
// rejected with HTTP 429 and a Retry-After computed from that prediction.
// Each invocation may carry a deadline (`timeout_ms`) enforced cooperatively
// by the orchestrator; an expired run fails with kDeadlineExceeded (HTTP
// 504). Registration also pre-warms the workflow's WFD pool (WfdPool
// warmer) so a traffic spike pays at most the cold starts already in
// flight when it lands.

#ifndef SRC_CORE_VISOR_VISOR_H_
#define SRC_CORE_VISOR_VISOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/thread_pool.h"
#include "src/core/visor/orchestrator.h"
#include "src/core/visor/wfd_pool.h"
#include "src/core/wfd_snapshot.h"
#include "src/http/http.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

namespace alloy {

struct InvokeResult {
  // Cold start: WFD instantiation + LibOS modules loaded during the run.
  // A warm start pays neither (wfd_create_nanos == 0) unless the run
  // touched a module no earlier invocation had loaded.
  int64_t cold_start_nanos = 0;
  int64_t wfd_create_nanos = 0;
  int64_t module_load_nanos = 0;
  // True when the invocation ran on a pooled warm WFD.
  bool warm_start = false;
  // True when the pool missed but the WFD was clone-booted from a snapshot
  // template (wfd_create_nanos is then the clone time, O(µs)).
  bool clone_start = false;
  RunStats run;
  // End-to-end: invocation receipt to workflow completion.
  int64_t end_to_end_nanos = 0;
  std::vector<ModuleKind> modules_loaded;
  size_t resident_bytes = 0;
  // Spans recorded during this invocation (root "invoke" span + children).
  std::shared_ptr<const asobs::Trace> trace;
  // Flat {"workflow", "spans":[{"name","category","parent","dur_nanos"}]}.
  asbase::Json span_summary;
};

class AsVisor {
 public:
  struct WorkflowOptions {
    WfdOptions wfd;
    // Warm WFDs retained for this workflow; 0 = cold-start every invocation.
    size_t pool_size = 2;
    // Pool pre-warm floor (clamped to pool_size): RegisterWorkflow
    // asynchronously boots this many WFDs, and the pool's warmer refills on
    // drain (sized by an arrival-rate EWMA). 0 keeps the pool reactive.
    size_t min_warm = 0;
    // Evict all parked WFDs after this long without traffic (the pool of a
    // quiet workflow shrinks to zero, releasing its heap + disk). 0 = never.
    int64_t idle_ttl_ms = 0;
    // Concurrent watchdog invocations admitted for this workflow; beyond
    // this requests queue (if queue_capacity > 0 and the predicted wait
    // fits the budget) or get 429. (Direct Invoke() calls are not gated —
    // a library caller owns its own concurrency.)
    int max_concurrency = 4;
    // Bounded FIFO admission queue depth for saturated arrivals. 0 =
    // pure reject-at-cap (the pre-queue behavior).
    size_t queue_capacity = 0;
    // Default per-request queueing budget: a request queues only if its
    // predicted wait fits; a client may override per request via the
    // `x-queue-budget-ms` header.
    int64_t queueing_budget_ms = 250;
    // Per-invocation deadline in milliseconds; 0 = none.
    int64_t timeout_ms = 0;
    // Share of admission slots under contention: queued workflows are
    // granted slots deficit-round-robin, so a weight-3 workflow receives
    // ~3 grants for every grant a weight-1 co-tenant gets. Values < 1e-6
    // are treated as 1.
    double weight = 1.0;
    // Shard pin override for AsVisorRouter: >= 0 forces the workflow onto
    // that shard (modulo shard count) instead of the consistent-hash
    // placement. Ignored by a standalone AsVisor.
    int pin_shard = -1;
    // SLO (DESIGN.md §11): fraction of invocations that must be good.
    // <= 0 disables SLO tracking for this workflow (the default — no burn
    // gauges, no black boxes).
    double slo_objective = 0;
    // Latency objective: an invocation slower than this counts against the
    // error budget even when it succeeds. 0 = outcome-only SLO.
    int64_t slo_latency_ms = 0;
  };

  // Watchdog-wide serving knobs (admission control + dispatch).
  struct ServingOptions {
    // Workers executing invocations; admitted requests queue FIFO when all
    // workers are busy (the caps below bound that queue).
    size_t worker_threads = 8;
    // Global in-flight invocation cap across all workflows.
    size_t max_inflight = 32;
    // Retry-After fallback (seconds) on 429 responses when no service-time
    // EWMA exists yet; once it does, Retry-After is computed from the
    // predicted wait instead.
    int retry_after_seconds = 1;
    // Tail-based trace retention (DESIGN.md §11). `trace_ring` replaces the
    // per-workflow retained-trace depth; 0 = keep the visor's current
    // setting (ALLOY_TRACE_RING env, else kTraceRing). `trace_threshold_ms`
    // retains a full span tree only for invocations that fail, time out, or
    // run longer than the threshold; 0 = retain every trace (the PR 1
    // behavior); -1 = keep the current setting (ALLOY_TRACE_THRESHOLD_MS
    // env, else 0).
    size_t trace_ring = 0;
    int64_t trace_threshold_ms = -1;
  };

  // Serving-path context for one invocation (watchdog admission).
  struct InvokeOptions {
    // Time this request spent in the admission queue before Invoke; recorded
    // as a `queue_wait` span and excluded from the service-time EWMA.
    int64_t queue_wait_nanos = 0;
  };

  // Identity of this visor inside an AsVisorRouter. A standalone visor
  // (index -1) behaves exactly as before sharding: unlabelled metrics, no
  // worker affinity.
  struct ShardIdentity {
    // Shard number, stamped onto every metric series this visor writes as
    // `alloy_visor_shard="<index>"`. -1 = unsharded.
    int index = -1;
    // Core set this shard's WFD stage workers pin to (empty = no affinity;
    // the router leaves it empty when the machine has fewer cores than
    // shards).
    std::vector<int> cpus;
  };

  AsVisor() : AsVisor(ShardIdentity{}) {}
  explicit AsVisor(ShardIdentity shard);
  ~AsVisor();

  AsVisor(const AsVisor&) = delete;
  AsVisor& operator=(const AsVisor&) = delete;

  // Registers a workflow under spec.name; overwrites an existing entry
  // (clearing any warm WFDs built with the previous options).
  void RegisterWorkflow(const WorkflowSpec& spec);
  void RegisterWorkflow(const WorkflowSpec& spec, WorkflowOptions options);

  // Removes a workflow: queued admissions for it give up (404), its pool's
  // warmer stops and its warm WFDs are destroyed. Returns false when no
  // such workflow exists. The router uses this to migrate a pinned workflow
  // between shards without a double registration ever being visible.
  bool UnregisterWorkflow(const std::string& workflow_name);

  // ---- live migration (elastic shard mesh, DESIGN.md §12) ----
  // A workflow's registration as this shard holds it, copyable to another
  // shard.
  struct WorkflowRegistration {
    WorkflowSpec spec;
    WorkflowOptions options;
  };
  asbase::Result<WorkflowRegistration> GetRegistration(
      const std::string& workflow_name) const;

  // Migrate-out: removes the entry like UnregisterWorkflow, but leaves a
  // short-lived tombstone so queued admissions (and requests racing the
  // route flip) unwind as *migrated* rather than failed — the router
  // re-queues them on the new owner instead of answering 404/503. Returns
  // the old pool (already detached; the caller takes its warm WFDs via
  // TakeWarmForHandoff and then Shutdowns it), or nullptr when the
  // workflow was not registered here.
  std::shared_ptr<WfdPool> MigrateOut(const std::string& workflow_name);

  // Receiving side of the warm-pool handoff: parks the WFDs into
  // `workflow_name`'s pool (evicting past capacity). WFDs built for the
  // old shard keep their old core affinity — functional, re-pinned only
  // when they age out; the alternative (rebooting them) is the cold start
  // migration exists to avoid.
  void AdoptWarmWfds(const std::string& workflow_name,
                     std::vector<std::unique_ptr<Wfd>> wfds);

  // Per-shard load snapshot — the rebalancer's input signal (sampled, so
  // cheap: one mutex hold, no per-invocation cost).
  struct WorkflowLoad {
    std::string name;
    int inflight = 0;
    size_t queued = 0;
    double service_ewma_nanos = 0;
    bool pinned = false;  // pin_shard >= 0: the rebalancer must not move it
  };
  struct ShardLoad {
    size_t inflight = 0;      // admitted invocations running now
    size_t queued = 0;        // tickets parked across all admission queues
    size_t max_inflight = 0;  // this shard's current budget slice
    std::vector<WorkflowLoad> workflows;
  };
  ShardLoad LoadSnapshot() const;

  // Full JSON configuration: workflow spec (+"options": {"ramfs", "load_all",
  // "reference_passing", "inter_function_isolation", "heap_mb", "disk_mb",
  // "pool_size", "max_concurrency", "timeout_ms"}).
  asbase::Status RegisterWorkflowFromJson(const asbase::Json& config);

  // One invocation: lease a warm WFD (or cold-start one), run, re-pool on
  // success / destroy on failure. Enforces the workflow's timeout_ms.
  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params);
  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params,
                                      const InvokeOptions& invoke_options);

  // One-shot CLI gateway: parse config, register, invoke once.
  asbase::Result<InvokeResult> InvokeFromConfig(const std::string& config_json,
                                                const asbase::Json& params);

  // Watchdog: POST /invoke/<workflow> with a JSON params body; responds with
  // the run result and latency (429 when saturated, 504 on deadline).
  // GET /health answers "ok". GET /metrics serves the process-wide registry
  // in Prometheus text format; GET /trace?workflow=<name> serves the last
  // invocations' spans as Chrome trace JSON (open in about:tracing or
  // ui.perfetto.dev).
  asbase::Status StartWatchdog(uint16_t port = 0);
  asbase::Status StartWatchdog(uint16_t port, ServingOptions serving);
  uint16_t watchdog_port() const;
  void StopWatchdog();

  // ---- serving lifecycle pieces (used standalone by the router, which
  // ---- owns the shared HTTP server itself) ----
  // Brings up the admission state + worker pool without an HTTP server.
  asbase::Status StartServing(const ServingOptions& serving);
  // Non-blocking: flips draining so every queued admission unwinds with
  // kUnavailable (503). Safe to call on all shards before any join.
  void BeginDrain();
  // BeginDrain + drain and destroy the worker pool. Callers must stop the
  // HTTP server delivering requests first (its connection threads block on
  // the pool's invocations).
  void StopServing();
  // Shuts down every workflow's pool warmer and destroys parked WFDs, in
  // workflow-name order (deterministic thread joins on teardown).
  void ShutdownPools();

  // Serving-path entry points, public so the router's shared server can
  // dispatch to the owning shard without a cross-shard lock.
  // `carried_queue_wait_nanos` is queue time already spent on a previous
  // shard when a migration handed this request off mid-queue; it is added
  // to this shard's own queue wait so the invocation's trace and flight
  // record show the true total. A request whose workflow migrated away
  // mid-queue returns 307 with `x-alloy-migrated: 1` and its accumulated
  // wait in `x-alloy-queue-wait-ns`; the router re-dispatches, a direct
  // client treats it like any redirect.
  ashttp::HttpResponse HandleInvoke(const ashttp::HttpRequest& request,
                                    int64_t carried_queue_wait_nanos = 0);
  ashttp::HttpResponse ServeTrace(const std::string& target) const;
  // GET /debug/flight?workflow=&since= — recent flight records (all
  // workflows when the param is empty; since = MonoNanos cursor).
  ashttp::HttpResponse ServeFlight(const std::string& target) const;
  // GET /debug/latency?workflow= — p50/p95/p99 phase attribution over the
  // flight ring: which phase owns the tail.
  ashttp::HttpResponse ServeLatency(const std::string& target) const;
  // GET /healthz — liveness: 200 as long as the process answers.
  ashttp::HttpResponse ServeHealthz() const;
  // GET /readyz — readiness: 503 while draining or not serving.
  ashttp::HttpResponse ServeReadyz() const;

  // True from BeginDrain/StopServing until the next StartServing — the
  // /readyz signal, also aggregated per shard by the router.
  bool draining() const;

  // This shard's flight recorder (the router aggregates across shards).
  const asobs::FlightRecorder& flight() const { return *flight_; }

  // Effective trace-retention knobs (tests, ops).
  size_t trace_ring_depth() const;
  int64_t trace_threshold_ms() const;

  // Rebalance hook: replaces this shard's slice of the global in-flight
  // budget (clamped to >= 1) and wakes queued admissions to re-evaluate.
  void SetMaxInflight(size_t max_inflight);
  size_t max_inflight() const;

  std::vector<std::string> WorkflowNames() const;
  int shard_index() const { return shard_.index; }
  const std::vector<int>& shard_cpus() const { return shard_.cpus; }

  // Per-workflow end-to-end latency samples (P99 analysis, Fig 17a).
  asbase::Result<asbase::Histogram> LatencyHistogram(
      const std::string& workflow_name) const;

  // Warm WFDs currently parked for a workflow (tests, ops introspection).
  asbase::Result<size_t> WarmWfdCount(const std::string& workflow_name) const;

  // Trace ring depth per workflow served by /trace.
  static constexpr size_t kTraceRing = 8;

 private:
  // What this workflow's runs actually warm up: the LibOS modules its last
  // completed invocation had loaded and the stage-worker fan-out its spec
  // needs. The pool warmer's factory replays both, so a pre-warmed WFD is
  // hot (fdtab/fatfs constructed, workers up), not just booted. Shared with
  // the factory closure and guarded by its own mutex so the warmer never
  // touches visor state (a draining pool may outlive the registration).
  struct WarmupProfile {
    std::mutex mutex;
    std::vector<ModuleKind> modules;
    size_t stage_workers = 0;
  };

  struct Entry {
    WorkflowSpec spec;
    WorkflowOptions options;
    // Shared so Invoke can use the pool outside mutex_ while a concurrent
    // re-registration swaps in a fresh one.
    std::shared_ptr<WfdPool> pool;
    // Warm-up recording for the pool factory (see WarmupProfile).
    std::shared_ptr<WarmupProfile> warmup;
    // Snapshot-fork template slot (DESIGN.md §14): written once by the
    // first successful post-invoke reset, read by the factory and the
    // invoke miss path, dropped on re-registration or reset failure.
    // Shared with the factory closure like `warmup`.
    std::shared_ptr<SnapshotCell> snapshot;
    // Watchdog invocations currently running this workflow (admission).
    int inflight = 0;
    // FIFO admission queue: tickets of requests waiting for a concurrency
    // slot, front = next to run. Bounded by options.queue_capacity.
    std::deque<uint64_t> waiters;
    uint64_t next_ticket = 1;
    // Deficit-round-robin credit toward the next admission grant: each
    // contested grant adds `weight` per round to every workflow with a
    // runnable queue head and costs the winner 1. Reset when the queue
    // empties.
    double deficit = 0;
    // EWMA of recent service time (Invoke wall time, queue wait excluded);
    // drives the predicted-wait admission decision and Retry-After.
    double service_ewma_nanos = 0;
    asbase::Histogram latency;
    // Last kTraceRing invocation traces, oldest first.
    std::deque<std::shared_ptr<const asobs::Trace>> traces;
    // Cached registry series (registry-owned, immortal) so the invoke and
    // admission hot paths never take the global registry mutex — with N
    // shards that mutex would be the one lock every shard still shares.
    asobs::Counter* invocations = nullptr;
    asobs::Counter* failures = nullptr;
    asobs::Counter* timeouts = nullptr;
    asobs::Counter* rejections = nullptr;
    asobs::Gauge* queued_gauge = nullptr;
    asobs::LatencyHistogram* invoke_hist = nullptr;
    asobs::LatencyHistogram* queue_wait_hist = nullptr;
    // Flight-recorder workflow id, interned at registration so the emit
    // path never touches the intern mutex.
    uint32_t flight_id = 0;
    // SLO tracker + milli-scaled burn gauges (alloy_slo_burn_rate{window}).
    // Null when the registration declared no SLO.
    std::shared_ptr<asobs::SloTracker> slo;
    asobs::Gauge* burn_fast = nullptr;
    asobs::Gauge* burn_slow = nullptr;
    // Snapshot lifecycle counters + clone-boot latency, cached like the
    // series above (registry-owned, immortal).
    asobs::Counter* snapshot_creates = nullptr;
    asobs::Counter* snapshot_clones = nullptr;
    asobs::Counter* snapshot_invalidations = nullptr;
    asobs::Counter* snapshot_fallbacks = nullptr;
    asobs::LatencyHistogram* snapshot_clone_hist = nullptr;
    // ALLOY_SNAPSHOT / ALLOY_SNAPSHOT_MAX_BYTES, parsed at registration.
    bool snapshot_enabled = true;
    size_t snapshot_max_bytes = 0;
  };

  // Captures a snapshot template from `wfd` (post-reset, pre-park) into
  // `cell` if the cell is still open and snapshots are enabled. At most one
  // capture per registration ever runs; failures mark the cell dead so the
  // cost is not re-paid. Never called under mutex_.
  static void MaybeCaptureSnapshot(const std::shared_ptr<SnapshotCell>& cell,
                                   Wfd& wfd, size_t max_image_bytes,
                                   asobs::Counter* creates);

  void ReleaseAdmission(const std::string& workflow_name);

  // Queue-with-budget admission (DESIGN.md §8): admit immediately when a
  // slot is free, else queue FIFO if the predicted wait fits the budget
  // (workflow default, or budget_ms_override >= 0 from the request), else
  // reject kResourceExhausted. On rejection *predicted_wait_nanos carries
  // the prediction so the caller can compute Retry-After; on admission
  // *queue_wait_nanos is the time actually spent queued. When the workflow
  // migrated away (entry vanished with a live tombstone) the status is
  // kUnavailable and *migrated is set — HandleInvoke answers with the
  // redirect marker instead of a 503, and *queue_wait_nanos carries the
  // wait already paid so the new shard can account it.
  asbase::Status AdmitBlocking(const std::string& workflow_name,
                               int64_t budget_ms_override,
                               int64_t* queue_wait_nanos,
                               int64_t* predicted_wait_nanos,
                               bool* migrated);
  // Wait the next arrival would see: (position) × service EWMA scaled by
  // the workflow's concurrency. Zero until a service-time sample exists.
  int64_t PredictedWaitNanosLocked(const Entry& entry) const;

  // Deficit-round-robin fairness across workflows competing for global
  // in-flight slots (ROADMAP "weighted slot shares"): among workflows with
  // a runnable queue head, advance every deficit by the minimum number of
  // whole rounds (deficit += rounds × weight) that makes someone reach 1,
  // and pick the highest resulting deficit (ties: smallest name). A
  // weight-3 workflow therefore banks credit 3× as fast and wins ~3 of
  // every 4 contested grants against a weight-1 co-tenant, while equal
  // weights degenerate to plain round-robin. Pure — the cv predicate calls
  // it; ChargeGrantLocked applies the mutation once per actual grant.
  // Empty when nobody eligible is queued.
  std::string NextWeightedWorkflowLocked() const;
  // Applies the DRR bookkeeping for granting `winner` a slot. Must run
  // while the winner's ticket is still queued (so the eligible set matches
  // what NextWeightedWorkflowLocked saw).
  void ChargeGrantLocked(const std::string& winner);

  // {workflow=<name>} plus this shard's label (if sharded).
  asobs::Labels WorkflowLabels(const std::string& workflow_name) const;
  asobs::Labels ShardLabels() const;

  ashttp::HttpResponse ServeMetrics() const;

  // Deposits one record into this shard's flight ring and keeps the
  // records/dropped counters in step.
  void EmitFlight(uint32_t workflow_id, const asobs::FlightRecord& record);

  // Everything the SLO anomaly trigger snapshots besides the flight ring,
  // collected under mutex_ and written to disk after it drops.
  struct BlackBoxRequest {
    std::string reason;
    std::string workflow;
    double fast_burn = 0;
    double slow_burn = 0;
    asbase::Json queues;
  };

  // Shared completion bookkeeping for every invocation outcome (success,
  // error, timeout, rejection): tail-based trace retention, SLO accounting
  // + burn gauges, and — on an SLO trigger — the black-box snapshot.
  // `trace` may be null (rejections have no trace).
  void AccountOutcome(const std::string& workflow_name,
                      std::shared_ptr<const asobs::Trace> trace,
                      asobs::FlightOutcome outcome, int64_t total_nanos);

  // Serializes the flight ring + the request's queue/pool state to a JSON
  // file in ALLOY_BLACKBOX_DIR. Never called under mutex_ (file IO).
  void WriteBlackBox(const BlackBoxRequest& request);

  const ShardIdentity shard_;
  // Cached like Entry's series: the inflight gauge moves on every admission
  // and release.
  asobs::Gauge* inflight_gauge_ = nullptr;

  mutable std::mutex mutex_;
  // Wakes queued requests when a slot frees, a queue position advances, or
  // the watchdog drains.
  std::condition_variable admission_cv_;
  bool draining_ = false;  // guarded by mutex_; set by BeginDrain
  std::map<std::string, Entry> workflows_;
  // Migration tombstones (guarded by mutex_): workflow -> MonoNanos of its
  // MigrateOut. Lets queued waiters (and requests racing the route flip)
  // distinguish "moved, retry elsewhere" from "gone, 404". Pruned lazily
  // after kMigrationTombstoneNanos and erased by a re-registration.
  std::map<std::string, int64_t> migrated_out_;
  static constexpr int64_t kMigrationTombstoneNanos = 5'000'000'000;  // 5 s
  size_t inflight_global_ = 0;  // guarded by mutex_
  ServingOptions serving_;  // guarded by mutex_ (max_inflight can rebalance)
  std::unique_ptr<asbase::ThreadPool> serving_pool_;
  std::unique_ptr<ashttp::HttpServer> watchdog_;

  // ---- flight recorder / tail retention / SLO (DESIGN.md §11) ----
  // Per-shard ring; capacity from ALLOY_FLIGHT_RING (default 1024, 0 =
  // disabled). Lock-free — HTTP scrapers read it without touching mutex_.
  std::unique_ptr<asobs::FlightRecorder> flight_;
  asobs::Counter* flight_records_ = nullptr;
  asobs::Counter* flight_dropped_ = nullptr;
  asobs::Counter* traces_retained_ = nullptr;
  asobs::Counter* blackbox_counter_ = nullptr;
  // Tail-retention knobs, guarded by mutex_ (StartServing may override the
  // env/default values).
  size_t trace_ring_ = kTraceRing;
  int64_t trace_threshold_ms_ = 0;
  std::string blackbox_dir_;  // immutable after construction
  std::atomic<uint64_t> blackbox_seq_{0};
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_VISOR_H_
