// as-visor: the global runtime layer (§3.3).
//
// Owns workflow definitions, instantiates a fresh WFD per invocation,
// orchestrates the run, destroys the WFD and reclaims resources (§3.2), and
// exposes the watchdog — an HTTP endpoint (host socket) through which
// external events trigger workflows. A CLI-style entry (`InvokeFromConfig`)
// executes workflows straight from JSON configurations (§7.1).

#ifndef SRC_CORE_VISOR_VISOR_H_
#define SRC_CORE_VISOR_VISOR_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/histogram.h"
#include "src/core/visor/orchestrator.h"
#include "src/http/http.h"
#include "src/obs/trace.h"

namespace alloy {

struct InvokeResult {
  // Cold start: WFD instantiation + LibOS modules loaded during the run.
  int64_t cold_start_nanos = 0;
  int64_t wfd_create_nanos = 0;
  int64_t module_load_nanos = 0;
  RunStats run;
  // End-to-end: invocation receipt to workflow completion.
  int64_t end_to_end_nanos = 0;
  std::vector<ModuleKind> modules_loaded;
  size_t resident_bytes = 0;
  // Spans recorded during this invocation (root "invoke" span + children).
  std::shared_ptr<const asobs::Trace> trace;
  // Flat {"workflow", "spans":[{"name","category","parent","dur_nanos"}]}.
  asbase::Json span_summary;
};

class AsVisor {
 public:
  struct WorkflowOptions {
    WfdOptions wfd;
  };

  AsVisor() = default;
  ~AsVisor();

  AsVisor(const AsVisor&) = delete;
  AsVisor& operator=(const AsVisor&) = delete;

  // Registers a workflow under spec.name; overwrites an existing entry.
  void RegisterWorkflow(const WorkflowSpec& spec, WorkflowOptions options = {});

  // Full JSON configuration: workflow spec (+"options": {"ramfs", "load_all",
  // "reference_passing", "inter_function_isolation", "heap_mb"}).
  asbase::Status RegisterWorkflowFromJson(const asbase::Json& config);

  // Cold-start invocation: new WFD, run, destroy.
  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params);

  // One-shot CLI gateway: parse config, register, invoke once.
  asbase::Result<InvokeResult> InvokeFromConfig(const std::string& config_json,
                                                const asbase::Json& params);

  // Watchdog: POST /invoke/<workflow> with a JSON params body; responds with
  // the run result and latency. GET /health answers "ok". GET /metrics
  // serves the process-wide registry in Prometheus text format; GET
  // /trace?workflow=<name> serves the last invocations' spans as Chrome
  // trace JSON (open in about:tracing or ui.perfetto.dev).
  asbase::Status StartWatchdog(uint16_t port = 0);
  uint16_t watchdog_port() const;
  void StopWatchdog();

  // Per-workflow end-to-end latency samples (P99 analysis, Fig 17a).
  asbase::Result<asbase::Histogram> LatencyHistogram(
      const std::string& workflow_name) const;

  // Trace ring depth per workflow served by /trace.
  static constexpr size_t kTraceRing = 8;

 private:
  struct Entry {
    WorkflowSpec spec;
    WorkflowOptions options;
    asbase::Histogram latency;
    // Last kTraceRing invocation traces, oldest first.
    std::deque<std::shared_ptr<const asobs::Trace>> traces;
  };

  ashttp::HttpResponse ServeMetrics() const;
  ashttp::HttpResponse ServeTrace(const std::string& target) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> workflows_;
  std::unique_ptr<ashttp::HttpServer> watchdog_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_VISOR_H_
