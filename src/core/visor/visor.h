// as-visor: the global runtime layer (§3.3).
//
// Owns workflow definitions, instantiates (or leases from the warm pool) a
// WFD per invocation, orchestrates the run, returns the WFD to the pool or
// destroys it (§3.2), and exposes the watchdog — an HTTP endpoint (host
// socket) through which external events trigger workflows. A CLI-style
// entry (`InvokeFromConfig`) executes workflows straight from JSON
// configurations (§7.1).
//
// Serving layer (DESIGN.md §8): invocations arriving through the watchdog
// are dispatched onto a worker thread pool, gated by per-workflow
// `max_concurrency` and a global in-flight cap — requests beyond either
// limit are rejected immediately with HTTP 429 + Retry-After rather than
// queued (admission control). Each invocation may carry a deadline
// (`timeout_ms`) enforced cooperatively by the orchestrator; an expired run
// fails with kDeadlineExceeded (HTTP 504).

#ifndef SRC_CORE_VISOR_VISOR_H_
#define SRC_CORE_VISOR_VISOR_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/histogram.h"
#include "src/common/thread_pool.h"
#include "src/core/visor/orchestrator.h"
#include "src/core/visor/wfd_pool.h"
#include "src/http/http.h"
#include "src/obs/trace.h"

namespace alloy {

struct InvokeResult {
  // Cold start: WFD instantiation + LibOS modules loaded during the run.
  // A warm start pays neither (wfd_create_nanos == 0) unless the run
  // touched a module no earlier invocation had loaded.
  int64_t cold_start_nanos = 0;
  int64_t wfd_create_nanos = 0;
  int64_t module_load_nanos = 0;
  // True when the invocation ran on a pooled warm WFD.
  bool warm_start = false;
  RunStats run;
  // End-to-end: invocation receipt to workflow completion.
  int64_t end_to_end_nanos = 0;
  std::vector<ModuleKind> modules_loaded;
  size_t resident_bytes = 0;
  // Spans recorded during this invocation (root "invoke" span + children).
  std::shared_ptr<const asobs::Trace> trace;
  // Flat {"workflow", "spans":[{"name","category","parent","dur_nanos"}]}.
  asbase::Json span_summary;
};

class AsVisor {
 public:
  struct WorkflowOptions {
    WfdOptions wfd;
    // Warm WFDs retained for this workflow; 0 = cold-start every invocation.
    size_t pool_size = 2;
    // Concurrent watchdog invocations admitted for this workflow; beyond
    // this the watchdog answers 429. (Direct Invoke() calls are not gated —
    // a library caller owns its own concurrency.)
    int max_concurrency = 4;
    // Per-invocation deadline in milliseconds; 0 = none.
    int64_t timeout_ms = 0;
  };

  // Watchdog-wide serving knobs (admission control + dispatch).
  struct ServingOptions {
    // Workers executing invocations; admitted requests queue FIFO when all
    // workers are busy (the caps below bound that queue).
    size_t worker_threads = 8;
    // Global in-flight invocation cap across all workflows.
    size_t max_inflight = 32;
    // Retry-After hint (seconds) on 429 responses.
    int retry_after_seconds = 1;
  };

  AsVisor() = default;
  ~AsVisor();

  AsVisor(const AsVisor&) = delete;
  AsVisor& operator=(const AsVisor&) = delete;

  // Registers a workflow under spec.name; overwrites an existing entry
  // (clearing any warm WFDs built with the previous options).
  void RegisterWorkflow(const WorkflowSpec& spec);
  void RegisterWorkflow(const WorkflowSpec& spec, WorkflowOptions options);

  // Full JSON configuration: workflow spec (+"options": {"ramfs", "load_all",
  // "reference_passing", "inter_function_isolation", "heap_mb", "disk_mb",
  // "pool_size", "max_concurrency", "timeout_ms"}).
  asbase::Status RegisterWorkflowFromJson(const asbase::Json& config);

  // One invocation: lease a warm WFD (or cold-start one), run, re-pool on
  // success / destroy on failure. Enforces the workflow's timeout_ms.
  asbase::Result<InvokeResult> Invoke(const std::string& workflow_name,
                                      const asbase::Json& params);

  // One-shot CLI gateway: parse config, register, invoke once.
  asbase::Result<InvokeResult> InvokeFromConfig(const std::string& config_json,
                                                const asbase::Json& params);

  // Watchdog: POST /invoke/<workflow> with a JSON params body; responds with
  // the run result and latency (429 when saturated, 504 on deadline).
  // GET /health answers "ok". GET /metrics serves the process-wide registry
  // in Prometheus text format; GET /trace?workflow=<name> serves the last
  // invocations' spans as Chrome trace JSON (open in about:tracing or
  // ui.perfetto.dev).
  asbase::Status StartWatchdog(uint16_t port = 0);
  asbase::Status StartWatchdog(uint16_t port, ServingOptions serving);
  uint16_t watchdog_port() const;
  void StopWatchdog();

  // Per-workflow end-to-end latency samples (P99 analysis, Fig 17a).
  asbase::Result<asbase::Histogram> LatencyHistogram(
      const std::string& workflow_name) const;

  // Warm WFDs currently parked for a workflow (tests, ops introspection).
  asbase::Result<size_t> WarmWfdCount(const std::string& workflow_name) const;

  // Trace ring depth per workflow served by /trace.
  static constexpr size_t kTraceRing = 8;

 private:
  struct Entry {
    WorkflowSpec spec;
    WorkflowOptions options;
    // Shared so Invoke can use the pool outside mutex_ while a concurrent
    // re-registration swaps in a fresh one.
    std::shared_ptr<WfdPool> pool;
    // Watchdog invocations currently running this workflow (admission).
    int inflight = 0;
    asbase::Histogram latency;
    // Last kTraceRing invocation traces, oldest first.
    std::deque<std::shared_ptr<const asobs::Trace>> traces;
  };

  // Admission for one watchdog invocation. Returns OkStatus and bumps the
  // in-flight counts, or kResourceExhausted when either cap is hit.
  asbase::Status TryAdmit(const std::string& workflow_name);
  void ReleaseAdmission(const std::string& workflow_name);

  ashttp::HttpResponse HandleInvoke(const ashttp::HttpRequest& request);
  ashttp::HttpResponse ServeMetrics() const;
  ashttp::HttpResponse ServeTrace(const std::string& target) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> workflows_;
  size_t inflight_global_ = 0;  // guarded by mutex_
  ServingOptions serving_;
  std::unique_ptr<asbase::ThreadPool> serving_pool_;
  std::unique_ptr<ashttp::HttpServer> watchdog_;
};

}  // namespace alloy

#endif  // SRC_CORE_VISOR_VISOR_H_
