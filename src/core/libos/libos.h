// as-libos: the kernel-functionality layer of a WFD (§3.4, Table 2).
//
// One Libos instance per WFD; functions from different workflows go through
// different instances, which is what isolates their kernel state (§3.1).
// Modules are constructed on demand: nothing is instantiated at WFD creation
// until a syscall needs a module (Figure 7's slow path); later calls find the
// module present (fast path). `Options::load_all` disables this for the
// AS-load-all ablation, constructing every module at boot.
//
// Each module's construction does the real work its Rust counterpart does —
// the mm module maps and initializes the heap, the fatfs module formats and
// mounts the FAT volume, the socket module attaches a TUN port and starts
// the stack's poller thread — so cold-start measurements (Fig 10/14) time
// genuine initialization, not sleeps.

#ifndef SRC_CORE_LIBOS_LIBOS_H_
#define SRC_CORE_LIBOS_LIBOS_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "src/alloc/arena.h"
#include "src/alloc/linked_list_allocator.h"
#include "src/alloc/slot_registry.h"
#include "src/blockdev/block_device.h"
#include "src/common/status.h"
#include "src/core/libos/module.h"
#include "src/fatfs/fat_volume.h"
#include "src/fatfs/ram_filesystem.h"
#include "src/mpk/pkey_runtime.h"
#include "src/netstack/stack.h"

namespace asobs {
class Trace;
}

namespace alloy {

struct WfdSnapshot;

class Libos {
 public:
  struct Options {
    // Disable on-demand loading: construct every module in the constructor
    // (the paper's "AS-load-all" configuration).
    bool load_all = false;
    // Back the filesystem with ramfs instead of fatfs (Fig 16).
    bool use_ramfs = false;
    size_t heap_bytes = 64u << 20;
    uint64_t disk_blocks = 128 * 1024;  // 64 MiB virtual disk
    // Optional virtual network; without it the socket module is unavailable.
    asnet::VirtualSwitch* fabric = nullptr;
    asnet::Ipv4Addr addr = 0;
    // Optional pre-existing disk image (e.g. shared input data); the libos
    // does not take ownership. When null, the fatfs module creates and
    // formats a fresh MemDisk.
    asblk::BlockDevice* disk = nullptr;
    // MPK runtime + key protecting the user heap; may be null in tests.
    asmpk::PkeyRuntime* mpk = nullptr;
    asmpk::ProtKey heap_key = 0;
    // Invocation trace to attach module_load spans to (may be null). The
    // libos does not take ownership; the trace must outlive the WFD.
    asobs::Trace* trace = nullptr;
    uint32_t trace_parent = 0;
  };

  explicit Libos(Options options);

  // Clone boot (DESIGN.md §14): reconstructs the snapshot's loaded modules
  // from its CoW images instead of booting them — the heap arena maps
  // MAP_PRIVATE over the template memfd (allocator free list rebased into
  // the new address space, MPK key bound over the view), the disk clones
  // chunk-CoW, the FAT volume mounts from metadata without device reads.
  // No LoadModuleImage (dlmopen) cost is paid; load_nanos_ stays zero so
  // warm-delta accounting is unaffected. The socket module (if the template
  // had one) is NOT reconstructed — the netstack registers lazily on first
  // use. Check clone_status() before using the instance.
  Libos(Options options, const WfdSnapshot& snapshot);

  // Freezes this LibOS's module state into `out` (heap/allocator/disk/FAT
  // images + module table). Preconditions: quiescent (post-ResetForReuse,
  // exclusively owned), fatfs-backed with an owned MemDisk (ramfs and
  // external disks are not snapshotable), no pending slots.
  asbase::Status CaptureSnapshot(WfdSnapshot* out);

  // kOk unless the clone-boot constructor failed (e.g. the CoW mmap).
  const asbase::Status& clone_status() const { return clone_status_; }

  ~Libos();

  Libos(const Libos&) = delete;
  Libos& operator=(const Libos&) = delete;

  // ---- module lifecycle (the as-visor loader calls this; as-std reaches it
  // through the trampoline) ----
  asbase::Status EnsureLoaded(ModuleKind kind);
  bool IsLoaded(ModuleKind kind) const;

  // Re-points the invocation trace module_load spans attach to. Pooled WFDs
  // call this on every lease (new trace) and release (nullptr) — the
  // previous trace dies with its invocation while the LibOS lives on.
  void SetTrace(asobs::Trace* trace, uint32_t trace_parent);

  // Clears per-invocation state so the LibOS can serve the next invocation
  // of the same workflow (warm start): drops unconsumed slot buffers,
  // closes open fds, unmaps mmap regions. Loaded modules, the heap arena,
  // and filesystem contents survive — skipping their construction is the
  // warm-start win. Fails if live state cannot be reclaimed; the caller
  // must then destroy the WFD instead of re-pooling it.
  asbase::Status ResetForReuse();
  std::vector<ModuleKind> LoadedModules() const;
  int64_t ModuleLoadNanos(ModuleKind kind) const;
  int64_t TotalLoadNanos() const;

  // ---- mm ----
  // Allocates a buffer on the WFD heap and registers it under `slot`.
  asbase::Result<void*> AllocBuffer(const std::string& slot, size_t size,
                                    size_t align, uint64_t fingerprint);
  // Transfers ownership of the slot's buffer to the caller (removes the
  // slot; single-consumer semantics, §7.1).
  asbase::Result<asalloc::BufferRecord> AcquireBuffer(const std::string& slot,
                                                      uint64_t fingerprint);
  // Re-registers a heap buffer the caller already owns (obtained from
  // AllocBuffer/AcquireBuffer) under a new slot: ownership transfer along a
  // chain without copying.
  asbase::Status RegisterBuffer(const std::string& slot, void* addr,
                                size_t size, uint64_t fingerprint);
  asbase::Result<void*> HeapAllocate(size_t size, size_t align = 16);
  asbase::Status HeapFree(void* ptr);
  // Pins a heap buffer for zero-copy TX: the netstack gather-writes frames
  // straight from this memory and holds the returned handle until the
  // covering ACK (or teardown). Tracked in the slot registry so freeing the
  // buffer while pinned is loudly visible.
  asbase::Result<std::shared_ptr<const void>> PinTxBuffer(void* addr,
                                                          size_t size);
  asbase::Result<asalloc::LinkedListAllocator::Stats> HeapStats();
  size_t PendingSlots() const;

  // ---- fdtab (+ fatfs / ramfs underneath) ----
  asbase::Result<int> Open(const std::string& path, asfat::OpenFlags flags);
  asbase::Status CloseFd(int fd);
  asbase::Result<size_t> Read(int fd, std::span<uint8_t> out);
  asbase::Result<size_t> Write(int fd, std::span<const uint8_t> data);
  asbase::Result<uint64_t> Seek(int fd, int64_t offset, asfat::Whence whence);
  asbase::Result<asfat::FileInfo> Stat(const std::string& path);
  asbase::Status Mkdir(const std::string& path);
  asbase::Status Remove(const std::string& path);
  asbase::Result<std::vector<asfat::FileInfo>> ReadDir(const std::string& path);
  // Direct filesystem handle for bulk setup (input generation in benches).
  asbase::Result<asfat::Filesystem*> Filesystem();

  // ---- stdio ----
  asbase::Result<size_t> HostStdout(std::span<const uint8_t> data);

  // ---- time ----
  asbase::Result<int64_t> GettimeofdayMicros();

  // ---- socket ----
  asbase::Result<std::unique_ptr<asnet::TcpListener>> SmolBind(uint16_t port);
  asbase::Result<std::unique_ptr<asnet::TcpConnection>> SmolConnect(
      asnet::Ipv4Addr dst, uint16_t port);
  asbase::Result<asnet::NetStack*> Stack();

  // ---- mmap_file_backend ----
  // Maps a filesystem file into WFD heap memory with user-space paging: the
  // content is faulted in from the filesystem in page-sized chunks on first
  // touch of each page (userfaultfd equivalent).
  asbase::Result<std::span<uint8_t>> MmapFile(const std::string& path);
  // Faults-in [offset, offset+len) of a mapped region; returns pages read.
  asbase::Result<size_t> EnsureResident(void* base, size_t offset, size_t len);
  asbase::Status Munmap(void* base);

  // Heap arena pages (for MPK binding by the WFD). Null until mm is loaded.
  asalloc::Arena* heap_arena();

  // Bytes of heap privately owned by this WFD (resource accounting,
  // Fig 17b). CoW-aware: for a cloned arena only dirtied pages count, not
  // the shared template pages; for a booted arena this equals the resident
  // set as before.
  size_t ResidentHeapBytes() const;

  // Bytes of disk chunks privately materialized by this WFD's owned
  // MemDisk (0 for external disks, ramfs, or an unloaded fs module).
  // CoW-aware like ResidentHeapBytes.
  size_t ResidentDiskBytes() const;

 private:
  // ---- module state ----
  struct MmModule {
    asalloc::Arena heap;
    asalloc::LinkedListAllocator allocator;
    asalloc::SlotRegistry slots;
    std::mutex mutex;
  };
  struct FsModule {
    std::unique_ptr<asblk::BlockDevice> owned_disk;
    std::unique_ptr<asfat::Filesystem> fs;
    // Downcast views for snapshot capture; non-null only when this module
    // owns a MemDisk with a FatVolume mounted on it.
    asblk::MemDisk* mem_disk = nullptr;
    asfat::FatVolume* fat_volume = nullptr;
  };
  struct FdEntry {
    enum class Kind { kFree, kFile, kListener, kConnection, kStdio } kind =
        Kind::kFree;
    int fs_handle = -1;
    std::unique_ptr<asnet::TcpListener> listener;
    std::unique_ptr<asnet::TcpConnection> connection;
  };
  struct FdtabModule {
    std::vector<FdEntry> entries;
    std::mutex mutex;
  };
  struct SocketModule {
    std::shared_ptr<asnet::TunPort> port;
    std::unique_ptr<asnet::NetStack> stack;
  };
  struct TimeModule {
    int64_t boot_micros = 0;
  };
  struct MmapRegion {
    std::string path;
    size_t size = 0;
    std::vector<bool> resident;  // per page
    int fs_handle = -1;
  };
  struct MmapModule {
    std::map<uintptr_t, MmapRegion> regions;
    std::mutex mutex;
  };

  asbase::Status LoadLocked(ModuleKind kind);
  asbase::Result<FsModule*> RequireFs();
  asbase::Result<MmModule*> RequireMm();
  asbase::Result<FdtabModule*> RequireFdtab();

  Options options_;

  mutable std::mutex load_mutex_;
  std::array<std::atomic<bool>, kNumModuleKinds> loaded_{};
  std::array<int64_t, kNumModuleKinds> load_nanos_{};

  std::unique_ptr<MmModule> mm_;
  std::unique_ptr<FsModule> fs_;
  std::unique_ptr<FdtabModule> fdtab_;
  std::unique_ptr<SocketModule> socket_;
  std::unique_ptr<TimeModule> time_;
  std::unique_ptr<MmapModule> mmap_;
  bool stdio_ready_ = false;
  std::mutex stdio_mutex_;
  asbase::Status clone_status_;  // kOk unless clone-boot construction failed
};

}  // namespace alloy

#endif  // SRC_CORE_LIBOS_LIBOS_H_
