#include "src/core/libos/libos.h"

#include <sys/mman.h>

#include <cstdio>
#include <cstring>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/core/wfd_snapshot.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace alloy {

const char* ModuleKindName(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kMm:
      return "mm";
    case ModuleKind::kFdtab:
      return "fdtab";
    case ModuleKind::kFatfs:
      return "fatfs";
    case ModuleKind::kRamfs:
      return "ramfs";
    case ModuleKind::kSocket:
      return "socket";
    case ModuleKind::kStdio:
      return "stdio";
    case ModuleKind::kTime:
      return "time";
    case ModuleKind::kMmapFileBackend:
      return "mmap_file_backend";
  }
  return "?";
}

Libos::Libos(Options options) : options_(std::move(options)) {
  if (options_.load_all) {
    // AS-load-all: instantiate every module at boot, like a conventional
    // LibOS image that links everything in. Boot loads are not lazy loads:
    // suppress the per-module trace spans (the whole boot is covered by the
    // caller's wfd_create span) so a load-all invocation shows no
    // module_load children.
    asobs::Trace* trace = options_.trace;
    options_.trace = nullptr;
    for (int i = 0; i < kNumModuleKinds; ++i) {
      const auto kind = static_cast<ModuleKind>(i);
      if (kind == (options_.use_ramfs ? ModuleKind::kFatfs
                                      : ModuleKind::kRamfs)) {
        continue;  // only one filesystem flavor is configured
      }
      if (kind == ModuleKind::kSocket && options_.fabric == nullptr) {
        continue;
      }
      asbase::Status status = EnsureLoaded(kind);
      if (!status.ok()) {
        AS_LOG(kWarn) << "load-all: module " << ModuleKindName(kind)
                      << " failed: " << status.ToString();
      }
    }
    options_.trace = trace;
  }
}

Libos::Libos(Options options, const WfdSnapshot& snapshot)
    : options_(std::move(options)) {
  // Geometry comes from the template — a snapshot of a 64 MiB heap can only
  // clone into a 64 MiB heap.
  options_.heap_bytes = snapshot.heap_bytes;
  options_.disk_blocks = snapshot.disk_blocks;
  for (ModuleKind kind : snapshot.modules) {
    switch (kind) {
      case ModuleKind::kMm: {
        if (snapshot.heap == nullptr) {
          clone_status_ = asbase::Internal("snapshot lists mm but no heap");
          return;
        }
        auto cloned = asalloc::Arena::CloneFrom(*snapshot.heap);
        if (!cloned.ok()) {
          clone_status_ = cloned.status();
          return;
        }
        auto module = std::make_unique<MmModule>();
        module->heap = std::move(*cloned);
        module->allocator.RestoreImage(snapshot.allocator,
                                       module->heap.data());
        if (options_.mpk != nullptr && options_.heap_key != 0) {
          asbase::Status bound = options_.mpk->BindRegion(
              module->heap.data(), module->heap.size(), options_.heap_key,
              PROT_READ | PROT_WRITE);
          if (!bound.ok()) {
            clone_status_ = bound;
            return;
          }
        }
        mm_ = std::move(module);
        break;
      }
      case ModuleKind::kFatfs: {
        if (snapshot.disk == nullptr) {
          clone_status_ = asbase::Internal("snapshot lists fatfs but no disk");
          return;
        }
        auto module = std::make_unique<FsModule>();
        auto mem_disk = std::make_unique<asblk::MemDisk>(snapshot.disk);
        module->mem_disk = mem_disk.get();
        module->owned_disk = std::move(mem_disk);
        auto volume = asfat::FatVolume::MountFromMeta(
            module->owned_disk.get(), snapshot.fat);
        module->fat_volume = volume.get();
        module->fs = std::move(volume);
        fs_ = std::move(module);
        break;
      }
      case ModuleKind::kFdtab: {
        auto module = std::make_unique<FdtabModule>();
        module->entries.resize(3);  // 0/1/2 reserved for stdio
        for (auto& entry : module->entries) {
          entry.kind = FdEntry::Kind::kStdio;
        }
        fdtab_ = std::move(module);
        break;
      }
      case ModuleKind::kSocket:
        // Deliberately not reconstructed: the netstack (TUN attach + poller
        // thread) registers lazily on the clone's first socket use. An idle
        // clone should not own a poller thread.
        continue;
      case ModuleKind::kStdio:
        stdio_ready_ = true;
        break;
      case ModuleKind::kTime: {
        auto module = std::make_unique<TimeModule>();
        module->boot_micros = asbase::WallMicros();
        time_ = std::move(module);
        break;
      }
      case ModuleKind::kMmapFileBackend:
        mmap_ = std::make_unique<MmapModule>();
        break;
      case ModuleKind::kRamfs:
        clone_status_ =
            asbase::Internal("ramfs module in a snapshot (unsupported)");
        return;
    }
    // Marked loaded with zero load_nanos_: clone boot pays no module load,
    // and the visor's warm-delta accounting must not see one.
    loaded_[static_cast<size_t>(kind)].store(true, std::memory_order_release);
  }
}

asbase::Status Libos::CaptureSnapshot(WfdSnapshot* out) {
  std::lock_guard<std::mutex> lock(load_mutex_);
  if (options_.use_ramfs && IsLoaded(ModuleKind::kRamfs)) {
    return asbase::FailedPrecondition("ramfs WFDs are not snapshotable");
  }
  if (IsLoaded(ModuleKind::kFatfs) &&
      (fs_ == nullptr || fs_->mem_disk == nullptr ||
       fs_->fat_volume == nullptr)) {
    return asbase::FailedPrecondition(
        "external disk images are not snapshotable");
  }
  if (PendingSlots() != 0) {
    return asbase::FailedPrecondition("pending slots at snapshot capture");
  }
  if (mmap_ != nullptr) {
    std::lock_guard<std::mutex> mmap_lock(mmap_->mutex);
    if (!mmap_->regions.empty()) {
      return asbase::FailedPrecondition("live mmap regions at capture");
    }
  }
  out->modules = LoadedModules();
  out->heap_bytes = options_.heap_bytes;
  out->disk_blocks = options_.disk_blocks;
  out->use_ramfs = options_.use_ramfs;
  out->load_all = options_.load_all;
  out->image_bytes = 0;
  if (mm_ != nullptr) {
    std::lock_guard<std::mutex> mm_lock(mm_->mutex);
    AS_ASSIGN_OR_RETURN(out->heap, mm_->heap.CaptureSnapshot());
    out->allocator = mm_->allocator.CaptureImage();
    out->image_bytes += out->heap->image_bytes();
  }
  if (fs_ != nullptr && fs_->mem_disk != nullptr) {
    out->disk = fs_->mem_disk->SnapshotImage();
    out->fat = fs_->fat_volume->SnapshotMeta();
    out->image_bytes += out->disk->bytes();
  }
  return asbase::OkStatus();
}

Libos::~Libos() = default;

// ------------------------------------------------------------ module mgmt

bool Libos::IsLoaded(ModuleKind kind) const {
  return loaded_[static_cast<size_t>(kind)].load(std::memory_order_acquire);
}

asbase::Status Libos::EnsureLoaded(ModuleKind kind) {
  if (IsLoaded(kind)) {
    // Fast path: entry already bound (Figure 7b's warm hit).
    asobs::Registry::Global()
        .GetCounter("alloy_libos_module_hits_total")
        .Add(1);
    return asbase::OkStatus();
  }
  // Slow path (Figure 7a): route through the loader under the load lock.
  std::lock_guard<std::mutex> lock(load_mutex_);
  if (IsLoaded(kind)) {
    return asbase::OkStatus();
  }
  asobs::Span span;
  if (options_.trace != nullptr) {
    span = options_.trace->StartSpan(
        std::string("module_load:") + ModuleKindName(kind), "libos",
        options_.trace_parent);
  }
  int64_t nanos = 0;
  asbase::Status status;
  {
    asbase::ScopedTimer timer(&nanos);
    status = LoadLocked(kind);
  }
  asobs::Registry::Global()
      .GetCounter("alloy_libos_module_loads_total",
                  {{"module", ModuleKindName(kind)}})
      .Add(1);
  asobs::Registry::Global()
      .GetHistogram("alloy_libos_module_load_nanos")
      .Record(nanos);
  if (status.ok()) {
    load_nanos_[static_cast<size_t>(kind)] = nanos;
    loaded_[static_cast<size_t>(kind)].store(true, std::memory_order_release);
  }
  return status;
}

namespace {

// Approximate on-disk image sizes of the as-libos modules (the socket
// module links the whole TCP stack; fatfs the filesystem; etc.).
size_t ModuleImageBytes(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kMm:
      return 1u << 20;
    case ModuleKind::kFdtab:
      return 512u << 10;
    case ModuleKind::kFatfs:
      return 3u << 20;
    case ModuleKind::kRamfs:
      return 1u << 20;
    case ModuleKind::kSocket:
      return 4u << 20;
    case ModuleKind::kStdio:
      return 256u << 10;
    case ModuleKind::kTime:
      return 256u << 10;
    case ModuleKind::kMmapFileBackend:
      return 512u << 10;
  }
  return 1u << 20;
}

// The dlmopen() part of a module load: map the module image into this
// namespace (copy), apply relocations (scan + patch), and pay the modeled
// dynamic-linker cost (symbol resolution, initializers) — the dominant part
// of the paper's 88.1ms load-all figure.
void LoadModuleImage(ModuleKind kind) {
  static const std::vector<uint8_t>* kImage = [] {
    auto* image = new std::vector<uint8_t>(4u << 20);
    uint64_t x = 0x9E3779B97f4A7C15ULL;
    for (auto& byte : *image) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      byte = static_cast<uint8_t>(x);
    }
    return image;
  }();
  const size_t bytes = std::min(ModuleImageBytes(kind), kImage->size());
  std::vector<uint8_t> mapped(kImage->begin(),
                              kImage->begin() + static_cast<long>(bytes));
  // "Relocate": patch every location whose byte looks like a reloc marker.
  size_t relocations = 0;
  for (size_t i = 0; i + 8 <= mapped.size(); i += 16) {
    if (mapped[i] < 8) {
      uint64_t v;
      std::memcpy(&v, mapped.data() + i, 8);
      v += 0x7F0000000000ULL;
      std::memcpy(mapped.data() + i, &v, 8);
      ++relocations;
    }
  }
  volatile size_t sink = relocations;
  (void)sink;
  asbase::SpinFor(asbase::SimCostModel::Global().Scaled(
      asbase::SimCostModel::Global().dlmopen_per_module_nanos));
}

}  // namespace

asbase::Status Libos::LoadLocked(ModuleKind kind) {
  if (IsLoaded(kind)) {
    // Dependency edges (fdtab -> fs, mmap -> mm/fdtab) land here when the
    // dependency was already loaded; never reconstruct live module state.
    return asbase::OkStatus();
  }
  LoadModuleImage(kind);
  switch (kind) {
    case ModuleKind::kMm: {
      auto module = std::make_unique<MmModule>();
      module->heap = asalloc::Arena(options_.heap_bytes);
      if (!module->heap.valid()) {
        return asbase::ResourceExhausted("cannot map WFD heap");
      }
      module->allocator.Init(module->heap.data(), module->heap.size());
      if (options_.mpk != nullptr && options_.heap_key != 0) {
        AS_RETURN_IF_ERROR(options_.mpk->BindRegion(
            module->heap.data(), module->heap.size(), options_.heap_key,
            PROT_READ | PROT_WRITE));
      }
      mm_ = std::move(module);
      return asbase::OkStatus();
    }
    case ModuleKind::kFatfs: {
      if (options_.use_ramfs) {
        return asbase::FailedPrecondition(
            "WFD is configured for ramfs; fatfs unavailable");
      }
      auto module = std::make_unique<FsModule>();
      asblk::BlockDevice* disk = options_.disk;
      if (disk == nullptr) {
        auto mem_disk = std::make_unique<asblk::MemDisk>(options_.disk_blocks);
        module->mem_disk = mem_disk.get();
        module->owned_disk = std::move(mem_disk);
        disk = module->owned_disk.get();
      }
      auto mounted = asfat::FatVolume::Mount(disk);
      if (!mounted.ok()) {
        // Fresh disk image: format it, then mount.
        AS_RETURN_IF_ERROR(asfat::FatVolume::Format(disk));
        mounted = asfat::FatVolume::Mount(disk);
        if (!mounted.ok()) {
          return mounted.status();
        }
      }
      module->fat_volume = mounted->get();
      module->fs = std::move(*mounted);
      fs_ = std::move(module);
      return asbase::OkStatus();
    }
    case ModuleKind::kRamfs: {
      if (!options_.use_ramfs) {
        return asbase::FailedPrecondition(
            "WFD is configured for fatfs; ramfs unavailable");
      }
      auto module = std::make_unique<FsModule>();
      module->fs = std::make_unique<asfat::RamFilesystem>();
      fs_ = std::move(module);
      return asbase::OkStatus();
    }
    case ModuleKind::kFdtab: {
      // fdtab depends on a filesystem to resolve paths against.
      AS_RETURN_IF_ERROR(LoadLocked(options_.use_ramfs ? ModuleKind::kRamfs
                                                       : ModuleKind::kFatfs));
      loaded_[static_cast<size_t>(options_.use_ramfs ? ModuleKind::kRamfs
                                                     : ModuleKind::kFatfs)]
          .store(true, std::memory_order_release);
      auto module = std::make_unique<FdtabModule>();
      module->entries.resize(3);  // 0/1/2 reserved for stdio
      for (auto& entry : module->entries) {
        entry.kind = FdEntry::Kind::kStdio;
      }
      fdtab_ = std::move(module);
      return asbase::OkStatus();
    }
    case ModuleKind::kSocket: {
      if (options_.fabric == nullptr) {
        return asbase::FailedPrecondition(
            "WFD has no virtual network attachment");
      }
      auto module = std::make_unique<SocketModule>();
      module->port = options_.fabric->Attach(options_.addr);
      module->stack = std::make_unique<asnet::NetStack>(module->port);
      socket_ = std::move(module);
      return asbase::OkStatus();
    }
    case ModuleKind::kStdio: {
      stdio_ready_ = true;
      return asbase::OkStatus();
    }
    case ModuleKind::kTime: {
      auto module = std::make_unique<TimeModule>();
      module->boot_micros = asbase::WallMicros();
      time_ = std::move(module);
      return asbase::OkStatus();
    }
    case ModuleKind::kMmapFileBackend: {
      AS_RETURN_IF_ERROR(LoadLocked(ModuleKind::kMm));
      loaded_[static_cast<size_t>(ModuleKind::kMm)].store(
          true, std::memory_order_release);
      AS_RETURN_IF_ERROR(LoadLocked(ModuleKind::kFdtab));
      loaded_[static_cast<size_t>(ModuleKind::kFdtab)].store(
          true, std::memory_order_release);
      mmap_ = std::make_unique<MmapModule>();
      return asbase::OkStatus();
    }
  }
  return asbase::InvalidArgument("unknown module kind");
}

void Libos::SetTrace(asobs::Trace* trace, uint32_t trace_parent) {
  std::lock_guard<std::mutex> lock(load_mutex_);
  options_.trace = trace;
  options_.trace_parent = trace_parent;
}

asbase::Status Libos::ResetForReuse() {
  // mmap regions first: each holds a heap allocation and an fs handle.
  if (mmap_ != nullptr) {
    std::vector<uintptr_t> bases;
    {
      std::lock_guard<std::mutex> lock(mmap_->mutex);
      for (const auto& [base, region] : mmap_->regions) {
        bases.push_back(base);
      }
    }
    for (uintptr_t base : bases) {
      AS_RETURN_IF_ERROR(Munmap(reinterpret_cast<void*>(base)));
    }
  }
  // Open fds next — and strictly before slot buffers are freed: dropping a
  // connection entry tears the TCP connection down (waiting briefly for a
  // clean close), which releases any zero-copy TX pins still covering slot
  // memory. Freeing the slots first would rip pinned memory out from under
  // in-flight frames. Files close too (stdio entries 0-2 persist).
  if (fdtab_ != nullptr) {
    std::vector<int> handles;
    {
      std::lock_guard<std::mutex> lock(fdtab_->mutex);
      for (size_t fd = 3; fd < fdtab_->entries.size(); ++fd) {
        FdEntry& entry = fdtab_->entries[fd];
        if (entry.kind == FdEntry::Kind::kFile) {
          handles.push_back(entry.fs_handle);
        }
        entry = FdEntry{};
      }
    }
    for (int handle : handles) {
      AS_RETURN_IF_ERROR(fs_->fs->Close(handle));
    }
  }
  // Unconsumed slot buffers (a producer ran but its consumer never
  // acquired): return the memory to the allocator so repeated warm
  // invocations cannot leak the heap dry. CheckReleasable makes a pin that
  // somehow survived connection teardown loud instead of a silent
  // use-after-free on retransmit.
  if (mm_ != nullptr) {
    for (const std::string& slot : mm_->slots.SlotNames()) {
      auto record = mm_->slots.Peek(slot);
      if (!record.ok()) {
        continue;  // raced with a concurrent consumer; nothing to free
      }
      AS_RETURN_IF_ERROR(mm_->slots.Remove(slot));
      if (!mm_->slots.CheckReleasable(record->addr)) {
        return asbase::FailedPrecondition(
            "slot buffer still pinned by the netstack at reset");
      }
      std::lock_guard<std::mutex> lock(mm_->mutex);
      mm_->allocator.Deallocate(reinterpret_cast<void*>(record->addr));
    }
  }
  return asbase::OkStatus();
}

std::vector<ModuleKind> Libos::LoadedModules() const {
  std::vector<ModuleKind> out;
  for (int i = 0; i < kNumModuleKinds; ++i) {
    if (loaded_[static_cast<size_t>(i)].load(std::memory_order_acquire)) {
      out.push_back(static_cast<ModuleKind>(i));
    }
  }
  return out;
}

int64_t Libos::ModuleLoadNanos(ModuleKind kind) const {
  return load_nanos_[static_cast<size_t>(kind)];
}

int64_t Libos::TotalLoadNanos() const {
  int64_t total = 0;
  for (int64_t nanos : load_nanos_) {
    total += nanos;
  }
  return total;
}

// ------------------------------------------------------------------- mm

asbase::Result<Libos::MmModule*> Libos::RequireMm() {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kMm));
  return mm_.get();
}

asbase::Result<void*> Libos::AllocBuffer(const std::string& slot, size_t size,
                                         size_t align, uint64_t fingerprint) {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  std::lock_guard<std::mutex> lock(mm->mutex);
  void* data = mm->allocator.Allocate(size, align);
  if (data == nullptr) {
    return asbase::ResourceExhausted("WFD heap exhausted allocating " +
                                     std::to_string(size) + " bytes");
  }
  asbase::Status status = mm->slots.Register(
      slot, asalloc::BufferRecord{reinterpret_cast<uintptr_t>(data), size,
                                  fingerprint});
  if (!status.ok()) {
    mm->allocator.Deallocate(data);
    return status;
  }
  return data;
}

asbase::Result<asalloc::BufferRecord> Libos::AcquireBuffer(
    const std::string& slot, uint64_t fingerprint) {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  return mm->slots.Acquire(slot, fingerprint);
}

asbase::Status Libos::RegisterBuffer(const std::string& slot, void* addr,
                                     size_t size, uint64_t fingerprint) {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  return mm->slots.Register(
      slot, asalloc::BufferRecord{reinterpret_cast<uintptr_t>(addr), size,
                                  fingerprint});
}

asbase::Result<void*> Libos::HeapAllocate(size_t size, size_t align) {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  std::lock_guard<std::mutex> lock(mm->mutex);
  void* data = mm->allocator.Allocate(size, align);
  if (data == nullptr) {
    return asbase::ResourceExhausted("WFD heap exhausted");
  }
  return data;
}

asbase::Status Libos::HeapFree(void* ptr) {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  // Freeing memory the netstack still sends from is a bug in the caller;
  // surface it (metric + log + debug assert) rather than free silently.
  mm->slots.CheckReleasable(reinterpret_cast<uintptr_t>(ptr));
  std::lock_guard<std::mutex> lock(mm->mutex);
  mm->allocator.Deallocate(ptr);
  return asbase::OkStatus();
}

asbase::Result<std::shared_ptr<const void>> Libos::PinTxBuffer(void* addr,
                                                               size_t size) {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  return mm->slots.PinForTx(reinterpret_cast<uintptr_t>(addr), size);
}

asbase::Result<asalloc::LinkedListAllocator::Stats> Libos::HeapStats() {
  AS_ASSIGN_OR_RETURN(MmModule * mm, RequireMm());
  std::lock_guard<std::mutex> lock(mm->mutex);
  return mm->allocator.stats();
}

size_t Libos::PendingSlots() const {
  return mm_ == nullptr ? 0 : mm_->slots.size();
}

asalloc::Arena* Libos::heap_arena() {
  return mm_ == nullptr ? nullptr : &mm_->heap;
}

size_t Libos::ResidentHeapBytes() const {
  return mm_ == nullptr ? 0 : mm_->heap.PrivateResidentBytes();
}

size_t Libos::ResidentDiskBytes() const {
  return fs_ == nullptr || fs_->mem_disk == nullptr
             ? 0
             : fs_->mem_disk->ResidentBytes();
}

// ------------------------------------------------------------------ files

asbase::Result<Libos::FsModule*> Libos::RequireFs() {
  AS_RETURN_IF_ERROR(EnsureLoaded(options_.use_ramfs ? ModuleKind::kRamfs
                                                     : ModuleKind::kFatfs));
  return fs_.get();
}

asbase::Result<Libos::FdtabModule*> Libos::RequireFdtab() {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kFdtab));
  return fdtab_.get();
}

asbase::Result<asfat::Filesystem*> Libos::Filesystem() {
  AS_ASSIGN_OR_RETURN(FsModule * fs, RequireFs());
  return fs->fs.get();
}

asbase::Result<int> Libos::Open(const std::string& path,
                                asfat::OpenFlags flags) {
  AS_ASSIGN_OR_RETURN(FdtabModule * fdtab, RequireFdtab());
  AS_ASSIGN_OR_RETURN(int handle, fs_->fs->Open(path, flags));
  std::lock_guard<std::mutex> lock(fdtab->mutex);
  for (size_t fd = 3; fd < fdtab->entries.size(); ++fd) {
    if (fdtab->entries[fd].kind == FdEntry::Kind::kFree) {
      fdtab->entries[fd].kind = FdEntry::Kind::kFile;
      fdtab->entries[fd].fs_handle = handle;
      return static_cast<int>(fd);
    }
  }
  FdEntry entry;
  entry.kind = FdEntry::Kind::kFile;
  entry.fs_handle = handle;
  fdtab->entries.push_back(std::move(entry));
  return static_cast<int>(fdtab->entries.size() - 1);
}

namespace {
asbase::Status BadFd(int fd) {
  return asbase::InvalidArgument("bad file descriptor " + std::to_string(fd));
}
}  // namespace

asbase::Status Libos::CloseFd(int fd) {
  AS_ASSIGN_OR_RETURN(FdtabModule * fdtab, RequireFdtab());
  int handle;
  {
    std::lock_guard<std::mutex> lock(fdtab->mutex);
    if (fd < 3 || static_cast<size_t>(fd) >= fdtab->entries.size() ||
        fdtab->entries[static_cast<size_t>(fd)].kind != FdEntry::Kind::kFile) {
      return BadFd(fd);
    }
    handle = fdtab->entries[static_cast<size_t>(fd)].fs_handle;
    fdtab->entries[static_cast<size_t>(fd)] = FdEntry{};
  }
  return fs_->fs->Close(handle);
}

asbase::Result<size_t> Libos::Read(int fd, std::span<uint8_t> out) {
  AS_ASSIGN_OR_RETURN(FdtabModule * fdtab, RequireFdtab());
  int handle;
  {
    std::lock_guard<std::mutex> lock(fdtab->mutex);
    if (fd < 3 || static_cast<size_t>(fd) >= fdtab->entries.size() ||
        fdtab->entries[static_cast<size_t>(fd)].kind != FdEntry::Kind::kFile) {
      return BadFd(fd);
    }
    handle = fdtab->entries[static_cast<size_t>(fd)].fs_handle;
  }
  return fs_->fs->Read(handle, out);
}

asbase::Result<size_t> Libos::Write(int fd, std::span<const uint8_t> data) {
  AS_ASSIGN_OR_RETURN(FdtabModule * fdtab, RequireFdtab());
  if (fd == 1 || fd == 2) {
    return HostStdout(data);
  }
  int handle;
  {
    std::lock_guard<std::mutex> lock(fdtab->mutex);
    if (fd < 3 || static_cast<size_t>(fd) >= fdtab->entries.size() ||
        fdtab->entries[static_cast<size_t>(fd)].kind != FdEntry::Kind::kFile) {
      return BadFd(fd);
    }
    handle = fdtab->entries[static_cast<size_t>(fd)].fs_handle;
  }
  return fs_->fs->Write(handle, data);
}

asbase::Result<uint64_t> Libos::Seek(int fd, int64_t offset,
                                     asfat::Whence whence) {
  AS_ASSIGN_OR_RETURN(FdtabModule * fdtab, RequireFdtab());
  int handle;
  {
    std::lock_guard<std::mutex> lock(fdtab->mutex);
    if (fd < 3 || static_cast<size_t>(fd) >= fdtab->entries.size() ||
        fdtab->entries[static_cast<size_t>(fd)].kind != FdEntry::Kind::kFile) {
      return BadFd(fd);
    }
    handle = fdtab->entries[static_cast<size_t>(fd)].fs_handle;
  }
  return fs_->fs->Seek(handle, offset, whence);
}

asbase::Result<asfat::FileInfo> Libos::Stat(const std::string& path) {
  AS_ASSIGN_OR_RETURN(FsModule * fs, RequireFs());
  return fs->fs->Stat(path);
}

asbase::Status Libos::Mkdir(const std::string& path) {
  AS_ASSIGN_OR_RETURN(FsModule * fs, RequireFs());
  return fs->fs->Mkdir(path);
}

asbase::Status Libos::Remove(const std::string& path) {
  AS_ASSIGN_OR_RETURN(FsModule * fs, RequireFs());
  return fs->fs->Remove(path);
}

asbase::Result<std::vector<asfat::FileInfo>> Libos::ReadDir(
    const std::string& path) {
  AS_ASSIGN_OR_RETURN(FsModule * fs, RequireFs());
  return fs->fs->ReadDir(path);
}

// ------------------------------------------------------------------ stdio

asbase::Result<size_t> Libos::HostStdout(std::span<const uint8_t> data) {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kStdio));
  std::lock_guard<std::mutex> lock(stdio_mutex_);
  std::fwrite(data.data(), 1, data.size(), stdout);
  std::fflush(stdout);
  return data.size();
}

// ------------------------------------------------------------------- time

asbase::Result<int64_t> Libos::GettimeofdayMicros() {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kTime));
  return asbase::WallMicros();
}

// ----------------------------------------------------------------- socket

asbase::Result<std::unique_ptr<asnet::TcpListener>> Libos::SmolBind(
    uint16_t port) {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kSocket));
  return socket_->stack->Listen(port);
}

asbase::Result<std::unique_ptr<asnet::TcpConnection>> Libos::SmolConnect(
    asnet::Ipv4Addr dst, uint16_t port) {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kSocket));
  return socket_->stack->Connect(dst, port);
}

asbase::Result<asnet::NetStack*> Libos::Stack() {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kSocket));
  return socket_->stack.get();
}

// ------------------------------------------------------ mmap_file_backend

asbase::Result<std::span<uint8_t>> Libos::MmapFile(const std::string& path) {
  AS_RETURN_IF_ERROR(EnsureLoaded(ModuleKind::kMmapFileBackend));
  AS_ASSIGN_OR_RETURN(asfat::FileInfo info, Stat(path));
  if (info.is_directory) {
    return asbase::InvalidArgument(path + " is a directory");
  }
  const size_t page = asalloc::Arena::PageSize();
  const size_t size = info.size == 0 ? page : info.size;
  AS_ASSIGN_OR_RETURN(void* base, HeapAllocate(size, page));
  AS_ASSIGN_OR_RETURN(int handle,
                      fs_->fs->Open(path, asfat::OpenFlags::ReadOnly()));
  MmapRegion region;
  region.path = path;
  region.size = size;
  region.resident.assign((size + page - 1) / page, false);
  region.fs_handle = handle;
  std::lock_guard<std::mutex> lock(mmap_->mutex);
  mmap_->regions[reinterpret_cast<uintptr_t>(base)] = std::move(region);
  return std::span<uint8_t>(static_cast<uint8_t*>(base), size);
}

asbase::Result<size_t> Libos::EnsureResident(void* base, size_t offset,
                                             size_t len) {
  if (mmap_ == nullptr) {
    return asbase::FailedPrecondition("mmap_file_backend not loaded");
  }
  std::lock_guard<std::mutex> lock(mmap_->mutex);
  auto it = mmap_->regions.find(reinterpret_cast<uintptr_t>(base));
  if (it == mmap_->regions.end()) {
    return asbase::NotFound("no mapped region at this address");
  }
  MmapRegion& region = it->second;
  if (len == 0) {
    return size_t{0};
  }
  if (offset + len > region.size) {
    return asbase::OutOfRange("fault range outside mapped region");
  }
  const size_t page = asalloc::Arena::PageSize();
  size_t pages_read = 0;
  for (size_t p = offset / page; p <= (offset + len - 1) / page; ++p) {
    if (region.resident[p]) {
      continue;
    }
    // User-space page fault handling: read one page from the filesystem
    // into the mapped memory (the Userfaultfd path in the real system).
    const size_t page_offset = p * page;
    const size_t chunk = std::min(page, region.size - page_offset);
    AS_RETURN_IF_ERROR(
        fs_->fs->Seek(region.fs_handle, static_cast<int64_t>(page_offset),
                      asfat::Whence::kSet)
            .status());
    std::span<uint8_t> dest(static_cast<uint8_t*>(base) + page_offset, chunk);
    size_t done = 0;
    while (done < chunk) {
      AS_ASSIGN_OR_RETURN(size_t n,
                          fs_->fs->Read(region.fs_handle,
                                        dest.subspan(done)));
      if (n == 0) {
        break;  // file shorter than region: rest stays zero
      }
      done += n;
    }
    region.resident[p] = true;
    ++pages_read;
  }
  return pages_read;
}

asbase::Status Libos::Munmap(void* base) {
  if (mmap_ == nullptr) {
    return asbase::FailedPrecondition("mmap_file_backend not loaded");
  }
  int handle;
  {
    std::lock_guard<std::mutex> lock(mmap_->mutex);
    auto it = mmap_->regions.find(reinterpret_cast<uintptr_t>(base));
    if (it == mmap_->regions.end()) {
      return asbase::NotFound("no mapped region at this address");
    }
    handle = it->second.fs_handle;
    mmap_->regions.erase(it);
  }
  AS_RETURN_IF_ERROR(fs_->fs->Close(handle));
  return HeapFree(base);
}

}  // namespace alloy
