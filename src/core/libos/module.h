// as-libos module identities (Table 2).
//
// Each kind names one on-demand loadable kernel-functionality module. The
// mapping from module to substrate:
//   mm                 WFD heap (linked-list allocator) + AsBuffer slot table
//   fdtab              file-descriptor table (files, sockets, stdio)
//   fatfs              FAT32 volume over the WFD's virtual disk image
//   ramfs              in-memory filesystem (Fig 16 variant)
//   socket             user-space TCP/IP stack on a TUN port
//   stdio              host console passthrough
//   time               host clock access
//   mmap_file_backend  user-space paging of file-backed regions

#ifndef SRC_CORE_LIBOS_MODULE_H_
#define SRC_CORE_LIBOS_MODULE_H_

#include <cstdint>

namespace alloy {

enum class ModuleKind : uint8_t {
  kMm = 0,
  kFdtab,
  kFatfs,
  kRamfs,
  kSocket,
  kStdio,
  kTime,
  kMmapFileBackend,
};

constexpr int kNumModuleKinds = 8;

const char* ModuleKindName(ModuleKind kind);

}  // namespace alloy

#endif  // SRC_CORE_LIBOS_MODULE_H_
