// WFD snapshot-fork templates (DESIGN.md §14).
//
// A WfdSnapshot freezes everything a workflow's first successful boot+invoke
// produced that is expensive to rebuild: the heap arena's resident pages
// (sealed memfd, cloned MAP_PRIVATE), the allocator's free-list cursor
// (position-independent image, rebased into the clone's address space), the
// fatfs disk contents (chunk-granular CoW image) plus the mounted volume's
// geometry/FAT, and the loaded-module table. Cloning a WFD from it skips
// Libos module construction entirely — the ~13 ms dlmopen-dominated cold
// boot becomes an O(µs) mmap + rebase.
//
// Snapshots are immutable once published. The visor owns one SnapshotCell
// per workflow registration; the pool factory and the invoke miss path read
// it, the first successful post-invoke reset writes it, and re-registration
// or a failed reset invalidates it.

#ifndef SRC_CORE_WFD_SNAPSHOT_H_
#define SRC_CORE_WFD_SNAPSHOT_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/alloc/arena.h"
#include "src/alloc/linked_list_allocator.h"
#include "src/blockdev/block_device.h"
#include "src/core/libos/module.h"
#include "src/fatfs/fat_volume.h"

namespace alloy {

struct WfdSnapshot {
  // ---- libos state ----
  // Modules loaded in the template, in load order. Clone boot reconstructs
  // each module's host-side objects from the images below without paying
  // LoadModuleImage (the simulated dlmopen) or device I/O.
  std::vector<ModuleKind> modules;
  // Heap template (null when mm was never loaded).
  std::shared_ptr<const asalloc::ArenaSnapshot> heap;
  asalloc::LinkedListAllocator::Image allocator;
  // Disk template + mounted-volume metadata (null when fatfs was never
  // loaded; ramfs-backed WFDs are not snapshotable and fall back to replay).
  std::shared_ptr<const asblk::MemDiskImage> disk;
  asfat::FatVolume::MetaImage fat;

  // ---- wfd-level compatibility stamp ----
  // CloneFromSnapshot refuses a snapshot whose geometry does not match the
  // clone's WfdOptions (belt and braces; re-registration already swaps the
  // cell).
  size_t heap_bytes = 0;
  uint64_t disk_blocks = 0;
  bool use_ramfs = false;
  bool load_all = false;

  // Stage-worker fan-out the template had warmed up.
  size_t stage_workers = 0;

  // One-time template cost: heap image bytes in the sealed memfd + disk
  // chunk bytes referenced by the image. Checked against
  // ALLOY_SNAPSHOT_MAX_BYTES at capture.
  size_t image_bytes = 0;
};

// Shared, mutex-guarded holder for a workflow's current snapshot. Shared
// between the visor Entry and the pool factory closure (which may outlive
// the registration, like WarmupProfile).
class SnapshotCell {
 public:
  std::shared_ptr<const WfdSnapshot> Get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_;
  }

  // Claims the (single) capture attempt: returns true when the cell is
  // empty and no capture is running. The winner must call EndCapture.
  bool TryBeginCapture() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (snapshot_ != nullptr || capturing_) {
      return false;
    }
    capturing_ = true;
    return true;
  }

  // Publishes the captured snapshot (or null on capture failure, which
  // re-opens the cell for a later attempt... once: failed captures mark the
  // cell dead so a workflow whose state cannot snapshot does not pay the
  // capture cost on every invocation).
  void EndCapture(std::shared_ptr<const WfdSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mutex_);
    capturing_ = false;
    if (snapshot != nullptr) {
      snapshot_ = std::move(snapshot);
    } else {
      dead_ = true;
    }
  }

  bool CaptureWorthTrying() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return snapshot_ == nullptr && !capturing_ && !dead_;
  }

  // Drops the snapshot (reset failure, re-registration). Returns true when
  // a snapshot was actually present (the caller counts an invalidation).
  bool Invalidate() {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool had = snapshot_ != nullptr;
    snapshot_ = nullptr;
    return had;
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const WfdSnapshot> snapshot_;
  bool capturing_ = false;
  bool dead_ = false;
};

}  // namespace alloy

#endif  // SRC_CORE_WFD_SNAPSHOT_H_
