#include "src/core/wfd.h"

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace alloy {

asbase::Result<std::unique_ptr<Wfd>> Wfd::Create(WfdOptions options) {
  const int64_t start = asbase::MonoNanos();
  auto wfd = std::unique_ptr<Wfd>(new Wfd());
  wfd->options_ = options;
  wfd->mpk_ = std::make_unique<asmpk::PkeyRuntime>(options.mpk_backend);

  AS_ASSIGN_OR_RETURN(wfd->system_key_, wfd->mpk_->AllocateKey());
  AS_ASSIGN_OR_RETURN(wfd->user_key_, wfd->mpk_->AllocateKey());

  // System PKRU: everything open (system code may touch user buffers to
  // service syscalls). User PKRU: only the user key (plus default key 0).
  const uint32_t user_pkru = asmpk::PkeyRuntime::AllowKey(
      asmpk::PkeyRuntime::kDenyAll, wfd->user_key_);
  wfd->trampoline_ =
      std::make_unique<asmpk::Trampoline>(wfd->mpk_.get(), user_pkru,
                                          /*system_pkru=*/0u);

  Libos::Options libos_options;
  libos_options.load_all = !options.on_demand;
  libos_options.use_ramfs = options.use_ramfs;
  libos_options.heap_bytes = options.heap_bytes;
  libos_options.disk_blocks = options.disk_blocks;
  libos_options.fabric = options.fabric;
  libos_options.addr = options.addr;
  libos_options.disk = options.disk;
  libos_options.mpk = wfd->mpk_.get();
  libos_options.heap_key = wfd->user_key_;
  libos_options.trace = options.trace;
  libos_options.trace_parent = options.trace_parent;
  wfd->libos_ = std::make_unique<Libos>(std::move(libos_options));

  wfd->creation_nanos_ = asbase::MonoNanos() - start;
  return wfd;
}

asbase::Result<std::unique_ptr<Wfd>> Wfd::CloneFromSnapshot(
    WfdOptions options, std::shared_ptr<const WfdSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return asbase::InvalidArgument("null snapshot");
  }
  // Compatibility stamp: the template's geometry must match what this
  // registration would boot, or the clone would misrepresent the workflow.
  if (options.use_ramfs || snapshot->use_ramfs) {
    return asbase::FailedPrecondition("ramfs WFDs cannot clone-boot");
  }
  if (options.disk != nullptr) {
    return asbase::FailedPrecondition(
        "external-disk WFDs cannot clone-boot");
  }
  if (options.heap_bytes != snapshot->heap_bytes ||
      options.disk_blocks != snapshot->disk_blocks ||
      options.on_demand == snapshot->load_all) {
    return asbase::FailedPrecondition(
        "snapshot geometry does not match WfdOptions");
  }
  const int64_t start = asbase::MonoNanos();
  auto wfd = std::unique_ptr<Wfd>(new Wfd());
  wfd->options_ = options;
  wfd->mpk_ = std::make_unique<asmpk::PkeyRuntime>(options.mpk_backend);

  AS_ASSIGN_OR_RETURN(wfd->system_key_, wfd->mpk_->AllocateKey());
  AS_ASSIGN_OR_RETURN(wfd->user_key_, wfd->mpk_->AllocateKey());

  const uint32_t user_pkru = asmpk::PkeyRuntime::AllowKey(
      asmpk::PkeyRuntime::kDenyAll, wfd->user_key_);
  wfd->trampoline_ = std::make_unique<asmpk::Trampoline>(
      wfd->mpk_.get(), user_pkru, /*system_pkru=*/0u);

  Libos::Options libos_options;
  libos_options.load_all = !options.on_demand;
  libos_options.use_ramfs = options.use_ramfs;
  libos_options.heap_bytes = options.heap_bytes;
  libos_options.disk_blocks = options.disk_blocks;
  libos_options.fabric = options.fabric;
  libos_options.addr = options.addr;
  libos_options.mpk = wfd->mpk_.get();
  libos_options.heap_key = wfd->user_key_;
  libos_options.trace = options.trace;
  libos_options.trace_parent = options.trace_parent;
  wfd->libos_ =
      std::make_unique<Libos>(std::move(libos_options), *snapshot);
  if (!wfd->libos_->clone_status().ok()) {
    return wfd->libos_->clone_status();
  }
  wfd->cloned_from_snapshot_ = true;
  if (snapshot->stage_workers > 0) {
    wfd->EnsureStageWorkers(snapshot->stage_workers);
  }
  wfd->creation_nanos_ = asbase::MonoNanos() - start;
  return wfd;
}

asbase::Result<std::shared_ptr<const WfdSnapshot>> Wfd::CaptureSnapshot(
    size_t max_image_bytes) {
  if (libos_ == nullptr) {
    return asbase::FailedPrecondition("WFD has no LibOS");
  }
  auto snapshot = std::make_shared<WfdSnapshot>();
  AS_RETURN_IF_ERROR(libos_->CaptureSnapshot(snapshot.get()));
  snapshot->stage_workers = stage_worker_count();
  if (max_image_bytes > 0 && snapshot->image_bytes > max_image_bytes) {
    return asbase::ResourceExhausted(
        "snapshot image (" + std::to_string(snapshot->image_bytes) +
        " bytes) exceeds ALLOY_SNAPSHOT_MAX_BYTES");
  }
  return std::shared_ptr<const WfdSnapshot>(std::move(snapshot));
}

Wfd::~Wfd() {
  // Destruction order handles reclaim: libos (heap arena, disk, netstack
  // poller) first, then the trampoline and key runtime. Matches as-visor
  // "destroys the WFD and reclaims the associated resources" (§3.2 step 7).
  if (libos_ != nullptr && mpk_ != nullptr) {
    asalloc::Arena* heap = libos_->heap_arena();
    if (heap != nullptr && heap->valid()) {
      // Re-open and unbind the heap pages before the arena unmaps them.
      mpk_->WritePkru(0);
      mpk_->UnbindRegion(heap->data(), heap->size());
    }
  }
}

void Wfd::SetTrace(asobs::Trace* trace, uint32_t trace_parent) {
  options_.trace = trace;
  options_.trace_parent = trace_parent;
  if (libos_ != nullptr) {
    libos_->SetTrace(trace, trace_parent);
  }
}

asbase::Status Wfd::Reset() {
  if (mpk_ != nullptr) {
    mpk_->WritePkru(0);
  }
  if (libos_ != nullptr) {
    AS_RETURN_IF_ERROR(libos_->ResetForReuse());
  }
  return asbase::OkStatus();
}

asbase::Result<asmpk::ProtKey> Wfd::RegisterFunctionInstance(
    const std::string& function_name) {
  if (!options_.inter_function_isolation) {
    return user_key_;
  }
  auto key = mpk_->AllocateKey();
  if (!key.ok()) {
    // Keys are a finite hardware resource (15); fall back to the shared
    // user key when a workflow has more instances than keys, like the
    // paper's default (shared MPK permissions) mode.
    AS_LOG(kDebug) << "out of pkeys for " << function_name
                   << "; sharing the WFD user key";
    return user_key_;
  }
  return *key;
}

uint32_t Wfd::UserPkru(asmpk::ProtKey function_key) const {
  uint32_t pkru = asmpk::PkeyRuntime::AllowKey(asmpk::PkeyRuntime::kDenyAll,
                                               user_key_);
  if (function_key != user_key_) {
    pkru = asmpk::PkeyRuntime::AllowKey(pkru, function_key);
  }
  return pkru;
}

size_t Wfd::ResidentBytes() const {
  // CoW-aware: a snapshot clone charges only the heap pages it dirtied and
  // the disk chunks it copied, not the template memory it shares. This is
  // what flows into alloy_visor_pool_resident_bytes.
  return libos_ == nullptr
             ? 0
             : libos_->ResidentHeapBytes() + libos_->ResidentDiskBytes();
}

size_t Wfd::EnsureStageWorkers(size_t num_threads) {
  std::lock_guard<std::mutex> lock(stage_workers_mutex_);
  if (stage_workers_ == nullptr) {
    stage_workers_ = std::make_unique<asbase::ThreadPool>(0);
    if (!options_.cpu_affinity.empty()) {
      stage_workers_->PinToCpus(options_.cpu_affinity);
    }
  }
  return stage_workers_->EnsureAtLeast(num_threads);
}

size_t Wfd::stage_worker_count() const {
  std::lock_guard<std::mutex> lock(stage_workers_mutex_);
  return stage_workers_ == nullptr ? 0 : stage_workers_->num_threads();
}

}  // namespace alloy
