#include "src/netstack/wire.h"

#include <cstdio>
#include <cstring>

namespace asnet {
namespace {

void PutBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
void PutBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
uint16_t GetBe16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
uint32_t GetBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

}  // namespace

Ipv4Addr MakeAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | d;
}

std::string AddrToString(Ipv4Addr addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

asbase::Result<Ipv4Addr> ParseAddr(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return asbase::InvalidArgument("bad IPv4 address '" + text + "'");
  }
  return MakeAddr(static_cast<uint8_t>(a), static_cast<uint8_t>(b),
                  static_cast<uint8_t>(c), static_cast<uint8_t>(d));
}

uint16_t Checksum(std::span<const uint8_t> data, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint32_t ChecksumAccumulate(std::span<const uint8_t> data, uint32_t sum,
                            bool* odd) {
  size_t i = 0;
  if (*odd && !data.empty()) {
    // The previous extent ended mid-word: this byte is the low half.
    sum += static_cast<uint32_t>(data[0]);
    i = 1;
    *odd = false;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i] << 8);
    *odd = true;
  }
  // Defer folding to the caller; a 32-bit accumulator cannot overflow over
  // any frame-sized gather list (sum of 16-bit words).
  return sum;
}

uint16_t ChecksumGather(std::span<const std::span<const uint8_t>> parts,
                        uint32_t initial) {
  uint32_t sum = initial;
  bool odd = false;
  for (const auto& part : parts) {
    sum = ChecksumAccumulate(part, sum, &odd);
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint32_t PseudoHeaderSum(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                         uint16_t l4_length) {
  uint32_t sum = 0;
  sum += (src >> 16) + (src & 0xFFFF);
  sum += (dst >> 16) + (dst & 0xFFFF);
  sum += static_cast<uint32_t>(proto);
  sum += l4_length;
  return sum;
}

std::vector<uint8_t> BuildIpv4(const Ipv4Header& header,
                               std::span<const uint8_t> l4) {
  std::vector<uint8_t> packet(kIpv4HeaderSize + l4.size());
  uint8_t* p = packet.data();
  p[0] = 0x45;  // version 4, IHL 5
  p[1] = 0;     // DSCP
  PutBe16(&p[2], static_cast<uint16_t>(packet.size()));
  PutBe16(&p[4], 0);       // identification
  PutBe16(&p[6], 0x4000);  // don't fragment
  p[8] = header.ttl;
  p[9] = static_cast<uint8_t>(header.proto);
  PutBe16(&p[10], 0);  // checksum placeholder
  PutBe32(&p[12], header.src);
  PutBe32(&p[16], header.dst);
  PutBe16(&p[10], Checksum({p, kIpv4HeaderSize}));
  if (!l4.empty()) {
    std::memcpy(p + kIpv4HeaderSize, l4.data(), l4.size());
  }
  return packet;
}

asbase::Result<std::span<const uint8_t>> ParseIpv4(
    std::span<const uint8_t> packet, Ipv4Header* header) {
  if (packet.size() < kIpv4HeaderSize) {
    return asbase::InvalidArgument("IPv4 packet too short");
  }
  const uint8_t* p = packet.data();
  if ((p[0] >> 4) != 4) {
    return asbase::InvalidArgument("not IPv4");
  }
  const size_t ihl = static_cast<size_t>(p[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderSize || packet.size() < ihl) {
    return asbase::InvalidArgument("bad IHL");
  }
  if (Checksum({p, ihl}) != 0) {
    return asbase::DataLoss("IPv4 header checksum mismatch");
  }
  const uint16_t total = GetBe16(&p[2]);
  if (total < ihl || total > packet.size()) {
    return asbase::InvalidArgument("bad IPv4 total length");
  }
  header->total_length = total;
  header->ttl = p[8];
  header->proto = static_cast<IpProto>(p[9]);
  header->src = GetBe32(&p[12]);
  header->dst = GetBe32(&p[16]);
  return packet.subspan(ihl, total - ihl);
}

asbase::Result<std::span<const uint8_t>> ParseIpv4Packet(const Packet& packet,
                                                         Ipv4Header* header) {
  if (packet.contiguous()) {
    return ParseIpv4(packet.head(), header);
  }
  const std::span<const uint8_t> head = packet.head();
  if (head.size() < kIpv4HeaderSize) {
    return asbase::InvalidArgument("IPv4 packet too short");
  }
  const uint8_t* p = head.data();
  if ((p[0] >> 4) != 4) {
    return asbase::InvalidArgument("not IPv4");
  }
  const size_t ihl = static_cast<size_t>(p[0] & 0x0F) * 4;
  if (ihl < kIpv4HeaderSize || head.size() < ihl) {
    return asbase::InvalidArgument("bad IHL");
  }
  if (Checksum({p, ihl}) != 0) {
    return asbase::DataLoss("IPv4 header checksum mismatch");
  }
  const uint16_t total = GetBe16(&p[2]);
  // For a gather frame the total length must cover the inline L4 bytes plus
  // every payload extent exactly — the builder is local, so a mismatch means
  // a mangled frame, not padding.
  if (total != packet.size()) {
    return asbase::InvalidArgument("bad IPv4 total length");
  }
  header->total_length = total;
  header->ttl = p[8];
  header->proto = static_cast<IpProto>(p[9]);
  header->src = GetBe32(&p[12]);
  header->dst = GetBe32(&p[16]);
  return head.subspan(ihl);
}

std::vector<uint8_t> BuildTcp(Ipv4Addr src, Ipv4Addr dst,
                              const TcpHeader& header,
                              std::span<const uint8_t> payload) {
  std::vector<uint8_t> segment(kTcpHeaderSize + payload.size());
  uint8_t* p = segment.data();
  PutBe16(&p[0], header.src_port);
  PutBe16(&p[2], header.dst_port);
  PutBe32(&p[4], header.seq);
  PutBe32(&p[8], header.ack);
  p[12] = (kTcpHeaderSize / 4) << 4;  // data offset
  p[13] = header.flags;
  PutBe16(&p[14], header.window);
  PutBe16(&p[16], 0);  // checksum placeholder
  PutBe16(&p[18], 0);  // urgent pointer
  if (!payload.empty()) {
    std::memcpy(p + kTcpHeaderSize, payload.data(), payload.size());
  }
  const uint32_t pseudo = PseudoHeaderSum(
      src, dst, IpProto::kTcp, static_cast<uint16_t>(segment.size()));
  PutBe16(&p[16], Checksum(segment, pseudo));
  return segment;
}

asbase::Result<std::span<const uint8_t>> ParseTcp(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> segment,
    TcpHeader* header) {
  if (segment.size() < kTcpHeaderSize) {
    return asbase::InvalidArgument("TCP segment too short");
  }
  const uint32_t pseudo = PseudoHeaderSum(
      src, dst, IpProto::kTcp, static_cast<uint16_t>(segment.size()));
  if (Checksum(segment, pseudo) != 0) {
    return asbase::DataLoss("TCP checksum mismatch");
  }
  const uint8_t* p = segment.data();
  header->src_port = GetBe16(&p[0]);
  header->dst_port = GetBe16(&p[2]);
  header->seq = GetBe32(&p[4]);
  header->ack = GetBe32(&p[8]);
  const size_t offset = static_cast<size_t>(p[12] >> 4) * 4;
  if (offset < kTcpHeaderSize || offset > segment.size()) {
    return asbase::InvalidArgument("bad TCP data offset");
  }
  header->flags = p[13];
  header->window = GetBe16(&p[14]);
  return segment.subspan(offset);
}

Packet BuildTcpPacket(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& header,
                      std::vector<PayloadRef> payload, bool checksum_offload) {
  size_t payload_bytes = 0;
  for (const PayloadRef& ref : payload) {
    payload_bytes += ref.bytes.size();
  }
  std::vector<uint8_t> head(kIpv4HeaderSize + kTcpHeaderSize);
  uint8_t* ip = head.data();
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0;     // DSCP
  PutBe16(&ip[2], static_cast<uint16_t>(head.size() + payload_bytes));
  PutBe16(&ip[4], 0);       // identification
  PutBe16(&ip[6], 0x4000);  // don't fragment
  ip[8] = 64;               // ttl
  ip[9] = static_cast<uint8_t>(IpProto::kTcp);
  PutBe16(&ip[10], 0);  // checksum placeholder
  PutBe32(&ip[12], src);
  PutBe32(&ip[16], dst);
  PutBe16(&ip[10], Checksum({ip, kIpv4HeaderSize}));

  uint8_t* tcp = head.data() + kIpv4HeaderSize;
  PutBe16(&tcp[0], header.src_port);
  PutBe16(&tcp[2], header.dst_port);
  PutBe32(&tcp[4], header.seq);
  PutBe32(&tcp[8], header.ack);
  tcp[12] = (kTcpHeaderSize / 4) << 4;  // data offset
  tcp[13] = header.flags;
  PutBe16(&tcp[14], header.window);
  PutBe16(&tcp[16], 0);  // checksum: stays zero under offload
  PutBe16(&tcp[18], 0);  // urgent pointer
  if (!checksum_offload) {
    const uint32_t pseudo = PseudoHeaderSum(
        src, dst, IpProto::kTcp,
        static_cast<uint16_t>(kTcpHeaderSize + payload_bytes));
    std::vector<std::span<const uint8_t>> parts;
    parts.reserve(payload.size() + 1);
    parts.emplace_back(tcp, kTcpHeaderSize);
    for (const PayloadRef& ref : payload) {
      parts.push_back(ref.bytes);
    }
    PutBe16(&tcp[16], ChecksumGather(parts, pseudo));
  }
  return Packet(std::move(head), std::move(payload), checksum_offload);
}

asbase::Result<std::span<const uint8_t>> ParseTcpSegment(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> l4_head,
    const Packet& packet, TcpHeader* header) {
  if (l4_head.size() < kTcpHeaderSize) {
    return asbase::InvalidArgument("TCP segment too short");
  }
  const size_t l4_length = l4_head.size() + packet.payload_ref_bytes();
  if (!packet.checksum_offload()) {
    const uint32_t pseudo = PseudoHeaderSum(src, dst, IpProto::kTcp,
                                            static_cast<uint16_t>(l4_length));
    uint32_t sum = pseudo;
    bool odd = false;
    sum = ChecksumAccumulate(l4_head, sum, &odd);
    for (const PayloadRef& ref : packet.refs()) {
      sum = ChecksumAccumulate(ref.bytes, sum, &odd);
    }
    while (sum >> 16) {
      sum = (sum & 0xFFFF) + (sum >> 16);
    }
    if (static_cast<uint16_t>(~sum) != 0) {
      return asbase::DataLoss("TCP checksum mismatch");
    }
  }
  const uint8_t* p = l4_head.data();
  header->src_port = GetBe16(&p[0]);
  header->dst_port = GetBe16(&p[2]);
  header->seq = GetBe32(&p[4]);
  header->ack = GetBe32(&p[8]);
  const size_t offset = static_cast<size_t>(p[12] >> 4) * 4;
  if (offset < kTcpHeaderSize || offset > l4_head.size()) {
    return asbase::InvalidArgument("bad TCP data offset");
  }
  header->flags = p[13];
  header->window = GetBe16(&p[14]);
  return l4_head.subspan(offset);
}

std::vector<uint8_t> BuildUdp(Ipv4Addr src, Ipv4Addr dst,
                              const UdpHeader& header,
                              std::span<const uint8_t> payload) {
  std::vector<uint8_t> datagram(kUdpHeaderSize + payload.size());
  uint8_t* p = datagram.data();
  PutBe16(&p[0], header.src_port);
  PutBe16(&p[2], header.dst_port);
  PutBe16(&p[4], static_cast<uint16_t>(datagram.size()));
  PutBe16(&p[6], 0);
  if (!payload.empty()) {
    std::memcpy(p + kUdpHeaderSize, payload.data(), payload.size());
  }
  const uint32_t pseudo = PseudoHeaderSum(
      src, dst, IpProto::kUdp, static_cast<uint16_t>(datagram.size()));
  uint16_t checksum = Checksum(datagram, pseudo);
  if (checksum == 0) {
    checksum = 0xFFFF;
  }
  PutBe16(&p[6], checksum);
  return datagram;
}

asbase::Result<std::span<const uint8_t>> ParseUdp(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> datagram,
    UdpHeader* header) {
  if (datagram.size() < kUdpHeaderSize) {
    return asbase::InvalidArgument("UDP datagram too short");
  }
  const uint8_t* p = datagram.data();
  const uint32_t pseudo = PseudoHeaderSum(
      src, dst, IpProto::kUdp, static_cast<uint16_t>(datagram.size()));
  if (Checksum(datagram, pseudo) != 0) {
    return asbase::DataLoss("UDP checksum mismatch");
  }
  header->src_port = GetBe16(&p[0]);
  header->dst_port = GetBe16(&p[2]);
  header->length = GetBe16(&p[4]);
  if (header->length < kUdpHeaderSize || header->length > datagram.size()) {
    return asbase::InvalidArgument("bad UDP length");
  }
  return datagram.subspan(kUdpHeaderSize, header->length - kUdpHeaderSize);
}

std::vector<uint8_t> BuildIcmpEcho(bool reply, uint16_t id, uint16_t seq,
                                   std::span<const uint8_t> payload) {
  std::vector<uint8_t> message(kIcmpHeaderSize + payload.size());
  uint8_t* p = message.data();
  p[0] = reply ? 0 : 8;
  p[1] = 0;
  PutBe16(&p[2], 0);
  PutBe16(&p[4], id);
  PutBe16(&p[6], seq);
  if (!payload.empty()) {
    std::memcpy(p + kIcmpHeaderSize, payload.data(), payload.size());
  }
  PutBe16(&p[2], Checksum(message));
  return message;
}

}  // namespace asnet
