// Virtual network fabric.
//
// Real AlloyStack creates a Linux TAP device per WFD and lets the host bridge
// frames (§7.1). Here the equivalent is a `VirtualSwitch` that registered
// `TunPort`s attach to: a port's Send() looks up the destination IP and
// delivers the raw IPv4 packet to that port's receive queue. A per-switch
// `LinkModel` can drop, delay or duplicate packets so the TCP layer's
// retransmission machinery is actually exercised (property tests run with
// loss turned on).

#ifndef SRC_NETSTACK_CHANNEL_H_
#define SRC_NETSTACK_CHANNEL_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/queue.h"
#include "src/common/rng.h"
#include "src/netstack/wire.h"

namespace asnet {

// `Packet` (wire.h) is either a contiguous frame or a gather frame whose
// payload rides by reference; the fabric treats both uniformly — duplicate
// delivery copies the descriptor, which shares payload pins, not bytes.

// Fault/latency model applied to every delivered packet.
struct LinkModel {
  double drop_rate = 0.0;       // probability a packet silently vanishes
  double duplicate_rate = 0.0;  // probability a packet is delivered twice
  int64_t latency_nanos = 0;    // fixed one-way delay (applied by receiver)
  uint64_t seed = 1;
};

class VirtualSwitch;

// One WFD's network attachment. Owns the receive queue.
class TunPort {
 public:
  TunPort(Ipv4Addr addr, VirtualSwitch* fabric)
      : addr_(addr), fabric_(fabric) {}

  Ipv4Addr addr() const { return addr_; }

  // Hands a raw IPv4 packet to the switch for routing.
  void Send(Packet packet);

  // Blocks up to `timeout`; nullopt on timeout or detached switch.
  std::optional<Packet> Receive(std::chrono::nanoseconds timeout);

  // Wakes a thread blocked in Receive without delivering a packet (it
  // returns nullopt early). The stack kicks the poller when a user thread
  // arms a TCP timer earlier than the poller's current sleep deadline.
  void Kick();

  void Detach();

  uint64_t packets_sent() const { return sent_.load(); }
  uint64_t packets_received() const { return received_.load(); }

 private:
  friend class VirtualSwitch;
  struct Timed {
    Packet packet;
    int64_t deliver_at_nanos;
  };

  Ipv4Addr addr_;
  VirtualSwitch* fabric_;
  asbase::BlockingQueue<Timed> rx_;
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> received_{0};
};

// Routes packets between attached ports by destination IP.
class VirtualSwitch {
 public:
  explicit VirtualSwitch(LinkModel model = {})
      : model_(model), rng_(model.seed) {}

  // Attaches a new port with the given address. The switch must outlive it.
  std::shared_ptr<TunPort> Attach(Ipv4Addr addr);
  void Detach(Ipv4Addr addr);

  void set_model(LinkModel model) {
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = model;
  }

  uint64_t packets_routed() const { return routed_.load(); }
  uint64_t packets_dropped() const { return dropped_.load(); }

 private:
  friend class TunPort;
  void Route(Packet packet);

  std::mutex mutex_;
  LinkModel model_;
  asbase::Rng rng_;
  std::map<Ipv4Addr, std::shared_ptr<TunPort>> ports_;
  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace asnet

#endif  // SRC_NETSTACK_CHANNEL_H_
